// Copyright (c) zdb authors. Licensed under the MIT license.
//
// E5 (Table 2): point queries versus redundancy. Point-query candidates
// are exactly the entries stored under enclosing elements of the point's
// cell, so cost is dominated by the number of element levels present in
// the index (ancestor probes) plus refinement fetches for false hits.
// Expected shape: k=1 suffers where objects straddle partition lines
// (huge elements enclose every point); moderate k wins; very large k adds
// levels to probe with little gain.

#include <cstdlib>

#include "bench_util/runner.h"
#include "bench_util/table.h"

namespace zdb {
namespace {

constexpr size_t kQueries = 100;

void RunDistribution(Distribution dist, size_t n) {
  DataGenOptions dg;
  dg.distribution = dist;
  const auto data = GenerateData(n, dg);
  const auto points = GeneratePoints(kQueries, 4242);

  Table table("E5 point queries vs redundancy — " + DistributionName(dist) +
                  " (per query, " + std::to_string(kQueries) + " queries)",
              {"k", "accesses", "probes", "candidates", "false hits",
               "results"});

  for (uint32_t k : {1u, 2u, 4u, 8u, 16u, 32u}) {
    Env env = MakeEnv();
    SpatialIndexOptions opt;
    opt.data = DecomposeOptions::SizeBound(k);
    auto index = BuildZIndex(&env, data, opt).value();
    auto rr = RunPointQueries(&env, index.get(), points).value();
    table.AddRow({std::to_string(k), Fmt(rr.avg_accesses, 2),
                  Fmt(rr.per_query(rr.totals.ancestor_probes), 1),
                  Fmt(rr.per_query(rr.totals.candidates), 2),
                  Fmt(rr.per_query(rr.totals.false_hits), 2),
                  Fmt(rr.avg_results, 2)});
  }
  table.Print();
}

}  // namespace
}  // namespace zdb

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
  for (zdb::Distribution d :
       {zdb::Distribution::kUniformLarge, zdb::Distribution::kSkewedSizes,
        zdb::Distribution::kDiagonal}) {
    zdb::RunDistribution(d, n);
  }
  return 0;
}
