// Copyright (c) zdb authors. Licensed under the MIT license.
//
// A6 (ablation): buffer-pool size sensitivity. The 1989 setups kept only
// the root (plus the last search path) resident; modern deployments
// cache much more. Each index is built once with an adequate pool, then
// re-attached under pools from "bare search path" to "everything fits",
// and a warm 100-query batch measures physical accesses. Expected shape:
// all methods converge to ~0 once their working set fits; the
// non-redundant z-index fits soonest (smallest index) while the
// redundant one wins under realistic mid-size caches (fewer false-hit
// data-page fetches).

#include <cstdio>
#include <cstdlib>

#include "bench_util/runner.h"
#include "bench_util/table.h"

namespace zdb {
namespace {

constexpr size_t kQueries = 100;
constexpr size_t kBuildPool = 64;

void RunDistribution(Distribution dist, size_t n) {
  DataGenOptions dg;
  dg.distribution = dist;
  const auto data = GenerateData(n, dg);
  const auto queries = GenerateWindows(kQueries, 0.01, QueryGenOptions{});

  Table table("A6 buffer-pool sensitivity — " + DistributionName(dist) +
                  " (1% windows, warm batch of " + std::to_string(kQueries) +
                  ", physical accesses/query)",
              {"pool pages", "z k=1", "z k=8", "rtree"});

  // Build all three structures once, in their own paged files, and
  // remember how to re-attach.
  struct ZBuild {
    Env env;
    PageId master;
  };
  ZBuild z[2];
  const uint32_t ks[2] = {1, 8};
  for (int i = 0; i < 2; ++i) {
    z[i].env = MakeEnv(kBenchPageSize, kBuildPool);
    SpatialIndexOptions opt;
    opt.data = DecomposeOptions::SizeBound(ks[i]);
    auto index = BuildZIndex(&z[i].env, data, opt).value();
    z[i].master = index->Checkpoint().value();
    if (!z[i].env.pool->FlushAll().ok()) std::exit(1);
  }
  Env renv = MakeEnv(kBenchPageSize, kBuildPool);
  PageId rtree_root;
  uint32_t rtree_height;
  uint64_t rtree_count;
  {
    auto tree = BuildRTree(&renv, data, RTreeOptions{}).value();
    rtree_root = tree->root();
    rtree_height = tree->height();
    rtree_count = tree->size();
  }

  for (size_t pool_pages : {8u, 32u, 128u, 512u, 2048u, 8192u}) {
    std::vector<std::string> row{Fmt(static_cast<uint64_t>(pool_pages))};

    for (int i = 0; i < 2; ++i) {
      // Swap in a pool of the target size over the already-built file.
      ResizePool(&z[i].env, pool_pages);
      auto index = OpenZIndex(&z[i].env, z[i].master).value();
      const IoStats snap = z[i].env.pager->io_stats();
      for (const Rect& w : queries) {
        if (!index->WindowQuery(w).ok()) std::exit(1);
      }
      row.push_back(Fmt(
          static_cast<double>(z[i].env.Delta(snap).accesses()) / kQueries,
          1));
    }
    {
      ResizePool(&renv, pool_pages);
      auto tree = RTree::Attach(renv.pool.get(), RTreeOptions{}, rtree_root,
                                rtree_height, rtree_count)
                      .value();
      const IoStats snap = renv.pager->io_stats();
      for (const Rect& w : queries) {
        if (!tree->WindowQuery(w).ok()) std::exit(1);
      }
      row.push_back(Fmt(
          static_cast<double>(renv.Delta(snap).accesses()) / kQueries, 1));
    }
    table.AddRow(row);
  }
  table.Print();
}

}  // namespace
}  // namespace zdb

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
  zdb::RunDistribution(zdb::Distribution::kClusters, n);
  return 0;
}
