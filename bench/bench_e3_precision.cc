// Copyright (c) zdb authors. Licensed under the MIT license.
//
// E3 (Figure 2): filter precision versus redundancy. At a fixed 1%
// window selectivity, sweep k and report what the filter step produced:
// raw candidates, duplicates (the price of redundancy), unique
// candidates, false hits (the price of a loose approximation), and true
// results. Expected shape: false hits fall steeply with k while
// duplicates rise slowly — the net being the E4 crossover.

#include <cstdlib>

#include "bench_util/runner.h"
#include "bench_util/table.h"

namespace zdb {
namespace {

constexpr size_t kQueries = 20;
constexpr double kSelectivity = 0.01;

void RunDistribution(Distribution dist, size_t n) {
  DataGenOptions dg;
  dg.distribution = dist;
  const auto data = GenerateData(n, dg);
  const auto queries =
      GenerateWindows(kQueries, kSelectivity, QueryGenOptions{});

  Table table("E3 filter precision vs redundancy — " +
                  DistributionName(dist) + " (1% windows, per query)",
              {"k", "candidates", "duplicates", "unique", "false hits",
               "results", "precision"});

  for (uint32_t k : {1u, 2u, 4u, 8u, 16u, 32u}) {
    Env env = MakeEnv();
    SpatialIndexOptions opt;
    opt.data = DecomposeOptions::SizeBound(k);
    // A fine query-side decomposition isolates the data-side effect:
    // query-approximation dead space would otherwise dominate false hits.
    opt.query = DecomposeOptions::ErrorBound(0.02, 512);
    auto index = BuildZIndex(&env, data, opt).value();
    auto rr = RunWindowQueries(&env, index.get(), queries).value();
    const double unique = rr.per_query(rr.totals.unique_candidates);
    const double results = rr.per_query(rr.totals.results);
    table.AddRow({std::to_string(k), Fmt(rr.per_query(rr.totals.candidates), 1),
                  Fmt(rr.per_query(rr.totals.duplicates()), 1), Fmt(unique, 1),
                  Fmt(rr.per_query(rr.totals.false_hits), 1), Fmt(results, 1),
                  Fmt(unique > 0 ? results / unique : 1.0, 3)});
  }
  table.Print();
}

}  // namespace
}  // namespace zdb

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
  for (zdb::Distribution d :
       {zdb::Distribution::kUniformLarge, zdb::Distribution::kClusters,
        zdb::Distribution::kDiagonal}) {
    zdb::RunDistribution(d, n);
  }
  return 0;
}
