// Copyright (c) zdb authors. Licensed under the MIT license.
//
// E7 (Figure 4): spatial join via z-order merge versus redundancy. Two
// layers are joined by a single synchronized scan of both indexes; the
// data-side redundancy of BOTH layers is swept together. Expected shape:
// element-level candidate pairs drop sharply as approximations tighten
// (fewer giant elements pairing with everything), while scanned entries
// grow linearly — the page-access sum again has an interior optimum.

#include <cstdio>
#include <cstdlib>

#include "bench_util/runner.h"
#include "bench_util/table.h"

namespace zdb {
namespace {

void RunPair(Distribution da, Distribution db, size_t n) {
  DataGenOptions ga;
  ga.distribution = da;
  ga.seed = 11;
  const auto data_a = GenerateData(n, ga);
  DataGenOptions gb;
  gb.distribution = db;
  gb.seed = 22;
  const auto data_b = GenerateData(n, gb);

  Table table("E7 spatial join vs redundancy — " + DistributionName(da) +
                  " x " + DistributionName(db) + " (" + std::to_string(n) +
                  " x " + std::to_string(n) + ")",
              {"k", "accesses", "entries", "cand pairs", "dup pairs",
               "false pairs", "results"});

  for (uint32_t k : {1u, 2u, 4u, 8u, 16u}) {
    Env env = MakeEnv(kBenchPageSize, 64);
    SpatialIndexOptions opt;
    opt.data = DecomposeOptions::SizeBound(k);
    auto a = BuildZIndex(&env, data_a, opt).value();
    auto b = BuildZIndex(&env, data_b, opt).value();

    Status cleared = env.pool->Clear();
    if (!cleared.ok()) std::exit(1);
    const IoStats snap = env.pager->io_stats();
    JoinStats js;
    auto pairs = SpatialJoin(a.get(), b.get(), &js);
    if (!pairs.ok()) {
      std::fprintf(stderr, "join failed: %s\n",
                   pairs.status().ToString().c_str());
      std::exit(1);
    }
    const uint64_t accesses = env.Delta(snap).accesses();

    table.AddRow({std::to_string(k), Fmt(accesses), Fmt(js.entries_scanned),
                  Fmt(js.candidate_pairs), Fmt(js.duplicate_pairs()),
                  Fmt(js.false_pairs), Fmt(js.results)});
  }
  table.Print();
}

}  // namespace
}  // namespace zdb

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10000;
  zdb::RunPair(zdb::Distribution::kUniformSmall,
               zdb::Distribution::kUniformLarge, n);
  zdb::RunPair(zdb::Distribution::kContours, zdb::Distribution::kClusters,
               n);
  return 0;
}
