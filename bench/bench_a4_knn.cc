// Copyright (c) zdb authors. Licensed under the MIT license.
//
// A4 (extension): k-nearest-neighbor queries — the proximity queries the
// paper leaves as future work. Compares the z-index's expanding-window
// search (the natural strategy for a one-dimensional ordered index)
// against the R-tree's best-first MINDIST traversal, across data
// redundancy and k. Expected shape: the R-tree's targeted descent wins;
// moderate redundancy narrows the gap by shrinking the windows' false
// hits; the gap widens with k.

#include <cstdio>
#include <cstdlib>

#include "bench_util/runner.h"
#include "bench_util/table.h"

namespace zdb {
namespace {

constexpr size_t kQueries = 50;

void RunDistribution(Distribution dist, size_t n) {
  DataGenOptions dg;
  dg.distribution = dist;
  const auto data = GenerateData(n, dg);
  const auto points = GeneratePoints(kQueries, 606);

  Table table("A4 k-nearest-neighbor — " + DistributionName(dist) +
                  " (accesses/query)",
              {"method", "k=1", "k=5", "k=20", "rounds@20"});

  auto run_z = [&](const std::string& label, uint32_t data_k) {
    Env env = MakeEnv();
    SpatialIndexOptions opt;
    opt.data = DecomposeOptions::SizeBound(data_k);
    auto index = BuildZIndex(&env, data, opt).value();
    std::vector<std::string> row{label};
    double rounds_at_20 = 0;
    for (size_t k : {size_t{1}, size_t{5}, size_t{20}}) {
      uint64_t total = 0;
      uint64_t total_rounds = 0;
      for (const Point& p : points) {
        if (!env.pool->Clear().ok()) std::exit(1);
        const IoStats snap = env.pager->io_stats();
        uint32_t rounds = 0;
        auto r = index->NearestNeighbors(p, k, nullptr, &rounds);
        if (!r.ok()) std::exit(1);
        total += env.Delta(snap).accesses();
        total_rounds += rounds;
      }
      row.push_back(Fmt(static_cast<double>(total) / points.size(), 1));
      if (k == 20) {
        rounds_at_20 = static_cast<double>(total_rounds) / points.size();
      }
    }
    row.push_back(Fmt(rounds_at_20, 1));
    table.AddRow(row);
  };

  auto run_rtree = [&]() {
    Env env = MakeEnv();
    auto tree = BuildRTree(&env, data, RTreeOptions{}).value();
    std::vector<std::string> row{"rtree best-first"};
    for (size_t k : {size_t{1}, size_t{5}, size_t{20}}) {
      uint64_t total = 0;
      for (const Point& p : points) {
        if (!env.pool->Clear().ok()) std::exit(1);
        const IoStats snap = env.pager->io_stats();
        auto r = tree->NearestNeighbors(p, k);
        if (!r.ok()) std::exit(1);
        total += env.Delta(snap).accesses();
      }
      row.push_back(Fmt(static_cast<double>(total) / points.size(), 1));
    }
    row.push_back("-");
    table.AddRow(row);
  };

  run_rtree();
  run_z("z k=1 expanding", 1);
  run_z("z k=4 expanding", 4);
  run_z("z k=16 expanding", 16);
  table.Print();
}

}  // namespace
}  // namespace zdb

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
  for (zdb::Distribution d :
       {zdb::Distribution::kUniformSmall, zdb::Distribution::kClusters}) {
    zdb::RunDistribution(d, n);
  }
  return 0;
}
