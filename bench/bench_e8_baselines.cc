// Copyright (c) zdb authors. Licensed under the MIT license.
//
// E8 (Table 4): the redundant z-index versus its baselines across all
// distributions. Methods:
//   rtree-quad / rtree-lin  — Guttman R-tree (exact MBRs in leaves)
//   z k=1                   — non-redundant minimal enclosing z-region
//   z k=4 / z k=8           — size-bound redundancy
//   z e=0.1                 — error-bound redundancy
//   z k=8 +leafmbr          — redundancy plus MBRs replicated in leaves
//                             (same leaf economics as the R-tree)
// Expected shape: z k=1 loses badly on diagonal/large-object data;
// moderate redundancy is competitive with the R-tree; the +leafmbr
// variant closes most of the remaining gap.

#include <cstdlib>

#include "bench_util/runner.h"
#include "bench_util/table.h"

namespace zdb {
namespace {

constexpr size_t kWindowQueries = 20;
constexpr size_t kPointQueries = 100;

void RunDistribution(Distribution dist, size_t n) {
  DataGenOptions dg;
  dg.distribution = dist;
  const auto data = GenerateData(n, dg);
  const auto small_windows =
      GenerateWindows(kWindowQueries, 0.001, QueryGenOptions{});
  const auto big_windows =
      GenerateWindows(kWindowQueries, 0.01, QueryGenOptions{});
  const auto points = GeneratePoints(kPointQueries, 333);

  Table table("E8 method comparison — " + DistributionName(dist) + " (" +
                  std::to_string(n) + " objects, accesses/query)",
              {"method", "0.1% win", "1% win", "point", "insert acc",
               "pages"});

  auto add_z = [&](const std::string& label, const SpatialIndexOptions& opt) {
    Env env = MakeEnv();
    BuildResult br;
    auto index = BuildZIndex(&env, data, opt, &br).value();
    auto r_small = RunWindowQueries(&env, index.get(), small_windows).value();
    auto r_big = RunWindowQueries(&env, index.get(), big_windows).value();
    auto r_pt = RunPointQueries(&env, index.get(), points).value();
    table.AddRow({label, Fmt(r_small.avg_accesses, 1),
                  Fmt(r_big.avg_accesses, 1), Fmt(r_pt.avg_accesses, 1),
                  Fmt(br.avg_insert_accesses, 2), Fmt(br.pages)});
  };

  auto add_rtree = [&](const std::string& label, RTreeOptions::Split split) {
    Env env = MakeEnv();
    RTreeOptions opt;
    opt.split = split;
    BuildResult br;
    auto tree = BuildRTree(&env, data, opt, &br).value();
    auto r_small =
        RunRTreeWindowQueries(&env, tree.get(), small_windows).value();
    auto r_big = RunRTreeWindowQueries(&env, tree.get(), big_windows).value();
    auto r_pt = RunRTreePointQueries(&env, tree.get(), points).value();
    table.AddRow({label, Fmt(r_small.avg_accesses, 1),
                  Fmt(r_big.avg_accesses, 1), Fmt(r_pt.avg_accesses, 1),
                  Fmt(br.avg_insert_accesses, 2), Fmt(br.pages)});
  };

  add_rtree("rtree-quad", RTreeOptions::Split::kQuadratic);
  add_rtree("rtree-lin", RTreeOptions::Split::kLinear);
  add_rtree("rtree-rstar", RTreeOptions::Split::kRStar);

  {
    SpatialIndexOptions opt;
    opt.data = DecomposeOptions::SizeBound(1);
    add_z("z k=1", opt);
  }
  {
    SpatialIndexOptions opt;
    opt.data = DecomposeOptions::SizeBound(4);
    add_z("z k=4", opt);
  }
  {
    SpatialIndexOptions opt;
    opt.data = DecomposeOptions::SizeBound(8);
    add_z("z k=8", opt);
  }
  {
    SpatialIndexOptions opt;
    opt.data = DecomposeOptions::ErrorBound(0.1);
    add_z("z e=0.1", opt);
  }
  {
    SpatialIndexOptions opt;
    opt.data = DecomposeOptions::SizeBound(8);
    opt.store_mbr_in_leaf = true;
    add_z("z k=8 +leafmbr", opt);
  }
  table.Print();
}

}  // namespace
}  // namespace zdb

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
  for (zdb::Distribution d : zdb::kAllDistributions) {
    zdb::RunDistribution(d, n);
  }
  return 0;
}
