// Copyright (c) zdb authors. Licensed under the MIT license.
//
// E16: sharded engine partitions. The claim under test: splitting the
// z-order keyspace across N independent shard engines behind zdb::DB
// scales the two operations that bottleneck a single engine —
//
//   * durable ApplyBatch throughput: each shard runs its own journal
//     and group-commit pipeline, so concurrent writers whose batches
//     route to different shards overlap their fsyncs instead of
//     queueing on one durability thread (real files, genuine fsyncs —
//     on a single-core host the fsync overlap IS the mechanism, and it
//     still shows);
//
//   * window-query throughput under concurrency: queries scatter only
//     to the shards their window overlaps, so small windows on
//     different shards traverse disjoint B+-trees with disjoint
//     latches/epoch domains and stop contending with each other.
//
// Each writer ingests into its own quadrant of the world — the spatial
// locality real ingest streams have, and the case sharding is for: a
// quadrant maps onto a disjoint set of z-prefixes, so at N >= 4 each
// writer's batches land on their own shard pipeline(s) instead of
// fanning out to all of them.
//
// Everything runs through the zdb::DB facade. As a correctness gate the
// bench fingerprints a fixed query set at every N and requires result
// counts identical to the N=1 run (the inserted rect set is
// deterministic even though concurrent writers make the oid order not,
// so a dedup bug inflates a count and a routing bug deflates one —
// either fails the bench rather than flattering it; byte-identical oids
// under deterministic applies are proven in tests/shard_test.cc).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/table.h"
#include "common/random.h"
#include "shard/manifest.h"
#include "zdb/db.h"

namespace zdb {
namespace {

constexpr size_t kWriters = 4;
constexpr size_t kBatchesPerWriter = 32;
constexpr size_t kOpsPerBatch = 16;
constexpr size_t kReaders = 4;
constexpr size_t kCheckWindows = 64;
constexpr double kWindowSide = 0.03;
constexpr auto kQueryWindow = std::chrono::milliseconds(400);

Rect RandomRect(Random* rng, double side) {
  const double x = rng->UniformDouble(0.0, 0.9);
  const double y = rng->UniformDouble(0.0, 0.9);
  return Rect{x, y, x + side, y + side};
}

/// A small rect inside writer `w`'s quadrant of the unit square.
Rect QuadrantRect(Random* rng, size_t w, double side) {
  const double x0 = (w & 1) ? 0.5 : 0.0;
  const double y0 = (w & 2) ? 0.5 : 0.0;
  const double x = x0 + rng->UniformDouble(0.0, 0.45);
  const double y = y0 + rng->UniformDouble(0.0, 0.45);
  return Rect{x, y, x + side, y + side};
}

void RemoveDbFiles(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + "-journal").c_str());
  for (uint32_t s = 0; s < shard::kMaxShards; ++s) {
    const std::string sp = shard::ShardFilePath(path, s);
    std::remove(sp.c_str());
    std::remove((sp + "-journal").c_str());
  }
}

struct ShardResult {
  uint32_t shards = 1;
  double load_s = 0;        ///< wall time of the durable write stream
  uint64_t commits = 0;     ///< journal commits across all shards
  double queries_s = 0;     ///< concurrent window queries per second
  uint64_t fingerprint = 0; ///< fixed query set, FNV over (window, oid)
};

ShardResult RunShards(const std::string& path, uint32_t shards) {
  RemoveDbFiles(path);

  DBOptions options;
  options.index.data = DecomposeOptions::SizeBound(4);
  options.cache_pages = 4096;
  options.shards = shards;
  auto db = DB::Open(path, options).value();

  ShardResult out;
  out.shards = shards;

  // Durable write stream: kWriters threads, each applying kDurable
  // batches confined to its own quadrant, so the batches route to
  // disjoint shards (at N >= 4) and the per-shard pipelines coalesce
  // and fsync in parallel; each ack waits only on its own shard(s).
  const auto w0 = std::chrono::steady_clock::now();
  std::vector<std::thread> writers;
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&db, w] {
      Random rng(300 + w);
      for (size_t b = 0; b < kBatchesPerWriter; ++b) {
        WriteBatch batch;
        for (size_t i = 0; i < kOpsPerBatch; ++i) {
          batch.Insert(QuadrantRect(&rng, w, 0.004));
        }
        if (!db->Apply(batch, Durability::kDurable).ok()) std::exit(1);
      }
    });
  }
  for (auto& t : writers) t.join();
  out.load_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - w0)
                   .count();
  out.commits = db->Stats().journal_commits;

  // Warm every shard's cache so the query phase measures traversal and
  // latching, not cold page reads.
  for (int i = 0; i < 3; ++i) {
    if (!db->Window(Rect{0, 0, 1, 1}).ok()) std::exit(1);
  }

  // Concurrent small-window throughput for a fixed wall-clock budget.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0};
  std::vector<std::thread> readers;
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&db, &stop, &queries, t] {
      Random rng(400 + t);
      uint64_t n = 0;
      while (!stop.load(std::memory_order_acquire)) {
        if (!db->Window(RandomRect(&rng, kWindowSide)).ok()) std::exit(1);
        ++n;
      }
      queries.fetch_add(n, std::memory_order_relaxed);
    });
  }
  const auto q0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(kQueryWindow);
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  const double qs = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - q0)
                        .count();
  out.queries_s = queries.load() / qs;

  // Correctness fingerprint: a fixed window set, FNV-1a over the
  // (window index, result count) pairs. The inserted rect set is
  // deterministic, so the counts must match N=1 exactly: a gather-dedup
  // bug inflates one, a routing miss deflates one.
  Random qrng(55);
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (size_t q = 0; q < kCheckWindows; ++q) {
    const Rect w = RandomRect(&qrng, 0.08);
    auto r = db->Window(w);
    if (!r.ok()) std::exit(1);
    mix(q);
    mix(r.value().size());
  }
  out.fingerprint = h;

  db.reset();
  RemoveDbFiles(path);
  return out;
}

void Run(const std::string& path) {
  Table table(
      "E16 sharded partitions — " + std::to_string(kWriters) + " writers x " +
          std::to_string(kBatchesPerWriter) + " durable batches of " +
          std::to_string(kOpsPerBatch) + "; " + std::to_string(kReaders) +
          " readers, " + std::to_string(kWindowSide) +
          "-side windows (host cores: " +
          std::to_string(std::thread::hardware_concurrency()) + ")",
      {"shards", "load s", "batches/s", "speedup", "commits", "queries/s",
       "speedup", "identical"});

  std::vector<ShardResult> results;
  for (uint32_t n : {1u, 2u, 4u, 8u}) {
    results.push_back(RunShards(path, n));
  }
  const ShardResult& base = results.front();
  const double base_bps =
      base.load_s > 0 ? kWriters * kBatchesPerWriter / base.load_s : 0.0;
  bool all_identical = true;
  for (const ShardResult& r : results) {
    const double bps =
        r.load_s > 0 ? kWriters * kBatchesPerWriter / r.load_s : 0.0;
    const bool identical = r.fingerprint == base.fingerprint;
    all_identical = all_identical && identical;
    table.AddRow({Fmt(uint64_t{r.shards}), Fmt(r.load_s, 2), Fmt(bps, 0),
                  Fmt(base_bps > 0 ? bps / base_bps : 0.0, 2),
                  Fmt(r.commits), Fmt(r.queries_s, 0),
                  Fmt(base.queries_s > 0 ? r.queries_s / base.queries_s : 0.0,
                      2),
                  identical ? "yes" : "NO"});
  }
  table.Print();
  if (!all_identical) {
    std::fprintf(stderr,
                 "E16: sharded query fingerprints diverge from N=1 — "
                 "scatter-gather results are NOT byte-identical\n");
    std::exit(1);
  }
}

}  // namespace
}  // namespace zdb

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : std::string("/tmp/zdb_e16_shard.db");
  zdb::Run(path);
  return 0;
}
