// Copyright (c) zdb authors. Licensed under the MIT license.
//
// A7 (ablation): grid resolution. The grid is the decomposition's
// resolution floor: too coarse and every tiny object smears across whole
// cells (false hits the decomposition cannot remove); too fine only
// lengthens keys' useful depth without changing the approximation of
// objects larger than a cell. Expected shape: query cost falls steeply
// until cells shrink below the typical object, then flattens.

#include <cstdio>
#include <cstdlib>

#include "bench_util/runner.h"
#include "bench_util/table.h"

namespace zdb {
namespace {

constexpr size_t kQueries = 20;

void RunDistribution(Distribution dist, size_t n) {
  DataGenOptions dg;
  dg.distribution = dist;
  const auto data = GenerateData(n, dg);
  const auto queries = GenerateWindows(kQueries, 0.001, QueryGenOptions{});

  Table table("A7 grid resolution — " + DistributionName(dist) +
                  " (data k=8, 0.1% windows, per query)",
              {"grid bits", "cell size", "redundancy", "accesses",
               "false hits", "results"});

  for (uint32_t bits : {6u, 8u, 10u, 12u, 16u, 20u}) {
    Env env = MakeEnv();
    SpatialIndexOptions opt;
    opt.grid_bits = bits;
    opt.data = DecomposeOptions::SizeBound(8);
    // Fine query decomposition so false hits reflect the DATA-side
    // approximation floor, not query-side dead space.
    opt.query = DecomposeOptions::ErrorBound(0.02, 512);
    BuildResult br;
    auto index = BuildZIndex(&env, data, opt, &br).value();
    auto rr = RunWindowQueries(&env, index.get(), queries).value();
    table.AddRow({Fmt(static_cast<uint64_t>(bits)),
                  Fmt(1.0 / (1u << bits), 6), Fmt(br.redundancy),
                  Fmt(rr.avg_accesses, 1),
                  Fmt(rr.per_query(rr.totals.false_hits), 1),
                  Fmt(rr.avg_results, 1)});
  }
  table.Print();
}

}  // namespace
}  // namespace zdb

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
  for (zdb::Distribution d :
       {zdb::Distribution::kUniformSmall, zdb::Distribution::kClusters}) {
    zdb::RunDistribution(d, n);
  }
  return 0;
}
