// Copyright (c) zdb authors. Licensed under the MIT license.
//
// E14: network service under closed-loop load. A zdb server runs
// in-process on loopback while client threads — one writer applying
// deterministic batches, the rest readers issuing window/point/kNN
// queries — each drive one synchronous connection as fast as replies
// come back. Two questions:
//
//   * served correctness: every reader reply is cross-checked against a
//     brute-force oracle at the write epochs the server reported around
//     execution (the wire twin of E13's in-process oracle). The run
//     fails loudly on any mismatch.
//   * service quality: per-opcode p50/p99 latency and aggregate qps at
//     client counts up to well past the worker pool size, plus a
//     saturation phase (one slow worker, tiny admission queue) showing
//     BUSY backpressure shedding load instead of queueing unboundedly.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <thread>
#include <vector>

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include "bench_util/runner.h"
#include "bench_util/table.h"
#include "client/client.h"
#include "server/server.h"

namespace zdb {
namespace {

using net::Client;
using net::Server;
using net::ServerOptions;

constexpr uint64_t kSeed = 0xE14;
constexpr size_t kInitialObjects = 2000;
constexpr size_t kBatches = 24;
constexpr size_t kInsertsPerBatch = 32;
constexpr size_t kErasesPerBatch = 24;
constexpr size_t kWindows = 12;
constexpr size_t kPoints = 8;
constexpr size_t kKnnPoints = 4;
constexpr size_t kKnnK = 8;
constexpr double kSelectivity = 0.01;

using OracleState = std::map<ObjectId, Rect>;

struct Workload {
  std::vector<Rect> initial;
  std::vector<WriteBatch> batches;
  std::vector<OracleState> states;
  std::vector<Rect> windows;
  std::vector<Point> points;
  std::vector<Point> knn_points;
};

Workload MakeWorkload() {
  Workload w;
  DataGenOptions dg;
  dg.distribution = Distribution::kClusters;
  dg.seed = kSeed;
  w.initial = GenerateData(kInitialObjects, dg);

  OracleState state;
  for (size_t i = 0; i < w.initial.size(); ++i) {
    state[static_cast<ObjectId>(i)] = w.initial[i];
  }
  w.states.push_back(state);

  DataGenOptions dg2;
  dg2.distribution = Distribution::kUniformLarge;
  dg2.seed = kSeed ^ 0x9e3779b97f4a7c15ULL;
  const auto extra = GenerateData(kBatches * kInsertsPerBatch, dg2);

  Random rng(kSeed + 1);
  ObjectId next_oid = static_cast<ObjectId>(w.initial.size());
  for (size_t b = 0; b < kBatches; ++b) {
    WriteBatch batch;
    std::vector<ObjectId> live;
    for (const auto& [oid, rect] : state) live.push_back(oid);
    for (size_t e = 0; e < kErasesPerBatch && !live.empty(); ++e) {
      const size_t pick = rng.Uniform(live.size());
      batch.Erase(live[pick]);
      state.erase(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    }
    for (size_t i = 0; i < kInsertsPerBatch; ++i) {
      const Rect& r = extra[b * kInsertsPerBatch + i];
      batch.Insert(r);
      state[next_oid] = r;
      ++next_oid;
    }
    w.batches.push_back(std::move(batch));
    w.states.push_back(state);
  }

  QueryGenOptions qopt;
  qopt.seed = kSeed + 2;
  w.windows = GenerateWindows(kWindows, kSelectivity, qopt);
  const auto big =
      GenerateWindows(2, 0.08, QueryGenOptions{.seed = kSeed + 3});
  w.windows.insert(w.windows.end(), big.begin(), big.end());
  w.points = GeneratePoints(kPoints, kSeed + 4);
  w.knn_points = GeneratePoints(kKnnPoints, kSeed + 5);
  return w;
}

std::vector<ObjectId> ExpectedWindow(const OracleState& st, const Rect& w) {
  std::vector<ObjectId> out;
  for (const auto& [oid, rect] : st) {
    if (rect.Intersects(w)) out.push_back(oid);
  }
  return out;
}

std::vector<ObjectId> ExpectedPoint(const OracleState& st, const Point& p) {
  std::vector<ObjectId> out;
  for (const auto& [oid, rect] : st) {
    if (rect.Contains(p)) out.push_back(oid);
  }
  return out;
}

bool MatchesWindow(const Workload& w, size_t q,
                   const std::vector<ObjectId>& got, uint64_t e0,
                   uint64_t e1) {
  for (uint64_t k = e0; k <= e1 && k < w.states.size(); ++k) {
    if (got == ExpectedWindow(w.states[k], w.windows[q])) return true;
  }
  return false;
}

bool MatchesPoint(const Workload& w, size_t q,
                  const std::vector<ObjectId>& got, uint64_t e0,
                  uint64_t e1) {
  for (uint64_t k = e0; k <= e1 && k < w.states.size(); ++k) {
    if (got == ExpectedPoint(w.states[k], w.points[q])) return true;
  }
  return false;
}

/// kNN correctness: every returned id live with its exact distance,
/// ascending, nothing closer skipped — at one epoch in [e0, e1].
bool MatchesKnn(const Workload& w, size_t q,
                const std::vector<std::pair<ObjectId, double>>& got,
                uint64_t e0, uint64_t e1) {
  constexpr double kEps = 1e-9;
  const Point& p = w.knn_points[q];
  for (uint64_t s = e0; s <= e1 && s < w.states.size(); ++s) {
    const OracleState& st = w.states[s];
    if (got.size() != std::min(kKnnK, st.size())) continue;
    bool ok = true;
    double prev = -1.0;
    for (const auto& [oid, dist] : got) {
      auto it = st.find(oid);
      if (it == st.end() ||
          std::abs(it->second.DistanceTo(p) - dist) > kEps ||
          dist + kEps < prev) {
        ok = false;
        break;
      }
      prev = dist;
    }
    if (ok && !got.empty()) {
      const double worst = got.back().second;
      std::vector<ObjectId> returned;
      for (const auto& [oid, dist] : got) returned.push_back(oid);
      std::sort(returned.begin(), returned.end());
      for (const auto& [oid, rect] : st) {
        if (!std::binary_search(returned.begin(), returned.end(), oid) &&
            rect.DistanceTo(p) + kEps < worst) {
          ok = false;
          break;
        }
      }
    }
    if (ok) return true;
  }
  return false;
}

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double Percentile(std::vector<uint64_t>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(p * (v.size() - 1) + 0.5);
  return static_cast<double>(v[idx]);
}

struct ReaderResult {
  std::vector<uint64_t> window_us, point_us, knn_us;
  uint64_t queries = 0;
  uint64_t mismatches = 0;
};

/// One closed-loop phase at `readers` reader connections (+1 writer).
/// Returns total reader qps; fills the latency table row.
void RunPhase(const Workload& w, size_t readers, Table* table,
              uint64_t* total_mismatches) {
  Env env = MakeEnv(kBenchPageSize, 8192);
  const SpatialIndexOptions opt{.data = DecomposeOptions::SizeBound(8)};
  auto index = BuildZIndex(&env, w.initial, opt).value();
  const uint64_t base = index->write_epoch();

  ServerOptions sopt;
  sopt.workers = 6;
  sopt.queue_capacity = 256;
  sopt.idle_timeout_ms = 0;
  Server server(index.get(), sopt);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    std::exit(1);
  }

  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    auto c = Client::Connect("tcp://127.0.0.1:" + std::to_string(server.port()));
    if (!c.ok()) return;
    Client client = std::move(c).value();
    for (const WriteBatch& batch : w.batches) {
      auto reply = client.Apply(batch);
      if (!reply.ok()) {
        std::fprintf(stderr, "apply failed: %s\n",
                     reply.status().ToString().c_str());
        std::exit(1);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    writer_done.store(true);
  });

  std::vector<ReaderResult> results(readers);
  std::vector<std::thread> threads;
  const uint64_t t0 = NowMicros();
  for (size_t r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      auto c = Client::Connect("tcp://127.0.0.1:" + std::to_string(server.port()));
      if (!c.ok()) return;
      Client client = std::move(c).value();
      ReaderResult& res = results[r];
      size_t round = 0;
      while (!writer_done.load() || round == 0) {
        for (size_t q = 0; q < w.windows.size(); ++q) {
          const uint64_t s = NowMicros();
          auto reply = client.Window(w.windows[q]);
          if (!reply.ok()) { ++res.mismatches; continue; }
          res.window_us.push_back(NowMicros() - s);
          ++res.queries;
          if (!MatchesWindow(w, q, reply->ids,
                             reply->epoch_before - base,
                             reply->epoch_after - base)) {
            ++res.mismatches;
          }
        }
        for (size_t q = 0; q < w.points.size(); ++q) {
          const uint64_t s = NowMicros();
          auto reply = client.Point(w.points[q]);
          if (!reply.ok()) { ++res.mismatches; continue; }
          res.point_us.push_back(NowMicros() - s);
          ++res.queries;
          if (!MatchesPoint(w, q, reply->ids,
                            reply->epoch_before - base,
                            reply->epoch_after - base)) {
            ++res.mismatches;
          }
        }
        for (size_t q = 0; q < w.knn_points.size(); ++q) {
          const uint64_t s = NowMicros();
          auto reply = client.Nearest(w.knn_points[q], kKnnK);
          if (!reply.ok()) { ++res.mismatches; continue; }
          res.knn_us.push_back(NowMicros() - s);
          ++res.queries;
          if (!MatchesKnn(w, q, reply->hits, reply->epoch_before - base,
                          reply->epoch_after - base)) {
            ++res.mismatches;
          }
        }
        ++round;
      }
    });
  }

  writer.join();
  for (auto& t : threads) t.join();
  const double secs = (NowMicros() - t0) / 1e6;
  server.Stop();

  std::vector<uint64_t> window_us, point_us, knn_us;
  uint64_t queries = 0, mismatches = 0;
  for (ReaderResult& r : results) {
    window_us.insert(window_us.end(), r.window_us.begin(), r.window_us.end());
    point_us.insert(point_us.end(), r.point_us.begin(), r.point_us.end());
    knn_us.insert(knn_us.end(), r.knn_us.begin(), r.knn_us.end());
    queries += r.queries;
    mismatches += r.mismatches;
  }
  *total_mismatches += mismatches;

  table->AddRow({std::to_string(readers) + "+1",
                 Fmt(queries / secs, 0),
                 Fmt(Percentile(window_us, 0.50), 0),
                 Fmt(Percentile(window_us, 0.99), 0),
                 Fmt(Percentile(point_us, 0.50), 0),
                 Fmt(Percentile(point_us, 0.99), 0),
                 Fmt(Percentile(knn_us, 0.50), 0),
                 Fmt(Percentile(knn_us, 0.99), 0),
                 std::to_string(mismatches)});
}

/// Saturation phase: one slow worker, two-slot queue, `clients` pushing
/// full-square windows. The admission queue must shed with BUSY, every
/// shed request must still get its typed reply, and retried requests
/// must eventually succeed.
void RunSaturation(size_t clients) {
  Env env = MakeEnv(kBenchPageSize, 16);
  const SpatialIndexOptions opt{.data = DecomposeOptions::SizeBound(8)};
  DataGenOptions dg;
  dg.seed = kSeed + 9;
  auto index = BuildZIndex(&env, GenerateData(400, dg), opt).value();
  env.pager->set_simulated_read_latency_us(200);

  ServerOptions sopt;
  sopt.workers = 1;
  sopt.queue_capacity = 2;
  sopt.idle_timeout_ms = 0;
  sopt.exec_threads = 0;  // keep the one worker honestly slow
  Server server(index.get(), sopt);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    std::exit(1);
  }

  constexpr int kPerClient = 30;
  std::atomic<uint64_t> ok{0}, busy{0};
  std::vector<std::thread> threads;
  const uint64_t t0 = NowMicros();
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      auto conn = Client::Connect("tcp://127.0.0.1:" + std::to_string(server.port()));
      if (!conn.ok()) return;
      Client client = std::move(conn).value();
      int done = 0;
      while (done < kPerClient) {
        auto reply = client.Window(Rect{0.0, 0.0, 1.0, 1.0});
        if (reply.ok()) {
          ++ok;
          ++done;
        } else if (reply.status().IsBusy()) {
          ++busy;  // shed at the door; back off briefly, then retry
          std::this_thread::sleep_for(std::chrono::microseconds(500));
        } else {
          std::fprintf(stderr, "unexpected: %s\n",
                       reply.status().ToString().c_str());
          std::exit(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double secs = (NowMicros() - t0) / 1e6;
  server.Stop();

  std::printf(
      "saturation: %zu clients vs 1 worker / 2-slot queue — %llu served "
      "(%.0f q/s), %llu BUSY rejections (%.1f%% of attempts), "
      "busy_rejected counter %llu\n\n",
      clients, static_cast<unsigned long long>(ok.load()), ok.load() / secs,
      static_cast<unsigned long long>(busy.load()),
      100.0 * busy.load() / (ok.load() + busy.load()),
      static_cast<unsigned long long>(
          server.counters().busy_rejected.load()));
  if (busy.load() == 0) {
    std::fprintf(stderr,
                 "FAIL: no BUSY replies observed under saturation\n");
    std::exit(1);
  }
}

size_t ProcessThreadCount() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t threads = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "Threads: %zu", &threads) == 1) break;
  }
  std::fclose(f);
  return threads;
}

/// Connection-horde phase: `total` concurrent idle connections (each
/// pinged once so it is fully established through the wire protocol)
/// held open by `procs` forked client processes, while the parent
/// verifies that the net-thread pool stays flat — same thread count as
/// with zero connections — and that a probe client's latency is still
/// healthy. The old thread-per-connection front end burned one thread
/// per client and could not get near this number.
///
/// Clients fork BEFORE the server starts any thread: mixing fork(2)
/// into a multithreaded process risks inheriting locked allocator /
/// runtime state, so the children are created while this process is
/// still single-threaded.
void RunConnectionHorde(size_t total, size_t procs) {
  // Each connection needs one fd in the parent (server side) and one in
  // its child (client side); lift the soft nofile limit to the hard cap.
  struct rlimit rl;
  if (getrlimit(RLIMIT_NOFILE, &rl) == 0 && rl.rlim_cur < rl.rlim_max) {
    rl.rlim_cur = rl.rlim_max;
    (void)setrlimit(RLIMIT_NOFILE, &rl);
  }

  const size_t per_child = total / procs;
  struct Child {
    pid_t pid = -1;
    int to_child = -1;    // parent writes: port, then the teardown byte
    int from_child = -1;  // child writes: connections established
  };
  std::vector<Child> children(procs);

  for (size_t c = 0; c < procs; ++c) {
    int down[2], up[2];
    if (pipe(down) != 0 || pipe(up) != 0) {
      std::perror("pipe");
      std::exit(1);
    }
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("fork");
      std::exit(1);
    }
    if (pid == 0) {
      // --- child: hold per_child pinged connections until told to go.
      close(down[1]);
      close(up[0]);
      uint16_t port = 0;
      if (read(down[0], &port, sizeof(port)) != sizeof(port)) _exit(2);
      std::vector<Client> conns;
      conns.reserve(per_child);
      uint32_t established = 0;
      for (size_t i = 0; i < per_child; ++i) {
        auto conn = Client::Connect("tcp://127.0.0.1:" + std::to_string(port));
        if (!conn.ok()) break;
        Client client = std::move(conn).value();
        if (!client.Ping().ok()) break;
        conns.push_back(std::move(client));
        ++established;
      }
      if (write(up[1], &established, sizeof(established)) !=
          sizeof(established)) {
        _exit(2);
      }
      char go = 0;
      (void)read(down[0], &go, 1);  // parent's teardown signal (or EOF)
      // conns close on exit — a 10k-fd EOF storm for the net threads.
      _exit(0);
    }
    close(down[0]);
    close(up[1]);
    children[c] = Child{pid, down[1], up[0]};
  }

  // --- parent: only now does the process go multithreaded.
  Env env = MakeEnv(kBenchPageSize, 4096);
  const SpatialIndexOptions opt{.data = DecomposeOptions::SizeBound(8)};
  DataGenOptions dg;
  dg.seed = kSeed + 77;
  auto index = BuildZIndex(&env, GenerateData(1000, dg), opt).value();

  ServerOptions sopt;
  sopt.net_threads = 2;
  sopt.workers = 4;
  sopt.idle_timeout_ms = 0;  // the horde is deliberately idle
  sopt.listen_backlog = 1024;
  Server server(index.get(), sopt);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    std::exit(1);
  }
  const size_t threads_baseline = ProcessThreadCount();

  const uint16_t port = server.port();
  for (Child& ch : children) {
    if (write(ch.to_child, &port, sizeof(port)) != sizeof(port)) {
      std::perror("write port");
      std::exit(1);
    }
  }

  const uint64_t t0 = NowMicros();
  uint64_t established = 0;
  for (Child& ch : children) {
    uint32_t n = 0;
    if (read(ch.from_child, &n, sizeof(n)) != sizeof(n)) {
      std::fprintf(stderr, "FAIL: horde child died during setup\n");
      std::exit(1);
    }
    established += n;
  }
  const double setup_secs = (NowMicros() - t0) / 1e6;

  // Every connection is live server-side, and the thread count did not
  // move: connections are state in two epoll loops, not threads.
  const size_t threads_loaded = ProcessThreadCount();
  const uint64_t open = server.open_connections();

  // Probe latency with the horde parked in the epoll sets.
  std::vector<uint64_t> probe_us;
  {
    auto conn = Client::Connect("tcp://127.0.0.1:" + std::to_string(port));
    if (conn.ok()) {
      Client probe = std::move(conn).value();
      for (int i = 0; i < 500; ++i) {
        const uint64_t s = NowMicros();
        if (probe.Ping().ok()) probe_us.push_back(NowMicros() - s);
      }
    }
  }

  // Teardown: all children hang up at once.
  const uint64_t t1 = NowMicros();
  for (Child& ch : children) {
    const char go = 1;
    (void)write(ch.to_child, &go, 1);
  }
  for (Child& ch : children) {
    int status = 0;
    waitpid(ch.pid, &status, 0);
    close(ch.to_child);
    close(ch.from_child);
  }
  while (server.open_connections() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const double teardown_secs = (NowMicros() - t1) / 1e6;
  server.Stop();

  std::printf(
      "connection horde: %llu/%zu connections established+pinged across "
      "%zu client processes in %.1fs; open gauge %llu; threads %zu -> %zu "
      "(flat); probe ping p50 %.0fus p99 %.0fus with horde parked; "
      "EOF-storm teardown drained in %.2fs\n",
      static_cast<unsigned long long>(established), total, procs,
      setup_secs, static_cast<unsigned long long>(open), threads_baseline,
      threads_loaded, Percentile(probe_us, 0.50), Percentile(probe_us, 0.99),
      teardown_secs);

  bool failed = false;
  if (established != total || open != total) {
    std::fprintf(stderr, "FAIL: horde wanted %zu connections, got %llu "
                         "(server gauge %llu)\n",
                 total, static_cast<unsigned long long>(established),
                 static_cast<unsigned long long>(open));
    failed = true;
  }
  if (threads_loaded != threads_baseline) {
    std::fprintf(stderr,
                 "FAIL: thread count moved under the horde (%zu -> %zu)\n",
                 threads_baseline, threads_loaded);
    failed = true;
  }
  if (probe_us.size() < 500) {
    std::fprintf(stderr, "FAIL: probe client lost pings under the horde\n");
    failed = true;
  }
  if (failed) std::exit(1);
}

}  // namespace
}  // namespace zdb

int main(int argc, char** argv) {
  const size_t max_readers =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  const size_t horde =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 10000;

  // First, while this process is still single-threaded (fork safety —
  // see RunConnectionHorde): the many-idle-connections phase.
  if (horde > 0) {
    zdb::RunConnectionHorde(horde, /*procs=*/5);
  }

  const zdb::Workload w = zdb::MakeWorkload();
  zdb::Table table(
      "E14 network service, closed loop — " +
          std::to_string(zdb::kInitialObjects) + " objects, " +
          std::to_string(zdb::kBatches) + " write batches, 6 workers; "
          "latencies in us over loopback (readers+writer clients; host "
          "cores: " +
          std::to_string(std::thread::hardware_concurrency()) + ")",
      {"clients", "read q/s", "win p50", "win p99", "pt p50", "pt p99",
       "knn p50", "knn p99", "mismatch"});

  uint64_t mismatches = 0;
  for (size_t readers = 2; readers <= max_readers; readers *= 2) {
    zdb::RunPhase(w, readers, &table, &mismatches);
  }
  table.Print();
  std::printf("\n");

  zdb::RunSaturation(max_readers);

  if (mismatches != 0) {
    std::fprintf(stderr, "FAIL: %llu oracle mismatches\n",
                 static_cast<unsigned long long>(mismatches));
    return 1;
  }
  std::printf("oracle: every reply matched at an observed epoch — 0 "
              "mismatches\n");
  return 0;
}
