// Copyright (c) zdb authors. Licensed under the MIT license.
//
// E14: network service under closed-loop load. A zdb server runs
// in-process on loopback while client threads — one writer applying
// deterministic batches, the rest readers issuing window/point/kNN
// queries — each drive one synchronous connection as fast as replies
// come back. Two questions:
//
//   * served correctness: every reader reply is cross-checked against a
//     brute-force oracle at the write epochs the server reported around
//     execution (the wire twin of E13's in-process oracle). The run
//     fails loudly on any mismatch.
//   * service quality: per-opcode p50/p99 latency and aggregate qps at
//     client counts up to well past the worker pool size, plus a
//     saturation phase (one slow worker, tiny admission queue) showing
//     BUSY backpressure shedding load instead of queueing unboundedly.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <thread>
#include <vector>

#include "bench_util/runner.h"
#include "bench_util/table.h"
#include "client/client.h"
#include "server/server.h"

namespace zdb {
namespace {

using net::Client;
using net::Server;
using net::ServerOptions;

constexpr uint64_t kSeed = 0xE14;
constexpr size_t kInitialObjects = 2000;
constexpr size_t kBatches = 24;
constexpr size_t kInsertsPerBatch = 32;
constexpr size_t kErasesPerBatch = 24;
constexpr size_t kWindows = 12;
constexpr size_t kPoints = 8;
constexpr size_t kKnnPoints = 4;
constexpr size_t kKnnK = 8;
constexpr double kSelectivity = 0.01;

using OracleState = std::map<ObjectId, Rect>;

struct Workload {
  std::vector<Rect> initial;
  std::vector<WriteBatch> batches;
  std::vector<OracleState> states;
  std::vector<Rect> windows;
  std::vector<Point> points;
  std::vector<Point> knn_points;
};

Workload MakeWorkload() {
  Workload w;
  DataGenOptions dg;
  dg.distribution = Distribution::kClusters;
  dg.seed = kSeed;
  w.initial = GenerateData(kInitialObjects, dg);

  OracleState state;
  for (size_t i = 0; i < w.initial.size(); ++i) {
    state[static_cast<ObjectId>(i)] = w.initial[i];
  }
  w.states.push_back(state);

  DataGenOptions dg2;
  dg2.distribution = Distribution::kUniformLarge;
  dg2.seed = kSeed ^ 0x9e3779b97f4a7c15ULL;
  const auto extra = GenerateData(kBatches * kInsertsPerBatch, dg2);

  Random rng(kSeed + 1);
  ObjectId next_oid = static_cast<ObjectId>(w.initial.size());
  for (size_t b = 0; b < kBatches; ++b) {
    WriteBatch batch;
    std::vector<ObjectId> live;
    for (const auto& [oid, rect] : state) live.push_back(oid);
    for (size_t e = 0; e < kErasesPerBatch && !live.empty(); ++e) {
      const size_t pick = rng.Uniform(live.size());
      batch.Erase(live[pick]);
      state.erase(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    }
    for (size_t i = 0; i < kInsertsPerBatch; ++i) {
      const Rect& r = extra[b * kInsertsPerBatch + i];
      batch.Insert(r);
      state[next_oid] = r;
      ++next_oid;
    }
    w.batches.push_back(std::move(batch));
    w.states.push_back(state);
  }

  QueryGenOptions qopt;
  qopt.seed = kSeed + 2;
  w.windows = GenerateWindows(kWindows, kSelectivity, qopt);
  const auto big =
      GenerateWindows(2, 0.08, QueryGenOptions{.seed = kSeed + 3});
  w.windows.insert(w.windows.end(), big.begin(), big.end());
  w.points = GeneratePoints(kPoints, kSeed + 4);
  w.knn_points = GeneratePoints(kKnnPoints, kSeed + 5);
  return w;
}

std::vector<ObjectId> ExpectedWindow(const OracleState& st, const Rect& w) {
  std::vector<ObjectId> out;
  for (const auto& [oid, rect] : st) {
    if (rect.Intersects(w)) out.push_back(oid);
  }
  return out;
}

std::vector<ObjectId> ExpectedPoint(const OracleState& st, const Point& p) {
  std::vector<ObjectId> out;
  for (const auto& [oid, rect] : st) {
    if (rect.Contains(p)) out.push_back(oid);
  }
  return out;
}

bool MatchesWindow(const Workload& w, size_t q,
                   const std::vector<ObjectId>& got, uint64_t e0,
                   uint64_t e1) {
  for (uint64_t k = e0; k <= e1 && k < w.states.size(); ++k) {
    if (got == ExpectedWindow(w.states[k], w.windows[q])) return true;
  }
  return false;
}

bool MatchesPoint(const Workload& w, size_t q,
                  const std::vector<ObjectId>& got, uint64_t e0,
                  uint64_t e1) {
  for (uint64_t k = e0; k <= e1 && k < w.states.size(); ++k) {
    if (got == ExpectedPoint(w.states[k], w.points[q])) return true;
  }
  return false;
}

/// kNN correctness: every returned id live with its exact distance,
/// ascending, nothing closer skipped — at one epoch in [e0, e1].
bool MatchesKnn(const Workload& w, size_t q,
                const std::vector<std::pair<ObjectId, double>>& got,
                uint64_t e0, uint64_t e1) {
  constexpr double kEps = 1e-9;
  const Point& p = w.knn_points[q];
  for (uint64_t s = e0; s <= e1 && s < w.states.size(); ++s) {
    const OracleState& st = w.states[s];
    if (got.size() != std::min(kKnnK, st.size())) continue;
    bool ok = true;
    double prev = -1.0;
    for (const auto& [oid, dist] : got) {
      auto it = st.find(oid);
      if (it == st.end() ||
          std::abs(it->second.DistanceTo(p) - dist) > kEps ||
          dist + kEps < prev) {
        ok = false;
        break;
      }
      prev = dist;
    }
    if (ok && !got.empty()) {
      const double worst = got.back().second;
      std::vector<ObjectId> returned;
      for (const auto& [oid, dist] : got) returned.push_back(oid);
      std::sort(returned.begin(), returned.end());
      for (const auto& [oid, rect] : st) {
        if (!std::binary_search(returned.begin(), returned.end(), oid) &&
            rect.DistanceTo(p) + kEps < worst) {
          ok = false;
          break;
        }
      }
    }
    if (ok) return true;
  }
  return false;
}

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double Percentile(std::vector<uint64_t>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(p * (v.size() - 1) + 0.5);
  return static_cast<double>(v[idx]);
}

struct ReaderResult {
  std::vector<uint64_t> window_us, point_us, knn_us;
  uint64_t queries = 0;
  uint64_t mismatches = 0;
};

/// One closed-loop phase at `readers` reader connections (+1 writer).
/// Returns total reader qps; fills the latency table row.
void RunPhase(const Workload& w, size_t readers, Table* table,
              uint64_t* total_mismatches) {
  Env env = MakeEnv(kBenchPageSize, 8192);
  const SpatialIndexOptions opt{.data = DecomposeOptions::SizeBound(8)};
  auto index = BuildZIndex(&env, w.initial, opt).value();
  const uint64_t base = index->write_epoch();

  ServerOptions sopt;
  sopt.workers = 6;
  sopt.queue_capacity = 256;
  sopt.idle_timeout_ms = 0;
  Server server(index.get(), sopt);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    std::exit(1);
  }

  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    auto c = Client::ConnectTcp("127.0.0.1", server.port());
    if (!c.ok()) return;
    Client client = std::move(c).value();
    for (const WriteBatch& batch : w.batches) {
      auto reply = client.Apply(batch);
      if (!reply.ok()) {
        std::fprintf(stderr, "apply failed: %s\n",
                     reply.status().ToString().c_str());
        std::exit(1);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    writer_done.store(true);
  });

  std::vector<ReaderResult> results(readers);
  std::vector<std::thread> threads;
  const uint64_t t0 = NowMicros();
  for (size_t r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      auto c = Client::ConnectTcp("127.0.0.1", server.port());
      if (!c.ok()) return;
      Client client = std::move(c).value();
      ReaderResult& res = results[r];
      size_t round = 0;
      while (!writer_done.load() || round == 0) {
        for (size_t q = 0; q < w.windows.size(); ++q) {
          const uint64_t s = NowMicros();
          auto reply = client.Window(w.windows[q]);
          if (!reply.ok()) { ++res.mismatches; continue; }
          res.window_us.push_back(NowMicros() - s);
          ++res.queries;
          if (!MatchesWindow(w, q, reply->ids,
                             reply->epoch_before - base,
                             reply->epoch_after - base)) {
            ++res.mismatches;
          }
        }
        for (size_t q = 0; q < w.points.size(); ++q) {
          const uint64_t s = NowMicros();
          auto reply = client.Point(w.points[q]);
          if (!reply.ok()) { ++res.mismatches; continue; }
          res.point_us.push_back(NowMicros() - s);
          ++res.queries;
          if (!MatchesPoint(w, q, reply->ids,
                            reply->epoch_before - base,
                            reply->epoch_after - base)) {
            ++res.mismatches;
          }
        }
        for (size_t q = 0; q < w.knn_points.size(); ++q) {
          const uint64_t s = NowMicros();
          auto reply = client.Nearest(w.knn_points[q], kKnnK);
          if (!reply.ok()) { ++res.mismatches; continue; }
          res.knn_us.push_back(NowMicros() - s);
          ++res.queries;
          if (!MatchesKnn(w, q, reply->hits, reply->epoch_before - base,
                          reply->epoch_after - base)) {
            ++res.mismatches;
          }
        }
        ++round;
      }
    });
  }

  writer.join();
  for (auto& t : threads) t.join();
  const double secs = (NowMicros() - t0) / 1e6;
  server.Stop();

  std::vector<uint64_t> window_us, point_us, knn_us;
  uint64_t queries = 0, mismatches = 0;
  for (ReaderResult& r : results) {
    window_us.insert(window_us.end(), r.window_us.begin(), r.window_us.end());
    point_us.insert(point_us.end(), r.point_us.begin(), r.point_us.end());
    knn_us.insert(knn_us.end(), r.knn_us.begin(), r.knn_us.end());
    queries += r.queries;
    mismatches += r.mismatches;
  }
  *total_mismatches += mismatches;

  table->AddRow({std::to_string(readers) + "+1",
                 Fmt(queries / secs, 0),
                 Fmt(Percentile(window_us, 0.50), 0),
                 Fmt(Percentile(window_us, 0.99), 0),
                 Fmt(Percentile(point_us, 0.50), 0),
                 Fmt(Percentile(point_us, 0.99), 0),
                 Fmt(Percentile(knn_us, 0.50), 0),
                 Fmt(Percentile(knn_us, 0.99), 0),
                 std::to_string(mismatches)});
}

/// Saturation phase: one slow worker, two-slot queue, `clients` pushing
/// full-square windows. The admission queue must shed with BUSY, every
/// shed request must still get its typed reply, and retried requests
/// must eventually succeed.
void RunSaturation(size_t clients) {
  Env env = MakeEnv(kBenchPageSize, 16);
  const SpatialIndexOptions opt{.data = DecomposeOptions::SizeBound(8)};
  DataGenOptions dg;
  dg.seed = kSeed + 9;
  auto index = BuildZIndex(&env, GenerateData(400, dg), opt).value();
  env.pager->set_simulated_read_latency_us(200);

  ServerOptions sopt;
  sopt.workers = 1;
  sopt.queue_capacity = 2;
  sopt.idle_timeout_ms = 0;
  sopt.exec_threads = 0;  // keep the one worker honestly slow
  Server server(index.get(), sopt);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    std::exit(1);
  }

  constexpr int kPerClient = 30;
  std::atomic<uint64_t> ok{0}, busy{0};
  std::vector<std::thread> threads;
  const uint64_t t0 = NowMicros();
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      auto conn = Client::ConnectTcp("127.0.0.1", server.port());
      if (!conn.ok()) return;
      Client client = std::move(conn).value();
      int done = 0;
      while (done < kPerClient) {
        auto reply = client.Window(Rect{0.0, 0.0, 1.0, 1.0});
        if (reply.ok()) {
          ++ok;
          ++done;
        } else if (reply.status().IsBusy()) {
          ++busy;  // shed at the door; back off briefly, then retry
          std::this_thread::sleep_for(std::chrono::microseconds(500));
        } else {
          std::fprintf(stderr, "unexpected: %s\n",
                       reply.status().ToString().c_str());
          std::exit(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double secs = (NowMicros() - t0) / 1e6;
  server.Stop();

  std::printf(
      "saturation: %zu clients vs 1 worker / 2-slot queue — %llu served "
      "(%.0f q/s), %llu BUSY rejections (%.1f%% of attempts), "
      "busy_rejected counter %llu\n\n",
      clients, static_cast<unsigned long long>(ok.load()), ok.load() / secs,
      static_cast<unsigned long long>(busy.load()),
      100.0 * busy.load() / (ok.load() + busy.load()),
      static_cast<unsigned long long>(
          server.counters().busy_rejected.load()));
  if (busy.load() == 0) {
    std::fprintf(stderr,
                 "FAIL: no BUSY replies observed under saturation\n");
    std::exit(1);
  }
}

}  // namespace
}  // namespace zdb

int main(int argc, char** argv) {
  const size_t max_readers =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;

  const zdb::Workload w = zdb::MakeWorkload();
  zdb::Table table(
      "E14 network service, closed loop — " +
          std::to_string(zdb::kInitialObjects) + " objects, " +
          std::to_string(zdb::kBatches) + " write batches, 6 workers; "
          "latencies in us over loopback (readers+writer clients; host "
          "cores: " +
          std::to_string(std::thread::hardware_concurrency()) + ")",
      {"clients", "read q/s", "win p50", "win p99", "pt p50", "pt p99",
       "knn p50", "knn p99", "mismatch"});

  uint64_t mismatches = 0;
  for (size_t readers = 2; readers <= max_readers; readers *= 2) {
    zdb::RunPhase(w, readers, &table, &mismatches);
  }
  table.Print();
  std::printf("\n");

  zdb::RunSaturation(max_readers);

  if (mismatches != 0) {
    std::fprintf(stderr, "FAIL: %llu oracle mismatches\n",
                 static_cast<unsigned long long>(mismatches));
    return 1;
  }
  std::printf("oracle: every reply matched at an observed epoch — 0 "
              "mismatches\n");
  return 0;
}
