// Copyright (c) zdb authors. Licensed under the MIT license.
//
// A3 (ablation): decomposing exact polygon geometry versus decomposing
// the MBR, at equal element budget. Slim diagonal polygons are the worst
// case for MBR approximation: the MBR is almost entirely dead space, so
// region decomposition buys large filter-precision gains at the same
// redundancy. Reports approximation error and window-query cost for
// both paths.

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench_util/runner.h"
#include "bench_util/table.h"
#include "core/spatial_index.h"
#include "decompose/region.h"

namespace zdb {
namespace {

constexpr size_t kQueries = 20;

/// Slim, rotated "road segment" polygons along random directions.
std::vector<Polygon> RoadSegments(size_t n, uint64_t seed) {
  Random rng(seed);
  std::vector<Polygon> out;
  while (out.size() < n) {
    const double cx = rng.UniformDouble(0.15, 0.85);
    const double cy = rng.UniformDouble(0.15, 0.85);
    const double len = rng.UniformDouble(0.03, 0.12);
    const double width = rng.UniformDouble(0.001, 0.004);
    const double ang = rng.UniformDouble(0, 3.14159265358979);
    const double dx = std::cos(ang) * len / 2, dy = std::sin(ang) * len / 2;
    const double wx = -std::sin(ang) * width / 2,
                 wy = std::cos(ang) * width / 2;
    Polygon p({{cx - dx - wx, cy - dy - wy},
               {cx + dx - wx, cy + dy - wy},
               {cx + dx + wx, cy + dy + wy},
               {cx - dx + wx, cy - dy + wy}});
    const Rect b = p.Bounds();
    if (b.xlo >= 0 && b.ylo >= 0 && b.xhi < 1 && b.yhi < 1) {
      out.push_back(std::move(p));
    }
  }
  return out;
}

void Run(size_t n) {
  const auto roads = RoadSegments(n, 61);
  const auto queries = GenerateWindows(kQueries, 0.001, QueryGenOptions{});

  Table table("A3 exact-geometry vs MBR decomposition (slim rotated "
              "polygons, 0.1% windows, per query)",
              {"config", "redundancy", "avg error", "accesses",
               "false hits", "results"});

  for (uint32_t k : {4u, 16u}) {
    for (bool exact : {false, true}) {
      Env env = MakeEnv(kBenchPageSize, 32);
      SpatialIndexOptions opt;
      opt.data = DecomposeOptions::SizeBound(k);
      auto index = MakeZIndex(&env, opt).value();
      for (const Polygon& p : roads) {
        if (exact) {
          if (!index->InsertPolygon(p).ok()) std::exit(1);
        } else {
          // MBR path, but refinement still uses the exact ring: insert
          // as polygon-kind with an MBR-driven decomposition. Emulated by
          // inserting the bounding box as the decomposition driver.
          PolyRef ref = index->polygons()->Insert(p).value();
          ObjectId oid = index->Insert(p.Bounds(), ref).value();
          ObjectRecord rec = index->objects()->Fetch(oid).value();
          rec.kind = ObjectKind::kPolygon;
          if (!index->objects()->Rewrite(oid, rec).ok()) std::exit(1);
        }
      }
      if (!env.pool->FlushAll().ok()) std::exit(1);

      // Approximation error measured against the exact polygon area for
      // BOTH paths (the index's own build stats measure the MBR path
      // against the MBR, which is not comparable).
      double err_sum = 0.0;
      for (const Polygon& p : roads) {
        double covered;
        if (exact) {
          const PolygonRegion region(&p);
          covered =
              DecomposeRegion(region, index->mapper(), opt.data).covered_area;
        } else {
          const RectRegion region(p.Bounds());
          covered =
              DecomposeRegion(region, index->mapper(), opt.data).covered_area;
        }
        err_sum += (covered - p.Area()) / p.Area();
      }

      auto rr = RunWindowQueries(&env, index.get(), queries).value();
      table.AddRow(
          {std::string(exact ? "exact" : "mbr") + " k=" + std::to_string(k),
           Fmt(index->build_stats().redundancy()),
           Fmt(err_sum / roads.size(), 2), Fmt(rr.avg_accesses, 1),
           Fmt(rr.per_query(rr.totals.false_hits), 1),
           Fmt(rr.avg_results, 1)});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace zdb

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10000;
  zdb::Run(n);
  return 0;
}
