// Copyright (c) zdb authors. Licensed under the MIT license.
//
// E17: group-commit log shipping to read replicas. One leader and two
// followers run in-process over real loopback sockets; the leader ships
// every committed batch as an epoch-stamped log record, the followers
// replay through the normal publish path. Three questions:
//
//   * replica correctness: after catch-up, every follower answers every
//     window/point/kNN query byte-identically to the leader (same ids,
//     same order — leader-assigned oids replay verbatim).
//   * read scaling: aggregate closed-loop window qps with reads
//     round-robined across the two followers
//     (ReadPreference::kFollower) vs the same readers against one
//     standalone node.
//   * staleness: while a writer streams batches into the leader, how
//     far behind (in publish epochs) do the followers trail, and does a
//     bounded-staleness read honestly reject when the bound is tighter
//     than the lag.
//
// Also exercised end-to-end: a write sent to a follower comes back
// NOT_LEADER naming the leader's endpoint, and the client follows the
// redirect transparently.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/runner.h"
#include "bench_util/table.h"
#include "client/client.h"
#include "server/server.h"
#include "zdb/db.h"

namespace zdb {
namespace {

using net::Client;
using net::ClientOptions;
using net::ReadPreference;
using net::Server;
using net::ServerOptions;
using net::ServerRole;

constexpr uint64_t kSeed = 0xE17;
constexpr size_t kInitialObjects = 4000;
constexpr size_t kStreamBatches = 48;
constexpr size_t kInsertsPerBatch = 32;
constexpr size_t kWindows = 16;
constexpr size_t kPoints = 8;
constexpr size_t kKnnPoints = 4;
constexpr uint32_t kKnnK = 8;
constexpr double kSelectivity = 0.01;
constexpr int kReadPhaseMs = 400;
constexpr size_t kReaders = 4;

struct Node {
  std::unique_ptr<DB> db;
  std::unique_ptr<Server> server;
  std::string uri;
};

Node StartNode(ServerRole role, const std::string& leader_uri) {
  DBOptions dopt;
  dopt.index.data = DecomposeOptions::SizeBound(8);
  dopt.memory_journal = true;
  auto db_r = DB::Open("", dopt);
  if (!db_r.ok()) {
    std::fprintf(stderr, "e17: open failed: %s\n",
                 db_r.status().ToString().c_str());
    std::exit(1);
  }
  Node n;
  n.db = std::move(db_r).value();
  ServerOptions sopt;
  sopt.port = 0;  // ephemeral
  sopt.workers = 4;
  sopt.idle_timeout_ms = 0;
  sopt.role = role;
  sopt.leader_endpoint = leader_uri;
  n.server = std::make_unique<Server>(n.db.get(), sopt);
  const Status s = n.server->Start();
  if (!s.ok()) {
    std::fprintf(stderr, "e17: server start failed: %s\n",
                 s.ToString().c_str());
    std::exit(1);
  }
  n.uri = "tcp://127.0.0.1:" + std::to_string(n.server->port());
  return n;
}

/// Polls until `db` has applied through `target_epoch` (its own write
/// epoch reaching the leader's, since every leader commit ships exactly
/// one record and both start at epoch zero).
void AwaitCatchUp(const DB& db, uint64_t target_epoch) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (db.write_epoch() < target_epoch) {
    if (std::chrono::steady_clock::now() > deadline) {
      std::fprintf(stderr, "e17: follower never caught up (%llu < %llu)\n",
                   static_cast<unsigned long long>(db.write_epoch()),
                   static_cast<unsigned long long>(target_epoch));
      std::exit(1);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

struct QuerySet {
  std::vector<Rect> windows;
  std::vector<Point> points;
  std::vector<Point> knn_points;
};

/// Byte-identical check: every query answered by `probe` must equal the
/// leader's answer exactly (ids and order). Returns mismatch count.
uint64_t VerifyIdentical(Client& leader, Client& probe, const QuerySet& q) {
  uint64_t mismatches = 0;
  for (const Rect& w : q.windows) {
    auto a = leader.Window(w);
    auto b = probe.Window(w);
    if (!a.ok() || !b.ok() || a.value().ids != b.value().ids) ++mismatches;
  }
  for (const Point& p : q.points) {
    auto a = leader.Point(p);
    auto b = probe.Point(p);
    if (!a.ok() || !b.ok() || a.value().ids != b.value().ids) ++mismatches;
  }
  for (const Point& p : q.knn_points) {
    auto a = leader.Nearest(p, kKnnK);
    auto b = probe.Nearest(p, kKnnK);
    if (!a.ok() || !b.ok() || a.value().hits != b.value().hits) {
      ++mismatches;
    }
  }
  return mismatches;
}

/// Closed-loop window readers against `make_client`'s connections for
/// kReadPhaseMs; returns aggregate queries served.
uint64_t ReadPhase(const QuerySet& q,
                   const std::function<Result<Client>()>& make_client) {
  std::atomic<uint64_t> total{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      auto c = make_client();
      if (!c.ok()) return;
      Client client = std::move(c).value();
      uint64_t served = 0;
      size_t i = r;
      while (!stop.load(std::memory_order_relaxed)) {
        if (client.Window(q.windows[i % q.windows.size()]).ok()) ++served;
        ++i;
      }
      total.fetch_add(served);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(kReadPhaseMs));
  stop.store(true);
  for (auto& t : threads) t.join();
  return total.load();
}

int Run() {
  // ---- topology: one leader, two followers, real sockets ------------
  Node leader = StartNode(ServerRole::kLeader, "");
  Node f1 = StartNode(ServerRole::kFollower, leader.uri);
  Node f2 = StartNode(ServerRole::kFollower, leader.uri);
  const std::vector<std::string> followers = {f1.uri, f2.uri};

  // ---- seed through the wire (the sink is attached, so it ships) ----
  DataGenOptions dg;
  dg.distribution = Distribution::kClusters;
  dg.seed = kSeed;
  const std::vector<Rect> initial = GenerateData(kInitialObjects, dg);

  auto lc_r = Client::Connect(leader.uri);
  if (!lc_r.ok()) {
    std::fprintf(stderr, "e17: leader connect failed\n");
    return 1;
  }
  Client leader_client = std::move(lc_r).value();
  {
    WriteBatch batch;
    for (const Rect& r : initial) batch.Insert(r);
    auto r = leader_client.Apply(batch);
    if (!r.ok()) {
      std::fprintf(stderr, "e17: seed apply failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
  }

  // ---- a write aimed at a follower redirects to the leader ----------
  auto fc_r = Client::Connect(f1.uri);
  if (!fc_r.ok()) {
    std::fprintf(stderr, "e17: follower connect failed\n");
    return 1;
  }
  Client redirected = std::move(fc_r).value();
  {
    WriteBatch one;
    one.Insert(Rect{0.5, 0.5, 0.51, 0.51});
    auto r = redirected.Apply(one);
    if (!r.ok() || redirected.endpoint() != leader.uri) {
      std::fprintf(stderr, "e17: NOT_LEADER redirect failed (%s)\n",
                   r.ok() ? redirected.endpoint().c_str()
                          : r.status().ToString().c_str());
      return 1;
    }
  }

  AwaitCatchUp(*f1.db, leader.db->write_epoch());
  AwaitCatchUp(*f2.db, leader.db->write_epoch());

  QueryGenOptions qopt;
  qopt.seed = kSeed + 2;
  QuerySet q;
  q.windows = GenerateWindows(kWindows, kSelectivity, qopt);
  q.points = GeneratePoints(kPoints, kSeed + 4);
  q.knn_points = GeneratePoints(kKnnPoints, kSeed + 5);

  // ---- gate 1: followers answer byte-identically --------------------
  uint64_t mismatches = 0;
  for (const std::string& uri : followers) {
    auto c = Client::Connect(uri);
    if (!c.ok()) {
      std::fprintf(stderr, "e17: probe connect failed\n");
      return 1;
    }
    Client probe = std::move(c).value();
    mismatches += VerifyIdentical(leader_client, probe, q);
  }
  std::printf("replica check: %llu mismatches across %zu queries x 2 "
              "followers\n",
              static_cast<unsigned long long>(mismatches),
              q.windows.size() + q.points.size() + q.knn_points.size());

  // ---- read scaling: standalone vs leader + 2 followers -------------
  Node solo = StartNode(ServerRole::kStandalone, "");
  {
    auto c = Client::Connect(solo.uri);
    if (!c.ok()) return 1;
    Client sc = std::move(c).value();
    WriteBatch batch;
    for (const Rect& r : initial) batch.Insert(r);
    if (!sc.Apply(batch).ok()) return 1;
  }
  const uint64_t solo_served = ReadPhase(q, [&] {
    return Client::Connect(solo.uri);
  });
  const uint64_t repl_served = ReadPhase(q, [&] {
    ClientOptions copt;
    copt.read_preference = ReadPreference::kFollower;
    copt.followers = followers;
    return Client::Connect(leader.uri, copt);
  });

  Table t("E17: read throughput, 4 closed-loop readers",
          {"topology", "window qps", "speedup"});
  const double solo_qps = solo_served * 1000.0 / kReadPhaseMs;
  const double repl_qps = repl_served * 1000.0 / kReadPhaseMs;
  t.AddRow({"standalone", Fmt(solo_qps, 0), Fmt(1.0)});
  t.AddRow({"leader+2 followers", Fmt(repl_qps, 0),
            Fmt(solo_qps > 0 ? repl_qps / solo_qps : 0.0)});
  t.Print();

  // ---- lag under a live write stream --------------------------------
  DataGenOptions dg2;
  dg2.distribution = Distribution::kUniformLarge;
  dg2.seed = kSeed ^ 0x9e3779b97f4a7c15ULL;
  const auto extra = GenerateData(kStreamBatches * kInsertsPerBatch, dg2);

  std::atomic<bool> writing{true};
  uint64_t max_lag = 0;
  uint64_t lag_samples = 0;
  uint64_t lag_sum = 0;
  std::thread sampler([&] {
    while (writing.load(std::memory_order_relaxed)) {
      const uint64_t head = leader.db->write_epoch();
      const uint64_t applied =
          std::min(f1.db->write_epoch(), f2.db->write_epoch());
      const uint64_t lag = head > applied ? head - applied : 0;
      max_lag = std::max(max_lag, lag);
      lag_sum += lag;
      ++lag_samples;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  for (size_t b = 0; b < kStreamBatches; ++b) {
    WriteBatch batch;
    for (size_t i = 0; i < kInsertsPerBatch; ++i) {
      batch.Insert(extra[b * kInsertsPerBatch + i]);
    }
    if (!leader_client.Apply(batch, Durability::kPublished).ok()) {
      std::fprintf(stderr, "e17: stream apply failed\n");
      return 1;
    }
  }
  writing.store(false);
  sampler.join();

  // A read bounded tighter than the live lag must have been honest; a
  // read with a loose bound must succeed on a caught-up follower.
  AwaitCatchUp(*f1.db, leader.db->write_epoch());
  AwaitCatchUp(*f2.db, leader.db->write_epoch());
  {
    ClientOptions copt;
    copt.read_preference = ReadPreference::kBoundedStaleness;
    copt.max_lag_epochs = 1u << 20;  // loose: follower must serve it
    copt.followers = followers;
    auto c = Client::Connect(leader.uri, copt);
    if (!c.ok()) return 1;
    Client bounded = std::move(c).value();
    if (!bounded.Window(q.windows[0]).ok()) {
      std::fprintf(stderr, "e17: bounded-staleness read failed\n");
      return 1;
    }
  }

  Table lt("E17: follower staleness during the write stream",
           {"metric", "epochs"});
  lt.AddRow({"batches streamed", Fmt(static_cast<uint64_t>(kStreamBatches))});
  lt.AddRow({"max lag", Fmt(max_lag)});
  lt.AddRow({"mean lag",
             Fmt(lag_samples ? static_cast<double>(lag_sum) / lag_samples
                             : 0.0)});
  lt.Print();

  // ---- gate 2: byte-identical again after the stream ----------------
  for (const std::string& uri : followers) {
    auto c = Client::Connect(uri);
    if (!c.ok()) return 1;
    Client probe = std::move(c).value();
    mismatches += VerifyIdentical(leader_client, probe, q);
  }
  std::printf("replica check after stream: %llu total mismatches\n",
              static_cast<unsigned long long>(mismatches));

  f1.server->Stop();
  f2.server->Stop();
  leader.server->Stop();
  solo.server->Stop();

  if (mismatches != 0) {
    std::fprintf(stderr, "E17 FAILED: follower answers diverged\n");
    return 1;
  }
  std::printf("E17 passed: followers byte-identical, redirect + bounded "
              "staleness exercised\n");
  return 0;
}

}  // namespace
}  // namespace zdb

int main() { return zdb::Run(); }
