// Copyright (c) zdb authors. Licensed under the MIT license.
//
// A1 (ablation): query-side strategy — decompose the query into elements
// versus scanning its single enclosing element with BIGMIN dead-space
// skipping. Diagonal data maximizes the dead space a coarse query
// approximation drags in. Expected shape: both beat the naive single-
// element scan without skipping; fine decomposition and BIGMIN land in
// the same ballpark (they skip the same dead space by different means).

#include <cstdlib>

#include "bench_util/runner.h"
#include "bench_util/table.h"

namespace zdb {
namespace {

constexpr size_t kQueries = 20;

void RunDistribution(Distribution dist, size_t n) {
  DataGenOptions dg;
  dg.distribution = dist;
  const auto data = GenerateData(n, dg);
  const auto queries = GenerateWindows(kQueries, 0.01, QueryGenOptions{});

  Table table("A1 query strategy ablation — " + DistributionName(dist) +
                  " (data k=8, 1% windows, per query)",
              {"strategy", "accesses", "entries", "candidates",
               "bigmin jumps", "results"});

  auto run = [&](const std::string& label, bool bigmin,
                 const DecomposeOptions& query_policy) {
    Env env = MakeEnv();
    SpatialIndexOptions opt;
    opt.data = DecomposeOptions::SizeBound(8);
    opt.query = query_policy;
    opt.use_bigmin = bigmin;
    auto index = BuildZIndex(&env, data, opt).value();
    auto rr = RunWindowQueries(&env, index.get(), queries).value();
    table.AddRow({label, Fmt(rr.avg_accesses, 1),
                  Fmt(rr.per_query(rr.totals.index_entries), 1),
                  Fmt(rr.per_query(rr.totals.candidates), 1),
                  Fmt(rr.per_query(rr.totals.bigmin_jumps), 1),
                  Fmt(rr.avg_results, 1)});
  };

  run("single element, no skipping", false, DecomposeOptions::SizeBound(1));
  run("single element + BIGMIN", true, DecomposeOptions::SizeBound(1));
  run("decompose k=4", false, DecomposeOptions::SizeBound(4));
  run("decompose k=16", false, DecomposeOptions::SizeBound(16));
  run("decompose e=0.05", false, DecomposeOptions::ErrorBound(0.05, 256));
  table.Print();
}

}  // namespace
}  // namespace zdb

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
  for (zdb::Distribution d :
       {zdb::Distribution::kDiagonal, zdb::Distribution::kClusters}) {
    zdb::RunDistribution(d, n);
  }
  return 0;
}
