// Copyright (c) zdb authors. Licensed under the MIT license.
//
// E4 (Figure 3): the redundancy crossover — total query cost versus k on
// a fine k ladder. Page accesses include both the filter scans and the
// refinement's object fetches, so the two opposing forces are summed:
// less dead space (fewer false hits, fewer wasted data-page reads) versus
// a larger index (longer scans, more duplicates). Expected shape: a cost
// minimum at moderate redundancy, rising on both sides.

#include <cstdio>
#include <cstdlib>

#include "bench_util/runner.h"
#include "bench_util/table.h"

namespace zdb {
namespace {

constexpr size_t kQueries = 20;

void RunDistribution(Distribution dist, size_t n, double selectivity) {
  DataGenOptions dg;
  dg.distribution = dist;
  const auto data = GenerateData(n, dg);
  const auto queries =
      GenerateWindows(kQueries, selectivity, QueryGenOptions{});

  Table table(
      "E4 total cost crossover — " + DistributionName(dist) + " (" +
          Fmt(selectivity * 100, 2) + "% windows)",
      {"k", "redundancy", "accesses/q", "index pages", "false hits/q",
       "dups/q", "results/q"});

  double best_cost = 1e300;
  uint32_t best_k = 1;
  for (uint32_t k : {1u, 2u, 3u, 4u, 6u, 8u, 12u, 16u, 24u, 32u, 48u, 64u}) {
    Env env = MakeEnv();
    SpatialIndexOptions opt;
    opt.data = DecomposeOptions::SizeBound(k);
    BuildResult br;
    auto index = BuildZIndex(&env, data, opt, &br).value();
    auto stats = index->btree()->ComputeStats().value();
    auto rr = RunWindowQueries(&env, index.get(), queries).value();
    if (rr.avg_accesses < best_cost) {
      best_cost = rr.avg_accesses;
      best_k = k;
    }
    table.AddRow({std::to_string(k), Fmt(br.redundancy),
                  Fmt(rr.avg_accesses, 1),
                  Fmt(static_cast<uint64_t>(stats.total_pages())),
                  Fmt(rr.per_query(rr.totals.false_hits), 1),
                  Fmt(rr.per_query(rr.totals.duplicates()), 1),
                  Fmt(rr.avg_results, 1)});
  }
  table.Print();
  std::printf("optimal redundancy bound: k = %u (%.1f accesses/query)\n",
              best_k, best_cost);
}

}  // namespace
}  // namespace zdb

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
  zdb::RunDistribution(zdb::Distribution::kUniformLarge, n, 0.01);
  zdb::RunDistribution(zdb::Distribution::kDiagonal, n, 0.01);
  zdb::RunDistribution(zdb::Distribution::kClusters, n, 0.001);
  return 0;
}
