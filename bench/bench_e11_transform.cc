// Copyright (c) zdb authors. Licensed under the MIT license.
//
// E11 (extension): redundancy versus transformation — the era's two
// B+-tree-compatible routes to spatial indexing. The transformation
// stores each rectangle once as a 4-D corner point (redundancy 1, cheap
// updates); the redundant z-index stores k elements per object. The 4-D
// query boxes of the transformation touch two faces of the transform
// space and cover it coarsely, so its filter scans more entries —
// especially for large query windows. Expected shape: transformation
// wins on build cost and small windows over k=1, loses to moderate
// redundancy on queries; its relative standing degrades as windows grow.

#include <cstdio>
#include <cstdlib>

#include "bench_util/runner.h"
#include "bench_util/table.h"
#include "transform/transform_index.h"

namespace zdb {
namespace {

constexpr size_t kQueries = 20;
constexpr size_t kPoints = 100;

void RunDistribution(Distribution dist, size_t n) {
  DataGenOptions dg;
  dg.distribution = dist;
  const auto data = GenerateData(n, dg);
  const auto small_windows =
      GenerateWindows(kQueries, 0.001, QueryGenOptions{});
  const auto big_windows = GenerateWindows(kQueries, 0.01, QueryGenOptions{});
  const auto points = GeneratePoints(kPoints, 1111);

  Table table("E11 redundancy vs transformation — " +
                  DistributionName(dist) + " (" + std::to_string(n) +
                  " objects, accesses/query)",
              {"method", "0.1% win", "1% win", "point", "insert acc",
               "entries"});

  auto run_z = [&](const std::string& label, uint32_t k) {
    Env env = MakeEnv();
    SpatialIndexOptions opt;
    opt.data = DecomposeOptions::SizeBound(k);
    BuildResult br;
    auto index = BuildZIndex(&env, data, opt, &br).value();
    auto r_small = RunWindowQueries(&env, index.get(), small_windows).value();
    auto r_big = RunWindowQueries(&env, index.get(), big_windows).value();
    auto r_pt = RunPointQueries(&env, index.get(), points).value();
    table.AddRow({label, Fmt(r_small.avg_accesses, 1),
                  Fmt(r_big.avg_accesses, 1), Fmt(r_pt.avg_accesses, 1),
                  Fmt(br.avg_insert_accesses, 2),
                  Fmt(index->btree()->size())});
  };

  auto run_transform = [&](const std::string& label, uint32_t qelems) {
    Env env = MakeEnv();
    TransformIndexOptions opt;
    opt.query_elements = qelems;
    const IoStats snap = env.pager->io_stats();
    auto index = TransformIndex::Create(env.pool.get(), opt).value();
    for (const Rect& r : data) {
      if (!index->Insert(r).ok()) std::exit(1);
    }
    if (!env.pool->FlushAll().ok()) std::exit(1);
    const double insert_acc =
        static_cast<double>(env.Delta(snap).accesses()) / n;

    auto run_batch = [&](const std::vector<Rect>& windows) {
      uint64_t total = 0;
      for (const Rect& w : windows) {
        if (!env.pool->Clear().ok()) std::exit(1);
        const IoStats s = env.pager->io_stats();
        if (!index->WindowQuery(w).ok()) std::exit(1);
        total += env.Delta(s).accesses();
      }
      return static_cast<double>(total) / windows.size();
    };
    uint64_t pt_total = 0;
    for (const Point& p : points) {
      if (!env.pool->Clear().ok()) std::exit(1);
      const IoStats s = env.pager->io_stats();
      if (!index->PointQuery(p).ok()) std::exit(1);
      pt_total += env.Delta(s).accesses();
    }
    table.AddRow({label, Fmt(run_batch(small_windows), 1),
                  Fmt(run_batch(big_windows), 1),
                  Fmt(static_cast<double>(pt_total) / kPoints, 1),
                  Fmt(insert_acc, 2), Fmt(index->btree()->size())});
  };

  run_z("z k=1", 1);
  run_z("z k=4", 4);
  run_z("z k=8", 8);
  run_transform("transform q=16", 16);
  run_transform("transform q=64", 64);
  run_transform("transform q=256", 256);
  table.Print();
}

}  // namespace
}  // namespace zdb

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
  for (zdb::Distribution d :
       {zdb::Distribution::kUniformSmall, zdb::Distribution::kUniformLarge,
        zdb::Distribution::kDiagonal}) {
    zdb::RunDistribution(d, n);
  }
  return 0;
}
