// Copyright (c) zdb authors. Licensed under the MIT license.
//
// E2 (Figure 1): window-query page accesses versus redundancy. For each
// distribution, sweep the size-bound k and report the average page
// accesses per query (cold cache) at four selectivities. Expected shape:
// a steep drop from k=1 to moderate k (the single enclosing element of an
// object straddling a high-order partition line is enormous), flattening
// out and eventually rising as the index itself grows.

#include <cstdlib>

#include "bench_util/runner.h"
#include "bench_util/table.h"

namespace zdb {
namespace {

constexpr double kSelectivities[] = {0.0001, 0.001, 0.01, 0.1};
constexpr size_t kQueries = 20;

void RunDistribution(Distribution dist, size_t n) {
  DataGenOptions dg;
  dg.distribution = dist;
  const auto data = GenerateData(n, dg);

  std::vector<std::vector<Rect>> query_sets;
  for (double sel : kSelectivities) {
    query_sets.push_back(GenerateWindows(kQueries, sel, QueryGenOptions{}));
  }

  Table table("E2 window accesses vs redundancy — " +
                  DistributionName(dist) + " (" + std::to_string(n) +
                  " objects, " + std::to_string(kQueries) +
                  " queries/cell)",
              {"k", "redundancy", "0.01% win", "0.1% win", "1% win",
               "10% win"});

  for (uint32_t k : {1u, 2u, 4u, 8u, 16u, 32u}) {
    Env env = MakeEnv();
    SpatialIndexOptions opt;
    opt.data = DecomposeOptions::SizeBound(k);
    BuildResult br;
    auto index = BuildZIndex(&env, data, opt, &br).value();
    std::vector<std::string> row{std::to_string(k), Fmt(br.redundancy)};
    for (const auto& queries : query_sets) {
      auto rr = RunWindowQueries(&env, index.get(), queries).value();
      row.push_back(Fmt(rr.avg_accesses, 1));
    }
    table.AddRow(row);
  }
  table.Print();
}

}  // namespace
}  // namespace zdb

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
  for (zdb::Distribution d :
       {zdb::Distribution::kUniformSmall, zdb::Distribution::kUniformLarge,
        zdb::Distribution::kClusters, zdb::Distribution::kDiagonal}) {
    zdb::RunDistribution(d, n);
  }
  return 0;
}
