// Copyright (c) zdb authors. Licensed under the MIT license.
//
// E6 (Table 3): update cost and index size versus redundancy. Reports
// per-insert page accesses while growing the file from empty (small
// buffer pool, so the measurement reflects real page traffic), final
// index/data pages, and per-erase accesses for a random 5% of the
// objects. Expected shape: both update costs and sizes grow roughly
// linearly with the achieved redundancy.

#include <cstdio>
#include <cstdlib>

#include "bench_util/runner.h"
#include "bench_util/table.h"

namespace zdb {
namespace {

void RunDistribution(Distribution dist, size_t n) {
  DataGenOptions dg;
  dg.distribution = dist;
  const auto data = GenerateData(n, dg);

  Table table("E6 update cost vs redundancy — " + DistributionName(dist),
              {"policy", "redundancy", "insert acc", "erase acc",
               "index pages", "data pages", "height"});

  auto add_row = [&](const std::string& label,
                     const SpatialIndexOptions& opt) {
    Env env = MakeEnv();
    BuildResult br;
    auto index = BuildZIndex(&env, data, opt, &br).value();
    auto stats = index->btree()->ComputeStats().value();

    // Erase a deterministic random 5%.
    Random rng(7);
    const size_t erases = n / 20;
    std::vector<ObjectId> victims;
    std::vector<bool> chosen(n, false);
    while (victims.size() < erases) {
      const ObjectId oid = static_cast<ObjectId>(rng.Uniform(n));
      if (!chosen[oid]) {
        chosen[oid] = true;
        victims.push_back(oid);
      }
    }
    const IoStats snap = env.pager->io_stats();
    for (ObjectId oid : victims) {
      Status s = index->Erase(oid);
      if (!s.ok()) {
        std::fprintf(stderr, "erase failed: %s\n", s.ToString().c_str());
        std::exit(1);
      }
    }
    const double erase_acc =
        static_cast<double>(env.Delta(snap).accesses()) / erases;

    table.AddRow({label, Fmt(br.redundancy), Fmt(br.avg_insert_accesses, 2),
                  Fmt(erase_acc, 2),
                  Fmt(static_cast<uint64_t>(stats.total_pages())),
                  Fmt(static_cast<uint64_t>(index->objects()->page_count())),
                  Fmt(static_cast<uint64_t>(stats.height))});
  };

  for (uint32_t k : {1u, 2u, 4u, 8u, 16u, 32u}) {
    SpatialIndexOptions opt;
    opt.data = DecomposeOptions::SizeBound(k);
    add_row("size-bound k=" + std::to_string(k), opt);
  }
  for (double eps : {0.5, 0.1}) {
    SpatialIndexOptions opt;
    opt.data = DecomposeOptions::ErrorBound(eps);
    add_row("error-bound e=" + Fmt(eps, 2), opt);
  }
  table.Print();
}

}  // namespace
}  // namespace zdb

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
  for (zdb::Distribution d :
       {zdb::Distribution::kUniformSmall, zdb::Distribution::kUniformLarge,
        zdb::Distribution::kContours}) {
    zdb::RunDistribution(d, n);
  }
  return 0;
}
