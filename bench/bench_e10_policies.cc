// Copyright (c) zdb authors. Licensed under the MIT license.
//
// E10 (Table 5): size-bound versus error-bound decomposition at matched
// average redundancy. For each size-bound k, an epsilon is searched whose
// achieved average redundancy is closest to k's; the two policies are
// then compared on approximation error and query cost at (approximately)
// equal index size. Expected shape: error-bound wins — it spends extra
// elements only on the objects that are badly approximated, so at the
// same average redundancy its worst objects are far better covered.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench_util/runner.h"
#include "bench_util/table.h"

namespace zdb {
namespace {

constexpr size_t kQueries = 20;

struct Measured {
  double redundancy = 0.0;
  double avg_error = 0.0;
  double max_error = 0.0;  ///< worst single-object approximation error
  double accesses = 0.0;
  double false_hits = 0.0;
};

Measured Measure(const std::vector<Rect>& data,
                 const std::vector<Rect>& queries,
                 const SpatialIndexOptions& opt) {
  Env env = MakeEnv();
  BuildResult br;
  auto index = BuildZIndex(&env, data, opt, &br).value();
  auto rr = RunWindowQueries(&env, index.get(), queries).value();
  Measured m;
  m.redundancy = br.redundancy;
  m.avg_error = br.avg_error;
  m.accesses = rr.avg_accesses;
  m.false_hits = rr.per_query(rr.totals.false_hits);
  // Worst-case per-object error: the quantity the error-bound policy
  // actually guarantees (size-bound leaves it unbounded).
  const SpaceMapper mapper(Rect{0, 0, 1, 1}, opt.grid_bits);
  for (const Rect& r : data) {
    const auto d = Decompose(mapper.ToGrid(r), opt.grid_bits, opt.data);
    m.max_error = std::max(m.max_error, d.error());
  }
  return m;
}

/// Average redundancy an epsilon achieves (decomposition only, no index).
double RedundancyOf(const std::vector<Rect>& data, uint32_t grid_bits,
                    double eps) {
  const SpaceMapper mapper(Rect{0, 0, 1, 1}, grid_bits);
  uint64_t entries = 0;
  for (const Rect& r : data) {
    entries += Decompose(mapper.ToGrid(r), grid_bits,
                         DecomposeOptions::ErrorBound(eps))
                   .elements.size();
  }
  return static_cast<double>(entries) / data.size();
}

void RunDistribution(Distribution dist, size_t n) {
  DataGenOptions dg;
  dg.distribution = dist;
  const auto data = GenerateData(n, dg);
  const auto queries = GenerateWindows(kQueries, 0.01, QueryGenOptions{});

  Table table("E10 size-bound vs error-bound at matched redundancy — " +
                  DistributionName(dist) + " (1% windows)",
              {"pair", "policy", "redundancy", "avg error", "max error",
               "accesses/q", "false hits/q"});

  const std::vector<double> eps_ladder = {
      100.0, 50.0, 25.0, 12.0, 6.0, 3.0, 2.0, 1.5, 1.0, 0.7, 0.5,
      0.35,  0.25, 0.18, 0.12, 0.08, 0.05, 0.03, 0.02, 0.01};
  for (uint32_t k : {2u, 4u, 8u, 16u}) {
    SpatialIndexOptions sopt;
    sopt.data = DecomposeOptions::SizeBound(k);
    const Measured size_bound = Measure(data, queries, sopt);

    // Find the epsilon whose redundancy best matches.
    double best_eps = eps_ladder[0];
    double best_diff = 1e300;
    for (double eps : eps_ladder) {
      const double r = RedundancyOf(data, sopt.grid_bits, eps);
      const double diff = std::abs(r - size_bound.redundancy);
      if (diff < best_diff) {
        best_diff = diff;
        best_eps = eps;
      }
    }
    SpatialIndexOptions eopt;
    eopt.data = DecomposeOptions::ErrorBound(best_eps);
    const Measured error_bound = Measure(data, queries, eopt);

    const std::string pair = "k=" + std::to_string(k);
    table.AddRow({pair, "size-bound", Fmt(size_bound.redundancy),
                  Fmt(size_bound.avg_error, 3), Fmt(size_bound.max_error, 1),
                  Fmt(size_bound.accesses, 1),
                  Fmt(size_bound.false_hits, 1)});
    table.AddRow({pair, "error-bound e=" + Fmt(best_eps, 2),
                  Fmt(error_bound.redundancy), Fmt(error_bound.avg_error, 3),
                  Fmt(error_bound.max_error, 1), Fmt(error_bound.accesses, 1),
                  Fmt(error_bound.false_hits, 1)});
  }
  table.Print();
}

}  // namespace
}  // namespace zdb

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 15000;
  for (zdb::Distribution d :
       {zdb::Distribution::kUniformLarge, zdb::Distribution::kSkewedSizes}) {
    zdb::RunDistribution(d, n);
  }
  return 0;
}
