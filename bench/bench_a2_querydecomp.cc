// Copyright (c) zdb authors. Licensed under the MIT license.
//
// A2 (ablation): query-side decomposition granularity at fixed data-side
// redundancy. More query elements mean tighter query coverage (fewer
// spurious candidates in the query approximation's dead space) but more
// scans, each costing at least a root-to-leaf descent. Expected shape:
// an interior optimum, typically at a handful of query elements.

#include <cstdlib>

#include "bench_util/runner.h"
#include "bench_util/table.h"

namespace zdb {
namespace {

constexpr size_t kQueries = 20;

void RunDistribution(Distribution dist, size_t n, double selectivity) {
  DataGenOptions dg;
  dg.distribution = dist;
  const auto data = GenerateData(n, dg);
  const auto queries =
      GenerateWindows(kQueries, selectivity, QueryGenOptions{});

  Table table("A2 query decomposition granularity — " +
                  DistributionName(dist) + " (data k=8, " +
                  Fmt(selectivity * 100, 1) + "% windows, per query)",
              {"query policy", "q-elems", "probes", "accesses",
               "candidates", "false hits", "results"});

  auto run = [&](const std::string& label, const DecomposeOptions& qpolicy) {
    Env env = MakeEnv();
    SpatialIndexOptions opt;
    opt.data = DecomposeOptions::SizeBound(8);
    opt.query = qpolicy;
    auto index = BuildZIndex(&env, data, opt).value();
    auto rr = RunWindowQueries(&env, index.get(), queries).value();
    table.AddRow({label, Fmt(rr.per_query(rr.totals.query_elements), 1),
                  Fmt(rr.per_query(rr.totals.ancestor_probes), 1),
                  Fmt(rr.avg_accesses, 1),
                  Fmt(rr.per_query(rr.totals.candidates), 1),
                  Fmt(rr.per_query(rr.totals.false_hits), 1),
                  Fmt(rr.avg_results, 1)});
  };

  for (uint32_t k : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    run("size-bound k=" + std::to_string(k), DecomposeOptions::SizeBound(k));
  }
  run("error-bound e=0.10", DecomposeOptions::ErrorBound(0.10, 256));
  run("error-bound e=0.02", DecomposeOptions::ErrorBound(0.02, 1024));
  table.Print();
}

}  // namespace
}  // namespace zdb

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
  zdb::RunDistribution(zdb::Distribution::kClusters, n, 0.01);
  zdb::RunDistribution(zdb::Distribution::kUniformSmall, n, 0.01);
  return 0;
}
