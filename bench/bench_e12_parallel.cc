// Copyright (c) zdb authors. Licensed under the MIT license.
//
// E12: parallel query throughput versus worker count. The E2 workload
// (size-bound k decomposition over the standard distributions) is run
// through exec/QueryExecutor at 1, 2, 4 and 8 workers, in two regimes:
//
//   * warm — the pool holds the whole index, so the batch is pure CPU
//     (filter + refine, no page transfers). This column scales only
//     with physical cores and is reported for reference.
//   * I/O-bound — a small pool plus simulated per-read device latency
//     on the in-memory pager (the stall is taken outside the pager
//     mutex, like a real device queue). Here worker threads overlap
//     their page-read stalls, which is what the concurrent read path
//     is for; throughput scales with the thread count irrespective of
//     core count.
//
// The last column splits ONE 10%-selectivity window query across the
// workers by its z-interval work list (intra-query parallelism), in
// the I/O-bound regime.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>

#include "bench_util/runner.h"
#include "bench_util/table.h"
#include "exec/executor.h"

namespace zdb {
namespace {

constexpr size_t kWarmQueries = 256;
constexpr size_t kIoQueries = 48;
constexpr double kBatchSelectivity = 0.01;
constexpr double kBigSelectivity = 0.1;
constexpr uint32_t kReadLatencyUs = 100;  ///< simulated device read
constexpr size_t kIoPoolPages = 256;
constexpr size_t kThreadCounts[] = {1, 2, 4, 8};

double SecondsOf(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Best-of-2 wall-clock seconds (discards scheduler noise).
double BestSeconds(const std::function<void()>& fn) {
  return std::min(SecondsOf(fn), SecondsOf(fn));
}

void RunDistribution(Distribution dist, size_t n) {
  DataGenOptions dg;
  dg.distribution = dist;
  const auto data = GenerateData(n, dg);
  const auto warm_windows =
      GenerateWindows(kWarmQueries, kBatchSelectivity, QueryGenOptions{});
  const std::vector<Rect> io_windows(warm_windows.begin(),
                                     warm_windows.begin() + kIoQueries);
  const auto big_window =
      GenerateWindows(1, kBigSelectivity, QueryGenOptions{.seed = 11})[0];

  SpatialIndexOptions opt;
  opt.data = DecomposeOptions::SizeBound(4);

  // Warm environment: pool big enough for the whole index.
  Env warm_env = MakeEnv(kBenchPageSize, 8192);
  BuildResult br;
  auto warm_index = BuildZIndex(&warm_env, data, opt, &br).value();
  for (const auto& w : warm_windows) (void)warm_index->WindowQuery(w).value();

  // I/O-bound environment: small pool, simulated device read latency.
  Env io_env = MakeEnv(kBenchPageSize, kIoPoolPages);
  auto io_index = BuildZIndex(&io_env, data, opt).value();
  io_env.pager->set_simulated_read_latency_us(kReadLatencyUs);

  Table table(
      "E12 parallel window throughput — " + DistributionName(dist) + " (" +
          std::to_string(n) + " objects, " + Fmt(100.0 * kBatchSelectivity) +
          "% sel; I/O regime: " + std::to_string(kIoPoolPages) +
          "-page pool, " + std::to_string(kReadLatencyUs) +
          "us/read; host cores: " +
          std::to_string(std::thread::hardware_concurrency()) + ")",
      {"threads", "warm q/s", "speedup", "io q/s", "speedup", "hit rate",
       "big query ms", "speedup"});

  double warm_base = 0.0, io_base = 0.0, big_base = 0.0;
  for (size_t threads : kThreadCounts) {
    QueryExecutor warm_exec(warm_index.get(), threads);
    const double warm_s = BestSeconds(
        [&] { (void)warm_exec.WindowBatch(warm_windows).value(); });
    const double warm_qps = kWarmQueries / warm_s;

    QueryExecutor io_exec(io_index.get(), threads);
    const double io_s =
        BestSeconds([&] { (void)io_exec.WindowBatch(io_windows).value(); });
    const double io_qps = kIoQueries / io_s;
    const WorkerStats totals = io_exec.stats().Totals();

    const double big_s = BestSeconds(
        [&] { (void)io_exec.ParallelWindowQuery(big_window).value(); });
    const double big_ms = 1000.0 * big_s;

    if (threads == 1) {
      warm_base = warm_qps;
      io_base = io_qps;
      big_base = big_ms;
    }
    table.AddRow({std::to_string(threads), Fmt(warm_qps, 0),
                  Fmt(warm_qps / warm_base) + "x", Fmt(io_qps, 0),
                  Fmt(io_qps / io_base) + "x", Fmt(totals.io.hit_rate(), 3),
                  Fmt(big_ms, 1), Fmt(big_base / big_ms) + "x"});
  }
  table.Print();
  std::printf("  [redundancy %.2f]\n\n", br.redundancy);
}

}  // namespace
}  // namespace zdb

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
  for (zdb::Distribution d :
       {zdb::Distribution::kUniformSmall, zdb::Distribution::kUniformLarge,
        zdb::Distribution::kClusters}) {
    zdb::RunDistribution(d, n);
  }
  return 0;
}
