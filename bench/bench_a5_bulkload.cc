// Copyright (c) zdb authors. Licensed under the MIT license.
//
// A5 (extension): bulk loading versus incremental insertion. Incremental
// build cost scales with redundancy (k random B+-tree descents per
// object, E6); bulk loading decomposes everything, sorts once, and packs
// leaves bottom-up. Reports build page accesses, resulting pages and
// leaf fill, and confirms query cost is unaffected (slightly better, via
// denser leaves).

#include <cstdio>
#include <cstdlib>

#include "bench_util/runner.h"
#include "bench_util/table.h"

namespace zdb {
namespace {

constexpr size_t kQueries = 20;

void RunDistribution(Distribution dist, size_t n) {
  DataGenOptions dg;
  dg.distribution = dist;
  const auto data = GenerateData(n, dg);
  const auto queries = GenerateWindows(kQueries, 0.01, QueryGenOptions{});

  Table table("A5 bulk load vs incremental build — " +
                  DistributionName(dist) + " (" + std::to_string(n) +
                  " objects)",
              {"config", "build acc/obj", "index pages", "leaf fill",
               "query acc"});

  for (uint32_t k : {1u, 8u}) {
    for (bool bulk : {false, true}) {
      Env env = MakeEnv();
      SpatialIndexOptions opt;
      opt.data = DecomposeOptions::SizeBound(k);

      const IoStats snap = env.pager->io_stats();
      std::unique_ptr<SpatialIndex> index;
      if (bulk) {
        index = MakeZIndex(&env, opt).value();
        if (!index->BulkLoad(data).ok()) std::exit(1);
        if (!env.pool->FlushAll().ok()) std::exit(1);
      } else {
        index = BuildZIndex(&env, data, opt).value();
      }
      const double build_acc =
          static_cast<double>(env.Delta(snap).accesses()) / n;

      auto stats = index->btree()->ComputeStats().value();
      auto rr = RunWindowQueries(&env, index.get(), queries).value();
      table.AddRow({std::string(bulk ? "bulk" : "incremental") +
                        " k=" + std::to_string(k),
                    Fmt(build_acc, 2),
                    Fmt(static_cast<uint64_t>(stats.total_pages())),
                    Fmt(stats.avg_leaf_fill, 2), Fmt(rr.avg_accesses, 1)});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace zdb

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
  for (zdb::Distribution d :
       {zdb::Distribution::kUniformSmall, zdb::Distribution::kContours}) {
    zdb::RunDistribution(d, n);
  }
  return 0;
}
