// Copyright (c) zdb authors. Licensed under the MIT license.
//
// E13: mixed read/write throughput. A single writer applies batched
// inserts + erases through SpatialIndex::ApplyBatch while the executor's
// worker pool answers window, point and kNN queries — the
// QueryExecutor::MixedWorkload mode. Because mutations take the index
// latch exclusively, writer sections serialize with readers; the
// question this experiment answers is how much read throughput survives
// a concurrent write stream, in the two usual regimes:
//
//   * warm — pool holds the whole index; queries are pure CPU, so the
//     writer steals latch time but no I/O bandwidth.
//   * I/O-bound — small pool plus simulated per-read device latency;
//     reader threads overlap their stalls, and writer sections inject
//     latch pauses into that overlap.
//
// Read-only throughput at the same thread count is reported as the
// baseline, so the last column is the fraction of read throughput
// retained when the write stream is switched on.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>

#include "bench_util/runner.h"
#include "bench_util/table.h"
#include "exec/executor.h"

namespace zdb {
namespace {

constexpr size_t kRounds = 16;
constexpr size_t kInsertsPerRound = 48;
constexpr size_t kErasesPerRound = 48;
constexpr size_t kWindowsPerRound = 24;
constexpr size_t kPointsPerRound = 16;
constexpr size_t kKnnPerRound = 4;
constexpr size_t kKnnK = 8;
constexpr double kSelectivity = 0.01;
constexpr uint32_t kReadLatencyUs = 100;  ///< simulated device read
constexpr size_t kIoPoolPages = 256;
constexpr size_t kThreadCounts[] = {1, 2, 4, 8};

constexpr size_t kQueriesPerRound =
    kWindowsPerRound + kPointsPerRound + kKnnPerRound;

double SecondsOf(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// The per-round write batch erases round r's slice of the base data and
/// inserts the matching slice of `extra`, so the live count stays flat
/// across the run. Each thread count gets a fresh index, so the
/// deterministic oid sequence (dense, no recycling) makes the erase
/// targets valid by construction.
std::vector<MixedRound> MakeRounds(const std::vector<Rect>& extra) {
  std::vector<MixedRound> rounds(kRounds);
  for (size_t r = 0; r < kRounds; ++r) {
    MixedRound& round = rounds[r];
    for (size_t e = 0; e < kErasesPerRound; ++e) {
      round.writes.Erase(static_cast<ObjectId>(r * kErasesPerRound + e));
    }
    for (size_t i = 0; i < kInsertsPerRound; ++i) {
      round.writes.Insert(extra[r * kInsertsPerRound + i]);
    }
    QueryGenOptions qopt;
    qopt.seed = 300 + static_cast<uint64_t>(r);
    round.windows = GenerateWindows(kWindowsPerRound, kSelectivity, qopt);
    round.points = GeneratePoints(kPointsPerRound, 400 + r);
    round.knn_points = GeneratePoints(kKnnPerRound, 500 + r);
    round.knn_k = kKnnK;
  }
  return rounds;
}

/// Read-only copy of the mixed rounds (same queries, empty batches).
std::vector<MixedRound> ReadOnly(const std::vector<MixedRound>& rounds) {
  std::vector<MixedRound> out = rounds;
  for (MixedRound& r : out) r.writes = WriteBatch{};
  return out;
}

struct Regime {
  double read_qps = 0.0;   ///< read-only baseline
  double mixed_qps = 0.0;  ///< with the write stream on
  double write_ops = 0.0;  ///< write ops/s during the mixed run
};

Regime RunRegime(const std::vector<Rect>& data,
                 const std::vector<MixedRound>& rounds, size_t threads,
                 bool io_bound) {
  const SpatialIndexOptions opt{.data = DecomposeOptions::SizeBound(4)};
  const size_t pool_pages = io_bound ? kIoPoolPages : 8192;
  constexpr size_t kWriteOps =
      kRounds * (kInsertsPerRound + kErasesPerRound);

  Regime out;
  {
    Env env = MakeEnv(kBenchPageSize, pool_pages);
    auto index = BuildZIndex(&env, data, opt).value();
    if (io_bound) env.pager->set_simulated_read_latency_us(kReadLatencyUs);
    QueryExecutor exec(index.get(), threads);
    const auto ro = ReadOnly(rounds);
    const double s = SecondsOf([&] { (void)exec.MixedWorkload(ro).value(); });
    out.read_qps = kRounds * kQueriesPerRound / s;
  }
  {
    Env env = MakeEnv(kBenchPageSize, pool_pages);
    auto index = BuildZIndex(&env, data, opt).value();
    if (io_bound) env.pager->set_simulated_read_latency_us(kReadLatencyUs);
    QueryExecutor exec(index.get(), threads);
    const double s =
        SecondsOf([&] { (void)exec.MixedWorkload(rounds).value(); });
    out.mixed_qps = kRounds * kQueriesPerRound / s;
    out.write_ops = kWriteOps / s;
  }
  return out;
}

void RunDistribution(Distribution dist, size_t n) {
  DataGenOptions dg;
  dg.distribution = dist;
  const auto data = GenerateData(n, dg);
  DataGenOptions dg2;
  dg2.distribution = dist;
  dg2.seed = dg.seed + 1;
  const auto extra = GenerateData(kRounds * kInsertsPerRound, dg2);
  const auto rounds = MakeRounds(extra);

  Table table(
      "E13 mixed read/write throughput — " + DistributionName(dist) + " (" +
          std::to_string(n) + " objects; " + std::to_string(kRounds) +
          " rounds x " + std::to_string(kInsertsPerRound + kErasesPerRound) +
          " write ops; I/O regime: " + std::to_string(kIoPoolPages) +
          "-page pool, " + std::to_string(kReadLatencyUs) +
          "us/read; host cores: " +
          std::to_string(std::thread::hardware_concurrency()) + ")",
      {"threads", "warm read q/s", "warm mixed q/s", "retained",
       "io read q/s", "io mixed q/s", "retained", "io write op/s"});

  for (size_t threads : kThreadCounts) {
    const Regime warm = RunRegime(data, rounds, threads, /*io_bound=*/false);
    const Regime io = RunRegime(data, rounds, threads, /*io_bound=*/true);
    table.AddRow({std::to_string(threads), Fmt(warm.read_qps, 0),
                  Fmt(warm.mixed_qps, 0),
                  Fmt(warm.mixed_qps / warm.read_qps, 2),
                  Fmt(io.read_qps, 0), Fmt(io.mixed_qps, 0),
                  Fmt(io.mixed_qps / io.read_qps, 2),
                  Fmt(io.write_ops, 0)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace zdb

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
  for (zdb::Distribution d :
       {zdb::Distribution::kUniformLarge, zdb::Distribution::kClusters}) {
    zdb::RunDistribution(d, n);
  }
  return 0;
}
