// Copyright (c) zdb authors. Licensed under the MIT license.
//
// E13: mixed read/write throughput. A single writer applies batched
// inserts + erases through SpatialIndex::ApplyBatch while the executor's
// worker pool answers window, point and kNN queries — the
// QueryExecutor::MixedWorkload mode. Because mutations take the index
// latch exclusively, writer sections serialize with readers; the
// question this experiment answers is how much read throughput survives
// a concurrent write stream, in the two usual regimes:
//
//   * warm — pool holds the whole index; queries are pure CPU, so the
//     writer steals latch time but no I/O bandwidth.
//   * I/O-bound — small pool plus simulated per-read device latency;
//     reader threads overlap their stalls, and writer sections inject
//     latch pauses into that overlap.
//
// Read-only throughput at the same thread count is reported as the
// baseline, so the last column is the fraction of read throughput
// retained when the write stream is switched on.
//
// The second phase measures the epoch-pinned snapshot read path against
// the latched baseline: per-query reader latency (p50/p99) with and
// without a sustained writer stream, at growing reader counts. With the
// latch, every writer section stalls all readers (and a long scan
// stalls the writer); with snapshots, readers pin an epoch and traverse
// copy-on-write page versions latch-free. The phase closes with the
// parked-pin experiment: writer batch throughput while a long-lived pin
// is held open, versus unpinned — with snapshots this must be a wash,
// where a parked latched reader section would have stopped the writer
// entirely.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <functional>
#include <thread>

#include "bench_util/runner.h"
#include "bench_util/table.h"
#include "exec/executor.h"

namespace zdb {
namespace {

constexpr size_t kRounds = 16;
constexpr size_t kInsertsPerRound = 48;
constexpr size_t kErasesPerRound = 48;
constexpr size_t kWindowsPerRound = 24;
constexpr size_t kPointsPerRound = 16;
constexpr size_t kKnnPerRound = 4;
constexpr size_t kKnnK = 8;
constexpr double kSelectivity = 0.01;
constexpr uint32_t kReadLatencyUs = 100;  ///< simulated device read
constexpr size_t kIoPoolPages = 256;
constexpr size_t kThreadCounts[] = {1, 2, 4, 8};

constexpr size_t kQueriesPerRound =
    kWindowsPerRound + kPointsPerRound + kKnnPerRound;

double SecondsOf(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// The per-round write batch erases round r's slice of the base data and
/// inserts the matching slice of `extra`, so the live count stays flat
/// across the run. Each thread count gets a fresh index, so the
/// deterministic oid sequence (dense, no recycling) makes the erase
/// targets valid by construction.
std::vector<MixedRound> MakeRounds(const std::vector<Rect>& extra) {
  std::vector<MixedRound> rounds(kRounds);
  for (size_t r = 0; r < kRounds; ++r) {
    MixedRound& round = rounds[r];
    for (size_t e = 0; e < kErasesPerRound; ++e) {
      round.writes.Erase(static_cast<ObjectId>(r * kErasesPerRound + e));
    }
    for (size_t i = 0; i < kInsertsPerRound; ++i) {
      round.writes.Insert(extra[r * kInsertsPerRound + i]);
    }
    QueryGenOptions qopt;
    qopt.seed = 300 + static_cast<uint64_t>(r);
    round.windows = GenerateWindows(kWindowsPerRound, kSelectivity, qopt);
    round.points = GeneratePoints(kPointsPerRound, 400 + r);
    round.knn_points = GeneratePoints(kKnnPerRound, 500 + r);
    round.knn_k = kKnnK;
  }
  return rounds;
}

/// Read-only copy of the mixed rounds (same queries, empty batches).
std::vector<MixedRound> ReadOnly(const std::vector<MixedRound>& rounds) {
  std::vector<MixedRound> out = rounds;
  for (MixedRound& r : out) r.writes = WriteBatch{};
  return out;
}

struct Regime {
  double read_qps = 0.0;   ///< read-only baseline
  double mixed_qps = 0.0;  ///< with the write stream on
  double write_ops = 0.0;  ///< write ops/s during the mixed run
};

Regime RunRegime(const std::vector<Rect>& data,
                 const std::vector<MixedRound>& rounds, size_t threads,
                 bool io_bound) {
  const SpatialIndexOptions opt{.data = DecomposeOptions::SizeBound(4)};
  const size_t pool_pages = io_bound ? kIoPoolPages : 8192;
  constexpr size_t kWriteOps =
      kRounds * (kInsertsPerRound + kErasesPerRound);

  Regime out;
  {
    Env env = MakeEnv(kBenchPageSize, pool_pages);
    auto index = BuildZIndex(&env, data, opt).value();
    if (io_bound) env.pager->set_simulated_read_latency_us(kReadLatencyUs);
    QueryExecutor exec(index.get(), threads);
    const auto ro = ReadOnly(rounds);
    const double s = SecondsOf([&] { (void)exec.MixedWorkload(ro).value(); });
    out.read_qps = kRounds * kQueriesPerRound / s;
  }
  {
    Env env = MakeEnv(kBenchPageSize, pool_pages);
    auto index = BuildZIndex(&env, data, opt).value();
    if (io_bound) env.pager->set_simulated_read_latency_us(kReadLatencyUs);
    QueryExecutor exec(index.get(), threads);
    const double s =
        SecondsOf([&] { (void)exec.MixedWorkload(rounds).value(); });
    out.mixed_qps = kRounds * kQueriesPerRound / s;
    out.write_ops = kWriteOps / s;
  }
  return out;
}

void RunDistribution(Distribution dist, size_t n) {
  DataGenOptions dg;
  dg.distribution = dist;
  const auto data = GenerateData(n, dg);
  DataGenOptions dg2;
  dg2.distribution = dist;
  dg2.seed = dg.seed + 1;
  const auto extra = GenerateData(kRounds * kInsertsPerRound, dg2);
  const auto rounds = MakeRounds(extra);

  Table table(
      "E13 mixed read/write throughput — " + DistributionName(dist) + " (" +
          std::to_string(n) + " objects; " + std::to_string(kRounds) +
          " rounds x " + std::to_string(kInsertsPerRound + kErasesPerRound) +
          " write ops; I/O regime: " + std::to_string(kIoPoolPages) +
          "-page pool, " + std::to_string(kReadLatencyUs) +
          "us/read; host cores: " +
          std::to_string(std::thread::hardware_concurrency()) + ")",
      {"threads", "warm read q/s", "warm mixed q/s", "retained",
       "io read q/s", "io mixed q/s", "retained", "io write op/s"});

  for (size_t threads : kThreadCounts) {
    const Regime warm = RunRegime(data, rounds, threads, /*io_bound=*/false);
    const Regime io = RunRegime(data, rounds, threads, /*io_bound=*/true);
    table.AddRow({std::to_string(threads), Fmt(warm.read_qps, 0),
                  Fmt(warm.mixed_qps, 0),
                  Fmt(warm.mixed_qps / warm.read_qps, 2),
                  Fmt(io.read_qps, 0), Fmt(io.mixed_qps, 0),
                  Fmt(io.mixed_qps / io.read_qps, 2),
                  Fmt(io.write_ops, 0)});
  }
  table.Print();
  std::printf("\n");
}

// ------------------------------------------------- snapshot read phase

constexpr size_t kSnapReadsPerThread = 256;
constexpr size_t kSnapWindows = 64;
constexpr size_t kSnapChurnBatch = 32;     ///< erase+insert pairs per batch
constexpr uint64_t kSnapParkedBatches = 200;

/// p-th latency quantile (sorts in place; idempotent).
double Percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t i = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[i];
}

struct ReadSample {
  std::vector<double> lat_us;  ///< one entry per query
  double wall = 0.0;           ///< seconds for the whole measurement
};

/// `threads` readers each issue kSnapReadsPerThread window queries
/// through the public API (latched ReaderSection before
/// EnableSnapshots(), auto-pinned snapshot read after), timing each
/// query individually.
ReadSample MeasureReaders(SpatialIndex* index, const std::vector<Rect>& windows,
                          size_t threads) {
  std::vector<std::vector<double>> per(threads);
  const double wall = SecondsOf([&] {
    std::vector<std::thread> ts;
    ts.reserve(threads);
    for (size_t t = 0; t < threads; ++t) {
      ts.emplace_back([&, t] {
        per[t].reserve(kSnapReadsPerThread);
        for (size_t i = 0; i < kSnapReadsPerThread; ++i) {
          const Rect& w = windows[(t * 31 + i) % windows.size()];
          const auto t0 = std::chrono::steady_clock::now();
          (void)index->WindowQuery(w).value();
          const auto t1 = std::chrono::steady_clock::now();
          per[t].push_back(
              std::chrono::duration<double, std::micro>(t1 - t0).count());
        }
      });
    }
    for (auto& th : ts) th.join();
  });
  ReadSample out;
  out.wall = wall;
  for (auto& v : per) out.lat_us.insert(out.lat_us.end(), v.begin(), v.end());
  return out;
}

/// Applies erase+insert churn batches until `*stop` flips (or, with a
/// null stop, until `max_batches` have been applied). The deque tracks
/// live oids — erases pop the front, fresh inserts append — so erase
/// targets stay valid no matter how long the churn runs. `applied` is
/// bumped per batch so callers can window their throughput measurement.
void Churn(SpatialIndex* index, size_t n_base, const std::vector<Rect>& extra,
           const std::atomic<bool>* stop, uint64_t max_batches,
           std::atomic<uint64_t>* applied) {
  std::deque<ObjectId> live;
  for (size_t i = 0; i < n_base; ++i) live.push_back(static_cast<ObjectId>(i));
  size_t cursor = 0;
  for (uint64_t done = 0;
       stop ? !stop->load(std::memory_order_relaxed) : done < max_batches;
       ++done) {
    WriteBatch b;
    for (size_t i = 0; i < kSnapChurnBatch; ++i) {
      b.Erase(live.front());
      live.pop_front();
      b.Insert(extra[cursor++ % extra.size()]);
    }
    const auto ids = index->ApplyBatch(b).value();
    live.insert(live.end(), ids.begin(), ids.end());
    applied->fetch_add(1, std::memory_order_relaxed);
  }
}

void RunSnapshotPhase(size_t n) {
  const SpatialIndexOptions opt{.data = DecomposeOptions::SizeBound(4)};
  DataGenOptions dg;
  dg.distribution = Distribution::kUniformLarge;
  dg.seed = 71;
  const auto data = GenerateData(n, dg);
  DataGenOptions dge = dg;
  dge.seed = 72;
  const auto extra = GenerateData(4096, dge);
  QueryGenOptions qopt;
  qopt.seed = 900;
  const auto windows = GenerateWindows(kSnapWindows, kSelectivity, qopt);

  Table table(
      "E13 snapshot reads vs latched baseline — uniform-large (" +
          std::to_string(n) + " objects; " +
          std::to_string(kSnapReadsPerThread) +
          " window queries/reader; churn writer: " +
          std::to_string(kSnapChurnBatch) + " erase+insert pairs/batch)",
      {"mode", "readers", "quiet p50 us", "quiet p99 us", "churn p50 us",
       "churn p99 us", "churn read q/s", "writer batch/s"});

  double latched_qps8 = 0.0, snapshot_qps8 = 0.0;
  for (const bool snap : {false, true}) {
    for (size_t threads : kThreadCounts) {
      Env env = MakeEnv(kBenchPageSize, 8192);
      auto index = BuildZIndex(&env, data, opt).value();
      if (snap && !index->EnableSnapshots().ok()) std::abort();

      ReadSample quiet = MeasureReaders(index.get(), windows, threads);

      std::atomic<bool> stop{false};
      std::atomic<uint64_t> applied{0};
      std::thread writer([&] {
        Churn(index.get(), n, extra, &stop, 0, &applied);
      });
      const uint64_t b0 = applied.load();
      ReadSample churn = MeasureReaders(index.get(), windows, threads);
      const uint64_t b1 = applied.load();
      stop.store(true);
      writer.join();

      const double qps = static_cast<double>(churn.lat_us.size()) / churn.wall;
      if (threads == 8) (snap ? snapshot_qps8 : latched_qps8) = qps;
      table.AddRow({snap ? "snapshot" : "latched", std::to_string(threads),
                    Fmt(Percentile(quiet.lat_us, 0.50), 1),
                    Fmt(Percentile(quiet.lat_us, 0.99), 1),
                    Fmt(Percentile(churn.lat_us, 0.50), 1),
                    Fmt(Percentile(churn.lat_us, 0.99), 1), Fmt(qps, 0),
                    Fmt(static_cast<double>(b1 - b0) / churn.wall, 1)});
    }
  }
  table.Print();
  if (latched_qps8 > 0.0) {
    std::printf(
        "  snapshot vs latched read throughput under churn @ 8 readers: "
        "%.2fx\n",
        snapshot_qps8 / latched_qps8);
  }

  // Parked-pin writer progress: a long-lived pin parked at the base
  // epoch must not slow the write stream (it only delays version
  // reclamation). A parked *latched* reader section would stop the
  // writer outright, so this is snapshot-mode only.
  double unpinned_s = 0.0, parked_s = 0.0;
  {
    Env env = MakeEnv(kBenchPageSize, 8192);
    auto index = BuildZIndex(&env, data, opt).value();
    if (!index->EnableSnapshots().ok()) std::abort();
    std::atomic<uint64_t> applied{0};
    unpinned_s = SecondsOf(
        [&] { Churn(index.get(), n, extra, nullptr, kSnapParkedBatches,
                    &applied); });
  }
  {
    Env env = MakeEnv(kBenchPageSize, 8192);
    auto index = BuildZIndex(&env, data, opt).value();
    if (!index->EnableSnapshots().ok()) std::abort();
    const EpochPin pin = index->PinEpoch();
    std::atomic<uint64_t> applied{0};
    parked_s = SecondsOf(
        [&] { Churn(index.get(), n, extra, nullptr, kSnapParkedBatches,
                    &applied); });
  }
  const double per_batch = static_cast<double>(kSnapParkedBatches);
  std::printf(
      "  parked-pin writer progress (%llu batches): unpinned %.0f batch/s, "
      "parked pin %.0f batch/s (retained %.2f)\n\n",
      static_cast<unsigned long long>(kSnapParkedBatches),
      per_batch / unpinned_s, per_batch / parked_s, parked_s > 0.0
          ? (per_batch / parked_s) / (per_batch / unpinned_s)
          : 0.0);
}

}  // namespace
}  // namespace zdb

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
  for (zdb::Distribution d :
       {zdb::Distribution::kUniformLarge, zdb::Distribution::kClusters}) {
    zdb::RunDistribution(d, n);
  }
  zdb::RunSnapshotPhase(n);
  return 0;
}
