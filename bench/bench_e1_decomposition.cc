// Copyright (c) zdb authors. Licensed under the MIT license.
//
// E1 (Table 1): decomposition statistics. For every distribution and
// every decomposition policy setting, report the achieved redundancy
// (index entries per object), the approximation error (relative dead
// space), and the resulting index size. Expected shape: redundancy grows
// with k (sublinearly for small objects that need few elements), error
// falls steeply with the first few extra elements, and index pages grow
// roughly linearly with redundancy.

#include <cstdlib>

#include "bench_util/runner.h"
#include "bench_util/table.h"

namespace zdb {
namespace {

void RunDistribution(Distribution dist, size_t n) {
  DataGenOptions dg;
  dg.distribution = dist;
  const auto data = GenerateData(n, dg);

  Table table("E1 decomposition statistics — " + DistributionName(dist) +
                  " (" + std::to_string(n) + " objects)",
              {"policy", "redundancy", "avg error", "entries", "leaf pages",
               "index pages", "data pages", "height"});

  auto add_row = [&](const std::string& label,
                     const SpatialIndexOptions& opt) {
    Env env = MakeEnv();
    BuildResult br;
    auto index = BuildZIndex(&env, data, opt, &br).value();
    auto stats = index->btree()->ComputeStats().value();
    table.AddRow({label, Fmt(br.redundancy), Fmt(br.avg_error, 3),
                  Fmt(index->build_stats().index_entries),
                  Fmt(static_cast<uint64_t>(stats.leaf_pages)),
                  Fmt(static_cast<uint64_t>(stats.total_pages())),
                  Fmt(static_cast<uint64_t>(index->objects()->page_count())),
                  Fmt(static_cast<uint64_t>(stats.height))});
  };

  for (uint32_t k : {1u, 2u, 4u, 8u, 16u, 32u}) {
    SpatialIndexOptions opt;
    opt.data = DecomposeOptions::SizeBound(k);
    add_row("size-bound k=" + std::to_string(k), opt);
  }
  for (double eps : {1.0, 0.5, 0.2, 0.1, 0.05}) {
    SpatialIndexOptions opt;
    opt.data = DecomposeOptions::ErrorBound(eps);
    add_row("error-bound e=" + Fmt(eps, 2), opt);
  }
  table.Print();
}

}  // namespace
}  // namespace zdb

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
  for (zdb::Distribution d : zdb::kAllDistributions) {
    zdb::RunDistribution(d, n);
  }
  return 0;
}
