// Copyright (c) zdb authors. Licensed under the MIT license.
//
// E15: the off-latch group-commit durability pipeline. Two claims under
// test, against a real file (genuine fsyncs — this experiment is about
// the durability window, so an in-memory journal would measure nothing):
//
//   * Reader tail latency: with the legacy synchronous path, ApplyBatch
//     holds the exclusive latch across checkpoint + flush + journal
//     fsync, so every reader that arrives during a commit waits out a
//     disk flush — the p99 spikes. With the pipeline, mutations publish
//     under the latch with no I/O inside and the fsync runs on the
//     durability thread, so reader p99 during a sustained durable write
//     stream should stay within ~2x of the read-only baseline.
//
//   * Coalescing: k writers blocking on kDurable acks complete with
//     FEWER journal commits than batches — concurrently published
//     batches ride the same group fsync, so writer throughput scales
//     with the coalescing factor instead of paying one fsync each.
//
// Everything runs through the zdb::DB facade; the bench never touches
// the storage layer directly.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/table.h"
#include "common/random.h"
#include "zdb/db.h"

namespace zdb {
namespace {

constexpr size_t kPreload = 20000;
constexpr size_t kPreloadBatch = 500;
constexpr size_t kWriters = 4;

/// Busy reader threads scale with the host: oversubscribing cores turns
/// the p99 into a scheduler-preemption measurement instead of a latch
/// one. Writers are excluded — they sleep on the group fsync.
size_t ReaderCount() {
  const size_t hw = std::thread::hardware_concurrency();
  return std::max<size_t>(2, std::min<size_t>(4, hw));
}
constexpr size_t kBatchesPerWriter = 48;
constexpr size_t kOpsPerBatch = 16;
constexpr double kWindowSide = 0.05;
constexpr auto kBaselineWindow = std::chrono::milliseconds(400);

Rect RandomRect(Random* rng, double side) {
  const double x = rng->UniformDouble(0.0, 0.9);
  const double y = rng->UniformDouble(0.0, 0.9);
  return Rect{x, y, x + side, y + side};
}

double Percentile(std::vector<double>* lat, double p) {
  if (lat->empty()) return 0.0;
  std::sort(lat->begin(), lat->end());
  const size_t i = static_cast<size_t>(p * (lat->size() - 1));
  return (*lat)[i];
}

/// Reader pool: each thread runs window queries until `stop`, recording
/// per-query latency in microseconds.
struct ReaderPool {
  explicit ReaderPool(DB* db) : db_(db) {}

  void Start() {
    stop_.store(false, std::memory_order_release);
    lat_.assign(ReaderCount(), {});
    for (size_t t = 0; t < ReaderCount(); ++t) {
      threads_.emplace_back([this, t] {
        Random rng(100 + t);
        while (!stop_.load(std::memory_order_acquire)) {
          const Rect w = RandomRect(&rng, kWindowSide);
          const auto t0 = std::chrono::steady_clock::now();
          if (!db_->Window(w).ok()) std::exit(1);
          const auto t1 = std::chrono::steady_clock::now();
          lat_[t].push_back(
              std::chrono::duration<double, std::micro>(t1 - t0).count());
        }
      });
    }
  }

  /// Stops the pool and returns the merged latency sample.
  std::vector<double> Stop() {
    stop_.store(true, std::memory_order_release);
    for (auto& t : threads_) t.join();
    threads_.clear();
    std::vector<double> all;
    for (auto& v : lat_) all.insert(all.end(), v.begin(), v.end());
    return all;
  }

  DB* db_;
  std::atomic<bool> stop_{false};
  std::vector<std::vector<double>> lat_;
  std::vector<std::thread> threads_;
};

struct ModeResult {
  double base_p50 = 0, base_p99 = 0;    ///< read-only, us
  double mixed_p50 = 0, mixed_p99 = 0;  ///< during the write stream, us
  uint64_t batches = 0;                 ///< durable batches applied
  uint64_t commits = 0;                 ///< journal commits they cost
  double write_s = 0;                   ///< wall time of the write stream
};

ModeResult RunMode(const std::string& path, bool group_commit) {
  std::remove(path.c_str());
  std::remove((path + "-journal").c_str());

  DBOptions options;
  options.index.data = DecomposeOptions::SizeBound(4);
  options.cache_pages = 4096;
  options.group_commit = group_commit;
  auto db = DB::Open(path, options).value();

  Random rng(7);
  for (size_t done = 0; done < kPreload; done += kPreloadBatch) {
    WriteBatch batch;
    for (size_t i = 0; i < kPreloadBatch; ++i) {
      batch.Insert(RandomRect(&rng, 0.004));
    }
    if (!db->Apply(batch).ok()) std::exit(1);
  }
  if (!db->Checkpoint().ok()) std::exit(1);

  // Warm the cache before measuring: a full-domain sweep touches every
  // leaf, so the latency samples see latch effects, not cold reads.
  for (int i = 0; i < 3; ++i) {
    if (!db->Window(Rect{0, 0, 1, 1}).ok()) std::exit(1);
  }

  ModeResult out;

  // Read-only baseline.
  ReaderPool readers(db.get());
  readers.Start();
  std::this_thread::sleep_for(kBaselineWindow);
  auto base = readers.Stop();
  out.base_p50 = Percentile(&base, 0.50);
  out.base_p99 = Percentile(&base, 0.99);

  // Sustained durable write stream with the readers back on.
  const uint64_t commits_before = db->Stats().journal_commits;
  readers.Start();
  const auto w0 = std::chrono::steady_clock::now();
  std::vector<std::thread> writers;
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&db, w] {
      Random wrng(200 + w);
      for (size_t b = 0; b < kBatchesPerWriter; ++b) {
        WriteBatch batch;
        for (size_t i = 0; i < kOpsPerBatch; ++i) {
          batch.Insert(RandomRect(&wrng, 0.004));
        }
        if (!db->Apply(batch, Durability::kDurable).ok()) std::exit(1);
      }
    });
  }
  for (auto& t : writers) t.join();
  out.write_s = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - w0)
                    .count();
  auto mixed = readers.Stop();
  out.mixed_p50 = Percentile(&mixed, 0.50);
  out.mixed_p99 = Percentile(&mixed, 0.99);
  out.batches = kWriters * kBatchesPerWriter;
  out.commits = db->Stats().journal_commits - commits_before;

  db.reset();
  std::remove(path.c_str());
  std::remove((path + "-journal").c_str());
  return out;
}

void Run(const std::string& path) {
  Table table(
      "E15 group-commit pipeline — " + std::to_string(kPreload) +
          " preloaded objects; " + std::to_string(ReaderCount()) + " readers; " +
          std::to_string(kWriters) + " writers x " +
          std::to_string(kBatchesPerWriter) + " durable batches of " +
          std::to_string(kOpsPerBatch) + " (reader latency in us; host cores: " +
          std::to_string(std::thread::hardware_concurrency()) + ")",
      {"mode", "read p50", "read p99", "mixed p50", "mixed p99",
       "p99 ratio", "batches", "commits", "coalesce", "batches/s"});

  for (bool group : {false, true}) {
    const ModeResult r = RunMode(path, group);
    table.AddRow({group ? "group commit" : "sync commit",
                  Fmt(r.base_p50, 0), Fmt(r.base_p99, 0),
                  Fmt(r.mixed_p50, 0), Fmt(r.mixed_p99, 0),
                  Fmt(r.base_p99 > 0 ? r.mixed_p99 / r.base_p99 : 0.0, 2),
                  Fmt(r.batches), Fmt(r.commits),
                  Fmt(r.commits > 0
                          ? static_cast<double>(r.batches) / r.commits
                          : 0.0,
                      1),
                  Fmt(r.write_s > 0 ? r.batches / r.write_s : 0.0, 0)});
  }
  table.Print();
}

}  // namespace
}  // namespace zdb

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : std::string("/tmp/zdb_e15_groupcommit.db");
  zdb::Run(path);
  return 0;
}
