// Copyright (c) zdb authors. Licensed under the MIT license.
//
// E9 (Figure 5): object size versus the optimal redundancy. Uniformly
// placed square objects of a fixed edge length; the edge length sweeps
// three orders of magnitude; for each size the k ladder is evaluated and
// the cost-minimizing k reported. Expected shape: tiny objects (smaller
// than a grid cell's neighborhood) need no redundancy; the larger the
// object relative to the partition grid, the higher the paying k — until
// objects are so large that every query touches them anyway.

#include <cstdio>
#include <cstdlib>

#include "bench_util/runner.h"
#include "bench_util/table.h"

namespace zdb {
namespace {

constexpr size_t kQueries = 20;

std::vector<Rect> FixedSizeRects(size_t n, double edge, uint64_t seed) {
  Random rng(seed);
  std::vector<Rect> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double cx = rng.UniformDouble(edge / 2, 1.0 - edge / 2);
    const double cy = rng.UniformDouble(edge / 2, 1.0 - edge / 2);
    out.push_back(Rect::FromCenter(cx, cy, edge / 2, edge / 2));
  }
  return out;
}

}  // namespace
}  // namespace zdb

int main(int argc, char** argv) {
  using namespace zdb;
  const size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 15000;
  const auto queries = GenerateWindows(kQueries, 0.01, QueryGenOptions{});

  Table table("E9 object size vs optimal redundancy (uniform squares, 1% "
              "windows, accesses/query)",
              {"edge", "k=1", "k=2", "k=4", "k=8", "k=16", "k=32",
               "best k"});

  for (double edge : {0.0005, 0.002, 0.008, 0.03, 0.1}) {
    const auto data = FixedSizeRects(n, edge, 5150);
    std::vector<std::string> row{Fmt(edge, 4)};
    double best_cost = 1e300;
    uint32_t best_k = 1;
    for (uint32_t k : {1u, 2u, 4u, 8u, 16u, 32u}) {
      Env env = MakeEnv();
      SpatialIndexOptions opt;
      opt.data = DecomposeOptions::SizeBound(k);
      auto index = BuildZIndex(&env, data, opt).value();
      auto rr = RunWindowQueries(&env, index.get(), queries).value();
      row.push_back(Fmt(rr.avg_accesses, 1));
      if (rr.avg_accesses < best_cost) {
        best_cost = rr.avg_accesses;
        best_k = k;
      }
    }
    row.push_back(std::to_string(best_k));
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
