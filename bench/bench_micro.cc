// Copyright (c) zdb authors. Licensed under the MIT license.
//
// A3: google-benchmark microbenchmarks of the computational primitives —
// Morton coding, element algebra, BIGMIN, decomposition, and B+-tree
// operations. These establish that the experiment results above are
// I/O-shaped, not CPU-shaped.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util/runner.h"
#include "btree/btree.h"
#include "common/random.h"
#include "decompose/decompose.h"
#include "decompose/region.h"
#include "geom/clip.h"
#include "transform/morton4.h"
#include "zorder/bigmin.h"
#include "zorder/morton.h"
#include "zorder/zkey.h"

namespace zdb {
namespace {

void BM_MortonEncode(benchmark::State& state) {
  Random rng(1);
  uint32_t x = static_cast<uint32_t>(rng.Uniform(1 << 16));
  uint32_t y = static_cast<uint32_t>(rng.Uniform(1 << 16));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MortonEncode(x, y, 16));
    x = (x + 12345) & 0xffff;
    y = (y + 54321) & 0xffff;
  }
}
BENCHMARK(BM_MortonEncode);

void BM_MortonDecode(benchmark::State& state) {
  uint64_t z = 0x123456789abcdefULL & ((1ULL << 32) - 1);
  for (auto _ : state) {
    GridCoord x, y;
    MortonDecode(z, 16, &x, &y);
    benchmark::DoNotOptimize(x + y);
    z = (z + 7919) & ((1ULL << 32) - 1);
  }
}
BENCHMARK(BM_MortonDecode);

void BM_BigMin(benchmark::State& state) {
  const GridRect rect{1000, 2000, 5000, 6000};
  uint64_t z = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigMin(z, rect, 16));
    z = (z + 104729) & ((1ULL << 32) - 1);
  }
}
BENCHMARK(BM_BigMin);

void BM_Decompose(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  Random rng(2);
  std::vector<GridRect> rects;
  for (int i = 0; i < 256; ++i) {
    const GridCoord x = static_cast<GridCoord>(rng.Uniform(60000));
    const GridCoord y = static_cast<GridCoord>(rng.Uniform(60000));
    rects.push_back(GridRect{x, y, x + 500, y + 500});
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Decompose(rects[i % rects.size()], 16, DecomposeOptions::SizeBound(k)));
    ++i;
  }
}
BENCHMARK(BM_Decompose)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_Morton4Encode(benchmark::State& state) {
  uint16_t c = 12345;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Morton4Encode(c, static_cast<uint16_t>(c + 1),
                                           static_cast<uint16_t>(c + 2),
                                           static_cast<uint16_t>(c + 3)));
    c = static_cast<uint16_t>(c + 7);
  }
}
BENCHMARK(BM_Morton4Encode);

void BM_PolygonClipArea(benchmark::State& state) {
  Random rng(5);
  std::vector<Point> ring;
  for (int i = 0; i < 8; ++i) {
    const double ang = 2 * 3.14159265358979 * i / 8;
    ring.push_back(Point{0.5 + 0.3 * std::cos(ang),
                         0.5 + 0.3 * std::sin(ang)});
  }
  const Polygon poly(ring);
  double x = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        PolygonRectIntersectionArea(poly, Rect{x, 0.3, x + 0.2, 0.7}));
    x = 0.2 + std::fmod(x + 0.013, 0.4);
  }
}
BENCHMARK(BM_PolygonClipArea);

void BM_DecomposeRegionPolygon(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  std::vector<Point> ring;
  for (int i = 0; i < 8; ++i) {
    const double ang = 2 * 3.14159265358979 * i / 8;
    ring.push_back(Point{0.5 + 0.1 * std::cos(ang),
                         0.5 + 0.1 * std::sin(ang)});
  }
  const Polygon poly(ring);
  const PolygonRegion region(&poly);
  const SpaceMapper mapper;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DecomposeRegion(region, mapper, DecomposeOptions::SizeBound(k)));
  }
}
BENCHMARK(BM_DecomposeRegionPolygon)->Arg(4)->Arg(16);

void BM_BTreeInsert(benchmark::State& state) {
  Env env = MakeEnv(4096, 256);
  auto tree = BTree::Create(env.pool.get()).value();
  Random rng(3);
  uint64_t i = 0;
  for (auto _ : state) {
    const ZElement e(rng.Next() & ((1ULL << 32) - 1), 32, 16);
    const std::string key = EncodeZKey(e, static_cast<ObjectId>(i++));
    benchmark::DoNotOptimize(tree->Insert(Slice(key), Slice("v")));
  }
}
BENCHMARK(BM_BTreeInsert);

void BM_BTreeGet(benchmark::State& state) {
  Env env = MakeEnv(4096, 256);
  auto tree = BTree::Create(env.pool.get()).value();
  Random rng(4);
  std::vector<std::string> keys;
  for (int i = 0; i < 50000; ++i) {
    const ZElement e(rng.Next() & ((1ULL << 32) - 1), 32, 16);
    keys.push_back(EncodeZKey(e, static_cast<ObjectId>(i)));
    (void)tree->Insert(Slice(keys.back()), Slice("v"));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree->Get(Slice(keys[i % keys.size()])));
    ++i;
  }
}
BENCHMARK(BM_BTreeGet);

}  // namespace
}  // namespace zdb

BENCHMARK_MAIN();
