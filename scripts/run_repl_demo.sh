#!/bin/sh
# Spins up a 1-leader / 2-follower replication cluster on loopback,
# streams a few write batches through the leader, and prints each
# node's replication stats so the lag counters can be eyeballed.
#
#   scripts/run_repl_demo.sh [build-dir]
#
# Needs a built tree (cmake --build <build-dir>); defaults to ./build.
# Runs on fixed loopback ports and tears the cluster down on exit, so
# the script is safe to re-run.
set -u

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
server="$repo_root/$build_dir/examples/zdb_server"
shell="$repo_root/$build_dir/examples/zdb_shell"

if [ ! -x "$server" ] || [ ! -x "$shell" ]; then
  echo "run_repl_demo.sh: build the examples first:" >&2
  echo "  cmake -B $build_dir -S . && cmake --build $build_dir -j" >&2
  exit 1
fi

leader_port=14490
f1_port=14491
f2_port=14492
leader_uri="tcp://127.0.0.1:$leader_port"

# The shell is an interactive REPL; drive it by piping one command (the
# trailing "quit" closes the session cleanly) and strip the prompt.
zdb() {
  printf '%s\nquit\n' "$2" | "$shell" --connect "$1" | sed 's/^zdb> //'
}

pids=""
cleanup() {
  for pid in $pids; do
    kill "$pid" 2>/dev/null
  done
  wait 2>/dev/null
}
trap cleanup EXIT INT TERM

echo "== starting leader on $leader_uri"
"$server" --port "$leader_port" --role leader &
pids="$pids $!"

# Give the leader a beat to bind before the followers dial it.
sleep 0.3

echo "== starting followers on ports $f1_port, $f2_port"
"$server" --port "$f1_port" --role follower --leader "$leader_uri" &
pids="$pids $!"
"$server" --port "$f2_port" --role follower --leader "$leader_uri" &
pids="$pids $!"
sleep 0.5

echo "== writing through the leader"
i=0
while [ "$i" -lt 5 ]; do
  zdb "$leader_uri" "insert $i $i $((i + 2)) $((i + 2))" >/dev/null
  i=$((i + 1))
done

# Let the log ship before sampling the counters.
sleep 0.5

echo "== leader stats"
zdb "$leader_uri" stats
echo "== follower 1 stats (note applied_epoch / lag_epochs)"
zdb "tcp://127.0.0.1:$f1_port" stats
echo "== follower 2 stats"
zdb "tcp://127.0.0.1:$f2_port" stats

echo "== querying a follower (window 0 0 10 10)"
zdb "tcp://127.0.0.1:$f1_port" "window 0 0 10 10"

echo "== done (cluster shutting down)"
