#!/bin/sh
# Runs clang-tidy over src/ with the repo's .clang-tidy profile.
#
#   scripts/run_clang_tidy.sh [build-dir]
#
# The build dir must have been configured with
# -DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the static-analysis CI job does);
# defaults to ./build. Exits 0 with a notice when clang-tidy is not
# installed, so the script is safe to call from environments that only
# have GCC — the CI job is where the gate is binding.
set -u

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"

tidy_bin="${CLANG_TIDY:-}"
if [ -z "$tidy_bin" ]; then
  for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 clang-tidy-15; do
    if command -v "$cand" >/dev/null 2>&1; then
      tidy_bin="$cand"
      break
    fi
  done
fi
if [ -z "$tidy_bin" ]; then
  echo "run_clang_tidy.sh: clang-tidy not found; skipping (the" \
       "static-analysis CI job enforces this gate)"
  exit 0
fi

if [ ! -f "$repo_root/$build_dir/compile_commands.json" ] &&
   [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy.sh: no compile_commands.json under '$build_dir'." >&2
  echo "Configure with: cmake -B $build_dir -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi
if [ -f "$repo_root/$build_dir/compile_commands.json" ]; then
  build_dir="$repo_root/$build_dir"
fi

# Analyze every first-party translation unit; headers are covered via
# HeaderFilterRegex in .clang-tidy.
files=$(find "$repo_root/src" -name '*.cc' | sort)

echo "run_clang_tidy.sh: $tidy_bin -p $build_dir ($(echo "$files" | wc -l) files)"
status=0
for f in $files; do
  "$tidy_bin" -p "$build_dir" --quiet "$f" || status=1
done

if [ "$status" -ne 0 ]; then
  echo "run_clang_tidy.sh: findings above must be fixed or suppressed" \
       "with a reasoned NOLINT." >&2
fi
exit "$status"
