#!/bin/sh
# Runs zdb_lint (tools/zdb_lint) over the repository: the call-graph
# checker for the engine's domain contracts — io-under-latch, epoch-pin
# discipline, decode-hygiene and lock-order conformance.
#
#   scripts/run_zdb_lint.sh [build-dir]
#
# Finds the zdb_lint binary under the build dir (default ./build) and
# builds it first if the build dir is configured but the binary is
# missing. Exits 0 on a clean tree, 1 on findings — the same contract as
# the binary itself, so CI can gate on this script directly. When the
# build dir has a compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS
# is on by default), its TU list is used so generated or excluded
# sources can't drift from what the build actually compiles.
set -u

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
case "$build_dir" in
  /*) ;;
  *) build_dir="$repo_root/$build_dir" ;;
esac

lint_bin="$build_dir/tools/zdb_lint/zdb_lint"
if [ ! -x "$lint_bin" ]; then
  if [ -f "$build_dir/CMakeCache.txt" ]; then
    echo "run_zdb_lint.sh: building zdb_lint..."
    cmake --build "$build_dir" --target zdb_lint -j >/dev/null || exit 2
  else
    echo "run_zdb_lint.sh: no build dir at '$build_dir'." >&2
    echo "Configure with: cmake -B build -S . && cmake --build build --target zdb_lint" >&2
    exit 2
  fi
fi
if [ ! -x "$lint_bin" ]; then
  echo "run_zdb_lint.sh: zdb_lint did not build at $lint_bin" >&2
  exit 2
fi

cc_arg=""
if [ -f "$build_dir/compile_commands.json" ]; then
  cc_arg="--compile-commands=$build_dir/compile_commands.json"
fi

exec "$lint_bin" --root="$repo_root" \
     --config="$repo_root/tools/zdb_lint/zdb_lint.conf" $cc_arg
