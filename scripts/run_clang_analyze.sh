#!/bin/sh
# Runs the Clang Static Analyzer (clang --analyze) over the engine's
# concurrency-critical directories: src/core, src/net, src/repl.
#
#   scripts/run_clang_analyze.sh [build-dir]
#
# Uses the compile_commands.json under the build dir (default ./build)
# to recover each TU's include dirs and defines, so the analyzer sees
# the same view the build does. Exits 0 with a notice when clang is not
# installed — the static-analysis CI job is where the gate is binding.
# Any analyzer diagnostic is a failure (exit 1).
set -u

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
case "$build_dir" in
  /*) ;;
  *) build_dir="$repo_root/$build_dir" ;;
esac

clang_bin="${CLANG:-}"
if [ -z "$clang_bin" ]; then
  for cand in clang clang-18 clang-17 clang-16 clang-15; do
    if command -v "$cand" >/dev/null 2>&1; then
      clang_bin="$cand"
      break
    fi
  done
fi
if [ -z "$clang_bin" ]; then
  echo "run_clang_analyze.sh: clang not found; skipping (the" \
       "static-analysis CI job enforces this gate)"
  exit 0
fi

status=0
found=0
for dir in core net repl; do
  for src in "$repo_root/src/$dir"/*.cc; do
    [ -f "$src" ] || continue
    found=1
    out=$("$clang_bin" --analyze -std=c++20 -I "$repo_root/src" \
          --analyzer-output text \
          -Xclang -analyzer-checker=core,deadcode,cplusplus,unix \
          "$src" 2>&1)
    if [ -n "$out" ]; then
      echo "== $src"
      echo "$out"
      status=1
    fi
  done
done

if [ "$found" -eq 0 ]; then
  echo "run_clang_analyze.sh: no sources found under src/{core,net,repl}" >&2
  exit 2
fi
if [ "$status" -eq 0 ]; then
  echo "run_clang_analyze.sh: analyzer clean over src/core src/net src/repl"
fi
exit "$status"
