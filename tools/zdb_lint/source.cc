// Copyright (c) zdb authors. Licensed under the MIT license.
//
// File loading, scrubbing and lexing. Scrub() blanks out everything the
// token-level analysis must not trip over — comments, string and char
// literals (including raw strings), and preprocessor directives with
// their continuation lines — while keeping every remaining byte at its
// original offset, so token line numbers match the file on disk.

#include <cctype>
#include <fstream>
#include <sstream>

#include "lint.h"

namespace zdb {
namespace lint {

std::optional<std::string> LoadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Blanks [i, j) in *out, preserving newlines.
void Blank(std::string* out, size_t i, size_t j) {
  for (size_t k = i; k < j && k < out->size(); ++k) {
    if ((*out)[k] != '\n') (*out)[k] = ' ';
  }
}

}  // namespace

std::string Scrub(const std::string& text) {
  std::string out = text;
  size_t i = 0;
  const size_t n = text.size();
  bool at_line_start = true;  // only whitespace seen since the last \n
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      at_line_start = true;
      ++i;
      continue;
    }
    if (at_line_start && c == '#') {
      // Preprocessor directive: blank through any continuation lines.
      size_t j = i;
      while (j < n) {
        if (text[j] == '\n') {
          if (j > 0 && text[j - 1] == '\\') {
            ++j;
            continue;
          }
          break;
        }
        ++j;
      }
      Blank(&out, i, j);
      i = j;
      continue;
    }
    if (!std::isspace(static_cast<unsigned char>(c))) at_line_start = false;
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      size_t j = i;
      while (j < n && text[j] != '\n') ++j;
      Blank(&out, i, j);
      i = j;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      size_t j = i + 2;
      while (j + 1 < n && !(text[j] == '*' && text[j + 1] == '/')) ++j;
      j = (j + 1 < n) ? j + 2 : n;
      Blank(&out, i, j);
      i = j;
      continue;
    }
    if (c == 'R' && i + 1 < n && text[i + 1] == '"' &&
        (i == 0 || !IsIdentChar(text[i - 1]))) {
      // Raw string: R"delim( ... )delim"
      size_t d = i + 2;
      while (d < n && text[d] != '(') ++d;
      const std::string closer =
          ")" + text.substr(i + 2, d - (i + 2)) + "\"";
      const size_t end = text.find(closer, d);
      const size_t j = (end == std::string::npos) ? n : end + closer.size();
      Blank(&out, i, j);
      i = j;
      continue;
    }
    if (c == '"' || c == '\'') {
      // Skip a suffixed char literal like u8'x' via the quote itself.
      size_t j = i + 1;
      while (j < n && text[j] != c) {
        if (text[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      j = (j < n) ? j + 1 : n;
      // Keep the quotes' positions blank too, but a char literal used as
      // a digit separator guard ('0') is never semantically interesting
      // to the lint, so blanking is always safe.
      Blank(&out, i, j);
      i = j;
      continue;
    }
    ++i;
  }
  return out;
}

std::vector<Token> Lex(const std::string& s) {
  std::vector<Token> toks;
  toks.reserve(s.size() / 6);
  int line = 1;
  size_t i = 0;
  const size_t n = s.size();
  while (i < n) {
    const char c = s[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(s[j])) ++j;
      toks.push_back({Token::Kind::kIdent, s.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i + 1;
      while (j < n && (IsIdentChar(s[j]) || s[j] == '.' || s[j] == '\'')) ++j;
      toks.push_back({Token::Kind::kNumber, s.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Multi-char punctuators the analysis cares about; everything else
    // is emitted one char at a time.
    static const char* kTwo[] = {"::", "->", "&&", "||", "==", "!=", "<=",
                                 ">=", "+=", "-=", "*=", "/=", "|=", "&=",
                                 "^=", "<<", ">>", "++", "--"};
    std::string two = s.substr(i, 2);
    bool matched = false;
    for (const char* t : kTwo) {
      if (two == t) {
        toks.push_back({Token::Kind::kPunct, two, line});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    toks.push_back({Token::Kind::kPunct, std::string(1, c), line});
    ++i;
  }
  return toks;
}

}  // namespace lint
}  // namespace zdb
