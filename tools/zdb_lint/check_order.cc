// Copyright (c) zdb authors. Licensed under the MIT license.
//
// lock-order conformance. The declared partial order (zdb_lint.conf
// [lock_order], folded together with per-member ACQUIRED_AFTER edges) is
// closed transitively; acquiring A while holding H is an inversion when
// the order says A must come first (A ->* H). Two passes:
//
//   1. intra-function: every recorded acquisition against the locks held
//      at that point (REQUIRES contracts count as held);
//   2. cross-TU: every call site against the locks the callee subtree
//      transitively acquires, with a witness call path — the case the
//      per-member Clang annotations cannot see.

#include <sstream>

#include "lint.h"

namespace zdb {
namespace lint {

namespace {

class Order {
 public:
  Order(const Model& model, const Config& cfg) {
    for (const auto& [a, b] : cfg.lock_order) edges_[a].insert(b);
    // ACQUIRED_AFTER(pred) on member m of class C: pred -> C::m. The
    // predecessor is qualified against C first, then a unique owner.
    for (const auto& [cname, info] : model.classes) {
      for (const auto& [member, pred] : info.after_edges) {
        const std::string to = cname + "::" + member;
        std::string from = pred;
        if (from.find("::") == std::string::npos) {
          if (info.mutex_members.count(from) > 0) {
            from = cname + "::" + from;
          } else {
            std::string owner;
            int owners = 0;
            for (const auto& [oname, oinfo] : model.classes) {
              if (oinfo.mutex_members.count(from) > 0) {
                owner = oname;
                ++owners;
              }
            }
            if (owners == 1) from = owner + "::" + from;
          }
        }
        edges_[from].insert(to);
      }
    }
  }

  /// True when the declared order requires `first` before `second`.
  bool Before(const std::string& first, const std::string& second) const {
    if (first == second) return false;
    std::set<std::string> seen{first};
    std::vector<std::string> stack{first};
    while (!stack.empty()) {
      const std::string cur = stack.back();
      stack.pop_back();
      auto it = edges_.find(cur);
      if (it == edges_.end()) continue;
      for (const std::string& next : it->second) {
        if (next == second) return true;
        if (seen.insert(next).second) stack.push_back(next);
      }
    }
    return false;
  }

 private:
  std::map<std::string, std::set<std::string>> edges_;
};

std::string JoinPath(const std::vector<std::string>& path) {
  std::ostringstream ss;
  for (size_t i = 0; i < path.size(); ++i) {
    if (i > 0) ss << " -> ";
    ss << path[i];
  }
  return ss.str();
}

}  // namespace

std::vector<Diagnostic> CheckLockOrder(const Model& model,
                                       const CallGraph& graph,
                                       const Config& cfg) {
  const Order order(model, cfg);
  std::vector<Diagnostic> out;
  std::set<std::string> emitted;  // dedup (file:line:lock-pair)
  auto emit = [&](const std::string& file, int line,
                  const std::string& acquired, const std::string& held,
                  const std::string& context) {
    const std::string key = file + ":" + std::to_string(line) + ":" +
                            acquired + ":" + held;
    if (!emitted.insert(key).second) return;
    Diagnostic d;
    d.file = file;
    d.line = line;
    d.check = "lock-order";
    d.message = "acquires " + acquired + " while holding " + held +
                ", but the declared order is " + acquired + " before " +
                held + context;
    out.push_back(std::move(d));
  };

  for (const auto& [qname, fn] : model.functions) {
    if (cfg.order_allow.count(qname) > 0) continue;
    // Pass 1: direct acquisitions.
    for (const LockAcquire& a : fn.lock_acquires) {
      for (const HeldLock& h : a.held) {
        if (order.Before(a.lock, h.name)) {
          emit(fn.file, a.line, a.lock, h.name, " (in " + qname + ")");
        }
      }
    }
    // Pass 2: acquisitions reached through callees, cross-TU.
    for (const CallSite& call : fn.calls) {
      if (call.held.empty()) continue;
      bool relevant = false;
      for (const HeldLock& h : call.held) {
        // Only chase the graph when a held lock participates in the
        // declared order at all — keeps the BFS off cold paths.
        if (h.name.find("::") != std::string::npos) relevant = true;
      }
      if (!relevant) continue;
      const auto acquired = graph.AcquiredBy(call, fn);
      for (const auto& [lock, witness] : acquired) {
        for (const HeldLock& h : call.held) {
          if (lock == h.name) continue;
          if (order.Before(lock, h.name)) {
            emit(fn.file, call.line, lock, h.name,
                 " (via " + qname + " -> " + JoinPath(witness) + ")");
          }
        }
      }
    }
  }
  return out;
}

}  // namespace lint
}  // namespace zdb
