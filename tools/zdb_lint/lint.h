// Copyright (c) zdb authors. Licensed under the MIT license.
//
// zdb_lint: a project-specific static analysis pass for the engine's
// domain contracts — the invariants that sit one level above what the
// Clang thread-safety analysis can express:
//
//   io-under-latch   no call path from code holding the SpatialIndex
//                    exclusive latch may reach a durability/file-I/O
//                    sink (the PR "publish/durability split" contract),
//                    modulo an explicit, reasoned allowlist for the
//                    group-commit bootstrap/rollback paths.
//   epoch-pin        EpochPin is a stack-scoped capability: it must not
//                    be stored in containers, heap-allocated, held as a
//                    class member, or returned, except by the sanctioned
//                    pin/SnapshotReadScope plumbing.
//   decode-hygiene   every PayloadReader accessor / wire decode result
//                    in the protocol-facing directories must flow into a
//                    checked condition or a consumed status variable —
//                    no (void)-discards, no assign-and-forget.
//   lock-order       lock acquisitions, propagated across translation
//                    units through the call graph, must conform to the
//                    declared partial order (commit_mu_ -> latch_ ->
//                    {gc_mu_, snap_mu_}, pin_mu_ -> gc_mu_, router_mu_
//                    -> epoch_mu_) — catching inversions the per-member
//                    ACQUIRED_AFTER annotations cannot see because the
//                    two acquisitions live in different TUs.
//
// The tool is deliberately self-contained: it lexes the project sources
// itself (comments/strings/preprocessor scrubbed, token stream with line
// numbers) and builds an interprocedural call graph by name resolution.
// That makes it buildable with the repo's own toolchain — no libclang
// dependency — at the cost of being tuned to this codebase's idiom
// (Google-style C++, the common/mutex.h RAII vocabulary, PayloadReader).
// Policy lives in zdb_lint.conf, not in code: sinks, allowlists,
// sanctioned pin plumbing and the declared lock order are all data.

#ifndef ZDB_TOOLS_ZDB_LINT_LINT_H_
#define ZDB_TOOLS_ZDB_LINT_LINT_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace zdb {
namespace lint {

// ------------------------------------------------------------ diagnostics

struct Diagnostic {
  std::string file;  ///< path as scanned (relative to the lint root)
  int line = 0;
  std::string check;    ///< "io-under-latch", "epoch-pin", ...
  std::string message;  ///< human-readable, includes the call path
};

// ----------------------------------------------------------------- tokens

struct Token {
  enum class Kind : uint8_t { kIdent, kNumber, kPunct };
  Kind kind;
  std::string text;
  int line;
};

/// Loads `path` and returns its contents, or nullopt on I/O failure.
std::optional<std::string> LoadFile(const std::string& path);

/// Replaces comments, string/char literals and preprocessor directives
/// (including line continuations) with spaces, preserving offsets and
/// newlines so token line numbers match the original file.
std::string Scrub(const std::string& text);

/// Tokenizes scrubbed source text.
std::vector<Token> Lex(const std::string& scrubbed);

// ------------------------------------------------------------------ model

/// A lock named by class-qualified member ("SpatialIndex::latch_") or, if
/// the member could not be attributed to a class, its bare name.
struct HeldLock {
  std::string name;
  bool exclusive = true;
  bool operator<(const HeldLock& o) const {
    return name != o.name ? name < o.name : exclusive < o.exclusive;
  }
};

struct CallSite {
  std::string callee;    ///< name as written; may be "A::B" qualified
  std::string receiver;  ///< "x" for x.f()/x->f(), "A" for A::f(), "" else
  int line = 0;
  std::vector<HeldLock> held;  ///< locks held at the call site
};

struct LockAcquire {
  std::string lock;  ///< qualified lock name
  bool exclusive = true;
  int line = 0;
  std::vector<HeldLock> held;  ///< locks already held at this acquire
};

struct DecodeCall {
  std::string callee;
  int line = 0;
  bool voided = false;       ///< written as (void)call(...)
  bool checked = false;      ///< used in a condition / return / RETURN_IF
  std::string assigned_to;   ///< variable the result was assigned to
  bool assignee_read = false;  ///< that variable is read later on
};

struct PinEvent {
  enum class Kind : uint8_t { kContainer, kHeap, kReturn, kMember };
  Kind kind;
  int line = 0;
  std::string detail;
  std::string enclosing;  ///< function (kReturn) or class (kMember)
  std::string file;
};

struct Function {
  std::string qname;  ///< class-qualified, namespaces dropped
  std::string file;
  int line = 0;
  bool defined = false;
  std::vector<HeldLock> requires_locks;   ///< REQUIRES/REQUIRES_SHARED
  std::vector<HeldLock> acquires_ann;     ///< ACQUIRE/ACQUIRE_SHARED
  std::vector<std::string> releases_ann;  ///< RELEASE/RELEASE_SHARED
  std::vector<CallSite> calls;
  std::vector<LockAcquire> lock_acquires;
  std::vector<DecodeCall> decode_calls;
};

struct ClassInfo {
  std::string name;
  /// mutex member name -> "Mutex" | "SharedMutex"
  std::map<std::string, std::string> mutex_members;
  /// ACQUIRED_AFTER edges harvested from member declarations:
  /// (member, predecessor) means predecessor is acquired first.
  std::vector<std::pair<std::string, std::string>> after_edges;
};

struct Model {
  /// Keyed by qname; a declaration and its out-of-line definition merge.
  std::map<std::string, Function> functions;
  std::map<std::string, ClassInfo> classes;
  std::vector<PinEvent> pin_events;
};

// ----------------------------------------------------------------- config

struct Config {
  /// The exclusive-latch capabilities the io-under-latch check guards.
  std::set<std::string> latches;
  /// Scoped RAII section types -> (lock, exclusive?).
  std::map<std::string, std::pair<std::string, bool>> section_types;
  /// Functions returning a scoped shared section (ReaderSection()).
  std::map<std::string, std::pair<std::string, bool>> acquire_fns;
  /// I/O sink functions ("File::Sync") and bare syscall names ("fsync").
  std::set<std::string> io_sinks;
  /// Functions whose subtree is exempt from io-under-latch, with reason.
  std::map<std::string, std::string> io_allow;
  /// Decode functions whose result must be consumed.
  std::set<std::string> decode_fns;
  /// Path substrings the decode check applies to ("net/", "repl/", ...).
  std::vector<std::string> decode_paths;
  /// Pin type name ("EpochPin") and the plumbing allowed to traffic it.
  std::string pin_type = "EpochPin";
  std::set<std::string> pin_return_allow;  ///< functions may return a pin
  std::vector<std::string> pin_file_allow;  ///< path substrings exempt
  /// Declared lock order edges a -> b (a acquired before b), qualified.
  std::vector<std::pair<std::string, std::string>> lock_order;
  /// Functions the order check skips entirely (with a written reason).
  std::set<std::string> order_allow;
  /// Member-name -> class hints for receiver resolution (pager_ -> Pager).
  std::map<std::string, std::string> receiver_types;
};

/// Parses the .conf (ini-style sections, '#' comments). Returns false and
/// fills *err on malformed input.
bool LoadConfig(const std::string& path, Config* cfg, std::string* err);

// ------------------------------------------------------------ parse/graph

/// Parses one scanned file into the model. `rel` is the path recorded in
/// diagnostics and used for path-scoped checks.
void ParseFile(const std::string& rel, const std::vector<Token>& tokens,
               const Config& cfg, Model* model);

/// Post-parse pass, run once after every file is in: qualifies bare lock
/// names against the class table (members declared after their methods,
/// or in another header, resolve here) and folds the declared-order
/// edges harvested from ACQUIRED_AFTER annotations into cfg-independent
/// model state. Lock names that stay ambiguous are left bare and the
/// order check skips them.
void Normalize(Model* model, const Config& cfg);

/// Name-resolution call graph over the model.
class CallGraph {
 public:
  CallGraph(const Model& model, const Config& cfg);

  /// Functions a call site may invoke (empty for std::/external calls).
  std::vector<const Function*> Resolve(const CallSite& call,
                                       const Function& from) const;

  /// True when the call site itself names a configured I/O sink (either
  /// a resolved project function or a bare syscall wrapper).
  bool IsSinkCall(const CallSite& call, const Function& from) const;

  /// Shortest call path from `from` (starting at one of its call sites)
  /// to any I/O sink, cutting allowlisted subtrees. Returns the chain of
  /// function names ending in the sink, or nullopt.
  std::optional<std::vector<std::string>> PathToSink(
      const CallSite& root_call, const Function& from) const;

  /// Locks (transitively) acquired by resolving `call` from `from`,
  /// with one witness path per lock for diagnostics.
  std::map<std::string, std::vector<std::string>> AcquiredBy(
      const CallSite& call, const Function& from) const;

 private:
  const Model& model_;
  const Config& cfg_;
  std::map<std::string, std::vector<const Function*>> by_name_;
};

// ----------------------------------------------------------------- checks

std::vector<Diagnostic> CheckIoUnderLatch(const Model& model,
                                          const CallGraph& graph,
                                          const Config& cfg);
std::vector<Diagnostic> CheckEpochPins(const Model& model, const Config& cfg);
std::vector<Diagnostic> CheckDecodeHygiene(const Model& model,
                                           const Config& cfg);
std::vector<Diagnostic> CheckLockOrder(const Model& model,
                                       const CallGraph& graph,
                                       const Config& cfg);

}  // namespace lint
}  // namespace zdb

#endif  // ZDB_TOOLS_ZDB_LINT_LINT_H_
