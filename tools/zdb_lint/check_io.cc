// Copyright (c) zdb authors. Licensed under the MIT license.
//
// io-under-latch: the publish/durability split. Any call site executed
// while an exclusive engine latch is held (scoped WriterSection, manual
// LatchExclusive, or a REQUIRES(latch_) contract) must not reach a
// configured I/O sink through any interprocedural path. Functions on the
// io_allow list (group-commit bootstrap, crash rollback) cut the search
// with their written reason.

#include <sstream>

#include "lint.h"

namespace zdb {
namespace lint {

namespace {

/// The exclusive latch (if any) held at this site.
std::optional<std::string> HeldLatch(const std::vector<HeldLock>& held,
                                     const Config& cfg) {
  for (const HeldLock& h : held) {
    if (h.exclusive && cfg.latches.count(h.name) > 0) return h.name;
  }
  return std::nullopt;
}

std::string JoinPath(const std::vector<std::string>& path) {
  std::ostringstream ss;
  for (size_t i = 0; i < path.size(); ++i) {
    if (i > 0) ss << " -> ";
    ss << path[i];
  }
  return ss.str();
}

}  // namespace

std::vector<Diagnostic> CheckIoUnderLatch(const Model& model,
                                          const CallGraph& graph,
                                          const Config& cfg) {
  std::vector<Diagnostic> out;
  for (const auto& [qname, fn] : model.functions) {
    if (cfg.io_allow.count(qname) > 0) continue;  // reasoned exemption
    for (const CallSite& call : fn.calls) {
      const auto latch = HeldLatch(call.held, cfg);
      if (!latch.has_value()) continue;
      const auto path = graph.PathToSink(call, fn);
      if (!path.has_value()) continue;
      Diagnostic d;
      d.file = fn.file;
      d.line = call.line;
      d.check = "io-under-latch";
      d.message = "I/O sink reachable while holding " + *latch +
                  " (exclusive): " + qname + " -> " + JoinPath(*path);
      out.push_back(std::move(d));
    }
  }
  return out;
}

}  // namespace lint
}  // namespace zdb
