// Copyright (c) zdb authors. Licensed under the MIT license.
//
// zdb_lint.conf parsing. The format is deliberately dumb: ini-style
// [section] headers, one entry per line, '#' comments. Policy (sinks,
// allowlists, sanctioned plumbing, the declared lock order) lives here
// so tightening or relaxing a contract is a data change with a reasoned
// comment, not a tool rebuild.

#include <fstream>
#include <sstream>

#include "lint.h"

namespace zdb {
namespace lint {

namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Splits "a -> b" / "Name = Lock, shared" style lines.
std::vector<std::string> SplitOn(const std::string& s, const std::string& sep) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (true) {
    const size_t next = s.find(sep, pos);
    if (next == std::string::npos) {
      out.push_back(Trim(s.substr(pos)));
      return out;
    }
    out.push_back(Trim(s.substr(pos, next - pos)));
    pos = next + sep.size();
  }
}

}  // namespace

bool LoadConfig(const std::string& path, Config* cfg, std::string* err) {
  std::ifstream in(path);
  if (!in) {
    *err = "cannot open config: " + path;
    return false;
  }
  std::string line;
  std::string section;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    std::string reason;
    if (hash != std::string::npos) {
      reason = Trim(line.substr(hash + 1));
      line = line.substr(0, hash);
    }
    line = Trim(line);
    if (line.empty()) continue;
    if (line.front() == '[' && line.back() == ']') {
      section = Trim(line.substr(1, line.size() - 2));
      continue;
    }
    auto bad = [&](const std::string& why) {
      *err = path + ":" + std::to_string(lineno) + ": " + why;
      return false;
    };
    if (section == "latches") {
      cfg->latches.insert(line);
    } else if (section == "section_types" || section == "acquire_fns") {
      // "WriterSection = SpatialIndex::latch_, exclusive"
      const auto kv = SplitOn(line, "=");
      if (kv.size() != 2) return bad("want 'Name = Lock, exclusive|shared'");
      const auto lockmode = SplitOn(kv[1], ",");
      if (lockmode.size() != 2 ||
          (lockmode[1] != "exclusive" && lockmode[1] != "shared")) {
        return bad("want 'Name = Lock, exclusive|shared'");
      }
      const bool excl = lockmode[1] == "exclusive";
      if (section == "section_types") {
        cfg->section_types[kv[0]] = {lockmode[0], excl};
      } else {
        cfg->acquire_fns[kv[0]] = {lockmode[0], excl};
      }
    } else if (section == "io_sinks") {
      cfg->io_sinks.insert(line);
    } else if (section == "io_allow") {
      cfg->io_allow[line] = reason.empty() ? "allowlisted" : reason;
    } else if (section == "decode_fns") {
      cfg->decode_fns.insert(line);
    } else if (section == "decode_paths") {
      cfg->decode_paths.push_back(line);
    } else if (section == "pin_type") {
      cfg->pin_type = line;
    } else if (section == "pin_return_allow") {
      cfg->pin_return_allow.insert(line);
    } else if (section == "pin_file_allow") {
      cfg->pin_file_allow.push_back(line);
    } else if (section == "lock_order") {
      const auto ab = SplitOn(line, "->");
      if (ab.size() != 2 || ab[0].empty() || ab[1].empty()) {
        return bad("want 'LockA -> LockB' (A acquired before B)");
      }
      cfg->lock_order.push_back({ab[0], ab[1]});
    } else if (section == "order_allow") {
      cfg->order_allow.insert(line);
    } else if (section == "receiver_types") {
      const auto kv = SplitOn(line, "=");
      if (kv.size() != 2) return bad("want 'member_ = ClassName'");
      cfg->receiver_types[kv[0]] = kv[1];
    } else {
      return bad("unknown section [" + section + "]");
    }
  }
  return true;
}

}  // namespace lint
}  // namespace zdb
