// Copyright (c) zdb authors. Licensed under the MIT license.
//
// zdb_lint driver. Usage:
//
//   zdb_lint --root=<repo root> [--config=<conf>] [--check=<name>]...
//            [--compile-commands=<build/compile_commands.json>]
//
// Scans <root>/src (or <root> itself for fixture trees with loose .cc
// files), headers before sources so class/mutex tables exist by the time
// method bodies resolve. When --compile-commands is given, its file list
// (filtered to the scan root) replaces the directory walk for .cc files
// — headers are still discovered by walking, since they never appear in
// the compilation database. Exit code: 0 clean, 1 findings, 2 usage or
// I/O error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "lint.h"

namespace zdb {
namespace lint {
namespace {

namespace fs = std::filesystem;

struct Options {
  std::string root = ".";
  std::string config;
  std::string compile_commands;
  std::set<std::string> checks;  // empty = all
};

const std::set<std::string> kAllChecks = {"io-under-latch", "epoch-pin",
                                          "decode-hygiene", "lock-order"};

bool ParseArgs(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* prefix) -> std::optional<std::string> {
      const size_t n = std::string(prefix).size();
      if (arg.rfind(prefix, 0) == 0) return arg.substr(n);
      return std::nullopt;
    };
    if (auto root = val("--root=")) {
      opt->root = *root;
    } else if (auto conf = val("--config=")) {
      opt->config = *conf;
    } else if (auto ccj = val("--compile-commands=")) {
      opt->compile_commands = *ccj;
    } else if (auto check = val("--check=")) {
      if (kAllChecks.count(*check) == 0) {
        std::cerr << "zdb_lint: unknown check '" << *check << "'\n";
        return false;
      }
      opt->checks.insert(*check);
    } else {
      std::cerr << "zdb_lint: unknown argument '" << arg << "'\n"
                << "usage: zdb_lint --root=DIR [--config=FILE] "
                   "[--check=NAME]... [--compile-commands=FILE]\n"
                << "checks: io-under-latch epoch-pin decode-hygiene "
                   "lock-order\n";
      return false;
    }
  }
  if (opt->config.empty()) {
    opt->config = opt->root + "/tools/zdb_lint/zdb_lint.conf";
  }
  return true;
}

/// Pulls the "file" entries out of compile_commands.json. A full JSON
/// parser is overkill for the clang/cmake output shape; we scan for
/// '"file"' keys and take the quoted value, unescaping nothing (paths in
/// this repo have no escapes).
std::vector<std::string> FilesFromCompileCommands(const std::string& path) {
  std::vector<std::string> files;
  const auto text = LoadFile(path);
  if (!text.has_value()) return files;
  const std::string key = "\"file\"";
  size_t pos = 0;
  while ((pos = text->find(key, pos)) != std::string::npos) {
    pos += key.size();
    const size_t q1 = text->find('"', pos);
    if (q1 == std::string::npos) break;
    const size_t q2 = text->find('"', q1 + 1);
    if (q2 == std::string::npos) break;
    files.push_back(text->substr(q1 + 1, q2 - q1 - 1));
    pos = q2 + 1;
  }
  return files;
}

bool IsHeader(const fs::path& p) {
  return p.extension() == ".h" || p.extension() == ".hpp";
}
bool IsSource(const fs::path& p) {
  return p.extension() == ".cc" || p.extension() == ".cpp";
}

/// Collects the scan list: headers first, then sources, both sorted for
/// deterministic output.
std::vector<fs::path> CollectFiles(const Options& opt,
                                   const fs::path& scan_root) {
  std::vector<fs::path> headers;
  std::vector<fs::path> sources;
  for (const auto& entry : fs::recursive_directory_iterator(scan_root)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& p = entry.path();
    if (IsHeader(p)) headers.push_back(p);
    else if (IsSource(p) && opt.compile_commands.empty()) sources.push_back(p);
  }
  if (!opt.compile_commands.empty()) {
    const fs::path root_abs = fs::absolute(scan_root).lexically_normal();
    for (const std::string& f : FilesFromCompileCommands(
             opt.compile_commands)) {
      fs::path p = fs::path(f).lexically_normal();
      // Keep only files under the scan root.
      const std::string ps = fs::absolute(p).lexically_normal().string();
      if (ps.rfind(root_abs.string(), 0) == 0 && IsSource(p)) {
        sources.push_back(p);
      }
    }
  }
  std::sort(headers.begin(), headers.end());
  std::sort(sources.begin(), sources.end());
  std::vector<fs::path> all = std::move(headers);
  all.insert(all.end(), sources.begin(), sources.end());
  return all;
}

int Run(const Options& opt) {
  Config cfg;
  std::string err;
  if (!LoadConfig(opt.config, &cfg, &err)) {
    std::cerr << "zdb_lint: " << err << "\n";
    return 2;
  }

  const fs::path root(opt.root);
  fs::path scan_root = root / "src";
  std::error_code ec;
  if (!fs::is_directory(scan_root, ec)) scan_root = root;
  if (!fs::is_directory(scan_root, ec)) {
    std::cerr << "zdb_lint: no such directory: " << scan_root << "\n";
    return 2;
  }

  Model model;
  int parsed = 0;
  for (const fs::path& p : CollectFiles(opt, scan_root)) {
    const auto text = LoadFile(p.string());
    if (!text.has_value()) {
      std::cerr << "zdb_lint: cannot read " << p << "\n";
      return 2;
    }
    const std::string rel =
        fs::relative(p, root, ec).string().empty() || ec
            ? p.string()
            : fs::relative(p, root).string();
    ParseFile(rel, Lex(Scrub(*text)), cfg, &model);
    ++parsed;
  }
  Normalize(&model, cfg);
  const CallGraph graph(model, cfg);

  auto want = [&](const char* name) {
    return opt.checks.empty() || opt.checks.count(name) > 0;
  };
  std::vector<Diagnostic> diags;
  auto append = [&](std::vector<Diagnostic> v) {
    diags.insert(diags.end(), std::make_move_iterator(v.begin()),
                 std::make_move_iterator(v.end()));
  };
  if (want("io-under-latch")) append(CheckIoUnderLatch(model, graph, cfg));
  if (want("epoch-pin")) append(CheckEpochPins(model, cfg));
  if (want("decode-hygiene")) append(CheckDecodeHygiene(model, cfg));
  if (want("lock-order")) append(CheckLockOrder(model, graph, cfg));

  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.message < b.message;
            });
  for (const Diagnostic& d : diags) {
    std::cout << d.file << ":" << d.line << ": error: [" << d.check << "] "
              << d.message << "\n";
  }
  std::cerr << "zdb_lint: " << parsed << " files, "
            << model.functions.size() << " functions, " << diags.size()
            << " finding" << (diags.size() == 1 ? "" : "s") << "\n";
  return diags.empty() ? 0 : 1;
}

}  // namespace
}  // namespace lint
}  // namespace zdb

int main(int argc, char** argv) {
  zdb::lint::Options opt;
  if (!zdb::lint::ParseArgs(argc, argv, &opt)) return 2;
  return zdb::lint::Run(opt);
}
