// Copyright (c) zdb authors. Licensed under the MIT license.
//
// epoch-pin discipline: an EpochPin is a stack-scoped capability tied to
// the creating thread's read epoch. Storing pins in containers or on the
// heap, keeping one as a class member, or returning one from a function
// detaches its lifetime from the scope that pinned the epoch and holds
// GC back indefinitely. Only the sanctioned plumbing (EpochManager::Pin,
// SnapshotReadScope and friends listed in pin_return_allow, plus the
// files that implement them in pin_file_allow) may traffic pins.

#include "lint.h"

namespace zdb {
namespace lint {

namespace {

bool FileAllowed(const std::string& file, const Config& cfg) {
  for (const std::string& sub : cfg.pin_file_allow) {
    if (file.find(sub) != std::string::npos) return true;
  }
  return false;
}

const char* KindWord(PinEvent::Kind k) {
  switch (k) {
    case PinEvent::Kind::kContainer: return "stored in a container";
    case PinEvent::Kind::kHeap: return "heap-allocated";
    case PinEvent::Kind::kReturn: return "returned by value";
    case PinEvent::Kind::kMember: return "held as a class member";
  }
  return "misused";
}

}  // namespace

std::vector<Diagnostic> CheckEpochPins(const Model& model, const Config& cfg) {
  std::vector<Diagnostic> out;
  for (const PinEvent& ev : model.pin_events) {
    if (FileAllowed(ev.file, cfg)) continue;
    if (ev.kind == PinEvent::Kind::kReturn &&
        cfg.pin_return_allow.count(ev.enclosing) > 0) {
      continue;
    }
    Diagnostic d;
    d.file = ev.file;
    d.line = ev.line;
    d.check = "epoch-pin";
    d.message = cfg.pin_type + " " + KindWord(ev.kind) + " (" + ev.detail +
                ") in " + ev.enclosing +
                "; pins must stay stack-scoped in their creating function";
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace lint
}  // namespace zdb
