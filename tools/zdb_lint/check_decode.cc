// Copyright (c) zdb authors. Licensed under the MIT license.
//
// decode-hygiene: in the protocol-facing directories every PayloadReader
// accessor and wire-decode helper returns a success bool / Status that
// must influence control flow. Three failure shapes are flagged:
//
//   (void)reader.GetU32(&x);        explicit discard
//   reader.GetU32(&x);              implicit discard
//   bool ok = reader.GetU32(&x);    assigned but never read again
//
// The check is path-scoped (decode_paths) because core/ test helpers may
// legitimately decode trusted bytes.

#include "lint.h"

namespace zdb {
namespace lint {

namespace {

bool InDecodePath(const std::string& file, const Config& cfg) {
  for (const std::string& sub : cfg.decode_paths) {
    if (file.find(sub) != std::string::npos) return true;
  }
  return false;
}

}  // namespace

std::vector<Diagnostic> CheckDecodeHygiene(const Model& model,
                                           const Config& cfg) {
  std::vector<Diagnostic> out;
  for (const auto& [qname, fn] : model.functions) {
    if (!fn.defined || !InDecodePath(fn.file, cfg)) continue;
    for (const DecodeCall& dc : fn.decode_calls) {
      std::string why;
      if (dc.voided) {
        why = "result explicitly discarded with (void)";
      } else if (!dc.checked && dc.assigned_to.empty()) {
        why = "result discarded (not checked, not assigned)";
      } else if (!dc.checked && !dc.assigned_to.empty() &&
                 !dc.assignee_read) {
        why = "result assigned to '" + dc.assigned_to +
              "' but never read";
      } else {
        continue;
      }
      Diagnostic d;
      d.file = fn.file;
      d.line = dc.line;
      d.check = "decode-hygiene";
      d.message = dc.callee + " in " + qname + ": " + why +
                  "; decode results must flow into a checked status";
      out.push_back(std::move(d));
    }
  }
  return out;
}

}  // namespace lint
}  // namespace zdb
