// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Token-stream parser: recognizes namespaces, classes, function
// definitions/declarations, the thread-safety annotation macros, the
// common/mutex.h RAII vocabulary, PayloadReader-style decode calls and
// EpochPin traffic, and records them in the model. This is not a C++
// parser — it is a structural scanner tuned to this repository's idiom
// (Google style, annotated wrappers, no macros that hide braces), which
// is exactly the trade that lets it build with any toolchain.

#include <algorithm>
#include <cassert>

#include "lint.h"

namespace zdb {
namespace lint {

namespace {

const std::set<std::string>& Keywords() {
  static const std::set<std::string> kw = {
      "if",      "else",    "for",     "while",   "do",       "switch",
      "case",    "default", "return",  "break",   "continue", "goto",
      "new",     "delete",  "sizeof",  "alignof", "co_await", "co_return",
      "co_yield", "throw",  "try",     "catch",   "static_cast",
      "dynamic_cast", "reinterpret_cast", "const_cast"};
  return kw;
}

bool IsContainerName(const std::string& s) {
  static const std::set<std::string> kContainers = {
      "vector", "deque", "list", "forward_list", "map", "multimap", "set",
      "multiset", "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset", "queue", "priority_queue", "stack", "array"};
  return kContainers.count(s) > 0;
}

/// Annotation macros that may trail a function signature. The value is
/// what the macro means for the function's lock contract.
enum class AnnKind {
  kRequires,
  kRequiresShared,
  kAcquire,
  kAcquireShared,
  kRelease,
  kOther,  // EXCLUDES, TRY_ACQUIRE, ASSERT_*, ... parsed and ignored
};

std::optional<AnnKind> AnnotationKind(const std::string& name) {
  if (name == "REQUIRES" || name == "EXCLUSIVE_LOCKS_REQUIRED")
    return AnnKind::kRequires;
  if (name == "REQUIRES_SHARED" || name == "SHARED_LOCKS_REQUIRED")
    return AnnKind::kRequiresShared;
  if (name == "ACQUIRE") return AnnKind::kAcquire;
  if (name == "ACQUIRE_SHARED") return AnnKind::kAcquireShared;
  if (name == "RELEASE" || name == "RELEASE_SHARED" ||
      name == "RELEASE_GENERIC")
    return AnnKind::kRelease;
  if (name == "EXCLUDES" || name == "TRY_ACQUIRE" ||
      name == "TRY_ACQUIRE_SHARED" || name == "ASSERT_CAPABILITY" ||
      name == "ASSERT_SHARED_CAPABILITY" || name == "RETURN_CAPABILITY" ||
      name == "NO_THREAD_SAFETY_ANALYSIS" || name == "ACQUIRED_AFTER" ||
      name == "ACQUIRED_BEFORE")
    return AnnKind::kOther;
  return std::nullopt;
}

class Parser {
 public:
  Parser(const std::string& rel, const std::vector<Token>& toks,
         const Config& cfg, Model* model)
      : rel_(rel), t_(toks), cfg_(cfg), model_(model) {}

  void Run() { ParseRegion(0, t_.size(), {}); }

 private:
  // ----------------------------------------------------------- utilities

  const Token& Tok(size_t i) const { return t_[i]; }
  bool Is(size_t i, const char* s) const {
    return i < t_.size() && t_[i].text == s;
  }
  bool IsIdent(size_t i) const {
    return i < t_.size() && t_[i].kind == Token::Kind::kIdent;
  }

  /// Index just past the ')' matching the '(' at i (i must be '(').
  size_t SkipParens(size_t i, size_t end) const {
    int depth = 0;
    for (; i < end; ++i) {
      if (t_[i].text == "(") ++depth;
      else if (t_[i].text == ")" && --depth == 0) return i + 1;
    }
    return end;
  }

  size_t SkipBraces(size_t i, size_t end) const {
    int depth = 0;
    for (; i < end; ++i) {
      if (t_[i].text == "{") ++depth;
      else if (t_[i].text == "}" && --depth == 0) return i + 1;
    }
    return end;
  }

  /// Skips a balanced template argument list; i points at '<'. Handles
  /// '>>' closing two levels. Gives up (returns i+1) if unbalanced
  /// within a window — '<' may have been less-than after all.
  size_t SkipAngles(size_t i, size_t end) const {
    int depth = 0;
    const size_t limit = std::min(end, i + 400);
    for (size_t j = i; j < limit; ++j) {
      const std::string& s = t_[j].text;
      if (s == "<") ++depth;
      else if (s == "<<") depth += 2;
      else if (s == ">") {
        if (--depth == 0) return j + 1;
      } else if (s == ">>") {
        depth -= 2;
        if (depth <= 0) return j + 1;
      } else if (s == ";" || s == "{" || s == "}") {
        return i + 1;  // not a template list
      }
    }
    return i + 1;
  }

  /// Collects a qualified name chain ending at index `last` (inclusive):
  /// "A::B::name". Returns the chain and the index of its first token.
  std::pair<std::string, size_t> NameChainEndingAt(size_t last) const {
    std::string name = t_[last].text;
    size_t first = last;
    while (first >= 2 && t_[first - 1].text == "::" &&
           t_[first - 2].kind == Token::Kind::kIdent) {
      name = t_[first - 2].text + "::" + name;
      first -= 2;
    }
    // A leading "::" (global qualification) is dropped.
    return {name, first};
  }

  /// The last identifier within [i, end) — how lock names are pulled out
  /// of annotation args ("ix->latch_" -> "latch_").
  std::string LastIdentIn(size_t i, size_t end) const {
    std::string out;
    for (size_t j = i; j < end; ++j) {
      if (t_[j].kind == Token::Kind::kIdent) out = t_[j].text;
    }
    return out;
  }

  /// Splits annotation args "(a, b->c_)" at top level commas and returns
  /// the last identifier of each arg. `i` points at '('.
  std::vector<std::string> AnnotationArgs(size_t i, size_t end) const {
    std::vector<std::string> args;
    if (!Is(i, "(")) return args;
    const size_t close = SkipParens(i, end) - 1;
    size_t start = i + 1;
    int depth = 0;
    for (size_t j = i + 1; j <= close; ++j) {
      const std::string& s = t_[j].text;
      if (s == "(") ++depth;
      else if (s == ")" && depth > 0) --depth;
      else if ((s == "," && depth == 0) || j == close) {
        const std::string a = LastIdentIn(start, j);
        if (!a.empty()) args.push_back(a);
        start = j + 1;
      }
    }
    return args;
  }

  Function* GetFunction(const std::string& qname, int line) {
    auto it = model_->functions.find(qname);
    if (it == model_->functions.end()) {
      Function f;
      f.qname = qname;
      f.file = rel_;
      f.line = line;
      it = model_->functions.emplace(qname, std::move(f)).first;
    }
    return &it->second;
  }

  static void AddHeld(std::vector<HeldLock>* v, const HeldLock& l) {
    for (const HeldLock& h : *v) {
      if (h.name == l.name && h.exclusive == l.exclusive) return;
    }
    v->push_back(l);
  }

  // ------------------------------------------------------ region parsing

  /// Parses a namespace/class/global token region [i, end).
  void ParseRegion(size_t i, size_t end, std::vector<std::string> classes) {
    while (i < end) {
      const Token& tok = t_[i];
      if (tok.kind != Token::Kind::kIdent) {
        // Stray punctuation at declaration scope (};, extra ;) — skip.
        if (tok.text == "{") { i = SkipBraces(i, end); continue; }
        ++i;
        continue;
      }
      const std::string& s = tok.text;
      if (s == "namespace") {
        size_t j = i + 1;
        while (j < end && (IsIdent(j) || Is(j, "::"))) ++j;
        if (Is(j, "{")) {
          const size_t close = SkipBraces(j, end);
          ParseRegion(j + 1, close - 1, classes);  // namespaces dropped
          i = close;
        } else {
          while (j < end && !Is(j, ";")) ++j;
          i = j + 1;
        }
        continue;
      }
      if (s == "class" || s == "struct" || s == "union") {
        i = ParseClassLike(i, end, classes);
        continue;
      }
      if (s == "enum") {
        size_t j = i + 1;
        while (j < end && !Is(j, "{") && !Is(j, ";")) ++j;
        if (Is(j, "{")) j = SkipBraces(j, end);
        while (j < end && !Is(j, ";")) ++j;
        i = j + 1;
        continue;
      }
      if (s == "template") {
        size_t j = i + 1;
        if (Is(j, "<")) j = SkipAngles(j, end);
        i = j;
        continue;
      }
      if (s == "using" || s == "typedef" || s == "static_assert" ||
          s == "friend" || s == "extern") {
        size_t j = i;
        while (j < end && !Is(j, ";") && !Is(j, "{")) ++j;
        if (Is(j, "{")) j = SkipBraces(j, end) ;
        while (j < end && !Is(j, ";")) ++j;
        i = j + 1;
        continue;
      }
      if (s == "public" || s == "private" || s == "protected") {
        i += Is(i + 1, ":") ? 2 : 1;
        continue;
      }
      i = ParseDeclaration(i, end, classes);
    }
  }

  /// Parses "class X ... { ... } ;" starting at the class keyword.
  size_t ParseClassLike(size_t i, size_t end,
                        const std::vector<std::string>& classes) {
    size_t j = i + 1;
    // Skip attributes and macros between keyword and name (CAPABILITY(x),
    // SCOPED_CAPABILITY, alignas(...)).
    std::string name;
    while (j < end) {
      if (IsIdent(j)) {
        if (Is(j + 1, "(")) {
          name = t_[j].text;  // may be overwritten by a later plain ident
          j = SkipParens(j + 1, end);
          name.clear();
          continue;
        }
        name = t_[j].text;
        ++j;
        continue;
      }
      break;
    }
    // j now sits at ':', '{', ';' or something unexpected.
    while (j < end && !Is(j, "{") && !Is(j, ";")) ++j;
    if (!Is(j, "{")) return j + 1;  // forward declaration
    const size_t close = SkipBraces(j, end);
    std::vector<std::string> inner = classes;
    if (!name.empty()) {
      inner.push_back(name);
      model_->classes.emplace(name, ClassInfo{name, {}, {}});
    }
    ParseRegion(j + 1, close - 1, inner);
    size_t k = close;
    while (k < end && !Is(k, ";")) ++k;  // trailing declarator list
    return k + 1;
  }

  /// At declaration scope: parses one member/function/variable starting
  /// at i; returns the index to resume from.
  size_t ParseDeclaration(size_t i, size_t end,
                          const std::vector<std::string>& classes) {
    size_t j = i;
    size_t name_last = 0;
    bool found_call_paren = false;
    // Scan forward to the declarator's '(' (function) or ';'/'='/'{'
    // (member / variable). Angle brackets after an identifier are
    // template args and skipped as a unit.
    while (j < end) {
      const std::string& s = t_[j].text;
      if (s == ";") return HandleMemberDecl(i, j, classes), j + 1;
      if (s == "=") {  // variable with initializer / "= default"
        size_t k = j;
        while (k < end && !Is(k, ";")) {
          if (Is(k, "{")) { k = SkipBraces(k, end); continue; }
          ++k;
        }
        return HandleMemberDecl(i, j, classes), k + 1;
      }
      if (s == "{") {  // brace-init member or stray block
        size_t k = SkipBraces(j, end);
        while (k < end && !Is(k, ";")) ++k;
        return HandleMemberDecl(i, j, classes), k + 1;
      }
      if (s == "(") {
        // Function if preceded by an identifier (possibly qualified or
        // "operator..."): otherwise skip the parens and continue.
        if (j > i && IsIdent(j - 1)) {
          name_last = j - 1;
          found_call_paren = true;
          break;
        }
        if (j > i && t_[j - 1].kind == Token::Kind::kPunct &&
            j >= 2 && t_[j - 2].text == "operator") {
          name_last = j - 1;  // operator+ etc. — name token is the punct
          found_call_paren = true;
          break;
        }
        j = SkipParens(j, end);
        continue;
      }
      if (s == "<" && j > i && IsIdent(j - 1)) {
        j = SkipAngles(j, end);
        continue;
      }
      ++j;
    }
    if (!found_call_paren) return end;
    return ParseFunctionFrom(i, name_last, j, end, classes);
  }

  /// Handles a non-function declaration spanning [i, stop): records
  /// mutex members, ACQUIRED_AFTER edges and EpochPin storage.
  void HandleMemberDecl(size_t i, size_t stop,
                        const std::vector<std::string>& classes) {
    if (stop <= i) return;
    // First meaningful type token.
    std::string cls = classes.empty() ? "" : classes.back();
    std::string type;
    size_t type_idx = stop;
    for (size_t j = i; j < stop; ++j) {
      if (!IsIdent(j)) continue;
      const std::string& s = t_[j].text;
      if (s == "mutable" || s == "static" || s == "constexpr" ||
          s == "inline" || s == "const" || s == "volatile" || s == "std") {
        continue;
      }
      type = s;
      type_idx = j;
      break;
    }
    if (type.empty()) return;
    if ((type == "Mutex" || type == "SharedMutex") && !cls.empty()) {
      // "Mutex name_ [ACQUIRED_AFTER(pred)] ;"
      std::string member;
      for (size_t j = type_idx + 1; j < stop; ++j) {
        if (IsIdent(j) && member.empty() &&
            AnnotationKind(t_[j].text) == std::nullopt) {
          member = t_[j].text;
        }
        if (IsIdent(j) && (t_[j].text == "ACQUIRED_AFTER" ||
                           t_[j].text == "ACQUIRED_BEFORE")) {
          const bool after = t_[j].text == "ACQUIRED_AFTER";
          for (const std::string& a : AnnotationArgs(j + 1, stop)) {
            if (member.empty()) continue;
            if (after) {
              model_->classes[cls].after_edges.push_back({member, a});
            } else {
              model_->classes[cls].after_edges.push_back({a, member});
            }
          }
        }
      }
      if (!member.empty()) model_->classes[cls].mutex_members[member] = type;
      return;
    }
    // EpochPin storage: as a member, or inside a container template arg.
    for (size_t j = i; j < stop; ++j) {
      if (!IsIdent(j) || t_[j].text != cfg_.pin_type) continue;
      const bool in_template = ContainedInContainerArgs(i, stop, j);
      if (in_template) {
        model_->pin_events.push_back({PinEvent::Kind::kContainer,
                                      t_[j].line, "container of " +
                                      cfg_.pin_type, cls, rel_});
      } else if (j == type_idx && !cls.empty()) {
        model_->pin_events.push_back({PinEvent::Kind::kMember, t_[j].line,
                                      cfg_.pin_type + " class member",
                                      cls, rel_});
      }
      break;
    }
  }

  /// True when token j (a pin-type mention) sits inside the template
  /// args of a container named in [i, j).
  bool ContainedInContainerArgs(size_t i, size_t stop, size_t j) const {
    for (size_t k = i; k < j && k < stop; ++k) {
      if (IsIdent(k) && IsContainerName(t_[k].text) && Is(k + 1, "<")) {
        const size_t close = SkipAngles(k + 1, stop);
        if (j > k + 1 && j < close) return true;
      }
    }
    return false;
  }

  /// Parses a function whose name token is `name_last` and whose
  /// parameter '(' is at `paren`; [decl_start] marks the return type.
  size_t ParseFunctionFrom(size_t decl_start, size_t name_last, size_t paren,
                           size_t end,
                           const std::vector<std::string>& classes) {
    auto [name, name_first] = NameChainEndingAt(name_last);
    if (name_first > decl_start && t_[name_first - 1].text == "~") {
      name = "~" + name;
    }
    std::string qname;
    for (const std::string& c : classes) qname += c + "::";
    qname += name;

    const size_t params_end = SkipParens(paren, end);

    // Trailer: cv/ref qualifiers, annotation macros, trailing return,
    // ctor initializer list; ends at '{' (definition), ';' (declaration)
    // or '= default/delete;'.
    std::vector<HeldLock> req;
    std::vector<HeldLock> acq;
    std::vector<std::string> rel;
    size_t j = params_end;
    bool definition = false;
    while (j < end) {
      const std::string& s = t_[j].text;
      if (s == "{") { definition = true; break; }
      if (s == ";") break;
      if (s == "=") {  // = default / = delete / = 0
        while (j < end && !Is(j, ";")) ++j;
        break;
      }
      if (s == ":") {  // ctor initializer list: skip to body '{'
        int pdepth = 0;
        ++j;
        while (j < end) {
          const std::string& u = t_[j].text;
          if (u == "(" || u == "<") ++pdepth;
          else if (u == ")" || u == ">") --pdepth;
          else if (u == "{" && pdepth == 0) break;
          else if (u == "}" && pdepth == 0) break;
          else if (u == ";") break;
          ++j;
        }
        continue;
      }
      if (s == "->") {  // trailing return type
        ++j;
        continue;
      }
      if (IsIdent(j)) {
        const auto kind = AnnotationKind(s);
        if (kind.has_value()) {
          const std::vector<std::string> args =
              Is(j + 1, "(") ? AnnotationArgs(j + 1, end)
                             : std::vector<std::string>{};
          for (const std::string& a : args) {
            switch (*kind) {
              case AnnKind::kRequires: req.push_back({a, true}); break;
              case AnnKind::kRequiresShared: req.push_back({a, false}); break;
              case AnnKind::kAcquire: acq.push_back({a, true}); break;
              case AnnKind::kAcquireShared: acq.push_back({a, false}); break;
              case AnnKind::kRelease: rel.push_back(a); break;
              case AnnKind::kOther: break;
            }
          }
          j = Is(j + 1, "(") ? SkipParens(j + 1, end) : j + 1;
          continue;
        }
        if (Is(j + 1, "(")) {  // noexcept(...), __attribute__(...)
          j = SkipParens(j + 1, end);
          continue;
        }
        ++j;  // const, noexcept, override, final, ...
        continue;
      }
      ++j;
    }

    Function* fn = GetFunction(qname, t_[name_last].line);
    for (const HeldLock& h : req) AddHeld(&fn->requires_locks, h);
    for (const HeldLock& h : acq) AddHeld(&fn->acquires_ann, h);
    for (const std::string& r : rel) fn->releases_ann.push_back(r);

    // Return-type pin escape: the return type mentions EpochPin (and is
    // not a reference/pointer — "const EpochPin&" parameters never reach
    // here since we only look at [decl_start, name_first)).
    for (size_t k = decl_start; k + 1 < name_first; ++k) {
      if (IsIdent(k) && t_[k].text == cfg_.pin_type) {
        bool by_ref = false;
        for (size_t m = k + 1; m < name_first; ++m) {
          if (t_[m].text == "&" || t_[m].text == "*") by_ref = true;
        }
        if (!by_ref) {
          model_->pin_events.push_back({PinEvent::Kind::kReturn,
                                        t_[k].line,
                                        "returns " + cfg_.pin_type, qname, rel_});
        }
        break;
      }
    }

    if (!definition) {
      while (j < end && !Is(j, ";")) ++j;
      return j + 1;
    }
    fn->defined = true;
    fn->file = rel_;
    fn->line = t_[name_last].line;
    const size_t body_close = SkipBraces(j, end);
    ParseBody(fn, j + 1, body_close - 1, classes);
    return body_close;
  }

  // -------------------------------------------------------- body parsing

  struct ActiveLock {
    HeldLock lock;
    int depth;    ///< brace depth at declaration; popped when left
    bool manual;  ///< .Lock()/Latch* style — released by name, not scope
    std::string var;  ///< guard variable, for early `guard.Unlock()`
  };

  std::vector<HeldLock> CurrentHeld(const Function& fn,
                                    const std::vector<ActiveLock>& active) {
    std::vector<HeldLock> held = fn.requires_locks;
    for (const ActiveLock& a : active) AddHeld(&held, a.lock);
    return held;
  }

  void ParseBody(Function* fn, size_t i, size_t end,
                 const std::vector<std::string>& classes) {
    (void)classes;
    std::vector<ActiveLock> active;
    int depth = 0;
    size_t stmt_start = i;
    for (size_t j = i; j < end; ++j) {
      const Token& tok = t_[j];
      const std::string& s = tok.text;
      if (s == "{") { ++depth; stmt_start = j + 1; continue; }
      if (s == "}") {
        --depth;
        while (!active.empty() && !active.back().manual &&
               active.back().depth > depth) {
          active.pop_back();
        }
        stmt_start = j + 1;
        continue;
      }
      if (s == ";") { stmt_start = j + 1; continue; }
      if (tok.kind != Token::Kind::kIdent) continue;

      // Nested class/lambda-free declarations inside bodies that we
      // still want to skip wholesale.
      if (s == "class" || s == "struct" || s == "enum") {
        size_t k = j;
        while (k < end && !Is(k, "{") && !Is(k, ";")) ++k;
        if (Is(k, "{")) {
          // Local structs: parse as a class region for completeness.
          const size_t close = SkipBraces(k, end);
          j = close - 1;
          continue;
        }
        j = k;
        continue;
      }

      // RAII guard declarations: "MutexLock name(arg);" and the
      // configured scoped section types ("WriterSection lock(this);").
      if ((s == "MutexLock" || s == "WriterLock" || s == "ReaderLock") &&
          IsIdent(j + 1) && Is(j + 2, "(")) {
        const bool exclusive = s != "ReaderLock";
        const size_t close = SkipParens(j + 2, end);
        const std::string lock = LastIdentIn(j + 3, close - 1);
        if (!lock.empty()) {
          LockAcquire ev{lock, exclusive, tok.line, CurrentHeld(*fn, active)};
          fn->lock_acquires.push_back(ev);
          active.push_back({{lock, exclusive}, depth, false, t_[j + 1].text});
        }
        j = close - 1;
        continue;
      }
      auto sec = cfg_.section_types.find(s);
      if (sec != cfg_.section_types.end() && IsIdent(j + 1) &&
          Is(j + 2, "(")) {
        const size_t close = SkipParens(j + 2, end);
        LockAcquire ev{sec->second.first, sec->second.second, tok.line,
                       CurrentHeld(*fn, active)};
        fn->lock_acquires.push_back(ev);
        active.push_back({{sec->second.first, sec->second.second}, depth,
                          false, t_[j + 1].text});
        j = close - 1;
        continue;
      }

      // Call sites: ident '(' where the previous token doesn't make this
      // a declaration. "a.b(", "a->b(", "A::b(", "(void)a.b(" all count.
      if (Is(j + 1, "(")) {
        if (Keywords().count(s) > 0) continue;
        std::string receiver;
        bool is_decl = false;
        auto [callee, first] = NameChainEndingAt(j);
        if (first >= 1) {
          const Token& prev = t_[first - 1];
          if (prev.text == "." || prev.text == "->") {
            if (first >= 2 && IsIdent(first - 2)) receiver = t_[first - 2].text;
          } else if (prev.kind == Token::Kind::kIdent &&
                     Keywords().count(prev.text) == 0) {
            is_decl = true;  // "Type name(...)" — constructor args
          } else if (prev.text == ">" &&
                     callee.find("::") == std::string::npos) {
            is_decl = true;  // "unique_ptr<T> name(...)"
          }
        }
        if (callee.find("::") != std::string::npos) {
          const size_t pos = callee.rfind("::");
          receiver = callee.substr(0, pos);
          callee = callee.substr(pos + 2);
          if (receiver == "std") continue;  // std:: calls are external
        }
        if (is_decl) continue;

        // Manual lock/unlock calls keep the active set honest. Unlock on
        // either the mutex itself ("mu_.Unlock()") or a guard variable
        // ("lock.Unlock()", the early-release idiom) releases it.
        if ((callee == "Lock" || callee == "LockShared") &&
            !receiver.empty()) {
          const bool excl = callee == "Lock";
          LockAcquire ev{receiver, excl, tok.line, CurrentHeld(*fn, active)};
          fn->lock_acquires.push_back(ev);
          active.push_back({{receiver, excl}, depth, true, receiver});
          continue;
        }
        if ((callee == "Unlock" || callee == "UnlockShared") &&
            !receiver.empty()) {
          for (size_t k = active.size(); k-- > 0;) {
            if (active[k].lock.name == receiver || active[k].var == receiver) {
              active.erase(active.begin() + static_cast<long>(k));
              break;
            }
          }
          continue;
        }

        // Configured acquire functions (LatchExclusive, ReaderSection..).
        auto acq = cfg_.acquire_fns.find(callee);
        if (acq != cfg_.acquire_fns.end()) {
          LockAcquire ev{acq->second.first, acq->second.second, tok.line,
                         CurrentHeld(*fn, active)};
          fn->lock_acquires.push_back(ev);
          active.push_back(
              {{acq->second.first, acq->second.second}, depth, true, ""});
          continue;
        }
        if (callee == "UnlatchExclusive" || callee == "UnlatchShared") {
          for (size_t k = active.size(); k-- > 0;) {
            if (cfg_.latches.count(active[k].lock.name) > 0) {
              active.erase(active.begin() + static_cast<long>(k));
              break;
            }
          }
          continue;
        }

        CallSite call{callee, receiver, tok.line, CurrentHeld(*fn, active)};
        fn->calls.push_back(call);

        // Decode-hygiene bookkeeping.
        if (cfg_.decode_fns.count(callee) > 0) {
          fn->decode_calls.push_back(
              ClassifyDecode(fn, callee, stmt_start, first, j, end));
        }
        continue;
      }

      // Pin traffic inside bodies.
      if (s == "new" && IsIdent(j + 1)) {
        auto [ty, tfirst] = NameChainEndingAt(j + 1);
        (void)tfirst;
        size_t k = j + 1;
        while (IsIdent(k) && Is(k + 1, "::")) k += 2;
        if (IsIdent(k) && t_[k].text == cfg_.pin_type) {
          model_->pin_events.push_back({PinEvent::Kind::kHeap, tok.line,
                                        "new " + cfg_.pin_type, fn->qname, rel_});
        }
        continue;
      }
      if ((s == "make_unique" || s == "make_shared") && Is(j + 1, "<")) {
        const size_t close = SkipAngles(j + 1, end);
        for (size_t k = j + 2; k + 1 < close; ++k) {
          if (IsIdent(k) && t_[k].text == cfg_.pin_type) {
            model_->pin_events.push_back({PinEvent::Kind::kHeap, tok.line,
                                          s + "<" + cfg_.pin_type + ">",
                                          fn->qname, rel_});
            break;
          }
        }
        continue;
      }
      if (IsContainerName(s) && Is(j + 1, "<")) {
        const size_t close = SkipAngles(j + 1, end);
        for (size_t k = j + 2; k + 1 < close; ++k) {
          if (IsIdent(k) && t_[k].text == cfg_.pin_type) {
            model_->pin_events.push_back({PinEvent::Kind::kContainer,
                                          tok.line,
                                          s + "<" + cfg_.pin_type + ">",
                                          fn->qname, rel_});
            break;
          }
        }
        continue;
      }
    }

    FinalizeDecodeUses(fn, i, end);
  }

  /// Classifies one decode call's statement context. `name_first` is the
  /// first token of the (possibly qualified) callee, `name_last` its
  /// last; the statement spans [stmt_start, ...].
  DecodeCall ClassifyDecode(Function* fn, const std::string& callee,
                            size_t stmt_start, size_t name_first,
                            size_t name_last, size_t end) {
    DecodeCall dc;
    dc.callee = callee;
    dc.line = t_[name_last].line;
    (void)fn;
    (void)end;
    // (void) discard directly before the call or its receiver.
    size_t recv_first = name_first;
    while (recv_first >= 2 && (t_[recv_first - 1].text == "." ||
                               t_[recv_first - 1].text == "->") &&
           IsIdent(recv_first - 2)) {
      recv_first -= 2;
    }
    if (recv_first >= 3 && t_[recv_first - 1].text == ")" &&
        t_[recv_first - 2].text == "void" && t_[recv_first - 3].text == "(") {
      dc.voided = true;
      return dc;
    }
    static const std::set<std::string> kChecked = {
        "if",     "while", "for",    "return", "assert",
        "switch", "ZDB_RETURN_IF_ERROR", "ZDB_ASSIGN_OR_RETURN",
        "CHECK",  "DCHECK", "EXPECT_TRUE", "ASSERT_TRUE", "ABSL_CHECK"};
    for (size_t k = stmt_start; k < recv_first; ++k) {
      const std::string& s = t_[k].text;
      if (t_[k].kind == Token::Kind::kIdent && kChecked.count(s) > 0) {
        dc.checked = true;
        return dc;
      }
      if (s == "&&" || s == "||" || s == "!" || s == "?" || s == "==" ||
          s == "!=") {
        dc.checked = true;
        return dc;
      }
      if (s == "=" && k > stmt_start && IsIdent(k - 1)) {
        dc.assigned_to = t_[k - 1].text;
      }
    }
    return dc;
  }

  /// Second pass over the body: any decode call assigned to a variable
  /// counts as checked only if that variable is read again afterwards
  /// (not just reassigned).
  void FinalizeDecodeUses(Function* fn, size_t i, size_t end) {
    for (DecodeCall& dc : fn->decode_calls) {
      if (dc.assigned_to.empty() || dc.checked || dc.voided) continue;
      for (size_t j = i; j < end; ++j) {
        if (t_[j].kind != Token::Kind::kIdent ||
            t_[j].text != dc.assigned_to || t_[j].line < dc.line) {
          continue;
        }
        const bool reassign = Is(j + 1, "=");
        const bool is_the_def = t_[j].line == dc.line && Is(j + 1, "=");
        if (!reassign && !is_the_def) {
          dc.assignee_read = true;
          break;
        }
        // "ok = ok && ..." — the RHS mention counts as a read.
        if (reassign && t_[j].line > dc.line) continue;
      }
    }
  }

  const std::string rel_;
  const std::vector<Token>& t_;
  const Config& cfg_;
  Model* model_;
};

}  // namespace

void ParseFile(const std::string& rel, const std::vector<Token>& tokens,
               const Config& cfg, Model* model) {
  Parser(rel, tokens, cfg, model).Run();
}

// ------------------------------------------------------------- Normalize

namespace {

/// Qualifies a bare lock name against the class chain of `fn`, then the
/// global class table. Returns the name unchanged when it is already
/// qualified, and empty when the owner is ambiguous.
std::string QualifyLock(const Model& model, const Function& fn,
                        const std::string& name) {
  if (name.find("::") != std::string::npos) return name;
  // Enclosing classes, innermost last ("A::B::f" -> try B, then A).
  std::vector<std::string> chain;
  size_t pos = 0;
  std::string q = fn.qname;
  while ((pos = q.find("::")) != std::string::npos) {
    chain.push_back(q.substr(0, pos));
    q = q.substr(pos + 2);
  }
  for (size_t k = chain.size(); k-- > 0;) {
    auto it = model.classes.find(chain[k]);
    if (it != model.classes.end() &&
        it->second.mutex_members.count(name) > 0) {
      return chain[k] + "::" + name;
    }
  }
  std::string owner;
  int owners = 0;
  for (const auto& [cname, info] : model.classes) {
    if (info.mutex_members.count(name) > 0) {
      owner = cname;
      ++owners;
    }
  }
  if (owners == 1) return owner + "::" + name;
  return "";  // ambiguous or unknown — order checks skip it
}

void QualifyHeld(const Model& model, const Function& fn,
                 std::vector<HeldLock>* held) {
  for (HeldLock& h : *held) {
    const std::string q = QualifyLock(model, fn, h.name);
    if (!q.empty()) h.name = q;
  }
}

}  // namespace

void Normalize(Model* model, const Config& cfg) {
  (void)cfg;
  for (auto& [qname, fn] : model->functions) {
    QualifyHeld(*model, fn, &fn.requires_locks);
    QualifyHeld(*model, fn, &fn.acquires_ann);
    for (CallSite& c : fn.calls) QualifyHeld(*model, fn, &c.held);
    for (LockAcquire& a : fn.lock_acquires) {
      QualifyHeld(*model, fn, &a.held);
      const std::string q = QualifyLock(*model, fn, a.lock);
      if (!q.empty()) a.lock = q;
    }
  }
}

}  // namespace lint
}  // namespace zdb
