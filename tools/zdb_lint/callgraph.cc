// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Name-resolution call graph. Resolution is conservative: a qualified
// call ("Pager::Sync") resolves exactly; an unqualified method call
// resolves through the receiver-type hints in the config when possible
// and otherwise to every function with that name. Conservative edges can
// only ever make the reachability checks stricter (false paths are then
// pruned by the allowlist with a written reason), never blind.

#include <algorithm>
#include <deque>

#include "lint.h"

namespace zdb {
namespace lint {

namespace {

std::string LastComponent(const std::string& qname) {
  const size_t pos = qname.rfind("::");
  return pos == std::string::npos ? qname : qname.substr(pos + 2);
}

std::string ClassOf(const std::string& qname) {
  const size_t pos = qname.rfind("::");
  return pos == std::string::npos ? "" : qname.substr(0, pos);
}

}  // namespace

CallGraph::CallGraph(const Model& model, const Config& cfg)
    : model_(model), cfg_(cfg) {
  for (const auto& [qname, fn] : model.functions) {
    by_name_[LastComponent(qname)].push_back(&fn);
  }
}

std::vector<const Function*> CallGraph::Resolve(const CallSite& call,
                                                const Function& from) const {
  auto it = by_name_.find(call.callee);
  if (it == by_name_.end()) return {};
  const std::vector<const Function*>& cands = it->second;
  if (cands.size() == 1) return cands;

  // Class-qualified receiver ("Pager::..." or a hinted member name).
  std::string want_class;
  if (!call.receiver.empty()) {
    auto hint = cfg_.receiver_types.find(call.receiver);
    if (hint != cfg_.receiver_types.end()) {
      want_class = hint->second;
    } else if (model_.classes.count(call.receiver) > 0) {
      want_class = call.receiver;  // static call A::f()
    }
  } else {
    // Unqualified call inside a class: prefer a method of that class.
    want_class = ClassOf(from.qname);
  }
  if (!want_class.empty()) {
    std::vector<const Function*> narrowed;
    for (const Function* f : cands) {
      if (ClassOf(f->qname) == want_class) narrowed.push_back(f);
    }
    if (!narrowed.empty()) return narrowed;
    // An unqualified non-member call falls through to all candidates;
    // a hinted receiver that matched nothing resolves to nothing (the
    // hint is authoritative: "sock_" never reaches Pager::Read).
    if (!call.receiver.empty() &&
        cfg_.receiver_types.count(call.receiver) > 0) {
      return {};
    }
  }
  return cands;
}

bool CallGraph::IsSinkCall(const CallSite& call, const Function& from) const {
  // Bare syscall wrappers (::pwrite, fsync) configured by name.
  if (cfg_.io_sinks.count(call.callee) > 0) return true;
  for (const Function* f : Resolve(call, from)) {
    if (cfg_.io_sinks.count(f->qname) > 0) return true;
    // "File::Sync" also covers overriders ("PosixFile::Sync").
    if (cfg_.io_sinks.count(LastComponent(f->qname)) > 0) return true;
  }
  // Unresolvable method call whose name is a configured sink method
  // ("file->Write" where File is interface-only in the model).
  const std::string dotted =
      (call.receiver.empty() ? "" : call.receiver + "::") + call.callee;
  return cfg_.io_sinks.count(dotted) > 0;
}

std::optional<std::vector<std::string>> CallGraph::PathToSink(
    const CallSite& root_call, const Function& from) const {
  if (IsSinkCall(root_call, from)) {
    return std::vector<std::string>{root_call.callee};
  }
  struct Item {
    const Function* fn;
    int parent;  ///< index into `seen`, -1 for roots
  };
  std::vector<Item> seen;
  std::set<const Function*> visited;
  std::deque<int> queue;
  for (const Function* f : Resolve(root_call, from)) {
    if (cfg_.io_allow.count(f->qname) > 0) continue;
    if (visited.insert(f).second) {
      seen.push_back({f, -1});
      queue.push_back(static_cast<int>(seen.size()) - 1);
    }
  }
  while (!queue.empty()) {
    const int idx = queue.front();
    queue.pop_front();
    const Function* fn = seen[idx].fn;
    for (const CallSite& c : fn->calls) {
      if (IsSinkCall(c, *fn)) {
        std::vector<std::string> path{c.callee};
        for (int k = idx; k >= 0; k = seen[k].parent) {
          path.push_back(seen[k].fn->qname);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      for (const Function* g : Resolve(c, *fn)) {
        if (cfg_.io_allow.count(g->qname) > 0) continue;
        if (visited.insert(g).second) {
          seen.push_back({g, idx});
          queue.push_back(static_cast<int>(seen.size()) - 1);
        }
      }
    }
  }
  return std::nullopt;
}

std::map<std::string, std::vector<std::string>> CallGraph::AcquiredBy(
    const CallSite& call, const Function& from) const {
  std::map<std::string, std::vector<std::string>> out;
  struct Item {
    const Function* fn;
    int parent;
  };
  std::vector<Item> seen;
  std::set<const Function*> visited;
  std::deque<int> queue;
  for (const Function* f : Resolve(call, from)) {
    if (visited.insert(f).second) {
      seen.push_back({f, -1});
      queue.push_back(static_cast<int>(seen.size()) - 1);
    }
  }
  while (!queue.empty()) {
    const int idx = queue.front();
    queue.pop_front();
    const Function* fn = seen[idx].fn;
    auto witness = [&](int at) {
      std::vector<std::string> path;
      for (int k = at; k >= 0; k = seen[k].parent) {
        path.push_back(seen[k].fn->qname);
      }
      std::reverse(path.begin(), path.end());
      return path;
    };
    for (const LockAcquire& a : fn->lock_acquires) {
      if (out.count(a.lock) == 0) out[a.lock] = witness(idx);
    }
    for (const HeldLock& h : fn->acquires_ann) {
      if (out.count(h.name) == 0) out[h.name] = witness(idx);
    }
    for (const CallSite& c : fn->calls) {
      for (const Function* g : Resolve(c, *fn)) {
        // A callee that REQUIRES a lock does not acquire it; only
        // traverse — its own acquires still count.
        if (visited.insert(g).second) {
          seen.push_back({g, idx});
          queue.push_back(static_cast<int>(seen.size()) - 1);
        }
      }
    }
  }
  return out;
}

}  // namespace lint
}  // namespace zdb
