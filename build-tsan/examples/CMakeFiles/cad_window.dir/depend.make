# Empty dependencies file for cad_window.
# This may be replaced when dependencies are built.
