file(REMOVE_RECURSE
  "CMakeFiles/cad_window.dir/cad_window.cpp.o"
  "CMakeFiles/cad_window.dir/cad_window.cpp.o.d"
  "cad_window"
  "cad_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cad_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
