# Empty dependencies file for zdb_shell.
# This may be replaced when dependencies are built.
