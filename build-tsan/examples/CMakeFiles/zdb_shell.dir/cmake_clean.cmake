file(REMOVE_RECURSE
  "CMakeFiles/zdb_shell.dir/zdb_shell.cpp.o"
  "CMakeFiles/zdb_shell.dir/zdb_shell.cpp.o.d"
  "zdb_shell"
  "zdb_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zdb_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
