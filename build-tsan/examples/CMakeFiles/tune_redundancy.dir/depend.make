# Empty dependencies file for tune_redundancy.
# This may be replaced when dependencies are built.
