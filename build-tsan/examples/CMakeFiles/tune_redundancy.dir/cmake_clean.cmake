file(REMOVE_RECURSE
  "CMakeFiles/tune_redundancy.dir/tune_redundancy.cpp.o"
  "CMakeFiles/tune_redundancy.dir/tune_redundancy.cpp.o.d"
  "tune_redundancy"
  "tune_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
