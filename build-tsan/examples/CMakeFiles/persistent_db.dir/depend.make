# Empty dependencies file for persistent_db.
# This may be replaced when dependencies are built.
