file(REMOVE_RECURSE
  "CMakeFiles/persistent_db.dir/persistent_db.cpp.o"
  "CMakeFiles/persistent_db.dir/persistent_db.cpp.o.d"
  "persistent_db"
  "persistent_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistent_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
