add_test([=[thread.Smoke.BTreeRandomOpsMatchStdMap]=]  /root/repo/build-tsan/tests/smoke_test [==[--gtest_filter=Smoke.BTreeRandomOpsMatchStdMap]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[thread.Smoke.BTreeRandomOpsMatchStdMap]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build-tsan/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  smoke_test_TESTS thread.Smoke.BTreeRandomOpsMatchStdMap)
