file(REMOVE_RECURSE
  "CMakeFiles/polygon_index_test.dir/polygon_index_test.cc.o"
  "CMakeFiles/polygon_index_test.dir/polygon_index_test.cc.o.d"
  "polygon_index_test"
  "polygon_index_test.pdb"
  "polygon_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polygon_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
