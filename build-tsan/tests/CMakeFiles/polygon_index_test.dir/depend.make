# Empty dependencies file for polygon_index_test.
# This may be replaced when dependencies are built.
