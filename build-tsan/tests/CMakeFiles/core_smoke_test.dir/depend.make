# Empty dependencies file for core_smoke_test.
# This may be replaced when dependencies are built.
