file(REMOVE_RECURSE
  "CMakeFiles/core_smoke_test.dir/core_smoke_test.cc.o"
  "CMakeFiles/core_smoke_test.dir/core_smoke_test.cc.o.d"
  "core_smoke_test"
  "core_smoke_test.pdb"
  "core_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
