
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/region_test.cc" "tests/CMakeFiles/region_test.dir/region_test.cc.o" "gcc" "tests/CMakeFiles/region_test.dir/region_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/zdb_bench_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/zdb_exec.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/zdb_rtree.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/zdb_transform.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/zdb_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/zdb_decompose.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/zdb_zorder.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/zdb_btree.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/zdb_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/zdb_workload.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/zdb_geom.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/zdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
