# Empty dependencies file for bulk_test.
# This may be replaced when dependencies are built.
