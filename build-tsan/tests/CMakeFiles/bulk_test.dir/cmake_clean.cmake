file(REMOVE_RECURSE
  "CMakeFiles/bulk_test.dir/bulk_test.cc.o"
  "CMakeFiles/bulk_test.dir/bulk_test.cc.o.d"
  "bulk_test"
  "bulk_test.pdb"
  "bulk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bulk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
