file(REMOVE_RECURSE
  "CMakeFiles/zorder_test.dir/zorder_test.cc.o"
  "CMakeFiles/zorder_test.dir/zorder_test.cc.o.d"
  "zorder_test"
  "zorder_test.pdb"
  "zorder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zorder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
