# Empty dependencies file for btree_stress_test.
# This may be replaced when dependencies are built.
