file(REMOVE_RECURSE
  "CMakeFiles/btree_stress_test.dir/btree_stress_test.cc.o"
  "CMakeFiles/btree_stress_test.dir/btree_stress_test.cc.o.d"
  "btree_stress_test"
  "btree_stress_test.pdb"
  "btree_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btree_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
