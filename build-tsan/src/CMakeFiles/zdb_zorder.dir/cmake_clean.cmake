file(REMOVE_RECURSE
  "CMakeFiles/zdb_zorder.dir/zorder/bigmin.cc.o"
  "CMakeFiles/zdb_zorder.dir/zorder/bigmin.cc.o.d"
  "CMakeFiles/zdb_zorder.dir/zorder/morton.cc.o"
  "CMakeFiles/zdb_zorder.dir/zorder/morton.cc.o.d"
  "CMakeFiles/zdb_zorder.dir/zorder/zelement.cc.o"
  "CMakeFiles/zdb_zorder.dir/zorder/zelement.cc.o.d"
  "CMakeFiles/zdb_zorder.dir/zorder/zkey.cc.o"
  "CMakeFiles/zdb_zorder.dir/zorder/zkey.cc.o.d"
  "libzdb_zorder.a"
  "libzdb_zorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zdb_zorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
