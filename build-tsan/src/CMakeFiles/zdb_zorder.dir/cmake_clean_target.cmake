file(REMOVE_RECURSE
  "libzdb_zorder.a"
)
