# Empty dependencies file for zdb_zorder.
# This may be replaced when dependencies are built.
