
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/decompose4.cc" "src/CMakeFiles/zdb_transform.dir/transform/decompose4.cc.o" "gcc" "src/CMakeFiles/zdb_transform.dir/transform/decompose4.cc.o.d"
  "/root/repo/src/transform/element4.cc" "src/CMakeFiles/zdb_transform.dir/transform/element4.cc.o" "gcc" "src/CMakeFiles/zdb_transform.dir/transform/element4.cc.o.d"
  "/root/repo/src/transform/morton4.cc" "src/CMakeFiles/zdb_transform.dir/transform/morton4.cc.o" "gcc" "src/CMakeFiles/zdb_transform.dir/transform/morton4.cc.o.d"
  "/root/repo/src/transform/transform_index.cc" "src/CMakeFiles/zdb_transform.dir/transform/transform_index.cc.o" "gcc" "src/CMakeFiles/zdb_transform.dir/transform/transform_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/zdb_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/zdb_decompose.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/zdb_zorder.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/zdb_geom.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/zdb_btree.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/zdb_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/zdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
