file(REMOVE_RECURSE
  "CMakeFiles/zdb_transform.dir/transform/decompose4.cc.o"
  "CMakeFiles/zdb_transform.dir/transform/decompose4.cc.o.d"
  "CMakeFiles/zdb_transform.dir/transform/element4.cc.o"
  "CMakeFiles/zdb_transform.dir/transform/element4.cc.o.d"
  "CMakeFiles/zdb_transform.dir/transform/morton4.cc.o"
  "CMakeFiles/zdb_transform.dir/transform/morton4.cc.o.d"
  "CMakeFiles/zdb_transform.dir/transform/transform_index.cc.o"
  "CMakeFiles/zdb_transform.dir/transform/transform_index.cc.o.d"
  "libzdb_transform.a"
  "libzdb_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zdb_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
