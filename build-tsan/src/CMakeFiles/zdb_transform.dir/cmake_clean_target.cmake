file(REMOVE_RECURSE
  "libzdb_transform.a"
)
