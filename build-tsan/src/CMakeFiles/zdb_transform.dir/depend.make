# Empty dependencies file for zdb_transform.
# This may be replaced when dependencies are built.
