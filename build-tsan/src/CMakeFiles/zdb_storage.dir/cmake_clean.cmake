file(REMOVE_RECURSE
  "CMakeFiles/zdb_storage.dir/storage/buffer_pool.cc.o"
  "CMakeFiles/zdb_storage.dir/storage/buffer_pool.cc.o.d"
  "CMakeFiles/zdb_storage.dir/storage/file.cc.o"
  "CMakeFiles/zdb_storage.dir/storage/file.cc.o.d"
  "CMakeFiles/zdb_storage.dir/storage/pager.cc.o"
  "CMakeFiles/zdb_storage.dir/storage/pager.cc.o.d"
  "libzdb_storage.a"
  "libzdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
