file(REMOVE_RECURSE
  "libzdb_storage.a"
)
