# Empty dependencies file for zdb_storage.
# This may be replaced when dependencies are built.
