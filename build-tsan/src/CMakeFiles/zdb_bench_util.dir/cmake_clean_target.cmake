file(REMOVE_RECURSE
  "libzdb_bench_util.a"
)
