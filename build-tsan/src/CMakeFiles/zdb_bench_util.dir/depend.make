# Empty dependencies file for zdb_bench_util.
# This may be replaced when dependencies are built.
