file(REMOVE_RECURSE
  "CMakeFiles/zdb_bench_util.dir/bench_util/runner.cc.o"
  "CMakeFiles/zdb_bench_util.dir/bench_util/runner.cc.o.d"
  "CMakeFiles/zdb_bench_util.dir/bench_util/table.cc.o"
  "CMakeFiles/zdb_bench_util.dir/bench_util/table.cc.o.d"
  "libzdb_bench_util.a"
  "libzdb_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zdb_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
