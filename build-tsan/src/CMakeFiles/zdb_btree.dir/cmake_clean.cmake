file(REMOVE_RECURSE
  "CMakeFiles/zdb_btree.dir/btree/btree.cc.o"
  "CMakeFiles/zdb_btree.dir/btree/btree.cc.o.d"
  "CMakeFiles/zdb_btree.dir/btree/cursor.cc.o"
  "CMakeFiles/zdb_btree.dir/btree/cursor.cc.o.d"
  "CMakeFiles/zdb_btree.dir/btree/node.cc.o"
  "CMakeFiles/zdb_btree.dir/btree/node.cc.o.d"
  "libzdb_btree.a"
  "libzdb_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zdb_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
