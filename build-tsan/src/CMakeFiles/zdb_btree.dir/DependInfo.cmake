
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/btree/btree.cc" "src/CMakeFiles/zdb_btree.dir/btree/btree.cc.o" "gcc" "src/CMakeFiles/zdb_btree.dir/btree/btree.cc.o.d"
  "/root/repo/src/btree/cursor.cc" "src/CMakeFiles/zdb_btree.dir/btree/cursor.cc.o" "gcc" "src/CMakeFiles/zdb_btree.dir/btree/cursor.cc.o.d"
  "/root/repo/src/btree/node.cc" "src/CMakeFiles/zdb_btree.dir/btree/node.cc.o" "gcc" "src/CMakeFiles/zdb_btree.dir/btree/node.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/zdb_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/zdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
