file(REMOVE_RECURSE
  "libzdb_btree.a"
)
