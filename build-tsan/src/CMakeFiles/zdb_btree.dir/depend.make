# Empty dependencies file for zdb_btree.
# This may be replaced when dependencies are built.
