# Empty dependencies file for zdb_workload.
# This may be replaced when dependencies are built.
