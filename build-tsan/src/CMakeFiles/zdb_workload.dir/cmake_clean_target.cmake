file(REMOVE_RECURSE
  "libzdb_workload.a"
)
