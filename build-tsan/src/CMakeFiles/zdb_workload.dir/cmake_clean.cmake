file(REMOVE_RECURSE
  "CMakeFiles/zdb_workload.dir/workload/datagen.cc.o"
  "CMakeFiles/zdb_workload.dir/workload/datagen.cc.o.d"
  "CMakeFiles/zdb_workload.dir/workload/querygen.cc.o"
  "CMakeFiles/zdb_workload.dir/workload/querygen.cc.o.d"
  "libzdb_workload.a"
  "libzdb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zdb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
