# Empty dependencies file for zdb_geom.
# This may be replaced when dependencies are built.
