file(REMOVE_RECURSE
  "CMakeFiles/zdb_geom.dir/geom/clip.cc.o"
  "CMakeFiles/zdb_geom.dir/geom/clip.cc.o.d"
  "CMakeFiles/zdb_geom.dir/geom/grid.cc.o"
  "CMakeFiles/zdb_geom.dir/geom/grid.cc.o.d"
  "CMakeFiles/zdb_geom.dir/geom/polygon.cc.o"
  "CMakeFiles/zdb_geom.dir/geom/polygon.cc.o.d"
  "libzdb_geom.a"
  "libzdb_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zdb_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
