file(REMOVE_RECURSE
  "libzdb_geom.a"
)
