
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/clip.cc" "src/CMakeFiles/zdb_geom.dir/geom/clip.cc.o" "gcc" "src/CMakeFiles/zdb_geom.dir/geom/clip.cc.o.d"
  "/root/repo/src/geom/grid.cc" "src/CMakeFiles/zdb_geom.dir/geom/grid.cc.o" "gcc" "src/CMakeFiles/zdb_geom.dir/geom/grid.cc.o.d"
  "/root/repo/src/geom/polygon.cc" "src/CMakeFiles/zdb_geom.dir/geom/polygon.cc.o" "gcc" "src/CMakeFiles/zdb_geom.dir/geom/polygon.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/zdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
