file(REMOVE_RECURSE
  "CMakeFiles/zdb_core.dir/core/bulk.cc.o"
  "CMakeFiles/zdb_core.dir/core/bulk.cc.o.d"
  "CMakeFiles/zdb_core.dir/core/join.cc.o"
  "CMakeFiles/zdb_core.dir/core/join.cc.o.d"
  "CMakeFiles/zdb_core.dir/core/knn.cc.o"
  "CMakeFiles/zdb_core.dir/core/knn.cc.o.d"
  "CMakeFiles/zdb_core.dir/core/object_store.cc.o"
  "CMakeFiles/zdb_core.dir/core/object_store.cc.o.d"
  "CMakeFiles/zdb_core.dir/core/persist.cc.o"
  "CMakeFiles/zdb_core.dir/core/persist.cc.o.d"
  "CMakeFiles/zdb_core.dir/core/polygon_store.cc.o"
  "CMakeFiles/zdb_core.dir/core/polygon_store.cc.o.d"
  "CMakeFiles/zdb_core.dir/core/query.cc.o"
  "CMakeFiles/zdb_core.dir/core/query.cc.o.d"
  "CMakeFiles/zdb_core.dir/core/spatial_index.cc.o"
  "CMakeFiles/zdb_core.dir/core/spatial_index.cc.o.d"
  "libzdb_core.a"
  "libzdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zdb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
