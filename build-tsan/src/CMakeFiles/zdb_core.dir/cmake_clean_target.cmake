file(REMOVE_RECURSE
  "libzdb_core.a"
)
