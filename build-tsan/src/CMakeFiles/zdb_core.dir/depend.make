# Empty dependencies file for zdb_core.
# This may be replaced when dependencies are built.
