
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bulk.cc" "src/CMakeFiles/zdb_core.dir/core/bulk.cc.o" "gcc" "src/CMakeFiles/zdb_core.dir/core/bulk.cc.o.d"
  "/root/repo/src/core/join.cc" "src/CMakeFiles/zdb_core.dir/core/join.cc.o" "gcc" "src/CMakeFiles/zdb_core.dir/core/join.cc.o.d"
  "/root/repo/src/core/knn.cc" "src/CMakeFiles/zdb_core.dir/core/knn.cc.o" "gcc" "src/CMakeFiles/zdb_core.dir/core/knn.cc.o.d"
  "/root/repo/src/core/object_store.cc" "src/CMakeFiles/zdb_core.dir/core/object_store.cc.o" "gcc" "src/CMakeFiles/zdb_core.dir/core/object_store.cc.o.d"
  "/root/repo/src/core/persist.cc" "src/CMakeFiles/zdb_core.dir/core/persist.cc.o" "gcc" "src/CMakeFiles/zdb_core.dir/core/persist.cc.o.d"
  "/root/repo/src/core/polygon_store.cc" "src/CMakeFiles/zdb_core.dir/core/polygon_store.cc.o" "gcc" "src/CMakeFiles/zdb_core.dir/core/polygon_store.cc.o.d"
  "/root/repo/src/core/query.cc" "src/CMakeFiles/zdb_core.dir/core/query.cc.o" "gcc" "src/CMakeFiles/zdb_core.dir/core/query.cc.o.d"
  "/root/repo/src/core/spatial_index.cc" "src/CMakeFiles/zdb_core.dir/core/spatial_index.cc.o" "gcc" "src/CMakeFiles/zdb_core.dir/core/spatial_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/zdb_decompose.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/zdb_btree.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/zdb_zorder.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/zdb_geom.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/zdb_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/zdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
