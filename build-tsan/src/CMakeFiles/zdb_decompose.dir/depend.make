# Empty dependencies file for zdb_decompose.
# This may be replaced when dependencies are built.
