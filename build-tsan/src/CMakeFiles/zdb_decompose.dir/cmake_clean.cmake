file(REMOVE_RECURSE
  "CMakeFiles/zdb_decompose.dir/decompose/decompose.cc.o"
  "CMakeFiles/zdb_decompose.dir/decompose/decompose.cc.o.d"
  "CMakeFiles/zdb_decompose.dir/decompose/region.cc.o"
  "CMakeFiles/zdb_decompose.dir/decompose/region.cc.o.d"
  "libzdb_decompose.a"
  "libzdb_decompose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zdb_decompose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
