file(REMOVE_RECURSE
  "libzdb_decompose.a"
)
