
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtree/rtree.cc" "src/CMakeFiles/zdb_rtree.dir/rtree/rtree.cc.o" "gcc" "src/CMakeFiles/zdb_rtree.dir/rtree/rtree.cc.o.d"
  "/root/repo/src/rtree/split.cc" "src/CMakeFiles/zdb_rtree.dir/rtree/split.cc.o" "gcc" "src/CMakeFiles/zdb_rtree.dir/rtree/split.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/zdb_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/zdb_geom.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/zdb_zorder.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/zdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
