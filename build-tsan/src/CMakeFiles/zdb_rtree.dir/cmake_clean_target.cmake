file(REMOVE_RECURSE
  "libzdb_rtree.a"
)
