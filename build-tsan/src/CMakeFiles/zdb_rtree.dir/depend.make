# Empty dependencies file for zdb_rtree.
# This may be replaced when dependencies are built.
