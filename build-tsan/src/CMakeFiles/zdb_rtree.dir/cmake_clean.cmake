file(REMOVE_RECURSE
  "CMakeFiles/zdb_rtree.dir/rtree/rtree.cc.o"
  "CMakeFiles/zdb_rtree.dir/rtree/rtree.cc.o.d"
  "CMakeFiles/zdb_rtree.dir/rtree/split.cc.o"
  "CMakeFiles/zdb_rtree.dir/rtree/split.cc.o.d"
  "libzdb_rtree.a"
  "libzdb_rtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zdb_rtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
