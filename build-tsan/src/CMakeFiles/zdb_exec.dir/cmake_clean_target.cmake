file(REMOVE_RECURSE
  "libzdb_exec.a"
)
