file(REMOVE_RECURSE
  "CMakeFiles/zdb_exec.dir/exec/executor.cc.o"
  "CMakeFiles/zdb_exec.dir/exec/executor.cc.o.d"
  "libzdb_exec.a"
  "libzdb_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zdb_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
