# Empty dependencies file for zdb_exec.
# This may be replaced when dependencies are built.
