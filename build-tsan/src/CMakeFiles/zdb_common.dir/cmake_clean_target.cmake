file(REMOVE_RECURSE
  "libzdb_common.a"
)
