file(REMOVE_RECURSE
  "CMakeFiles/zdb_common.dir/common/coding.cc.o"
  "CMakeFiles/zdb_common.dir/common/coding.cc.o.d"
  "CMakeFiles/zdb_common.dir/common/metrics.cc.o"
  "CMakeFiles/zdb_common.dir/common/metrics.cc.o.d"
  "libzdb_common.a"
  "libzdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
