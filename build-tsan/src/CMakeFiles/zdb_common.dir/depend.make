# Empty dependencies file for zdb_common.
# This may be replaced when dependencies are built.
