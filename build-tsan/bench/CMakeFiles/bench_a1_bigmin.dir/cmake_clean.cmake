file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_bigmin.dir/bench_a1_bigmin.cc.o"
  "CMakeFiles/bench_a1_bigmin.dir/bench_a1_bigmin.cc.o.d"
  "bench_a1_bigmin"
  "bench_a1_bigmin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_bigmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
