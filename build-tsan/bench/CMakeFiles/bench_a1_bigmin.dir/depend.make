# Empty dependencies file for bench_a1_bigmin.
# This may be replaced when dependencies are built.
