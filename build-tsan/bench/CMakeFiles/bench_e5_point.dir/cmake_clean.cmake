file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_point.dir/bench_e5_point.cc.o"
  "CMakeFiles/bench_e5_point.dir/bench_e5_point.cc.o.d"
  "bench_e5_point"
  "bench_e5_point.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_point.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
