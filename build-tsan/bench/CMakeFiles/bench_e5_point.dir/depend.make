# Empty dependencies file for bench_e5_point.
# This may be replaced when dependencies are built.
