file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_update.dir/bench_e6_update.cc.o"
  "CMakeFiles/bench_e6_update.dir/bench_e6_update.cc.o.d"
  "bench_e6_update"
  "bench_e6_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
