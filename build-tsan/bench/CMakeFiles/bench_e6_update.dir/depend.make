# Empty dependencies file for bench_e6_update.
# This may be replaced when dependencies are built.
