# Empty dependencies file for bench_e2_window_io.
# This may be replaced when dependencies are built.
