file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_window_io.dir/bench_e2_window_io.cc.o"
  "CMakeFiles/bench_e2_window_io.dir/bench_e2_window_io.cc.o.d"
  "bench_e2_window_io"
  "bench_e2_window_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_window_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
