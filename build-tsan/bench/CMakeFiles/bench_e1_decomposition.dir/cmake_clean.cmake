file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_decomposition.dir/bench_e1_decomposition.cc.o"
  "CMakeFiles/bench_e1_decomposition.dir/bench_e1_decomposition.cc.o.d"
  "bench_e1_decomposition"
  "bench_e1_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
