# Empty dependencies file for bench_e1_decomposition.
# This may be replaced when dependencies are built.
