file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_transform.dir/bench_e11_transform.cc.o"
  "CMakeFiles/bench_e11_transform.dir/bench_e11_transform.cc.o.d"
  "bench_e11_transform"
  "bench_e11_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
