# Empty dependencies file for bench_e11_transform.
# This may be replaced when dependencies are built.
