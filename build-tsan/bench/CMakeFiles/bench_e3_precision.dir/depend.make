# Empty dependencies file for bench_e3_precision.
# This may be replaced when dependencies are built.
