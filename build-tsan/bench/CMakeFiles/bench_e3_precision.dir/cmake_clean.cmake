file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_precision.dir/bench_e3_precision.cc.o"
  "CMakeFiles/bench_e3_precision.dir/bench_e3_precision.cc.o.d"
  "bench_e3_precision"
  "bench_e3_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
