file(REMOVE_RECURSE
  "CMakeFiles/bench_a7_gridres.dir/bench_a7_gridres.cc.o"
  "CMakeFiles/bench_a7_gridres.dir/bench_a7_gridres.cc.o.d"
  "bench_a7_gridres"
  "bench_a7_gridres.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a7_gridres.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
