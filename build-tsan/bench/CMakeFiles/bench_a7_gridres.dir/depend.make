# Empty dependencies file for bench_a7_gridres.
# This may be replaced when dependencies are built.
