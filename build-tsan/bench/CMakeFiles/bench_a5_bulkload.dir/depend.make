# Empty dependencies file for bench_a5_bulkload.
# This may be replaced when dependencies are built.
