file(REMOVE_RECURSE
  "CMakeFiles/bench_a5_bulkload.dir/bench_a5_bulkload.cc.o"
  "CMakeFiles/bench_a5_bulkload.dir/bench_a5_bulkload.cc.o.d"
  "bench_a5_bulkload"
  "bench_a5_bulkload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a5_bulkload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
