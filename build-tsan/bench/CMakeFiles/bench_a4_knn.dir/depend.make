# Empty dependencies file for bench_a4_knn.
# This may be replaced when dependencies are built.
