file(REMOVE_RECURSE
  "CMakeFiles/bench_a4_knn.dir/bench_a4_knn.cc.o"
  "CMakeFiles/bench_a4_knn.dir/bench_a4_knn.cc.o.d"
  "bench_a4_knn"
  "bench_a4_knn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
