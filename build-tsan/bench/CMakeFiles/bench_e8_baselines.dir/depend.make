# Empty dependencies file for bench_e8_baselines.
# This may be replaced when dependencies are built.
