file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_baselines.dir/bench_e8_baselines.cc.o"
  "CMakeFiles/bench_e8_baselines.dir/bench_e8_baselines.cc.o.d"
  "bench_e8_baselines"
  "bench_e8_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
