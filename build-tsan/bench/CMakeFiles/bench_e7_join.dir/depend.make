# Empty dependencies file for bench_e7_join.
# This may be replaced when dependencies are built.
