file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_join.dir/bench_e7_join.cc.o"
  "CMakeFiles/bench_e7_join.dir/bench_e7_join.cc.o.d"
  "bench_e7_join"
  "bench_e7_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
