file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_policies.dir/bench_e10_policies.cc.o"
  "CMakeFiles/bench_e10_policies.dir/bench_e10_policies.cc.o.d"
  "bench_e10_policies"
  "bench_e10_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
