# Empty dependencies file for bench_e10_policies.
# This may be replaced when dependencies are built.
