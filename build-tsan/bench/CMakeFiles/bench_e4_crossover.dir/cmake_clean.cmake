file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_crossover.dir/bench_e4_crossover.cc.o"
  "CMakeFiles/bench_e4_crossover.dir/bench_e4_crossover.cc.o.d"
  "bench_e4_crossover"
  "bench_e4_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
