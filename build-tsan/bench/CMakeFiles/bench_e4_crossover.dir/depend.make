# Empty dependencies file for bench_e4_crossover.
# This may be replaced when dependencies are built.
