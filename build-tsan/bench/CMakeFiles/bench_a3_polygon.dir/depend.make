# Empty dependencies file for bench_a3_polygon.
# This may be replaced when dependencies are built.
