file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_polygon.dir/bench_a3_polygon.cc.o"
  "CMakeFiles/bench_a3_polygon.dir/bench_a3_polygon.cc.o.d"
  "bench_a3_polygon"
  "bench_a3_polygon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_polygon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
