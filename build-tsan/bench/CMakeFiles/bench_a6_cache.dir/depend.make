# Empty dependencies file for bench_a6_cache.
# This may be replaced when dependencies are built.
