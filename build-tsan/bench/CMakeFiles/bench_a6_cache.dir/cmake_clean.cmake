file(REMOVE_RECURSE
  "CMakeFiles/bench_a6_cache.dir/bench_a6_cache.cc.o"
  "CMakeFiles/bench_a6_cache.dir/bench_a6_cache.cc.o.d"
  "bench_a6_cache"
  "bench_a6_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a6_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
