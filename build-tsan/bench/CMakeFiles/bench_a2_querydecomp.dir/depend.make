# Empty dependencies file for bench_a2_querydecomp.
# This may be replaced when dependencies are built.
