file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_querydecomp.dir/bench_a2_querydecomp.cc.o"
  "CMakeFiles/bench_a2_querydecomp.dir/bench_a2_querydecomp.cc.o.d"
  "bench_a2_querydecomp"
  "bench_a2_querydecomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_querydecomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
