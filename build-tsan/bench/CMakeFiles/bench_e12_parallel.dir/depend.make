# Empty dependencies file for bench_e12_parallel.
# This may be replaced when dependencies are built.
