file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_parallel.dir/bench_e12_parallel.cc.o"
  "CMakeFiles/bench_e12_parallel.dir/bench_e12_parallel.cc.o.d"
  "bench_e12_parallel"
  "bench_e12_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
