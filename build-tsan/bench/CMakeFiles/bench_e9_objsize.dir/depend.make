# Empty dependencies file for bench_e9_objsize.
# This may be replaced when dependencies are built.
