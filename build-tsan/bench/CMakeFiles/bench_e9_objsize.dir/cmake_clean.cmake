file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_objsize.dir/bench_e9_objsize.cc.o"
  "CMakeFiles/bench_e9_objsize.dir/bench_e9_objsize.cc.o.d"
  "bench_e9_objsize"
  "bench_e9_objsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_objsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
