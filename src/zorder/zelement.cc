// Copyright (c) zdb authors. Licensed under the MIT license.

#include "zorder/zelement.h"

#include <bit>
#include <cassert>

#include "zorder/morton.h"

namespace zdb {

ZElement ZElement::Cell(GridCoord x, GridCoord y, uint32_t grid_bits) {
  return ZElement(MortonEncode(x, y, grid_bits),
                  static_cast<uint8_t>(2 * grid_bits),
                  static_cast<uint8_t>(grid_bits));
}

ZElement ZElement::Enclosing(const GridRect& r, uint32_t grid_bits) {
  const uint64_t z1 = MortonEncode(r.xlo, r.ylo, grid_bits);
  const uint64_t z2 = MortonEncode(r.xhi, r.yhi, grid_bits);
  const uint32_t zbits = 2 * grid_bits;
  uint32_t common;
  if (z1 == z2) {
    common = zbits;
  } else {
    common = static_cast<uint32_t>(std::countl_zero(z1 ^ z2)) -
             (64 - zbits);
  }
  const uint64_t mask =
      (common == 0) ? 0 : (~0ULL << (zbits - common)) & ((zbits == 64)
                                                             ? ~0ULL
                                                             : ((1ULL << zbits) - 1));
  return ZElement(z1 & mask, static_cast<uint8_t>(common),
                  static_cast<uint8_t>(grid_bits));
}

ZElement ZElement::Child(int i) const {
  assert(!is_full_resolution());
  assert(i == 0 || i == 1);
  const uint64_t half = interval_size() >> 1;
  return ZElement(zmin | (i ? half : 0), static_cast<uint8_t>(level + 1),
                  gbits);
}

ZElement ZElement::Parent() const {
  assert(level > 0);
  const uint64_t parent_mask = ~(interval_size() * 2 - 1);
  return ZElement(zmin & parent_mask, static_cast<uint8_t>(level - 1),
                  gbits);
}

GridRect ZElement::ToGridRect() const {
  GridCoord x0, y0;
  MortonDecode(zmin, gbits, &x0, &y0);
  // With y interleaved above x, odd levels have split y one more time.
  const uint32_t ny = (level + 1) / 2;
  const uint32_t nx = level / 2;
  const GridCoord dx = static_cast<GridCoord>((1ULL << (gbits - nx)) - 1);
  const GridCoord dy = static_cast<GridCoord>((1ULL << (gbits - ny)) - 1);
  return GridRect{x0, y0, x0 + dx, y0 + dy};
}

std::string ZElement::ToString() const {
  std::string s = "z[";
  for (uint32_t i = 0; i < level; ++i) {
    s.push_back((zmin >> (zbits() - 1 - i)) & 1 ? '1' : '0');
  }
  s += "]@" + std::to_string(level);
  return s;
}

}  // namespace zdb
