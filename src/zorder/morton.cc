// Copyright (c) zdb authors. Licensed under the MIT license.

#include "zorder/morton.h"

#include <cassert>

namespace zdb {

uint64_t SpreadBits(uint32_t v) {
  uint64_t x = v;
  x = (x | (x << 16)) & 0x0000FFFF0000FFFFULL;
  x = (x | (x << 8)) & 0x00FF00FF00FF00FFULL;
  x = (x | (x << 4)) & 0x0F0F0F0F0F0F0F0FULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

uint32_t CollectBits(uint64_t v) {
  uint64_t x = v & 0x5555555555555555ULL;
  x = (x | (x >> 1)) & 0x3333333333333333ULL;
  x = (x | (x >> 2)) & 0x0F0F0F0F0F0F0F0FULL;
  x = (x | (x >> 4)) & 0x00FF00FF00FF00FFULL;
  x = (x | (x >> 8)) & 0x0000FFFF0000FFFFULL;
  x = (x | (x >> 16)) & 0x00000000FFFFFFFFULL;
  return static_cast<uint32_t>(x);
}

uint64_t MortonEncode(GridCoord x, GridCoord y, uint32_t bits) {
  assert(bits >= 1 && bits <= kMaxGridBits);
  assert(x < (1ULL << bits) && y < (1ULL << bits));
  (void)bits;
  return SpreadBits(x) | (SpreadBits(y) << 1);
}

void MortonDecode(uint64_t z, uint32_t bits, GridCoord* x, GridCoord* y) {
  assert(bits >= 1 && bits <= kMaxGridBits);
  assert(bits == kMaxGridBits || z < (1ULL << (2 * bits)));
  (void)bits;
  *x = CollectBits(z);
  *y = CollectBits(z >> 1);
}

}  // namespace zdb
