// Copyright (c) zdb authors. Licensed under the MIT license.
//
// ZElement: one cell of the recursive binary decomposition of z-space —
// the "element" of Orenstein's redundancy framework. An element is a
// bit-string prefix of the Morton code; geometrically a rectangle of grid
// cells (square at even levels, 2:1 at odd levels), and in z-space the
// contiguous interval [zmin, zmax]. Objects and queries are approximated
// by sets of elements (see decompose/).

#ifndef ZDB_ZORDER_ZELEMENT_H_
#define ZDB_ZORDER_ZELEMENT_H_

#include <cstdint>
#include <string>

#include "geom/grid.h"

namespace zdb {

/// A prefix of `level` bits of a 2*bits()-bit Morton code. `zmin` holds
/// the prefix left-aligned within the code width: all bits below
/// (zbits - level) are zero. Canonical order is (zmin, level) ascending,
/// which places an element immediately before everything it contains.
struct ZElement {
  uint64_t zmin = 0;
  uint8_t level = 0;   ///< prefix length in bits, 0 (whole space)..zbits
  uint8_t gbits = 0;   ///< grid bits per axis; zbits() == 2 * gbits

  ZElement() = default;
  ZElement(uint64_t zmin_in, uint8_t level_in, uint8_t gbits_in)
      : zmin(zmin_in), level(level_in), gbits(gbits_in) {}

  /// The whole space (empty prefix).
  static ZElement Root(uint32_t grid_bits) {
    return ZElement(0, 0, static_cast<uint8_t>(grid_bits));
  }

  /// The full-resolution element of a single grid cell.
  static ZElement Cell(GridCoord x, GridCoord y, uint32_t grid_bits);

  /// Smallest element covering the grid rectangle (the classic
  /// non-redundant "minimal enclosing z-region").
  static ZElement Enclosing(const GridRect& r, uint32_t grid_bits);

  uint32_t zbits() const { return 2u * gbits; }

  /// Width of the z-interval in full-resolution cells: 2^(zbits-level).
  uint64_t interval_size() const { return 1ULL << (zbits() - level); }

  /// Last z-code inside the element.
  uint64_t zmax() const { return zmin | (interval_size() - 1); }

  /// True if this element's interval contains e's (prefix relation).
  bool Contains(const ZElement& e) const {
    return level <= e.level && zmin <= e.zmin && e.zmax() <= zmax();
  }

  bool Intersects(const ZElement& e) const {
    return Contains(e) || e.Contains(*this);
  }

  bool is_full_resolution() const { return level == zbits(); }

  /// Child i (0 = lower half, 1 = upper half of the z-interval).
  /// Precondition: !is_full_resolution().
  ZElement Child(int i) const;

  /// Enclosing element one level up. Precondition: level > 0.
  ZElement Parent() const;

  /// The grid-cell rectangle this element covers.
  GridRect ToGridRect() const;

  /// Number of grid cells covered (same as interval_size()).
  uint64_t CellCount() const { return interval_size(); }

  /// Canonical order: (zmin, level) ascending. An element sorts before
  /// all elements it contains.
  bool operator<(const ZElement& e) const {
    if (zmin != e.zmin) return zmin < e.zmin;
    return level < e.level;
  }
  bool operator==(const ZElement& e) const {
    return zmin == e.zmin && level == e.level && gbits == e.gbits;
  }

  std::string ToString() const;
};

}  // namespace zdb

#endif  // ZDB_ZORDER_ZELEMENT_H_
