// Copyright (c) zdb authors. Licensed under the MIT license.
//
// BIGMIN ("next jump-in point") after Tropf & Herzog (1981): given a
// z-code and a query rectangle, the smallest z-code strictly greater than
// the given one that lies inside the rectangle. Lets a z-interval scan
// skip the dead space a coarse query approximation drags in — the
// alternative to decomposing the query finely (ablation A1).

#ifndef ZDB_ZORDER_BIGMIN_H_
#define ZDB_ZORDER_BIGMIN_H_

#include <cstdint>
#include <optional>

#include "geom/grid.h"

namespace zdb {

/// Smallest z-code > zcode whose cell lies inside `rect` (on a grid with
/// `grid_bits` bits per axis); nullopt when no such code exists.
std::optional<uint64_t> BigMin(uint64_t zcode, const GridRect& rect,
                               uint32_t grid_bits);

/// True if the cell addressed by zcode lies inside rect.
bool ZCodeInRect(uint64_t zcode, const GridRect& rect, uint32_t grid_bits);

}  // namespace zdb

#endif  // ZDB_ZORDER_BIGMIN_H_
