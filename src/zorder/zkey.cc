// Copyright (c) zdb authors. Licensed under the MIT license.

#include "zorder/zkey.h"

#include "common/coding.h"

namespace zdb {

std::string EncodeZKey(const ZElement& elem, ObjectId oid) {
  std::string key;
  key.reserve(kZKeySize);
  PutFixed64BE(&key, elem.zmin);
  key.push_back(static_cast<char>(elem.level));
  PutFixed32BE(&key, oid);
  return key;
}

bool DecodeZKey(const Slice& key, uint32_t grid_bits, ZElement* elem,
                ObjectId* oid) {
  if (key.size() != kZKeySize) return false;
  elem->zmin = DecodeFixed64BE(key.data());
  elem->level = static_cast<uint8_t>(key[8]);
  elem->gbits = static_cast<uint8_t>(grid_bits);
  if (elem->level > elem->zbits()) return false;
  *oid = DecodeFixed32BE(key.data() + 9);
  return true;
}

std::string ZScanStartKey(const ZElement& elem) {
  std::string key;
  key.reserve(kZKeySize);
  PutFixed64BE(&key, elem.zmin);
  key.push_back(0);
  PutFixed32BE(&key, 0);
  return key;
}

std::string ZScanEndKey(const ZElement& elem) {
  std::string key;
  key.reserve(kZKeySize);
  PutFixed64BE(&key, elem.zmax());
  key.push_back(static_cast<char>(0xff));
  PutFixed32BE(&key, 0xffffffffu);
  return key;
}

std::string ZProbeStartKey(const ZElement& elem) {
  return EncodeZKey(elem, 0);
}

std::string ZProbeEndKey(const ZElement& elem) {
  return EncodeZKey(elem, 0xffffffffu);
}

}  // namespace zdb
