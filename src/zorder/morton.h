// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Morton (Z-order / Peano) codes for 2-D grid coordinates. The code
// interleaves y above x — bit 2i of the code is x_i, bit 2i+1 is y_i —
// so the first (most significant) split of the recursive decomposition
// halves the y axis, as in Orenstein's papers.

#ifndef ZDB_ZORDER_MORTON_H_
#define ZDB_ZORDER_MORTON_H_

#include <cstdint>

#include "geom/grid.h"

namespace zdb {

/// Spreads the low 32 bits of v so bit i moves to bit 2i.
uint64_t SpreadBits(uint32_t v);

/// Inverse of SpreadBits: collects even-position bits of v.
uint32_t CollectBits(uint64_t v);

/// Z-code of the cell (x, y) on a 2^bits x 2^bits grid. The result uses
/// the low 2*bits bits. Precondition: x, y < 2^bits.
uint64_t MortonEncode(GridCoord x, GridCoord y, uint32_t bits);

/// Inverse of MortonEncode.
void MortonDecode(uint64_t z, uint32_t bits, GridCoord* x, GridCoord* y);

}  // namespace zdb

#endif  // ZDB_ZORDER_MORTON_H_
