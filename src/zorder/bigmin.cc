// Copyright (c) zdb authors. Licensed under the MIT license.

#include "zorder/bigmin.h"

#include <cassert>

#include "zorder/morton.h"

namespace zdb {

namespace {

/// Mask of the bits belonging to the same dimension as bit `pos`, at
/// positions strictly below `pos`. With x on even and y on odd bits, the
/// dimension alternates with pos parity.
uint64_t SameDimBelow(uint32_t pos) {
  const uint64_t dim_mask =
      (pos % 2 == 0) ? 0x5555555555555555ULL : 0xAAAAAAAAAAAAAAAAULL;
  const uint64_t below = (pos == 0) ? 0 : ((1ULL << pos) - 1);
  return dim_mask & below;
}

/// LOAD "10...0": set bit pos, clear lower same-dimension bits.
uint64_t Load10(uint64_t v, uint32_t pos) {
  return (v & ~SameDimBelow(pos)) | (1ULL << pos);
}

/// LOAD "01...1": clear bit pos, set lower same-dimension bits.
uint64_t Load01(uint64_t v, uint32_t pos) {
  return (v | SameDimBelow(pos)) & ~(1ULL << pos);
}

}  // namespace

bool ZCodeInRect(uint64_t zcode, const GridRect& rect, uint32_t grid_bits) {
  GridCoord x, y;
  MortonDecode(zcode, grid_bits, &x, &y);
  return x >= rect.xlo && x <= rect.xhi && y >= rect.ylo && y <= rect.yhi;
}

std::optional<uint64_t> BigMin(uint64_t zcode, const GridRect& rect,
                               uint32_t grid_bits) {
  uint64_t zmin = MortonEncode(rect.xlo, rect.ylo, grid_bits);
  uint64_t zmax = MortonEncode(rect.xhi, rect.yhi, grid_bits);
  std::optional<uint64_t> bigmin;

  const uint32_t zbits = 2 * grid_bits;
  for (uint32_t i = zbits; i-- > 0;) {
    const uint64_t bit = 1ULL << i;
    const int z = (zcode & bit) ? 1 : 0;
    const int lo = (zmin & bit) ? 1 : 0;
    const int hi = (zmax & bit) ? 1 : 0;
    const int triple = (z << 2) | (lo << 1) | hi;
    switch (triple) {
      case 0b000:
        break;
      case 0b001:
        bigmin = Load10(zmin, i);
        zmax = Load01(zmax, i);
        break;
      case 0b011:
        // zcode is below the whole remaining range: its minimum wins.
        return zmin;
      case 0b100:
        // zcode is above the whole remaining range.
        return bigmin;
      case 0b101:
        zmin = Load10(zmin, i);
        break;
      case 0b111:
        break;
      case 0b010:
      case 0b110:
      default:
        // lo=1, hi=0 cannot happen for a valid rectangle.
        assert(false && "invalid BIGMIN state");
        return std::nullopt;
    }
  }
  // The loop completing means zcode itself lies inside the rectangle.
  // The next in-rect code is zcode + 1 if that is still inside; otherwise
  // one recursive call (whose argument is outside the rectangle, so it
  // resolves within its bit loop) finds the jump-in point.
  if (zcode >= MortonEncode(rect.xhi, rect.yhi, grid_bits)) {
    return std::nullopt;
  }
  const uint64_t next = zcode + 1;
  if (ZCodeInRect(next, rect, grid_bits)) return next;
  return BigMin(next, rect, grid_bits);
}

}  // namespace zdb
