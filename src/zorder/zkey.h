// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Order-preserving byte encoding of (z-element, object id) index keys.
// Layout: 8-byte big-endian zmin | 1-byte level | 4-byte big-endian oid.
// Lexicographic byte order therefore equals (zmin, level, oid) order,
// which is the canonical element order: an element sorts immediately
// before every element it contains that starts at the same z, and all
// elements inside its z-interval follow contiguously — so both the range
// scan and the ancestor probes of query evaluation are plain B+-tree
// scans.

#ifndef ZDB_ZORDER_ZKEY_H_
#define ZDB_ZORDER_ZKEY_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "zorder/zelement.h"

namespace zdb {

/// Object identifier within an index (assigned by the object store).
using ObjectId = uint32_t;

inline constexpr size_t kZKeySize = 13;

/// Serializes (element, oid) to a 13-byte key.
std::string EncodeZKey(const ZElement& elem, ObjectId oid);

/// Parses a key produced by EncodeZKey. Returns false on malformed input.
/// `grid_bits` restores the element's gbits field (not stored in keys).
bool DecodeZKey(const Slice& key, uint32_t grid_bits, ZElement* elem,
                ObjectId* oid);

/// First possible key of any (element', oid) stored with zmin >= elem.zmin.
/// Seeking here starts a scan over everything inside elem's z-interval.
std::string ZScanStartKey(const ZElement& elem);

/// Inclusive upper bound: the greatest possible key of any element whose
/// zmin lies inside elem's z-interval.
std::string ZScanEndKey(const ZElement& elem);

/// First possible key for exactly this element (any oid); with
/// ZProbeEndKey brackets the duplicates of one element.
std::string ZProbeStartKey(const ZElement& elem);
std::string ZProbeEndKey(const ZElement& elem);

}  // namespace zdb

#endif  // ZDB_ZORDER_ZKEY_H_
