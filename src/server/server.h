// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Multi-threaded network server exposing one SpatialIndex over the zdb
// wire protocol (net/wire.h), on TCP and/or a unix-domain socket.
//
// Threading model:
//
//   * one accept thread per listener;
//   * one reader thread per connection: frames the byte stream
//     (FrameAssembler), replies to framing errors, and pushes decoded
//     frames into the bounded admission queue;
//   * a fixed worker pool pops requests from the queue and executes them
//     against the engine — queries through the SpatialIndex's latched
//     read path (large windows through the QueryExecutor's intra-query
//     parallel mode), mutations through ApplyBatch — then writes the
//     reply under the connection's write mutex.
//
// Backpressure: the admission queue is bounded. A frame arriving while
// the queue is full is answered immediately with a typed BUSY error —
// the request is never queued, so a saturated server sheds load at the
// door instead of queueing unboundedly. Clients treat BUSY as "retry
// later" (Status::Busy).
//
// Graceful shutdown (Stop()): listeners close first (new connections are
// refused), then the server drains — requests already admitted keep
// executing and their replies are delivered, while frames arriving
// during the drain get a typed SHUTTING_DOWN reply — and only then are
// the worker pool and the connections torn down. A client's SHUTDOWN
// request sets a flag the daemon observes via WaitForShutdownRequest();
// the daemon then calls Stop().
//
// Deadlock note: the executor's worker pool only ever runs the unlatched
// plan hooks (via ParallelWindowQuery); latched queries execute on the
// server workers' own threads. Queueing latched work behind a pool job
// whose driver holds a reader section would deadlock against a waiting
// writer — don't.

#ifndef ZDB_SERVER_SERVER_H_
#define ZDB_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/spatial_index.h"
#include "exec/executor.h"
#include "net/socket.h"
#include "net/wire.h"

namespace zdb {
namespace net {

struct ServerOptions {
  bool tcp = true;               ///< listen on host:port
  std::string host = "127.0.0.1";
  uint16_t port = 0;             ///< 0 = ephemeral; Server::port() tells
  std::string unix_path;         ///< empty = no unix-domain listener
  size_t workers = 4;            ///< request execution threads
  size_t queue_capacity = 64;    ///< admission queue bound (BUSY beyond)
  int idle_timeout_ms = 30000;   ///< close idle connections; <= 0 = never
  size_t exec_threads = 2;       ///< intra-query pool; 0 = no executor
  /// Windows at least this large (fraction of the unit square) run
  /// through QueryExecutor::ParallelWindowQuery instead of the scalar
  /// path. Negative disables intra-query parallelism.
  double parallel_window_area = 0.02;
};

/// Per-opcode latency/throughput counters. Relaxed atomics: written by
/// the workers, read by STATS.
struct OpcodeCounters {
  std::atomic<uint64_t> count{0};        ///< completed requests
  std::atomic<uint64_t> errors{0};       ///< typed error replies
  std::atomic<uint64_t> total_micros{0}; ///< summed execution time
  std::atomic<uint64_t> max_micros{0};   ///< worst single execution
};

struct ServerCounters {
  OpcodeCounters ops[kOpcodeLimit];
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> closed{0};
  std::atomic<uint64_t> idle_closed{0};
  std::atomic<uint64_t> frames{0};
  std::atomic<uint64_t> framing_errors{0};
  std::atomic<uint64_t> busy_rejected{0};
  std::atomic<uint64_t> shutdown_rejected{0};
};

class Server {
 public:
  /// The index must outlive the server. Call Start() to begin serving.
  Server(SpatialIndex* index, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listeners and starts the accept/worker threads.
  Status Start();

  /// The bound TCP port (after Start(); useful with options.port == 0).
  uint16_t port() const { return port_; }

  /// Graceful shutdown: refuse new connections, drain admitted requests,
  /// reply SHUTTING_DOWN to late frames, then stop workers and close
  /// connections. Idempotent; also run by the destructor.
  void Stop();

  /// Blocks until a client's SHUTDOWN request arrives (or the timeout,
  /// if >= 0, elapses). Returns whether shutdown was requested.
  bool WaitForShutdownRequest(int timeout_ms = -1);

  /// Machine-readable snapshot of the server + engine counters (the
  /// STATS opcode's payload).
  std::string StatsJson() const;

  const ServerCounters& counters() const { return counters_; }

 private:
  struct Connection {
    Socket sock;                      ///< shared by reader + repliers; see write_mu
    Mutex write_mu;                   ///< serializes reply frames
    std::atomic<bool> closed{false};
    std::atomic<uint32_t> pending{0}; ///< admitted, reply not yet sent
    std::atomic<bool> done{false};    ///< reader thread exited (reap)
  };
  using ConnPtr = std::shared_ptr<Connection>;

  struct Request {
    ConnPtr conn;
    Frame frame;
  };

  void AcceptLoop(Socket* listener);
  void ConnectionLoop(ConnPtr conn);
  void WorkerLoop();

  /// Routes one framed request: typed rejections (unknown opcode, BUSY,
  /// SHUTTING_DOWN) reply inline from the reader thread; everything else
  /// is admitted to the queue.
  void DispatchFrame(const ConnPtr& conn, Frame frame);

  /// Executes an admitted request on a worker and writes its reply.
  void HandleRequest(const Request& req);

  /// Opcode-specific execution; returns the reply payload.
  std::string ExecuteRequest(const Frame& frame, bool* is_error);

  void SendReply(const ConnPtr& conn, uint8_t opcode, uint64_t request_id,
                 std::string_view payload);

  /// Joins reader threads whose connections have finished.
  void ReapConnectionsLocked() REQUIRES(conns_mu_);

  SpatialIndex* index_;
  ServerOptions options_;
  std::unique_ptr<QueryExecutor> exec_;
  uint16_t port_ = 0;

  Socket tcp_listener_;
  Socket unix_listener_;
  std::vector<std::thread> accept_threads_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  // Admission queue + drain accounting. Mutable: StatsJson() (const)
  // snapshots the queue depth under the lock.
  mutable Mutex queue_mu_;
  CondVar queue_cv_;  ///< workers wait for requests
  CondVar drain_cv_;  ///< Stop() waits for quiescence
  std::deque<Request> queue_ GUARDED_BY(queue_mu_);
  /// Popped but reply not yet written.
  size_t in_flight_ GUARDED_BY(queue_mu_) = 0;
  /// Reject new admissions (SHUTTING_DOWN).
  bool draining_ GUARDED_BY(queue_mu_) = false;
  bool stop_workers_ GUARDED_BY(queue_mu_) = false;
  std::vector<std::thread> workers_;

  Mutex conns_mu_;
  std::vector<std::pair<ConnPtr, std::thread>> conns_ GUARDED_BY(conns_mu_);

  mutable Mutex shutdown_mu_;
  CondVar shutdown_cv_;
  bool shutdown_requested_ GUARDED_BY(shutdown_mu_) = false;

  ServerCounters counters_;
};

}  // namespace net
}  // namespace zdb

#endif  // ZDB_SERVER_SERVER_H_
