// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Event-driven network server exposing one SpatialIndex over the zdb
// wire protocol (net/wire.h), on TCP and/or a unix-domain socket.
//
// Threading model (one epoll loop per net thread, tarantool-iproto
// style; NOT thread-per-connection):
//
//   * a small fixed pool of `net_threads` epoll event loops. Every
//     connection is owned by exactly one net thread, assigned
//     round-robin at accept. Net thread 0 additionally owns the
//     listeners: nonblocking accept bursts, transient accept errors
//     (ECONNABORTED, EPROTO, ...) are retried, fd exhaustion
//     (EMFILE/ENFILE) backs the listener off briefly and re-arms it —
//     an accept failure never kills the listener (counters:
//     accept_retries / accept_backoffs).
//   * the owning net thread does all socket I/O for its connections:
//     nonblocking reads feeding an incremental FrameAssembler, framing
//     replies and typed rejections (BUSY, SHUTTING_DOWN) written
//     inline, decoded requests pushed into the bounded admission queue.
//   * a fixed worker pool pops requests from the queue and executes
//     them against the engine — queries through the SpatialIndex's
//     latched read path (large windows through the QueryExecutor's
//     intra-query parallel mode), mutations through ApplyBatch. The
//     reply is appended to the connection's write buffer and the
//     owning net thread is woken through its eventfd to flush it.
//   * writes are buffered per connection: the net thread flushes with
//     nonblocking sends and arms EPOLLOUT only while a partial write
//     is outstanding. A connection whose buffered output exceeds
//     `out_buffer_limit` stops being read (its EPOLLIN interest is
//     dropped) until the peer drains it below half — flow control, so
//     one slow reader cannot balloon server memory.
//
// Idle connections are reaped by deadline: each net thread tracks
// per-connection last-activity and scans on a coarse tick; a
// connection with a pending reply or buffered output is never idle.
// Closed connections release their fd and Connection state immediately
// (the pre-epoll server leaked finished reader threads until the next
// accept).
//
// Backpressure: the admission queue is bounded. A frame arriving while
// the queue is full is answered immediately with a typed BUSY error —
// the request is never queued, so a saturated server sheds load at the
// door instead of queueing unboundedly. Clients treat BUSY as "retry
// later" (Status::Busy).
//
// Graceful shutdown (Stop()): listeners shut down first (new
// connections are refused), then the server drains — requests already
// admitted keep executing and their replies are delivered, while
// frames arriving during the drain get a typed SHUTTING_DOWN reply —
// then the worker pool stops, and finally each net thread flushes any
// still-buffered reply bytes (bounded by drain_flush_ms) before
// closing its connections and exiting. A client's SHUTDOWN request
// sets a flag the daemon observes via WaitForShutdownRequest(); the
// daemon then calls Stop().
//
// Deadlock note: the executor's worker pool only ever runs the
// unlatched plan hooks (via ParallelWindowQuery); latched queries
// execute on the server workers' own threads. Queueing latched work
// behind a pool job whose driver holds a reader section would deadlock
// against a waiting writer — don't.
//
// Lock order: a net thread takes its NetThread::mu and a connection's
// write_mu strictly one at a time, never nested; no server lock is
// held while calling into the engine.

#ifndef ZDB_SERVER_SERVER_H_
#define ZDB_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/spatial_index.h"
#include "exec/executor.h"
#include "net/epoll.h"
#include "net/socket.h"
#include "net/wire.h"
#include "repl/apply.h"
#include "repl/ship.h"
#include "zdb/db.h"

namespace zdb {
namespace net {

/// Replication role of a server process (see DESIGN.md "Replication &
/// log shipping").
enum class ServerRole : uint8_t {
  /// No replication: today's single-node server, byte-for-byte.
  kStandalone,
  /// Accepts writes, attaches a log shipper to the DB's commit stream
  /// and serves SUBSCRIBE/LOG_ACK from follower processes.
  kLeader,
  /// Runs an applier that replays the leader's log into the local DB;
  /// serves reads (with optional bounded-staleness admission) and
  /// rejects writes with a typed NOT_LEADER naming the leader.
  kFollower,
};

struct ServerOptions {
  bool tcp = true;               ///< listen on host:port
  std::string host = "127.0.0.1";
  uint16_t port = 0;             ///< 0 = ephemeral; Server::port() tells
  std::string unix_path;         ///< empty = no unix-domain listener
  size_t net_threads = 2;        ///< epoll event-loop threads (>= 1)
  size_t workers = 4;            ///< request execution threads
  size_t queue_capacity = 64;    ///< admission queue bound (BUSY beyond)
  int idle_timeout_ms = 30000;   ///< close idle connections; <= 0 = never
  int listen_backlog = 128;      ///< listen(2) backlog per listener
  size_t exec_threads = 2;       ///< intra-query pool; 0 = no executor
  /// Windows at least this large (fraction of the unit square) run
  /// through QueryExecutor::ParallelWindowQuery instead of the scalar
  /// path. Negative disables intra-query parallelism.
  double parallel_window_area = 0.02;
  /// Flow control: a connection with more than this many reply bytes
  /// buffered stops being read until the peer drains it below half.
  size_t out_buffer_limit = 1u << 20;
  /// Stop() bound on flushing still-buffered replies to slow peers.
  int drain_flush_ms = 2000;
  /// Test-only fault injection: when set, called before every real
  /// accept(2); a nonzero return is treated as accept failing with that
  /// errno (the real accept is skipped for that attempt). Lets tests
  /// exercise the EMFILE/ECONNABORTED retry paths deterministically.
  std::function<int()> accept_fault_injection;

  // ----------------------------------------------------------- replication

  ServerRole role = ServerRole::kStandalone;
  /// kFollower: the leader's endpoint URI ("tcp://host:port" or
  /// "unix://path"). Required for followers, rejected otherwise.
  std::string leader_endpoint;
  /// kLeader: log records retained for resubscribing followers
  /// (0 = unlimited; see repl::ShipperOptions::retain_records).
  size_t repl_retain_records = 0;
  /// kLeader: per-follower in-flight window (flow control).
  size_t repl_window = 64;
  /// kFollower: epoch the local DB is already replicated up to (a
  /// restarted follower resumes instead of demanding ancient history).
  uint64_t repl_initial_applied_epoch = 0;

  /// Typed rejection of every statically invalid knob combination (no
  /// listener, zero workers or net threads, follower without a parseable
  /// leader endpoint, ...). Start() calls this first, so a misconfigured
  /// server fails with this exact Status before binding anything.
  [[nodiscard]] Status Validate() const;
};

/// Per-opcode latency/throughput counters. Relaxed atomics: written by
/// the workers, read by STATS.
struct OpcodeCounters {
  std::atomic<uint64_t> count{0};        ///< completed requests
  std::atomic<uint64_t> errors{0};       ///< typed error replies
  std::atomic<uint64_t> total_micros{0}; ///< summed execution time
  std::atomic<uint64_t> max_micros{0};   ///< worst single execution
};

struct ServerCounters {
  OpcodeCounters ops[kOpcodeLimit];
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> closed{0};
  std::atomic<uint64_t> idle_closed{0};
  std::atomic<uint64_t> frames{0};
  std::atomic<uint64_t> framing_errors{0};
  std::atomic<uint64_t> busy_rejected{0};
  std::atomic<uint64_t> shutdown_rejected{0};
  /// Transient accept failures retried instead of killing the listener.
  std::atomic<uint64_t> accept_retries{0};
  /// Accept backoffs taken because the fd table was exhausted.
  std::atomic<uint64_t> accept_backoffs{0};
  /// Reads paused for out_buffer_limit flow control.
  std::atomic<uint64_t> read_pauses{0};
  /// Follower: bounded-staleness queries rejected with STALE_READ.
  std::atomic<uint64_t> stale_rejected{0};
  /// Follower: writes rejected with NOT_LEADER.
  std::atomic<uint64_t> not_leader_rejected{0};
};

class Server {
 public:
  /// The index must outlive the server. Call Start() to begin serving.
  Server(SpatialIndex* index, ServerOptions options);

  /// Serves a whole zdb::DB — the way to expose a sharded DB: queries
  /// and mutations scatter-gather through the DB facade (per-shard
  /// epoch pinning happens inside each shard engine) and STATS reports
  /// the per-shard counter breakdown. A single-shard DB behind this
  /// constructor serves byte-identically to the index constructor
  /// above. The DB must outlive the server.
  Server(DB* db, ServerOptions options);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listeners and starts the net/worker threads.
  Status Start();

  /// The bound TCP port (after Start(); useful with options.port == 0).
  uint16_t port() const { return port_; }

  /// Graceful shutdown: refuse new connections, drain admitted requests,
  /// reply SHUTTING_DOWN to late frames, flush buffered replies, then
  /// stop all threads and close connections. Idempotent; also run by
  /// the destructor.
  void Stop();

  /// Blocks until a client's SHUTDOWN request arrives (or the timeout,
  /// if >= 0, elapses). Returns whether shutdown was requested.
  bool WaitForShutdownRequest(int timeout_ms = -1);

  /// Machine-readable snapshot of the server + engine counters (the
  /// STATS opcode's payload).
  std::string StatsJson() const;

  const ServerCounters& counters() const { return counters_; }

  /// Live connection gauge (accepted minus closed).
  uint64_t open_connections() const {
    return counters_.accepted.load(std::memory_order_relaxed) -
           counters_.closed.load(std::memory_order_relaxed);
  }

 private:
  /// One client connection. Socket I/O and the fields below the marker
  /// are confined to the owning net thread; the write buffer is the
  /// worker -> net thread handoff and is the only cross-thread state.
  struct Connection {
    Socket sock;
    size_t owner = 0;                 ///< owning net thread index
    uint64_t token = 0;               ///< process-unique id (repl cursors)
    std::atomic<bool> closed{false};  ///< set once by the owner; SendReply drops
    std::atomic<uint32_t> pending{0}; ///< admitted, reply not yet buffered
    /// A follower subscribed on this connection: exempt from idle
    /// reaping (a caught-up follower is silent between commits).
    std::atomic<bool> subscriber{false};

    /// Write buffer: workers append encoded reply frames under write_mu
    /// and wake the owner to flush. `flush_queued` dedups wakeups while
    /// a flush is already scheduled or EPOLLOUT is armed.
    Mutex write_mu;
    std::string out_buf GUARDED_BY(write_mu);
    size_t out_off GUARDED_BY(write_mu) = 0;
    bool flush_queued GUARDED_BY(write_mu) = false;

    // ---- owning-net-thread state (no lock: single-thread confined) ----
    FrameAssembler assembler;
    std::chrono::steady_clock::time_point last_active;
    bool want_write = false;        ///< EPOLLOUT currently armed
    bool read_paused = false;       ///< EPOLLIN dropped (flow control/drain)
    bool close_after_flush = false; ///< framing error / drain: close at empty
  };
  using ConnPtr = std::shared_ptr<Connection>;

  struct Request {
    ConnPtr conn;
    Frame frame;
  };

  /// One epoll event loop. Everything except `mu` and the queues it
  /// guards is confined to the loop's own thread.
  struct NetThread {
    Epoll epoll;
    EventFd wakeup;
    std::thread thread;

    Mutex mu;
    /// Accepted connections awaiting epoll registration by the owner.
    std::vector<ConnPtr> incoming GUARDED_BY(mu);
    /// Connections with freshly buffered output to flush.
    std::vector<ConnPtr> flush_queue GUARDED_BY(mu);
    /// Stop(): flush remaining output, close everything, exit.
    bool drain GUARDED_BY(mu) = false;

    // ---- loop-thread state ----
    std::unordered_map<int, ConnPtr> conns;  ///< fd -> connection
  };

  /// Net thread 0's per-listener accept state.
  struct ListenerState {
    Socket* sock = nullptr;
    bool armed = false;  ///< registered in the epoll set
    std::chrono::steady_clock::time_point backoff_until;
    bool backed_off = false;
  };

  void NetLoop(size_t idx);
  void WorkerLoop();

  /// Accept burst on one listener (net thread 0). Classifies failures:
  /// transient -> retry, fd exhaustion -> back off + re-arm, listener
  /// shutdown -> disarm.
  void HandleAccept(NetThread& nt, ListenerState& ls);

  /// Drains the cross-thread queues: registers incoming connections and
  /// flushes connections the workers marked.
  void ProcessQueues(NetThread& nt);

  /// Nonblocking read burst: feed the assembler, dispatch frames.
  void HandleReadable(NetThread& nt, const ConnPtr& conn, char* buf,
                      size_t buf_cap);

  /// Writes as much buffered output as the socket accepts; arms/disarms
  /// EPOLLOUT and applies flow control; may close the connection.
  void FlushConnection(NetThread& nt, const ConnPtr& conn);

  /// Applies the connection's current EPOLLIN/EPOLLOUT interest.
  void UpdateInterest(NetThread& nt, const ConnPtr& conn);

  void CloseConnection(NetThread& nt, const ConnPtr& conn, bool idle);

  /// Closes connections idle past the deadline; returns the next scan
  /// due time.
  std::chrono::steady_clock::time_point IdleScan(
      NetThread& nt, std::chrono::steady_clock::time_point now);

  /// Routes one framed request: typed rejections (unknown opcode, BUSY,
  /// SHUTTING_DOWN) reply inline from the net thread; everything else
  /// is admitted to the queue.
  void DispatchFrame(const ConnPtr& conn, Frame frame);

  /// Executes an admitted request on a worker and buffers its reply.
  void HandleRequest(const Request& req);

  /// Opcode-specific execution; returns the reply payload.
  std::string ExecuteRequest(const Frame& frame, bool* is_error);

  /// SUBSCRIBE handshake on a leader: validates, buffers the success
  /// reply, then activates the shipper cursor — in that order, so the
  /// reply always precedes the first pushed LOG_RECORD in the
  /// connection's write buffer. Returns whether the handshake errored.
  bool HandleSubscribe(const Request& req);

  /// Appends an encoded reply frame to the connection's write buffer
  /// and schedules the owning net thread to flush it. Any thread.
  void SendReply(const ConnPtr& conn, uint8_t opcode, uint64_t request_id,
                 std::string_view payload);

  /// SendReply's raw sibling: buffers an already-framed byte string
  /// (the log shipper's push path). Any thread.
  void PushFrame(const ConnPtr& conn, std::string frame);

  SpatialIndex* index_;      ///< shard 0 under the DB constructor
  DB* db_ = nullptr;         ///< set by the DB constructor only
  ServerOptions options_;
  std::unique_ptr<QueryExecutor> exec_;
  uint16_t port_ = 0;

  /// kLeader: the DB's commit sink + follower cursor fan-out. Stopped
  /// (and the sink detached) before the net threads go away — its send
  /// callbacks resolve connections through net_.
  std::unique_ptr<repl::LogShipper> shipper_;
  /// kFollower: replays the leader's log into db_.
  std::unique_ptr<repl::Applier> applier_;
  std::atomic<uint64_t> next_conn_token_{1};

  Socket tcp_listener_;
  Socket unix_listener_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  std::vector<std::unique_ptr<NetThread>> net_;
  size_t next_owner_ = 0;  ///< round-robin assignment; net thread 0 only

  // Admission queue + drain accounting. Mutable: StatsJson() (const)
  // snapshots the queue depth under the lock.
  mutable Mutex queue_mu_;
  CondVar queue_cv_;  ///< workers wait for requests
  CondVar drain_cv_;  ///< Stop() waits for quiescence
  std::deque<Request> queue_ GUARDED_BY(queue_mu_);
  /// Popped but reply not yet buffered.
  size_t in_flight_ GUARDED_BY(queue_mu_) = 0;
  /// Reject new admissions (SHUTTING_DOWN).
  bool draining_ GUARDED_BY(queue_mu_) = false;
  bool stop_workers_ GUARDED_BY(queue_mu_) = false;
  std::vector<std::thread> workers_;

  mutable Mutex shutdown_mu_;
  CondVar shutdown_cv_;
  bool shutdown_requested_ GUARDED_BY(shutdown_mu_) = false;

  ServerCounters counters_;
};

}  // namespace net
}  // namespace zdb

#endif  // ZDB_SERVER_SERVER_H_
