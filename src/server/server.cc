// Copyright (c) zdb authors. Licensed under the MIT license.

#include "server/server.h"

#include <algorithm>
#include <chrono>
#include <unistd.h>

namespace zdb {
namespace net {

namespace {

uint64_t MicrosSince(std::chrono::steady_clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

void BumpMax(std::atomic<uint64_t>* slot, uint64_t v) {
  uint64_t cur = slot->load(std::memory_order_relaxed);
  while (v > cur &&
         !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Server::Server(SpatialIndex* index, ServerOptions options)
    : index_(index), options_(std::move(options)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::AlreadyExists("server already started");
  }
  if (!options_.tcp && options_.unix_path.empty()) {
    return Status::InvalidArgument("no listener configured");
  }
  if (options_.workers == 0) {
    return Status::InvalidArgument("server needs at least one worker");
  }

  if (options_.tcp) {
    ZDB_ASSIGN_OR_RETURN(tcp_listener_,
                         TcpListen(options_.host, options_.port));
    ZDB_ASSIGN_OR_RETURN(port_, LocalPort(tcp_listener_));
  }
  if (!options_.unix_path.empty()) {
    ZDB_ASSIGN_OR_RETURN(unix_listener_, UnixListen(options_.unix_path));
  }
  if (options_.exec_threads > 0 && options_.parallel_window_area >= 0) {
    exec_ = std::make_unique<QueryExecutor>(index_, options_.exec_threads);
  }

  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  if (tcp_listener_.valid()) {
    accept_threads_.emplace_back([this] { AcceptLoop(&tcp_listener_); });
  }
  if (unix_listener_.valid()) {
    accept_threads_.emplace_back([this] { AcceptLoop(&unix_listener_); });
  }
  return Status::OK();
}

void Server::Stop() {
  if (!started_.load() || stopped_.exchange(true)) return;

  // 1. Refuse new connections: shutting the listeners down unblocks the
  //    accept threads; once they exit, connect() gets ECONNREFUSED.
  tcp_listener_.ShutdownBoth();
  unix_listener_.ShutdownBoth();
  for (auto& t : accept_threads_) t.join();
  accept_threads_.clear();
  tcp_listener_.Close();
  unix_listener_.Close();
  if (!options_.unix_path.empty()) {
    ::unlink(options_.unix_path.c_str());
  }

  // 2. Drain: frames arriving from here on are answered SHUTTING_DOWN by
  //    the reader threads; requests already admitted keep executing.
  {
    MutexLock lock(queue_mu_);
    draining_ = true;
    while (!(queue_.empty() && in_flight_ == 0)) drain_cv_.Wait(queue_mu_);
    // 3. Quiesced — stop the worker pool.
    stop_workers_ = true;
  }
  queue_cv_.NotifyAll();
  for (auto& w : workers_) w.join();
  workers_.clear();

  // 4. Tear down the connections (readers wake via the socket shutdown).
  {
    MutexLock lock(conns_mu_);
    for (auto& [conn, thread] : conns_) {
      conn->closed.store(true, std::memory_order_release);
      conn->sock.ShutdownBoth();
    }
    for (auto& [conn, thread] : conns_) thread.join();
    conns_.clear();
  }
  exec_.reset();
}

bool Server::WaitForShutdownRequest(int timeout_ms) {
  MutexLock lock(shutdown_mu_);
  if (timeout_ms < 0) {
    while (!shutdown_requested_) shutdown_cv_.Wait(shutdown_mu_);
    return true;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!shutdown_requested_) {
    if (!shutdown_cv_.WaitUntil(shutdown_mu_, deadline)) {
      return shutdown_requested_;
    }
  }
  return true;
}

// ------------------------------------------------------------- accepting

void Server::AcceptLoop(Socket* listener) {
  for (;;) {
    auto conn_sock = Accept(*listener);
    if (!conn_sock.ok()) return;  // listener shut down (Stop) or fatal
    auto conn = std::make_shared<Connection>();
    conn->sock = std::move(conn_sock).value();
    counters_.accepted.fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(conns_mu_);
    ReapConnectionsLocked();
    std::thread reader([this, conn] { ConnectionLoop(conn); });
    conns_.emplace_back(conn, std::move(reader));
  }
}

void Server::ReapConnectionsLocked() {
  auto it = conns_.begin();
  while (it != conns_.end()) {
    if (it->first->done.load(std::memory_order_acquire)) {
      it->second.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

// ----------------------------------------------------- connection reader

void Server::ConnectionLoop(ConnPtr conn) {
  FrameAssembler assembler;
  std::vector<char> buf(64 * 1024);
  bool close = false;
  while (!close && !conn->closed.load(std::memory_order_acquire)) {
    const bool has_pending =
        conn->pending.load(std::memory_order_acquire) > 0;
    // The idle clock only ticks while nothing is in flight: a client
    // quietly waiting for a slow reply is not idle.
    const int timeout =
        (options_.idle_timeout_ms > 0 && !has_pending)
            ? options_.idle_timeout_ms
            : (has_pending ? 100 : -1);
    auto readable = WaitReadable(conn->sock, timeout);
    if (!readable.ok()) break;
    if (!readable.value()) {
      if (has_pending ||
          conn->pending.load(std::memory_order_acquire) > 0) {
        continue;  // reply still being computed; not idle
      }
      counters_.idle_closed.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    auto n = ReadSome(conn->sock, buf.data(), buf.size());
    if (!n.ok() || n.value() == 0) break;  // peer closed or error
    assembler.Feed(buf.data(), n.value());

    for (;;) {
      Frame frame;
      WireError err;
      FrameHeader err_header;
      const auto next = assembler.Poll(&frame, &err, &err_header);
      if (next == FrameAssembler::Next::kNeedMore) break;
      if (next == FrameAssembler::Next::kError) {
        // Framing is lost: reply with the typed error, then close.
        counters_.framing_errors.fetch_add(1, std::memory_order_relaxed);
        SendReply(conn, err_header.opcode, err_header.request_id,
                  EncodeErrorReply(err, WireErrorName(err)));
        close = true;
        break;
      }
      counters_.frames.fetch_add(1, std::memory_order_relaxed);
      DispatchFrame(conn, std::move(frame));
    }
  }
  conn->closed.store(true, std::memory_order_release);
  conn->sock.ShutdownBoth();
  counters_.closed.fetch_add(1, std::memory_order_relaxed);
  conn->done.store(true, std::memory_order_release);
}

void Server::DispatchFrame(const ConnPtr& conn, Frame frame) {
  const uint8_t op = frame.header.opcode;
  const uint64_t id = frame.header.request_id;
  if ((frame.header.flags & kFlagReply) != 0 || !KnownOpcode(op)) {
    // Typed rejection; the stream is still framed, so the connection
    // stays usable.
    const WireError code = (frame.header.flags & kFlagReply)
                               ? WireError::kMalformed
                               : WireError::kUnknownOpcode;
    if (op < kOpcodeLimit) {
      counters_.ops[op].errors.fetch_add(1, std::memory_order_relaxed);
    }
    SendReply(conn, op, id, EncodeErrorReply(code, WireErrorName(code)));
    return;
  }
  // The rejection reason is decided under the same lock hold as the
  // admission decision itself; re-deriving it from a second lock
  // acquisition could misreport BUSY as SHUTTING_DOWN if Stop() began
  // in between.
  WireError code;
  {
    MutexLock lock(queue_mu_);
    if (draining_ || stop_workers_) {
      counters_.shutdown_rejected.fetch_add(1, std::memory_order_relaxed);
      code = WireError::kShuttingDown;
    } else if (queue_.size() >= options_.queue_capacity) {
      counters_.busy_rejected.fetch_add(1, std::memory_order_relaxed);
      code = WireError::kBusy;
    } else {
      conn->pending.fetch_add(1, std::memory_order_acq_rel);
      queue_.push_back(Request{conn, std::move(frame)});
      queue_cv_.NotifyOne();
      return;
    }
  }
  // Rejected: emit the backpressure / drain reply from the reader thread
  // so a saturated worker pool can't delay the rejection.
  SendReply(conn, op, id, EncodeErrorReply(code, WireErrorName(code)));
}

// --------------------------------------------------------------- workers

void Server::WorkerLoop() {
  for (;;) {
    Request req;
    {
      MutexLock lock(queue_mu_);
      while (!stop_workers_ && queue_.empty()) queue_cv_.Wait(queue_mu_);
      if (queue_.empty()) return;  // stop_workers_ and nothing left
      req = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    HandleRequest(req);
    {
      MutexLock lock(queue_mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) drain_cv_.NotifyAll();
    }
  }
}

void Server::HandleRequest(const Request& req) {
  const uint8_t op = req.frame.header.opcode;
  const auto t0 = std::chrono::steady_clock::now();
  bool is_error = false;
  const std::string payload = ExecuteRequest(req.frame, &is_error);
  const uint64_t us = MicrosSince(t0);

  OpcodeCounters& oc = counters_.ops[op];
  oc.count.fetch_add(1, std::memory_order_relaxed);
  if (is_error) oc.errors.fetch_add(1, std::memory_order_relaxed);
  oc.total_micros.fetch_add(us, std::memory_order_relaxed);
  BumpMax(&oc.max_micros, us);

  SendReply(req.conn, op, req.frame.header.request_id, payload);
  req.conn->pending.fetch_sub(1, std::memory_order_acq_rel);
}

std::string Server::ExecuteRequest(const Frame& frame, bool* is_error) {
  *is_error = false;
  const auto opcode = static_cast<Opcode>(frame.header.opcode);
  auto malformed = [&] {
    *is_error = true;
    return EncodeErrorReply(WireError::kMalformed,
                            "bounds-checked payload decode failed");
  };
  auto engine_error = [&](const Status& s) {
    // The typed Status crosses the wire losslessly: its code maps
    // through the Status <-> WireError table and the message rides in
    // the reply body, so the client rebuilds the same Status.
    *is_error = true;
    return EncodeErrorReply(StatusCodeToWireError(s.code()), s.message());
  };

  switch (opcode) {
    case Opcode::kPing:
      return EncodeEmptyReply();

    case Opcode::kWindow: {
      Rect w;
      if (!DecodeWindowRequest(frame.payload, &w)) return malformed();
      const uint64_t e0 = index_->write_epoch();
      Result<std::vector<ObjectId>> r =
          (exec_ != nullptr && w.valid() &&
           w.area() >= options_.parallel_window_area)
              ? exec_->ParallelWindowQuery(w)
              : index_->WindowQuery(w);
      const uint64_t e1 = index_->write_epoch();
      if (!r.ok()) return engine_error(r.status());
      return EncodeIdListReply(e0, e1, r.value());
    }

    case Opcode::kPoint: {
      Point p;
      if (!DecodePointRequest(frame.payload, &p)) return malformed();
      const uint64_t e0 = index_->write_epoch();
      auto r = index_->PointQuery(p);
      const uint64_t e1 = index_->write_epoch();
      if (!r.ok()) return engine_error(r.status());
      return EncodeIdListReply(e0, e1, r.value());
    }

    case Opcode::kKnn: {
      Point p;
      uint32_t k;
      if (!DecodeKnnRequest(frame.payload, &p, &k)) return malformed();
      const uint64_t e0 = index_->write_epoch();
      auto r = index_->NearestNeighbors(p, k);
      const uint64_t e1 = index_->write_epoch();
      if (!r.ok()) return engine_error(r.status());
      return EncodeKnnReply(e0, e1, r.value());
    }

    case Opcode::kApply: {
      // The trailing durability byte is a v2 feature: a v1 frame is
      // parsed strictly (trailing byte -> malformed), matching what a
      // pre-v2 server would do.
      WriteBatch batch;
      Durability durability = Durability::kDurable;
      const bool v2 = frame.header.version >= 2;
      if (!DecodeApplyRequest(frame.payload, &batch,
                              v2 ? &durability : nullptr)) {
        return malformed();
      }
      // kDurable blocks this worker until the group-commit fsync (or
      // commits synchronously off-pipeline); kPublished acks as soon as
      // readers can see the batch.
      auto r = index_->ApplyBatch(batch, durability);
      if (!r.ok()) return engine_error(r.status());
      return EncodeApplyReply(index_->write_epoch(), r.value());
    }

    case Opcode::kStats:
      return EncodeStatsReply(StatsJson());

    case Opcode::kShutdown: {
      {
        MutexLock lock(shutdown_mu_);
        shutdown_requested_ = true;
      }
      shutdown_cv_.NotifyAll();
      return EncodeEmptyReply();
    }
  }
  *is_error = true;
  return EncodeErrorReply(WireError::kUnknownOpcode,
                          WireErrorName(WireError::kUnknownOpcode));
}

void Server::SendReply(const ConnPtr& conn, uint8_t opcode,
                       uint64_t request_id, std::string_view payload) {
  // Replies are always v1-encodable, so they are marked with the lowest
  // version — a v1 client talking to this server never sees a frame it
  // must reject.
  const std::string frame =
      BuildFrame(static_cast<Opcode>(opcode), kFlagReply, request_id,
                 payload, kMinWireVersion);
  MutexLock lock(conn->write_mu);
  if (conn->closed.load(std::memory_order_acquire)) return;
  Status s = WriteFully(conn->sock, frame.data(), frame.size());
  if (!s.ok()) {
    // Peer is gone; the reader thread notices via recv and cleans up.
    conn->closed.store(true, std::memory_order_release);
    conn->sock.ShutdownBoth();
  }
}

// ----------------------------------------------------------------- stats

std::string Server::StatsJson() const {
  JsonWriter w;
  w.BeginObject();

  w.Key("server").BeginObject();
  w.Key("connections").BeginObject();
  w.Field("accepted", counters_.accepted.load(std::memory_order_relaxed));
  w.Field("closed", counters_.closed.load(std::memory_order_relaxed));
  w.Field("idle_closed",
          counters_.idle_closed.load(std::memory_order_relaxed));
  w.EndObject();

  {
    size_t depth, in_flight;
    {
      MutexLock lock(queue_mu_);
      depth = queue_.size();
      in_flight = in_flight_;
    }
    w.Key("admission").BeginObject();
    w.Field("queue_depth", static_cast<uint64_t>(depth));
    w.Field("queue_capacity",
            static_cast<uint64_t>(options_.queue_capacity));
    w.Field("in_flight", static_cast<uint64_t>(in_flight));
    w.Field("busy_rejected",
            counters_.busy_rejected.load(std::memory_order_relaxed));
    w.Field("shutdown_rejected",
            counters_.shutdown_rejected.load(std::memory_order_relaxed));
    w.EndObject();
  }

  w.Key("frames").BeginObject();
  w.Field("received", counters_.frames.load(std::memory_order_relaxed));
  w.Field("framing_errors",
          counters_.framing_errors.load(std::memory_order_relaxed));
  w.EndObject();

  w.Key("ops").BeginObject();
  for (uint8_t op = 1; op < kOpcodeLimit; ++op) {
    const OpcodeCounters& oc = counters_.ops[op];
    const uint64_t count = oc.count.load(std::memory_order_relaxed);
    w.Key(OpcodeName(static_cast<Opcode>(op))).BeginObject();
    w.Field("count", count);
    w.Field("errors", oc.errors.load(std::memory_order_relaxed));
    const uint64_t total =
        oc.total_micros.load(std::memory_order_relaxed);
    w.Field("avg_us",
            count ? static_cast<double>(total) / count : 0.0);
    w.Field("max_us", oc.max_micros.load(std::memory_order_relaxed));
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();  // server

  w.Key("engine").BeginObject();
  w.Field("objects", index_->object_count());
  w.Field("write_epoch", index_->write_epoch());
  AppendJson(&w, "io", index_->pool()->pager()->io_stats());
  w.EndObject();

  w.EndObject();
  return w.str();
}

}  // namespace net
}  // namespace zdb
