// Copyright (c) zdb authors. Licensed under the MIT license.

#include "server/server.h"

#include "repl/record.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace zdb {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t MicrosSince(Clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            t0)
          .count());
}

void BumpMax(std::atomic<uint64_t>* slot, uint64_t v) {
  uint64_t cur = slot->load(std::memory_order_relaxed);
  while (v > cur &&
         !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Whole milliseconds until `when` (0 if already due), saturated into
/// an int for epoll_wait.
int MsUntil(Clock::time_point now, Clock::time_point when) {
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(when - now)
          .count();
  if (ms <= 0) return 0;
  if (ms > 60 * 1000) return 60 * 1000;
  return static_cast<int>(ms) + 1;  // round up: don't spin before the deadline
}

/// Merges a deadline into an epoll timeout (-1 = none yet).
int MinTimeout(int current, int candidate) {
  return current < 0 ? candidate : std::min(current, candidate);
}

/// How long a listener sits out after fd exhaustion before re-arming.
constexpr std::chrono::milliseconds kAcceptBackoff{10};

/// Per-event read budget. Level-triggered epoll re-fires for whatever
/// is left, so a bounded burst keeps one firehose connection from
/// starving its net thread's siblings.
constexpr size_t kReadBudget = 256 * 1024;

/// Compact the flushed prefix of a write buffer once it crosses this
/// size, so a long partial-flush sequence cannot pin stale bytes.
constexpr size_t kCompactThreshold = 256 * 1024;

}  // namespace

Status ServerOptions::Validate() const {
  if (!tcp && unix_path.empty()) {
    return Status::InvalidArgument("no listener configured");
  }
  if (workers == 0) {
    return Status::InvalidArgument("server needs at least one worker");
  }
  if (net_threads == 0) {
    return Status::InvalidArgument("server needs at least one net thread");
  }
  if (role == ServerRole::kFollower) {
    if (leader_endpoint.empty()) {
      return Status::InvalidArgument(
          "follower role requires a leader endpoint "
          "(tcp://host:port or unix://path)");
    }
    ZDB_RETURN_IF_ERROR(ParseEndpoint(leader_endpoint).status());
  } else if (!leader_endpoint.empty()) {
    return Status::InvalidArgument(
        "leader_endpoint is only meaningful for the follower role");
  }
  return Status::OK();
}

Server::Server(SpatialIndex* index, ServerOptions options)
    : index_(index), options_(std::move(options)) {}

Server::Server(DB* db, ServerOptions options)
    : index_(db->index()), db_(db), options_(std::move(options)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::AlreadyExists("server already started");
  }
  ZDB_RETURN_IF_ERROR(options_.Validate());
  if (options_.role != ServerRole::kStandalone && db_ == nullptr) {
    return Status::InvalidArgument(
        "replication roles require the DB-serving constructor");
  }

  if (options_.tcp) {
    ZDB_ASSIGN_OR_RETURN(
        tcp_listener_,
        TcpListen(options_.host, options_.port, options_.listen_backlog));
    ZDB_ASSIGN_OR_RETURN(port_, LocalPort(tcp_listener_));
    ZDB_RETURN_IF_ERROR(SetNonBlocking(tcp_listener_));
  }
  if (!options_.unix_path.empty()) {
    ZDB_ASSIGN_OR_RETURN(
        unix_listener_,
        UnixListen(options_.unix_path, options_.listen_backlog));
    ZDB_RETURN_IF_ERROR(SetNonBlocking(unix_listener_));
  }
  if (options_.exec_threads > 0 && options_.parallel_window_area >= 0) {
    // Under the DB constructor the DB wires the executor (a sharded DB
    // hands back a scatter-gather executor over its shard engines).
    exec_ = db_ != nullptr
                ? db_->NewExecutor(options_.exec_threads)
                : std::make_unique<QueryExecutor>(index_,
                                                  options_.exec_threads);
  }

  // Replication roles, wired before serving begins so no committed
  // batch can slip past the sink and no follower query can observe a
  // half-started applier.
  if (options_.role == ServerRole::kLeader) {
    repl::ShipperOptions sopt;
    sopt.retain_records = options_.repl_retain_records;
    sopt.window = options_.repl_window;
    shipper_ =
        std::make_unique<repl::LogShipper>(db_->write_epoch(), sopt);
    ZDB_RETURN_IF_ERROR(db_->SetCommitSink(shipper_.get()));
    shipper_->Start();
  } else if (options_.role == ServerRole::kFollower) {
    repl::ApplierOptions aopt;
    aopt.leader_endpoint = options_.leader_endpoint;
    aopt.initial_applied_epoch = options_.repl_initial_applied_epoch;
    applier_ = std::make_unique<repl::Applier>(db_, aopt);
    ZDB_RETURN_IF_ERROR(applier_->Start());
  }

  // Create every fallible per-thread resource before spawning anything,
  // so a failure here unwinds through plain destructors.
  net_.reserve(options_.net_threads);
  for (size_t i = 0; i < options_.net_threads; ++i) {
    auto nt = std::make_unique<NetThread>();
    ZDB_ASSIGN_OR_RETURN(nt->epoll, Epoll::Create());
    ZDB_ASSIGN_OR_RETURN(nt->wakeup, EventFd::Create());
    net_.push_back(std::move(nt));
  }

  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  for (size_t i = 0; i < net_.size(); ++i) {
    net_[i]->thread = std::thread([this, i] { NetLoop(i); });
  }
  return Status::OK();
}

void Server::Stop() {
  if (!started_.load() || stopped_.exchange(true)) return;

  // 1. Refuse new connections. shutdown(2) on a listening socket makes
  //    the kernel refuse connects and fails pending/future accepts with
  //    EINVAL, which the accept path classifies as kShutdown and
  //    disarms — without racing the fd number (it stays allocated until
  //    the close at the bottom).
  tcp_listener_.ShutdownBoth();
  unix_listener_.ShutdownBoth();

  // 2. Drain: frames arriving from here on are answered SHUTTING_DOWN
  //    by the net threads; requests already admitted keep executing and
  //    buffer their replies.
  {
    MutexLock lock(queue_mu_);
    draining_ = true;
    while (!(queue_.empty() && in_flight_ == 0)) drain_cv_.Wait(queue_mu_);
    // 3. Quiesced — stop the worker pool.
    stop_workers_ = true;
  }
  queue_cv_.NotifyAll();
  for (auto& w : workers_) w.join();
  workers_.clear();

  // Replication teardown sits between the worker join and the net-thread
  // join: workers are gone (no new SUBSCRIBEs), but the net threads are
  // still alive — the shipper's send callbacks resolve connections
  // through net_, so it must be fully stopped before net_.clear().
  if (applier_ != nullptr) applier_->Stop();
  if (shipper_ != nullptr) {
    // Detach first so no commit can reach OnCommit after the join.
    (void)db_->SetCommitSink(nullptr);
    shipper_->Stop();
  }

  // 4. Net threads flush whatever replies are still buffered (bounded
  //    by drain_flush_ms against stuck peers), close their connections,
  //    and exit.
  for (auto& nt : net_) {
    {
      MutexLock lock(nt->mu);
      nt->drain = true;
    }
    nt->wakeup.Signal();
  }
  for (auto& nt : net_) {
    if (nt->thread.joinable()) nt->thread.join();
  }
  net_.clear();

  tcp_listener_.Close();
  unix_listener_.Close();
  if (!options_.unix_path.empty()) {
    ::unlink(options_.unix_path.c_str());
  }
  exec_.reset();
}

bool Server::WaitForShutdownRequest(int timeout_ms) {
  MutexLock lock(shutdown_mu_);
  if (timeout_ms < 0) {
    while (!shutdown_requested_) shutdown_cv_.Wait(shutdown_mu_);
    return true;
  }
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (!shutdown_requested_) {
    if (!shutdown_cv_.WaitUntil(shutdown_mu_, deadline)) {
      return shutdown_requested_;
    }
  }
  return true;
}

// ------------------------------------------------------ net event loops

void Server::NetLoop(size_t idx) {
  NetThread& nt = *net_[idx];
  std::vector<char> read_buf(64 * 1024);

  // Net thread 0 owns the listeners.
  std::vector<ListenerState> listeners;
  if (idx == 0) {
    if (tcp_listener_.valid()) listeners.push_back({&tcp_listener_, false, {}, false});
    if (unix_listener_.valid()) listeners.push_back({&unix_listener_, false, {}, false});
    for (ListenerState& ls : listeners) {
      const int fd = ls.sock->fd();
      ls.armed = nt.epoll.Add(fd, EPOLLIN, static_cast<uint64_t>(fd)).ok();
    }
  }
  (void)nt.epoll.Add(nt.wakeup.fd(), EPOLLIN,
                     static_cast<uint64_t>(nt.wakeup.fd()));

  auto now = Clock::now();
  auto next_idle_scan = now;
  bool drain_mode = false;
  Clock::time_point drain_deadline{};
  epoll_event events[128];

  for (;;) {
    now = Clock::now();

    if (!drain_mode) {
      bool drain_now;
      {
        MutexLock lock(nt.mu);
        drain_now = nt.drain;
      }
      if (drain_now) {
        // Entering drain: no new reads anywhere, flush what is
        // buffered, close each connection the moment it runs dry.
        drain_mode = true;
        drain_deadline =
            now + std::chrono::milliseconds(
                      std::max(0, options_.drain_flush_ms));
        ProcessQueues(nt);  // pick up last-minute replies first
        std::vector<ConnPtr> snapshot;
        snapshot.reserve(nt.conns.size());
        for (auto& [fd, conn] : nt.conns) snapshot.push_back(conn);
        for (const ConnPtr& conn : snapshot) {
          conn->read_paused = true;
          conn->close_after_flush = true;
          UpdateInterest(nt, conn);
          FlushConnection(nt, conn);
        }
      }
    }
    if (drain_mode && (nt.conns.empty() || now >= drain_deadline)) break;

    int timeout = -1;
    if (drain_mode) {
      timeout = MsUntil(now, drain_deadline);
    } else {
      if (options_.idle_timeout_ms > 0) {
        timeout = MinTimeout(timeout, MsUntil(now, next_idle_scan));
      }
      for (const ListenerState& ls : listeners) {
        if (ls.backed_off) {
          timeout = MinTimeout(timeout, MsUntil(now, ls.backoff_until));
        }
      }
    }

    auto n = nt.epoll.Wait(events, 128, timeout);
    if (!n.ok()) break;  // fatal epoll failure; teardown below
    now = Clock::now();

    for (int i = 0; i < n.value(); ++i) {
      const uint64_t tag = events[i].data.u64;
      const uint32_t ev = events[i].events;
      if (tag == static_cast<uint64_t>(nt.wakeup.fd())) {
        nt.wakeup.Drain();
        continue;
      }
      ListenerState* ls = nullptr;
      for (ListenerState& cand : listeners) {
        if (tag == static_cast<uint64_t>(cand.sock->fd())) ls = &cand;
      }
      if (ls != nullptr) {
        if (drain_mode) {
          if (ls->armed) {
            (void)nt.epoll.Del(ls->sock->fd());
            ls->armed = false;
          }
        } else {
          HandleAccept(nt, *ls);
        }
        continue;
      }
      auto it = nt.conns.find(static_cast<int>(tag));
      if (it == nt.conns.end()) continue;  // closed earlier this batch
      ConnPtr conn = it->second;
      // Flush before reading: draining the write buffer both finishes
      // EPOLLOUT-driven partial writes and lifts flow-control pauses.
      if ((ev & EPOLLOUT) != 0) FlushConnection(nt, conn);
      if (conn->closed.load(std::memory_order_acquire)) continue;
      if ((ev & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0 && !drain_mode) {
        HandleReadable(nt, conn, read_buf.data(), read_buf.size());
      }
    }

    ProcessQueues(nt);

    if (!drain_mode) {
      for (ListenerState& ls : listeners) {
        if (ls.backed_off && now >= ls.backoff_until) {
          ls.backed_off = false;
          const int fd = ls.sock->fd();
          if (!ls.armed &&
              nt.epoll.Add(fd, EPOLLIN, static_cast<uint64_t>(fd)).ok()) {
            ls.armed = true;
          }
        }
      }
      if (options_.idle_timeout_ms > 0 && now >= next_idle_scan) {
        next_idle_scan = IdleScan(nt, now);
      }
    }
  }

  // Teardown: drop whatever is still open (drain deadline passed, or a
  // fatal epoll error). Buffered bytes for these peers are lost, which
  // is the contract drain_flush_ms bounds.
  std::vector<ConnPtr> leftover;
  leftover.reserve(nt.conns.size());
  for (auto& [fd, conn] : nt.conns) leftover.push_back(conn);
  for (const ConnPtr& conn : leftover) CloseConnection(nt, conn, false);
}

void Server::HandleAccept(NetThread& nt, ListenerState& ls) {
  // Bounded burst: level-triggered epoll re-fires if more are pending.
  for (int burst = 0; burst < 128; ++burst) {
    Socket s;
    AcceptOutcome outcome;
    const int injected = options_.accept_fault_injection
                             ? options_.accept_fault_injection()
                             : 0;
    if (injected != 0) {
      outcome = ClassifyAcceptError(injected);
    } else {
      outcome = AcceptNonBlocking(*ls.sock, &s);
    }
    switch (outcome) {
      case AcceptOutcome::kAccepted: {
        const int one = 1;
        // No-op (EOPNOTSUPP) on unix-domain sockets.
        (void)::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                           sizeof(one));
        counters_.accepted.fetch_add(1, std::memory_order_relaxed);
        auto conn = std::make_shared<Connection>();
        conn->sock = std::move(s);
        conn->token =
            next_conn_token_.fetch_add(1, std::memory_order_relaxed);
        conn->owner = next_owner_;
        next_owner_ = (next_owner_ + 1) % net_.size();
        NetThread& owner = *net_[conn->owner];
        {
          MutexLock lock(owner.mu);
          owner.incoming.push_back(std::move(conn));
        }
        owner.wakeup.Signal();
        continue;
      }
      case AcceptOutcome::kWouldBlock:
        return;
      case AcceptOutcome::kRetry:
        // ECONNABORTED & friends: the peer is gone, the listener is
        // fine. The pre-epoll server exited its accept loop here,
        // permanently killing the listener.
        counters_.accept_retries.fetch_add(1, std::memory_order_relaxed);
        continue;
      case AcceptOutcome::kFdExhausted:
        // Out of fds: accepting again immediately would spin. Sit the
        // listener out briefly; pending connections stay in the
        // kernel's accept queue meanwhile.
        counters_.accept_retries.fetch_add(1, std::memory_order_relaxed);
        counters_.accept_backoffs.fetch_add(1, std::memory_order_relaxed);
        ls.backed_off = true;
        ls.backoff_until = Clock::now() + kAcceptBackoff;
        if (ls.armed) {
          (void)nt.epoll.Del(ls.sock->fd());
          ls.armed = false;
        }
        return;
      case AcceptOutcome::kShutdown:
        // Stop() shut the listener down (or it is truly dead) — the
        // only outcome that disarms it for good.
        if (ls.armed) {
          (void)nt.epoll.Del(ls.sock->fd());
          ls.armed = false;
        }
        ls.backed_off = false;
        return;
    }
  }
}

void Server::ProcessQueues(NetThread& nt) {
  std::vector<ConnPtr> incoming;
  std::vector<ConnPtr> flush;
  bool drain;
  {
    MutexLock lock(nt.mu);
    incoming.swap(nt.incoming);
    flush.swap(nt.flush_queue);
    drain = nt.drain;
  }
  const auto now = Clock::now();
  for (ConnPtr& conn : incoming) {
    if (drain) {
      // Raced Stop(): never served, close immediately.
      conn->closed.store(true, std::memory_order_release);
      conn->sock.Close();
      counters_.closed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    conn->last_active = now;
    const int fd = conn->sock.fd();
    if (!nt.epoll.Add(fd, EPOLLIN, static_cast<uint64_t>(fd)).ok()) {
      conn->closed.store(true, std::memory_order_release);
      conn->sock.Close();
      counters_.closed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    nt.conns.emplace(fd, std::move(conn));
  }
  for (const ConnPtr& conn : flush) {
    if (conn->closed.load(std::memory_order_acquire)) continue;
    FlushConnection(nt, conn);
  }
}

void Server::HandleReadable(NetThread& nt, const ConnPtr& conn, char* buf,
                            size_t buf_cap) {
  if (conn->closed.load(std::memory_order_acquire) || conn->read_paused) {
    return;
  }
  size_t budget = kReadBudget;
  for (;;) {
    size_t n = 0;
    auto ev = TryRead(conn->sock, buf, buf_cap, &n);
    if (!ev.ok() || ev.value() == IoEvent::kEof) {
      // Peer closed or reset. Like the thread-per-connection server,
      // replies still in flight for this peer are dropped.
      CloseConnection(nt, conn, false);
      return;
    }
    if (ev.value() == IoEvent::kWouldBlock) break;
    conn->last_active = Clock::now();
    conn->assembler.Feed(buf, n);

    for (;;) {
      Frame frame;
      WireError err;
      FrameHeader err_header;
      const auto next = conn->assembler.Poll(&frame, &err, &err_header);
      if (next == FrameAssembler::Next::kNeedMore) break;
      if (next == FrameAssembler::Next::kError) {
        // Framing is lost: reply with the typed error, then close once
        // the reply has been flushed. No further reads.
        counters_.framing_errors.fetch_add(1, std::memory_order_relaxed);
        SendReply(conn, err_header.opcode, err_header.request_id,
                  EncodeErrorReply(err, WireErrorName(err)));
        conn->close_after_flush = true;
        conn->read_paused = true;
        UpdateInterest(nt, conn);
        return;
      }
      counters_.frames.fetch_add(1, std::memory_order_relaxed);
      DispatchFrame(conn, std::move(frame));
    }

    if (n < buf_cap || n >= budget) break;  // drained, or burst budget spent
    budget -= n;
  }

  // Flow control: a peer that sends faster than it reads replies stops
  // being read once its buffered output crosses the limit. Reading
  // resumes in FlushConnection below the low watermark.
  size_t buffered;
  {
    MutexLock lock(conn->write_mu);
    buffered = conn->out_buf.size() - conn->out_off;
  }
  if (!conn->read_paused && buffered > options_.out_buffer_limit) {
    conn->read_paused = true;
    counters_.read_pauses.fetch_add(1, std::memory_order_relaxed);
    UpdateInterest(nt, conn);
  }
}

void Server::FlushConnection(NetThread& nt, const ConnPtr& conn) {
  if (conn->closed.load(std::memory_order_acquire)) return;
  bool fatal = false;
  bool empty;
  size_t buffered;
  {
    MutexLock lock(conn->write_mu);
    conn->flush_queued = false;
    while (conn->out_off < conn->out_buf.size()) {
      size_t n = 0;
      auto ev =
          WriteSome(conn->sock, conn->out_buf.data() + conn->out_off,
                    conn->out_buf.size() - conn->out_off, &n);
      if (!ev.ok()) {
        fatal = true;
        break;
      }
      if (ev.value() == IoEvent::kWouldBlock) break;
      conn->out_off += n;
    }
    empty = conn->out_off >= conn->out_buf.size();
    if (empty) {
      conn->out_buf.clear();
      conn->out_off = 0;
    } else if (conn->out_off > kCompactThreshold) {
      conn->out_buf.erase(0, conn->out_off);
      conn->out_off = 0;
    }
    // While a partial write waits on EPOLLOUT, keep flush_queued set so
    // workers appending more output don't queue redundant wakeups.
    if (!empty && !fatal) conn->flush_queued = true;
    buffered = conn->out_buf.size() - conn->out_off;
  }
  if (fatal) {
    CloseConnection(nt, conn, false);
    return;
  }
  if (empty && conn->close_after_flush) {
    CloseConnection(nt, conn, false);
    return;
  }
  bool interest_changed = false;
  const bool want_write = !empty;
  if (want_write != conn->want_write) {
    conn->want_write = want_write;
    interest_changed = true;
  }
  if (conn->read_paused && !conn->close_after_flush &&
      buffered < options_.out_buffer_limit / 2) {
    conn->read_paused = false;
    interest_changed = true;
  }
  if (interest_changed) UpdateInterest(nt, conn);
}

void Server::UpdateInterest(NetThread& nt, const ConnPtr& conn) {
  uint32_t ev = 0;
  if (!conn->read_paused) ev |= EPOLLIN;
  if (conn->want_write) ev |= EPOLLOUT;
  const int fd = conn->sock.fd();
  if (fd < 0) return;
  (void)nt.epoll.Mod(fd, ev, static_cast<uint64_t>(fd));
}

void Server::CloseConnection(NetThread& nt, const ConnPtr& conn,
                             bool idle) {
  const int fd = conn->sock.fd();
  if (!conn->closed.exchange(true, std::memory_order_acq_rel)) {
    counters_.closed.fetch_add(1, std::memory_order_relaxed);
    if (idle) counters_.idle_closed.fetch_add(1, std::memory_order_relaxed);
  }
  if (fd >= 0) {
    (void)nt.epoll.Del(fd);
    conn->sock.ShutdownBoth();
    conn->sock.Close();
    nt.conns.erase(fd);
  }
  if (shipper_ != nullptr) shipper_->Unsubscribe(conn->token);
}

std::chrono::steady_clock::time_point Server::IdleScan(
    NetThread& nt, std::chrono::steady_clock::time_point now) {
  const auto idle = std::chrono::milliseconds(options_.idle_timeout_ms);
  std::vector<ConnPtr> victims;
  for (auto& [fd, conn] : nt.conns) {
    // A subscribed follower is silent between commits by design; it is
    // never idle-reaped.
    if (conn->subscriber.load(std::memory_order_acquire)) continue;
    // The idle clock only ticks while nothing is in flight and nothing
    // is buffered: a client quietly waiting for a slow reply (or slowly
    // draining a large one) is not idle.
    if (conn->pending.load(std::memory_order_acquire) > 0) {
      conn->last_active = now;
      continue;
    }
    size_t buffered;
    {
      MutexLock lock(conn->write_mu);
      buffered = conn->out_buf.size() - conn->out_off;
    }
    if (buffered > 0) {
      conn->last_active = now;
      continue;
    }
    if (now - conn->last_active >= idle) victims.push_back(conn);
  }
  for (const ConnPtr& conn : victims) CloseConnection(nt, conn, true);
  // Scan at a quarter of the timeout: worst-case reap latency is then
  // 1.25x idle_timeout_ms, with bounded scan frequency either way.
  const int interval =
      std::clamp(options_.idle_timeout_ms / 4, 10, 1000);
  return now + std::chrono::milliseconds(interval);
}

// ----------------------------------------------------- request dispatch

void Server::DispatchFrame(const ConnPtr& conn, Frame frame) {
  const uint8_t op = frame.header.opcode;
  const uint64_t id = frame.header.request_id;
  if ((frame.header.flags & kFlagReply) != 0 || !KnownOpcode(op)) {
    // Typed rejection; the stream is still framed, so the connection
    // stays usable.
    const WireError code = (frame.header.flags & kFlagReply)
                               ? WireError::kMalformed
                               : WireError::kUnknownOpcode;
    if (op < kOpcodeLimit) {
      counters_.ops[op].errors.fetch_add(1, std::memory_order_relaxed);
    }
    SendReply(conn, op, id, EncodeErrorReply(code, WireErrorName(code)));
    return;
  }
  if (op == static_cast<uint8_t>(Opcode::kLogAck)) {
    // Fire-and-forget flow control, consumed inline on the net thread
    // (no reply, no admission) so a saturated worker pool can never
    // stall the shipping window it is supposed to open.
    OpcodeCounters& oc = counters_.ops[op];
    uint64_t applied = 0;
    if (shipper_ != nullptr &&
        repl::DecodeLogAck(frame.payload, &applied)) {
      shipper_->Ack(conn->token, applied);
      oc.count.fetch_add(1, std::memory_order_relaxed);
    } else {
      oc.errors.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  // The rejection reason is decided under the same lock hold as the
  // admission decision itself; re-deriving it from a second lock
  // acquisition could misreport BUSY as SHUTTING_DOWN if Stop() began
  // in between.
  WireError code;
  {
    MutexLock lock(queue_mu_);
    if (draining_ || stop_workers_) {
      counters_.shutdown_rejected.fetch_add(1, std::memory_order_relaxed);
      code = WireError::kShuttingDown;
    } else if (queue_.size() >= options_.queue_capacity) {
      counters_.busy_rejected.fetch_add(1, std::memory_order_relaxed);
      code = WireError::kBusy;
    } else {
      conn->pending.fetch_add(1, std::memory_order_acq_rel);
      queue_.push_back(Request{conn, std::move(frame)});
      queue_cv_.NotifyOne();
      return;
    }
  }
  // Rejected: emit the backpressure / drain reply from the net thread
  // so a saturated worker pool can't delay the rejection.
  SendReply(conn, op, id, EncodeErrorReply(code, WireErrorName(code)));
}

// --------------------------------------------------------------- workers

void Server::WorkerLoop() {
  for (;;) {
    Request req;
    {
      MutexLock lock(queue_mu_);
      while (!stop_workers_ && queue_.empty()) queue_cv_.Wait(queue_mu_);
      if (queue_.empty()) return;  // stop_workers_ and nothing left
      req = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    HandleRequest(req);
    {
      MutexLock lock(queue_mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) drain_cv_.NotifyAll();
    }
  }
}

void Server::HandleRequest(const Request& req) {
  const uint8_t op = req.frame.header.opcode;
  const auto t0 = Clock::now();
  bool is_error = false;
  if (op == static_cast<uint8_t>(Opcode::kSubscribe)) {
    // Subscribe sends its own reply: the reply must be buffered before
    // the cursor is activated, or the first pushed record could precede
    // it on the wire.
    is_error = HandleSubscribe(req);
  } else {
    const std::string payload = ExecuteRequest(req.frame, &is_error);
    SendReply(req.conn, op, req.frame.header.request_id, payload);
  }
  const uint64_t us = MicrosSince(t0);

  OpcodeCounters& oc = counters_.ops[op];
  oc.count.fetch_add(1, std::memory_order_relaxed);
  if (is_error) oc.errors.fetch_add(1, std::memory_order_relaxed);
  oc.total_micros.fetch_add(us, std::memory_order_relaxed);
  BumpMax(&oc.max_micros, us);

  req.conn->pending.fetch_sub(1, std::memory_order_acq_rel);
}

bool Server::HandleSubscribe(const Request& req) {
  const ConnPtr& conn = req.conn;
  const uint64_t id = req.frame.header.request_id;
  const auto op = static_cast<uint8_t>(Opcode::kSubscribe);
  auto reject = [&](WireError code, std::string_view msg) {
    SendReply(conn, op, id, EncodeErrorReply(code, msg));
    return true;
  };
  if (shipper_ == nullptr) {
    if (options_.role == ServerRole::kFollower) {
      // The message is the leader's URI; clients redirect there.
      return reject(WireError::kNotLeader, options_.leader_endpoint);
    }
    return reject(WireError::kInvalidArgument,
                  "server is not a replication leader");
  }
  uint64_t last_applied = 0;
  if (!repl::DecodeSubscribeRequest(req.frame.payload, &last_applied)) {
    return reject(WireError::kMalformed,
                  "bounds-checked payload decode failed");
  }
  // The shipper outlives every connection (Stop() tears it down before
  // the net threads), but a connection can die while the shipper still
  // holds its cursor — the send callback must not keep the Connection
  // alive, so it goes through a weak_ptr and drops frames for the dead.
  std::weak_ptr<Connection> weak = conn;
  auto send = [this, weak](std::string frame) {
    if (ConnPtr c = weak.lock()) PushFrame(c, std::move(frame));
  };
  auto head = shipper_->Subscribe(conn->token, last_applied,
                                  std::move(send));
  if (!head.ok()) {
    return reject(StatusCodeToWireError(head.status().code()),
                  head.status().message());
  }
  conn->subscriber.store(true, std::memory_order_release);
  // Reply first (buffered under the connection write lock), then unpark
  // the cursor: the reply always precedes the first pushed record.
  PushFrame(conn,
            BuildFrame(Opcode::kSubscribe, kFlagReply, id,
                       repl::EncodeSubscribeReply(head.value()),
                       /*version=*/3));
  shipper_->Activate(conn->token);
  return false;
}

std::string Server::ExecuteRequest(const Frame& frame, bool* is_error) {
  *is_error = false;
  const auto opcode = static_cast<Opcode>(frame.header.opcode);
  auto malformed = [&] {
    *is_error = true;
    return EncodeErrorReply(WireError::kMalformed,
                            "bounds-checked payload decode failed");
  };
  auto engine_error = [&](const Status& s) {
    // The typed Status crosses the wire losslessly: its code maps
    // through the Status <-> WireError table and the message rides in
    // the reply body, so the client rebuilds the same Status.
    *is_error = true;
    return EncodeErrorReply(StatusCodeToWireError(s.code()), s.message());
  };
  // Bounded-staleness admission (the v3 trailing bound on queries). A
  // leader or standalone node serves its own commits and is never
  // stale; only a follower can fall behind, and then the honest answer
  // is a typed rejection, not silently stale data.
  const bool v3 = frame.header.version >= 3;
  auto within_bound = [&](uint64_t max_lag) {
    if (max_lag == kNoStalenessBound || applier_ == nullptr) return true;
    return repl::WithinStaleness(applier_->leader_epoch(),
                                 applier_->applied_epoch(),
                                 applier_->connected(), max_lag);
  };
  auto stale_rejected = [&] {
    counters_.stale_rejected.fetch_add(1, std::memory_order_relaxed);
    *is_error = true;
    return EncodeErrorReply(WireError::kStaleRead,
                            "replication lag exceeds the requested bound");
  };

  switch (opcode) {
    case Opcode::kPing:
      return EncodeEmptyReply();

    case Opcode::kWindow: {
      Rect w;
      uint64_t max_lag = kNoStalenessBound;
      if (!DecodeWindowRequest(frame.payload, &w,
                               v3 ? &max_lag : nullptr)) {
        return malformed();
      }
      if (!within_bound(max_lag)) return stale_rejected();
      const bool parallel = exec_ != nullptr && w.valid() &&
                            w.area() >= options_.parallel_window_area;
      if (db_ != nullptr && db_->sharded()) {
        // Sharded: scatter-gather through the facade (each shard engine
        // pins its own epoch internally); the router epochs bracket the
        // states the query may have seen.
        const uint64_t e0 = db_->write_epoch();
        auto r = parallel ? exec_->ParallelWindowQuery(w) : db_->Window(w);
        const uint64_t e1 = db_->write_epoch();
        if (!r.ok()) return engine_error(r.status());
        return EncodeIdListReply(e0, e1, r.value());
      }
      if (!parallel && index_->snapshots_enabled()) {
        // Snapshot path: pin once so the reply can name the exact
        // committed epoch the answer reflects (e0 == e1 == the pin).
        // A group rollback can invalidate the pin mid-query; re-pin at
        // the re-published epoch and retry.
        for (int attempt = 0;; ++attempt) {
          const EpochPin pin = index_->PinEpoch();
          auto r = index_->WindowQueryAt(pin, w);
          if (!r.ok() && r.status().IsAborted() && attempt < 2) continue;
          if (!r.ok()) return engine_error(r.status());
          return EncodeIdListReply(pin.epoch(), pin.epoch(), r.value());
        }
      }
      // Parallel queries pin internally (or latch, with snapshots off);
      // the observed epochs bracket whichever state the query saw.
      const uint64_t e0 = index_->write_epoch();
      Result<std::vector<ObjectId>> r = parallel
                                            ? exec_->ParallelWindowQuery(w)
                                            : index_->WindowQuery(w);
      const uint64_t e1 = index_->write_epoch();
      if (!r.ok()) return engine_error(r.status());
      return EncodeIdListReply(e0, e1, r.value());
    }

    case Opcode::kPoint: {
      Point p;
      uint64_t max_lag = kNoStalenessBound;
      if (!DecodePointRequest(frame.payload, &p,
                              v3 ? &max_lag : nullptr)) {
        return malformed();
      }
      if (!within_bound(max_lag)) return stale_rejected();
      if (db_ != nullptr && db_->sharded()) {
        const uint64_t e0 = db_->write_epoch();
        auto r = db_->Point(p);
        const uint64_t e1 = db_->write_epoch();
        if (!r.ok()) return engine_error(r.status());
        return EncodeIdListReply(e0, e1, r.value());
      }
      if (index_->snapshots_enabled()) {
        for (int attempt = 0;; ++attempt) {
          const EpochPin pin = index_->PinEpoch();
          auto r = index_->PointQueryAt(pin, p);
          if (!r.ok() && r.status().IsAborted() && attempt < 2) continue;
          if (!r.ok()) return engine_error(r.status());
          return EncodeIdListReply(pin.epoch(), pin.epoch(), r.value());
        }
      }
      const uint64_t e0 = index_->write_epoch();
      auto r = index_->PointQuery(p);
      const uint64_t e1 = index_->write_epoch();
      if (!r.ok()) return engine_error(r.status());
      return EncodeIdListReply(e0, e1, r.value());
    }

    case Opcode::kKnn: {
      Point p;
      uint32_t k;
      uint64_t max_lag = kNoStalenessBound;
      if (!DecodeKnnRequest(frame.payload, &p, &k,
                            v3 ? &max_lag : nullptr)) {
        return malformed();
      }
      if (!within_bound(max_lag)) return stale_rejected();
      if (db_ != nullptr && db_->sharded()) {
        const uint64_t e0 = db_->write_epoch();
        auto r = db_->Nearest(p, k);
        const uint64_t e1 = db_->write_epoch();
        if (!r.ok()) return engine_error(r.status());
        return EncodeKnnReply(e0, e1, r.value());
      }
      if (index_->snapshots_enabled()) {
        for (int attempt = 0;; ++attempt) {
          const EpochPin pin = index_->PinEpoch();
          auto r = index_->NearestNeighborsAt(pin, p, k);
          if (!r.ok() && r.status().IsAborted() && attempt < 2) continue;
          if (!r.ok()) return engine_error(r.status());
          return EncodeKnnReply(pin.epoch(), pin.epoch(), r.value());
        }
      }
      const uint64_t e0 = index_->write_epoch();
      auto r = index_->NearestNeighbors(p, k);
      const uint64_t e1 = index_->write_epoch();
      if (!r.ok()) return engine_error(r.status());
      return EncodeKnnReply(e0, e1, r.value());
    }

    case Opcode::kApply: {
      if (options_.role == ServerRole::kFollower) {
        // Followers apply only what the leader ships; a direct write
        // would fork the replica. The reply message is the leader's
        // URI so clients can redirect without a directory service.
        counters_.not_leader_rejected.fetch_add(1,
                                                std::memory_order_relaxed);
        *is_error = true;
        return EncodeErrorReply(WireError::kNotLeader,
                                options_.leader_endpoint);
      }
      // The trailing durability byte is a v2 feature: a v1 frame is
      // parsed strictly (trailing byte -> malformed), matching what a
      // pre-v2 server would do.
      WriteBatch batch;
      Durability durability = Durability::kDurable;
      const bool v2 = frame.header.version >= 2;
      if (!DecodeApplyRequest(frame.payload, &batch,
                              v2 ? &durability : nullptr)) {
        return malformed();
      }
      // kDurable blocks this worker until the group-commit fsync (or
      // commits synchronously off-pipeline); kPublished acks as soon as
      // readers can see the batch. Sharded batches split by routing
      // prefix inside the router and overlap their per-shard fsyncs.
      // Writes always go through the DB facade when one exists: that is
      // where the replication commit sink hooks in, so bypassing it to
      // the raw index would commit without shipping.
      if (db_ != nullptr) {
        auto r = db_->Apply(batch, durability);
        if (!r.ok()) return engine_error(r.status());
        return EncodeApplyReply(db_->write_epoch(), r.value());
      }
      auto r = index_->ApplyBatch(batch, durability);
      if (!r.ok()) return engine_error(r.status());
      return EncodeApplyReply(index_->write_epoch(), r.value());
    }

    case Opcode::kStats:
      return EncodeStatsReply(StatsJson());

    case Opcode::kShutdown: {
      {
        MutexLock lock(shutdown_mu_);
        shutdown_requested_ = true;
      }
      shutdown_cv_.NotifyAll();
      return EncodeEmptyReply();
    }

    case Opcode::kSubscribe:
    case Opcode::kLogRecord:
    case Opcode::kLogAck:
      // kSubscribe executes in HandleSubscribe before this switch is
      // reached; the other two are leader-push / fire-and-forget frames
      // consumed on the net threads. Reaching here is a dispatch bug —
      // fall through to the typed rejection.
      break;
  }
  *is_error = true;
  return EncodeErrorReply(WireError::kUnknownOpcode,
                          WireErrorName(WireError::kUnknownOpcode));
}

void Server::SendReply(const ConnPtr& conn, uint8_t opcode,
                       uint64_t request_id, std::string_view payload) {
  // Replies are always v1-encodable, so they are marked with the lowest
  // version — a v1 client talking to this server never sees a frame it
  // must reject.
  PushFrame(conn, BuildFrame(static_cast<Opcode>(opcode), kFlagReply,
                             request_id, payload, kMinWireVersion));
}

void Server::PushFrame(const ConnPtr& conn, std::string frame) {
  bool enqueue = false;
  {
    MutexLock lock(conn->write_mu);
    if (conn->closed.load(std::memory_order_acquire)) return;  // peer gone
    conn->out_buf.append(frame);
    if (!conn->flush_queued) {
      conn->flush_queued = true;
      enqueue = true;
    }
  }
  if (enqueue) {
    NetThread& owner = *net_[conn->owner];
    {
      MutexLock lock(owner.mu);
      owner.flush_queue.push_back(conn);
    }
    owner.wakeup.Signal();
  }
}

// ----------------------------------------------------------------- stats

std::string Server::StatsJson() const {
  JsonWriter w;
  w.BeginObject();

  w.Key("server").BeginObject();
  w.Key("connections").BeginObject();
  w.Field("accepted", counters_.accepted.load(std::memory_order_relaxed));
  w.Field("closed", counters_.closed.load(std::memory_order_relaxed));
  w.Field("idle_closed",
          counters_.idle_closed.load(std::memory_order_relaxed));
  w.Field("open", open_connections());
  w.EndObject();

  w.Key("net").BeginObject();
  w.Field("net_threads", static_cast<uint64_t>(options_.net_threads));
  w.Field("accept_retries",
          counters_.accept_retries.load(std::memory_order_relaxed));
  w.Field("accept_backoffs",
          counters_.accept_backoffs.load(std::memory_order_relaxed));
  w.Field("read_pauses",
          counters_.read_pauses.load(std::memory_order_relaxed));
  w.EndObject();

  {
    size_t depth, in_flight;
    {
      MutexLock lock(queue_mu_);
      depth = queue_.size();
      in_flight = in_flight_;
    }
    w.Key("admission").BeginObject();
    w.Field("queue_depth", static_cast<uint64_t>(depth));
    w.Field("queue_capacity",
            static_cast<uint64_t>(options_.queue_capacity));
    w.Field("in_flight", static_cast<uint64_t>(in_flight));
    w.Field("busy_rejected",
            counters_.busy_rejected.load(std::memory_order_relaxed));
    w.Field("shutdown_rejected",
            counters_.shutdown_rejected.load(std::memory_order_relaxed));
    w.EndObject();
  }

  w.Key("frames").BeginObject();
  w.Field("received", counters_.frames.load(std::memory_order_relaxed));
  w.Field("framing_errors",
          counters_.framing_errors.load(std::memory_order_relaxed));
  w.EndObject();

  w.Key("replication").BeginObject();
  switch (options_.role) {
    case ServerRole::kStandalone:
      w.Field("role", "standalone");
      break;
    case ServerRole::kLeader: {
      w.Field("role", "leader");
      const repl::ShipperStats s = shipper_->Snapshot();
      w.Field("followers", static_cast<uint64_t>(s.followers));
      w.Field("head_epoch", s.head_epoch);
      w.Field("floor_epoch", s.floor_epoch);
      w.Field("min_acked_epoch", s.min_acked_epoch);
      w.Field("records_appended", s.records_appended);
      w.Field("records_shipped", s.records_shipped);
      w.Field("records_evicted", s.records_evicted);
      w.Field("acks_received", s.acks_received);
      w.Field("subscribes", s.subscribes);
      w.Field("retained", static_cast<uint64_t>(s.retained));
      break;
    }
    case ServerRole::kFollower: {
      w.Field("role", "follower");
      const repl::ApplierStats s = applier_->Snapshot();
      w.Field("connected", static_cast<uint64_t>(s.connected ? 1 : 0));
      w.Field("leader_epoch", s.leader_epoch);
      w.Field("applied_epoch", s.applied_epoch);
      // Lag in epochs — exactly what a kBoundedStaleness read bounds.
      w.Field("lag_epochs", s.leader_epoch > s.applied_epoch
                                ? s.leader_epoch - s.applied_epoch
                                : 0);
      w.Field("records_applied", s.records_applied);
      w.Field("duplicates_skipped", s.duplicates_skipped);
      w.Field("reconnects", s.reconnects);
      w.Field("subscribe_rejects", s.subscribe_rejects);
      w.Field("stream_errors", s.stream_errors);
      break;
    }
  }
  w.Field("stale_rejected",
          counters_.stale_rejected.load(std::memory_order_relaxed));
  w.Field("not_leader_rejected",
          counters_.not_leader_rejected.load(std::memory_order_relaxed));
  w.EndObject();

  w.Key("ops").BeginObject();
  for (uint8_t op = 1; op < kOpcodeLimit; ++op) {
    const OpcodeCounters& oc = counters_.ops[op];
    const uint64_t count = oc.count.load(std::memory_order_relaxed);
    w.Key(OpcodeName(static_cast<Opcode>(op))).BeginObject();
    w.Field("count", count);
    w.Field("errors", oc.errors.load(std::memory_order_relaxed));
    const uint64_t total =
        oc.total_micros.load(std::memory_order_relaxed);
    w.Field("avg_us",
            count ? static_cast<double>(total) / count : 0.0);
    w.Field("max_us", oc.max_micros.load(std::memory_order_relaxed));
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();  // server

  w.Key("engine").BeginObject();
  if (db_ != nullptr && db_->sharded()) {
    // Sharded: deduped aggregate up front, per-shard breakdown in the
    // "shards" array (one entry per shard engine, in shard order).
    w.Field("objects", db_->object_count());
    w.Field("write_epoch", db_->write_epoch());
    w.Field("shard_count", static_cast<uint64_t>(db_->shards()));
    IoStats io_total;
    w.Key("shards").BeginArray();
    const std::vector<shard::ShardCounters> per_shard = db_->ShardStats();
    for (size_t s = 0; s < per_shard.size(); ++s) {
      const shard::ShardCounters& c = per_shard[s];
      w.BeginObject();
      w.Field("shard", static_cast<uint64_t>(s));
      w.Field("objects", c.objects);
      w.Field("index_entries", c.index_entries);
      w.Field("write_epoch", c.write_epoch);
      w.Field("durable_epoch", c.durable_epoch);
      w.Field("journal_commits", c.journal_commits);
      w.Field("batches", c.batches);
      w.Field("pages", static_cast<uint64_t>(c.pages));
      w.Field("pins_taken", c.pins_taken);
      w.Field("page_versions", c.page_versions);
      w.EndObject();
      const IoStats& eio =
          db_->router()->engine(static_cast<uint32_t>(s))->pager()->io_stats();
      io_total.page_reads += eio.page_reads.load(std::memory_order_relaxed);
      io_total.page_writes += eio.page_writes.load(std::memory_order_relaxed);
      io_total.pool_hits += eio.pool_hits.load(std::memory_order_relaxed);
      io_total.pool_misses += eio.pool_misses.load(std::memory_order_relaxed);
      io_total.pool_evictions +=
          eio.pool_evictions.load(std::memory_order_relaxed);
    }
    w.EndArray();
    AppendJson(&w, "io", io_total);
    w.EndObject();

    w.EndObject();
    return w.str();
  }
  w.Field("objects", index_->object_count());
  w.Field("write_epoch", index_->write_epoch());
  if (index_->snapshots_enabled()) {
    const EpochStats es = index_->epoch_stats();
    const PageVersionStats vs = index_->version_stats();
    w.Key("snapshots").BeginObject();
    w.Field("pinned", es.pinned);
    w.Field("pins_taken", es.pins_taken);
    w.Field("gc_cycles", es.gc_cycles);
    w.Field("page_versions", vs.live);
    w.Field("version_bytes", vs.bytes);
    w.Field("versions_reclaimed", vs.reclaimed);
    w.EndObject();
  }
  AppendJson(&w, "io", index_->pool()->pager()->io_stats());
  w.EndObject();

  w.EndObject();
  return w.str();
}

}  // namespace net
}  // namespace zdb
