// Copyright (c) zdb authors. Licensed under the MIT license.

#include "decompose/decompose.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace zdb {

namespace {

struct HeapEntry {
  ZElement elem;
  uint64_t dead;  ///< covered cells not belonging to the object

  bool operator<(const HeapEntry& o) const {
    if (dead != o.dead) return dead < o.dead;  // max-heap by dead space
    return elem.zmin > o.elem.zmin;            // deterministic tie-break
  }
};

uint64_t DeadCells(const ZElement& e, const GridRect& rect) {
  return e.CellCount() - e.ToGridRect().IntersectionCells(rect);
}

/// Re-merges sibling pairs that both ended up in the result — such a pair
/// is exactly its parent, so merging lowers redundancy for free.
void MergeSiblings(std::vector<ZElement>* elements) {
  std::sort(elements->begin(), elements->end());
  bool merged = true;
  while (merged) {
    merged = false;
    std::vector<ZElement> out;
    out.reserve(elements->size());
    size_t i = 0;
    while (i < elements->size()) {
      if (i + 1 < elements->size()) {
        const ZElement& a = (*elements)[i];
        const ZElement& b = (*elements)[i + 1];
        if (a.level == b.level && a.level > 0 && a.Parent() == b.Parent() &&
            a.zmin != b.zmin) {
          out.push_back(a.Parent());
          i += 2;
          merged = true;
          continue;
        }
      }
      out.push_back((*elements)[i]);
      ++i;
    }
    *elements = std::move(out);
  }
}

}  // namespace

Decomposition Decompose(const GridRect& rect, uint32_t grid_bits,
                        const DecomposeOptions& options) {
  Decomposition result;
  result.object_cells = rect.CellCount();

  const uint32_t zbits = 2 * grid_bits;
  const uint32_t max_level = std::min(options.max_level, zbits);
  const bool size_bound =
      options.policy == DecomposeOptions::Policy::kSizeBound;
  const uint32_t budget =
      size_bound ? std::max(1u, options.max_elements) : options.hard_cap;

  std::priority_queue<HeapEntry> heap;
  std::vector<ZElement> final_elements;

  ZElement root = ZElement::Enclosing(rect, grid_bits);
  // The minimal enclosing element may already be deeper than the cap;
  // lift it so the level bound holds for every emitted element.
  while (root.level > max_level) root = root.Parent();
  uint64_t total_dead = DeadCells(root, rect);
  heap.push({root, total_dead});

  // The error target in absolute cells (size-bound ignores it).
  const double target_dead =
      size_bound ? 0.0
                 : options.max_error * static_cast<double>(rect.CellCount());

  while (!heap.empty()) {
    // Error-bound: stop refining once the approximation is good enough.
    if (!size_bound && static_cast<double>(total_dead) <= target_dead) break;

    HeapEntry top = heap.top();
    heap.pop();
    if (top.dead == 0 || top.elem.level >= max_level) {
      final_elements.push_back(top.elem);
      continue;
    }

    HeapEntry children[2];
    int n_children = 0;
    for (int i = 0; i < 2; ++i) {
      const ZElement child = top.elem.Child(i);
      const uint64_t live = child.ToGridRect().IntersectionCells(rect);
      if (live > 0) {
        children[n_children++] = {child, child.CellCount() - live};
      }
    }
    assert(n_children >= 1);

    const size_t count = final_elements.size() + heap.size() + 1;
    const size_t growth = static_cast<size_t>(n_children) - 1;
    if (count + growth > budget) {
      // No budget to split this element; keep it as is. Elements still in
      // the heap may have cheaper (non-growing) splits, so keep going.
      final_elements.push_back(top.elem);
      continue;
    }

    uint64_t child_dead = 0;
    for (int i = 0; i < n_children; ++i) {
      child_dead += children[i].dead;
      heap.push(children[i]);
    }
    total_dead = total_dead - top.dead + child_dead;
  }

  // Drain whatever is left (error target met or budget spent).
  while (!heap.empty()) {
    final_elements.push_back(heap.top().elem);
    heap.pop();
  }

  MergeSiblings(&final_elements);

  result.covered_cells = 0;
  for (const ZElement& e : final_elements) {
    result.covered_cells += e.CellCount();
  }
  result.elements = std::move(final_elements);
  return result;
}

}  // namespace zdb
