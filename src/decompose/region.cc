// Copyright (c) zdb authors. Licensed under the MIT license.

#include "decompose/region.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace zdb {

namespace {

struct HeapEntry {
  ZElement elem;
  double dead;  ///< world area of the element's cell not in the region

  bool operator<(const HeapEntry& o) const {
    if (dead != o.dead) return dead < o.dead;
    return elem.zmin > o.elem.zmin;
  }
};

/// Relative tolerance below which a cell counts as fully covered —
/// protects against endless refinement on floating-point residue.
constexpr double kCoveredTol = 1e-9;

void MergeSiblings(std::vector<ZElement>* elements) {
  std::sort(elements->begin(), elements->end());
  bool merged = true;
  while (merged) {
    merged = false;
    std::vector<ZElement> out;
    out.reserve(elements->size());
    size_t i = 0;
    while (i < elements->size()) {
      if (i + 1 < elements->size()) {
        const ZElement& a = (*elements)[i];
        const ZElement& b = (*elements)[i + 1];
        if (a.level == b.level && a.level > 0 && a.Parent() == b.Parent() &&
            a.zmin != b.zmin) {
          out.push_back(a.Parent());
          i += 2;
          merged = true;
          continue;
        }
      }
      out.push_back((*elements)[i]);
      ++i;
    }
    *elements = std::move(out);
  }
}

}  // namespace

RegionDecomposition DecomposeRegion(const Region& region,
                                    const SpaceMapper& mapper,
                                    const DecomposeOptions& options) {
  RegionDecomposition result;
  result.object_area = region.Area();

  const uint32_t gbits = mapper.bits();
  const uint32_t zbits = 2 * gbits;
  const uint32_t max_level = std::min(options.max_level, zbits);
  const bool size_bound =
      options.policy == DecomposeOptions::Policy::kSizeBound;
  const uint32_t budget =
      size_bound ? std::max(1u, options.max_elements) : options.hard_cap;

  auto dead_area = [&](const ZElement& e) {
    const Rect cell = mapper.ToWorld(e.ToGridRect());
    const double covered = region.IntersectionArea(cell);
    const double dead = cell.area() - covered;
    return (dead <= kCoveredTol * cell.area()) ? 0.0 : dead;
  };

  ZElement root = ZElement::Enclosing(mapper.ToGrid(region.WorldBounds()),
                                      gbits);
  while (root.level > max_level) root = root.Parent();

  std::priority_queue<HeapEntry> heap;
  std::vector<ZElement> final_elements;
  double total_dead = dead_area(root);
  heap.push({root, total_dead});

  const double target_dead =
      size_bound ? 0.0 : options.max_error * region.Area();

  while (!heap.empty()) {
    if (!size_bound && total_dead <= target_dead) break;

    HeapEntry top = heap.top();
    heap.pop();
    if (top.dead == 0.0 || top.elem.level >= max_level) {
      final_elements.push_back(top.elem);
      continue;
    }

    HeapEntry children[2];
    int n_children = 0;
    for (int i = 0; i < 2; ++i) {
      const ZElement child = top.elem.Child(i);
      const Rect cell = mapper.ToWorld(child.ToGridRect());
      // Positive-area overlap only: boundary-only contact contributes
      // nothing to the approximation and would soak up the whole budget
      // (a zero-overlap cell is all dead space, i.e. maximal priority).
      if (region.IntersectsCell(cell) &&
          region.IntersectionArea(cell) > 0.0) {
        children[n_children++] = {child, dead_area(child)};
      }
    }
    if (n_children == 0) {
      // Degenerate (zero-area) regions: keep the parent so the element
      // union still covers the object.
      final_elements.push_back(top.elem);
      continue;
    }

    const size_t count = final_elements.size() + heap.size() + 1;
    const size_t growth = static_cast<size_t>(n_children) - 1;
    if (count + growth > budget) {
      final_elements.push_back(top.elem);
      continue;
    }

    double child_dead = 0;
    for (int i = 0; i < n_children; ++i) {
      child_dead += children[i].dead;
      heap.push(children[i]);
    }
    total_dead = total_dead - top.dead + child_dead;
  }

  while (!heap.empty()) {
    final_elements.push_back(heap.top().elem);
    heap.pop();
  }
  MergeSiblings(&final_elements);

  result.covered_area = 0.0;
  for (const ZElement& e : final_elements) {
    result.covered_area += mapper.ToWorld(e.ToGridRect()).area();
  }
  result.elements = std::move(final_elements);
  return result;
}

}  // namespace zdb
