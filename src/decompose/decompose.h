// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Object/query decomposition into z-elements — the core contribution of
// "Redundancy in Spatial Databases" (Orenstein, SIGMOD 1989). A spatial
// object is approximated by a set of disjoint z-elements covering it; the
// two policies trade approximation quality against redundancy:
//
//   * size-bound: at most k elements per object (k = 1 degenerates to the
//     classic minimal-enclosing-z-region scheme);
//   * error-bound: refine until the dead space (covered minus object
//     area) drops below `max_error` times the object's area.
//
// Both use the same greedy refinement: repeatedly split the element
// contributing the most dead space, discarding child elements that do not
// touch the object, until the policy's budget or the resolution floor is
// reached. A final pass re-merges sibling pairs that both survived (a
// split that bought nothing).

#ifndef ZDB_DECOMPOSE_DECOMPOSE_H_
#define ZDB_DECOMPOSE_DECOMPOSE_H_

#include <cstdint>
#include <vector>

#include "geom/grid.h"
#include "zorder/zelement.h"

namespace zdb {

struct DecomposeOptions {
  enum class Policy { kSizeBound, kErrorBound };

  Policy policy = Policy::kSizeBound;

  /// Size-bound budget k (>= 1). Used when policy == kSizeBound.
  uint32_t max_elements = 4;

  /// Error-bound epsilon: decompose until dead_cells <= max_error *
  /// object_cells. Used when policy == kErrorBound.
  double max_error = 0.1;

  /// Resolution cap in prefix bits (clamped to 2 * grid_bits). Elements
  /// never get finer than this level.
  uint32_t max_level = UINT32_MAX;

  /// Safety cap on element count for the error-bound policy.
  uint32_t hard_cap = 4096;

  static DecomposeOptions SizeBound(uint32_t k) {
    DecomposeOptions o;
    o.policy = Policy::kSizeBound;
    o.max_elements = k;
    return o;
  }
  static DecomposeOptions ErrorBound(double eps, uint32_t cap = 4096) {
    DecomposeOptions o;
    o.policy = Policy::kErrorBound;
    o.max_error = eps;
    o.hard_cap = cap;
    return o;
  }
};

/// A decomposition: disjoint elements in canonical z order, plus the
/// accounting the experiments report.
struct Decomposition {
  std::vector<ZElement> elements;
  uint64_t object_cells = 0;   ///< grid cells of the object itself
  uint64_t covered_cells = 0;  ///< grid cells of the union of elements

  /// Redundancy r: elements per object.
  size_t redundancy() const { return elements.size(); }

  /// Relative dead space: (covered - object) / object.
  double error() const {
    if (object_cells == 0) return 0.0;
    return static_cast<double>(covered_cells - object_cells) /
           static_cast<double>(object_cells);
  }
};

/// Decomposes a grid rectangle per the options. The result's elements are
/// pairwise disjoint, sorted canonically, and their union covers `rect`.
Decomposition Decompose(const GridRect& rect, uint32_t grid_bits,
                        const DecomposeOptions& options);

}  // namespace zdb

#endif  // ZDB_DECOMPOSE_DECOMPOSE_H_
