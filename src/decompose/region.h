// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Region-generic decomposition. Orenstein's method applies to arbitrary
// spatial objects, not just rectangles: any region that can answer
// "do you intersect this cell?" and "how much of this cell do you cover?"
// can be decomposed into z-elements with exact dead-space accounting.
// The polygon instantiation decomposes the actual geometry — a far
// tighter approximation than decomposing the MBR for slim or diagonal
// objects (see bench_a3_polygon).

#ifndef ZDB_DECOMPOSE_REGION_H_
#define ZDB_DECOMPOSE_REGION_H_

#include <vector>

#include "decompose/decompose.h"
#include "geom/clip.h"
#include "geom/grid.h"
#include "geom/polygon.h"

namespace zdb {

/// A spatial object queried by the decomposition. Areas are in world
/// units.
class Region {
 public:
  virtual ~Region() = default;

  /// Bounding rectangle in world coordinates.
  virtual Rect WorldBounds() const = 0;

  /// True if the region shares at least a point with the (closed) cell.
  virtual bool IntersectsCell(const Rect& cell) const = 0;

  /// Area of region ∩ cell.
  virtual double IntersectionArea(const Rect& cell) const = 0;

  /// Total region area.
  virtual double Area() const = 0;
};

/// Rectangle as a Region (the generic path; the integer-exact
/// Decompose(GridRect, ...) overload remains the fast path for MBRs).
class RectRegion : public Region {
 public:
  explicit RectRegion(const Rect& rect) : rect_(rect) {}
  Rect WorldBounds() const override { return rect_; }
  bool IntersectsCell(const Rect& cell) const override {
    return rect_.Intersects(cell);
  }
  double IntersectionArea(const Rect& cell) const override {
    return rect_.IntersectionArea(cell);
  }
  double Area() const override { return rect_.area(); }

 private:
  Rect rect_;
};

/// Simple polygon as a Region. The referenced polygon must outlive it.
class PolygonRegion : public Region {
 public:
  explicit PolygonRegion(const Polygon* poly)
      : poly_(poly), bounds_(poly->Bounds()), area_(poly->Area()) {}
  Rect WorldBounds() const override { return bounds_; }
  bool IntersectsCell(const Rect& cell) const override {
    return poly_->Intersects(cell);
  }
  double IntersectionArea(const Rect& cell) const override {
    return PolygonRectIntersectionArea(*poly_, cell);
  }
  double Area() const override { return area_; }

 private:
  const Polygon* poly_;
  Rect bounds_;
  double area_;
};

/// Result of a region decomposition; areas are world units.
struct RegionDecomposition {
  std::vector<ZElement> elements;  ///< disjoint, canonical order
  double object_area = 0.0;
  double covered_area = 0.0;  ///< world area of the element union

  size_t redundancy() const { return elements.size(); }
  double error() const {
    if (object_area <= 0.0) return 0.0;
    return (covered_area - object_area) / object_area;
  }
};

/// Decomposes an arbitrary region per the options (same policies as the
/// rectangle overload). The element union covers region ∩ world.
RegionDecomposition DecomposeRegion(const Region& region,
                                    const SpaceMapper& mapper,
                                    const DecomposeOptions& options);

}  // namespace zdb

#endif  // ZDB_DECOMPOSE_REGION_H_
