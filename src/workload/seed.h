// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Seed-replay plumbing for the stress harnesses. Every randomized
// stress test derives its whole workload from one root seed; these
// helpers let a failing run print that seed and a later run replay it
// exactly via an environment variable:
//
//   const uint64_t seed = SeedFromEnv("ZDB_STRESS_SEED", 0xC0FFEE);
//   SCOPED_TRACE(SeedReplayHint("ZDB_STRESS_SEED", seed));
//
// A failure then reports the exact `ZDB_STRESS_SEED=<seed>` line that
// reproduces the workload deterministically (the data, batches and
// queries are pure functions of the seed; only thread interleavings
// vary between runs).

#ifndef ZDB_WORKLOAD_SEED_H_
#define ZDB_WORKLOAD_SEED_H_

#include <cstdint>
#include <string>

namespace zdb {

/// The value of environment variable `env_name` parsed as a seed
/// (decimal, or hex with a 0x prefix), or `fallback` when the variable
/// is unset or unparsable.
uint64_t SeedFromEnv(const char* env_name, uint64_t fallback);

/// One-line replay instruction naming the seed and the variable to set,
/// e.g. "workload seed 12648430 — replay with ZDB_STRESS_SEED=12648430".
/// Attach it to failures (SCOPED_TRACE) so any red run is reproducible.
std::string SeedReplayHint(const char* env_name, uint64_t seed);

}  // namespace zdb

#endif  // ZDB_WORKLOAD_SEED_H_
