// Copyright (c) zdb authors. Licensed under the MIT license.

#include "workload/querygen.h"

#include <algorithm>
#include <cmath>

namespace zdb {

std::vector<Rect> GenerateWindows(size_t n, double selectivity,
                                  const QueryGenOptions& options) {
  Random rng(options.seed ^ static_cast<uint64_t>(selectivity * 1e9));
  std::vector<Rect> out;
  out.reserve(n);
  const double side = std::sqrt(selectivity);
  for (size_t i = 0; i < n; ++i) {
    double w = side, h = side;
    if (options.aspect_jitter > 0.0) {
      const double f = rng.UniformDouble(1.0 - options.aspect_jitter,
                                         1.0 + options.aspect_jitter);
      w = side * f;
      h = selectivity / w;
    }
    const double cx = rng.NextDouble();
    const double cy = rng.NextDouble();
    Rect r = Rect::FromCenter(cx, cy, w / 2, h / 2);
    r.xlo = std::max(0.0, r.xlo);
    r.ylo = std::max(0.0, r.ylo);
    r.xhi = std::min(0.999999, r.xhi);
    r.yhi = std::min(0.999999, r.yhi);
    out.push_back(r);
  }
  return out;
}

std::vector<Point> GeneratePoints(size_t n, uint64_t seed) {
  Random rng(seed);
  std::vector<Point> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(Point{rng.NextDouble(), rng.NextDouble()});
  }
  return out;
}

}  // namespace zdb
