// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Synthetic data generators. The paper's datasets are not shipped with
// it; these generators reproduce the standard distribution mix of the
// late-1980s spatial-index evaluations (uniform with small/large objects,
// Gaussian clusters, a diagonal band, skewed object sizes) plus a
// synthetic cartographic substitute for "real map data": elevation
// contour lines of a rolling-hills height field, sampled into short
// segments. All generators are deterministic in the seed.

#ifndef ZDB_WORKLOAD_DATAGEN_H_
#define ZDB_WORKLOAD_DATAGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "geom/rect.h"

namespace zdb {

enum class Distribution {
  kUniformSmall,   ///< uniform centers; extents U[0, 0.005]
  kUniformLarge,   ///< uniform centers; extents U[0, 0.05]
  kClusters,       ///< Gaussian clusters around random cluster points
  kDiagonal,       ///< centers on the main diagonal (worst case for z k=1)
  kSkewedSizes,    ///< uniform centers; Zipf-ish extents (few huge objects)
  kContours,       ///< synthetic map: contour-line segments of a height field
};

/// All distributions, in a stable order for sweep loops.
inline constexpr Distribution kAllDistributions[] = {
    Distribution::kUniformSmall, Distribution::kUniformLarge,
    Distribution::kClusters,     Distribution::kDiagonal,
    Distribution::kSkewedSizes,  Distribution::kContours,
};

/// Short label used in experiment tables.
std::string DistributionName(Distribution d);

struct DataGenOptions {
  Distribution distribution = Distribution::kUniformSmall;
  uint64_t seed = 1;
  /// Cluster count for kClusters.
  uint32_t clusters = 16;
};

/// Generates n object MBRs inside the unit square.
std::vector<Rect> GenerateData(size_t n, const DataGenOptions& options);

}  // namespace zdb

#endif  // ZDB_WORKLOAD_DATAGEN_H_
