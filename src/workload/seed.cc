// Copyright (c) zdb authors. Licensed under the MIT license.

#include "workload/seed.h"

#include <cstdlib>

namespace zdb {

uint64_t SeedFromEnv(const char* env_name, uint64_t fallback) {
  const char* value = std::getenv(env_name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const uint64_t parsed = std::strtoull(value, &end, 0);
  if (end == value || *end != '\0') return fallback;
  return parsed;
}

std::string SeedReplayHint(const char* env_name, uint64_t seed) {
  const std::string s = std::to_string(seed);
  return "workload seed " + s + " — replay with " + env_name + "=" + s;
}

}  // namespace zdb
