// Copyright (c) zdb authors. Licensed under the MIT license.

#include "workload/datagen.h"

#include <algorithm>
#include <cmath>

namespace zdb {

namespace {

constexpr double kPi = 3.14159265358979323846;

double Clamp01(double v) {
  if (v < 0.0) return 0.0;
  if (v > 0.999999) return 0.999999;
  return v;
}

Rect ClampedRect(double cx, double cy, double ex, double ey) {
  Rect r = Rect::FromCenter(Clamp01(cx), Clamp01(cy), ex, ey);
  r.xlo = Clamp01(r.xlo);
  r.ylo = Clamp01(r.ylo);
  r.xhi = Clamp01(r.xhi);
  r.yhi = Clamp01(r.yhi);
  return r;
}

std::vector<Rect> UniformRects(size_t n, double max_extent, Random* rng) {
  std::vector<Rect> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(ClampedRect(rng->NextDouble(), rng->NextDouble(),
                              rng->UniformDouble(0, max_extent),
                              rng->UniformDouble(0, max_extent)));
  }
  return out;
}

std::vector<Rect> ClusterRects(size_t n, uint32_t clusters, Random* rng) {
  std::vector<Point> centers;
  centers.reserve(clusters);
  for (uint32_t i = 0; i < clusters; ++i) {
    centers.push_back(Point{rng->NextDouble(), rng->NextDouble()});
  }
  std::vector<Rect> out;
  out.reserve(n);
  // Objects are generated cluster by cluster, matching the sorted
  // insertion order that stresses methods sensitive to it.
  const size_t per_cluster = n / clusters + 1;
  for (uint32_t c = 0; c < clusters && out.size() < n; ++c) {
    for (size_t i = 0; i < per_cluster && out.size() < n; ++i) {
      const double cx = centers[c].x + rng->Gaussian(0, 0.02);
      const double cy = centers[c].y + rng->Gaussian(0, 0.02);
      out.push_back(ClampedRect(cx, cy, rng->UniformDouble(0, 0.004),
                                rng->UniformDouble(0, 0.004)));
    }
  }
  return out;
}

std::vector<Rect> DiagonalRects(size_t n, Random* rng) {
  std::vector<Rect> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double t = rng->NextDouble();
    const double cx = t + rng->Gaussian(0, 0.01);
    const double cy = t + rng->Gaussian(0, 0.01);
    out.push_back(ClampedRect(cx, cy, rng->UniformDouble(0, 0.005),
                              rng->UniformDouble(0, 0.005)));
  }
  return out;
}

std::vector<Rect> SkewedSizeRects(size_t n, Random* rng) {
  std::vector<Rect> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Pareto-like extents: mostly tiny, occasionally spanning ~10% of
    // space. alpha ~ 1.5.
    const double u = std::max(rng->NextDouble(), 1e-9);
    const double extent = std::min(0.1, 0.0005 / std::pow(u, 1.0 / 1.5));
    out.push_back(ClampedRect(rng->NextDouble(), rng->NextDouble(),
                              rng->UniformDouble(0.2, 1.0) * extent,
                              rng->UniformDouble(0.2, 1.0) * extent));
  }
  return out;
}

/// Height field with a few sinusoidal "hills"; contour lines are sampled
/// by marching along the level sets and emitting short segment MBRs, in
/// contour order (a sorted insertion pattern, like quad-tree-ordered map
/// data).
double HeightField(double x, double y) {
  return 0.5 + 0.25 * std::sin(3.1 * kPi * x) * std::cos(2.3 * kPi * y) +
         0.15 * std::sin(7.3 * kPi * x + 1.7) * std::sin(5.1 * kPi * y) +
         0.10 * std::cos(11.9 * kPi * (x + y));
}

std::vector<Rect> ContourRects(size_t n, Random* rng) {
  std::vector<Rect> out;
  out.reserve(n);
  // March a fine lattice; wherever a cell straddles a contour level, emit
  // the cell-sized segment rectangle. Levels are swept outer-to-inner so
  // insertion order follows contours.
  const int grid = static_cast<int>(std::sqrt(static_cast<double>(n) * 2)) + 8;
  const double step = 1.0 / grid;
  for (double level = 0.1; level <= 0.9 && out.size() < n; level += 0.05) {
    for (int gy = 0; gy < grid && out.size() < n; ++gy) {
      for (int gx = 0; gx < grid && out.size() < n; ++gx) {
        const double x0 = gx * step, y0 = gy * step;
        const double h00 = HeightField(x0, y0);
        const double h10 = HeightField(x0 + step, y0);
        const double h01 = HeightField(x0, y0 + step);
        const double h11 = HeightField(x0 + step, y0 + step);
        const double lo = std::min(std::min(h00, h10), std::min(h01, h11));
        const double hi = std::max(std::max(h00, h10), std::max(h01, h11));
        if (lo <= level && level <= hi) {
          // Jitter so duplicate keys do not arise.
          const double jx = rng->UniformDouble(0, step * 0.1);
          const double jy = rng->UniformDouble(0, step * 0.1);
          out.push_back(Rect{Clamp01(x0 + jx), Clamp01(y0 + jy),
                             Clamp01(x0 + step * 0.9 + jx),
                             Clamp01(y0 + step * 0.9 + jy)});
        }
      }
    }
  }
  // Top up with small uniform segments if the lattice undershot n.
  while (out.size() < n) {
    out.push_back(ClampedRect(rng->NextDouble(), rng->NextDouble(), 0.004,
                              0.004));
  }
  return out;
}

}  // namespace

std::string DistributionName(Distribution d) {
  switch (d) {
    case Distribution::kUniformSmall: return "uniform-small";
    case Distribution::kUniformLarge: return "uniform-large";
    case Distribution::kClusters: return "clusters";
    case Distribution::kDiagonal: return "diagonal";
    case Distribution::kSkewedSizes: return "skewed-sizes";
    case Distribution::kContours: return "contours";
  }
  return "?";
}

std::vector<Rect> GenerateData(size_t n, const DataGenOptions& options) {
  Random rng(options.seed ^ (static_cast<uint64_t>(options.distribution)
                             << 32));
  switch (options.distribution) {
    case Distribution::kUniformSmall:
      return UniformRects(n, 0.005, &rng);
    case Distribution::kUniformLarge:
      return UniformRects(n, 0.05, &rng);
    case Distribution::kClusters:
      return ClusterRects(n, options.clusters, &rng);
    case Distribution::kDiagonal:
      return DiagonalRects(n, &rng);
    case Distribution::kSkewedSizes:
      return SkewedSizeRects(n, &rng);
    case Distribution::kContours:
      return ContourRects(n, &rng);
  }
  return {};
}

}  // namespace zdb
