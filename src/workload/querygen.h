// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Query generators: square windows of a target selectivity (fraction of
// the data space), slim windows, and point queries — the query mix of the
// era's evaluations.

#ifndef ZDB_WORKLOAD_QUERYGEN_H_
#define ZDB_WORKLOAD_QUERYGEN_H_

#include <vector>

#include "common/random.h"
#include "geom/point.h"
#include "geom/rect.h"

namespace zdb {

struct QueryGenOptions {
  uint64_t seed = 7;
  /// Aspect jitter: side lengths vary uniformly in
  /// [1-aspect_jitter, 1+aspect_jitter] times the square side.
  double aspect_jitter = 0.0;
};

/// n windows whose area is `selectivity` (fraction of the unit square),
/// centers uniform, clipped to the unit square.
std::vector<Rect> GenerateWindows(size_t n, double selectivity,
                                  const QueryGenOptions& options);

/// n uniform query points.
std::vector<Point> GeneratePoints(size_t n, uint64_t seed);

}  // namespace zdb

#endif  // ZDB_WORKLOAD_QUERYGEN_H_
