// Copyright (c) zdb authors. Licensed under the MIT license.

#include "transform/decompose4.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <queue>

namespace zdb {

namespace {

struct HeapEntry {
  ZElement4 elem;
  unsigned __int128 dead;

  bool operator<(const HeapEntry& o) const {
    if (dead != o.dead) return dead < o.dead;
    return elem.zmin > o.elem.zmin;
  }
};

unsigned __int128 DeadVolume(const ZElement4& e, const Box4& box) {
  const Box4 cell = e.ToBox();
  return cell.Volume() - cell.IntersectionVolume(box);
}

/// Smallest element containing both corners of the box.
ZElement4 Enclosing(const Box4& box) {
  const uint64_t z1 = Morton4Encode(box.lo[0], box.lo[1], box.lo[2],
                                    box.lo[3]);
  const uint64_t z2 = Morton4Encode(box.hi[0], box.hi[1], box.hi[2],
                                    box.hi[3]);
  const uint32_t common =
      (z1 == z2) ? 64 : static_cast<uint32_t>(std::countl_zero(z1 ^ z2));
  const uint64_t mask = (common == 0) ? 0 : (~0ULL << (64 - common));
  return ZElement4{z1 & mask, static_cast<uint8_t>(common)};
}

}  // namespace

std::vector<ZElement4> DecomposeBox4(const Box4& box,
                                     uint32_t max_elements) {
  const uint32_t budget = std::max(1u, max_elements);
  std::priority_queue<HeapEntry> heap;
  std::vector<ZElement4> final_elements;

  const ZElement4 root = Enclosing(box);
  heap.push({root, DeadVolume(root, box)});

  while (!heap.empty()) {
    HeapEntry top = heap.top();
    heap.pop();
    if (top.dead == 0 || top.elem.is_full_resolution()) {
      final_elements.push_back(top.elem);
      continue;
    }
    HeapEntry children[2];
    int n_children = 0;
    for (int i = 0; i < 2; ++i) {
      const ZElement4 child = top.elem.Child(i);
      if (child.ToBox().Intersects(box)) {
        children[n_children++] = {child, DeadVolume(child, box)};
      }
    }
    assert(n_children >= 1);
    const size_t count = final_elements.size() + heap.size() + 1;
    const size_t growth = static_cast<size_t>(n_children) - 1;
    if (count + growth > budget) {
      final_elements.push_back(top.elem);
      continue;
    }
    for (int i = 0; i < n_children; ++i) heap.push(children[i]);
  }

  std::sort(final_elements.begin(), final_elements.end());
  return final_elements;
}

}  // namespace zdb
