// Copyright (c) zdb authors. Licensed under the MIT license.

#include "transform/transform_index.h"

#include <algorithm>

#include "btree/cursor.h"
#include "common/coding.h"

namespace zdb {

namespace {

/// Key layout: 8-byte big-endian 4-D z-code | 4-byte big-endian oid.
std::string EncodeTKey(uint64_t z, ObjectId oid) {
  std::string key;
  key.reserve(12);
  PutFixed64BE(&key, z);
  PutFixed32BE(&key, oid);
  return key;
}

bool DecodeTKey(const Slice& key, uint64_t* z, ObjectId* oid) {
  if (key.size() != 12) return false;
  *z = DecodeFixed64BE(key.data());
  *oid = DecodeFixed32BE(key.data() + 8);
  return true;
}

bool GridPointInBox(uint64_t z, const Box4& box) {
  uint16_t c[4];
  Morton4Decode(z, c);
  for (int d = 0; d < 4; ++d) {
    if (c[d] < box.lo[d] || c[d] > box.hi[d]) return false;
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<TransformIndex>> TransformIndex::Create(
    BufferPool* pool, const TransformIndexOptions& options) {
  if (options.query_elements < 1) {
    return Status::InvalidArgument("query_elements must be >= 1");
  }
  std::unique_ptr<TransformIndex> index(
      new TransformIndex(pool, options));
  ZDB_ASSIGN_OR_RETURN(index->btree_, BTree::Create(pool));
  index->store_ = std::make_unique<ObjectStore>(pool);
  return index;
}

void TransformIndex::ToGridPoint(const Rect& r, uint16_t c[4]) const {
  c[0] = static_cast<uint16_t>(mapper_.ToGridX(r.xlo));
  c[1] = static_cast<uint16_t>(mapper_.ToGridX(r.xhi));
  c[2] = static_cast<uint16_t>(mapper_.ToGridY(r.ylo));
  c[3] = static_cast<uint16_t>(mapper_.ToGridY(r.yhi));
}

Result<ObjectId> TransformIndex::Insert(const Rect& mbr) {
  if (!mbr.valid()) return Status::InvalidArgument("invalid MBR");
  ObjectId oid;
  ZDB_ASSIGN_OR_RETURN(oid, store_->Insert(mbr));
  uint16_t c[4];
  ToGridPoint(mbr, c);
  const uint64_t z = Morton4Encode(c[0], c[1], c[2], c[3]);
  ZDB_RETURN_IF_ERROR(btree_->Insert(Slice(EncodeTKey(z, oid)), Slice()));
  ++live_objects_;
  return oid;
}

Status TransformIndex::Erase(ObjectId oid) {
  ObjectRecord rec;
  ZDB_ASSIGN_OR_RETURN(rec, store_->Fetch(oid));
  if (!rec.live) return Status::NotFound("object already erased");
  uint16_t c[4];
  ToGridPoint(rec.mbr, c);
  const uint64_t z = Morton4Encode(c[0], c[1], c[2], c[3]);
  ZDB_RETURN_IF_ERROR(btree_->Delete(Slice(EncodeTKey(z, oid))));
  ZDB_RETURN_IF_ERROR(store_->Erase(oid));
  --live_objects_;
  return Status::OK();
}

template <typename Predicate>
Result<std::vector<ObjectId>> TransformIndex::BoxQuery(const Box4& box,
                                                       Predicate pred,
                                                       QueryStats* stats) {
  const auto elements = DecomposeBox4(box, options_.query_elements);
  if (stats != nullptr) stats->query_elements += elements.size();

  std::vector<ObjectId> candidates;
  for (const ZElement4& e : elements) {
    const std::string end = EncodeTKey(e.zmax(), 0xffffffffu);
    Cursor cur(pool_, pool_->pager()->page_size());
    ZDB_ASSIGN_OR_RETURN(cur, btree_->Seek(Slice(EncodeTKey(e.zmin, 0))));
    while (cur.Valid() && cur.key().compare(Slice(end)) <= 0) {
      uint64_t z;
      ObjectId oid;
      if (!DecodeTKey(cur.key(), &z, &oid)) {
        return Status::Corruption("malformed transform key");
      }
      if (stats != nullptr) ++stats->index_entries;
      // CPU-only filter: the element's cell may exceed the query box.
      if (GridPointInBox(z, box)) {
        if (stats != nullptr) ++stats->candidates;
        candidates.push_back(oid);
      }
      ZDB_RETURN_IF_ERROR(cur.Next());
    }
  }
  // Each object has exactly one entry: no duplicate elimination needed.
  if (stats != nullptr) stats->unique_candidates = candidates.size();
  std::sort(candidates.begin(), candidates.end());

  std::vector<ObjectId> results;
  results.reserve(candidates.size());
  for (ObjectId oid : candidates) {
    ObjectRecord rec;
    ZDB_ASSIGN_OR_RETURN(rec, store_->Fetch(oid));
    if (rec.live && pred(rec.mbr)) {
      results.push_back(oid);
    } else if (stats != nullptr) {
      ++stats->false_hits;
    }
  }
  if (stats != nullptr) stats->results = results.size();
  return results;
}

Result<std::vector<ObjectId>> TransformIndex::WindowQuery(
    const Rect& window, QueryStats* stats) {
  const uint16_t max = static_cast<uint16_t>(mapper_.max_coord());
  Box4 box;
  // R intersects W  <=>  R.xlo <= W.xhi, R.xhi >= W.xlo, same in y.
  box.lo[0] = 0;
  box.hi[0] = static_cast<uint16_t>(mapper_.ToGridX(window.xhi));
  box.lo[1] = static_cast<uint16_t>(mapper_.ToGridX(window.xlo));
  box.hi[1] = max;
  box.lo[2] = 0;
  box.hi[2] = static_cast<uint16_t>(mapper_.ToGridY(window.yhi));
  box.lo[3] = static_cast<uint16_t>(mapper_.ToGridY(window.ylo));
  box.hi[3] = max;
  return BoxQuery(
      box, [&](const Rect& mbr) { return mbr.Intersects(window); }, stats);
}

Result<std::vector<ObjectId>> TransformIndex::PointQuery(const Point& p,
                                                         QueryStats* stats) {
  const uint16_t max = static_cast<uint16_t>(mapper_.max_coord());
  const uint16_t gx = static_cast<uint16_t>(mapper_.ToGridX(p.x));
  const uint16_t gy = static_cast<uint16_t>(mapper_.ToGridY(p.y));
  Box4 box;
  box.lo[0] = 0;
  box.hi[0] = gx;
  box.lo[1] = gx;
  box.hi[1] = max;
  box.lo[2] = 0;
  box.hi[2] = gy;
  box.lo[3] = gy;
  box.hi[3] = max;
  return BoxQuery(
      box, [&](const Rect& mbr) { return mbr.Contains(p); }, stats);
}

Result<std::vector<ObjectId>> TransformIndex::ContainmentQuery(
    const Rect& window, QueryStats* stats) {
  Box4 box;
  // R inside W  <=>  R.xlo >= W.xlo, R.xhi <= W.xhi, same in y.
  box.lo[0] = static_cast<uint16_t>(mapper_.ToGridX(window.xlo));
  box.hi[0] = static_cast<uint16_t>(mapper_.ToGridX(window.xhi));
  box.lo[1] = box.lo[0];
  box.hi[1] = box.hi[0];
  box.lo[2] = static_cast<uint16_t>(mapper_.ToGridY(window.ylo));
  box.hi[2] = static_cast<uint16_t>(mapper_.ToGridY(window.yhi));
  box.lo[3] = box.lo[2];
  box.hi[3] = box.hi[2];
  return BoxQuery(
      box, [&](const Rect& mbr) { return window.Contains(mbr); }, stats);
}

}  // namespace zdb
