// Copyright (c) zdb authors. Licensed under the MIT license.
//
// The transformation technique (Nievergelt & Hinrichs; the era's main
// alternative to redundancy): a rectangle is the 4-D corner point
// (xlo, xhi, ylo, yhi) stored under a single 4-D z-order key — exactly
// one index entry per object, no duplicates, trivial updates. The price
// moves to the query side: "rectangles intersecting W" becomes a 4-D box
// query touching two faces of the transform space, whose z-cover is
// coarse — the strongly correlated data distribution the era's papers
// blame for the technique's weaknesses. Compared against the redundant
// z-index in bench_e11_transform.

#ifndef ZDB_TRANSFORM_TRANSFORM_INDEX_H_
#define ZDB_TRANSFORM_TRANSFORM_INDEX_H_

#include <memory>
#include <vector>

#include "btree/btree.h"
#include "core/object_store.h"
#include "core/stats.h"
#include "geom/grid.h"
#include "geom/point.h"
#include "transform/decompose4.h"

namespace zdb {

struct TransformIndexOptions {
  /// World bounds mapped onto the 2^16 transform grid.
  Rect world = Rect{0.0, 0.0, 1.0, 1.0};

  /// Query-side element budget for covering the 4-D query box.
  uint32_t query_elements = 64;
};

/// Spatial index for rectangles via the corner transformation.
class TransformIndex {
 public:
  static Result<std::unique_ptr<TransformIndex>> Create(
      BufferPool* pool, const TransformIndexOptions& options);

  /// Inserts a rectangle (one index entry); returns its id.
  Result<ObjectId> Insert(const Rect& mbr);

  /// Removes an object.
  Status Erase(ObjectId oid);

  /// All live objects whose MBR intersects the window.
  Result<std::vector<ObjectId>> WindowQuery(const Rect& window,
                                            QueryStats* stats = nullptr);

  /// All live objects whose MBR contains the point.
  Result<std::vector<ObjectId>> PointQuery(const Point& p,
                                           QueryStats* stats = nullptr);

  /// All live objects whose MBR lies inside the window.
  Result<std::vector<ObjectId>> ContainmentQuery(const Rect& window,
                                                 QueryStats* stats = nullptr);

  BTree* btree() { return btree_.get(); }
  ObjectStore* objects() { return store_.get(); }
  uint64_t object_count() const { return live_objects_; }
  const TransformIndexOptions& options() const { return options_; }

 private:
  TransformIndex(BufferPool* pool, const TransformIndexOptions& options)
      : pool_(pool),
        options_(options),
        mapper_(options.world, kTransformBits) {}

  /// 4-D grid point of a rectangle (corner representation).
  void ToGridPoint(const Rect& r, uint16_t c[4]) const;

  /// Runs a 4-D box query: scan the box's z-cover, filter by the decoded
  /// grid point (no I/O), refine via the object store with `pred`.
  template <typename Predicate>
  Result<std::vector<ObjectId>> BoxQuery(const Box4& box, Predicate pred,
                                         QueryStats* stats);

  BufferPool* pool_;
  TransformIndexOptions options_;
  SpaceMapper mapper_;
  std::unique_ptr<BTree> btree_;
  std::unique_ptr<ObjectStore> store_;
  uint64_t live_objects_ = 0;
};

}  // namespace zdb

#endif  // ZDB_TRANSFORM_TRANSFORM_INDEX_H_
