// Copyright (c) zdb authors. Licensed under the MIT license.

#include "transform/morton4.h"

namespace zdb {

uint64_t SpreadBits4(uint16_t v) {
  uint64_t x = v;
  x = (x | (x << 24)) & 0x000000ff000000ffULL;
  x = (x | (x << 12)) & 0x000f000f000f000fULL;
  x = (x | (x << 6)) & 0x0303030303030303ULL;
  x = (x | (x << 3)) & 0x1111111111111111ULL;
  return x;
}

uint16_t CollectBits4(uint64_t v) {
  uint64_t x = v & 0x1111111111111111ULL;
  x = (x | (x >> 3)) & 0x0303030303030303ULL;
  x = (x | (x >> 6)) & 0x000f000f000f000fULL;
  x = (x | (x >> 12)) & 0x000000ff000000ffULL;
  x = (x | (x >> 24)) & 0x000000000000ffffULL;
  return static_cast<uint16_t>(x);
}

uint64_t Morton4Encode(uint16_t c0, uint16_t c1, uint16_t c2, uint16_t c3) {
  return SpreadBits4(c0) | (SpreadBits4(c1) << 1) | (SpreadBits4(c2) << 2) |
         (SpreadBits4(c3) << 3);
}

void Morton4Decode(uint64_t z, uint16_t c[4]) {
  c[0] = CollectBits4(z);
  c[1] = CollectBits4(z >> 1);
  c[2] = CollectBits4(z >> 2);
  c[3] = CollectBits4(z >> 3);
}

}  // namespace zdb
