// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Query decomposition in the 4-D transform space. Data objects are
// single points there (redundancy 1 by construction); all approximation
// happens on the QUERY side: the 4-D query box — typically touching two
// axes of the space — is covered by z-elements with the same greedy
// max-dead-volume refinement as the 2-D case.

#ifndef ZDB_TRANSFORM_DECOMPOSE4_H_
#define ZDB_TRANSFORM_DECOMPOSE4_H_

#include <vector>

#include "transform/element4.h"

namespace zdb {

/// Covers `box` with at most `max_elements` disjoint z-elements, sorted
/// canonically.
std::vector<ZElement4> DecomposeBox4(const Box4& box,
                                     uint32_t max_elements);

}  // namespace zdb

#endif  // ZDB_TRANSFORM_DECOMPOSE4_H_
