// Copyright (c) zdb authors. Licensed under the MIT license.

#include "transform/element4.h"

namespace zdb {

std::string Box4::ToString() const {
  std::string s = "[";
  for (int d = 0; d < 4; ++d) {
    s += std::to_string(lo[d]) + ".." + std::to_string(hi[d]);
    if (d < 3) s += " x ";
  }
  return s + "]";
}

Box4 ZElement4::ToBox() const {
  Box4 box;
  for (int d = 0; d < 4; ++d) {
    // Bits of dimension d live at code positions 4i + d; position p is
    // fixed by the prefix iff p >= 64 - level.
    uint32_t fixed = 0;
    for (int i = 15; i >= 0; --i) {
      if (4 * i + d >= 64 - static_cast<int>(level)) {
        ++fixed;
      } else {
        break;
      }
    }
    const uint16_t lo_d = CollectBits4(zmin >> d);
    const uint16_t spread =
        (fixed >= 16) ? 0 : static_cast<uint16_t>((1u << (16 - fixed)) - 1);
    box.lo[d] = lo_d;
    box.hi[d] = static_cast<uint16_t>(lo_d | spread);
  }
  return box;
}

}  // namespace zdb
