// Copyright (c) zdb authors. Licensed under the MIT license.
//
// 4-dimensional Morton codes for the transformation technique: a 2-D
// rectangle becomes the 4-D point (xlo, xhi, ylo, yhi) — the "corner
// representation" — and is stored as a single z-order key. Dimension d's
// bit i occupies code bit 4*i + d, so 16-bit coordinates fill a 64-bit
// code exactly.

#ifndef ZDB_TRANSFORM_MORTON4_H_
#define ZDB_TRANSFORM_MORTON4_H_

#include <cstdint>

namespace zdb {

/// Coordinate resolution per dimension of the 4-D transform space.
inline constexpr uint32_t kTransformBits = 16;

/// Spreads the low 16 bits of v so bit i moves to bit 4i.
uint64_t SpreadBits4(uint16_t v);

/// Inverse of SpreadBits4: collects bits at positions 4i.
uint16_t CollectBits4(uint64_t v);

/// Z-code of the 4-D point (c0, c1, c2, c3).
uint64_t Morton4Encode(uint16_t c0, uint16_t c1, uint16_t c2, uint16_t c3);

/// Inverse of Morton4Encode.
void Morton4Decode(uint64_t z, uint16_t c[4]);

}  // namespace zdb

#endif  // ZDB_TRANSFORM_MORTON4_H_
