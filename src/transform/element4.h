// Copyright (c) zdb authors. Licensed under the MIT license.
//
// 4-D z-elements: prefix cells of the 64-bit transform space. Same
// algebra as the 2-D ZElement, on four dimensions. Geometric cells are
// Box4 — products of dyadic intervals, one per dimension.

#ifndef ZDB_TRANSFORM_ELEMENT4_H_
#define ZDB_TRANSFORM_ELEMENT4_H_

#include <cstdint>
#include <string>

#include "transform/morton4.h"

namespace zdb {

/// Inclusive box of 4-D grid cells.
struct Box4 {
  uint16_t lo[4] = {0, 0, 0, 0};
  uint16_t hi[4] = {0, 0, 0, 0};

  bool Intersects(const Box4& o) const {
    for (int d = 0; d < 4; ++d) {
      if (lo[d] > o.hi[d] || o.lo[d] > hi[d]) return false;
    }
    return true;
  }

  bool Contains(const Box4& o) const {
    for (int d = 0; d < 4; ++d) {
      if (o.lo[d] < lo[d] || o.hi[d] > hi[d]) return false;
    }
    return true;
  }

  /// Cell count (up to 2^64; exact in 128-bit arithmetic).
  unsigned __int128 Volume() const {
    unsigned __int128 v = 1;
    for (int d = 0; d < 4; ++d) {
      v *= static_cast<uint64_t>(hi[d]) - lo[d] + 1;
    }
    return v;
  }

  unsigned __int128 IntersectionVolume(const Box4& o) const {
    unsigned __int128 v = 1;
    for (int d = 0; d < 4; ++d) {
      const uint32_t l = lo[d] > o.lo[d] ? lo[d] : o.lo[d];
      const uint32_t h = hi[d] < o.hi[d] ? hi[d] : o.hi[d];
      if (l > h) return 0;
      v *= h - l + 1;
    }
    return v;
  }

  std::string ToString() const;
};

/// A prefix of `level` bits of a 64-bit 4-D Morton code.
struct ZElement4 {
  uint64_t zmin = 0;
  uint8_t level = 0;  ///< 0 (whole space) .. 64 (single cell)

  static ZElement4 Root() { return ZElement4{}; }

  /// Width of the z-interval: 2^(64-level).
  unsigned __int128 interval_size() const {
    return static_cast<unsigned __int128>(1) << (64 - level);
  }

  uint64_t zmax() const {
    if (level == 0) return ~0ULL;
    return zmin | ((~0ULL) >> level);
  }

  bool is_full_resolution() const { return level == 64; }

  ZElement4 Child(int i) const {
    const uint64_t half = 1ULL << (63 - level);
    return ZElement4{zmin | (i ? half : 0),
                     static_cast<uint8_t>(level + 1)};
  }

  /// The 4-D cell box this element covers.
  Box4 ToBox() const;

  bool operator<(const ZElement4& e) const {
    if (zmin != e.zmin) return zmin < e.zmin;
    return level < e.level;
  }
  bool operator==(const ZElement4& e) const {
    return zmin == e.zmin && level == e.level;
  }
};

}  // namespace zdb

#endif  // ZDB_TRANSFORM_ELEMENT4_H_
