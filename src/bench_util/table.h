// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Aligned-text table printer for the experiment binaries, which emit the
// paper-style tables on stdout (and optionally CSV for plotting).

#ifndef ZDB_BENCH_UTIL_TABLE_H_
#define ZDB_BENCH_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace zdb {

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns)
      : title_(std::move(title)), columns_(std::move(columns)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Renders with per-column alignment (first column left, rest right).
  void Print() const;

  /// Comma-separated rendering for downstream plotting.
  std::string ToCsv() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("12.34").
std::string Fmt(double v, int precision = 2);

/// Integer formatting.
std::string Fmt(uint64_t v);
std::string Fmt(int v);


}  // namespace zdb

#endif  // ZDB_BENCH_UTIL_TABLE_H_
