// Copyright (c) zdb authors. Licensed under the MIT license.

#include "bench_util/runner.h"

namespace zdb {

Env MakeEnv(uint32_t page_size, size_t pool_pages) {
  Env env;
  env.pager = Pager::OpenInMemory(page_size);
  env.pool = std::make_unique<BufferPool>(env.pager.get(), pool_pages);
  return env;
}

void ResizePool(Env* env, size_t pool_pages) {
  env->pool = std::make_unique<BufferPool>(env->pager.get(), pool_pages);
}

Result<std::unique_ptr<SpatialIndex>> MakeZIndex(
    Env* env, const SpatialIndexOptions& options) {
  return SpatialIndex::Create(env->pool.get(), options);
}

Result<std::unique_ptr<SpatialIndex>> OpenZIndex(Env* env, PageId master) {
  return SpatialIndex::Open(env->pool.get(), master);
}

Result<std::unique_ptr<SpatialIndex>> BuildZIndex(
    Env* env, const std::vector<Rect>& data,
    const SpatialIndexOptions& options, BuildResult* build) {
  const IoStats snap = env->pager->io_stats();
  std::unique_ptr<SpatialIndex> index;
  ZDB_ASSIGN_OR_RETURN(index, SpatialIndex::Create(env->pool.get(), options));
  for (const Rect& r : data) {
    ZDB_RETURN_IF_ERROR(index->Insert(r).status());
  }
  ZDB_RETURN_IF_ERROR(env->pool->FlushAll());
  if (build != nullptr) {
    const IoStats d = env->Delta(snap);
    build->avg_insert_accesses =
        data.empty() ? 0.0
                     : static_cast<double>(d.accesses()) / data.size();
    build->pages = env->pager->live_page_count();
    build->height = index->btree()->height();
    build->redundancy = index->build_stats().redundancy();
    build->avg_error = index->build_stats().avg_error();
  }
  return index;
}

Result<std::unique_ptr<RTree>> BuildRTree(Env* env,
                                          const std::vector<Rect>& data,
                                          const RTreeOptions& options,
                                          BuildResult* build) {
  const IoStats snap = env->pager->io_stats();
  std::unique_ptr<RTree> tree;
  ZDB_ASSIGN_OR_RETURN(tree, RTree::Create(env->pool.get(), options));
  for (size_t i = 0; i < data.size(); ++i) {
    ZDB_RETURN_IF_ERROR(
        tree->Insert(data[i], static_cast<ObjectId>(i)));
  }
  ZDB_RETURN_IF_ERROR(env->pool->FlushAll());
  if (build != nullptr) {
    const IoStats d = env->Delta(snap);
    build->avg_insert_accesses =
        data.empty() ? 0.0
                     : static_cast<double>(d.accesses()) / data.size();
    build->pages = env->pager->live_page_count();
    build->height = tree->height();
    build->redundancy = 1.0;
  }
  return tree;
}

namespace {

template <typename QueryFn>
Result<RunResult> RunBatch(Env* env, size_t n, const QueryFn& fn) {
  RunResult run;
  run.queries = n;
  uint64_t total_accesses = 0;
  uint64_t total_results = 0;
  for (size_t i = 0; i < n; ++i) {
    ZDB_RETURN_IF_ERROR(env->pool->Clear());  // cold cache per query
    const IoStats snap = env->pager->io_stats();
    uint64_t results = 0;
    ZDB_RETURN_IF_ERROR(fn(i, &results, &run.totals));
    total_accesses += env->Delta(snap).accesses();
    total_results += results;
  }
  if (n > 0) {
    run.avg_accesses = static_cast<double>(total_accesses) / n;
    run.avg_results = static_cast<double>(total_results) / n;
  }
  return run;
}

}  // namespace

Result<RunResult> RunWindowQueries(Env* env, SpatialIndex* index,
                                   const std::vector<Rect>& windows) {
  return RunBatch(env, windows.size(),
                  [&](size_t i, uint64_t* results, QueryStats* totals) {
                    QueryStats qs;
                    auto r = index->WindowQuery(windows[i], &qs);
                    if (!r.ok()) return r.status();
                    *results = r.value().size();
                    totals->Add(qs);
                    return Status::OK();
                  });
}

Result<RunResult> RunPointQueries(Env* env, SpatialIndex* index,
                                  const std::vector<Point>& points) {
  return RunBatch(env, points.size(),
                  [&](size_t i, uint64_t* results, QueryStats* totals) {
                    QueryStats qs;
                    auto r = index->PointQuery(points[i], &qs);
                    if (!r.ok()) return r.status();
                    *results = r.value().size();
                    totals->Add(qs);
                    return Status::OK();
                  });
}

Result<RunResult> RunRTreeWindowQueries(Env* env, RTree* tree,
                                        const std::vector<Rect>& windows) {
  return RunBatch(env, windows.size(),
                  [&](size_t i, uint64_t* results, QueryStats*) {
                    RQueryStats qs;
                    auto r = tree->WindowQuery(windows[i], &qs);
                    if (!r.ok()) return r.status();
                    *results = r.value().size();
                    return Status::OK();
                  });
}

Result<RunResult> RunRTreePointQueries(Env* env, RTree* tree,
                                       const std::vector<Point>& points) {
  return RunBatch(env, points.size(),
                  [&](size_t i, uint64_t* results, QueryStats*) {
                    RQueryStats qs;
                    auto r = tree->PointQuery(points[i], &qs);
                    if (!r.ok()) return r.status();
                    *results = r.value().size();
                    return Status::OK();
                  });
}

}  // namespace zdb
