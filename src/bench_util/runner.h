// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Shared plumbing for the experiment binaries: environment construction,
// index building with I/O accounting, and query-batch runners that report
// average page accesses per query under a cold cache (the pool is
// flushed between queries, so every query pays its full path — the
// "search path buffer only" regime of the 1989 setups, measured
// uniformly for all methods).

#ifndef ZDB_BENCH_UTIL_RUNNER_H_
#define ZDB_BENCH_UTIL_RUNNER_H_

#include <memory>
#include <vector>

#include "core/spatial_index.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "workload/datagen.h"
#include "workload/querygen.h"

namespace zdb {

/// Storage environment of one experiment run.
struct Env {
  std::unique_ptr<Pager> pager;
  std::unique_ptr<BufferPool> pool;

  /// Page accesses since the given snapshot.
  IoStats Delta(const IoStats& snap) const {
    return pager->io_stats().Since(snap);
  }
};

/// Default experiment page size: 512 bytes, as in the era's comparisons
/// (small pages emulate much larger files at a given object count).
inline constexpr uint32_t kBenchPageSize = 512;

/// Default pool: enough frames for a search path plus siblings, small
/// enough that data pages do not linger.
inline constexpr size_t kBenchPoolPages = 16;

Env MakeEnv(uint32_t page_size = kBenchPageSize,
            size_t pool_pages = kBenchPoolPages);

/// Replaces `env`'s pool with one of `pool_pages` frames over the same
/// pager — cache-size ablations re-attach their index afterwards.
void ResizePool(Env* env, size_t pool_pages);

/// Build metrics common to all methods.
struct BuildResult {
  double avg_insert_accesses = 0.0;  ///< page reads+writes per insert
  uint64_t pages = 0;                ///< pages allocated (index + data)
  uint32_t height = 0;
  double redundancy = 1.0;           ///< index entries per object
  double avg_error = 0.0;            ///< mean decomposition error
};

/// Creates an empty z-order index in `env`. Engine assembly lives here
/// so the bench binaries never construct SpatialIndex directly.
Result<std::unique_ptr<SpatialIndex>> MakeZIndex(
    Env* env, const SpatialIndexOptions& options);

/// Re-attaches a checkpointed index in `env` from its master page.
Result<std::unique_ptr<SpatialIndex>> OpenZIndex(Env* env, PageId master);

/// Builds a z-order index over `data`, measuring insertion I/O.
Result<std::unique_ptr<SpatialIndex>> BuildZIndex(
    Env* env, const std::vector<Rect>& data,
    const SpatialIndexOptions& options, BuildResult* build = nullptr);

/// Builds an R-tree over `data` (ids 0..n-1), measuring insertion I/O.
Result<std::unique_ptr<RTree>> BuildRTree(Env* env,
                                          const std::vector<Rect>& data,
                                          const RTreeOptions& options,
                                          BuildResult* build = nullptr);

/// Aggregated result of a query batch.
struct RunResult {
  double avg_accesses = 0.0;  ///< page reads+writes per query, cold cache
  double avg_results = 0.0;
  QueryStats totals;          ///< summed per-query stats
  size_t queries = 0;

  double per_query(uint64_t total) const {
    return queries ? static_cast<double>(total) / queries : 0.0;
  }
};

/// Runs window queries against a z-index, cold cache per query.
Result<RunResult> RunWindowQueries(Env* env, SpatialIndex* index,
                                   const std::vector<Rect>& windows);

/// Runs point queries against a z-index, cold cache per query.
Result<RunResult> RunPointQueries(Env* env, SpatialIndex* index,
                                  const std::vector<Point>& points);

/// Runs window queries against an R-tree, cold cache per query.
Result<RunResult> RunRTreeWindowQueries(Env* env, RTree* tree,
                                        const std::vector<Rect>& windows);

/// Runs point queries against an R-tree, cold cache per query.
Result<RunResult> RunRTreePointQueries(Env* env, RTree* tree,
                                       const std::vector<Point>& points);

}  // namespace zdb

#endif  // ZDB_BENCH_UTIL_RUNNER_H_
