// Copyright (c) zdb authors. Licensed under the MIT license.

#include "bench_util/table.h"

#include <cstdio>
#include <iostream>

namespace zdb {

std::string Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Fmt(uint64_t v) { return std::to_string(v); }
std::string Fmt(int v) { return std::to_string(v); }


void Table::Print() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto pad = [](const std::string& s, size_t w, bool left) {
    std::string out;
    if (left) {
      out = s + std::string(w - s.size(), ' ');
    } else {
      out = std::string(w - s.size(), ' ') + s;
    }
    return out;
  };

  std::cout << "\n== " << title_ << " ==\n";
  std::string header, rule;
  for (size_t c = 0; c < columns_.size(); ++c) {
    header += pad(columns_[c], widths[c], c == 0);
    rule += std::string(widths[c], '-');
    if (c + 1 < columns_.size()) {
      header += "  ";
      rule += "--";
    }
  }
  std::cout << header << "\n" << rule << "\n";
  for (const auto& row : rows_) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += pad(row[c], widths[c], c == 0);
      if (c + 1 < row.size()) line += "  ";
    }
    std::cout << line << "\n";
  }
  std::cout.flush();
}

std::string Table::ToCsv() const {
  std::string out;
  for (size_t c = 0; c < columns_.size(); ++c) {
    out += columns_[c];
    out += (c + 1 < columns_.size()) ? "," : "\n";
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out += (c + 1 < row.size()) ? "," : "\n";
    }
  }
  return out;
}

}  // namespace zdb
