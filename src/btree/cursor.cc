// Copyright (c) zdb authors. Licensed under the MIT license.

#include "btree/cursor.h"

namespace zdb {

Status Cursor::PositionAt(Node leaf, uint16_t idx) {
  node_.emplace(std::move(leaf));
  idx_ = idx;
  return SkipEmptyForward();
}

Status Cursor::SkipEmptyForward() {
  while (node_ && idx_ >= node_->count()) {
    const PageId next = node_->next();
    node_.reset();
    if (next == kInvalidPageId) break;
    PageRef ref;
    ZDB_ASSIGN_OR_RETURN(ref, pool_->Fetch(next));
    node_.emplace(std::move(ref), page_size_);
    idx_ = 0;
  }
  return Status::OK();
}

Status Cursor::Next() {
  if (!Valid()) return Status::InvalidArgument("Next() on invalid cursor");
  ++idx_;
  return SkipEmptyForward();
}

}  // namespace zdb
