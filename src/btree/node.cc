// Copyright (c) zdb authors. Licensed under the MIT license.

#include "btree/node.h"

#include <cassert>
#include <cstring>
#include <vector>

#include "common/coding.h"

namespace zdb {

namespace {
constexpr size_t kTypeOff = 0;
constexpr size_t kCountOff = 2;
constexpr size_t kContentStartOff = 4;
constexpr size_t kFragOff = 6;
constexpr size_t kNextOff = 8;
}  // namespace

void Node::Init(PageRef* ref, Type type, uint32_t page_size) {
  char* p = ref->mutable_data();
  std::memset(p, 0, kHeaderSize);
  p[kTypeOff] = static_cast<char>(type);
  EncodeFixed16(p + kCountOff, 0);
  EncodeFixed16(p + kContentStartOff, static_cast<uint16_t>(page_size - 1));
  EncodeFixed16(p + kFragOff, 0);
  EncodeFixed32(p + kNextOff, kInvalidPageId);
}

Node::Type Node::type() const {
  return static_cast<Type>(base()[kTypeOff]);
}

uint16_t Node::count() const { return DecodeFixed16(base() + kCountOff); }
void Node::set_count(uint16_t n) { EncodeFixed16(mbase() + kCountOff, n); }

uint16_t Node::content_start() const {
  return DecodeFixed16(base() + kContentStartOff);
}
void Node::set_content_start(uint16_t v) {
  EncodeFixed16(mbase() + kContentStartOff, v);
}

uint16_t Node::frag_bytes() const { return DecodeFixed16(base() + kFragOff); }
void Node::set_frag_bytes(uint16_t v) {
  EncodeFixed16(mbase() + kFragOff, v);
}

PageId Node::next() const { return DecodeFixed32(base() + kNextOff); }
void Node::set_next(PageId id) { EncodeFixed32(mbase() + kNextOff, id); }

uint16_t Node::SlotOffset(uint16_t i) const {
  assert(i < count());
  return DecodeFixed16(base() + kHeaderSize + 2 * i);
}

void Node::SetSlotOffset(uint16_t i, uint16_t off) {
  EncodeFixed16(mbase() + kHeaderSize + 2 * i, off);
}

Slice Node::Key(uint16_t i) const {
  const char* p = Cell(i);
  const char* limit = base() + page_size_;
  uint32_t klen = 0;
  bool ok = GetVarint32(&p, limit, &klen);
  assert(ok);
  (void)ok;
  if (is_leaf()) {
    uint32_t vlen = 0;
    ok = GetVarint32(&p, limit, &vlen);
    assert(ok);
  }
  return Slice(p, klen);
}

Slice Node::Value(uint16_t i) const {
  assert(is_leaf());
  const char* p = Cell(i);
  const char* limit = base() + page_size_;
  uint32_t klen = 0, vlen = 0;
  bool ok = GetVarint32(&p, limit, &klen) && GetVarint32(&p, limit, &vlen);
  assert(ok);
  (void)ok;
  return Slice(p + klen, vlen);
}

PageId Node::Child(uint16_t i) const {
  assert(!is_leaf());
  if (i == count()) return next();
  const char* p = Cell(i);
  const char* limit = base() + page_size_;
  uint32_t klen = 0;
  bool ok = GetVarint32(&p, limit, &klen);
  assert(ok);
  (void)ok;
  return DecodeFixed32(p + klen);
}

void Node::SetChild(uint16_t i, PageId child) {
  assert(!is_leaf());
  if (i == count()) {
    set_next(child);
    return;
  }
  char* p = mbase() + SlotOffset(i);
  const char* q = p;
  const char* limit = base() + page_size_;
  uint32_t klen = 0;
  bool ok = GetVarint32(&q, limit, &klen);
  assert(ok);
  (void)ok;
  EncodeFixed32(p + (q - p) + klen, child);
}

size_t Node::CellSize(uint16_t i) const {
  const char* p = Cell(i);
  const char* start = p;
  const char* limit = base() + page_size_;
  uint32_t klen = 0;
  bool ok = GetVarint32(&p, limit, &klen);
  assert(ok);
  (void)ok;
  if (is_leaf()) {
    uint32_t vlen = 0;
    ok = GetVarint32(&p, limit, &vlen);
    assert(ok);
    return static_cast<size_t>(p - start) + klen + vlen;
  }
  return static_cast<size_t>(p - start) + klen + 4;
}

uint16_t Node::LowerBound(const Slice& key) const {
  uint16_t lo = 0, hi = count();
  while (lo < hi) {
    uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
    if (Key(mid).compare(key) < 0) {
      lo = static_cast<uint16_t>(mid + 1);
    } else {
      hi = mid;
    }
  }
  return lo;
}

uint16_t Node::UpperBound(const Slice& key) const {
  uint16_t lo = 0, hi = count();
  while (lo < hi) {
    uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
    if (Key(mid).compare(key) <= 0) {
      lo = static_cast<uint16_t>(mid + 1);
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t Node::LeafCellSize(size_t klen, size_t vlen) {
  return VarintLength32(static_cast<uint32_t>(klen)) +
         VarintLength32(static_cast<uint32_t>(vlen)) + klen + vlen;
}

size_t Node::InternalCellSize(size_t klen) {
  return VarintLength32(static_cast<uint32_t>(klen)) + klen + 4;
}

size_t Node::UsedBytes() const {
  size_t used = 2 * count();  // slots
  for (uint16_t i = 0; i < count(); ++i) used += CellSize(i);
  return used;
}

size_t Node::FreeBytes() const {
  const size_t slots_end = kHeaderSize + 2 * count();
  const size_t contiguous = (content_start() + 1) - slots_end;
  return contiguous + frag_bytes();
}

void Node::Compact() {
  const uint16_t n = count();
  std::vector<std::pair<uint16_t, std::vector<char>>> cells;
  cells.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    const size_t sz = CellSize(i);
    std::vector<char> bytes(sz);
    std::memcpy(bytes.data(), Cell(i), sz);
    cells.emplace_back(i, std::move(bytes));
  }
  size_t top = page_size_;
  char* p = mbase();
  for (auto& [idx, bytes] : cells) {
    top -= bytes.size();
    std::memcpy(p + top, bytes.data(), bytes.size());
    SetSlotOffset(idx, static_cast<uint16_t>(top));
  }
  set_content_start(static_cast<uint16_t>(top - 1));
  set_frag_bytes(0);
}

bool Node::InsertCell(uint16_t i, const char* cell, size_t size) {
  assert(i <= count());
  const uint16_t n = count();
  if (!HasSpaceFor(size)) return false;
  const size_t slots_end = kHeaderSize + 2 * (n + 1);
  size_t contiguous = (content_start() + 1) - (kHeaderSize + 2 * n);
  if (contiguous < size + 2) {
    Compact();
    contiguous = (content_start() + 1) - (kHeaderSize + 2 * n);
    if (contiguous < size + 2) return false;  // pathological varint shrink
  }
  const uint16_t off =
      static_cast<uint16_t>((content_start() + 1) - size);
  assert(off >= slots_end);
  (void)slots_end;
  std::memcpy(mbase() + off, cell, size);
  // Shift slots [i, n) right by one.
  char* slots = mbase() + kHeaderSize;
  std::memmove(slots + 2 * (i + 1), slots + 2 * i, 2 * (n - i));
  set_count(static_cast<uint16_t>(n + 1));
  SetSlotOffset(i, off);
  set_content_start(static_cast<uint16_t>(off - 1));
  return true;
}

bool Node::LeafInsert(uint16_t i, const Slice& key, const Slice& value) {
  assert(is_leaf());
  const size_t sz = LeafCellSize(key.size(), value.size());
  std::vector<char> cell(sz);
  char* p = cell.data();
  p += EncodeVarint32(p, static_cast<uint32_t>(key.size()));
  p += EncodeVarint32(p, static_cast<uint32_t>(value.size()));
  std::memcpy(p, key.data(), key.size());
  std::memcpy(p + key.size(), value.data(), value.size());
  return InsertCell(i, cell.data(), sz);
}

bool Node::InternalInsert(uint16_t i, const Slice& key, PageId child) {
  assert(!is_leaf());
  const size_t sz = InternalCellSize(key.size());
  std::vector<char> cell(sz);
  char* p = cell.data();
  p += EncodeVarint32(p, static_cast<uint32_t>(key.size()));
  std::memcpy(p, key.data(), key.size());
  EncodeFixed32(p + key.size(), child);
  return InsertCell(i, cell.data(), sz);
}

void Node::Remove(uint16_t i) {
  const uint16_t n = count();
  assert(i < n);
  const size_t sz = CellSize(i);
  const uint16_t off = SlotOffset(i);
  char* slots = mbase() + kHeaderSize;
  std::memmove(slots + 2 * i, slots + 2 * (i + 1), 2 * (n - i - 1));
  set_count(static_cast<uint16_t>(n - 1));
  if (off == content_start() + 1) {
    // Cell was the lowest; grow the contiguous area directly.
    set_content_start(static_cast<uint16_t>(off + sz - 1));
  } else {
    set_frag_bytes(static_cast<uint16_t>(frag_bytes() + sz));
  }
}

bool Node::LeafSetValue(uint16_t i, const Slice& value) {
  assert(is_leaf());
  std::string key = Key(i).ToString();
  std::string old_value = Value(i).ToString();
  Remove(i);
  if (!LeafInsert(i, Slice(key), value)) {
    // Not enough space for the new value: restore the original entry
    // (guaranteed to fit since it was just removed) and report failure.
    bool restored = LeafInsert(i, Slice(key), Slice(old_value));
    assert(restored);
    (void)restored;
    return false;
  }
  return true;
}

}  // namespace zdb
