// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Disk-based B+-tree with variable-length keys and values over the buffer
// pool. Keys are unique byte strings ordered lexicographically (see
// common/coding.h for order-preserving encodings). Supports point lookup,
// ordered scans via Cursor, deletion with rebalancing (borrow/merge), and
// bottom-up bulk loading from a sorted stream.
//
// Concurrency: safe for any number of concurrent readers (Get/Seek/
// cursor scans) as long as no thread mutates the tree — the read path
// only pins pages through the thread-safe BufferPool and reads immutable
// in-memory metadata. Mutations (Insert/Put/Delete/BulkLoad) require
// external exclusive access; there is no latch-crabbing. SpatialIndex
// provides that exclusion: its reader/writer latch maps queries to
// shared sections and mutations to exclusive ones (see
// core/spatial_index.h), so a BTree owned by a SpatialIndex needs no
// extra locking by the caller.

#ifndef ZDB_BTREE_BTREE_H_
#define ZDB_BTREE_BTREE_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "btree/node.h"
#include "common/result.h"
#include "common/slice.h"
#include "storage/buffer_pool.h"

namespace zdb {

class Cursor;

/// Aggregate statistics from a full tree walk (tests and benches).
struct BTreeStats {
  uint64_t entries = 0;
  uint32_t height = 0;
  uint32_t leaf_pages = 0;
  uint32_t internal_pages = 0;
  double avg_leaf_fill = 0.0;  ///< mean used/capacity over leaves

  uint32_t total_pages() const { return leaf_pages + internal_pages; }
};

/// A single-rooted B+-tree. Create() formats a new tree; Open() re-attaches
/// to one previously created in the same pager via its meta page.
class BTree {
 public:
  static Result<std::unique_ptr<BTree>> Create(BufferPool* pool);
  static Result<std::unique_ptr<BTree>> Open(BufferPool* pool,
                                             PageId meta_page);

  /// Meta page id; pass to Open() to re-attach.
  PageId meta_page() const { return meta_page_; }

  /// Inserts a new key. Fails with AlreadyExists if the key is present.
  Status Insert(const Slice& key, const Slice& value);

  /// Inserts or overwrites.
  Status Put(const Slice& key, const Slice& value);

  /// Removes a key. Fails with NotFound if absent.
  Status Delete(const Slice& key);

  /// Point lookup.
  Result<std::string> Get(const Slice& key);

  /// Cursor positioned at the first entry with key >= `key` (may be
  /// invalid if no such entry). The cursor must not outlive the tree and
  /// is invalidated by any mutation.
  Result<Cursor> Seek(const Slice& key);

  /// Cursor at the smallest key.
  Result<Cursor> SeekFirst();

  /// Bottom-up bulk load of a sorted, unique key stream into an empty
  /// tree. `next` returns false when exhausted. `fill` in (0,1] is the
  /// target leaf occupancy.
  Status BulkLoad(
      const std::function<bool(std::string* key, std::string* value)>& next,
      double fill = 0.9);

  uint64_t size() const { return count_; }
  uint32_t height() const { return height_; }

  /// Current root page (captured into snapshot metas by the index
  /// writer under the exclusive latch).
  PageId root() const { return root_; }

  /// Persists the in-memory root/height/count to the meta page. Call
  /// before dropping the tree if it will be re-attached with Open().
  Status Flush();

  /// Full structural audit: key order within and across nodes, separator
  /// bounds, uniform leaf depth, leaf-chain consistency, stored count.
  /// Intended for tests; walks the whole tree.
  Status CheckInvariants() const;

  /// Walks the tree collecting page/fill statistics.
  Result<BTreeStats> ComputeStats() const;

 private:
  friend class Cursor;

  BTree(BufferPool* pool, PageId meta_page)
      : pool_(pool), meta_page_(meta_page) {}

  struct SplitResult {
    bool split = false;
    std::string separator;  ///< first key routed to the right node
    PageId right = kInvalidPageId;
  };

  Status InsertRec(PageId page, const Slice& key, const Slice& value,
                   bool overwrite, SplitResult* out);
  Status SplitLeaf(Node* node, const Slice& key, const Slice& value,
                   SplitResult* out);
  Status SplitInternal(Node* node, const Slice& key, PageId child,
                       SplitResult* out);

  Status DeleteRec(PageId page, const Slice& key, bool* underflow);
  Status RebalanceChild(Node* parent, uint16_t child_pos);
  Status MergeChildren(Node* parent, uint16_t sep_idx, Node* left,
                       Node* right);

  /// Replaces the key of parent cell `idx` keeping its child pointer.
  /// Returns false (leaving the parent unchanged) if space is lacking.
  bool ReplaceParentKey(Node* parent, uint16_t idx, const Slice& new_key);

  bool IsUnderfull(const Node& node) const {
    // Root is exempt; checked by callers.
    return node.UsedBytes() <
           (pool_->pager()->page_size() - Node::kHeaderSize) / 3;
  }

  Status LoadMeta();
  Status StoreMeta();

  /// Root for the read path: the pinned snapshot's root when this tree
  /// is running under an installed SnapshotView (page reads then
  /// resolve through the version chains via BufferPool::Fetch), the
  /// live root otherwise.
  PageId ReadRoot() const {
    if (const SnapshotView* v = SnapshotView::FindBTree(this)) {
      return v->meta->btree_root;
    }
    return root_;
  }

  Status CheckRec(PageId page, uint32_t depth,
                  const std::optional<std::string>& lower,
                  const std::optional<std::string>& upper,
                  uint32_t* leaf_depth, uint64_t* entries,
                  PageId* prev_leaf) const;

  BufferPool* pool_;
  PageId meta_page_;
  PageId root_ = kInvalidPageId;
  uint32_t height_ = 1;  // number of levels; 1 == root is a leaf
  uint64_t count_ = 0;
};

}  // namespace zdb

#endif  // ZDB_BTREE_BTREE_H_
