// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Forward cursor over B+-tree entries in key order. Obtained from
// BTree::Seek(); walks leaves via the right-sibling chain. A cursor pins
// exactly one leaf page at a time, is invalidated by any tree mutation,
// and must not outlive its tree.

#ifndef ZDB_BTREE_CURSOR_H_
#define ZDB_BTREE_CURSOR_H_

#include <optional>

#include "btree/node.h"
#include "common/slice.h"
#include "common/status.h"
#include "storage/buffer_pool.h"

namespace zdb {

class Cursor {
 public:
  Cursor(BufferPool* pool, uint32_t page_size)
      : pool_(pool), page_size_(page_size) {}

  Cursor(Cursor&&) = default;
  Cursor& operator=(Cursor&&) = default;

  /// True while positioned on an entry.
  bool Valid() const { return node_.has_value(); }

  /// Key of the current entry. Valid until the next Next()/destruction.
  Slice key() const { return node_->Key(idx_); }

  /// Value of the current entry.
  Slice value() const { return node_->Value(idx_); }

  /// Advances to the next entry in key order; cursor becomes invalid past
  /// the last entry.
  Status Next();

  /// Positions the cursor inside `leaf` at slot `idx`, skipping forward
  /// through the leaf chain if idx is one-past-the-end. Internal API used
  /// by BTree::Seek.
  Status PositionAt(Node leaf, uint16_t idx);

 private:
  Status SkipEmptyForward();

  BufferPool* pool_;
  uint32_t page_size_;
  std::optional<Node> node_;
  uint16_t idx_ = 0;
};

}  // namespace zdb

#endif  // ZDB_BTREE_CURSOR_H_
