// Copyright (c) zdb authors. Licensed under the MIT license.

#include "btree/btree.h"

#include <cassert>
#include <cstring>
#include <vector>

#include "btree/cursor.h"
#include "common/coding.h"

namespace zdb {

namespace {

constexpr uint32_t kMetaMagic = 0x7a627431;  // "zbt1"
constexpr size_t kMetaMagicOff = 0;
constexpr size_t kMetaRootOff = 4;
constexpr size_t kMetaHeightOff = 8;
constexpr size_t kMetaCountOff = 12;

/// A materialized leaf entry, used by the rebuild-based split paths.
struct LeafEntry {
  std::string key;
  std::string value;
  size_t cell_size() const { return Node::LeafCellSize(key.size(), value.size()); }
};

/// A materialized internal entry.
struct InternalEntry {
  std::string key;
  PageId child;
  size_t cell_size() const { return Node::InternalCellSize(key.size()); }
};

std::vector<LeafEntry> DrainLeaf(Node* node) {
  std::vector<LeafEntry> out;
  out.reserve(node->count());
  for (uint16_t i = 0; i < node->count(); ++i) {
    out.push_back({node->Key(i).ToString(), node->Value(i).ToString()});
  }
  return out;
}

void RebuildLeaf(Node* node, const std::vector<LeafEntry>& entries,
                 size_t begin, size_t end, PageId next, uint32_t page_size) {
  // Re-init in place; the PageRef inside Node stays pinned.
  char* raw = nullptr;
  (void)raw;
  // Node has no public reinit; emulate by removing all and reinserting
  // would be O(n^2); instead we re-format through Init-equivalent logic:
  // remove from the tail is O(1) amortized since tail cells are lowest.
  while (node->count() > 0) node->Remove(node->count() - 1);
  node->Compact();
  node->set_next(next);
  for (size_t i = begin; i < end; ++i) {
    bool ok = node->LeafInsert(static_cast<uint16_t>(i - begin),
                               Slice(entries[i].key), Slice(entries[i].value));
    assert(ok);
    (void)ok;
  }
  (void)page_size;
}

void RebuildInternal(Node* node, const std::vector<InternalEntry>& cells,
                     size_t begin, size_t end, PageId rightmost) {
  while (node->count() > 0) node->Remove(node->count() - 1);
  node->Compact();
  node->set_next(rightmost);
  for (size_t i = begin; i < end; ++i) {
    bool ok = node->InternalInsert(static_cast<uint16_t>(i - begin),
                                   Slice(cells[i].key), cells[i].child);
    assert(ok);
    (void)ok;
  }
}

/// Index that splits `sizes` into two byte-balanced halves: left covers
/// [0, idx), right covers [idx, n). Guarantees both sides non-empty.
template <typename T>
size_t BalancedSplitIndex(const std::vector<T>& entries) {
  size_t total = 0;
  for (const auto& e : entries) total += e.cell_size() + 2;
  size_t acc = 0;
  for (size_t i = 0; i + 1 < entries.size(); ++i) {
    acc += entries[i].cell_size() + 2;
    if (acc >= total / 2) return i + 1;
  }
  return entries.size() - 1;
}

}  // namespace

Result<std::unique_ptr<BTree>> BTree::Create(BufferPool* pool) {
  PageRef meta;
  ZDB_ASSIGN_OR_RETURN(meta, pool->New());
  PageRef root;
  ZDB_ASSIGN_OR_RETURN(root, pool->New());
  Node::Init(&root, Node::Type::kLeaf, pool->pager()->page_size());

  std::unique_ptr<BTree> tree(new BTree(pool, meta.id()));
  tree->root_ = root.id();
  tree->height_ = 1;
  tree->count_ = 0;
  meta.Release();
  root.Release();
  ZDB_RETURN_IF_ERROR(tree->StoreMeta());
  return tree;
}

Result<std::unique_ptr<BTree>> BTree::Open(BufferPool* pool,
                                           PageId meta_page) {
  std::unique_ptr<BTree> tree(new BTree(pool, meta_page));
  ZDB_RETURN_IF_ERROR(tree->LoadMeta());
  return tree;
}

Status BTree::LoadMeta() {
  PageRef meta;
  ZDB_ASSIGN_OR_RETURN(meta, pool_->Fetch(meta_page_));
  const char* p = meta.data();
  if (DecodeFixed32(p + kMetaMagicOff) != kMetaMagic) {
    return Status::Corruption("bad btree meta magic");
  }
  root_ = DecodeFixed32(p + kMetaRootOff);
  height_ = DecodeFixed32(p + kMetaHeightOff);
  count_ = DecodeFixed64(p + kMetaCountOff);
  return Status::OK();
}

Status BTree::StoreMeta() {
  PageRef meta;
  ZDB_ASSIGN_OR_RETURN(meta, pool_->Fetch(meta_page_));
  char* p = meta.mutable_data();
  EncodeFixed32(p + kMetaMagicOff, kMetaMagic);
  EncodeFixed32(p + kMetaRootOff, root_);
  EncodeFixed32(p + kMetaHeightOff, height_);
  EncodeFixed64(p + kMetaCountOff, count_);
  return Status::OK();
}

// ---------------------------------------------------------------- insert

Status BTree::Insert(const Slice& key, const Slice& value) {
  const uint32_t page_size = pool_->pager()->page_size();
  if (Node::LeafCellSize(key.size(), value.size()) >
      Node::MaxCellSize(page_size)) {
    return Status::InvalidArgument("key/value too large for page size");
  }
  SplitResult split;
  ZDB_RETURN_IF_ERROR(InsertRec(root_, key, value, /*overwrite=*/false,
                                &split));
  if (split.split) {
    PageRef new_root_ref;
    ZDB_ASSIGN_OR_RETURN(new_root_ref, pool_->New());
    Node::Init(&new_root_ref, Node::Type::kInternal, page_size);
    Node new_root(std::move(new_root_ref), page_size);
    bool ok = new_root.InternalInsert(0, Slice(split.separator), root_);
    assert(ok);
    (void)ok;
    new_root.set_next(split.right);
    root_ = new_root.id();
    ++height_;
  }
  ++count_;
  return Status::OK();
}

Status BTree::Put(const Slice& key, const Slice& value) {
  Status s = Insert(key, value);
  if (s.IsAlreadyExists()) {
    const uint32_t page_size = pool_->pager()->page_size();
    SplitResult split;
    ZDB_RETURN_IF_ERROR(
        InsertRec(root_, key, value, /*overwrite=*/true, &split));
    if (split.split) {
      PageRef new_root_ref;
      ZDB_ASSIGN_OR_RETURN(new_root_ref, pool_->New());
      Node::Init(&new_root_ref, Node::Type::kInternal, page_size);
      Node new_root(std::move(new_root_ref), page_size);
      bool ok = new_root.InternalInsert(0, Slice(split.separator), root_);
      assert(ok);
      (void)ok;
      new_root.set_next(split.right);
      root_ = new_root.id();
      ++height_;
    }
    return Status::OK();
  }
  return s;
}

Status BTree::InsertRec(PageId page, const Slice& key, const Slice& value,
                        bool overwrite, SplitResult* out) {
  const uint32_t page_size = pool_->pager()->page_size();
  PageRef ref;
  ZDB_ASSIGN_OR_RETURN(ref, pool_->Fetch(page));
  Node node(std::move(ref), page_size);

  if (node.is_leaf()) {
    uint16_t idx = node.LowerBound(key);
    if (idx < node.count() && node.Key(idx) == key) {
      if (!overwrite) return Status::AlreadyExists();
      if (node.LeafSetValue(idx, value)) return Status::OK();
      // New value does not fit: drop the old entry and fall through to
      // the regular insert-with-split path.
      node.Remove(idx);
    }
    if (node.LeafInsert(idx, key, value)) return Status::OK();
    return SplitLeaf(&node, key, value, out);
  }

  const uint16_t pos = node.UpperBound(key);
  const PageId child = node.Child(pos);
  SplitResult child_split;
  ZDB_RETURN_IF_ERROR(InsertRec(child, key, value, overwrite, &child_split));
  if (!child_split.split) return Status::OK();

  // Child split: old child keeps the low half; install (separator, child)
  // at pos and point the following slot at the new right page.
  if (node.InternalInsert(pos, Slice(child_split.separator), child)) {
    node.SetChild(static_cast<uint16_t>(pos + 1), child_split.right);
    return Status::OK();
  }
  return SplitInternal(&node, Slice(child_split.separator),
                       child_split.right, out);
}

Status BTree::SplitLeaf(Node* node, const Slice& key, const Slice& value,
                        SplitResult* out) {
  const uint32_t page_size = pool_->pager()->page_size();
  std::vector<LeafEntry> entries = DrainLeaf(node);
  // Insert the new pair at its sorted position.
  LeafEntry fresh{key.ToString(), value.ToString()};
  auto it = entries.begin();
  while (it != entries.end() && it->key < fresh.key) ++it;
  entries.insert(it, std::move(fresh));

  const size_t mid = BalancedSplitIndex(entries);

  PageRef right_ref;
  ZDB_ASSIGN_OR_RETURN(right_ref, pool_->New());
  Node::Init(&right_ref, Node::Type::kLeaf, page_size);
  Node right(std::move(right_ref), page_size);

  const PageId old_next = node->next();
  RebuildLeaf(&right, entries, mid, entries.size(), old_next, page_size);
  RebuildLeaf(node, entries, 0, mid, right.id(), page_size);

  out->split = true;
  out->separator = entries[mid].key;
  out->right = right.id();
  return Status::OK();
}

Status BTree::SplitInternal(Node* node, const Slice& key, PageId child,
                            SplitResult* out) {
  const uint32_t page_size = pool_->pager()->page_size();
  // Materialize: children c_0..c_n and boundary keys b_1..b_n where
  // b_i = separator below which c_{i-1} routes.
  std::vector<InternalEntry> cells;
  cells.reserve(node->count() + 1);
  for (uint16_t i = 0; i < node->count(); ++i) {
    cells.push_back({node->Key(i).ToString(), node->Child(i)});
  }
  PageId rightmost = node->next();

  // Insert the new separator: cell (key, old-child-at-pos); the child that
  // followed moves after it (i.e. new right page takes its slot).
  const std::string new_key = key.ToString();
  size_t pos = 0;
  while (pos < cells.size() && cells[pos].key < new_key) ++pos;
  PageId displaced = (pos < cells.size()) ? cells[pos].child : rightmost;
  cells.insert(cells.begin() + pos, {new_key, displaced});
  if (pos + 1 < cells.size()) {
    cells[pos + 1].child = child;
  } else {
    rightmost = child;
  }

  // Split: promote cells[mid].key; left keeps cells [0, mid) with
  // rightmost = cells[mid].child; right keeps (mid, n).
  const size_t mid = BalancedSplitIndex(cells);

  PageRef right_ref;
  ZDB_ASSIGN_OR_RETURN(right_ref, pool_->New());
  Node::Init(&right_ref, Node::Type::kInternal, page_size);
  Node right(std::move(right_ref), page_size);

  RebuildInternal(&right, cells, mid + 1, cells.size(), rightmost);
  const std::string promoted = cells[mid].key;
  const PageId left_rightmost = cells[mid].child;
  RebuildInternal(node, cells, 0, mid, left_rightmost);

  out->split = true;
  out->separator = promoted;
  out->right = right.id();
  return Status::OK();
}

// ---------------------------------------------------------------- lookup

Result<std::string> BTree::Get(const Slice& key) {
  const uint32_t page_size = pool_->pager()->page_size();
  PageId page = ReadRoot();
  for (;;) {
    PageRef ref;
    ZDB_ASSIGN_OR_RETURN(ref, pool_->Fetch(page));
    Node node(std::move(ref), page_size);
    if (node.is_leaf()) {
      uint16_t idx = node.LowerBound(key);
      if (idx < node.count() && node.Key(idx) == key) {
        return node.Value(idx).ToString();
      }
      return Status::NotFound();
    }
    page = node.Child(node.UpperBound(key));
  }
}

Result<Cursor> BTree::Seek(const Slice& key) {
  const uint32_t page_size = pool_->pager()->page_size();
  PageId page = ReadRoot();
  for (;;) {
    PageRef ref;
    ZDB_ASSIGN_OR_RETURN(ref, pool_->Fetch(page));
    Node node(std::move(ref), page_size);
    if (node.is_leaf()) {
      const uint16_t idx = node.LowerBound(key);
      Cursor cur(pool_, page_size);
      ZDB_RETURN_IF_ERROR(cur.PositionAt(std::move(node), idx));
      return cur;
    }
    page = node.Child(node.UpperBound(key));
  }
}

Result<Cursor> BTree::SeekFirst() { return Seek(Slice()); }

// ---------------------------------------------------------------- delete

Status BTree::Delete(const Slice& key) {
  bool underflow = false;
  ZDB_RETURN_IF_ERROR(DeleteRec(root_, key, &underflow));
  --count_;

  // Shrink the root when an internal root has a single child left.
  const uint32_t page_size = pool_->pager()->page_size();
  for (;;) {
    PageRef ref;
    ZDB_ASSIGN_OR_RETURN(ref, pool_->Fetch(root_));
    Node node(std::move(ref), page_size);
    if (node.is_leaf() || node.count() > 0) break;
    const PageId only_child = node.next();
    const PageId old_root = root_;
    node = Node(PageRef(), page_size);  // drop the pin before deleting
    ZDB_RETURN_IF_ERROR(pool_->Delete(old_root));
    root_ = only_child;
    --height_;
  }
  return Status::OK();
}

Status BTree::Flush() { return StoreMeta(); }

Status BTree::DeleteRec(PageId page, const Slice& key, bool* underflow) {
  const uint32_t page_size = pool_->pager()->page_size();
  PageRef ref;
  ZDB_ASSIGN_OR_RETURN(ref, pool_->Fetch(page));
  Node node(std::move(ref), page_size);

  if (node.is_leaf()) {
    uint16_t idx = node.LowerBound(key);
    if (idx >= node.count() || node.Key(idx) != key) {
      return Status::NotFound();
    }
    node.Remove(idx);
    *underflow = IsUnderfull(node);
    return Status::OK();
  }

  const uint16_t pos = node.UpperBound(key);
  bool child_underflow = false;
  ZDB_RETURN_IF_ERROR(DeleteRec(node.Child(pos), key, &child_underflow));
  if (child_underflow) {
    ZDB_RETURN_IF_ERROR(RebalanceChild(&node, pos));
  }
  *underflow = IsUnderfull(node);
  return Status::OK();
}

bool BTree::ReplaceParentKey(Node* parent, uint16_t idx,
                             const Slice& new_key) {
  const std::string old_key = parent->Key(idx).ToString();
  const PageId child = parent->Child(idx);
  parent->Remove(idx);
  if (parent->InternalInsert(idx, new_key, child)) return true;
  bool restored = parent->InternalInsert(idx, Slice(old_key), child);
  assert(restored);
  (void)restored;
  return false;
}

Status BTree::MergeChildren(Node* parent, uint16_t sep_idx, Node* left,
                            Node* right) {
  if (left->is_leaf()) {
    for (uint16_t i = 0; i < right->count(); ++i) {
      bool ok = left->LeafInsert(left->count(), right->Key(i),
                                 right->Value(i));
      assert(ok);
      (void)ok;
    }
    left->set_next(right->next());
  } else {
    // Pull the separator down, then absorb the right node's cells.
    bool ok = left->InternalInsert(left->count(), parent->Key(sep_idx),
                                   left->next());
    assert(ok);
    (void)ok;
    for (uint16_t i = 0; i < right->count(); ++i) {
      ok = left->InternalInsert(left->count(), right->Key(i),
                                right->Child(i));
      assert(ok);
      (void)ok;
    }
    left->set_next(right->next());
  }
  const PageId right_id = right->id();
  const PageId left_id = left->id();
  *right = Node(PageRef(), left->page_size());  // unpin before delete
  ZDB_RETURN_IF_ERROR(pool_->Delete(right_id));
  parent->Remove(sep_idx);
  parent->SetChild(sep_idx, left_id);
  return Status::OK();
}

Status BTree::RebalanceChild(Node* parent, uint16_t child_pos) {
  const uint32_t page_size = pool_->pager()->page_size();
  // Work on the (left, right) pair where `li` is the separator cell index.
  const uint16_t li = (child_pos > 0) ? static_cast<uint16_t>(child_pos - 1)
                                      : child_pos;
  if (parent->count() == 0) return Status::OK();  // nothing to pair with

  PageRef lref, rref;
  ZDB_ASSIGN_OR_RETURN(lref, pool_->Fetch(parent->Child(li)));
  ZDB_ASSIGN_OR_RETURN(
      rref, pool_->Fetch(parent->Child(static_cast<uint16_t>(li + 1))));
  Node left(std::move(lref), page_size);
  Node right(std::move(rref), page_size);

  const size_t payload = page_size - Node::kHeaderSize;
  const size_t sep_cost =
      left.is_leaf() ? 0
                     : Node::InternalCellSize(parent->Key(li).size()) + 2;

  if (left.UsedBytes() + right.UsedBytes() + sep_cost <= payload) {
    return MergeChildren(parent, li, &left, &right);
  }

  // Borrow towards the underfull side. If the parent cannot take the new
  // separator key (rare: longer key, full parent) we tolerate the
  // underflow — correctness is unaffected, occupancy is best-effort.
  const bool left_needy = IsUnderfull(left);
  if (left.is_leaf()) {
    if (left_needy) {
      while (IsUnderfull(left) && right.count() > 1) {
        bool ok = left.LeafInsert(left.count(), right.Key(0), right.Value(0));
        if (!ok) break;
        right.Remove(0);
      }
      ReplaceParentKey(parent, li, right.Key(0));
    } else {
      while (IsUnderfull(right) && left.count() > 1) {
        uint16_t last = static_cast<uint16_t>(left.count() - 1);
        bool ok = right.LeafInsert(0, left.Key(last), left.Value(last));
        if (!ok) break;
        left.Remove(last);
      }
      ReplaceParentKey(parent, li, right.Key(0));
    }
    return Status::OK();
  }

  // Internal rotation, one entry at a time.
  if (left_needy) {
    while (IsUnderfull(left) && right.count() > 1) {
      const std::string sep = parent->Key(li).ToString();
      const std::string new_sep = right.Key(0).ToString();
      if (!ReplaceParentKey(parent, li, Slice(new_sep))) break;
      bool ok = left.InternalInsert(left.count(), Slice(sep), left.next());
      assert(ok);
      (void)ok;
      left.set_next(right.Child(0));
      right.Remove(0);
    }
  } else {
    while (IsUnderfull(right) && left.count() > 1) {
      const std::string sep = parent->Key(li).ToString();
      const uint16_t last = static_cast<uint16_t>(left.count() - 1);
      const std::string new_sep = left.Key(last).ToString();
      if (!ReplaceParentKey(parent, li, Slice(new_sep))) break;
      bool ok = right.InternalInsert(0, Slice(sep), left.next());
      assert(ok);
      (void)ok;
      left.set_next(left.Child(last));
      left.Remove(last);
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------- bulk load

Status BTree::BulkLoad(
    const std::function<bool(std::string* key, std::string* value)>& next,
    double fill) {
  if (count_ != 0) return Status::InvalidArgument("bulk load into non-empty tree");
  if (fill <= 0.0 || fill > 1.0) {
    return Status::InvalidArgument("fill must be in (0, 1]");
  }
  const uint32_t page_size = pool_->pager()->page_size();
  const size_t payload = page_size - Node::kHeaderSize;
  const size_t target = static_cast<size_t>(payload * fill);

  // Level 0: pack leaves left to right, remembering each leaf's first key.
  std::vector<InternalEntry> level;  // (first key, page) of each node
  {
    PageRef ref;
    ZDB_ASSIGN_OR_RETURN(ref, pool_->New());
    Node::Init(&ref, Node::Type::kLeaf, page_size);
    Node leaf(std::move(ref), page_size);
    bool leaf_empty = true;
    std::string prev_key;
    std::string key, value;
    while (next(&key, &value)) {
      if (!leaf_empty && !(prev_key < key)) {
        return Status::InvalidArgument("bulk load input not sorted/unique");
      }
      const size_t cell = Node::LeafCellSize(key.size(), value.size()) + 2;
      if (cell > Node::MaxCellSize(page_size)) {
        return Status::InvalidArgument("key/value too large for page size");
      }
      if (!leaf_empty && leaf.UsedBytes() + cell > target) {
        // Start a new leaf and chain it.
        PageRef nref;
        ZDB_ASSIGN_OR_RETURN(nref, pool_->New());
        Node::Init(&nref, Node::Type::kLeaf, page_size);
        Node nleaf(std::move(nref), page_size);
        leaf.set_next(nleaf.id());
        leaf = std::move(nleaf);
        leaf_empty = true;
      }
      if (leaf_empty) {
        level.push_back({key, leaf.id()});
        leaf_empty = false;
      }
      bool ok = leaf.LeafInsert(leaf.count(), Slice(key), Slice(value));
      assert(ok);
      (void)ok;
      prev_key = key;
      ++count_;
    }
    leaf.set_next(kInvalidPageId);
    if (count_ == 0) {
      // Empty input: the single empty leaf becomes the root.
      root_ = leaf.id();
      height_ = 1;
      return StoreMeta();
    }
  }

  // Upper levels until a single node remains.
  height_ = 1;
  while (level.size() > 1) {
    std::vector<InternalEntry> parent_level;
    size_t i = 0;
    while (i < level.size()) {
      PageRef ref;
      ZDB_ASSIGN_OR_RETURN(ref, pool_->New());
      Node::Init(&ref, Node::Type::kInternal, page_size);
      Node inode(std::move(ref), page_size);
      parent_level.push_back({level[i].key, inode.id()});
      // First child is the rightmost until another arrives.
      inode.set_next(level[i].child);
      ++i;
      while (i < level.size()) {
        const size_t cell = Node::InternalCellSize(level[i].key.size()) + 2;
        if (inode.UsedBytes() + cell > target) break;
        // Push current rightmost down into a cell keyed by the incoming
        // node's first key, then adopt the incoming node as rightmost.
        bool ok = inode.InternalInsert(inode.count(), Slice(level[i].key),
                                       inode.next());
        assert(ok);
        (void)ok;
        inode.set_next(level[i].child);
        ++i;
      }
    }
    level = std::move(parent_level);
    ++height_;
  }
  root_ = level[0].child;
  return StoreMeta();
}

// ---------------------------------------------------------------- checks

Status BTree::CheckInvariants() const {
  uint32_t leaf_depth = 0;
  uint64_t entries = 0;
  PageId prev_leaf = kInvalidPageId;
  ZDB_RETURN_IF_ERROR(CheckRec(root_, 1, std::nullopt, std::nullopt,
                               &leaf_depth, &entries, &prev_leaf));
  if (entries != count_) {
    return Status::Corruption("entry count mismatch: stored " +
                              std::to_string(count_) + " found " +
                              std::to_string(entries));
  }
  if (leaf_depth != height_) {
    return Status::Corruption("height mismatch");
  }
  if (prev_leaf != kInvalidPageId) {
    PageRef ref;
    ZDB_ASSIGN_OR_RETURN(ref,
                         const_cast<BufferPool*>(pool_)->Fetch(prev_leaf));
    Node node(std::move(ref), pool_->pager()->page_size());
    if (node.next() != kInvalidPageId) {
      return Status::Corruption("last leaf has a right sibling");
    }
  }
  return Status::OK();
}

Status BTree::CheckRec(PageId page, uint32_t depth,
                       const std::optional<std::string>& lower,
                       const std::optional<std::string>& upper,
                       uint32_t* leaf_depth, uint64_t* entries,
                       PageId* prev_leaf) const {
  const uint32_t page_size = pool_->pager()->page_size();
  PageRef ref;
  ZDB_ASSIGN_OR_RETURN(ref, const_cast<BufferPool*>(pool_)->Fetch(page));
  Node node(std::move(ref), page_size);

  // Keys strictly ascending and within (lower, upper].
  for (uint16_t i = 0; i < node.count(); ++i) {
    const Slice k = node.Key(i);
    if (i > 0 && node.Key(i - 1).compare(k) >= 0) {
      return Status::Corruption("keys out of order in page " +
                                std::to_string(page));
    }
    if (lower && k.compare(Slice(*lower)) < 0) {
      return Status::Corruption("key below lower bound in page " +
                                std::to_string(page));
    }
    if (upper && k.compare(Slice(*upper)) >= 0) {
      return Status::Corruption("key above upper bound in page " +
                                std::to_string(page));
    }
  }

  if (node.is_leaf()) {
    if (*leaf_depth == 0) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Corruption("leaves at different depths");
    }
    if (*prev_leaf != kInvalidPageId) {
      PageRef pref;
      ZDB_ASSIGN_OR_RETURN(pref,
                           const_cast<BufferPool*>(pool_)->Fetch(*prev_leaf));
      Node prev(std::move(pref), page_size);
      if (prev.next() != page) {
        return Status::Corruption("broken leaf chain at page " +
                                  std::to_string(page));
      }
    }
    *prev_leaf = page;
    *entries += node.count();
    return Status::OK();
  }

  for (uint16_t i = 0; i <= node.count(); ++i) {
    std::optional<std::string> lo =
        (i == 0) ? lower : std::make_optional(node.Key(i - 1).ToString());
    std::optional<std::string> hi =
        (i == node.count()) ? upper
                            : std::make_optional(node.Key(i).ToString());
    ZDB_RETURN_IF_ERROR(CheckRec(node.Child(i), depth + 1, lo, hi,
                                 leaf_depth, entries, prev_leaf));
  }
  return Status::OK();
}

Result<BTreeStats> BTree::ComputeStats() const {
  const uint32_t page_size = pool_->pager()->page_size();
  BTreeStats stats;
  stats.height = height_;
  stats.entries = count_;
  double fill_sum = 0.0;

  // Iterative BFS over the tree.
  std::vector<PageId> frontier{root_};
  while (!frontier.empty()) {
    std::vector<PageId> next_level;
    for (PageId id : frontier) {
      PageRef ref;
      ZDB_ASSIGN_OR_RETURN(ref, const_cast<BufferPool*>(pool_)->Fetch(id));
      Node node(std::move(ref), page_size);
      if (node.is_leaf()) {
        ++stats.leaf_pages;
        fill_sum += static_cast<double>(node.UsedBytes()) /
                    (page_size - Node::kHeaderSize);
      } else {
        ++stats.internal_pages;
        for (uint16_t i = 0; i <= node.count(); ++i) {
          next_level.push_back(node.Child(i));
        }
      }
    }
    frontier = std::move(next_level);
  }
  if (stats.leaf_pages > 0) stats.avg_leaf_fill = fill_sum / stats.leaf_pages;
  return stats;
}

}  // namespace zdb
