// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Slotted-page B+-tree node. Cells grow down from the page end, the slot
// array grows up after the header; removal leaves garbage that Compact()
// reclaims. Two node kinds share the layout:
//
//   leaf cell:     [klen varint][vlen varint][key][value]
//   internal cell: [klen varint][key][child u32]
//
// Internal nodes with n cells route as: cell i = (key_i, child_i) where
// child_i covers keys in [key_{i-1}, key_i); the header's `next` field is
// the rightmost child covering keys >= key_{n-1}. In leaves `next` is the
// right-sibling page (the leaf chain used by range scans).
//
// Header layout (12 bytes):
//   0  u8   type (1 = leaf, 2 = internal)
//   1  u8   reserved
//   2  u16  cell count
//   4  u16  content start (lowest used cell offset)
//   6  u16  fragmented (garbage) bytes
//   8  u32  next (right sibling / rightmost child)

#ifndef ZDB_BTREE_NODE_H_
#define ZDB_BTREE_NODE_H_

#include <cstdint>

#include "common/slice.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace zdb {

/// Typed view over a pinned B+-tree page. Owns the pin for its lifetime.
class Node {
 public:
  enum class Type : uint8_t { kLeaf = 1, kInternal = 2 };

  static constexpr size_t kHeaderSize = 12;

  /// Wraps an already-initialized page.
  explicit Node(PageRef ref, uint32_t page_size)
      : ref_(std::move(ref)), page_size_(page_size) {}

  /// Formats a fresh page as an empty node of the given type.
  static void Init(PageRef* ref, Type type, uint32_t page_size);

  Type type() const;
  bool is_leaf() const { return type() == Type::kLeaf; }
  uint16_t count() const;

  PageId next() const;
  void set_next(PageId id);

  PageId id() const { return ref_.id(); }
  uint32_t page_size() const { return page_size_; }

  /// Key of cell i (both node kinds).
  Slice Key(uint16_t i) const;

  /// Value of leaf cell i.
  Slice Value(uint16_t i) const;

  /// Child pointer i of an internal node, i in [0, count()]. i == count()
  /// returns the rightmost child (header `next`).
  PageId Child(uint16_t i) const;
  void SetChild(uint16_t i, PageId child);

  /// First index whose key is >= `key` (count() if none).
  uint16_t LowerBound(const Slice& key) const;

  /// First index whose key is > `key` (count() if none).
  uint16_t UpperBound(const Slice& key) const;

  /// Inserts a leaf cell at index i. Returns false if the page lacks space
  /// even after compaction.
  bool LeafInsert(uint16_t i, const Slice& key, const Slice& value);

  /// Inserts an internal cell (key, child) at index i.
  bool InternalInsert(uint16_t i, const Slice& key, PageId child);

  /// Removes cell i (either kind), leaving reclaimable garbage.
  void Remove(uint16_t i);

  /// Replaces the value of leaf cell i. Returns false if space is lacking.
  bool LeafSetValue(uint16_t i, const Slice& value);

  /// Bytes of payload (slots + live cells); used for underflow decisions.
  size_t UsedBytes() const;

  /// Contiguous + fragmented free bytes.
  size_t FreeBytes() const;

  /// Would a cell of this size (plus its slot) fit after compaction?
  bool HasSpaceFor(size_t cell_size) const {
    return FreeBytes() >= cell_size + 2;
  }

  /// Serialized size of a leaf cell for the given key/value.
  static size_t LeafCellSize(size_t klen, size_t vlen);

  /// Serialized size of an internal cell for the given key.
  static size_t InternalCellSize(size_t klen);

  /// Rewrites live cells contiguously, zeroing fragmentation.
  void Compact();

  /// Largest cell a page of this size can accept while still holding at
  /// least four cells (guards the split logic).
  static size_t MaxCellSize(uint32_t page_size) {
    return (page_size - kHeaderSize) / 4 - 2;
  }

 private:
  const char* base() const { return ref_.data(); }
  char* mbase() { return ref_.mutable_data(); }

  uint16_t SlotOffset(uint16_t i) const;
  void SetSlotOffset(uint16_t i, uint16_t off);
  const char* Cell(uint16_t i) const { return base() + SlotOffset(i); }

  /// Size in bytes of cell i as stored.
  size_t CellSize(uint16_t i) const;

  /// Inserts a preserialized cell at index i; false if no space.
  bool InsertCell(uint16_t i, const char* cell, size_t size);

  void set_count(uint16_t n);
  uint16_t content_start() const;
  void set_content_start(uint16_t v);
  uint16_t frag_bytes() const;
  void set_frag_bytes(uint16_t v);

  PageRef ref_;
  uint32_t page_size_;
};

}  // namespace zdb

#endif  // ZDB_BTREE_NODE_H_
