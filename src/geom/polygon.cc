// Copyright (c) zdb authors. Licensed under the MIT license.

#include "geom/polygon.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace zdb {

namespace {

/// Orientation of the triple (a, b, c): >0 counter-clockwise, <0
/// clockwise, 0 collinear.
double Cross(const Point& a, const Point& b, const Point& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

bool OnSegment(const Point& a, const Point& b, const Point& p) {
  return std::min(a.x, b.x) <= p.x && p.x <= std::max(a.x, b.x) &&
         std::min(a.y, b.y) <= p.y && p.y <= std::max(a.y, b.y);
}

}  // namespace

bool SegmentsIntersect(const Point& a1, const Point& a2, const Point& b1,
                       const Point& b2) {
  const double d1 = Cross(b1, b2, a1);
  const double d2 = Cross(b1, b2, a2);
  const double d3 = Cross(a1, a2, b1);
  const double d4 = Cross(a1, a2, b2);
  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;
  }
  if (d1 == 0 && OnSegment(b1, b2, a1)) return true;
  if (d2 == 0 && OnSegment(b1, b2, a2)) return true;
  if (d3 == 0 && OnSegment(a1, a2, b1)) return true;
  if (d4 == 0 && OnSegment(a1, a2, b2)) return true;
  return false;
}

Rect Polygon::Bounds() const {
  if (vertices_.empty()) return Rect{};
  Rect r{vertices_[0].x, vertices_[0].y, vertices_[0].x, vertices_[0].y};
  for (const Point& p : vertices_) {
    r.xlo = std::min(r.xlo, p.x);
    r.ylo = std::min(r.ylo, p.y);
    r.xhi = std::max(r.xhi, p.x);
    r.yhi = std::max(r.yhi, p.y);
  }
  return r;
}

double Polygon::Area() const {
  double sum = 0.0;
  const size_t n = vertices_.size();
  for (size_t i = 0; i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    sum += a.x * b.y - b.x * a.y;
  }
  return std::abs(sum) / 2.0;
}

bool Polygon::Contains(const Point& p) const {
  const size_t n = vertices_.size();
  if (n < 3) return false;
  // Boundary counts as inside.
  for (size_t i = 0; i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    if (Cross(a, b, p) == 0 && OnSegment(a, b, p)) return true;
  }
  // Even-odd ray cast to +x.
  bool inside = false;
  for (size_t i = 0; i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    if ((a.y > p.y) != (b.y > p.y)) {
      const double x_at = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y);
      if (x_at > p.x) inside = !inside;
    }
  }
  return inside;
}

double Polygon::DistanceTo(const Point& p) const {
  if (Contains(p)) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  const size_t n = vertices_.size();
  for (size_t i = 0; i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    // Point-to-segment distance.
    const double abx = b.x - a.x, aby = b.y - a.y;
    const double len2 = abx * abx + aby * aby;
    double t = 0.0;
    if (len2 > 0) {
      t = ((p.x - a.x) * abx + (p.y - a.y) * aby) / len2;
      t = std::max(0.0, std::min(1.0, t));
    }
    const double cx = a.x + t * abx, cy = a.y + t * aby;
    const double dx = p.x - cx, dy = p.y - cy;
    best = std::min(best, std::sqrt(dx * dx + dy * dy));
  }
  return best;
}

bool Polygon::Intersects(const Rect& r) const {
  const size_t n = vertices_.size();
  if (n == 0) return false;
  if (!Bounds().Intersects(r)) return false;
  // Any polygon vertex inside the rectangle?
  for (const Point& p : vertices_) {
    if (r.Contains(p)) return true;
  }
  // Any rectangle corner inside the polygon?
  const Point corners[4] = {{r.xlo, r.ylo}, {r.xhi, r.ylo},
                            {r.xhi, r.yhi}, {r.xlo, r.yhi}};
  for (const Point& c : corners) {
    if (Contains(c)) return true;
  }
  // Any edge crossing?
  const Point edges[4][2] = {{corners[0], corners[1]},
                             {corners[1], corners[2]},
                             {corners[2], corners[3]},
                             {corners[3], corners[0]}};
  for (size_t i = 0; i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    for (const auto& e : edges) {
      if (SegmentsIntersect(a, b, e[0], e[1])) return true;
    }
  }
  return false;
}

bool PolygonsIntersect(const Polygon& a, const Polygon& b) {
  if (a.empty() || b.empty()) return false;
  if (!a.Bounds().Intersects(b.Bounds())) return false;
  // Vertex containment covers full-containment cases.
  for (const Point& p : a.vertices()) {
    if (b.Contains(p)) return true;
  }
  for (const Point& p : b.vertices()) {
    if (a.Contains(p)) return true;
  }
  // Edge crossings cover partial overlap without contained vertices.
  const size_t na = a.size(), nb = b.size();
  for (size_t i = 0; i < na; ++i) {
    const Point& a1 = a.vertices()[i];
    const Point& a2 = a.vertices()[(i + 1) % na];
    for (size_t j = 0; j < nb; ++j) {
      const Point& b1 = b.vertices()[j];
      const Point& b2 = b.vertices()[(j + 1) % nb];
      if (SegmentsIntersect(a1, a2, b1, b2)) return true;
    }
  }
  return false;
}

}  // namespace zdb
