// Copyright (c) zdb authors. Licensed under the MIT license.

#include "geom/clip.h"

#include <vector>

namespace zdb {

namespace {

enum class Side { kLeft, kRight, kBottom, kTop };

bool Inside(const Point& p, Side side, const Rect& r) {
  switch (side) {
    case Side::kLeft: return p.x >= r.xlo;
    case Side::kRight: return p.x <= r.xhi;
    case Side::kBottom: return p.y >= r.ylo;
    case Side::kTop: return p.y <= r.yhi;
  }
  return false;
}

Point IntersectEdge(const Point& a, const Point& b, Side side,
                    const Rect& r) {
  double t;
  switch (side) {
    case Side::kLeft:
      t = (r.xlo - a.x) / (b.x - a.x);
      return Point{r.xlo, a.y + t * (b.y - a.y)};
    case Side::kRight:
      t = (r.xhi - a.x) / (b.x - a.x);
      return Point{r.xhi, a.y + t * (b.y - a.y)};
    case Side::kBottom:
      t = (r.ylo - a.y) / (b.y - a.y);
      return Point{a.x + t * (b.x - a.x), r.ylo};
    case Side::kTop:
      t = (r.yhi - a.y) / (b.y - a.y);
      return Point{a.x + t * (b.x - a.x), r.yhi};
  }
  return a;
}

std::vector<Point> ClipAgainstSide(const std::vector<Point>& input,
                                   Side side, const Rect& r) {
  std::vector<Point> output;
  const size_t n = input.size();
  output.reserve(n + 4);
  for (size_t i = 0; i < n; ++i) {
    const Point& cur = input[i];
    const Point& prev = input[(i + n - 1) % n];
    const bool cur_in = Inside(cur, side, r);
    const bool prev_in = Inside(prev, side, r);
    if (cur_in) {
      if (!prev_in) output.push_back(IntersectEdge(prev, cur, side, r));
      output.push_back(cur);
    } else if (prev_in) {
      output.push_back(IntersectEdge(prev, cur, side, r));
    }
  }
  return output;
}

}  // namespace

Polygon ClipPolygonToRect(const Polygon& poly, const Rect& rect) {
  std::vector<Point> ring = poly.vertices();
  for (Side side :
       {Side::kLeft, Side::kRight, Side::kBottom, Side::kTop}) {
    if (ring.empty()) break;
    ring = ClipAgainstSide(ring, side, rect);
  }
  return Polygon(std::move(ring));
}

double PolygonRectIntersectionArea(const Polygon& poly, const Rect& rect) {
  if (poly.empty() || !poly.Bounds().Intersects(rect)) return 0.0;
  if (rect.Contains(poly.Bounds())) return poly.Area();
  return ClipPolygonToRect(poly, rect).Area();
}

bool PolygonContainsRect(const Polygon& poly, const Rect& rect) {
  if (poly.empty() || !poly.Bounds().Contains(rect)) return false;
  const double rect_area = rect.area();
  if (rect_area == 0.0) {
    // Degenerate rectangle: membership of its corners decides.
    return poly.Contains(Point{rect.xlo, rect.ylo}) &&
           poly.Contains(Point{rect.xhi, rect.yhi});
  }
  const double covered = PolygonRectIntersectionArea(poly, rect);
  // Exact for exactly-representable coordinates; a relative tolerance
  // absorbs clipping round-off.
  return covered >= rect_area * (1.0 - 1e-12);
}

}  // namespace zdb
