// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Polygon clipping against axis-aligned rectangles (Sutherland-Hodgman).
// Used by region decomposition to account dead space exactly: the area of
// a z-element's cell NOT covered by the object is the refinement
// priority, and for polygons that requires polygon∩rect area.

#ifndef ZDB_GEOM_CLIP_H_
#define ZDB_GEOM_CLIP_H_

#include "geom/polygon.h"
#include "geom/rect.h"

namespace zdb {

/// Clips a simple polygon to a rectangle. The result is a (possibly
/// empty) polygon; for convex input it is exact, for concave input the
/// standard Sutherland-Hodgman caveat applies (degenerate bridging edges
/// of zero area may appear, which do not affect area computation).
Polygon ClipPolygonToRect(const Polygon& poly, const Rect& rect);

/// Area of polygon ∩ rect.
double PolygonRectIntersectionArea(const Polygon& poly, const Rect& rect);

/// True if the rectangle lies entirely inside the polygon (boundary
/// contact counts as inside): area(poly ∩ rect) == area(rect).
bool PolygonContainsRect(const Polygon& poly, const Rect& rect);

}  // namespace zdb

#endif  // ZDB_GEOM_CLIP_H_
