// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Integer grid space. Z-order decomposition operates on an N x N grid of
// cells (N = 2^bits); SpaceMapper converts between world coordinates and
// grid cells. The grid resolution is the decomposition's resolution floor:
// no element can be smaller than one cell.

#ifndef ZDB_GEOM_GRID_H_
#define ZDB_GEOM_GRID_H_

#include <cstdint>
#include <string>

#include "geom/rect.h"

namespace zdb {

using GridCoord = uint32_t;

/// Default grid resolution: 2^16 cells per axis (32-bit z-addresses).
inline constexpr uint32_t kDefaultGridBits = 16;

/// Maximum supported resolution (z-addresses must fit in 64 bits).
inline constexpr uint32_t kMaxGridBits = 31;

/// Inclusive rectangle of grid cells: cells [xlo..xhi] x [ylo..yhi].
struct GridRect {
  GridCoord xlo = 0;
  GridCoord ylo = 0;
  GridCoord xhi = 0;
  GridCoord yhi = 0;

  uint64_t width() const { return static_cast<uint64_t>(xhi) - xlo + 1; }
  uint64_t height() const { return static_cast<uint64_t>(yhi) - ylo + 1; }

  /// Number of cells covered.
  uint64_t CellCount() const { return width() * height(); }

  bool Intersects(const GridRect& r) const {
    return xlo <= r.xhi && r.xlo <= xhi && ylo <= r.yhi && r.ylo <= yhi;
  }

  bool Contains(const GridRect& r) const {
    return r.xlo >= xlo && r.xhi <= xhi && r.ylo >= ylo && r.yhi <= yhi;
  }

  /// Cells in the overlap (0 when disjoint).
  uint64_t IntersectionCells(const GridRect& r) const {
    if (!Intersects(r)) return 0;
    const uint64_t w = static_cast<uint64_t>(
                           (xhi < r.xhi ? xhi : r.xhi)) -
                       (xlo > r.xlo ? xlo : r.xlo) + 1;
    const uint64_t h = static_cast<uint64_t>(
                           (yhi < r.yhi ? yhi : r.yhi)) -
                       (ylo > r.ylo ? ylo : r.ylo) + 1;
    return w * h;
  }

  std::string ToString() const;
};

inline bool operator==(const GridRect& a, const GridRect& b) {
  return a.xlo == b.xlo && a.ylo == b.ylo && a.xhi == b.xhi && a.yhi == b.yhi;
}

/// Maps world rectangles to grid-cell rectangles and back. The grid
/// covers the configured world bounds; world geometry outside the bounds
/// is clamped to the border cells.
class SpaceMapper {
 public:
  /// World bounds default to the unit square, grid to 2^16 per axis.
  explicit SpaceMapper(Rect world = Rect{0.0, 0.0, 1.0, 1.0},
                       uint32_t bits = kDefaultGridBits);

  uint32_t bits() const { return bits_; }
  GridCoord max_coord() const { return max_coord_; }
  const Rect& world() const { return world_; }

  /// Grid cell containing the point (clamped to the grid).
  GridCoord ToGridX(double x) const;
  GridCoord ToGridY(double y) const;

  /// Smallest grid rectangle covering the world rectangle.
  GridRect ToGrid(const Rect& r) const;

  /// World-space extent of a grid rectangle.
  Rect ToWorld(const GridRect& g) const;

 private:
  Rect world_;
  uint32_t bits_;
  GridCoord max_coord_;
  double cells_per_x_;
  double cells_per_y_;
};

}  // namespace zdb

#endif  // ZDB_GEOM_GRID_H_
