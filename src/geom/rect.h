// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Axis-aligned rectangles, the object and query primitive of the
// reproduction. Closed on all sides: touching boundaries intersect, as in
// the 1980s spatial-index literature.

#ifndef ZDB_GEOM_RECT_H_
#define ZDB_GEOM_RECT_H_

#include <algorithm>
#include <cmath>
#include <string>

#include "geom/point.h"

namespace zdb {

/// Closed axis-aligned rectangle [xlo, xhi] x [ylo, yhi].
struct Rect {
  double xlo = 0.0;
  double ylo = 0.0;
  double xhi = 0.0;
  double yhi = 0.0;

  static Rect FromCenter(double cx, double cy, double ex, double ey) {
    return Rect{cx - ex, cy - ey, cx + ex, cy + ey};
  }

  bool valid() const { return xlo <= xhi && ylo <= yhi; }

  double width() const { return xhi - xlo; }
  double height() const { return yhi - ylo; }
  double area() const { return width() * height(); }

  /// Perimeter / 2; the "margin" criterion in split heuristics.
  double margin() const { return width() + height(); }

  Point center() const { return Point{(xlo + xhi) / 2, (ylo + yhi) / 2}; }

  bool Contains(const Point& p) const {
    return p.x >= xlo && p.x <= xhi && p.y >= ylo && p.y <= yhi;
  }

  bool Contains(const Rect& r) const {
    return r.xlo >= xlo && r.xhi <= xhi && r.ylo >= ylo && r.yhi <= yhi;
  }

  bool Intersects(const Rect& r) const {
    return xlo <= r.xhi && r.xlo <= xhi && ylo <= r.yhi && r.ylo <= yhi;
  }

  /// Smallest rectangle covering both.
  Rect Union(const Rect& r) const {
    return Rect{std::min(xlo, r.xlo), std::min(ylo, r.ylo),
                std::max(xhi, r.xhi), std::max(yhi, r.yhi)};
  }

  /// Overlap region; invalid (xlo > xhi) when disjoint.
  Rect Intersection(const Rect& r) const {
    return Rect{std::max(xlo, r.xlo), std::max(ylo, r.ylo),
                std::min(xhi, r.xhi), std::min(yhi, r.yhi)};
  }

  /// Euclidean distance from p to the rectangle (0 when inside).
  double DistanceTo(const Point& p) const {
    const double dx = std::max({xlo - p.x, 0.0, p.x - xhi});
    const double dy = std::max({ylo - p.y, 0.0, p.y - yhi});
    return std::sqrt(dx * dx + dy * dy);
  }

  /// Overlap area (0 when disjoint).
  double IntersectionArea(const Rect& r) const {
    const double w = std::min(xhi, r.xhi) - std::max(xlo, r.xlo);
    const double h = std::min(yhi, r.yhi) - std::max(ylo, r.ylo);
    return (w > 0 && h > 0) ? w * h : 0.0;
  }

  std::string ToString() const {
    return "[" + std::to_string(xlo) + "," + std::to_string(ylo) + " - " +
           std::to_string(xhi) + "," + std::to_string(yhi) + "]";
  }
};

inline bool operator==(const Rect& a, const Rect& b) {
  return a.xlo == b.xlo && a.ylo == b.ylo && a.xhi == b.xhi && a.yhi == b.yhi;
}

}  // namespace zdb

#endif  // ZDB_GEOM_RECT_H_
