// Copyright (c) zdb authors. Licensed under the MIT license.

#include "geom/grid.h"

#include <cassert>
#include <cmath>

namespace zdb {

std::string GridRect::ToString() const {
  return "[" + std::to_string(xlo) + "," + std::to_string(ylo) + " - " +
         std::to_string(xhi) + "," + std::to_string(yhi) + "]";
}

SpaceMapper::SpaceMapper(Rect world, uint32_t bits)
    : world_(world), bits_(bits) {
  assert(bits >= 1 && bits <= kMaxGridBits);
  assert(world.xhi > world.xlo && world.yhi > world.ylo);
  max_coord_ = static_cast<GridCoord>((1ULL << bits) - 1);
  const double cells = static_cast<double>(1ULL << bits);
  cells_per_x_ = cells / (world.xhi - world.xlo);
  cells_per_y_ = cells / (world.yhi - world.ylo);
}

GridCoord SpaceMapper::ToGridX(double x) const {
  const double c = std::floor((x - world_.xlo) * cells_per_x_);
  if (c < 0) return 0;
  if (c > max_coord_) return max_coord_;
  return static_cast<GridCoord>(c);
}

GridCoord SpaceMapper::ToGridY(double y) const {
  const double c = std::floor((y - world_.ylo) * cells_per_y_);
  if (c < 0) return 0;
  if (c > max_coord_) return max_coord_;
  return static_cast<GridCoord>(c);
}

GridRect SpaceMapper::ToGrid(const Rect& r) const {
  return GridRect{ToGridX(r.xlo), ToGridY(r.ylo), ToGridX(r.xhi),
                  ToGridY(r.yhi)};
}

Rect SpaceMapper::ToWorld(const GridRect& g) const {
  return Rect{world_.xlo + g.xlo / cells_per_x_,
              world_.ylo + g.ylo / cells_per_y_,
              world_.xlo + (g.xhi + 1.0) / cells_per_x_,
              world_.ylo + (g.yhi + 1.0) / cells_per_y_};
}

}  // namespace zdb
