// Copyright (c) zdb authors. Licensed under the MIT license.

#ifndef ZDB_GEOM_POINT_H_
#define ZDB_GEOM_POINT_H_

namespace zdb {

/// A point in world coordinates (the unit square [0,1) x [0,1) for all
/// built-in workloads, though any bounds work via SpaceMapper).
struct Point {
  double x = 0.0;
  double y = 0.0;
};

inline bool operator==(const Point& a, const Point& b) {
  return a.x == b.x && a.y == b.y;
}

}  // namespace zdb

#endif  // ZDB_GEOM_POINT_H_
