// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Simple polygons for the refinement step of filter-and-refine queries on
// non-rectangular objects (example applications; the core experiments use
// rectangles, as the 1989 evaluations did).

#ifndef ZDB_GEOM_POLYGON_H_
#define ZDB_GEOM_POLYGON_H_

#include <vector>

#include "geom/point.h"
#include "geom/rect.h"

namespace zdb {

/// A simple (non-self-intersecting) polygon given by its vertex ring.
/// Orientation does not matter; the ring is implicitly closed.
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Point> vertices)
      : vertices_(std::move(vertices)) {}

  const std::vector<Point>& vertices() const { return vertices_; }
  size_t size() const { return vertices_.size(); }
  bool empty() const { return vertices_.empty(); }

  /// Minimal bounding rectangle.
  Rect Bounds() const;

  /// Signed-area magnitude via the shoelace formula.
  double Area() const;

  /// Even-odd (crossing number) containment; boundary points count as
  /// inside for the purposes of intersection queries.
  bool Contains(const Point& p) const;

  /// Exact polygon/rectangle intersection test: true if the regions share
  /// at least one point (including boundary contact).
  bool Intersects(const Rect& r) const;

  /// Euclidean distance from p to the polygon (0 when inside).
  double DistanceTo(const Point& p) const;

 private:
  std::vector<Point> vertices_;
};

/// Segment intersection helper exposed for tests: true if segments
/// [a1,a2] and [b1,b2] share a point.
bool SegmentsIntersect(const Point& a1, const Point& a2, const Point& b1,
                       const Point& b2);

/// Exact simple-polygon/simple-polygon intersection test (shared point,
/// including boundary contact and full containment either way).
bool PolygonsIntersect(const Polygon& a, const Polygon& b);

}  // namespace zdb

#endif  // ZDB_GEOM_POLYGON_H_
