// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Spatial join by synchronized z-order merge (Orenstein). Both indexes'
// entry streams are consumed in canonical key order while two enclosure
// stacks hold, per stream, the chain of elements whose z-interval
// contains the current merge position. When an entry arrives, it pairs
// with every stacked entry of the other stream — exactly the element
// pairs where one contains the other, i.e. the intersecting pairs of the
// two approximations. Candidate pairs are de-duplicated and refined
// against the exact MBRs.

#include <algorithm>
#include <unordered_set>

#include "btree/cursor.h"
#include "core/spatial_index.h"
#include "zorder/zkey.h"

namespace zdb {

namespace {

struct StackEntry {
  ZElement elem;
  ObjectId oid;
};

void PopNonEnclosing(std::vector<StackEntry>* stack, const ZElement& e) {
  while (!stack->empty() && !stack->back().elem.Contains(e)) {
    stack->pop_back();
  }
}

}  // namespace

Result<std::vector<std::pair<ObjectId, ObjectId>>> SpatialJoin(
    SpatialIndex* a, SpatialIndex* b, JoinStats* stats) {
  // Reader sections on both indexes for the whole merge, acquired in
  // address order so two joins over the same pair cannot deadlock
  // against waiting writers. Self-joins take a single section.
  //
  // The join deliberately stays on the latched path even when the
  // indexes have snapshot reads enabled: a consistent two-index merge
  // would need one pin per index plus a nested snapshot view per
  // stream, and the merge's correctness only needs each index frozen
  // for the scan — which the shared sections provide (writers still
  // latch exclusively with snapshots on). Joins are analytic
  // whole-index scans; the latch-free fast path targets the point /
  // window / kNN serving queries.
  SpatialIndex* first = a < b ? a : b;
  SpatialIndex* second = a < b ? b : a;
  auto lock_first = first->ReaderSection();
  auto lock_second = first == second ? ReaderLatch() : second->ReaderSection();
  if (a->options().grid_bits != b->options().grid_bits ||
      !(a->options().world == b->options().world)) {
    return Status::InvalidArgument(
        "joined indexes must share grid resolution and world bounds");
  }
  const uint32_t gbits = a->options().grid_bits;

  Cursor ca(a->pool(), a->pool()->pager()->page_size());
  Cursor cb(b->pool(), b->pool()->pager()->page_size());
  ZDB_ASSIGN_OR_RETURN(ca, a->btree()->SeekFirst());
  ZDB_ASSIGN_OR_RETURN(cb, b->btree()->SeekFirst());

  std::vector<StackEntry> stack_a, stack_b;
  std::unordered_set<uint64_t> seen_pairs;
  std::vector<std::pair<ObjectId, ObjectId>> pairs;

  while (ca.Valid() || cb.Valid()) {
    // Take the stream whose head has the smaller canonical key.
    const bool from_a =
        ca.Valid() && (!cb.Valid() || ca.key().compare(cb.key()) <= 0);
    Cursor& cur = from_a ? ca : cb;

    ZElement elem;
    ObjectId oid;
    if (!DecodeZKey(cur.key(), gbits, &elem, &oid)) {
      return Status::Corruption("malformed index key in join");
    }
    if (stats != nullptr) ++stats->entries_scanned;

    PopNonEnclosing(&stack_a, elem);
    PopNonEnclosing(&stack_b, elem);

    const std::vector<StackEntry>& other = from_a ? stack_b : stack_a;
    for (const StackEntry& se : other) {
      const ObjectId a_oid = from_a ? oid : se.oid;
      const ObjectId b_oid = from_a ? se.oid : oid;
      if (stats != nullptr) ++stats->candidate_pairs;
      const uint64_t pair_key =
          (static_cast<uint64_t>(a_oid) << 32) | b_oid;
      if (seen_pairs.insert(pair_key).second) {
        pairs.emplace_back(a_oid, b_oid);
      }
    }
    (from_a ? stack_a : stack_b).push_back({elem, oid});
    ZDB_RETURN_IF_ERROR(cur.Next());
  }

  if (stats != nullptr) stats->unique_pairs = pairs.size();

  // Refine in (a_oid, b_oid) order for deterministic output and clustered
  // object-store fetches.
  std::sort(pairs.begin(), pairs.end());
  std::vector<std::pair<ObjectId, ObjectId>> results;
  results.reserve(pairs.size());
  for (const auto& [a_oid, b_oid] : pairs) {
    ObjectRecord ra, rb;
    ZDB_ASSIGN_OR_RETURN(ra, a->objects()->Fetch(a_oid));
    ZDB_ASSIGN_OR_RETURN(rb, b->objects()->Fetch(b_oid));
    bool hit = ra.live && rb.live && ra.mbr.Intersects(rb.mbr);
    if (hit && (ra.kind == ObjectKind::kPolygon ||
                rb.kind == ObjectKind::kPolygon)) {
      // Exact-geometry refinement for polygon participants.
      if (ra.kind == ObjectKind::kPolygon &&
          rb.kind == ObjectKind::kPolygon) {
        Polygon pa, pb;
        ZDB_ASSIGN_OR_RETURN(pa, a->polygons()->Fetch(ra.payload));
        ZDB_ASSIGN_OR_RETURN(pb, b->polygons()->Fetch(rb.payload));
        hit = PolygonsIntersect(pa, pb);
      } else if (ra.kind == ObjectKind::kPolygon) {
        Polygon pa;
        ZDB_ASSIGN_OR_RETURN(pa, a->polygons()->Fetch(ra.payload));
        hit = pa.Intersects(rb.mbr);
      } else {
        Polygon pb;
        ZDB_ASSIGN_OR_RETURN(pb, b->polygons()->Fetch(rb.payload));
        hit = pb.Intersects(ra.mbr);
      }
    }
    if (hit) {
      results.emplace_back(a_oid, b_oid);
    } else if (stats != nullptr) {
      ++stats->false_pairs;
    }
  }
  if (stats != nullptr) stats->results = results.size();
  return results;
}

}  // namespace zdb
