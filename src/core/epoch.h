// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Epoch pinning and version GC — the lifecycle half of snapshot reads
// (the version chains themselves live in storage/snapshot.h).
//
// A reader calls EpochManager::Pin() and gets back an RAII EpochPin on
// the current write epoch. While any pin at or below epoch E is held,
// the GC thread will not reclaim version-chain entries or snapshot
// metas that a reader at E could still resolve. Pin() reads the epoch
// counter *under pin_mu_*, and the GC cycle computes its reclamation
// floor under the same mutex — so a new pin can never slip in below a
// floor the GC already committed to.
//
// Lock order (extends the index's commit_mu_ -> latch_ -> gc_mu_
// discipline): pin_mu_ -> gc_mu_ (this manager's own gc_mu_, not the
// index's). The writer calls RecordMeta/InvalidateRange while holding
// the exclusive index latch, so latch -> manager gc_mu_ is also part of
// the order; the manager never acquires any index lock.
//
// EpochPin misuse is a programming error and aborts loudly rather than
// corrupting the pin accounting: double release, release (or
// destruction) on a thread other than the pinning one, and a pin
// outliving its manager all call LockAssertFail. The pin may be freely
// *read* (epoch()) from other threads — executor workers share one pin
// by const reference.

#ifndef ZDB_CORE_EPOCH_H_
#define ZDB_CORE_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "storage/snapshot.h"

namespace zdb {

class EpochManager;

/// RAII handle on a pinned epoch. Move-only; see the misuse contract in
/// the file comment.
class EpochPin {
 public:
  EpochPin() = default;
  EpochPin(EpochPin&& other) noexcept { *this = std::move(other); }
  EpochPin& operator=(EpochPin&& other) noexcept;
  ~EpochPin();

  EpochPin(const EpochPin&) = delete;
  EpochPin& operator=(const EpochPin&) = delete;

  bool valid() const { return mgr_ != nullptr; }
  uint64_t epoch() const { return epoch_; }

  /// Unpins. Aborts on double release, on a default-constructed pin,
  /// and when called from a thread other than the pinning one.
  void Release();

 private:
  friend class EpochManager;
  EpochPin(EpochManager* mgr, uint64_t epoch)
      : mgr_(mgr), epoch_(epoch), owner_(std::this_thread::get_id()) {}

  EpochManager* mgr_ = nullptr;
  uint64_t epoch_ = 0;
  std::thread::id owner_{};
};

/// The one sanctioned aggregate of EpochPins, for scatter-gather drivers
/// that pin several shards for the duration of one fan-out (see
/// exec/executor.cc). Everything that makes ad-hoc pin containers unsafe
/// is nailed down here instead: the set is stack-scoped and move-proof,
/// pins are only appended (a slot is never dropped or overwritten
/// mid-query, so no pin is released out of creation order on a thread
/// that didn't make it), and the whole set must be destroyed on the
/// thread that added the pins — the same affinity contract as a single
/// EpochPin, which each pin's own destructor enforces. zdb_lint's
/// epoch-pin check flags any other container of pins; add capabilities
/// here, don't invent new storage at call sites.
class EpochPinSet {
 public:
  explicit EpochPinSet(size_t capacity) { pins_.reserve(capacity); }

  EpochPinSet(const EpochPinSet&) = delete;
  EpochPinSet& operator=(const EpochPinSet&) = delete;
  EpochPinSet(EpochPinSet&&) = delete;
  EpochPinSet& operator=(EpochPinSet&&) = delete;

  /// Appends a freshly-taken pin and returns a stable reference to it
  /// (stable because capacity is reserved up front and slots are never
  /// erased; exceeding the declared capacity is a programming error).
  const EpochPin& Add(EpochPin pin) {
    pins_.push_back(std::move(pin));
    return pins_.back();
  }

  const EpochPin& operator[](size_t i) const { return pins_[i]; }
  size_t size() const { return pins_.size(); }

 private:
  std::vector<EpochPin> pins_;
};

/// Snapshot counters surfaced through SpatialIndex/DB stats.
struct EpochStats {
  uint64_t pinned = 0;       ///< pins currently held
  uint64_t min_pinned = 0;   ///< lowest pinned epoch (0 if none)
  uint64_t pins_taken = 0;   ///< lifetime pin count
  uint64_t gc_cycles = 0;    ///< reclamation passes run
};

/// Tracks pinned epochs, stores per-epoch snapshot metas, and runs the
/// reclamation thread. One instance per snapshot-enabled SpatialIndex.
class EpochManager {
 public:
  /// `epoch` is the index's write-epoch counter; `versions` the buffer
  /// pool's chain table. Both must outlive the manager.
  EpochManager(const std::atomic<uint64_t>* epoch, PageVersions* versions);

  /// Stops the GC thread. Aborts if any EpochPin is still outstanding —
  /// a pin outliving its manager would be a dangling reference.
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Pins the current write epoch.
  EpochPin Pin() EXCLUDES(pin_mu_);

  /// Writer side (called under the exclusive index latch): stores the
  /// meta readers pinned at `epoch` resolve non-page state through.
  void RecordMeta(uint64_t epoch, SnapshotMeta meta) EXCLUDES(gc_mu_);

  /// Writer side, on group rollback: epochs in (lo, hi] never became
  /// durable and their published state was reloaded away; queries at a
  /// pin in that range fail with Aborted carrying `cause`.
  void InvalidateRange(uint64_t lo, uint64_t hi, Status cause)
      EXCLUDES(gc_mu_);

  /// Reader side: the meta for a pinned epoch. Aborted if the epoch was
  /// rolled back; Internal if no meta exists (a pin always protects its
  /// own meta from reclamation, so this indicates a bug).
  Result<std::shared_ptr<const SnapshotMeta>> MetaAt(uint64_t epoch) const
      EXCLUDES(gc_mu_);

  /// Starts / stops the background reclamation thread. Start is
  /// idempotent; Stop is also called by the destructor.
  void StartGc();
  void StopGc();

  /// One synchronous reclamation pass (what the GC thread runs each
  /// wakeup). Exposed so tests can make reclamation deterministic.
  void RunGcCycle() EXCLUDES(pin_mu_, gc_mu_);

  EpochStats stats() const EXCLUDES(pin_mu_, gc_mu_);

 private:
  friend class EpochPin;

  void Unpin(uint64_t epoch) EXCLUDES(pin_mu_);
  void GcLoop();

  const std::atomic<uint64_t>* epoch_;
  PageVersions* versions_;

  mutable Mutex pin_mu_;
  std::multiset<uint64_t> pins_ GUARDED_BY(pin_mu_);
  /// Cached *pins_.begin() (UINT64_MAX when no pins): the GC floor is
  /// min(min_pinned_, current epoch), taken under pin_mu_.
  uint64_t min_pinned_ GUARDED_BY(pin_mu_) = UINT64_MAX;
  uint64_t pins_taken_ GUARDED_BY(pin_mu_) = 0;

  struct AbortedRange {
    uint64_t lo;
    uint64_t hi;
    Status cause;
  };

  mutable Mutex gc_mu_ ACQUIRED_AFTER(pin_mu_);
  std::map<uint64_t, std::shared_ptr<const SnapshotMeta>> metas_
      GUARDED_BY(gc_mu_);
  std::vector<AbortedRange> aborted_ GUARDED_BY(gc_mu_);
  CondVar gc_cv_;
  bool gc_stop_ GUARDED_BY(gc_mu_) = false;
  bool gc_running_ GUARDED_BY(gc_mu_) = false;
  uint64_t gc_cycles_ GUARDED_BY(gc_mu_) = 0;
  std::thread gc_thread_;
};

}  // namespace zdb

#endif  // ZDB_CORE_EPOCH_H_
