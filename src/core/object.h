// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Object records and their on-page codec. The object store is the "data
// file" of the 1989 setup: the refinement step of filter-and-refine must
// fetch the object's exact geometry from here, so false hits cost real
// page accesses — the cost redundancy exists to avoid.

#ifndef ZDB_CORE_OBJECT_H_
#define ZDB_CORE_OBJECT_H_

#include <cstdint>
#include <cstring>

#include "geom/rect.h"
#include "zorder/zkey.h"

namespace zdb {

/// What an object record's geometry is. Rectangles are self-contained
/// (the MBR *is* the geometry); polygons keep their exact ring in the
/// polygon store, referenced by `payload`.
enum class ObjectKind : uint8_t { kRect = 0, kPolygon = 1 };

/// Fixed-size object record: exact MBR, kind, payload, liveness.
/// 40 bytes on page. For kind == kPolygon, `payload` is the PolyRef of
/// the exact ring in the PolygonStore; for rectangles it is free for the
/// application.
struct ObjectRecord {
  Rect mbr;
  uint32_t payload = 0;
  ObjectKind kind = ObjectKind::kRect;
  uint8_t live = 0;

  static constexpr size_t kEncodedSize = 40;

  void EncodeTo(char* dst) const {
    std::memcpy(dst, &mbr.xlo, 8);
    std::memcpy(dst + 8, &mbr.ylo, 8);
    std::memcpy(dst + 16, &mbr.xhi, 8);
    std::memcpy(dst + 24, &mbr.yhi, 8);
    std::memcpy(dst + 32, &payload, 4);
    dst[36] = static_cast<char>(live);
    dst[37] = static_cast<char>(kind);
    dst[38] = dst[39] = 0;
  }

  static ObjectRecord DecodeFrom(const char* src) {
    ObjectRecord r;
    std::memcpy(&r.mbr.xlo, src, 8);
    std::memcpy(&r.mbr.ylo, src + 8, 8);
    std::memcpy(&r.mbr.xhi, src + 16, 8);
    std::memcpy(&r.mbr.yhi, src + 24, 8);
    std::memcpy(&r.payload, src + 32, 4);
    r.live = static_cast<uint8_t>(src[36]);
    r.kind = static_cast<ObjectKind>(src[37]);
    return r;
  }
};

/// Compact MBR codec for the optional store-MBR-in-leaf mode (ablation).
inline constexpr size_t kEncodedRectSize = 32;

inline void EncodeRect(const Rect& r, char* dst) {
  std::memcpy(dst, &r.xlo, 8);
  std::memcpy(dst + 8, &r.ylo, 8);
  std::memcpy(dst + 16, &r.xhi, 8);
  std::memcpy(dst + 24, &r.yhi, 8);
}

inline Rect DecodeRect(const char* src) {
  Rect r;
  std::memcpy(&r.xlo, src, 8);
  std::memcpy(&r.ylo, src + 8, 8);
  std::memcpy(&r.xhi, src + 16, 8);
  std::memcpy(&r.yhi, src + 24, 8);
  return r;
}

}  // namespace zdb

#endif  // ZDB_CORE_OBJECT_H_
