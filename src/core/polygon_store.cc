// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Page layout:
//   0  u16  slot count
//   2  u16  data start (lowest used byte; records grow down)
//   4  u16  slot offsets [count] (grow up)
// Record: u16 vertex count | vertices as pairs of f64.

#include "core/polygon_store.h"

#include <cstring>

#include "common/coding.h"

namespace zdb {

namespace {
constexpr size_t kHeaderSize = 4;

size_t RecordSize(size_t nverts) { return 2 + nverts * 16; }
}  // namespace

PolygonStore::PolygonStore(BufferPool* pool)
    : pool_(pool), page_size_(pool->pager()->page_size()) {
  // Header + one slot + the record itself must fit.
  max_vertices_ =
      static_cast<uint32_t>((page_size_ - kHeaderSize - 2 - 2) / 16);
}

Result<PolyRef> PolygonStore::Insert(const Polygon& poly) {
  const size_t nverts = poly.size();
  if (nverts == 0) return Status::InvalidArgument("empty polygon");
  if (nverts > max_vertices_) {
    return Status::InvalidArgument(
        "polygon too large for page size: " + std::to_string(nverts) +
        " vertices > " + std::to_string(max_vertices_));
  }
  const size_t need = RecordSize(nverts) + 2;  // record + slot

  // Try the last page; open a new one if it cannot take the record.
  PageRef ref;
  uint32_t page_idx;
  bool fresh = false;
  if (!pages_.empty()) {
    page_idx = static_cast<uint32_t>(pages_.size() - 1);
    ZDB_ASSIGN_OR_RETURN(ref, pool_->Fetch(pages_.back()));
    const uint16_t count = DecodeFixed16(ref.data());
    const uint16_t data_start = DecodeFixed16(ref.data() + 2);
    const size_t free_bytes = data_start - (kHeaderSize + 2 * count);
    if (count >= kMaxSlots || free_bytes < need) fresh = true;
  } else {
    fresh = true;
    page_idx = 0;
  }
  if (fresh) {
    ZDB_ASSIGN_OR_RETURN(ref, pool_->New());
    char* p = ref.mutable_data();
    EncodeFixed16(p, 0);
    EncodeFixed16(p + 2, static_cast<uint16_t>(page_size_));
    pages_.push_back(ref.id());
    page_idx = static_cast<uint32_t>(pages_.size() - 1);
  }

  char* p = ref.mutable_data();
  const uint16_t count = DecodeFixed16(p);
  const uint16_t data_start = DecodeFixed16(p + 2);
  const uint16_t rec_off =
      static_cast<uint16_t>(data_start - RecordSize(nverts));
  EncodeFixed16(p + rec_off, static_cast<uint16_t>(nverts));
  char* vp = p + rec_off + 2;
  for (const Point& v : poly.vertices()) {
    std::memcpy(vp, &v.x, 8);
    std::memcpy(vp + 8, &v.y, 8);
    vp += 16;
  }
  EncodeFixed16(p + kHeaderSize + 2 * count, rec_off);
  EncodeFixed16(p, static_cast<uint16_t>(count + 1));
  EncodeFixed16(p + 2, rec_off);
  return (page_idx << kSlotBits) | count;
}

Result<Polygon> PolygonStore::Fetch(PolyRef ref) {
  // Snapshot reads resolve the page directory through the pinned meta
  // (see ObjectStore::Fetch); page bytes then come from the chains.
  const SnapshotView* v = SnapshotView::FindPolygons(this);
  const std::vector<PageId>& pages =
      v != nullptr ? v->meta->poly_pages : pages_;
  const uint32_t page_idx = ref >> kSlotBits;
  const uint32_t slot = ref & (kMaxSlots - 1);
  if (page_idx >= pages.size()) {
    return Status::NotFound("polygon page out of range");
  }
  PageRef page;
  ZDB_ASSIGN_OR_RETURN(page, pool_->Fetch(pages[page_idx]));
  const char* p = page.data();
  const uint16_t count = DecodeFixed16(p);
  if (slot >= count) return Status::NotFound("polygon slot out of range");
  const uint16_t rec_off = DecodeFixed16(p + kHeaderSize + 2 * slot);
  const uint16_t nverts = DecodeFixed16(p + rec_off);
  std::vector<Point> ring(nverts);
  const char* vp = p + rec_off + 2;
  for (uint16_t i = 0; i < nverts; ++i) {
    std::memcpy(&ring[i].x, vp, 8);
    std::memcpy(&ring[i].y, vp + 8, 8);
    vp += 16;
  }
  return Polygon(std::move(ring));
}

}  // namespace zdb
