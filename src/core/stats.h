// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Per-operation counters reported by the experiments: what the filter
// retrieved, how much of it was redundant, and how much of it was wrong.

#ifndef ZDB_CORE_STATS_H_
#define ZDB_CORE_STATS_H_

#include <cstdint>

namespace zdb {

/// Statistics of one window/point query.
struct QueryStats {
  uint64_t query_elements = 0;   ///< elements the query decomposed into
  uint64_t ancestor_probes = 0;  ///< enclosing-element probes issued
  uint64_t index_entries = 0;    ///< (element, oid) entries scanned
  uint64_t candidates = 0;       ///< entries hitting the query's elements
  uint64_t unique_candidates = 0;  ///< after duplicate elimination
  uint64_t false_hits = 0;       ///< unique candidates failing refinement
  uint64_t results = 0;          ///< final answers
  uint64_t bigmin_jumps = 0;     ///< re-seeks due to BIGMIN skipping

  uint64_t duplicates() const { return candidates - unique_candidates; }

  void Add(const QueryStats& o) {
    query_elements += o.query_elements;
    ancestor_probes += o.ancestor_probes;
    index_entries += o.index_entries;
    candidates += o.candidates;
    unique_candidates += o.unique_candidates;
    false_hits += o.false_hits;
    results += o.results;
    bigmin_jumps += o.bigmin_jumps;
  }
};

/// Statistics of one z-merge spatial join.
struct JoinStats {
  uint64_t entries_scanned = 0;   ///< total index entries consumed
  uint64_t candidate_pairs = 0;   ///< element-level pair hits
  uint64_t unique_pairs = 0;      ///< after pair deduplication
  uint64_t false_pairs = 0;       ///< unique pairs failing refinement
  uint64_t results = 0;

  uint64_t duplicate_pairs() const { return candidate_pairs - unique_pairs; }
};

/// Whole-index accounting used by the build/size experiments.
struct IndexBuildStats {
  uint64_t objects = 0;
  uint64_t index_entries = 0;  ///< sum of per-object redundancy
  double total_error = 0.0;    ///< sum of per-object approximation error

  double redundancy() const {
    return objects ? static_cast<double>(index_entries) / objects : 0.0;
  }
  double avg_error() const {
    return objects ? total_error / static_cast<double>(objects) : 0.0;
  }
};

}  // namespace zdb

#endif  // ZDB_CORE_STATS_H_
