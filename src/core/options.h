// Copyright (c) zdb authors. Licensed under the MIT license.

#ifndef ZDB_CORE_OPTIONS_H_
#define ZDB_CORE_OPTIONS_H_

#include "decompose/decompose.h"
#include "geom/grid.h"
#include "geom/rect.h"

namespace zdb {

/// Configuration of a redundant z-order spatial index. The data-side
/// decomposition policy is the paper's central knob; the query-side
/// policy and the two ablation switches are study instruments.
struct SpatialIndexOptions {
  /// World bounds mapped onto the grid.
  Rect world = Rect{0.0, 0.0, 1.0, 1.0};

  /// Grid resolution per axis (z-addresses use 2 * grid_bits bits).
  uint32_t grid_bits = kDefaultGridBits;

  /// How inserted objects are decomposed (data redundancy).
  DecomposeOptions data = DecomposeOptions::SizeBound(4);

  /// How query regions are decomposed before the index is scanned.
  DecomposeOptions query = DecomposeOptions::SizeBound(4);

  /// Ablation: replicate each object's exact MBR into the index leaves so
  /// the filter step can test it without fetching the object record.
  /// Off by default (the paper's economics: false hits cost data-page
  /// accesses).
  bool store_mbr_in_leaf = false;

  /// Ablation: instead of decomposing the query, scan its single
  /// enclosing element and skip dead space with BIGMIN jumps.
  bool use_bigmin = false;
};

}  // namespace zdb

#endif  // ZDB_CORE_OPTIONS_H_
