// Copyright (c) zdb authors. Licensed under the MIT license.
//
// The SpatialIndex half of epoch-based snapshot reads: enabling the
// feature, pinning epochs, opening per-thread snapshot scopes and the
// pinned (*At) query variants. The version chains live in
// storage/snapshot.{h,cc}; pin accounting and the reclamation thread in
// core/epoch.{h,cc}. See DESIGN.md "Snapshot reads & epoch GC" for the
// full safety argument.

#include "core/spatial_index.h"

namespace zdb {

Status SpatialIndex::EnableSnapshots() {
  MutexLock commit(commit_mu_);
  WriterSection lock(this);
  if (snapshots_on_.load(std::memory_order_relaxed)) return Status::OK();
  epoch_mgr_ =
      std::make_unique<EpochManager>(&write_epoch_, pool_->versions());
  // The current state is the first pinned-readable epoch: a pin taken
  // right after this call returns must find its meta.
  epoch_mgr_->RecordMeta(write_epoch(), CaptureMetaLocked());
  snapshots_on_.store(true, std::memory_order_release);
  // This writer section was entered before the flag flipped, so arm
  // copy-on-write by hand; every later WriterSection arms itself.
  pool_->ArmVersioning(write_epoch() + 1);
  epoch_mgr_->StartGc();
  return Status::OK();
}

EpochPin SpatialIndex::PinEpoch() const {
  if (!snapshots_enabled()) {
    internal::LockAssertFail("PinEpoch() before EnableSnapshots()");
  }
  return epoch_mgr_->Pin();
}

SnapshotMeta SpatialIndex::CaptureMetaLocked() const {
  SnapshotMeta m;
  m.btree_root = btree_->root();
  m.btree_height = btree_->height();
  m.obj_next_oid = store_->size();
  m.obj_pages = store_->pages();
  m.poly_pages = polys_->pages();
  m.level_mask = level_mask_;
  m.live_objects = live_objects_.load(std::memory_order_relaxed);
  return m;
}

SnapshotView SpatialIndex::MakeView(
    uint64_t epoch, std::shared_ptr<const SnapshotMeta> meta) const {
  SnapshotView v;
  v.epoch = epoch;
  v.versions = pool_->versions();
  v.pool = pool_;
  v.owner = this;
  v.btree = btree_.get();
  v.objects = store_.get();
  v.polygons = polys_.get();
  v.meta = std::move(meta);
  return v;
}

Result<std::shared_ptr<const SnapshotMeta>> SpatialIndex::PinnedMeta(
    const EpochPin& pin) const {
  if (!snapshots_enabled()) {
    return Status::InvalidArgument("snapshots not enabled on this index");
  }
  return epoch_mgr_->MetaAt(pin.epoch());
}

// ------------------------------------------------ reload quiesce barrier

void SpatialIndex::EnterSnapshotRead() const {
  MutexLock lock(snap_mu_);
  while (snap_barrier_) snap_cv_.Wait(snap_mu_);
  ++snap_active_;
}

void SpatialIndex::LeaveSnapshotRead() const {
  MutexLock lock(snap_mu_);
  if (--snap_active_ == 0 && snap_barrier_) snap_cv_.NotifyAll();
}

void SpatialIndex::BeginSnapshotQuiesce() {
  MutexLock lock(snap_mu_);
  snap_barrier_ = true;
  while (snap_active_ != 0) snap_cv_.Wait(snap_mu_);
}

void SpatialIndex::EndSnapshotQuiesce() {
  MutexLock lock(snap_mu_);
  snap_barrier_ = false;
  snap_cv_.NotifyAll();
}

// -------------------------------------------------- SnapshotReadScope

SpatialIndex::SnapshotReadScope::SnapshotReadScope(
    const SpatialIndex* ix, uint64_t epoch,
    std::shared_ptr<const SnapshotMeta> meta)
    : ix_(ix), epoch_(epoch) {
  ix_->EnterSnapshotRead();
  // The component handles (btree_/store_/polys_) are only reseated by
  // ReloadLocked, which waits behind the barrier this thread is now
  // counted under — reading them without the latch is race-free.
  scope_.emplace(ix_->MakeView(epoch_, std::move(meta)));
}

SpatialIndex::SnapshotReadScope::~SnapshotReadScope() {
  scope_.reset();
  ix_->LeaveSnapshotRead();
}

Result<std::unique_ptr<SpatialIndex::SnapshotReadScope>>
SpatialIndex::OpenSnapshot(const EpochPin& pin) const {
  std::shared_ptr<const SnapshotMeta> meta;
  ZDB_ASSIGN_OR_RETURN(meta, PinnedMeta(pin));
  return std::unique_ptr<SnapshotReadScope>(
      new SnapshotReadScope(this, pin.epoch(), std::move(meta)));
}

// ----------------------------------------------------- pinned queries

Result<std::vector<ObjectId>> SpatialIndex::WindowQueryAt(
    const EpochPin& pin, const Rect& window, QueryStats* stats) {
  std::shared_ptr<const SnapshotMeta> meta;
  ZDB_ASSIGN_OR_RETURN(meta, PinnedMeta(pin));
  SnapshotReadScope scope(this, pin.epoch(), std::move(meta));
  SnapshotSection section(this);
  return WindowQueryLocked(window, stats);
}

Result<std::vector<ObjectId>> SpatialIndex::PointQueryAt(
    const EpochPin& pin, const Point& p, QueryStats* stats) {
  std::shared_ptr<const SnapshotMeta> meta;
  ZDB_ASSIGN_OR_RETURN(meta, PinnedMeta(pin));
  SnapshotReadScope scope(this, pin.epoch(), std::move(meta));
  SnapshotSection section(this);
  return PointQueryLocked(p, stats);
}

Result<std::vector<ObjectId>> SpatialIndex::ContainmentQueryAt(
    const EpochPin& pin, const Rect& window, QueryStats* stats) {
  std::shared_ptr<const SnapshotMeta> meta;
  ZDB_ASSIGN_OR_RETURN(meta, PinnedMeta(pin));
  SnapshotReadScope scope(this, pin.epoch(), std::move(meta));
  SnapshotSection section(this);
  return ContainmentQueryLocked(window, stats);
}

Result<std::vector<ObjectId>> SpatialIndex::EnclosureQueryAt(
    const EpochPin& pin, const Rect& window, QueryStats* stats) {
  std::shared_ptr<const SnapshotMeta> meta;
  ZDB_ASSIGN_OR_RETURN(meta, PinnedMeta(pin));
  SnapshotReadScope scope(this, pin.epoch(), std::move(meta));
  SnapshotSection section(this);
  return EnclosureQueryLocked(window, stats);
}

Result<std::vector<std::pair<ObjectId, double>>>
SpatialIndex::NearestNeighborsAt(const EpochPin& pin, const Point& p,
                                 size_t k, QueryStats* stats,
                                 uint32_t* rounds) {
  std::shared_ptr<const SnapshotMeta> meta;
  ZDB_ASSIGN_OR_RETURN(meta, PinnedMeta(pin));
  SnapshotReadScope scope(this, pin.epoch(), std::move(meta));
  SnapshotSection section(this);
  return NearestNeighborsLocked(p, k, stats, rounds);
}

// --------------------------------------------------------------- stats

EpochStats SpatialIndex::epoch_stats() const {
  // epoch_mgr_ is set once, before concurrent use (EnableSnapshots is
  // part of index setup) — a monitor read here needs no lock.
  return epoch_mgr_ != nullptr ? epoch_mgr_->stats() : EpochStats{};
}

PageVersionStats SpatialIndex::version_stats() const {
  return pool_->versions()->stats();
}

// ---------------------------------------------- view-aware index state

uint64_t SpatialIndex::EffectiveLevelMask() const {
  if (const SnapshotView* v = SnapshotView::FindOwner(this)) {
    return v->meta->level_mask;
  }
  return level_mask_;
}

uint64_t SpatialIndex::EffectiveLiveObjects() const {
  if (const SnapshotView* v = SnapshotView::FindOwner(this)) {
    return v->meta->live_objects;
  }
  return live_objects_.load(std::memory_order_relaxed);
}

}  // namespace zdb
