// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Bulk loading: decompose everything, sort the entry keys once, and
// build the B+-tree bottom-up. The paper's incremental-insert cost grows
// with redundancy (E6); bulk loading pays the redundancy once in a sort
// instead of k random descents per object (ablation A5).

#include <algorithm>

#include "core/spatial_index.h"
#include "zorder/zkey.h"

namespace zdb {

Status SpatialIndex::BulkLoad(const std::vector<Rect>& data, double fill,
                              const std::vector<ObjectId>* oids) {
  MutexLock commit(commit_mu_);
  WriterSection lock(this);
  if (btree_->size() != 0 || store_->size() != 0) {
    return Status::InvalidArgument("bulk load into non-empty index");
  }
  if (oids != nullptr && oids->size() != data.size()) {
    return Status::InvalidArgument("bulk load oids/data size mismatch");
  }
  bool mutated = false;
  Status st = BulkLoadLocked(data, fill, oids, &mutated);
  if (st.ok()) {
    PublishWrite();
    NotifyPublished();
  } else if (gc_active_ && mutated) {
    // A failure after the first store append may have left a partial
    // load in memory; recover at the last durable group boundary.
    return RollbackGroupLocked(st);
  }
  return st;
}

Status SpatialIndex::BulkLoadLocked(const std::vector<Rect>& data,
                                    double fill,
                                    const std::vector<ObjectId>* oids,
                                    bool* mutated) {
  std::string value;
  if (options_.store_mbr_in_leaf) value.resize(kEncodedRectSize);

  struct Entry {
    std::string key;
    std::string value;
  };
  std::vector<Entry> entries;
  entries.reserve(data.size() * 2);

  for (size_t n = 0; n < data.size(); ++n) {
    const Rect& mbr = data[n];
    if (!mbr.valid()) return Status::InvalidArgument("invalid MBR");
    *mutated = true;
    ObjectId oid;
    if (oids == nullptr) {
      ZDB_ASSIGN_OR_RETURN(oid, store_->Insert(mbr));
    } else {
      oid = (*oids)[n];
      ZDB_RETURN_IF_ERROR(store_->InsertAt(oid, mbr));
    }
    const Decomposition decomp =
        Decompose(mapper_.ToGrid(mbr), options_.grid_bits, options_.data);
    if (options_.store_mbr_in_leaf) EncodeRect(mbr, value.data());
    for (const ZElement& elem : decomp.elements) {
      entries.push_back({EncodeZKey(elem, oid), value});
      level_mask_ |= 1ULL << elem.level;
    }
    ++build_stats_.objects;
    build_stats_.index_entries += decomp.elements.size();
    build_stats_.total_error += decomp.error();
    ++live_objects_;
  }

  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.key < b.key; });

  size_t i = 0;
  return btree_->BulkLoad(
      [&](std::string* key, std::string* val) {
        if (i >= entries.size()) return false;
        *key = entries[i].key;
        *val = entries[i].value;
        ++i;
        return true;
      },
      fill);
}

}  // namespace zdb
