// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Variable-length polygon heap. Exact polygon rings are appended into
// slotted pages; a PolyRef packs (page index, slot). Fetching a polygon
// during query refinement costs a page access through the buffer pool,
// exactly like object-record fetches — non-rectangular refinement is
// strictly more expensive, as it was in the era's systems.

#ifndef ZDB_CORE_POLYGON_STORE_H_
#define ZDB_CORE_POLYGON_STORE_H_

#include <vector>

#include "common/result.h"
#include "geom/polygon.h"
#include "storage/buffer_pool.h"

namespace zdb {

/// Packed locator: high 20 bits page index, low 12 bits slot.
using PolyRef = uint32_t;

class PolygonStore {
 public:
  explicit PolygonStore(BufferPool* pool);

  /// Appends a polygon; fails if the ring alone exceeds one page.
  Result<PolyRef> Insert(const Polygon& poly);

  /// Fetches a stored ring.
  Result<Polygon> Fetch(PolyRef ref);

  /// Largest ring size a page can hold.
  uint32_t max_vertices() const { return max_vertices_; }

  uint32_t page_count() const {
    return static_cast<uint32_t>(pages_.size());
  }

  /// Page directory (for persistence; see spatial_index checkpointing).
  const std::vector<PageId>& pages() const { return pages_; }
  void RestorePages(std::vector<PageId> pages) { pages_ = std::move(pages); }

 private:
  static constexpr uint32_t kSlotBits = 12;
  static constexpr uint32_t kMaxSlots = 1u << kSlotBits;

  BufferPool* pool_;
  uint32_t page_size_;
  uint32_t max_vertices_;
  std::vector<PageId> pages_;
};

}  // namespace zdb

#endif  // ZDB_CORE_POLYGON_STORE_H_
