// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Index persistence. Checkpoint() serializes the index state into a
// master page plus linked directory-chain pages for the object and
// polygon stores; Open() restores an index from the master page. The
// B+-tree persists through its own meta page.
//
// Master page layout:
//   0   u32  magic "zsp1"
//   4   u32  version
//   8   f64 x4  world rect
//   40  u32  grid_bits
//   44  u8   flags (bit 0: store_mbr_in_leaf, bit 1: use_bigmin)
//   48  data policy  (21 bytes, see EncodePolicy)
//   72  query policy (21 bytes)
//   96  u32  btree meta page
//   100 u64  level mask
//   108 u64  live objects
//   116 u64  build objects
//   124 u64  build index entries
//   132 f64  build total error
//   140 u32  object store next oid
//   144 u32  object store directory chain head
//   148 u32  polygon store directory chain head
//
// Directory chain page: u32 next | u32 count | u32 page ids...

#include <algorithm>
#include <cstring>

#include "common/coding.h"
#include "core/spatial_index.h"

namespace zdb {

namespace {

constexpr uint32_t kMasterMagic = 0x7a737031;  // "zsp1"
constexpr uint32_t kVersion = 1;

void EncodePolicy(char* p, const DecomposeOptions& o) {
  p[0] = static_cast<char>(o.policy);
  EncodeFixed32(p + 1, o.max_elements);
  double e = o.max_error;
  std::memcpy(p + 5, &e, 8);
  EncodeFixed32(p + 13, o.max_level);
  EncodeFixed32(p + 17, o.hard_cap);
}

DecomposeOptions DecodePolicy(const char* p) {
  DecomposeOptions o;
  o.policy = static_cast<DecomposeOptions::Policy>(p[0]);
  o.max_elements = DecodeFixed32(p + 1);
  std::memcpy(&o.max_error, p + 5, 8);
  o.max_level = DecodeFixed32(p + 13);
  o.hard_cap = DecodeFixed32(p + 17);
  return o;
}

/// Writes `ids` into a fresh chain of pages; returns the head page.
Result<PageId> WriteChain(BufferPool* pool, const std::vector<PageId>& ids) {
  const uint32_t page_size = pool->pager()->page_size();
  const uint32_t per_page = (page_size - 8) / 4;
  PageId head = kInvalidPageId;
  PageId prev = kInvalidPageId;
  size_t i = 0;
  if (ids.empty()) {
    // Still allocate one empty page so the head is always valid.
    PageRef ref;
    ZDB_ASSIGN_OR_RETURN(ref, pool->New());
    EncodeFixed32(ref.mutable_data(), kInvalidPageId);
    EncodeFixed32(ref.mutable_data() + 4, 0);
    return ref.id();
  }
  while (i < ids.size()) {
    PageRef ref;
    ZDB_ASSIGN_OR_RETURN(ref, pool->New());
    const uint32_t n =
        static_cast<uint32_t>(std::min<size_t>(per_page, ids.size() - i));
    char* p = ref.mutable_data();
    EncodeFixed32(p, kInvalidPageId);
    EncodeFixed32(p + 4, n);
    for (uint32_t j = 0; j < n; ++j) {
      EncodeFixed32(p + 8 + 4 * j, ids[i + j]);
    }
    if (head == kInvalidPageId) {
      head = ref.id();
    } else {
      PageRef pref;
      ZDB_ASSIGN_OR_RETURN(pref, pool->Fetch(prev));
      EncodeFixed32(pref.mutable_data(), ref.id());
    }
    prev = ref.id();
    i += n;
  }
  return head;
}

Result<std::vector<PageId>> ReadChain(BufferPool* pool, PageId head) {
  std::vector<PageId> ids;
  PageId page = head;
  while (page != kInvalidPageId) {
    PageRef ref;
    ZDB_ASSIGN_OR_RETURN(ref, pool->Fetch(page));
    const char* p = ref.data();
    const PageId next = DecodeFixed32(p);
    const uint32_t n = DecodeFixed32(p + 4);
    for (uint32_t j = 0; j < n; ++j) {
      ids.push_back(DecodeFixed32(p + 8 + 4 * j));
    }
    page = next;
  }
  return ids;
}

Status FreeChain(BufferPool* pool, PageId head) {
  PageId page = head;
  while (page != kInvalidPageId) {
    PageId next;
    {
      PageRef ref;
      ZDB_ASSIGN_OR_RETURN(ref, pool->Fetch(page));
      next = DecodeFixed32(ref.data());
    }
    ZDB_RETURN_IF_ERROR(pool->Delete(page));
    page = next;
  }
  return Status::OK();
}

}  // namespace

Result<PageId> SpatialIndex::Checkpoint() {
  // A checkpoint rewrites directory chains and the master page; it is a
  // writer section even though the logical contents do not change (and
  // takes commit_mu_ first to serialize with the group-commit thread).
  MutexLock commit(commit_mu_);
  WriterSection lock(this);
  return CheckpointLocked();
}

Result<PageId> SpatialIndex::CheckpointLocked() {
  ZDB_RETURN_IF_ERROR(btree_->Flush());

  // Rewrite the directory chains (free previous versions first).
  if (obj_dir_chain_ != kInvalidPageId) {
    ZDB_RETURN_IF_ERROR(FreeChain(pool_, obj_dir_chain_));
  }
  if (poly_dir_chain_ != kInvalidPageId) {
    ZDB_RETURN_IF_ERROR(FreeChain(pool_, poly_dir_chain_));
  }
  ZDB_ASSIGN_OR_RETURN(obj_dir_chain_, WriteChain(pool_, store_->pages()));
  ZDB_ASSIGN_OR_RETURN(poly_dir_chain_, WriteChain(pool_, polys_->pages()));

  // Scoped so the master-page pin is provably released before returning:
  // Checkpoint() leaves no internal pins behind, and a following
  // BufferPool::FlushAll() only fails if the *caller* still holds
  // PageRefs on dirty pages (and then with a status naming them).
  {
    PageRef master;
    if (master_page_ == kInvalidPageId) {
      ZDB_ASSIGN_OR_RETURN(master, pool_->New());
      master_page_ = master.id();
    } else {
      ZDB_ASSIGN_OR_RETURN(master, pool_->Fetch(master_page_));
    }
    char* p = master.mutable_data();
    std::memset(p, 0, 152);
    EncodeFixed32(p, kMasterMagic);
    EncodeFixed32(p + 4, kVersion);
    std::memcpy(p + 8, &options_.world.xlo, 8);
    std::memcpy(p + 16, &options_.world.ylo, 8);
    std::memcpy(p + 24, &options_.world.xhi, 8);
    std::memcpy(p + 32, &options_.world.yhi, 8);
    EncodeFixed32(p + 40, options_.grid_bits);
    p[44] = static_cast<char>((options_.store_mbr_in_leaf ? 1 : 0) |
                              (options_.use_bigmin ? 2 : 0));
    EncodePolicy(p + 48, options_.data);
    EncodePolicy(p + 72, options_.query);
    EncodeFixed32(p + 96, btree_->meta_page());
    EncodeFixed64(p + 100, level_mask_);
    EncodeFixed64(p + 108, live_objects_);
    EncodeFixed64(p + 116, build_stats_.objects);
    EncodeFixed64(p + 124, build_stats_.index_entries);
    std::memcpy(p + 132, &build_stats_.total_error, 8);
    EncodeFixed32(p + 140, store_->size());
    EncodeFixed32(p + 144, obj_dir_chain_);
    EncodeFixed32(p + 148, poly_dir_chain_);
  }
  return master_page_;
}

Status SpatialIndex::ReloadLocked() {
  // Quiesce snapshot readers first: they hold no latch, but a pinned
  // read may be mid-flight with a transient buffer-pool pin (which
  // would fail the Discard below) or mid-dereference of the handles
  // this reload reseats. The barrier waits those out and blocks new
  // snapshot scopes until the reload finishes; the caller's exclusive
  // latch keeps latched readers out as before.
  BeginSnapshotQuiesce();
  Status st = ReloadUnquiescedLocked();
  EndSnapshotQuiesce();
  return st;
}

Status SpatialIndex::ReloadUnquiescedLocked() {
  if (master_page_ == kInvalidPageId) {
    return Status::InvalidArgument("reload without a prior checkpoint");
  }
  // Drop the B+-tree/store handles first (they keep no pins, but their
  // in-memory state is stale), then the cache, then re-read everything
  // from the master page — Open()'s restore logic applied in place. The
  // options are immutable, so only the dynamic state is re-decoded.
  btree_.reset();
  store_.reset();
  polys_.reset();
  ZDB_RETURN_IF_ERROR(pool_->Discard());

  PageId btree_meta, obj_chain, poly_chain;
  uint32_t next_oid;
  {
    PageRef master;
    ZDB_ASSIGN_OR_RETURN(master, pool_->Fetch(master_page_));
    const char* p = master.data();
    if (DecodeFixed32(p) != kMasterMagic) {
      return Status::Corruption("bad spatial-index master page");
    }
    btree_meta = DecodeFixed32(p + 96);
    level_mask_ = DecodeFixed64(p + 100);
    live_objects_.store(DecodeFixed64(p + 108),
                        std::memory_order_relaxed);
    build_stats_.objects = DecodeFixed64(p + 116);
    build_stats_.index_entries = DecodeFixed64(p + 124);
    std::memcpy(&build_stats_.total_error, p + 132, 8);
    next_oid = DecodeFixed32(p + 140);
    obj_chain = DecodeFixed32(p + 144);
    poly_chain = DecodeFixed32(p + 148);
  }
  ZDB_ASSIGN_OR_RETURN(btree_, BTree::Open(pool_, btree_meta));
  store_ = std::make_unique<ObjectStore>(pool_);
  polys_ = std::make_unique<PolygonStore>(pool_);
  std::vector<PageId> obj_pages, poly_pages;
  ZDB_ASSIGN_OR_RETURN(obj_pages, ReadChain(pool_, obj_chain));
  ZDB_ASSIGN_OR_RETURN(poly_pages, ReadChain(pool_, poly_chain));
  store_->Restore(std::move(obj_pages), next_oid);
  polys_->RestorePages(std::move(poly_pages));
  obj_dir_chain_ = obj_chain;
  poly_dir_chain_ = poly_chain;
  return Status::OK();
}

Result<std::unique_ptr<SpatialIndex>> SpatialIndex::Open(BufferPool* pool,
                                                         PageId master_page) {
  SpatialIndexOptions options;
  PageId btree_meta;
  uint64_t level_mask, live_objects;
  IndexBuildStats build;
  uint32_t next_oid;
  PageId obj_chain, poly_chain;
  {
    PageRef master;
    ZDB_ASSIGN_OR_RETURN(master, pool->Fetch(master_page));
    const char* p = master.data();
    if (DecodeFixed32(p) != kMasterMagic) {
      return Status::Corruption("bad spatial-index master page");
    }
    if (DecodeFixed32(p + 4) != kVersion) {
      return Status::Corruption("unsupported spatial-index version");
    }
    std::memcpy(&options.world.xlo, p + 8, 8);
    std::memcpy(&options.world.ylo, p + 16, 8);
    std::memcpy(&options.world.xhi, p + 24, 8);
    std::memcpy(&options.world.yhi, p + 32, 8);
    options.grid_bits = DecodeFixed32(p + 40);
    options.store_mbr_in_leaf = (p[44] & 1) != 0;
    options.use_bigmin = (p[44] & 2) != 0;
    options.data = DecodePolicy(p + 48);
    options.query = DecodePolicy(p + 72);
    btree_meta = DecodeFixed32(p + 96);
    level_mask = DecodeFixed64(p + 100);
    live_objects = DecodeFixed64(p + 108);
    build.objects = DecodeFixed64(p + 116);
    build.index_entries = DecodeFixed64(p + 124);
    std::memcpy(&build.total_error, p + 132, 8);
    next_oid = DecodeFixed32(p + 140);
    obj_chain = DecodeFixed32(p + 144);
    poly_chain = DecodeFixed32(p + 148);
  }

  std::unique_ptr<SpatialIndex> index(new SpatialIndex(pool, options));
  ZDB_ASSIGN_OR_RETURN(index->btree_, BTree::Open(pool, btree_meta));
  index->store_ = std::make_unique<ObjectStore>(pool);
  index->polys_ = std::make_unique<PolygonStore>(pool);

  std::vector<PageId> obj_pages, poly_pages;
  ZDB_ASSIGN_OR_RETURN(obj_pages, ReadChain(pool, obj_chain));
  ZDB_ASSIGN_OR_RETURN(poly_pages, ReadChain(pool, poly_chain));
  index->store_->Restore(std::move(obj_pages), next_oid);
  index->polys_->RestorePages(std::move(poly_pages));

  // Uncontended (the index is not published yet), but the restored
  // fields carry GUARDED_BY contracts, so take their locks for real.
  MutexLock commit(index->commit_mu_);
  WriterSection lock(index.get());
  index->level_mask_ = level_mask;
  index->live_objects_ = live_objects;
  index->build_stats_ = build;
  index->master_page_ = master_page;
  index->obj_dir_chain_ = obj_chain;
  index->poly_dir_chain_ = poly_chain;
  return index;
}

}  // namespace zdb
