// Copyright (c) zdb authors. Licensed under the MIT license.
//
// The off-latch group-commit durability pipeline (see the "group commit"
// section of spatial_index.h). Mutators publish in-memory state and the
// write epoch under the exclusive latch with no I/O inside; this file
// owns the dedicated thread that makes published state durable —
// checkpoint, buffer-pool flush, journal commit — coalescing every batch
// published since the last group into one fsync and completing waiters
// in epoch order through the gc_durable_ watermark.
//
// Journal discipline: while the pipeline runs, the pager batch is
// permanently armed — CommitBatch is immediately followed by BeginBatch
// under the same commit_mu_ hold, so every page overwritten after a
// group boundary (including buffer-pool evictions mid-apply) has its
// before-image journaled against that boundary. A crash therefore rolls
// back to the last durable group: published-but-not-durable batches
// disappear as units, never partially.

#include <chrono>

#include "core/spatial_index.h"

namespace zdb {

void SpatialIndex::NotifyPublished() {
  if (!gc_active_.load(std::memory_order_relaxed)) return;
  MutexLock gl(gc_mu_);
  gc_published_ = write_epoch();
  gc_cv_.NotifyOne();
}

uint64_t SpatialIndex::durable_epoch() const {
  MutexLock gl(gc_mu_);
  return gc_durable_;
}

void SpatialIndex::SetGroupCommitPaused(bool paused) {
  MutexLock gl(gc_mu_);
  gc_paused_ = paused;
  if (!paused) gc_cv_.NotifyAll();
}

bool SpatialIndex::DurabilitySettledLocked(uint64_t epoch) const {
  if (gc_durable_ >= epoch) return true;
  if (!gc_running_ || gc_dead_) return true;
  for (const FailedEpochs& f : gc_failed_) {
    if (epoch > f.lo && epoch <= f.hi) return true;
  }
  return false;
}

Status SpatialIndex::WaitDurable(uint64_t epoch, uint64_t timeout_ms) {
  MutexLock gl(gc_mu_);
  if (timeout_ms > 0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (!DurabilitySettledLocked(epoch)) {
      if (!gc_done_cv_.WaitUntil(gc_mu_, deadline)) {
        if (DurabilitySettledLocked(epoch)) break;
        return Status::TimedOut("epoch " + std::to_string(epoch) +
                                " not durable within " +
                                std::to_string(timeout_ms) + "ms");
      }
    }
  } else {
    while (!DurabilitySettledLocked(epoch)) gc_done_cv_.Wait(gc_mu_);
  }
  // A rolled-back epoch can be numerically below a later watermark, so
  // the failure ranges are consulted before the watermark.
  for (const FailedEpochs& f : gc_failed_) {
    if (epoch > f.lo && epoch <= f.hi) return f.status;
  }
  if (gc_durable_ >= epoch) return Status::OK();
  return Status::Unavailable(
      "group commit stopped before epoch became durable");
}

Status SpatialIndex::StartGroupCommit() {
  MutexLock commit(commit_mu_);
  if (gc_active_.load(std::memory_order_relaxed)) {
    return Status::InvalidArgument("group commit already running");
  }
  Pager* pager = pool_->pager();
  if (!pager->journaled()) {
    return Status::InvalidArgument("group commit requires a journaled pager");
  }
  if (pager->in_batch()) {
    return Status::InvalidArgument(
        "cannot start group commit inside a caller-managed pager batch");
  }

  // Make the current state durable — it becomes the initial group
  // boundary the armed journal's before-images roll back to.
  WriterSection lock(this);
  const PageId master_before = master_page_;
  ZDB_RETURN_IF_ERROR(pager->BeginBatch());
  Status st = CheckpointLocked().status();
  if (st.ok()) st = pool_->FlushAll();
  if (st.ok()) st = pager->CommitBatch();
  if (st.ok()) st = pager->BeginBatch();  // arm for the first group
  if (!st.ok()) {
    if (pager->in_batch()) {
      Status undo = pager->AbortBatch();
      if (undo.ok() && master_before != kInvalidPageId) {
        master_page_ = master_before;
        undo = ReloadLocked();
      }
      if (!undo.ok()) {
        return Status::Corruption("group-commit bootstrap failed (" +
                                  st.ToString() +
                                  ") and rollback failed too: " +
                                  undo.ToString());
      }
    }
    return st;
  }
  gc_master_ = master_page_;
  {
    MutexLock gl(gc_mu_);
    gc_stop_ = false;
    gc_dead_ = false;
    gc_paused_ = false;
    gc_published_ = gc_durable_ = write_epoch();
    gc_failed_.clear();
    gc_running_ = true;
  }
  gc_active_.store(true, std::memory_order_release);
  gc_thread_ = std::thread(&SpatialIndex::GroupCommitLoop, this);
  return Status::OK();
}

Status SpatialIndex::StopGroupCommit() {
  {
    MutexLock gl(gc_mu_);
    gc_stop_ = true;
    gc_paused_ = false;
    gc_cv_.NotifyAll();
  }
  if (gc_thread_.joinable()) gc_thread_.join();

  MutexLock commit(commit_mu_);
  Status st = Status::OK();
  Pager* pager = pool_->pager();
  if (gc_active_.load(std::memory_order_relaxed) && pager->in_batch()) {
    // The loop drained before exiting, but a writer may have published
    // between its last group and this point — commit synchronously so
    // Stop() leaves everything durable, then retire the armed batch.
    bool pending;
    {
      MutexLock gl(gc_mu_);
      pending = gc_published_ > gc_durable_;
    }
    if (pending) {
      WriterSection lock(this);
      st = CheckpointLocked().status();
      if (st.ok()) st = pool_->FlushAll();
    }
    if (st.ok()) st = pager->CommitBatch();
  }
  gc_active_.store(false, std::memory_order_release);
  {
    MutexLock gl(gc_mu_);
    gc_running_ = false;
    if (st.ok()) gc_durable_ = gc_published_;
    gc_done_cv_.NotifyAll();
  }
  // On failure the batch stays armed and the intact journal rolls the
  // undurable tail back on the next open — the crash contract, applied
  // to a failed shutdown.
  return st;
}

void SpatialIndex::GroupCommitLoop() {
  for (;;) {
    {
      MutexLock gl(gc_mu_);
      while (!(gc_stop_ || gc_dead_ ||
               (!gc_paused_ && gc_published_ > gc_durable_))) {
        gc_cv_.Wait(gc_mu_);
      }
      if (gc_dead_) return;
      if (gc_published_ <= gc_durable_) {
        if (gc_stop_) return;
        continue;
      }
      if (gc_paused_ && !gc_stop_) continue;
    }
    // The cycle's own error handling (rollback, failed-epoch ranges)
    // already informed the waiters; the loop itself keeps going unless
    // the pipeline was marked dead.
    (void)CommitGroup();
  }
}

Status SpatialIndex::CommitGroup() {
  MutexLock commit(commit_mu_);
  if (!gc_active_.load(std::memory_order_relaxed)) return Status::OK();
  Pager* pager = pool_->pager();

  // Checkpoint under a brief exclusive latch: it only rewrites metadata
  // pages through the buffer pool (no fsync inside). commit_mu_ keeps
  // write_epoch() frozen for the rest of the cycle, so `target` is
  // exactly the set of batches this group makes durable.
  uint64_t target = 0;
  Status st;
  {
    WriterSection lock(this);
    target = write_epoch();
    st = CheckpointLocked().status();
  }

  // The expensive half — dirty-page write-back and the journal fsync —
  // runs with the latch released: readers keep querying right through
  // the durability window. Reader pins don't block the flush (readers
  // never mutate frame bytes, and commit_mu_ excludes every mutator).
  if (st.ok()) st = pool_->FlushForCommit();
  if (st.ok()) st = pager->CommitBatch();

  if (!st.ok()) {
    WriterSection lock(this);
    return RollbackGroupLocked(st);
  }

  gc_master_ = master_page_;
  {
    MutexLock gl(gc_mu_);
    gc_durable_ = target;
    gc_done_cv_.NotifyAll();
  }

  // Re-arm the journal for the next group. Failing here is not a state
  // error (everything is durable) but the pipeline cannot continue
  // without an armed journal: disable it and fall back to the legacy
  // synchronous path for future mutations.
  st = pager->BeginBatch();
  if (!st.ok()) {
    gc_active_.store(false, std::memory_order_release);
    MutexLock gl(gc_mu_);
    gc_dead_ = true;
    gc_cv_.NotifyAll();
    gc_done_cv_.NotifyAll();
  }
  return st;
}

Status SpatialIndex::RollbackGroupLocked(const Status& cause) {
  // Invalidate the rolled-back epochs *before* reloading: once the
  // reload's quiesce barrier drops, a pinned reader must not be able to
  // open a snapshot at an epoch whose published state was just reloaded
  // away — MetaAt answers Aborted for the range from here on.
  if (snapshots_enabled()) {
    uint64_t lo, hi;
    {
      MutexLock gl(gc_mu_);
      lo = gc_durable_;
      hi = gc_published_;
    }
    epoch_mgr_->InvalidateRange(lo, hi, cause);
  }
  Pager* pager = pool_->pager();
  Status undo = pager->in_batch() ? pager->AbortBatch() : Status::OK();
  if (undo.ok()) {
    master_page_ = gc_master_;
    undo = ReloadLocked();
  }
  if (undo.ok()) undo = pager->BeginBatch();  // re-arm for the next group

  // The reload changed reader-visible state; publish a fresh epoch so
  // epoch-bracketed readers observe the transition. The rolled-back
  // epochs (last durable, last published] fail their waiters with the
  // cause; the new epoch *is* the durable state re-published.
  PublishWrite();
  {
    MutexLock gl(gc_mu_);
    if (gc_published_ > gc_durable_) {
      gc_failed_.push_back({gc_durable_, gc_published_, cause});
    }
    gc_published_ = gc_durable_ = write_epoch();
    if (!undo.ok()) gc_dead_ = true;
    gc_cv_.NotifyAll();
    gc_done_cv_.NotifyAll();
  }
  if (!undo.ok()) {
    // Disk and memory may disagree; the armed journal (if the abort is
    // what failed) still recovers the file on the next open.
    gc_active_.store(false, std::memory_order_release);
    return Status::Corruption("group rollback failed (" + cause.ToString() +
                              "): " + undo.ToString());
  }
  return cause;
}

SpatialIndex::~SpatialIndex() {
  if (gc_thread_.joinable() ||
      gc_active_.load(std::memory_order_relaxed)) {
    (void)StopGroupCommit();
  }
}

}  // namespace zdb
