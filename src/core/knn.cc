// Copyright (c) zdb authors. Licensed under the MIT license.
//
// k-nearest-neighbor search on the redundant z-index: expanding-window
// search. Orenstein's framework has no native priority-queue traversal
// (the index is a one-dimensional B+-tree), so proximity queries are
// answered by region queries of growing radius — the radius doubles
// until the k-th hit's exact distance is provably covered by the
// searched window. Each round reuses the ordinary filter-and-refine
// window machinery; exact per-object distances come from the object and
// polygon stores.

#include <algorithm>
#include <cmath>

#include "core/spatial_index.h"

namespace zdb {

namespace {

void SortByDistance(std::vector<std::pair<ObjectId, double>>* best) {
  std::sort(best->begin(), best->end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second < b.second;
              return a.first < b.first;
            });
}

}  // namespace

Result<std::vector<std::pair<ObjectId, double>>>
SpatialIndex::NearestNeighbors(const Point& p, size_t k, QueryStats* stats,
                               uint32_t* rounds) {
  if (snapshots_enabled()) {
    // Pinned path: all expanding rounds run at one pinned epoch, which
    // gives the same single-state guarantee the latch provides below —
    // without stalling writers across the whole expansion. Re-pin and
    // retry if a group rollback invalidates the pinned epoch.
    for (int attempt = 0;; ++attempt) {
      const EpochPin pin = PinEpoch();
      auto r = NearestNeighborsAt(pin, p, k, stats, rounds);
      if (r.ok() || !r.status().IsAborted() || attempt >= 2) return r;
    }
  }
  // One reader section for ALL expanding rounds: a writer can never
  // interleave between rounds, so the returned neighbor set reflects a
  // single index state.
  SharedSection lock(this);
  return NearestNeighborsLocked(p, k, stats, rounds);
}

Result<std::vector<std::pair<ObjectId, double>>>
SpatialIndex::NearestNeighborsLocked(const Point& p, size_t k,
                                     QueryStats* stats, uint32_t* rounds) {
  // Pinned reads must size the search off the pinned object count, not
  // the live counter a concurrent writer is mutating.
  const uint64_t live_objects = EffectiveLiveObjects();
  std::vector<std::pair<ObjectId, double>> best;
  if (k == 0 || live_objects == 0) {
    if (rounds != nullptr) *rounds = 0;
    return best;
  }

  const Rect world = options_.world;

  if (k >= live_objects) {
    // Termination guard: the expanding-window loop exits on a proven k-th
    // hit, which can never exist when k meets or exceeds the live object
    // count. One whole-world sweep returns every live object directly.
    QueryStats qs;
    std::vector<ObjectId> hits;
    ZDB_ASSIGN_OR_RETURN(hits, WindowQueryLocked(world, &qs));
    if (stats != nullptr) stats->Add(qs);
    best.reserve(hits.size());
    for (ObjectId oid : hits) {
      double d;
      ZDB_ASSIGN_OR_RETURN(d, DistanceToLocked(oid, p));
      best.emplace_back(oid, d);
    }
    SortByDistance(&best);
    if (best.size() > k) best.resize(k);
    if (rounds != nullptr) *rounds = 1;
    return best;
  }
  const double world_span =
      std::max(world.xhi - world.xlo, world.yhi - world.ylo);
  // First radius: roughly the expected k-neighborhood under uniformity.
  double radius =
      world_span *
      std::sqrt(static_cast<double>(k) /
                std::max<uint64_t>(1, live_objects)) /
      2.0;
  radius = std::max(radius, world_span / 4096.0);

  uint32_t round = 0;
  for (;;) {
    ++round;
    Rect window = Rect::FromCenter(p.x, p.y, radius, radius);
    window = window.Intersection(world);
    if (!window.valid()) {
      // The search disk does not reach the world yet (query point far
      // outside the bounds): nothing can be found, keep expanding.
      radius *= 2.0;
      continue;
    }
    const bool covers_world = window == world;

    QueryStats qs;
    std::vector<ObjectId> hits;
    ZDB_ASSIGN_OR_RETURN(hits, WindowQueryLocked(window, &qs));
    if (stats != nullptr) stats->Add(qs);

    best.clear();
    best.reserve(hits.size());
    for (ObjectId oid : hits) {
      double d;
      ZDB_ASSIGN_OR_RETURN(d, DistanceToLocked(oid, p));
      best.emplace_back(oid, d);
    }
    SortByDistance(&best);
    if (best.size() > k) best.resize(k);

    // Done when the k-th distance is inside the guaranteed-searched
    // radius, or nothing more can be found.
    if ((best.size() == k && best.back().second <= radius) ||
        covers_world) {
      break;
    }
    radius *= 2.0;
  }
  if (rounds != nullptr) *rounds = round;
  return best;
}

}  // namespace zdb
