// Copyright (c) zdb authors. Licensed under the MIT license.

#include "core/object_store.h"

namespace zdb {

ObjectStore::ObjectStore(BufferPool* pool) : pool_(pool) {
  per_page_ = pool_->pager()->page_size() /
              static_cast<uint32_t>(ObjectRecord::kEncodedSize);
}

Result<ObjectId> ObjectStore::Insert(const Rect& mbr, uint32_t payload) {
  const ObjectId oid = next_oid_;
  const uint32_t page_idx = oid / per_page_;
  const uint32_t slot = oid % per_page_;

  PageRef ref;
  if (page_idx == pages_.size()) {
    ZDB_ASSIGN_OR_RETURN(ref, pool_->New());
    pages_.push_back(ref.id());
  } else {
    ZDB_ASSIGN_OR_RETURN(ref, pool_->Fetch(pages_[page_idx]));
  }

  ObjectRecord rec;
  rec.mbr = mbr;
  rec.payload = payload;
  rec.live = 1;
  rec.EncodeTo(ref.mutable_data() + slot * ObjectRecord::kEncodedSize);
  ++next_oid_;
  return oid;
}

Status ObjectStore::InsertAt(ObjectId oid, const Rect& mbr,
                             uint32_t payload) {
  const uint32_t page_idx = oid / per_page_;
  const uint32_t slot = oid % per_page_;
  if (page_idx >= pages_.size()) pages_.resize(page_idx + 1, kInvalidPageId);

  PageRef ref;
  if (pages_[page_idx] == kInvalidPageId) {
    ZDB_ASSIGN_OR_RETURN(ref, pool_->New());
    pages_[page_idx] = ref.id();
  } else {
    ZDB_ASSIGN_OR_RETURN(ref, pool_->Fetch(pages_[page_idx]));
  }

  ObjectRecord rec =
      ObjectRecord::DecodeFrom(ref.data() + slot * ObjectRecord::kEncodedSize);
  if (oid < next_oid_ && rec.live) {
    return Status::InvalidArgument("preassigned oid already live");
  }
  rec = ObjectRecord();
  rec.mbr = mbr;
  rec.payload = payload;
  rec.live = 1;
  rec.EncodeTo(ref.mutable_data() + slot * ObjectRecord::kEncodedSize);
  if (oid >= next_oid_) next_oid_ = oid + 1;
  return Status::OK();
}

Result<ObjectRecord> ObjectStore::Fetch(ObjectId oid) {
  // Under an installed snapshot view, resolve through the pinned meta:
  // the live directory/append cursor may already describe later epochs.
  // The page fetch below then goes through the version chains.
  const SnapshotView* v = SnapshotView::FindObjects(this);
  const uint32_t next_oid = v != nullptr ? v->meta->obj_next_oid : next_oid_;
  const std::vector<PageId>& pages =
      v != nullptr ? v->meta->obj_pages : pages_;
  if (oid >= next_oid) return Status::NotFound("oid out of range");
  const uint32_t page_idx = oid / per_page_;
  const uint32_t slot = oid % per_page_;
  if (pages[page_idx] == kInvalidPageId) {
    return Status::NotFound("oid in unallocated page");
  }
  PageRef ref;
  ZDB_ASSIGN_OR_RETURN(ref, pool_->Fetch(pages[page_idx]));
  return ObjectRecord::DecodeFrom(ref.data() +
                                  slot * ObjectRecord::kEncodedSize);
}

Status ObjectStore::Rewrite(ObjectId oid, const ObjectRecord& rec) {
  if (oid >= next_oid_) return Status::NotFound("oid out of range");
  const uint32_t page_idx = oid / per_page_;
  const uint32_t slot = oid % per_page_;
  if (pages_[page_idx] == kInvalidPageId) {
    return Status::NotFound("oid in unallocated page");
  }
  PageRef ref;
  ZDB_ASSIGN_OR_RETURN(ref, pool_->Fetch(pages_[page_idx]));
  rec.EncodeTo(ref.mutable_data() + slot * ObjectRecord::kEncodedSize);
  return Status::OK();
}

Status ObjectStore::Erase(ObjectId oid) {
  if (oid >= next_oid_) return Status::NotFound("oid out of range");
  const uint32_t page_idx = oid / per_page_;
  const uint32_t slot = oid % per_page_;
  if (pages_[page_idx] == kInvalidPageId) {
    return Status::NotFound("oid in unallocated page");
  }
  PageRef ref;
  ZDB_ASSIGN_OR_RETURN(ref, pool_->Fetch(pages_[page_idx]));
  ObjectRecord rec = ObjectRecord::DecodeFrom(
      ref.data() + slot * ObjectRecord::kEncodedSize);
  if (!rec.live) return Status::NotFound("object already erased");
  rec.live = 0;
  rec.EncodeTo(ref.mutable_data() + slot * ObjectRecord::kEncodedSize);
  return Status::OK();
}

}  // namespace zdb
