// Copyright (c) zdb authors. Licensed under the MIT license.
//
// CommitSink: the hook a replication log sink implements to observe the
// committed write stream of a zdb::DB. The DB calls OnCommit exactly
// once per successfully published batch, in strictly increasing epoch
// order, with the batch *resolved* — every insert carries the oid the
// engine (or shard router) actually assigned, so replaying the batch on
// another process with preassigned oids reproduces the leader's object
// ids byte-for-byte.
//
// Contract:
//   * OnCommit runs on the committing caller's thread, under the DB's
//     replication mutex — it must not call back into the DB, and it
//     should be cheap (copy/enqueue, not serialize-and-send; the log
//     shipper does its encoding on a dedicated thread).
//   * `epoch` is the DB's publish epoch observed immediately after the
//     batch published (the shard router's batch counter on a sharded
//     DB). Epochs are strictly increasing across OnCommit calls but may
//     have holes: the engine also bumps its epoch on group rollbacks,
//     which produce no record.
//   * Durability is NOT implied: the batch is reader-visible but may
//     still roll back if the process crashes before its group fsync.
//     A follower replica therefore tracks the leader's *published*
//     stream; see DESIGN.md "Replication & log shipping" for why that
//     is the right trade for bounded-staleness reads.

#ifndef ZDB_CORE_COMMIT_SINK_H_
#define ZDB_CORE_COMMIT_SINK_H_

#include <cstdint>

#include "core/spatial_index.h"

namespace zdb {

class CommitSink {
 public:
  virtual ~CommitSink() = default;

  /// One committed batch. `resolved` ops: inserts carry the assigned oid
  /// in WriteOp::preassigned; erases are as submitted.
  virtual void OnCommit(uint64_t epoch, const WriteBatch& resolved) = 0;
};

}  // namespace zdb

#endif  // ZDB_CORE_COMMIT_SINK_H_
