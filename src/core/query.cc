// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Filter stage of filter-and-refine. A query region is decomposed into
// query elements; candidates are (a) entries stored under elements whose
// zmin falls inside a query element's z-interval — one contiguous B+-tree
// scan per query element — and (b) entries stored under strict enclosing
// elements of the query elements, found by ancestor probes. Candidates
// are de-duplicated by object id; the refinement step (spatial_index.cc)
// fetches exact geometry from the object store.

#include <algorithm>
#include <functional>
#include <unordered_set>

#include "btree/cursor.h"
#include "core/spatial_index.h"
#include "zorder/bigmin.h"
#include "zorder/zkey.h"

namespace zdb {

namespace {

/// True if z lies inside some element's z-interval (elements sorted,
/// disjoint).
bool CoveredByScan(const std::vector<ZElement>& elements, uint64_t z) {
  // Last element with zmin <= z.
  auto it = std::upper_bound(
      elements.begin(), elements.end(), z,
      [](uint64_t v, const ZElement& e) { return v < e.zmin; });
  if (it == elements.begin()) return false;
  --it;
  return z <= it->zmax();
}

/// Collects the per-entry candidate handling shared by probes and scans.
class CandidateSink {
 public:
  CandidateSink(bool leaf_refine,
                const std::function<bool(const Rect&)>& pred,
                QueryStats* stats)
      : leaf_refine_(leaf_refine), pred_(pred), stats_(stats) {}

  void Accept(ObjectId oid, const Slice& value) {
    if (stats_ != nullptr) ++stats_->candidates;
    if (!seen_.insert(oid).second) return;
    if (leaf_refine_) {
      const Rect mbr = DecodeRect(value.data());
      if (!pred_(mbr)) {
        if (stats_ != nullptr) ++stats_->false_hits;
        return;
      }
    }
    out_.push_back(oid);
  }

  std::vector<ObjectId> Finish() {
    if (stats_ != nullptr) stats_->unique_candidates = seen_.size();
    // Sorted by oid: deterministic output and clustered object fetches.
    std::sort(out_.begin(), out_.end());
    return std::move(out_);
  }

 private:
  bool leaf_refine_;
  const std::function<bool(const Rect&)>& pred_;
  QueryStats* stats_;
  std::unordered_set<ObjectId> seen_;
  std::vector<ObjectId> out_;
};

}  // namespace

WindowPlan SpatialIndex::BuildWindowPlan(const GridRect& qgrid) const {
  WindowPlan plan;
  plan.qgrid = qgrid;
  const uint32_t gbits = options_.grid_bits;

  // 1. Query-side decomposition.
  if (options_.use_bigmin) {
    plan.scans.push_back(ZElement::Enclosing(qgrid, gbits));
  } else {
    plan.scans = Decompose(qgrid, gbits, options_.query).elements;
  }

  // 2. Ancestor probes: strict enclosing elements of the query elements
  // that the scans will not pass over. Only levels that actually occur in
  // the index are probed (the pinned snapshot's mask under a snapshot
  // read — the live mask may already include a concurrent writer's new
  // levels).
  const uint64_t level_mask = EffectiveLevelMask();
  for (const ZElement& e : plan.scans) {
    ZElement anc = e;
    while (anc.level > 0) {
      anc = anc.Parent();
      if ((level_mask & (1ULL << anc.level)) == 0) continue;
      if (CoveredByScan(plan.scans, anc.zmin)) continue;
      plan.probes.push_back(anc);
    }
  }
  std::sort(plan.probes.begin(), plan.probes.end());
  plan.probes.erase(std::unique(plan.probes.begin(), plan.probes.end()),
                    plan.probes.end());
  return plan;
}

Result<std::vector<ObjectId>> SpatialIndex::ExecutePlanSlice(
    const WindowPlan& plan, size_t begin, size_t end,
    const std::function<bool(const Rect&)>* leaf_pred, QueryStats* stats) {
  const uint32_t gbits = options_.grid_bits;
  const bool leaf_refine =
      options_.store_mbr_in_leaf && leaf_pred != nullptr;
  static const std::function<bool(const Rect&)> kTrue =
      [](const Rect&) { return true; };
  CandidateSink sink(leaf_refine, leaf_refine ? *leaf_pred : kTrue, stats);

  end = std::min(end, plan.work_items());
  for (size_t item = begin; item < end; ++item) {
    if (item < plan.probes.size()) {
      // Ancestor probe.
      const ZElement& anc = plan.probes[item];
      if (stats != nullptr) ++stats->ancestor_probes;
      const std::string start = ZProbeStartKey(anc);
      const std::string stop = ZProbeEndKey(anc);
      Cursor cur(pool_, pool_->pager()->page_size());
      ZDB_ASSIGN_OR_RETURN(cur, btree_->Seek(Slice(start)));
      while (cur.Valid() && cur.key().compare(Slice(stop)) <= 0) {
        ZElement elem;
        ObjectId oid;
        if (!DecodeZKey(cur.key(), gbits, &elem, &oid)) {
          return Status::Corruption("malformed index key");
        }
        if (stats != nullptr) ++stats->index_entries;
        sink.Accept(oid, cur.value());
        ZDB_RETURN_IF_ERROR(cur.Next());
      }
      continue;
    }

    // Interval scan over one query element.
    const ZElement& qe = plan.scans[item - plan.probes.size()];
    if (stats != nullptr) ++stats->query_elements;
    const std::string stop = ZScanEndKey(qe);
    Cursor cur(pool_, pool_->pager()->page_size());
    ZDB_ASSIGN_OR_RETURN(cur, btree_->Seek(Slice(ZScanStartKey(qe))));
    while (cur.Valid() && cur.key().compare(Slice(stop)) <= 0) {
      ZElement elem;
      ObjectId oid;
      if (!DecodeZKey(cur.key(), gbits, &elem, &oid)) {
        return Status::Corruption("malformed index key");
      }
      if (stats != nullptr) ++stats->index_entries;

      if (options_.use_bigmin &&
          !elem.ToGridRect().Intersects(plan.qgrid)) {
        // Dead space: jump to the first z-code inside the query after
        // this element, then rewind to the lowest enclosing element that
        // the scan has not passed yet (elements containing the jump-in
        // point can start before it).
        auto bm = BigMin(elem.zmax(), plan.qgrid, gbits);
        if (!bm.has_value()) break;
        uint64_t seek_zmin = *bm;
        const uint32_t zbits = 2 * gbits;
        for (uint32_t lvl = 0; lvl <= zbits; ++lvl) {
          const uint64_t width =
              (lvl == 0) ? 0 : ~0ULL << (zbits - lvl);
          const uint64_t anc_zmin = (lvl == 0) ? 0 : (*bm & width);
          if (anc_zmin > elem.zmin) {
            seek_zmin = anc_zmin;
            break;
          }
        }
        if (stats != nullptr) ++stats->bigmin_jumps;
        ZElement target(seek_zmin, 0, static_cast<uint8_t>(gbits));
        ZDB_ASSIGN_OR_RETURN(cur, btree_->Seek(Slice(ZScanStartKey(target))));
        continue;
      }
      sink.Accept(oid, cur.value());
      ZDB_RETURN_IF_ERROR(cur.Next());
    }
  }

  return sink.Finish();
}

Result<std::vector<ObjectId>> SpatialIndex::CollectCandidates(
    const GridRect& qgrid, QueryStats* stats) {
  return CollectCandidatesFiltered(qgrid, nullptr, stats);
}

Result<std::vector<ObjectId>> SpatialIndex::CollectCandidatesFiltered(
    const GridRect& qgrid, const std::function<bool(const Rect&)>* leaf_pred,
    QueryStats* stats) {
  const WindowPlan plan = BuildWindowPlan(qgrid);
  return ExecutePlanSlice(plan, 0, plan.work_items(), leaf_pred, stats);
}

Result<WindowPlan> SpatialIndex::PlanWindow(const Rect& window) {
  if (!window.valid()) {
    return Status::InvalidArgument("invalid query window");
  }
  WindowPlan plan = BuildWindowPlan(mapper_.ToGrid(window));
  plan.window = window;
  return plan;
}

Result<std::vector<ObjectId>> SpatialIndex::ExecuteWindowPlanSlice(
    const WindowPlan& plan, size_t begin, size_t end, QueryStats* stats) {
  const std::function<bool(const Rect&)> leaf_pred = [&](const Rect& mbr) {
    return mbr.Intersects(plan.window);
  };
  return ExecutePlanSlice(plan, begin, end, &leaf_pred, stats);
}

Result<std::vector<ObjectId>> SpatialIndex::CollectPointCandidates(
    GridCoord gx, GridCoord gy, QueryStats* stats) {
  return CollectPointCandidatesFiltered(gx, gy, nullptr, stats);
}

Result<std::vector<uint64_t>> SpatialIndex::LevelHistogram() {
  SharedSection lock(this);
  std::vector<uint64_t> histogram(2 * options_.grid_bits + 1, 0);
  Cursor cur(pool_, pool_->pager()->page_size());
  ZDB_ASSIGN_OR_RETURN(cur, btree_->SeekFirst());
  while (cur.Valid()) {
    ZElement elem;
    ObjectId oid;
    if (!DecodeZKey(cur.key(), options_.grid_bits, &elem, &oid)) {
      return Status::Corruption("malformed index key");
    }
    ++histogram[elem.level];
    ZDB_RETURN_IF_ERROR(cur.Next());
  }
  return histogram;
}

Result<std::vector<ObjectId>> SpatialIndex::CollectPointCandidatesFiltered(
    GridCoord gx, GridCoord gy,
    const std::function<bool(const Rect&)>* leaf_pred, QueryStats* stats) {
  const uint32_t gbits = options_.grid_bits;
  const bool leaf_refine =
      options_.store_mbr_in_leaf && leaf_pred != nullptr;
  static const std::function<bool(const Rect&)> kTrue =
      [](const Rect&) { return true; };
  CandidateSink sink(leaf_refine, leaf_refine ? *leaf_pred : kTrue, stats);

  // Candidates are exactly the entries stored under enclosing elements of
  // the point's cell: probe every level present in the index.
  const ZElement cell = ZElement::Cell(gx, gy, gbits);
  const uint32_t zbits = 2 * gbits;
  const uint64_t level_mask = EffectiveLevelMask();
  if (stats != nullptr) stats->query_elements += 1;
  for (uint32_t lvl = 0; lvl <= zbits; ++lvl) {
    if ((level_mask & (1ULL << lvl)) == 0) continue;
    const uint64_t zmin =
        (lvl == 0) ? 0 : (cell.zmin & (~0ULL << (zbits - lvl)));
    const ZElement anc(zmin, static_cast<uint8_t>(lvl),
                       static_cast<uint8_t>(gbits));
    if (stats != nullptr) ++stats->ancestor_probes;
    const std::string start = ZProbeStartKey(anc);
    const std::string end = ZProbeEndKey(anc);
    Cursor cur(pool_, pool_->pager()->page_size());
    ZDB_ASSIGN_OR_RETURN(cur, btree_->Seek(Slice(start)));
    while (cur.Valid() && cur.key().compare(Slice(end)) <= 0) {
      ZElement elem;
      ObjectId oid;
      if (!DecodeZKey(cur.key(), gbits, &elem, &oid)) {
        return Status::Corruption("malformed index key");
      }
      if (stats != nullptr) ++stats->index_entries;
      sink.Accept(oid, cur.value());
      ZDB_RETURN_IF_ERROR(cur.Next());
    }
  }
  return sink.Finish();
}

}  // namespace zdb
