// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Fixed-record heap file mapping ObjectId -> ObjectRecord through the
// buffer pool (every fetch that misses the pool is a page access). Object
// ids are dense and assigned in insertion order, so consecutively
// inserted objects cluster on pages — as a sequentially loaded 1989 data
// file would.

#ifndef ZDB_CORE_OBJECT_STORE_H_
#define ZDB_CORE_OBJECT_STORE_H_

#include <vector>

#include "common/result.h"
#include "core/object.h"
#include "storage/buffer_pool.h"

namespace zdb {

class ObjectStore {
 public:
  explicit ObjectStore(BufferPool* pool);

  /// Appends a live record; returns its id.
  Result<ObjectId> Insert(const Rect& mbr, uint32_t payload = 0);

  /// Writes a live record under a caller-chosen id (sharded engines
  /// replicate one global oid into several stores). The page directory
  /// grows with kInvalidPageId holes for any skipped pages; freshly
  /// allocated pages come zeroed from the pool, so skipped slots inside
  /// an allocated page decode as dead records. Fails if `oid` already
  /// names a live record.
  Status InsertAt(ObjectId oid, const Rect& mbr, uint32_t payload = 0);

  /// Fetches a record (including dead ones; check `live`).
  Result<ObjectRecord> Fetch(ObjectId oid);

  /// Overwrites a record in place (kind/payload fix-ups).
  Status Rewrite(ObjectId oid, const ObjectRecord& rec);

  /// Marks a record dead. The slot is not recycled (the 1989 comparisons
  /// consider growing files; liveness suffices for correctness).
  Status Erase(ObjectId oid);

  /// One past the highest id ever written (including dead records and,
  /// in sharded stores, ids this store never saw — those read as holes).
  uint32_t size() const { return next_oid_; }

  /// Heap pages allocated.
  uint32_t page_count() const {
    return static_cast<uint32_t>(pages_.size());
  }

  uint32_t records_per_page() const { return per_page_; }

  /// Page directory and append cursor (for persistence).
  const std::vector<PageId>& pages() const { return pages_; }
  void Restore(std::vector<PageId> pages, uint32_t next_oid) {
    pages_ = std::move(pages);
    next_oid_ = next_oid;
  }

 private:
  BufferPool* pool_;
  uint32_t per_page_;
  uint32_t next_oid_ = 0;
  std::vector<PageId> pages_;  ///< page directory, oid / per_page_ -> page
};

}  // namespace zdb

#endif  // ZDB_CORE_OBJECT_STORE_H_
