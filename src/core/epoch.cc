// Copyright (c) zdb authors. Licensed under the MIT license.

#include "core/epoch.h"

#include <algorithm>
#include <chrono>
#include <string>

namespace zdb {

EpochPin& EpochPin::operator=(EpochPin&& other) noexcept {
  if (this != &other) {
    if (mgr_ != nullptr) Release();
    mgr_ = other.mgr_;
    epoch_ = other.epoch_;
    owner_ = other.owner_;
    other.mgr_ = nullptr;
  }
  return *this;
}

EpochPin::~EpochPin() {
  if (mgr_ != nullptr) Release();
}

void EpochPin::Release() {
  if (mgr_ == nullptr) {
    internal::LockAssertFail("EpochPin released twice (or never pinned)");
  }
  if (owner_ != std::this_thread::get_id()) {
    internal::LockAssertFail(
        "EpochPin released on a thread other than the pinning one");
  }
  mgr_->Unpin(epoch_);
  mgr_ = nullptr;
}

EpochManager::EpochManager(const std::atomic<uint64_t>* epoch,
                           PageVersions* versions)
    : epoch_(epoch), versions_(versions) {}

EpochManager::~EpochManager() {
  StopGc();
  MutexLock lock(pin_mu_);
  if (!pins_.empty()) {
    internal::LockAssertFail("EpochPin outlives its EpochManager");
  }
}

EpochPin EpochManager::Pin() {
  MutexLock lock(pin_mu_);
  // Reading the epoch under pin_mu_ orders this pin against the GC
  // cycle's floor computation: once the GC (under the same mutex) has
  // read epoch E, every later pin sees an epoch >= E and can never need
  // the entries the GC reclaims below it. The acquire load pairs with
  // the writer's release publish, so the pinned state is fully visible.
  const uint64_t e = epoch_->load(std::memory_order_acquire);
  pins_.insert(e);
  if (e < min_pinned_) min_pinned_ = e;
  ++pins_taken_;
  return EpochPin(this, e);
}

void EpochManager::Unpin(uint64_t epoch) {
  bool advanced = false;
  {
    MutexLock lock(pin_mu_);
    auto it = pins_.find(epoch);
    if (it == pins_.end()) {
      internal::LockAssertFail("EpochPin release for an unknown epoch");
    }
    pins_.erase(it);
    const uint64_t new_min = pins_.empty() ? UINT64_MAX : *pins_.begin();
    advanced = new_min != min_pinned_;
    min_pinned_ = new_min;
  }
  // Lock-free nudge; the GC loop's periodic wakeup is the backstop for
  // a notification that races its wait.
  if (advanced) gc_cv_.NotifyOne();
}

void EpochManager::RecordMeta(uint64_t epoch, SnapshotMeta meta) {
  MutexLock lock(gc_mu_);
  metas_[epoch] = std::make_shared<const SnapshotMeta>(std::move(meta));
}

void EpochManager::InvalidateRange(uint64_t lo, uint64_t hi, Status cause) {
  if (hi <= lo) return;
  MutexLock lock(gc_mu_);
  // The rolled-back metas must not serve new pins (the live state they
  // described was reloaded away).
  metas_.erase(metas_.upper_bound(lo), metas_.upper_bound(hi));
  aborted_.push_back(AbortedRange{lo, hi, std::move(cause)});
}

Result<std::shared_ptr<const SnapshotMeta>> EpochManager::MetaAt(
    uint64_t epoch) const {
  MutexLock lock(gc_mu_);
  for (const AbortedRange& r : aborted_) {
    if (epoch > r.lo && epoch <= r.hi) {
      return Status::Aborted("snapshot epoch " + std::to_string(epoch) +
                             " was rolled back: " + r.cause.ToString());
    }
  }
  auto it = metas_.find(epoch);
  if (it == metas_.end()) {
    return Status::Internal("no snapshot meta recorded for epoch " +
                            std::to_string(epoch));
  }
  return it->second;
}

void EpochManager::StartGc() {
  {
    MutexLock lock(gc_mu_);
    if (gc_running_) return;
    gc_stop_ = false;
    gc_running_ = true;
  }
  gc_thread_ = std::thread(&EpochManager::GcLoop, this);
}

void EpochManager::StopGc() {
  {
    MutexLock lock(gc_mu_);
    if (!gc_running_) return;
    gc_stop_ = true;
    gc_cv_.NotifyAll();
  }
  if (gc_thread_.joinable()) gc_thread_.join();
  MutexLock lock(gc_mu_);
  gc_running_ = false;
}

void EpochManager::RunGcCycle() {
  uint64_t floor;
  {
    MutexLock lock(pin_mu_);
    floor = std::min(min_pinned_, epoch_->load(std::memory_order_acquire));
  }
  // Entries with as_of < floor can only be resolved by pins below the
  // floor — none exist, and Pin() (see above) can never create one.
  versions_->ReclaimBefore(floor);
  MutexLock lock(gc_mu_);
  metas_.erase(metas_.begin(), metas_.lower_bound(floor));
  aborted_.erase(std::remove_if(aborted_.begin(), aborted_.end(),
                                [floor](const AbortedRange& r) {
                                  return r.hi < floor;
                                }),
                 aborted_.end());
  ++gc_cycles_;
}

void EpochManager::GcLoop() {
  for (;;) {
    {
      MutexLock lock(gc_mu_);
      if (gc_stop_) return;
      // Periodic wakeup: reclamation floor movement is signalled by
      // Unpin, but writers advancing the epoch with no pins around
      // would otherwise accumulate chains until the next unpin.
      (void)gc_cv_.WaitFor(gc_mu_, std::chrono::milliseconds(10));
      if (gc_stop_) return;
    }
    RunGcCycle();
  }
}

EpochStats EpochManager::stats() const {
  EpochStats st;
  {
    MutexLock lock(pin_mu_);
    st.pinned = pins_.size();
    st.min_pinned = pins_.empty() ? 0 : *pins_.begin();
    st.pins_taken = pins_taken_;
  }
  MutexLock lock(gc_mu_);
  st.gc_cycles = gc_cycles_;
  return st;
}

}  // namespace zdb
