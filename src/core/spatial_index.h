// Copyright (c) zdb authors. Licensed under the MIT license.
//
// SpatialIndex: the public API of the reproduction. A redundant z-order
// spatial index per Orenstein (SIGMOD 1989): objects are decomposed into
// z-elements (decompose/), the (element, oid) pairs are stored in a
// B+-tree (btree/), exact geometry lives in an object store, and queries
// run filter-and-refine over z-interval scans plus enclosing-element
// probes.
//
// Typical use:
//
//   auto pager = Pager::OpenInMemory(512);
//   BufferPool pool(pager.get(), 128);
//   SpatialIndexOptions opt;
//   opt.data = DecomposeOptions::SizeBound(8);
//   auto index = SpatialIndex::Create(&pool, opt).value();
//   ObjectId id = index->Insert(Rect{.2, .2, .3, .25}).value();
//   auto hits = index->WindowQuery(Rect{.1, .1, .4, .4}).value();
//
// Concurrency: all queries (WindowQuery/PointQuery/ContainmentQuery/
// EnclosureQuery/NearestNeighbors/SpatialJoin and the parallel plan
// hooks) are safe to run from any number of threads concurrently, as
// long as no thread is mutating the index (Insert/InsertPolygon/Erase/
// BulkLoad/Checkpoint). Use exec/executor.h to drive query batches over
// a worker pool.

#ifndef ZDB_CORE_SPATIAL_INDEX_H_
#define ZDB_CORE_SPATIAL_INDEX_H_

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "btree/btree.h"
#include "core/object_store.h"
#include "core/options.h"
#include "core/polygon_store.h"
#include "core/stats.h"
#include "geom/point.h"
#include "geom/polygon.h"
#include "zorder/zelement.h"

namespace zdb {

/// Filter-stage plan of one window query: the ancestor probes and
/// z-interval scans the filter will run. Work items are indexed
/// [0, probes.size()) for probes, then [probes.size(), work_items()) for
/// scans; any partition of that index range over threads executes the
/// same entry set (see QueryExecutor::ParallelWindowQuery).
struct WindowPlan {
  Rect window;                   ///< original world-space query window
  GridRect qgrid;                ///< window mapped onto the grid
  std::vector<ZElement> probes;  ///< strict enclosing-element probes
  std::vector<ZElement> scans;   ///< query elements (interval scans)

  size_t work_items() const { return probes.size() + scans.size(); }
};

class SpatialIndex {
 public:
  /// Creates an empty index whose pages come from `pool`.
  static Result<std::unique_ptr<SpatialIndex>> Create(
      BufferPool* pool, const SpatialIndexOptions& options);

  /// Re-attaches an index previously persisted with Checkpoint() in the
  /// same paged file. The stored options are restored verbatim.
  static Result<std::unique_ptr<SpatialIndex>> Open(BufferPool* pool,
                                                    PageId master_page);

  /// Persists the index state (options, B+-tree meta, store directories,
  /// counters) and returns the master page id to pass to Open(). The
  /// master page is allocated on the first call and reused afterwards.
  /// Call BufferPool::FlushAll() / Pager::Sync() afterwards for
  /// durability.
  Result<PageId> Checkpoint();

  // ------------------------------------------------------------- updates

  /// Inserts an object by MBR; returns its id. `payload` is an opaque
  /// application reference carried in the object record.
  Result<ObjectId> Insert(const Rect& mbr, uint32_t payload = 0);

  /// Inserts a simple polygon. The exact ring is persisted in the
  /// polygon store and the *polygon itself* (not its MBR) is decomposed
  /// into z-elements; queries refine against the exact geometry.
  /// Incompatible with store_mbr_in_leaf (the leaf MBR cannot refine a
  /// polygon).
  Result<ObjectId> InsertPolygon(const Polygon& poly);

  /// Removes an object: deletes all its index entries and tombstones the
  /// object record.
  Status Erase(ObjectId oid);

  /// Bulk loads rectangles into an empty index: objects are appended to
  /// the object store, all (element, oid) entries are generated and
  /// sorted, and the B+-tree is built bottom-up at `fill` leaf
  /// occupancy. Far cheaper than n inserts and yields a denser tree.
  Status BulkLoad(const std::vector<Rect>& data, double fill = 0.9);

  // ------------------------------------------------------------- queries

  /// All live objects whose MBR intersects `window`.
  Result<std::vector<ObjectId>> WindowQuery(const Rect& window,
                                            QueryStats* stats = nullptr);

  /// All live objects whose MBR contains `p`.
  Result<std::vector<ObjectId>> PointQuery(const Point& p,
                                           QueryStats* stats = nullptr);

  /// All live objects whose MBR is fully inside `window` ("containment").
  Result<std::vector<ObjectId>> ContainmentQuery(const Rect& window,
                                                 QueryStats* stats = nullptr);

  /// All live objects whose MBR encloses `window` ("enclosure").
  Result<std::vector<ObjectId>> EnclosureQuery(const Rect& window,
                                               QueryStats* stats = nullptr);

  /// The k nearest objects to `p` by exact geometry distance (0 when the
  /// point is inside the object), closest first. Implemented as an
  /// expanding-window search: the radius doubles until the k-th hit is
  /// provably inside the searched window. `rounds` (optional) reports
  /// the number of expansions.
  Result<std::vector<std::pair<ObjectId, double>>> NearestNeighbors(
      const Point& p, size_t k, QueryStats* stats = nullptr,
      uint32_t* rounds = nullptr);

  // ------------------------------------------------- parallel query hooks
  //
  // The filter stage of WindowQuery, exposed in three steps so a parallel
  // executor can split one query's z-interval set across workers: plan
  // once, execute disjoint work-item slices concurrently (each slice
  // deduplicates locally; the caller merges and deduplicates globally),
  // then refine candidate chunks concurrently. All three are safe to call
  // from multiple threads as long as the index is not being mutated.

  /// Builds the probe/scan plan for a window query.
  Result<WindowPlan> PlanWindow(const Rect& window);

  /// Executes plan work items [begin, end) and returns the candidate
  /// object ids (locally deduplicated, sorted). In store_mbr_in_leaf mode
  /// the replicated MBRs are tested against the plan's window.
  Result<std::vector<ObjectId>> ExecuteWindowPlanSlice(const WindowPlan& plan,
                                                       size_t begin,
                                                       size_t end,
                                                       QueryStats* stats);

  /// Refines window-query candidates against exact geometry (a no-op
  /// pass-through in store_mbr_in_leaf mode, where the filter already
  /// tested the replicated MBR). Preserves candidate order.
  Result<std::vector<ObjectId>> RefineWindowCandidates(
      const Rect& window, std::vector<ObjectId> candidates,
      QueryStats* stats);

  // ------------------------------------------------------------ plumbing

  const SpatialIndexOptions& options() const { return options_; }
  const SpaceMapper& mapper() const { return mapper_; }
  BTree* btree() { return btree_.get(); }
  ObjectStore* objects() { return store_.get(); }
  PolygonStore* polygons() { return polys_.get(); }
  BufferPool* pool() { return pool_; }

  /// Fetches an object's exact geometry distance to a point: 0 inside,
  /// Euclidean otherwise. Polygon objects use their exact ring.
  Result<double> DistanceTo(ObjectId oid, const Point& p);

  const IndexBuildStats& build_stats() const { return build_stats_; }

  /// Bitmask of element levels present in the index (bit L set if some
  /// entry was inserted at level L). Conservative: never cleared.
  uint64_t level_mask() const { return level_mask_; }

  /// Exact per-level entry counts (index 0 = whole-space element, up to
  /// 2 * grid_bits). Scans the whole index; diagnostics/analysis use.
  Result<std::vector<uint64_t>> LevelHistogram();

  /// Live objects (inserted minus erased).
  uint64_t object_count() const { return live_objects_; }

 private:
  friend Result<std::vector<std::pair<ObjectId, ObjectId>>> SpatialJoin(
      SpatialIndex* a, SpatialIndex* b, JoinStats* stats);

  SpatialIndex(BufferPool* pool, const SpatialIndexOptions& options)
      : pool_(pool),
        options_(options),
        mapper_(options.world, options.grid_bits) {}

  /// Builds the probe/scan work list for a grid query rect (the shared
  /// planning step of the filter stage). Defined in query.cc.
  WindowPlan BuildWindowPlan(const GridRect& qgrid) const;

  /// Executes plan work items [begin, end) through a fresh CandidateSink,
  /// optionally leaf-filtering with `leaf_pred`. Defined in query.cc.
  Result<std::vector<ObjectId>> ExecutePlanSlice(
      const WindowPlan& plan, size_t begin, size_t end,
      const std::function<bool(const Rect&)>* leaf_pred, QueryStats* stats);

  /// Shared filter stage: every unique candidate whose element
  /// approximation touches the query grid rect. Defined in query.cc.
  Result<std::vector<ObjectId>> CollectCandidates(const GridRect& qgrid,
                                                  QueryStats* stats);

  /// As above; in store-MBR-in-leaf mode additionally applies `leaf_pred`
  /// to the MBR replicated in the leaf, making refinement I/O-free.
  Result<std::vector<ObjectId>> CollectCandidatesFiltered(
      const GridRect& qgrid,
      const std::function<bool(const Rect&)>* leaf_pred, QueryStats* stats);

  /// Candidates for a point (ancestor probes only). Defined in query.cc.
  Result<std::vector<ObjectId>> CollectPointCandidates(GridCoord gx,
                                                       GridCoord gy,
                                                       QueryStats* stats);

  Result<std::vector<ObjectId>> CollectPointCandidatesFiltered(
      GridCoord gx, GridCoord gy,
      const std::function<bool(const Rect&)>* leaf_pred, QueryStats* stats);

  /// Refinement driver shared by the public queries. The predicate sees
  /// the full object record and may fetch exact geometry.
  template <typename Predicate>
  Result<std::vector<ObjectId>> Refine(std::vector<ObjectId> candidates,
                                       Predicate pred, QueryStats* stats);

  /// Exact-geometry test of one record against a window (intersection).
  Result<bool> RecordIntersects(const ObjectRecord& rec, const Rect& window);

  BufferPool* pool_;
  SpatialIndexOptions options_;
  SpaceMapper mapper_;
  std::unique_ptr<BTree> btree_;
  std::unique_ptr<ObjectStore> store_;
  std::unique_ptr<PolygonStore> polys_;
  IndexBuildStats build_stats_;
  uint64_t level_mask_ = 0;
  uint64_t live_objects_ = 0;

  // Persistence bookkeeping (see core/persist.cc).
  PageId master_page_ = kInvalidPageId;
  PageId obj_dir_chain_ = kInvalidPageId;
  PageId poly_dir_chain_ = kInvalidPageId;
};

/// Spatial join: all pairs (a-object, b-object) with intersecting MBRs,
/// computed by a synchronized z-order merge of the two indexes' entry
/// streams with enclosure stacks (Orenstein's merge algorithm).
Result<std::vector<std::pair<ObjectId, ObjectId>>> SpatialJoin(
    SpatialIndex* a, SpatialIndex* b, JoinStats* stats = nullptr);

}  // namespace zdb

#endif  // ZDB_CORE_SPATIAL_INDEX_H_
