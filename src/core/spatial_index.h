// Copyright (c) zdb authors. Licensed under the MIT license.
//
// SpatialIndex: the public API of the reproduction. A redundant z-order
// spatial index per Orenstein (SIGMOD 1989): objects are decomposed into
// z-elements (decompose/), the (element, oid) pairs are stored in a
// B+-tree (btree/), exact geometry lives in an object store, and queries
// run filter-and-refine over z-interval scans plus enclosing-element
// probes.
//
// Typical use:
//
//   auto pager = Pager::OpenInMemory(512);
//   BufferPool pool(pager.get(), 128);
//   SpatialIndexOptions opt;
//   opt.data = DecomposeOptions::SizeBound(8);
//   auto index = SpatialIndex::Create(&pool, opt).value();
//   ObjectId id = index->Insert(Rect{.2, .2, .3, .25}).value();
//   auto hits = index->WindowQuery(Rect{.1, .1, .4, .4}).value();
//
// Concurrency: the index is safe for any mix of concurrent readers and
// writers. Queries (WindowQuery/PointQuery/ContainmentQuery/
// EnclosureQuery/NearestNeighbors/SpatialJoin) take an internal shared
// latch; mutations (Insert/InsertPolygon/Erase/BulkLoad/ApplyBatch/
// Checkpoint) take it exclusively, so every mutation — in particular the
// multi-key publication of one object's whole z-element set — becomes
// visible to readers all-or-nothing. ApplyBatch() extends that guarantee
// to a whole batch of mutations (and makes the batch crash-atomic when
// the pager has a rollback journal). The parallel plan hooks
// (PlanWindow/ExecuteWindowPlanSlice/RefineWindowCandidates) do NOT
// latch internally: a caller splitting one query across threads must
// hold one ReaderSection() across all hook calls (exec/executor.h does).
// Use exec/executor.h to drive query and mixed read/write batches over a
// worker pool.
//
// Snapshot reads: after EnableSnapshots(), the public queries stop
// taking the shared latch. Each query pins the current write epoch
// (EpochPin, core/epoch.h) and traverses copy-on-write before-image
// version chains (storage/snapshot.h) at that epoch, so a long scan
// never blocks a writer and a sustained write stream never blocks
// readers. The *At query variants run several queries against one
// explicitly pinned epoch — repeated reads at one pin are byte-stable.
// A background GC thread reclaims superseded versions once the lowest
// pinned epoch passes them. See DESIGN.md "Snapshot reads & epoch GC".

#ifndef ZDB_CORE_SPATIAL_INDEX_H_
#define ZDB_CORE_SPATIAL_INDEX_H_

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "btree/btree.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/epoch.h"
#include "core/object_store.h"
#include "core/options.h"
#include "core/polygon_store.h"
#include "core/stats.h"
#include "geom/point.h"
#include "geom/polygon.h"
#include "zorder/zelement.h"

namespace zdb {

/// Filter-stage plan of one window query: the ancestor probes and
/// z-interval scans the filter will run. Work items are indexed
/// [0, probes.size()) for probes, then [probes.size(), work_items()) for
/// scans; any partition of that index range over threads executes the
/// same entry set (see QueryExecutor::ParallelWindowQuery).
struct WindowPlan {
  Rect window;                   ///< original world-space query window
  GridRect qgrid;                ///< window mapped onto the grid
  std::vector<ZElement> probes;  ///< strict enclosing-element probes
  std::vector<ZElement> scans;   ///< query elements (interval scans)

  size_t work_items() const { return probes.size() + scans.size(); }
};

/// Sentinel for WriteOp::preassigned: let the object store assign the
/// next dense oid (the default, and the only mode single-engine callers
/// use).
inline constexpr ObjectId kNoPreassignedOid = 0xFFFFFFFFu;

/// One mutation of a write batch (see WriteBatch / ApplyBatch).
struct WriteOp {
  enum class Kind : uint8_t { kInsert, kErase };
  Kind kind = Kind::kInsert;
  Rect mbr;              ///< kInsert: the object's MBR
  uint32_t payload = 0;  ///< kInsert: opaque application reference
  ObjectId oid = 0;      ///< kErase: the object to remove
  /// kInsert: store the object under this caller-chosen oid instead of
  /// the store's append cursor. Used by the shard router, which assigns
  /// global oids and replicates one object into every overlapping
  /// shard engine under the same id.
  ObjectId preassigned = kNoPreassignedOid;
};

/// When a batch is acknowledged to the caller (see
/// SpatialIndex::ApplyBatch / zdb::DB::Apply / net::Client::Apply).
/// kDurable waits for the group-commit pipeline to fsync the batch;
/// kPublished returns as soon as readers can see it — the batch becomes
/// durable asynchronously, and a crash before that rolls it back as a
/// unit (never partially). Without group commit, kDurable is the classic
/// synchronous journaled ApplyBatch and kPublished is identical to it.
enum class Durability : uint8_t {
  kDurable = 0,
  kPublished = 1,
};

/// An ordered batch of inserts and erases applied atomically by
/// SpatialIndex::ApplyBatch(): concurrent readers observe either none or
/// all of its effects, and with a journaled pager a crash mid-batch rolls
/// the whole batch back on reopen.
struct WriteBatch {
  std::vector<WriteOp> ops;

  void Insert(const Rect& mbr, uint32_t payload = 0) {
    ops.push_back({WriteOp::Kind::kInsert, mbr, payload, 0});
  }
  /// Insert under a caller-chosen oid (see WriteOp::preassigned).
  void InsertWithOid(const Rect& mbr, ObjectId oid, uint32_t payload = 0) {
    ops.push_back({WriteOp::Kind::kInsert, mbr, payload, 0, oid});
  }
  void Erase(ObjectId oid) {
    ops.push_back({WriteOp::Kind::kErase, Rect{}, 0, oid});
  }
  size_t size() const { return ops.size(); }
  bool empty() const { return ops.empty(); }
};

namespace internal {
#ifndef NDEBUG
// Debug-build bookkeeping behind the nested-ReaderSection assertion: a
// per-thread stack of the indexes the thread currently holds shared.
void NoteSharedAcquired(const void* index);
void NoteSharedReleased(const void* index);
bool SharedHeldByThisThread(const void* index);
#endif
}  // namespace internal

class SpatialIndex;

/// Movable RAII shared-latch section returned by
/// SpatialIndex::ReaderSection(). In debug builds it additionally
/// maintains the per-thread held-set that lets the latch acquisition
/// assert on nested acquisition of the same index (the writer-gate
/// deadlock documented at ReaderSection()) at the call site instead of
/// hanging. Must be released on the thread that acquired it.
///
/// Deliberately outside thread-safety analysis: a movable handle cannot
/// be tracked by the analysis (the capability would have to follow the
/// move), so the latch is acquired and released through unchecked
/// boundaries (SpatialIndex::AcquireShared / UnlatchShared). Internal
/// code uses the checked scoped sections instead; this handle exists for
/// external callers that span the unlatched plan hooks.
class ReaderLatch {
 public:
  ReaderLatch() = default;
  ReaderLatch(ReaderLatch&& o) noexcept : owner_(o.owner_) {
    o.owner_ = nullptr;
  }
  ReaderLatch& operator=(ReaderLatch&& o) noexcept {
    if (this != &o) {
      Release();
      owner_ = o.owner_;
      o.owner_ = nullptr;
    }
    return *this;
  }
  ReaderLatch(const ReaderLatch&) = delete;
  ReaderLatch& operator=(const ReaderLatch&) = delete;
  ~ReaderLatch() { Release(); }

  bool owns_lock() const { return owner_ != nullptr; }

 private:
  friend class SpatialIndex;
  explicit ReaderLatch(const SpatialIndex* owner) : owner_(owner) {}

  void Release() NO_THREAD_SAFETY_ANALYSIS;  // inline after SpatialIndex

  const SpatialIndex* owner_ = nullptr;
};

class SpatialIndex {
 public:
  /// Creates an empty index whose pages come from `pool`.
  static Result<std::unique_ptr<SpatialIndex>> Create(
      BufferPool* pool, const SpatialIndexOptions& options);

  /// Re-attaches an index previously persisted with Checkpoint() in the
  /// same paged file. The stored options are restored verbatim.
  static Result<std::unique_ptr<SpatialIndex>> Open(BufferPool* pool,
                                                    PageId master_page);

  /// Stops the group-commit pipeline (draining pending durability work)
  /// if it is running.
  ~SpatialIndex();

  /// Persists the index state (options, B+-tree meta, store directories,
  /// counters) and returns the master page id to pass to Open(). The
  /// master page is allocated on the first call and reused afterwards.
  /// Call BufferPool::FlushAll() / Pager::Sync() afterwards for
  /// durability.
  Result<PageId> Checkpoint();

  // ------------------------------------------------------------- updates

  /// Inserts an object by MBR; returns its id. `payload` is an opaque
  /// application reference carried in the object record.
  Result<ObjectId> Insert(const Rect& mbr, uint32_t payload = 0);

  /// Inserts a simple polygon. The exact ring is persisted in the
  /// polygon store and the *polygon itself* (not its MBR) is decomposed
  /// into z-elements; queries refine against the exact geometry.
  /// Incompatible with store_mbr_in_leaf (the leaf MBR cannot refine a
  /// polygon). `preassigned` stores the ring under a caller-chosen oid
  /// (shard replication); leave defaulted otherwise.
  Result<ObjectId> InsertPolygon(const Polygon& poly,
                                 ObjectId preassigned = kNoPreassignedOid);

  /// Removes an object: deletes all its index entries and tombstones the
  /// object record.
  Status Erase(ObjectId oid);

  /// Bulk loads rectangles into an empty index: objects are appended to
  /// the object store, all (element, oid) entries are generated and
  /// sorted, and the B+-tree is built bottom-up at `fill` leaf
  /// occupancy. Far cheaper than n inserts and yields a denser tree.
  /// `oids`, when non-null, must parallel `data` and assigns each
  /// rectangle its global object id (shard engines load a routed subset
  /// of a global data set); ids must be unique but may be sparse.
  Status BulkLoad(const std::vector<Rect>& data, double fill = 0.9,
                  const std::vector<ObjectId>* oids = nullptr);

  /// Applies `batch` as one writer section: concurrent readers see either
  /// the full pre-batch or the full post-batch state, never a partially
  /// applied batch (and never a partial z-element set of any object).
  /// Returns the ids of the inserted objects, in op order. A batch that
  /// validates empty is a no-op: nothing is applied, checkpointed or
  /// published, and the write epoch is unchanged.
  ///
  /// With the group-commit pipeline running (StartGroupCommit()), the
  /// batch is applied and *published* under the exclusive latch with no
  /// I/O inside — the durability work (checkpoint, flush, journal fsync)
  /// runs on the dedicated group-commit thread, which coalesces
  /// consecutively published batches into one commit and completes
  /// waiters in epoch order. `durability` selects when the call returns:
  /// kDurable (the default) blocks until the batch's epoch is durable;
  /// kPublished returns at publish time. Crash contract in this mode:
  /// published-but-not-durable batches roll back as a unit on recovery,
  /// never partially.
  ///
  /// Without group commit, `durability` is ignored and the batch is made
  /// synchronously crash-atomic when the pager has a rollback journal
  /// and no caller-managed batch is active: it runs inside
  /// BeginBatch/CommitBatch with a checkpoint + flush before the commit,
  /// so a crash mid-batch rolls back to the pre-batch index on reopen.
  ///
  /// Failure semantics: the batch is validated up front (invalid MBRs,
  /// erases of unknown, dead or batch-duplicated oids), so predictable
  /// errors reject the whole batch with nothing applied — note this
  /// means an erase must reference an object that existed before the
  /// batch. A residual mid-batch failure (I/O error) on the journaled
  /// path aborts the pager batch and reloads the index from the last
  /// durable checkpoint, so memory and disk both return to a batch
  /// boundary (in group mode that boundary is the last durable group,
  /// so earlier published-but-not-durable batches roll back with the
  /// failed one and their durability waiters get the error). Without a
  /// journal (none configured, or composing with a caller-managed
  /// batch) such a failure can leave a partially applied batch in
  /// memory — the caller's outer rollback (crash or reopen) is then the
  /// recovery path.
  Result<std::vector<ObjectId>> ApplyBatch(
      const WriteBatch& batch, Durability durability = Durability::kDurable);

  // ------------------------------------------------------- group commit
  //
  // The off-latch durability pipeline: mutations publish in-memory state
  // under the exclusive latch and hand checkpoint + flush + journal
  // commit to a dedicated thread, so readers never wait out an fsync.
  // The pager batch (rollback journal) is kept permanently armed; its
  // before-images always describe the last durable group boundary, which
  // is what makes whole published-but-not-durable batches roll back as a
  // unit on crash.

  /// Starts the group-commit pipeline. Requires a journaled pager with
  /// no caller-managed batch active. The current state is made durable
  /// first (it becomes the initial group boundary), then the journal is
  /// armed and the durability thread started. While the pipeline runs,
  /// single-op mutations (Insert/InsertPolygon/Erase/BulkLoad) are
  /// acknowledged at publish time and made durable asynchronously; use
  /// ApplyBatch(…, kDurable) or WaitDurable() to block on durability.
  Status StartGroupCommit();

  /// Drains pending durability work, commits the armed journal batch and
  /// joins the durability thread. Safe to call when not running. Called
  /// by the destructor.
  Status StopGroupCommit();

  /// True while the group-commit pipeline is running.
  bool group_commit_active() const {
    return gc_active_.load(std::memory_order_acquire);
  }

  /// Highest write epoch whose effects are durable on disk (only
  /// advanced by the group-commit pipeline; 0 before StartGroupCommit).
  uint64_t durable_epoch() const;

  /// Blocks until epoch `epoch` is durable (OK), rolled back (the
  /// rollback cause), or — with nonzero `timeout_ms` — the deadline
  /// expires (TimedOut). Returns Unavailable if the pipeline stops
  /// before the epoch becomes durable. Group-commit mode only.
  Status WaitDurable(uint64_t epoch, uint64_t timeout_ms = 0);

  /// Test hook: pauses/resumes the durability thread. While paused,
  /// published batches accumulate in the armed journal batch and
  /// coalesce into a single commit on resume.
  void SetGroupCommitPaused(bool paused);

  // ------------------------------------------------------- concurrency

  /// A shared (reader) latch section. Every public query takes one
  /// internally; take one explicitly to make several calls — e.g. the
  /// parallel plan hooks below, or a read-check-read sequence — atomic
  /// with respect to writers. Never acquire a section inside another one
  /// on the same thread — in particular, never call a public query
  /// (WindowQuery/DistanceTo/...) while holding a ReaderSection, since
  /// it re-acquires internally and a waiting writer deadlocks the
  /// nesting; use the unlatched plan hooks below instead. Debug builds
  /// assert at the nested acquisition site (see ReaderLatch), so the
  /// hazard is a crash with a message instead of a hang.
  /// Acquisition is writer-preferring: new reader sections stand aside
  /// while a writer is waiting, so a continuous query stream cannot
  /// starve the write path (see AcquireShared()).
  ReaderLatch ReaderSection() const { return AcquireShared(); }

  /// Number of committed writer sections (single mutations count one,
  /// ApplyBatch counts one per batch). Monotonic; published with release
  /// order inside the writer section, so a reader that loads epoch e
  /// before a query and e' after it observed the index at some single
  /// epoch in [e, e'] — the hook the stress harness uses to cross-check
  /// concurrent answers against per-epoch oracles.
  uint64_t write_epoch() const {
    return write_epoch_.load(std::memory_order_acquire);
  }

  // ------------------------------------------------------ snapshot reads
  //
  // Epoch-pinned reads replace the reader half of the latch: queries at
  // a pinned epoch resolve pages through before-image version chains
  // and never hold latch_, so they cannot stall writers (and writers
  // cannot tear them). Writers still serialize through
  // commit_mu_ -> latch_ exactly as before; on every publish they
  // capture a SnapshotMeta (root, directories, counters) for the new
  // epoch and the buffer pool saves pre-batch page images on first
  // mutation.

  /// Switches the read path to epoch-pinned snapshot reads. Captures
  /// the current state as the first pinned-readable epoch, arms
  /// copy-on-write in the buffer pool, and starts the version GC
  /// thread. Call once, after Create()/Open() (and after
  /// StartGroupCommit() if used); idempotent. Snapshots stay enabled
  /// for the index's lifetime.
  Status EnableSnapshots();

  /// True once EnableSnapshots() succeeded.
  bool snapshots_enabled() const {
    return snapshots_on_.load(std::memory_order_acquire);
  }

  /// Pins the current write epoch for explicit multi-query snapshot
  /// reads (the *At variants below). Requires snapshots_enabled();
  /// aborts otherwise. Holding a pin never blocks writers — it only
  /// delays version reclamation.
  EpochPin PinEpoch() const;

  /// Scoped thread-local snapshot context: while alive, every read this
  /// thread makes through this index (including the unlatched plan
  /// hooks) resolves at the scope's epoch. Obtained from
  /// OpenSnapshot(); destroy on the creating thread, strictly nested.
  /// Construction briefly blocks while a failed-batch reload is in
  /// progress (the quiesce barrier); it never blocks on writers
  /// otherwise.
  class SnapshotReadScope {
   public:
    ~SnapshotReadScope();
    SnapshotReadScope(const SnapshotReadScope&) = delete;
    SnapshotReadScope& operator=(const SnapshotReadScope&) = delete;

    uint64_t epoch() const { return epoch_; }

   private:
    friend class SpatialIndex;
    SnapshotReadScope(const SpatialIndex* ix, uint64_t epoch,
                      std::shared_ptr<const SnapshotMeta> meta);

    const SpatialIndex* ix_;
    uint64_t epoch_;
    /// Engaged for the scope's whole life; optional only because the
    /// TLS installer must be constructed after the quiesce-barrier
    /// wait in the constructor body.
    std::optional<SnapshotScope> scope_;
  };

  /// Opens a snapshot context at `pin`'s epoch on the calling thread.
  /// The pin must come from this index's PinEpoch() and must stay held
  /// for the scope's lifetime. Fails with Aborted if the pinned epoch
  /// was rolled back by a failed group commit (re-pin and retry).
  /// Used by the parallel executor, whose workers each install their
  /// own scope under one shared pin; single queries use the *At
  /// variants instead.
  Result<std::unique_ptr<SnapshotReadScope>> OpenSnapshot(
      const EpochPin& pin) const;

  /// The queries below at an explicitly pinned epoch. All reads at one
  /// pin observe the single committed state of that epoch, stable
  /// across arbitrarily many re-reads and concurrent writer churn.
  /// They fail with Aborted if the pinned epoch was rolled back.
  Result<std::vector<ObjectId>> WindowQueryAt(const EpochPin& pin,
                                              const Rect& window,
                                              QueryStats* stats = nullptr);
  Result<std::vector<ObjectId>> PointQueryAt(const EpochPin& pin,
                                             const Point& p,
                                             QueryStats* stats = nullptr);
  Result<std::vector<ObjectId>> ContainmentQueryAt(
      const EpochPin& pin, const Rect& window, QueryStats* stats = nullptr);
  Result<std::vector<ObjectId>> EnclosureQueryAt(const EpochPin& pin,
                                                 const Rect& window,
                                                 QueryStats* stats = nullptr);
  Result<std::vector<std::pair<ObjectId, double>>> NearestNeighborsAt(
      const EpochPin& pin, const Point& p, size_t k,
      QueryStats* stats = nullptr, uint32_t* rounds = nullptr);

  /// Pin / version-chain counters (zero before EnableSnapshots()).
  EpochStats epoch_stats() const;
  PageVersionStats version_stats() const;

  /// The manager backing PinEpoch(); nullptr before EnableSnapshots().
  /// Exposed for tests that drive reclamation deterministically
  /// (EpochManager::RunGcCycle).
  EpochManager* epochs() const { return epoch_mgr_.get(); }

  // ------------------------------------------------------------- queries

  /// All live objects whose MBR intersects `window`.
  Result<std::vector<ObjectId>> WindowQuery(const Rect& window,
                                            QueryStats* stats = nullptr);

  /// All live objects whose MBR contains `p`.
  Result<std::vector<ObjectId>> PointQuery(const Point& p,
                                           QueryStats* stats = nullptr);

  /// All live objects whose MBR is fully inside `window` ("containment").
  Result<std::vector<ObjectId>> ContainmentQuery(const Rect& window,
                                                 QueryStats* stats = nullptr);

  /// All live objects whose MBR encloses `window` ("enclosure").
  Result<std::vector<ObjectId>> EnclosureQuery(const Rect& window,
                                               QueryStats* stats = nullptr);

  /// The k nearest objects to `p` by exact geometry distance (0 when the
  /// point is inside the object), closest first. Implemented as an
  /// expanding-window search: the radius doubles until the k-th hit is
  /// provably inside the searched window. `rounds` (optional) reports
  /// the number of expansions.
  Result<std::vector<std::pair<ObjectId, double>>> NearestNeighbors(
      const Point& p, size_t k, QueryStats* stats = nullptr,
      uint32_t* rounds = nullptr);

  // ------------------------------------------------- parallel query hooks
  //
  // The filter stage of WindowQuery, exposed in three steps so a parallel
  // executor can split one query's z-interval set across workers: plan
  // once, execute disjoint work-item slices concurrently (each slice
  // deduplicates locally; the caller merges and deduplicates globally),
  // then refine candidate chunks concurrently. The hooks do not latch
  // internally (per-call latching could interleave a writer between the
  // plan and its slices); when writers may be active, hold one
  // ReaderSection() across the whole plan/execute/refine sequence.
  //
  // That contract is not expressible to the thread-safety analysis (the
  // ReaderSection handle is movable and the hooks run on threads other
  // than the acquiring one), so the hooks are a documented unchecked
  // boundary: NO_THREAD_SAFETY_ANALYSIS here, checked REQUIRES_SHARED
  // helpers underneath.

  /// Builds the probe/scan plan for a window query.
  Result<WindowPlan> PlanWindow(const Rect& window)
      NO_THREAD_SAFETY_ANALYSIS;

  /// Executes plan work items [begin, end) and returns the candidate
  /// object ids (locally deduplicated, sorted). In store_mbr_in_leaf mode
  /// the replicated MBRs are tested against the plan's window.
  Result<std::vector<ObjectId>> ExecuteWindowPlanSlice(const WindowPlan& plan,
                                                       size_t begin,
                                                       size_t end,
                                                       QueryStats* stats)
      NO_THREAD_SAFETY_ANALYSIS;

  /// Refines window-query candidates against exact geometry (a no-op
  /// pass-through in store_mbr_in_leaf mode, where the filter already
  /// tested the replicated MBR). Preserves candidate order.
  Result<std::vector<ObjectId>> RefineWindowCandidates(
      const Rect& window, std::vector<ObjectId> candidates,
      QueryStats* stats);

  // ------------------------------------------------------------ plumbing

  const SpatialIndexOptions& options() const { return options_; }
  const SpaceMapper& mapper() const { return mapper_; }
  BTree* btree() { return btree_.get(); }
  ObjectStore* objects() { return store_.get(); }
  PolygonStore* polygons() { return polys_.get(); }
  BufferPool* pool() { return pool_; }

  /// Fetches an object's exact geometry distance to a point: 0 inside,
  /// Euclidean otherwise. Polygon objects use their exact ring.
  Result<double> DistanceTo(ObjectId oid, const Point& p);

  /// Build counters. Advisory monitor read outside the latch (callers
  /// wanting a consistent snapshot hold a ReaderSection across it), so
  /// deliberately outside the analysis.
  const IndexBuildStats& build_stats() const NO_THREAD_SAFETY_ANALYSIS {
    return build_stats_;
  }

  /// Bitmask of element levels present in the index (bit L set if some
  /// entry was inserted at level L). Conservative: never cleared.
  /// Advisory monitor read outside the latch, like build_stats().
  uint64_t level_mask() const NO_THREAD_SAFETY_ANALYSIS {
    return level_mask_;
  }

  /// Exact per-level entry counts (index 0 = whole-space element, up to
  /// 2 * grid_bits). Scans the whole index; diagnostics/analysis use.
  Result<std::vector<uint64_t>> LevelHistogram();

  /// Live objects (inserted minus erased). Safe to read from any thread
  /// without a latch (relaxed; a concurrent writer's batch may or may
  /// not be counted yet).
  uint64_t object_count() const {
    return live_objects_.load(std::memory_order_relaxed);
  }

 private:
  friend Result<std::vector<std::pair<ObjectId, ObjectId>>> SpatialJoin(
      SpatialIndex* a, SpatialIndex* b, JoinStats* stats);
  friend class ReaderLatch;  // Release() calls UnlatchShared()

  SpatialIndex(BufferPool* pool, const SpatialIndexOptions& options)
      : pool_(pool),
        options_(options),
        mapper_(options.world, options.grid_bits) {}

  // Unlatched bodies of the public entry points (suffix "Locked" =
  // caller holds latch_, shared for reads / exclusive for writes; the
  // REQUIRES annotations make the analysis enforce exactly that). The
  // public wrappers acquire the latch and, for mutations, publish the
  // write epoch; internal callers (kNN's expanding windows, ApplyBatch,
  // SpatialJoin) compose these without re-acquiring.
  Result<ObjectId> InsertLocked(const Rect& mbr, uint32_t payload,
                                ObjectId preassigned = kNoPreassignedOid)
      REQUIRES(latch_);
  Result<ObjectId> InsertPolygonLocked(const Polygon& poly,
                                       ObjectId preassigned =
                                           kNoPreassignedOid)
      REQUIRES(latch_);
  Status EraseLocked(ObjectId oid) REQUIRES(latch_);
  /// Body of BulkLoad; sets *mutated once the first page is touched.
  Status BulkLoadLocked(const std::vector<Rect>& data, double fill,
                        const std::vector<ObjectId>* oids, bool* mutated)
      REQUIRES(latch_);
  /// Checkpoints serialize against the group-commit thread through
  /// commit_mu_ in addition to the exclusive latch.
  Result<PageId> CheckpointLocked() REQUIRES(commit_mu_, latch_);

  /// Rejects a batch whose ops would fail mid-application: invalid
  /// insert MBRs, erases of unknown/dead oids, duplicate erases. Reads
  /// only; nothing is applied.
  Status ValidateBatchLocked(const WriteBatch& batch) REQUIRES(latch_);

  /// Applies a validated batch's ops in order, appending inserted oids
  /// to *inserted; stops at the first failure (possibly mid-batch — the
  /// caller owns rollback). Split out of ApplyBatch so the loop is a
  /// checkable function instead of a lambda (the analysis does not
  /// propagate locksets into lambdas).
  Status ApplyOpsLocked(const WriteBatch& batch,
                        std::vector<ObjectId>* inserted) REQUIRES(latch_);

  /// Re-reads the dynamic index state (B+-tree meta, store directories,
  /// counters) from the master page after Pager::AbortBatch rolled the
  /// file back to the pre-batch checkpoint, discarding the buffer-pool
  /// cache first. Quiesces in-flight snapshot reads before touching
  /// anything (see BeginSnapshotQuiesce). Defined in core/persist.cc.
  Status ReloadLocked() REQUIRES(commit_mu_, latch_);
  /// ReloadLocked's body, run between the quiesce brackets.
  Status ReloadUnquiescedLocked() REQUIRES(commit_mu_, latch_);
  Result<std::vector<ObjectId>> WindowQueryLocked(const Rect& window,
                                                  QueryStats* stats)
      REQUIRES_SHARED(latch_);
  Result<std::vector<ObjectId>> PointQueryLocked(const Point& p,
                                                 QueryStats* stats)
      REQUIRES_SHARED(latch_);
  Result<std::vector<ObjectId>> ContainmentQueryLocked(const Rect& window,
                                                       QueryStats* stats)
      REQUIRES_SHARED(latch_);
  Result<std::vector<ObjectId>> EnclosureQueryLocked(const Rect& window,
                                                     QueryStats* stats)
      REQUIRES_SHARED(latch_);
  Result<std::vector<std::pair<ObjectId, double>>> NearestNeighborsLocked(
      const Point& p, size_t k, QueryStats* stats, uint32_t* rounds)
      REQUIRES_SHARED(latch_);
  Result<double> DistanceToLocked(ObjectId oid, const Point& p)
      REQUIRES_SHARED(latch_);

  /// Bumps the published write epoch; call at the end of a successful
  /// writer section, while still holding the exclusive latch. With
  /// snapshots enabled, first records the post-batch SnapshotMeta under
  /// the new epoch — readers that pin the bumped epoch immediately
  /// afterwards must already find its meta.
  void PublishWrite() REQUIRES(latch_) {
    if (snapshots_on_.load(std::memory_order_relaxed)) {
      epoch_mgr_->RecordMeta(
          write_epoch_.load(std::memory_order_relaxed) + 1,
          CaptureMetaLocked());
    }
    write_epoch_.fetch_add(1, std::memory_order_release);
  }

  // ----------------------------- snapshot reads (core/snapshot_read.cc)

  /// Value-copies the reader-visible index state (tree root/height,
  /// store directories, counters) into a SnapshotMeta. Writer side,
  /// under the exclusive latch, at every publish.
  SnapshotMeta CaptureMetaLocked() const REQUIRES(latch_);

  /// Builds the thread-local redirection record for `epoch`: tags this
  /// index's pool/tree/stores so their read paths resolve through the
  /// version chains and `meta` instead of the live state.
  SnapshotView MakeView(uint64_t epoch,
                        std::shared_ptr<const SnapshotMeta> meta) const;

  /// Resolves `pin`'s snapshot meta (InvalidArgument before
  /// EnableSnapshots(), Aborted for a rolled-back epoch).
  Result<std::shared_ptr<const SnapshotMeta>> PinnedMeta(
      const EpochPin& pin) const;

  /// Reader-count gate for the reload quiesce barrier. Snapshot reads
  /// hold no latch, but a chain-miss page resolution takes a transient
  /// buffer-pool pin — ReloadLocked (which discards the pool cache and
  /// reseats the tree/store handles) must wait those out. Enter blocks
  /// while the barrier is up; reads in progress finish first.
  void EnterSnapshotRead() const EXCLUDES(snap_mu_);
  void LeaveSnapshotRead() const EXCLUDES(snap_mu_);

  /// Raises the barrier and waits until no snapshot read is active /
  /// lowers it again. Bracket ReloadLocked's body; the caller holds
  /// commit_mu_ + the exclusive latch, so no new epoch can be pinned
  /// meanwhile and snapshot readers never take either lock (no
  /// deadlock; lock order commit_mu_ -> latch_ -> snap_mu_).
  void BeginSnapshotQuiesce() EXCLUDES(snap_mu_);
  void EndSnapshotQuiesce() EXCLUDES(snap_mu_);

  /// Capability bridge for the pinned read path: claims the shared
  /// latch for the thread-safety analysis WITHOUT acquiring it, so the
  /// REQUIRES_SHARED query bodies stay checkable from the latch-free
  /// snapshot path. Sound because under an installed SnapshotView every
  /// latch-guarded datum those bodies touch is redirected to immutable
  /// snapshot state (EffectiveLevelMask/EffectiveLiveObjects, the
  /// view-aware BTree/store/pool read paths); the live fields a writer
  /// could race on are never read. Only construct with a
  /// SnapshotReadScope installed on this thread.
  class SCOPED_CAPABILITY SnapshotSection {
   public:
    explicit SnapshotSection(const SpatialIndex* ix)
        ACQUIRE_SHARED(ix->latch_) {
      (void)ix;  // consumed by the annotation only
    }
    ~SnapshotSection() RELEASE() {}
    SnapshotSection(const SnapshotSection&) = delete;
    SnapshotSection& operator=(const SnapshotSection&) = delete;
  };

  /// level_mask_ / live_objects_, redirected to the installed snapshot
  /// view when one covers this index (pinned reads must not consult
  /// live counters a concurrent writer is mutating). Defined in
  /// core/snapshot_read.cc with the rest of the snapshot plumbing.
  uint64_t EffectiveLevelMask() const REQUIRES_SHARED(latch_);
  uint64_t EffectiveLiveObjects() const REQUIRES_SHARED(latch_);

  // --------------------------------- group commit (core/group_commit.cc)

  /// Records the current write epoch as published and wakes the
  /// durability thread. Caller holds commit_mu_ (and has just
  /// PublishWrite()d); no-op when the pipeline is off.
  void NotifyPublished() REQUIRES(commit_mu_);

  /// Durability thread body: waits for published > durable, commits one
  /// group per wakeup.
  void GroupCommitLoop();

  /// True once WaitDurable(epoch)'s outcome is decided (durable, rolled
  /// back, or the pipeline stopped/died). Wait-loop predicate.
  bool DurabilitySettledLocked(uint64_t epoch) const REQUIRES(gc_mu_);

  /// One group commit cycle: brief exclusive-latch checkpoint, then
  /// flush + journal commit + re-arm off the latch. Takes commit_mu_.
  Status CommitGroup();

  /// Rolls the whole armed group back (disk via AbortBatch, memory via
  /// ReloadLocked from the last durable master), fails pending
  /// durability waiters with `cause`, and re-arms the journal. Caller
  /// holds commit_mu_ and the exclusive latch. Returns `cause` on a
  /// successful rollback, Corruption if the rollback itself failed
  /// (group mode is then disabled; the intact journal still recovers
  /// the file on the next open).
  Status RollbackGroupLocked(const Status& cause)
      REQUIRES(commit_mu_, latch_);

  // Latch acquisition with writer preference. The portable
  // SharedMutex makes no fairness promise, and the common pthread
  // implementation prefers readers — under a continuous query stream the
  // shared side never drains and a writer waits forever. Writers
  // announce themselves in writers_waiting_ before blocking on the
  // exclusive latch; LatchShared() sleeps on gate_cv_ while any
  // writer is announced (no CPU burned during the writer's turn), so
  // the shared side drains within one in-flight query per reader thread
  // and the writer gets through. Defined in spatial_index.cc.
  void LatchShared() const ACQUIRE_SHARED(latch_);
  void UnlatchShared() const RELEASE_SHARED(latch_);
  void LatchExclusive() ACQUIRE(latch_);
  void UnlatchExclusive() RELEASE(latch_);

  /// Checked scoped shared section over the gate + latch; what internal
  /// read paths use (the public ReaderSection() handle is movable and
  /// therefore untracked).
  class SCOPED_CAPABILITY SharedSection {
   public:
    explicit SharedSection(const SpatialIndex* ix)
        ACQUIRE_SHARED(ix->latch_)
        : ix_(ix) {
      ix_->LatchShared();
    }
    ~SharedSection() RELEASE() { ix_->UnlatchShared(); }
    SharedSection(const SharedSection&) = delete;
    SharedSection& operator=(const SharedSection&) = delete;

   private:
    const SpatialIndex* ix_;
  };

  /// Checked scoped writer section (gate announcement + exclusive
  /// latch). Unlock() releases early — ApplyBatch drops the latch before
  /// blocking on durability.
  class SCOPED_CAPABILITY WriterSection {
   public:
    explicit WriterSection(SpatialIndex* ix) ACQUIRE(ix->latch_)
        : ix_(ix) {
      ix_->LatchExclusive();
      // Arm copy-on-write for this batch: first mutation of any page
      // saves its pre-batch image tagged with the current (pre-bump)
      // epoch. The stamp is re-armed per section; the keep-first rule
      // in PageVersions makes a checkpoint sharing the stamp harmless.
      if (ix_->snapshots_on_.load(std::memory_order_relaxed)) {
        ix_->pool_->ArmVersioning(ix_->write_epoch() + 1);
      }
    }
    ~WriterSection() RELEASE() {
      if (ix_ != nullptr) ix_->UnlatchExclusive();
    }
    void Unlock() RELEASE() {
      ix_->UnlatchExclusive();
      ix_ = nullptr;
    }
    WriterSection(const WriterSection&) = delete;
    WriterSection& operator=(const WriterSection&) = delete;

   private:
    SpatialIndex* ix_;
  };

  /// Backs the public ReaderSection() handle: LatchShared() wrapped into
  /// a movable ReaderLatch. Untracked by design (see ReaderLatch).
  ReaderLatch AcquireShared() const NO_THREAD_SAFETY_ANALYSIS;

  /// Builds the probe/scan work list for a grid query rect (the shared
  /// planning step of the filter stage). Defined in query.cc.
  WindowPlan BuildWindowPlan(const GridRect& qgrid) const
      REQUIRES_SHARED(latch_);

  /// Executes plan work items [begin, end) through a fresh CandidateSink,
  /// optionally leaf-filtering with `leaf_pred`. Defined in query.cc.
  Result<std::vector<ObjectId>> ExecutePlanSlice(
      const WindowPlan& plan, size_t begin, size_t end,
      const std::function<bool(const Rect&)>* leaf_pred, QueryStats* stats)
      REQUIRES_SHARED(latch_);

  /// Shared filter stage: every unique candidate whose element
  /// approximation touches the query grid rect. Defined in query.cc.
  Result<std::vector<ObjectId>> CollectCandidates(const GridRect& qgrid,
                                                  QueryStats* stats)
      REQUIRES_SHARED(latch_);

  /// As above; in store-MBR-in-leaf mode additionally applies `leaf_pred`
  /// to the MBR replicated in the leaf, making refinement I/O-free.
  Result<std::vector<ObjectId>> CollectCandidatesFiltered(
      const GridRect& qgrid,
      const std::function<bool(const Rect&)>* leaf_pred, QueryStats* stats)
      REQUIRES_SHARED(latch_);

  /// Candidates for a point (ancestor probes only). Defined in query.cc.
  Result<std::vector<ObjectId>> CollectPointCandidates(GridCoord gx,
                                                       GridCoord gy,
                                                       QueryStats* stats)
      REQUIRES_SHARED(latch_);

  Result<std::vector<ObjectId>> CollectPointCandidatesFiltered(
      GridCoord gx, GridCoord gy,
      const std::function<bool(const Rect&)>* leaf_pred, QueryStats* stats)
      REQUIRES_SHARED(latch_);

  /// Refinement driver shared by the public queries. The predicate sees
  /// the full object record and may fetch exact geometry.
  template <typename Predicate>
  Result<std::vector<ObjectId>> Refine(std::vector<ObjectId> candidates,
                                       Predicate pred, QueryStats* stats);

  /// Exact-geometry test of one record against a window (intersection).
  Result<bool> RecordIntersects(const ObjectRecord& rec, const Rect& window);

  BufferPool* pool_;
  SpatialIndexOptions options_;
  SpaceMapper mapper_;
  // The handles are set once at construction/Open and the pointees do
  // their own page-level synchronization under this index's latch; the
  // pointers themselves are never reseated concurrently (ReloadLocked
  // reseats them under commit_mu_ + exclusive latch).
  std::unique_ptr<BTree> btree_;
  std::unique_ptr<ObjectStore> store_;
  std::unique_ptr<PolygonStore> polys_;
  IndexBuildStats build_stats_ GUARDED_BY(latch_);
  uint64_t level_mask_ GUARDED_BY(latch_) = 0;
  /// Relaxed atomic so object_count() stays readable from monitor
  /// threads without a latch; writers mutate it under the exclusive
  /// latch.
  std::atomic<uint64_t> live_objects_{0};

  /// Reader/writer latch: queries hold it shared for their whole
  /// duration (kNN across all its expanding rounds), mutations hold it
  /// exclusive — batch-granular writer sections over the B+-tree, the
  /// stores and the index metadata.
  mutable SharedMutex latch_ ACQUIRED_AFTER(commit_mu_);
  /// Writer-preference gate (see LatchShared()): writers_waiting_
  /// counts writers blocked on (or about to block on) latch_; readers
  /// wait on gate_cv_ until it drops to zero. gate_mu_ is a leaf lock.
  mutable Mutex gate_mu_;
  mutable CondVar gate_cv_;
  mutable uint32_t writers_waiting_ GUARDED_BY(gate_mu_) = 0;
  std::atomic<uint64_t> write_epoch_{0};

  /// Pin accounting, per-epoch snapshot metas and the version GC
  /// thread. Set once by EnableSnapshots() (never reseated); the
  /// snapshots_on_ flag is what readers consult, with acquire order so
  /// a reader seeing `true` also sees the pointer.
  std::unique_ptr<EpochManager> epoch_mgr_;
  std::atomic<bool> snapshots_on_{false};

  /// Reload quiesce barrier (see BeginSnapshotQuiesce). snap_mu_ is a
  /// leaf lock on the reader side; ReloadLocked takes it while holding
  /// commit_mu_ + the exclusive latch, extending the lock order to
  /// commit_mu_ -> latch_ -> snap_mu_.
  mutable Mutex snap_mu_ ACQUIRED_AFTER(commit_mu_);
  mutable CondVar snap_cv_;
  mutable uint32_t snap_active_ GUARDED_BY(snap_mu_) = 0;
  bool snap_barrier_ GUARDED_BY(snap_mu_) = false;

  /// Commit pipeline mutex: every mutator takes it *before* latch_
  /// (lock order: commit_mu_ → latch_ → gc_mu_), and the durability
  /// thread holds it — without the latch — across checkpoint, flush and
  /// journal commit. Readers never touch it, so the fsync window cannot
  /// stall the query path; writers queue on it instead of on the
  /// reader-visible latch.
  Mutex commit_mu_;
  /// Pipeline on/off. Written under commit_mu_; atomic so
  /// group_commit_active() is latch-free.
  std::atomic<bool> gc_active_{false};
  /// Master page of the last *durable* group boundary — the rollback
  /// target.
  PageId gc_master_ GUARDED_BY(commit_mu_) = kInvalidPageId;
  /// Started under commit_mu_ (StartGroupCommit), joined by
  /// StopGroupCommit before it takes commit_mu_ — never touched
  /// concurrently, so deliberately unguarded.
  std::thread gc_thread_;

  /// Epoch bookkeeping shared with the durability thread and waiters.
  /// gc_mu_ is a leaf lock (acquired after commit_mu_/latch_, never
  /// held across I/O).
  mutable Mutex gc_mu_ ACQUIRED_AFTER(commit_mu_);
  CondVar gc_cv_;             ///< wakes the thread
  mutable CondVar gc_done_cv_;  ///< wakes waiters
  bool gc_stop_ GUARDED_BY(gc_mu_) = false;  ///< drain and exit
  bool gc_dead_ GUARDED_BY(gc_mu_) = false;  ///< pipeline broke
  bool gc_paused_ GUARDED_BY(gc_mu_) = false;   ///< test hook
  bool gc_running_ GUARDED_BY(gc_mu_) = false;  ///< thread alive
  uint64_t gc_published_ GUARDED_BY(gc_mu_) = 0;  ///< highest published
  uint64_t gc_durable_ GUARDED_BY(gc_mu_) = 0;    ///< durable watermark
  /// Epochs (lo, hi] rolled back by a failed group, with the cause;
  /// append-only (failures are rare), consulted by WaitDurable.
  struct FailedEpochs {
    uint64_t lo;
    uint64_t hi;
    Status status;
  };
  std::vector<FailedEpochs> gc_failed_ GUARDED_BY(gc_mu_);

  // Persistence bookkeeping (see core/persist.cc). Written by
  // checkpoint/reload/rollback, which all hold commit_mu_ (plus the
  // exclusive latch); read by the commit pipeline under commit_mu_
  // alone.
  PageId master_page_ GUARDED_BY(commit_mu_) = kInvalidPageId;
  PageId obj_dir_chain_ GUARDED_BY(commit_mu_) = kInvalidPageId;
  PageId poly_dir_chain_ GUARDED_BY(commit_mu_) = kInvalidPageId;
};

inline void ReaderLatch::Release() {
  if (owner_ != nullptr) {
    owner_->UnlatchShared();
    owner_ = nullptr;
  }
}

/// Spatial join: all pairs (a-object, b-object) with intersecting MBRs,
/// computed by a synchronized z-order merge of the two indexes' entry
/// streams with enclosure stacks (Orenstein's merge algorithm).
Result<std::vector<std::pair<ObjectId, ObjectId>>> SpatialJoin(
    SpatialIndex* a, SpatialIndex* b, JoinStats* stats = nullptr);

}  // namespace zdb

#endif  // ZDB_CORE_SPATIAL_INDEX_H_
