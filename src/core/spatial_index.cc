// Copyright (c) zdb authors. Licensed under the MIT license.

#include "core/spatial_index.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>
#include <vector>

#include "decompose/region.h"
#include "geom/clip.h"
#include "zorder/zkey.h"

namespace zdb {

#ifndef NDEBUG
namespace internal {
namespace {
// Stack (not set): SpatialJoin legitimately holds sections on two
// different indexes at once, so membership must be per-index.
thread_local std::vector<const void*> t_shared_held;
}  // namespace

void NoteSharedAcquired(const void* index) {
  t_shared_held.push_back(index);
}

void NoteSharedReleased(const void* index) {
  auto it = std::find(t_shared_held.rbegin(), t_shared_held.rend(), index);
  if (it != t_shared_held.rend()) {
    t_shared_held.erase(std::next(it).base());
  }
}

bool SharedHeldByThisThread(const void* index) {
  return std::find(t_shared_held.begin(), t_shared_held.end(), index) !=
         t_shared_held.end();
}
}  // namespace internal
#endif  // NDEBUG

// ----------------------------------------------------- latch acquisition
//
// shared_mutex fairness is implementation-defined, and the common
// pthread rwlock prefers readers: with reader threads issuing queries
// back to back, the shared side never drains and a unique_lock waits
// forever. The writers_waiting_ gate restores progress — writers
// announce themselves before blocking, and new readers sleep on the
// gate's condition variable until no writer is announced (so reader
// threads burn no CPU across the writer's whole queueing + exclusive
// section). A reader that raced past the gate holds the latch for at
// most one query, so the writer's wait is bounded by one in-flight
// query per reader thread.

void SpatialIndex::LatchShared() const {
#ifndef NDEBUG
  // The re-entrancy hazard documented at ReaderSection(): a nested
  // shared acquisition on the same index deadlocks as soon as a writer
  // is waiting between the two. Catch it at the call site.
  assert(!internal::SharedHeldByThisThread(this) &&
         "nested ReaderSection() on the same SpatialIndex from one "
         "thread: deadlocks against a waiting writer; use the unlatched "
         "*Locked/plan hooks inside a held section instead");
#endif
  {
    MutexLock gate(gate_mu_);
    while (writers_waiting_ != 0) gate_cv_.Wait(gate_mu_);
  }
  latch_.LockShared();
#ifndef NDEBUG
  internal::NoteSharedAcquired(this);
#endif
}

void SpatialIndex::UnlatchShared() const {
#ifndef NDEBUG
  internal::NoteSharedReleased(this);
#endif
  latch_.UnlockShared();
}

void SpatialIndex::LatchExclusive() {
  {
    MutexLock gate(gate_mu_);
    ++writers_waiting_;
  }
  latch_.Lock();
  {
    MutexLock gate(gate_mu_);
    if (--writers_waiting_ == 0) gate_cv_.NotifyAll();
  }
}

void SpatialIndex::UnlatchExclusive() { latch_.Unlock(); }

ReaderLatch SpatialIndex::AcquireShared() const {
  LatchShared();
  return ReaderLatch(this);
}

Result<std::unique_ptr<SpatialIndex>> SpatialIndex::Create(
    BufferPool* pool, const SpatialIndexOptions& options) {
  if (options.grid_bits < 1 || options.grid_bits > kMaxGridBits) {
    return Status::InvalidArgument("grid_bits out of range");
  }
  std::unique_ptr<SpatialIndex> index(new SpatialIndex(pool, options));
  ZDB_ASSIGN_OR_RETURN(index->btree_, BTree::Create(pool));
  index->store_ = std::make_unique<ObjectStore>(pool);
  index->polys_ = std::make_unique<PolygonStore>(pool);
  return index;
}

// ------------------------------------------------------------- mutations
//
// Public mutations are batch-granular writer sections: the exclusive
// latch is held for the whole multi-key operation, so an object's
// z-element set is published to readers all-or-nothing. Every mutator
// takes commit_mu_ first (lock order commit_mu_ → latch_), which is
// what serializes the write path against the group-commit thread's
// off-latch durability work.
//
// Single-op mutators in group-commit mode: a mid-operation I/O failure
// may have partially mutated the in-memory state, so — exactly like a
// failed ApplyBatch — the whole armed group is rolled back to the last
// durable boundary. Predictable rejections (invalid MBR, unknown oid)
// happen before any mutation and roll nothing back.

namespace {
/// True for failures detected before any page was mutated.
bool PrevalidatedFailure(const Status& s) {
  return s.IsInvalidArgument() || s.IsNotFound();
}
}  // namespace

Result<ObjectId> SpatialIndex::Insert(const Rect& mbr, uint32_t payload) {
  MutexLock commit(commit_mu_);
  WriterSection lock(this);
  auto r = InsertLocked(mbr, payload);
  if (r.ok()) {
    PublishWrite();
    NotifyPublished();
  } else if (gc_active_ && !PrevalidatedFailure(r.status())) {
    ZDB_RETURN_IF_ERROR(RollbackGroupLocked(r.status()));
  }
  return r;
}

Result<ObjectId> SpatialIndex::InsertPolygon(const Polygon& poly,
                                             ObjectId preassigned) {
  MutexLock commit(commit_mu_);
  WriterSection lock(this);
  auto r = InsertPolygonLocked(poly, preassigned);
  if (r.ok()) {
    PublishWrite();
    NotifyPublished();
  } else if (gc_active_ && !PrevalidatedFailure(r.status())) {
    ZDB_RETURN_IF_ERROR(RollbackGroupLocked(r.status()));
  }
  return r;
}

Status SpatialIndex::Erase(ObjectId oid) {
  MutexLock commit(commit_mu_);
  WriterSection lock(this);
  Status s = EraseLocked(oid);
  if (s.ok()) {
    PublishWrite();
    NotifyPublished();
  } else if (gc_active_ && !PrevalidatedFailure(s)) {
    return RollbackGroupLocked(s);
  }
  return s;
}

Result<std::vector<ObjectId>> SpatialIndex::ApplyBatch(
    const WriteBatch& batch, Durability durability) {
  MutexLock commit(commit_mu_);
  WriterSection lock(this);
  // Predictable failures (invalid MBRs, unknown/dead/duplicate erases)
  // reject the whole batch before any op is applied, so they can never
  // leave a partial application — with or without a journal.
  ZDB_RETURN_IF_ERROR(ValidateBatchLocked(batch));

  std::vector<ObjectId> inserted;
  // A batch that validates empty is a no-op: nothing to apply, publish
  // or make durable — in particular no entry checkpoint that would
  // commit as its own batch, and no write-epoch bump.
  if (batch.empty()) return inserted;

  Pager* pager = pool_->pager();

  if (gc_active_) {
    // Group-commit path: apply + publish under the latch with no I/O
    // (page mutations land in the buffer pool; the permanently armed
    // pager batch journals before-images of any evicted page), then
    // hand durability to the pipeline thread.
    Status st = ApplyOpsLocked(batch, &inserted);
    if (!st.ok()) {
      // Partial in-memory application: the only exact recovery point is
      // the last durable group boundary, so the whole group rolls back
      // (failing the waiters of any earlier published-but-not-durable
      // batches with this cause).
      return RollbackGroupLocked(st);
    }
    PublishWrite();
    const uint64_t epoch = write_epoch();
    NotifyPublished();
    lock.Unlock();
    commit.Unlock();
    if (durability == Durability::kDurable) {
      ZDB_RETURN_IF_ERROR(WaitDurable(epoch));
    }
    return inserted;
  }

  // Journal-back the batch when possible. If the caller already manages
  // an outer pager batch, compose with it instead of nesting: validation
  // caught the predictable failures, and a residual I/O failure is left
  // to the caller's outer rollback (see header).
  const bool journal = pager->journaled() && !pager->in_batch();
  if (!journal) {
    ZDB_RETURN_IF_ERROR(ApplyOpsLocked(batch, &inserted));
    PublishWrite();
    return inserted;
  }

  // Phase 1: make the pre-batch state durable, as its own journaled
  // batch so a crash inside this checkpoint stays atomic. Phase 2's
  // journal then snapshots exactly the logical pre-batch pages — the
  // property that lets the failure path below restore the in-memory
  // index precisely via AbortBatch + ReloadLocked.
  const PageId master_before = master_page_;
  ZDB_RETURN_IF_ERROR(pager->BeginBatch());
  Status st = CheckpointLocked().status();
  if (st.ok()) st = pool_->FlushAll();
  if (st.ok()) st = pager->CommitBatch();
  const bool checkpointed = st.ok();

  // Phase 2: apply the ops and make the batch durable before it
  // commits — meta + dirty pages to disk, then the journal reset. A
  // crash anywhere before CommitBatch rolls the whole batch back on
  // reopen.
  if (st.ok()) st = pager->BeginBatch();
  if (st.ok()) {
    st = ApplyOpsLocked(batch, &inserted);
    if (st.ok()) st = CheckpointLocked().status();
    if (st.ok()) st = pool_->FlushAll();
    if (st.ok()) st = pager->CommitBatch();
  }

  if (!st.ok()) {
    // Roll disk AND memory back: restore the journaled before-images,
    // drop the (partially mutated) cache and re-read the index state
    // from the last durable checkpoint, so the failed batch leaves no
    // trace and the next batch journals normally. If phase 1 itself
    // failed, that checkpoint is the previous one — mutations that were
    // never made durable are rolled back with the batch. If even the
    // rollback fails, the batch stays open and the intact journal
    // recovers the file on the next reopen.
    const bool suspect = pager->in_batch() || !checkpointed;
    if (suspect) {
      Status undo =
          pager->in_batch() ? pager->AbortBatch() : Status::OK();
      if (undo.ok()) {
        master_page_ = master_before;
        undo = ReloadLocked();
      }
      if (!undo.ok()) {
        return Status::Corruption("batch failed (" + st.ToString() +
                                  ") and rollback failed too: " +
                                  undo.ToString());
      }
    }
    return st;
  }
  PublishWrite();
  return inserted;
}

Status SpatialIndex::ApplyOpsLocked(const WriteBatch& batch,
                                    std::vector<ObjectId>* inserted) {
  for (const WriteOp& op : batch.ops) {
    if (op.kind == WriteOp::Kind::kInsert) {
      auto r = InsertLocked(op.mbr, op.payload, op.preassigned);
      if (!r.ok()) return r.status();
      inserted->push_back(r.value());
    } else {
      ZDB_RETURN_IF_ERROR(EraseLocked(op.oid));
    }
  }
  return Status::OK();
}

Status SpatialIndex::ValidateBatchLocked(const WriteBatch& batch) {
  std::unordered_set<ObjectId> erased;
  for (const WriteOp& op : batch.ops) {
    if (op.kind == WriteOp::Kind::kInsert) {
      if (!op.mbr.valid()) return Status::InvalidArgument("invalid MBR");
      if (op.preassigned != kNoPreassignedOid &&
          op.preassigned < store_->size()) {
        // A preassigned id may name a hole or a tombstone, never a live
        // record. Holes fetch as NotFound and skipped-but-allocated
        // slots decode as dead — both are fine to overwrite.
        auto r = store_->Fetch(op.preassigned);
        if (r.ok() && r.value().live) {
          return Status::InvalidArgument("preassigned oid already live");
        }
        if (!r.ok() && !r.status().IsNotFound()) return r.status();
      }
    } else {
      ObjectRecord rec;
      ZDB_ASSIGN_OR_RETURN(rec, store_->Fetch(op.oid));
      if (!rec.live) return Status::NotFound("object already erased");
      if (!erased.insert(op.oid).second) {
        return Status::NotFound("object erased twice in batch");
      }
    }
  }
  return Status::OK();
}

Result<ObjectId> SpatialIndex::InsertLocked(const Rect& mbr,
                                            uint32_t payload,
                                            ObjectId preassigned) {
  if (!mbr.valid()) return Status::InvalidArgument("invalid MBR");
  ObjectId oid;
  if (preassigned == kNoPreassignedOid) {
    ZDB_ASSIGN_OR_RETURN(oid, store_->Insert(mbr, payload));
  } else {
    oid = preassigned;
    ZDB_RETURN_IF_ERROR(store_->InsertAt(oid, mbr, payload));
  }

  const GridRect grect = mapper_.ToGrid(mbr);
  const Decomposition decomp =
      Decompose(grect, options_.grid_bits, options_.data);

  std::string value;
  if (options_.store_mbr_in_leaf) {
    value.resize(kEncodedRectSize);
    EncodeRect(mbr, value.data());
  }

  for (const ZElement& elem : decomp.elements) {
    ZDB_RETURN_IF_ERROR(
        btree_->Insert(Slice(EncodeZKey(elem, oid)), Slice(value)));
    level_mask_ |= 1ULL << elem.level;
  }

  ++build_stats_.objects;
  build_stats_.index_entries += decomp.elements.size();
  build_stats_.total_error += decomp.error();
  ++live_objects_;
  return oid;
}

Result<ObjectId> SpatialIndex::InsertPolygonLocked(const Polygon& poly,
                                                   ObjectId preassigned) {
  if (poly.size() < 3) {
    return Status::InvalidArgument("polygon needs at least 3 vertices");
  }
  if (options_.store_mbr_in_leaf) {
    return Status::InvalidArgument(
        "polygon objects are incompatible with store_mbr_in_leaf");
  }
  PolyRef ref;
  ZDB_ASSIGN_OR_RETURN(ref, polys_->Insert(poly));
  ObjectId oid;
  if (preassigned == kNoPreassignedOid) {
    ZDB_ASSIGN_OR_RETURN(oid, store_->Insert(poly.Bounds(), ref));
  } else {
    oid = preassigned;
    ZDB_RETURN_IF_ERROR(store_->InsertAt(oid, poly.Bounds(), ref));
  }
  {
    // Flip the record to polygon kind.
    ObjectRecord rec;
    ZDB_ASSIGN_OR_RETURN(rec, store_->Fetch(oid));
    rec.kind = ObjectKind::kPolygon;
    ZDB_RETURN_IF_ERROR(store_->Rewrite(oid, rec));
  }

  const PolygonRegion region(&poly);
  const RegionDecomposition decomp =
      DecomposeRegion(region, mapper_, options_.data);
  for (const ZElement& elem : decomp.elements) {
    ZDB_RETURN_IF_ERROR(
        btree_->Insert(Slice(EncodeZKey(elem, oid)), Slice()));
    level_mask_ |= 1ULL << elem.level;
  }

  ++build_stats_.objects;
  build_stats_.index_entries += decomp.elements.size();
  build_stats_.total_error += decomp.error();
  ++live_objects_;
  return oid;
}

Status SpatialIndex::EraseLocked(ObjectId oid) {
  ObjectRecord rec;
  ZDB_ASSIGN_OR_RETURN(rec, store_->Fetch(oid));
  if (!rec.live) return Status::NotFound("object already erased");

  // Recompute the (deterministic) decomposition to find the entries.
  std::vector<ZElement> elements;
  if (rec.kind == ObjectKind::kPolygon) {
    Polygon poly;
    ZDB_ASSIGN_OR_RETURN(poly, polys_->Fetch(rec.payload));
    const PolygonRegion region(&poly);
    elements = DecomposeRegion(region, mapper_, options_.data).elements;
  } else {
    elements =
        Decompose(mapper_.ToGrid(rec.mbr), options_.grid_bits, options_.data)
            .elements;
  }
  for (const ZElement& elem : elements) {
    ZDB_RETURN_IF_ERROR(btree_->Delete(Slice(EncodeZKey(elem, oid))));
  }
  ZDB_RETURN_IF_ERROR(store_->Erase(oid));
  --live_objects_;
  return Status::OK();
}

// ------------------------------------------------------------- refinement

Result<bool> SpatialIndex::RecordIntersects(const ObjectRecord& rec,
                                            const Rect& window) {
  if (!rec.mbr.Intersects(window)) return false;
  if (rec.kind == ObjectKind::kRect) return true;
  Polygon poly;
  ZDB_ASSIGN_OR_RETURN(poly, polys_->Fetch(rec.payload));
  return poly.Intersects(window);
}

Result<double> SpatialIndex::DistanceTo(ObjectId oid, const Point& p) {
  SharedSection lock(this);
  return DistanceToLocked(oid, p);
}

Result<double> SpatialIndex::DistanceToLocked(ObjectId oid, const Point& p) {
  ObjectRecord rec;
  ZDB_ASSIGN_OR_RETURN(rec, store_->Fetch(oid));
  if (rec.kind == ObjectKind::kRect) return rec.mbr.DistanceTo(p);
  Polygon poly;
  ZDB_ASSIGN_OR_RETURN(poly, polys_->Fetch(rec.payload));
  return poly.DistanceTo(p);
}

template <typename Predicate>
Result<std::vector<ObjectId>> SpatialIndex::Refine(
    std::vector<ObjectId> candidates, Predicate pred, QueryStats* stats) {
  std::vector<ObjectId> results;
  results.reserve(candidates.size());
  for (ObjectId oid : candidates) {
    ObjectRecord rec;
    ZDB_ASSIGN_OR_RETURN(rec, store_->Fetch(oid));
    bool keep = false;
    if (rec.live) {
      ZDB_ASSIGN_OR_RETURN(keep, pred(rec));
    }
    if (keep) {
      results.push_back(oid);
    } else if (stats != nullptr) {
      ++stats->false_hits;
    }
  }
  if (stats != nullptr) stats->results = results.size();
  return results;
}

Result<std::vector<ObjectId>> SpatialIndex::RefineWindowCandidates(
    const Rect& window, std::vector<ObjectId> candidates, QueryStats* stats) {
  if (options_.store_mbr_in_leaf) {
    // The filter already tested the replicated MBR against the window.
    if (stats != nullptr) stats->results = candidates.size();
    return candidates;
  }
  return Refine(
      std::move(candidates),
      [&](const ObjectRecord& rec) { return RecordIntersects(rec, window); },
      stats);
}

// ---------------------------------------------------------------- queries
//
// With snapshots enabled, the public queries pin the current epoch and
// run latch-free against the pinned version chains; a pin can race a
// group rollback that invalidates its epoch (rare: I/O failure), in
// which case the query re-pins — the re-published epoch is always
// valid — and retries. Without snapshots they take the shared latch as
// before.

/// Expands to the snapshot-pinned fast path of a public query: pin,
/// delegate to the *At variant, retry on a rolled-back epoch.
#define ZDB_SNAPSHOT_QUERY(AtCall)                                     \
  if (snapshots_enabled()) {                                           \
    for (int attempt = 0;; ++attempt) {                                \
      const EpochPin pin = PinEpoch();                                 \
      auto r = AtCall;                                                 \
      if (r.ok() || !r.status().IsAborted() || attempt >= 2) return r; \
    }                                                                  \
  }

Result<std::vector<ObjectId>> SpatialIndex::WindowQuery(const Rect& window,
                                                        QueryStats* stats) {
  ZDB_SNAPSHOT_QUERY(WindowQueryAt(pin, window, stats));
  SharedSection lock(this);
  return WindowQueryLocked(window, stats);
}

Result<std::vector<ObjectId>> SpatialIndex::WindowQueryLocked(
    const Rect& window, QueryStats* stats) {
  if (!window.valid()) {
    return Status::InvalidArgument("invalid query window");
  }
  const GridRect qgrid = mapper_.ToGrid(window);
  const std::function<bool(const Rect&)> leaf_pred = [&](const Rect& mbr) {
    return mbr.Intersects(window);
  };
  std::vector<ObjectId> candidates;
  ZDB_ASSIGN_OR_RETURN(candidates,
                       CollectCandidatesFiltered(qgrid, &leaf_pred, stats));
  if (options_.store_mbr_in_leaf) {
    if (stats != nullptr) stats->results = candidates.size();
    return candidates;
  }
  return Refine(
      std::move(candidates),
      [&](const ObjectRecord& rec) { return RecordIntersects(rec, window); },
      stats);
}

Result<std::vector<ObjectId>> SpatialIndex::PointQuery(const Point& p,
                                                       QueryStats* stats) {
  ZDB_SNAPSHOT_QUERY(PointQueryAt(pin, p, stats));
  SharedSection lock(this);
  return PointQueryLocked(p, stats);
}

Result<std::vector<ObjectId>> SpatialIndex::PointQueryLocked(
    const Point& p, QueryStats* stats) {
  const std::function<bool(const Rect&)> leaf_pred = [&](const Rect& mbr) {
    return mbr.Contains(p);
  };
  std::vector<ObjectId> candidates;
  ZDB_ASSIGN_OR_RETURN(
      candidates,
      CollectPointCandidatesFiltered(mapper_.ToGridX(p.x),
                                     mapper_.ToGridY(p.y), &leaf_pred,
                                     stats));
  if (options_.store_mbr_in_leaf) {
    if (stats != nullptr) stats->results = candidates.size();
    return candidates;
  }
  return Refine(
      std::move(candidates),
      [&](const ObjectRecord& rec) -> Result<bool> {
        if (!rec.mbr.Contains(p)) return false;
        if (rec.kind == ObjectKind::kRect) return true;
        Polygon poly;
        ZDB_ASSIGN_OR_RETURN(poly, polys_->Fetch(rec.payload));
        return poly.Contains(p);
      },
      stats);
}

Result<std::vector<ObjectId>> SpatialIndex::ContainmentQuery(
    const Rect& window, QueryStats* stats) {
  ZDB_SNAPSHOT_QUERY(ContainmentQueryAt(pin, window, stats));
  SharedSection lock(this);
  return ContainmentQueryLocked(window, stats);
}

Result<std::vector<ObjectId>> SpatialIndex::ContainmentQueryLocked(
    const Rect& window, QueryStats* stats) {
  if (!window.valid()) {
    return Status::InvalidArgument("invalid query window");
  }
  const GridRect qgrid = mapper_.ToGrid(window);
  const std::function<bool(const Rect&)> leaf_pred = [&](const Rect& mbr) {
    return window.Contains(mbr);
  };
  std::vector<ObjectId> candidates;
  ZDB_ASSIGN_OR_RETURN(candidates,
                       CollectCandidatesFiltered(qgrid, &leaf_pred, stats));
  if (options_.store_mbr_in_leaf) {
    if (stats != nullptr) stats->results = candidates.size();
    return candidates;
  }
  // A tight MBR inside the window implies the object is inside, for both
  // kinds.
  return Refine(
      std::move(candidates),
      [&](const ObjectRecord& rec) -> Result<bool> {
        return window.Contains(rec.mbr);
      },
      stats);
}

Result<std::vector<ObjectId>> SpatialIndex::EnclosureQuery(
    const Rect& window, QueryStats* stats) {
  ZDB_SNAPSHOT_QUERY(EnclosureQueryAt(pin, window, stats));
  SharedSection lock(this);
  return EnclosureQueryLocked(window, stats);
}

Result<std::vector<ObjectId>> SpatialIndex::EnclosureQueryLocked(
    const Rect& window, QueryStats* stats) {
  if (!window.valid()) {
    return Status::InvalidArgument("invalid query window");
  }
  const GridRect qgrid = mapper_.ToGrid(window);
  const std::function<bool(const Rect&)> leaf_pred = [&](const Rect& mbr) {
    return mbr.Contains(window);
  };
  std::vector<ObjectId> candidates;
  ZDB_ASSIGN_OR_RETURN(candidates,
                       CollectCandidatesFiltered(qgrid, &leaf_pred, stats));
  if (options_.store_mbr_in_leaf) {
    if (stats != nullptr) stats->results = candidates.size();
    return candidates;
  }
  return Refine(
      std::move(candidates),
      [&](const ObjectRecord& rec) -> Result<bool> {
        if (!rec.mbr.Contains(window)) return false;
        if (rec.kind == ObjectKind::kRect) return true;
        Polygon poly;
        ZDB_ASSIGN_OR_RETURN(poly, polys_->Fetch(rec.payload));
        return PolygonContainsRect(poly, window);
      },
      stats);
}

#undef ZDB_SNAPSHOT_QUERY

}  // namespace zdb
