// Copyright (c) zdb authors. Licensed under the MIT license.

#include "core/spatial_index.h"

#include "decompose/region.h"
#include "geom/clip.h"
#include "zorder/zkey.h"

namespace zdb {

Result<std::unique_ptr<SpatialIndex>> SpatialIndex::Create(
    BufferPool* pool, const SpatialIndexOptions& options) {
  if (options.grid_bits < 1 || options.grid_bits > kMaxGridBits) {
    return Status::InvalidArgument("grid_bits out of range");
  }
  std::unique_ptr<SpatialIndex> index(new SpatialIndex(pool, options));
  ZDB_ASSIGN_OR_RETURN(index->btree_, BTree::Create(pool));
  index->store_ = std::make_unique<ObjectStore>(pool);
  index->polys_ = std::make_unique<PolygonStore>(pool);
  return index;
}

Result<ObjectId> SpatialIndex::Insert(const Rect& mbr, uint32_t payload) {
  if (!mbr.valid()) return Status::InvalidArgument("invalid MBR");
  ObjectId oid;
  ZDB_ASSIGN_OR_RETURN(oid, store_->Insert(mbr, payload));

  const GridRect grect = mapper_.ToGrid(mbr);
  const Decomposition decomp =
      Decompose(grect, options_.grid_bits, options_.data);

  std::string value;
  if (options_.store_mbr_in_leaf) {
    value.resize(kEncodedRectSize);
    EncodeRect(mbr, value.data());
  }

  for (const ZElement& elem : decomp.elements) {
    ZDB_RETURN_IF_ERROR(
        btree_->Insert(Slice(EncodeZKey(elem, oid)), Slice(value)));
    level_mask_ |= 1ULL << elem.level;
  }

  ++build_stats_.objects;
  build_stats_.index_entries += decomp.elements.size();
  build_stats_.total_error += decomp.error();
  ++live_objects_;
  return oid;
}

Result<ObjectId> SpatialIndex::InsertPolygon(const Polygon& poly) {
  if (poly.size() < 3) {
    return Status::InvalidArgument("polygon needs at least 3 vertices");
  }
  if (options_.store_mbr_in_leaf) {
    return Status::InvalidArgument(
        "polygon objects are incompatible with store_mbr_in_leaf");
  }
  PolyRef ref;
  ZDB_ASSIGN_OR_RETURN(ref, polys_->Insert(poly));
  ObjectId oid;
  ZDB_ASSIGN_OR_RETURN(oid, store_->Insert(poly.Bounds(), ref));
  {
    // Flip the record to polygon kind.
    ObjectRecord rec;
    ZDB_ASSIGN_OR_RETURN(rec, store_->Fetch(oid));
    rec.kind = ObjectKind::kPolygon;
    ZDB_RETURN_IF_ERROR(store_->Rewrite(oid, rec));
  }

  const PolygonRegion region(&poly);
  const RegionDecomposition decomp =
      DecomposeRegion(region, mapper_, options_.data);
  for (const ZElement& elem : decomp.elements) {
    ZDB_RETURN_IF_ERROR(
        btree_->Insert(Slice(EncodeZKey(elem, oid)), Slice()));
    level_mask_ |= 1ULL << elem.level;
  }

  ++build_stats_.objects;
  build_stats_.index_entries += decomp.elements.size();
  build_stats_.total_error += decomp.error();
  ++live_objects_;
  return oid;
}

Status SpatialIndex::Erase(ObjectId oid) {
  ObjectRecord rec;
  ZDB_ASSIGN_OR_RETURN(rec, store_->Fetch(oid));
  if (!rec.live) return Status::NotFound("object already erased");

  // Recompute the (deterministic) decomposition to find the entries.
  std::vector<ZElement> elements;
  if (rec.kind == ObjectKind::kPolygon) {
    Polygon poly;
    ZDB_ASSIGN_OR_RETURN(poly, polys_->Fetch(rec.payload));
    const PolygonRegion region(&poly);
    elements = DecomposeRegion(region, mapper_, options_.data).elements;
  } else {
    elements =
        Decompose(mapper_.ToGrid(rec.mbr), options_.grid_bits, options_.data)
            .elements;
  }
  for (const ZElement& elem : elements) {
    ZDB_RETURN_IF_ERROR(btree_->Delete(Slice(EncodeZKey(elem, oid))));
  }
  ZDB_RETURN_IF_ERROR(store_->Erase(oid));
  --live_objects_;
  return Status::OK();
}

// ------------------------------------------------------------- refinement

Result<bool> SpatialIndex::RecordIntersects(const ObjectRecord& rec,
                                            const Rect& window) {
  if (!rec.mbr.Intersects(window)) return false;
  if (rec.kind == ObjectKind::kRect) return true;
  Polygon poly;
  ZDB_ASSIGN_OR_RETURN(poly, polys_->Fetch(rec.payload));
  return poly.Intersects(window);
}

Result<double> SpatialIndex::DistanceTo(ObjectId oid, const Point& p) {
  ObjectRecord rec;
  ZDB_ASSIGN_OR_RETURN(rec, store_->Fetch(oid));
  if (rec.kind == ObjectKind::kRect) return rec.mbr.DistanceTo(p);
  Polygon poly;
  ZDB_ASSIGN_OR_RETURN(poly, polys_->Fetch(rec.payload));
  return poly.DistanceTo(p);
}

template <typename Predicate>
Result<std::vector<ObjectId>> SpatialIndex::Refine(
    std::vector<ObjectId> candidates, Predicate pred, QueryStats* stats) {
  std::vector<ObjectId> results;
  results.reserve(candidates.size());
  for (ObjectId oid : candidates) {
    ObjectRecord rec;
    ZDB_ASSIGN_OR_RETURN(rec, store_->Fetch(oid));
    bool keep = false;
    if (rec.live) {
      ZDB_ASSIGN_OR_RETURN(keep, pred(rec));
    }
    if (keep) {
      results.push_back(oid);
    } else if (stats != nullptr) {
      ++stats->false_hits;
    }
  }
  if (stats != nullptr) stats->results = results.size();
  return results;
}

Result<std::vector<ObjectId>> SpatialIndex::RefineWindowCandidates(
    const Rect& window, std::vector<ObjectId> candidates, QueryStats* stats) {
  if (options_.store_mbr_in_leaf) {
    // The filter already tested the replicated MBR against the window.
    if (stats != nullptr) stats->results = candidates.size();
    return candidates;
  }
  return Refine(
      std::move(candidates),
      [&](const ObjectRecord& rec) { return RecordIntersects(rec, window); },
      stats);
}

// ---------------------------------------------------------------- queries

Result<std::vector<ObjectId>> SpatialIndex::WindowQuery(const Rect& window,
                                                        QueryStats* stats) {
  if (!window.valid()) {
    return Status::InvalidArgument("invalid query window");
  }
  const GridRect qgrid = mapper_.ToGrid(window);
  const std::function<bool(const Rect&)> leaf_pred = [&](const Rect& mbr) {
    return mbr.Intersects(window);
  };
  std::vector<ObjectId> candidates;
  ZDB_ASSIGN_OR_RETURN(candidates,
                       CollectCandidatesFiltered(qgrid, &leaf_pred, stats));
  if (options_.store_mbr_in_leaf) {
    if (stats != nullptr) stats->results = candidates.size();
    return candidates;
  }
  return Refine(
      std::move(candidates),
      [&](const ObjectRecord& rec) { return RecordIntersects(rec, window); },
      stats);
}

Result<std::vector<ObjectId>> SpatialIndex::PointQuery(const Point& p,
                                                       QueryStats* stats) {
  const std::function<bool(const Rect&)> leaf_pred = [&](const Rect& mbr) {
    return mbr.Contains(p);
  };
  std::vector<ObjectId> candidates;
  ZDB_ASSIGN_OR_RETURN(
      candidates,
      CollectPointCandidatesFiltered(mapper_.ToGridX(p.x),
                                     mapper_.ToGridY(p.y), &leaf_pred,
                                     stats));
  if (options_.store_mbr_in_leaf) {
    if (stats != nullptr) stats->results = candidates.size();
    return candidates;
  }
  return Refine(
      std::move(candidates),
      [&](const ObjectRecord& rec) -> Result<bool> {
        if (!rec.mbr.Contains(p)) return false;
        if (rec.kind == ObjectKind::kRect) return true;
        Polygon poly;
        ZDB_ASSIGN_OR_RETURN(poly, polys_->Fetch(rec.payload));
        return poly.Contains(p);
      },
      stats);
}

Result<std::vector<ObjectId>> SpatialIndex::ContainmentQuery(
    const Rect& window, QueryStats* stats) {
  if (!window.valid()) {
    return Status::InvalidArgument("invalid query window");
  }
  const GridRect qgrid = mapper_.ToGrid(window);
  const std::function<bool(const Rect&)> leaf_pred = [&](const Rect& mbr) {
    return window.Contains(mbr);
  };
  std::vector<ObjectId> candidates;
  ZDB_ASSIGN_OR_RETURN(candidates,
                       CollectCandidatesFiltered(qgrid, &leaf_pred, stats));
  if (options_.store_mbr_in_leaf) {
    if (stats != nullptr) stats->results = candidates.size();
    return candidates;
  }
  // A tight MBR inside the window implies the object is inside, for both
  // kinds.
  return Refine(
      std::move(candidates),
      [&](const ObjectRecord& rec) -> Result<bool> {
        return window.Contains(rec.mbr);
      },
      stats);
}

Result<std::vector<ObjectId>> SpatialIndex::EnclosureQuery(
    const Rect& window, QueryStats* stats) {
  if (!window.valid()) {
    return Status::InvalidArgument("invalid query window");
  }
  const GridRect qgrid = mapper_.ToGrid(window);
  const std::function<bool(const Rect&)> leaf_pred = [&](const Rect& mbr) {
    return mbr.Contains(window);
  };
  std::vector<ObjectId> candidates;
  ZDB_ASSIGN_OR_RETURN(candidates,
                       CollectCandidatesFiltered(qgrid, &leaf_pred, stats));
  if (options_.store_mbr_in_leaf) {
    if (stats != nullptr) stats->results = candidates.size();
    return candidates;
  }
  return Refine(
      std::move(candidates),
      [&](const ObjectRecord& rec) -> Result<bool> {
        if (!rec.mbr.Contains(window)) return false;
        if (rec.kind == ObjectKind::kRect) return true;
        Polygon poly;
        ZDB_ASSIGN_OR_RETURN(poly, polys_->Fetch(rec.payload));
        return PolygonContainsRect(poly, window);
      },
      stats);
}

}  // namespace zdb
