// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Synchronous client for the zdb wire protocol (net/wire.h): one
// blocking request/reply exchange per call over a single connection.
// Not thread-safe — use one Client per thread (the server multiplexes
// connections cheaply).
//
// Server-side typed errors are rebuilt as the Status the engine
// produced, through the bidirectional Status <-> WireError table in
// net/wire.h (BUSY -> Status::Busy, SHUTTING_DOWN -> Status::Unavailable,
// TIMED_OUT -> Status::TimedOut, ...). Protocol violations — malformed
// frames, version rejections — surface as Status::IOError.
//
// Query replies carry the server's write epoch just before and just
// after execution, so callers can cross-check results against per-epoch
// oracles exactly as the in-process stress tests do.

#ifndef ZDB_CLIENT_CLIENT_H_
#define ZDB_CLIENT_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/spatial_index.h"
#include "net/socket.h"
#include "net/wire.h"

namespace zdb {
namespace net {

/// Window / point / kNN reply: the ids (or scored hits) plus the epoch
/// bracket the server observed around execution.
struct QueryReply {
  uint64_t epoch_before = 0;
  uint64_t epoch_after = 0;
  std::vector<ObjectId> ids;
};

struct KnnReplyData {
  uint64_t epoch_before = 0;
  uint64_t epoch_after = 0;
  std::vector<std::pair<ObjectId, double>> hits;
};

struct ApplyReplyData {
  uint64_t epoch_after = 0;
  std::vector<ObjectId> inserted;  ///< oids assigned, in op order
};

class Client {
 public:
  [[nodiscard]] static Result<Client> ConnectTcp(const std::string& host, uint16_t port);
  [[nodiscard]] static Result<Client> ConnectUnix(const std::string& path);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  [[nodiscard]] Result<QueryReply> Window(const Rect& w);
  [[nodiscard]] Result<QueryReply> Point(const zdb::Point& p);
  [[nodiscard]] Result<KnnReplyData> Nearest(const zdb::Point& p, uint32_t k);
  /// Applies `batch` atomically on the server. kDurable (default) acks
  /// after the batch is fsynced — encoded exactly as wire v1, so it
  /// works against servers of any version. kPublished acks as soon as
  /// readers can see the batch (wire v2); a pre-v2 server rejects that
  /// flag and the call fails with a clear InvalidArgument.
  [[nodiscard]] Result<ApplyReplyData> Apply(const WriteBatch& batch,
                               Durability durability = Durability::kDurable);
  [[nodiscard]] Result<std::string> Stats();
  [[nodiscard]] Status Ping();
  /// Asks the daemon to shut down (the reply arrives before the server
  /// starts draining).
  [[nodiscard]] Status Shutdown();

  /// Closes the connection; further calls fail.
  void Close() { sock_.Close(); }
  bool connected() const { return sock_.valid(); }

 private:
  explicit Client(Socket sock) : sock_(std::move(sock)) {}

  /// Sends one request frame and blocks for the matching reply payload
  /// (validating magic/version/request id, surfacing typed errors as the
  /// Status codes documented above). `version` marks the request frame;
  /// plain requests send kMinWireVersion so any server accepts them.
  /// If `wire_err` is non-null it receives the reply's raw wire code.
  [[nodiscard]] Result<std::string> RoundTrip(Opcode op, std::string_view payload,
                                uint16_t version = kMinWireVersion,
                                WireError* wire_err = nullptr);

  Socket sock_;
  uint64_t next_request_id_ = 1;
  FrameAssembler assembler_;
};

}  // namespace net
}  // namespace zdb

#endif  // ZDB_CLIENT_CLIENT_H_
