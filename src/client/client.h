// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Synchronous client for the zdb wire protocol (net/wire.h): one
// blocking request/reply exchange per call. Not thread-safe — use one
// Client per thread (the server multiplexes connections cheaply).
//
// A Client is opened against one endpoint URI ("tcp://host:port" or
// "unix://path") and optionally knows a set of follower endpoints.
// ClientOptions::read_preference decides where queries go:
//
//   kLeader            everything on the primary connection (default —
//                      exactly the pre-replication behavior).
//   kFollower          WINDOW/POINT/KNN round-robin across the
//                      followers (lazily connected); writes and admin
//                      ops stay on the leader. An unreachable follower
//                      is skipped; with none reachable the leader
//                      serves the read.
//   kBoundedStaleness  like kFollower, but every query carries
//                      max_lag_epochs (wire v3). A follower lagging
//                      past the bound answers STALE_READ and the
//                      client transparently retries on the leader,
//                      which is never stale.
//
// Writes against a follower are answered NOT_LEADER with the leader's
// URI in the message; the client reconnects its primary channel there
// and retries once, so a caller pointed at the wrong node self-heals.
//
// Server-side typed errors are rebuilt as the Status the engine
// produced, through the bidirectional Status <-> WireError table in
// net/wire.h (BUSY -> Status::Busy, SHUTTING_DOWN -> Status::Unavailable,
// TIMED_OUT -> Status::TimedOut, ...). Protocol violations — malformed
// frames, version rejections — surface as Status::IOError.
//
// Query replies carry the server's write epoch just before and just
// after execution, so callers can cross-check results against per-epoch
// oracles exactly as the in-process stress tests do.

#ifndef ZDB_CLIENT_CLIENT_H_
#define ZDB_CLIENT_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/spatial_index.h"
#include "net/socket.h"
#include "net/wire.h"

namespace zdb {
namespace net {

/// Where queries (WINDOW/POINT/KNN) are routed.
enum class ReadPreference : uint8_t {
  kLeader,            ///< every request on the primary endpoint
  kFollower,          ///< queries round-robin across the followers
  kBoundedStaleness,  ///< followers, rejected past max_lag_epochs
};

struct ClientOptions {
  ReadPreference read_preference = ReadPreference::kLeader;
  /// kBoundedStaleness only: the maximum replication lag, in epochs,
  /// a query tolerates. Rides in the request (wire v3); a follower
  /// that cannot honor it rejects and the leader serves the read.
  uint64_t max_lag_epochs = 0;
  /// Follower endpoint URIs for read routing. Connected lazily, on
  /// first use; a dead follower is skipped and retried on later calls.
  std::vector<std::string> followers;
};

/// Window / point / kNN reply: the ids (or scored hits) plus the epoch
/// bracket the server observed around execution.
struct QueryReply {
  uint64_t epoch_before = 0;
  uint64_t epoch_after = 0;
  std::vector<ObjectId> ids;
};

struct KnnReplyData {
  uint64_t epoch_before = 0;
  uint64_t epoch_after = 0;
  std::vector<std::pair<ObjectId, double>> hits;
};

struct ApplyReplyData {
  uint64_t epoch_after = 0;
  std::vector<ObjectId> inserted;  ///< oids assigned, in op order
};

class Client {
 public:
  /// Opens a client against `endpoint` ("tcp://host:port" or
  /// "unix://path"). The connection is established eagerly; follower
  /// connections (if `options.followers` is non-empty) are lazy.
  [[nodiscard]] static Result<Client> Connect(const std::string& endpoint,
                                              ClientOptions options = {});

  /// Deprecated: use Connect("tcp://host:port"). Thin compatibility
  /// wrapper over Connect(); new call sites should pass a URI.
  [[nodiscard]] static Result<Client> ConnectTcp(const std::string& host, uint16_t port);
  /// Deprecated: use Connect("unix://path").
  [[nodiscard]] static Result<Client> ConnectUnix(const std::string& path);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  [[nodiscard]] Result<QueryReply> Window(const Rect& w);
  [[nodiscard]] Result<QueryReply> Point(const zdb::Point& p);
  [[nodiscard]] Result<KnnReplyData> Nearest(const zdb::Point& p, uint32_t k);
  /// Applies `batch` atomically on the server. kDurable (default) acks
  /// after the batch is fsynced — encoded exactly as wire v1, so it
  /// works against servers of any version. kPublished acks as soon as
  /// readers can see the batch (wire v2); a pre-v2 server rejects that
  /// flag and the call fails with a clear InvalidArgument. Against a
  /// follower the write is redirected to the leader (one retry).
  [[nodiscard]] Result<ApplyReplyData> Apply(const WriteBatch& batch,
                               Durability durability = Durability::kDurable);
  [[nodiscard]] Result<std::string> Stats();
  [[nodiscard]] Status Ping();
  /// Asks the daemon to shut down (the reply arrives before the server
  /// starts draining).
  [[nodiscard]] Status Shutdown();

  /// The endpoint the primary channel currently points at — updated
  /// when a NOT_LEADER redirect moves it.
  const std::string& endpoint() const { return endpoint_; }

  /// Closes every connection; further calls fail.
  void Close();
  bool connected() const { return primary_.sock.valid(); }

 private:
  /// One connection: socket + frame reassembly + request-id counter.
  /// Replaced wholesale on reconnect (a fresh assembler drops any
  /// poisoned framing state).
  struct Channel {
    Socket sock;
    uint64_t next_request_id = 1;
    FrameAssembler assembler;
  };

  Client(Channel primary, std::string endpoint, ClientOptions options);

  /// Sends one request frame on `ch` and blocks for the matching reply
  /// payload (validating magic/version/request id, surfacing typed
  /// errors as the Status codes documented above). `version` marks the
  /// request frame; plain requests send kMinWireVersion so any server
  /// accepts them. If `wire_err` is non-null it receives the reply's
  /// raw wire code (kOk when no reply arrived at all).
  [[nodiscard]] Result<std::string> RoundTripOn(Channel& ch, Opcode op,
                                  std::string_view payload,
                                  uint16_t version = kMinWireVersion,
                                  WireError* wire_err = nullptr);

  /// Round-trips on the primary channel, transparently following one
  /// NOT_LEADER redirect (the rejection message is the leader's URI).
  [[nodiscard]] Result<std::string> LeaderRoundTrip(Opcode op,
                                      std::string_view payload,
                                      uint16_t version = kMinWireVersion,
                                      WireError* wire_err = nullptr);

  /// Routes one query per the read preference; `encode` builds the
  /// payload for a given staleness bound.
  [[nodiscard]] Result<std::string> QueryRoundTrip(
      Opcode op, const std::function<std::string(uint64_t)>& encode);

  /// The follower channel at `idx`, connecting lazily; nullptr when
  /// the follower is unreachable right now.
  Channel* FollowerChannel(size_t idx);

  Channel primary_;
  std::string endpoint_;
  ClientOptions options_;
  /// Lazily connected follower channels, parallel to
  /// options_.followers. A slot resets to null on failure and is
  /// re-dialed on the next use.
  std::vector<std::unique_ptr<Channel>> followers_;
  size_t rr_ = 0;  ///< round-robin cursor over followers_
};

}  // namespace net
}  // namespace zdb

#endif  // ZDB_CLIENT_CLIENT_H_
