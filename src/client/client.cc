// Copyright (c) zdb authors. Licensed under the MIT license.

#include "client/client.h"

namespace zdb {
namespace net {

Client::Client(Channel primary, std::string endpoint, ClientOptions options)
    : primary_(std::move(primary)),
      endpoint_(std::move(endpoint)),
      options_(std::move(options)) {
  followers_.resize(options_.followers.size());
}

Result<Client> Client::Connect(const std::string& endpoint,
                               ClientOptions options) {
  for (const std::string& f : options.followers) {
    // Fail fast on a typo'd follower URI instead of at first query.
    ZDB_RETURN_IF_ERROR(ParseEndpoint(f).status());
  }
  Channel ch;
  ZDB_ASSIGN_OR_RETURN(ch.sock, ConnectEndpoint(endpoint));
  return Client(std::move(ch), endpoint, std::move(options));
}

Result<Client> Client::ConnectTcp(const std::string& host, uint16_t port) {
  return Connect("tcp://" + host + ":" + std::to_string(port));
}

Result<Client> Client::ConnectUnix(const std::string& path) {
  return Connect("unix://" + path);
}

void Client::Close() {
  primary_.sock.Close();
  for (auto& ch : followers_) {
    if (ch != nullptr) ch->sock.Close();
  }
}

Result<std::string> Client::RoundTripOn(Channel& ch, Opcode op,
                                        std::string_view payload,
                                        uint16_t version,
                                        WireError* wire_err) {
  if (wire_err != nullptr) *wire_err = WireError::kOk;
  if (!ch.sock.valid()) {
    return Status::Unavailable("client connection is closed");
  }
  const uint64_t id = ch.next_request_id++;
  const std::string frame = BuildFrame(op, 0, id, payload, version);
  ZDB_RETURN_IF_ERROR(WriteFully(ch.sock, frame.data(), frame.size()));

  char buf[16 * 1024];
  for (;;) {
    Frame reply;
    WireError err;
    FrameHeader err_header;
    const auto next = ch.assembler.Poll(&reply, &err, &err_header);
    if (next == FrameAssembler::Next::kError) {
      ch.sock.Close();
      return Status::IOError(std::string("reply framing error: ") +
                             WireErrorName(err));
    }
    if (next == FrameAssembler::Next::kNeedMore) {
      size_t n = 0;
      ZDB_ASSIGN_OR_RETURN(n, ReadSome(ch.sock, buf, sizeof(buf)));
      if (n == 0) {
        ch.sock.Close();
        return Status::Unavailable("server closed the connection");
      }
      ch.assembler.Feed(buf, n);
      continue;
    }
    if ((reply.header.flags & kFlagReply) == 0 ||
        reply.header.request_id != id ||
        reply.header.opcode != static_cast<uint8_t>(op)) {
      // Single in-flight request per connection: anything else is a
      // protocol violation, and the stream can't be trusted after it.
      ch.sock.Close();
      return Status::IOError("reply does not match the request");
    }

    std::string_view body;
    std::string message;
    const WireError status = ParseReplyStatus(reply.payload, &body, &message);
    if (wire_err != nullptr) *wire_err = status;
    if (status == WireError::kOk) return std::string(body);
    // Protocol-level rejections (framing, version) poison the stream on
    // the server side — it closes after replying, so mirror that here.
    switch (status) {
      case WireError::kMalformed:
      case WireError::kUnknownOpcode:
      case WireError::kBadVersion:
      case WireError::kFrameTooLarge:
      case WireError::kBadMagic:
        if (status != WireError::kMalformed &&
            status != WireError::kUnknownOpcode) {
          ch.sock.Close();
        }
        return Status::IOError(std::string("server rejected request: ") +
                               WireErrorName(status) +
                               (message.empty() ? "" : ": " + message));
      default:
        // Engine-side Status codes cross the wire losslessly.
        return WireErrorToStatus(status, std::move(message));
    }
  }
}

Result<std::string> Client::LeaderRoundTrip(Opcode op,
                                            std::string_view payload,
                                            uint16_t version,
                                            WireError* wire_err) {
  for (int attempt = 0;; ++attempt) {
    WireError err = WireError::kOk;
    auto r = RoundTripOn(primary_, op, payload, version, &err);
    if (wire_err != nullptr) *wire_err = err;
    if (r.ok() || err != WireError::kNotLeader || attempt > 0) return r;
    // NOT_LEADER carries the real leader's URI in the message: move the
    // primary channel there and retry once. A fresh Channel resets the
    // assembler and request-id stream along with the socket.
    const std::string redirect(r.status().message());
    if (redirect.empty()) return r;
    auto redialed = ConnectEndpoint(redirect);
    if (!redialed.ok()) return r;
    primary_ = Channel{};
    primary_.sock = std::move(redialed.value());
    endpoint_ = redirect;
  }
}

Client::Channel* Client::FollowerChannel(size_t idx) {
  std::unique_ptr<Channel>& slot = followers_[idx];
  if (slot != nullptr && slot->sock.valid()) return slot.get();
  auto s = ConnectEndpoint(options_.followers[idx]);
  if (!s.ok()) {
    slot.reset();
    return nullptr;
  }
  slot = std::make_unique<Channel>();
  slot->sock = std::move(s.value());
  return slot.get();
}

Result<std::string> Client::QueryRoundTrip(
    Opcode op, const std::function<std::string(uint64_t)>& encode) {
  const bool bounded =
      options_.read_preference == ReadPreference::kBoundedStaleness;
  const uint64_t bound = bounded ? options_.max_lag_epochs
                                 : kNoStalenessBound;
  // A bound rides as the wire-v3 trailer; without one the payload is
  // byte-identical to v1, so the frame says v1 and any server takes it.
  const std::string payload = encode(bound);
  const uint16_t version = bounded ? uint16_t{3} : kMinWireVersion;

  if (options_.read_preference != ReadPreference::kLeader &&
      !followers_.empty()) {
    for (size_t i = 0; i < followers_.size(); ++i) {
      const size_t idx = (rr_ + i) % followers_.size();
      Channel* ch = FollowerChannel(idx);
      if (ch == nullptr) continue;  // unreachable; try the next
      WireError err = WireError::kOk;
      auto r = RoundTripOn(*ch, op, payload, version, &err);
      if (r.ok()) {
        rr_ = (idx + 1) % followers_.size();
        return r;
      }
      if (err == WireError::kStaleRead) break;  // leader is never stale
      if (err != WireError::kOk) {
        // The follower answered with a real engine error (bad rect,
        // busy, ...) — that is the result, not a routing failure.
        return r;
      }
      // No reply at all (connect reset, framing loss): drop the channel
      // so the next call re-dials, and try the next follower.
      followers_[idx].reset();
    }
  }
  return LeaderRoundTrip(op, payload, version);
}

Result<QueryReply> Client::Window(const Rect& w) {
  std::string body;
  ZDB_ASSIGN_OR_RETURN(
      body, QueryRoundTrip(Opcode::kWindow, [&](uint64_t max_lag) {
        return EncodeWindowRequest(w, max_lag);
      }));
  QueryReply out;
  if (!DecodeIdListReplyBody(body, &out.epoch_before, &out.epoch_after,
                             &out.ids)) {
    return Status::IOError("malformed WINDOW reply body");
  }
  return out;
}

Result<QueryReply> Client::Point(const zdb::Point& p) {
  std::string body;
  ZDB_ASSIGN_OR_RETURN(
      body, QueryRoundTrip(Opcode::kPoint, [&](uint64_t max_lag) {
        return EncodePointRequest(p, max_lag);
      }));
  QueryReply out;
  if (!DecodeIdListReplyBody(body, &out.epoch_before, &out.epoch_after,
                             &out.ids)) {
    return Status::IOError("malformed POINT reply body");
  }
  return out;
}

Result<KnnReplyData> Client::Nearest(const zdb::Point& p, uint32_t k) {
  std::string body;
  ZDB_ASSIGN_OR_RETURN(
      body, QueryRoundTrip(Opcode::kKnn, [&](uint64_t max_lag) {
        return EncodeKnnRequest(p, k, max_lag);
      }));
  KnnReplyData out;
  if (!DecodeKnnReplyBody(body, &out.epoch_before, &out.epoch_after,
                          &out.hits)) {
    return Status::IOError("malformed KNN reply body");
  }
  return out;
}

Result<ApplyReplyData> Client::Apply(const WriteBatch& batch,
                                     Durability durability) {
  // kDurable encodes as pure wire v1; only the explicit kPublished flag
  // needs a v2 frame (and a v2 server).
  const bool flagged = durability != Durability::kDurable;
  const uint16_t version = flagged ? uint16_t{2} : kMinWireVersion;
  WireError wire_err = WireError::kOk;
  auto r = LeaderRoundTrip(Opcode::kApply,
                           EncodeApplyRequest(batch, durability), version,
                           &wire_err);
  if (!r.ok()) {
    if (flagged && (wire_err == WireError::kBadVersion ||
                    wire_err == WireError::kMalformed)) {
      return Status::InvalidArgument(
          "server does not support the APPLY durability flag (wire v1); "
          "upgrade the server or use Durability::kDurable");
    }
    return r.status();
  }
  ApplyReplyData out;
  if (!DecodeApplyReplyBody(r.value(), &out.epoch_after, &out.inserted)) {
    return Status::IOError("malformed APPLY reply body");
  }
  return out;
}

Result<std::string> Client::Stats() {
  std::string body;
  ZDB_ASSIGN_OR_RETURN(body, LeaderRoundTrip(Opcode::kStats, {}));
  std::string json;
  if (!DecodeStatsReplyBody(body, &json)) {
    return Status::IOError("malformed STATS reply body");
  }
  return json;
}

Status Client::Ping() { return LeaderRoundTrip(Opcode::kPing, {}).status(); }

Status Client::Shutdown() {
  return LeaderRoundTrip(Opcode::kShutdown, {}).status();
}

}  // namespace net
}  // namespace zdb
