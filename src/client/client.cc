// Copyright (c) zdb authors. Licensed under the MIT license.

#include "client/client.h"

namespace zdb {
namespace net {

Result<Client> Client::ConnectTcp(const std::string& host, uint16_t port) {
  Socket s;
  ZDB_ASSIGN_OR_RETURN(s, TcpConnect(host, port));
  return Client(std::move(s));
}

Result<Client> Client::ConnectUnix(const std::string& path) {
  Socket s;
  ZDB_ASSIGN_OR_RETURN(s, UnixConnect(path));
  return Client(std::move(s));
}

Result<std::string> Client::RoundTrip(Opcode op, std::string_view payload,
                                      uint16_t version, WireError* wire_err) {
  if (wire_err != nullptr) *wire_err = WireError::kOk;
  if (!sock_.valid()) {
    return Status::Unavailable("client connection is closed");
  }
  const uint64_t id = next_request_id_++;
  const std::string frame = BuildFrame(op, 0, id, payload, version);
  ZDB_RETURN_IF_ERROR(WriteFully(sock_, frame.data(), frame.size()));

  char buf[16 * 1024];
  for (;;) {
    Frame reply;
    WireError err;
    FrameHeader err_header;
    const auto next = assembler_.Poll(&reply, &err, &err_header);
    if (next == FrameAssembler::Next::kError) {
      sock_.Close();
      return Status::IOError(std::string("reply framing error: ") +
                             WireErrorName(err));
    }
    if (next == FrameAssembler::Next::kNeedMore) {
      size_t n = 0;
      ZDB_ASSIGN_OR_RETURN(n, ReadSome(sock_, buf, sizeof(buf)));
      if (n == 0) {
        sock_.Close();
        return Status::Unavailable("server closed the connection");
      }
      assembler_.Feed(buf, n);
      continue;
    }
    if ((reply.header.flags & kFlagReply) == 0 ||
        reply.header.request_id != id ||
        reply.header.opcode != static_cast<uint8_t>(op)) {
      // Single in-flight request per connection: anything else is a
      // protocol violation, and the stream can't be trusted after it.
      sock_.Close();
      return Status::IOError("reply does not match the request");
    }

    std::string_view body;
    std::string message;
    const WireError status = ParseReplyStatus(reply.payload, &body, &message);
    if (wire_err != nullptr) *wire_err = status;
    if (status == WireError::kOk) return std::string(body);
    // Protocol-level rejections (framing, version) poison the stream on
    // the server side — it closes after replying, so mirror that here.
    switch (status) {
      case WireError::kMalformed:
      case WireError::kUnknownOpcode:
      case WireError::kBadVersion:
      case WireError::kFrameTooLarge:
      case WireError::kBadMagic:
        if (status != WireError::kMalformed &&
            status != WireError::kUnknownOpcode) {
          sock_.Close();
        }
        return Status::IOError(std::string("server rejected request: ") +
                               WireErrorName(status) +
                               (message.empty() ? "" : ": " + message));
      default:
        // Engine-side Status codes cross the wire losslessly.
        return WireErrorToStatus(status, std::move(message));
    }
  }
}

Result<QueryReply> Client::Window(const Rect& w) {
  std::string body;
  ZDB_ASSIGN_OR_RETURN(body,
                       RoundTrip(Opcode::kWindow, EncodeWindowRequest(w)));
  QueryReply out;
  if (!DecodeIdListReplyBody(body, &out.epoch_before, &out.epoch_after,
                             &out.ids)) {
    return Status::IOError("malformed WINDOW reply body");
  }
  return out;
}

Result<QueryReply> Client::Point(const zdb::Point& p) {
  std::string body;
  ZDB_ASSIGN_OR_RETURN(body,
                       RoundTrip(Opcode::kPoint, EncodePointRequest(p)));
  QueryReply out;
  if (!DecodeIdListReplyBody(body, &out.epoch_before, &out.epoch_after,
                             &out.ids)) {
    return Status::IOError("malformed POINT reply body");
  }
  return out;
}

Result<KnnReplyData> Client::Nearest(const zdb::Point& p, uint32_t k) {
  std::string body;
  ZDB_ASSIGN_OR_RETURN(body,
                       RoundTrip(Opcode::kKnn, EncodeKnnRequest(p, k)));
  KnnReplyData out;
  if (!DecodeKnnReplyBody(body, &out.epoch_before, &out.epoch_after,
                          &out.hits)) {
    return Status::IOError("malformed KNN reply body");
  }
  return out;
}

Result<ApplyReplyData> Client::Apply(const WriteBatch& batch,
                                     Durability durability) {
  // kDurable encodes as pure wire v1; only the explicit kPublished flag
  // needs a v2 frame (and a v2 server).
  const bool flagged = durability != Durability::kDurable;
  const uint16_t version = flagged ? uint16_t{2} : kMinWireVersion;
  WireError wire_err = WireError::kOk;
  auto r = RoundTrip(Opcode::kApply, EncodeApplyRequest(batch, durability),
                     version, &wire_err);
  if (!r.ok()) {
    if (flagged && (wire_err == WireError::kBadVersion ||
                    wire_err == WireError::kMalformed)) {
      return Status::InvalidArgument(
          "server does not support the APPLY durability flag (wire v1); "
          "upgrade the server or use Durability::kDurable");
    }
    return r.status();
  }
  ApplyReplyData out;
  if (!DecodeApplyReplyBody(r.value(), &out.epoch_after, &out.inserted)) {
    return Status::IOError("malformed APPLY reply body");
  }
  return out;
}

Result<std::string> Client::Stats() {
  std::string body;
  ZDB_ASSIGN_OR_RETURN(body, RoundTrip(Opcode::kStats, {}));
  std::string json;
  if (!DecodeStatsReplyBody(body, &json)) {
    return Status::IOError("malformed STATS reply body");
  }
  return json;
}

Status Client::Ping() { return RoundTrip(Opcode::kPing, {}).status(); }

Status Client::Shutdown() {
  return RoundTrip(Opcode::kShutdown, {}).status();
}

}  // namespace net
}  // namespace zdb
