// Copyright (c) zdb authors. Licensed under the MIT license.

#include "shard/manifest.h"

#include <cstring>

#include "shard/routing.h"

namespace zdb {
namespace shard {

namespace {

constexpr char kMagic[4] = {'z', 's', 'h', 'm'};
constexpr uint32_t kVersion = 1;
constexpr size_t kManifestSize = 16;

uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

bool IsManifest(const File* file) {
  if (file->Size() < kManifestSize) return false;
  char magic[4];
  if (!file->Read(0, sizeof(magic), magic).ok()) return false;
  return std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
}

Result<ShardManifest> ReadManifest(const File* file) {
  char buf[kManifestSize];
  ZDB_RETURN_IF_ERROR(file->Read(0, sizeof(buf), buf));
  if (std::memcmp(buf, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad shard manifest magic");
  }
  const uint32_t version = LoadU32(buf + 4);
  if (version != kVersion) {
    return Status::Corruption("unsupported shard manifest version " +
                              std::to_string(version));
  }
  ShardManifest m;
  m.shard_count = LoadU32(buf + 8);
  if (m.shard_count < 2 || m.shard_count > kMaxShards) {
    return Status::Corruption("shard manifest count out of range: " +
                              std::to_string(m.shard_count));
  }
  return m;
}

Status WriteManifest(File* file, const ShardManifest& m) {
  char buf[kManifestSize] = {};
  std::memcpy(buf, kMagic, sizeof(kMagic));
  const uint32_t version = kVersion;
  std::memcpy(buf + 4, &version, sizeof(version));
  std::memcpy(buf + 8, &m.shard_count, sizeof(m.shard_count));
  ZDB_RETURN_IF_ERROR(file->Write(0, buf, sizeof(buf)));
  return file->Sync();
}

std::string ShardFilePath(const std::string& path, uint32_t shard) {
  return path + ".shard" + std::to_string(shard);
}

}  // namespace shard
}  // namespace zdb
