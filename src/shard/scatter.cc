// Copyright (c) zdb authors. Licensed under the MIT license.

#include "shard/scatter.h"

#include <algorithm>
#include <numeric>

namespace zdb {
namespace shard {

namespace {

/// Iterates the set bits of a shard mask.
template <typename Fn>
Status ForEachShard(uint64_t mask, Fn fn) {
  while (mask != 0) {
    const uint32_t s = static_cast<uint32_t>(__builtin_ctzll(mask));
    mask &= mask - 1;
    ZDB_RETURN_IF_ERROR(fn(s));
  }
  return Status::OK();
}

}  // namespace

std::vector<ObjectId> MergeIdLists(std::vector<std::vector<ObjectId>> lists) {
  if (lists.size() == 1) return std::move(lists[0]);
  size_t total = 0;
  for (const auto& l : lists) total += l.size();
  std::vector<ObjectId> merged;
  merged.reserve(total);
  for (auto& l : lists) {
    merged.insert(merged.end(), l.begin(), l.end());
  }
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  return merged;
}

Result<std::vector<ObjectId>> ScatterWindow(
    const std::vector<SpatialIndex*>& indexes, const ShardRouting& routing,
    const Rect& window, QueryStats* stats) {
  std::vector<std::vector<ObjectId>> lists;
  ZDB_RETURN_IF_ERROR(
      ForEachShard(routing.MaskForRect(window), [&](uint32_t s) -> Status {
        QueryStats local;
        std::vector<ObjectId> ids;
        ZDB_ASSIGN_OR_RETURN(ids, indexes[s]->WindowQuery(window, &local));
        if (stats != nullptr) stats->Add(local);
        lists.push_back(std::move(ids));
        return Status::OK();
      }));
  auto merged = MergeIdLists(std::move(lists));
  // Per-shard `results` counted replicated hits; report the deduped
  // answer the caller actually gets.
  if (stats != nullptr && routing.shards() > 1) {
    stats->results = merged.size();
  }
  return merged;
}

Result<std::vector<ObjectId>> ScatterPoint(
    const std::vector<SpatialIndex*>& indexes, const ShardRouting& routing,
    const Point& p, QueryStats* stats) {
  const SpaceMapper& m = routing.mapper();
  const uint32_t s = routing.ShardForCell(m.ToGridX(p.x), m.ToGridY(p.y));
  return indexes[s]->PointQuery(p, stats);
}

Result<std::vector<ObjectId>> ScatterContainment(
    const std::vector<SpatialIndex*>& indexes, const ShardRouting& routing,
    const Rect& window, QueryStats* stats) {
  std::vector<std::vector<ObjectId>> lists;
  ZDB_RETURN_IF_ERROR(
      ForEachShard(routing.MaskForRect(window), [&](uint32_t s) -> Status {
        QueryStats local;
        std::vector<ObjectId> ids;
        ZDB_ASSIGN_OR_RETURN(ids,
                             indexes[s]->ContainmentQuery(window, &local));
        if (stats != nullptr) stats->Add(local);
        lists.push_back(std::move(ids));
        return Status::OK();
      }));
  auto merged = MergeIdLists(std::move(lists));
  if (stats != nullptr && routing.shards() > 1) {
    stats->results = merged.size();
  }
  return merged;
}

Result<std::vector<ObjectId>> ScatterEnclosure(
    const std::vector<SpatialIndex*>& indexes, const ShardRouting& routing,
    const Rect& window, QueryStats* stats) {
  // An object enclosing the window covers the window's whole grid rect,
  // so it is replicated into every shard the window overlaps — any one
  // of them has the complete answer.
  const uint64_t mask = routing.MaskForRect(window);
  const uint32_t s = static_cast<uint32_t>(__builtin_ctzll(mask));
  return indexes[s]->EnclosureQuery(window, stats);
}

Result<std::vector<std::pair<ObjectId, double>>> ScatterNearest(
    const std::vector<SpatialIndex*>& indexes, const ShardRouting& routing,
    const Point& p, size_t k, QueryStats* stats) {
  std::vector<std::pair<ObjectId, double>> best;
  if (k == 0 || indexes.empty()) return best;
  if (indexes.size() == 1) return indexes[0]->NearestNeighbors(p, k, stats);

  // Frontier order: shards by mindist from p to their prefix regions.
  // The bound "every object in shard s is at least MinDistance(s, p)
  // away" holds for query points inside the world rect (geometry is
  // clamped onto the grid, and for an inside point the nearest point of
  // any object's MBR lies inside its clamped grid rect). For an outside
  // point an object overhanging the world border can undercut the
  // bound, so pruning is disabled and every shard is visited.
  const bool prune = routing.mapper().world().Contains(p);
  std::vector<uint32_t> order(routing.shards());
  std::iota(order.begin(), order.end(), 0u);
  std::vector<double> mindist(routing.shards());
  for (uint32_t s = 0; s < routing.shards(); ++s) {
    mindist[s] = routing.MinDistance(s, p);
  }
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (mindist[a] != mindist[b]) return mindist[a] < mindist[b];
    return a < b;
  });

  for (const uint32_t s : order) {
    // Strict inequality: a shard whose mindist ties the k-th distance
    // may still hold an equally distant object with a smaller oid (the
    // tie-break is (distance, oid) ascending).
    if (prune && best.size() >= k && best[k - 1].second < mindist[s]) break;
    QueryStats local;
    std::vector<std::pair<ObjectId, double>> part;
    ZDB_ASSIGN_OR_RETURN(part, indexes[s]->NearestNeighbors(p, k, &local));
    if (stats != nullptr) stats->Add(local);
    best.insert(best.end(), part.begin(), part.end());
    std::sort(best.begin(), best.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second < b.second;
      return a.first < b.first;
    });
    // Dedup replicated objects (identical exact distance on every
    // owning shard, so duplicates are adjacent after the sort).
    best.erase(std::unique(best.begin(), best.end(),
                           [](const auto& a, const auto& b) {
                             return a.first == b.first;
                           }),
               best.end());
    if (best.size() > k) best.resize(k);
  }
  if (stats != nullptr && routing.shards() > 1) {
    stats->results = best.size();
  }
  return best;
}

}  // namespace shard
}  // namespace zdb
