// Copyright (c) zdb authors. Licensed under the MIT license.

#include "shard/engine.h"

#include <cstring>
#include <utility>

#include "storage/file.h"

namespace zdb {
namespace shard {

namespace {

/// First page allocated after formatting: the engine's one-page catalog,
/// holding the spatial index's master page id at offset 0. Reserving it
/// up front pins it at a well-known id so Open never needs a directory.
constexpr PageId kCatalogPage = 1;

bool IsMemoryPath(const std::string& path) {
  return path.empty() || path == ":memory:";
}

}  // namespace

ShardEngine::~ShardEngine() {
  // The index owns the group-commit thread; destroy it (draining
  // durability) before the pool/pager it writes through.
  index_.reset();
  pool_.reset();
  pager_.reset();
}

Result<std::unique_ptr<ShardEngine>> ShardEngine::Open(
    const std::string& path, const ShardEngineOptions& options) {
  if (options.cache_pages == 0) {
    return Status::InvalidArgument("cache_pages must be >= 1");
  }
  std::unique_ptr<ShardEngine> eng(new ShardEngine());

  std::unique_ptr<File> file, journal;
  bool fresh = true;
  if (IsMemoryPath(path)) {
    file = std::make_unique<MemFile>();
    if (options.memory_journal) journal = std::make_unique<MemFile>();
  } else {
    ZDB_ASSIGN_OR_RETURN(file, PosixFile::Open(path));
    ZDB_ASSIGN_OR_RETURN(journal, PosixFile::Open(path + "-journal"));
    fresh = file->Size() == 0;
  }
  eng->journaled_ = journal != nullptr;

  // Pager::Open with a journal runs crash recovery: a batch interrupted
  // before its commit — including a group of published-but-not-durable
  // write batches — is rolled back here, as a unit.
  if (journal != nullptr) {
    ZDB_ASSIGN_OR_RETURN(
        eng->pager_,
        Pager::Open(std::move(file), std::move(journal), options.page_size));
  } else {
    ZDB_ASSIGN_OR_RETURN(eng->pager_,
                         Pager::Open(std::move(file), options.page_size));
  }
  Pager* pager = eng->pager_.get();
  eng->pool_ = std::make_unique<BufferPool>(pager, options.cache_pages);
  BufferPool* pool = eng->pool_.get();

  if (fresh) {
    // Create: reserve the catalog page, build an empty index, and make
    // the formatted state durable as one atomic batch (journaled
    // engines).
    const bool batch = eng->journaled_;
    if (batch) ZDB_RETURN_IF_ERROR(pager->BeginBatch());
    {
      PageRef catalog;
      ZDB_ASSIGN_OR_RETURN(catalog, pool->New());
      if (catalog.id() != kCatalogPage) {
        return Status::Corruption("catalog page landed at page " +
                                  std::to_string(catalog.id()));
      }
      std::memset(catalog.mutable_data(), 0, sizeof(PageId));
    }
    ZDB_ASSIGN_OR_RETURN(eng->index_,
                         SpatialIndex::Create(pool, options.index));
    PageId master;
    ZDB_ASSIGN_OR_RETURN(master, eng->index_->Checkpoint());
    {
      PageRef catalog;
      ZDB_ASSIGN_OR_RETURN(catalog, pool->Fetch(kCatalogPage));
      std::memcpy(catalog.mutable_data(), &master, sizeof(master));
    }
    ZDB_RETURN_IF_ERROR(pool->FlushAll());
    ZDB_RETURN_IF_ERROR(batch ? pager->CommitBatch() : pager->Sync());
  } else {
    PageId master = kInvalidPageId;
    {
      PageRef catalog;
      ZDB_ASSIGN_OR_RETURN(catalog, pool->Fetch(kCatalogPage));
      std::memcpy(&master, catalog.data(), sizeof(master));
    }
    ZDB_ASSIGN_OR_RETURN(eng->index_, SpatialIndex::Open(pool, master));
  }

  if (eng->journaled_ && options.group_commit) {
    ZDB_RETURN_IF_ERROR(eng->index_->StartGroupCommit());
  }
  if (options.snapshot_reads) {
    ZDB_RETURN_IF_ERROR(eng->index_->EnableSnapshots());
  }
  return eng;
}

Status ShardEngine::Checkpoint() {
  if (index_->group_commit_active()) {
    // Everything written is already published; durability is the
    // pipeline's job — just wait it out.
    return index_->WaitDurable(index_->write_epoch());
  }
  Pager* pager = pager_.get();
  if (journaled_ && !pager->in_batch()) {
    ZDB_RETURN_IF_ERROR(pager->BeginBatch());
    Status st = index_->Checkpoint().status();
    if (st.ok()) st = pool_->FlushAll();
    if (st.ok()) st = pager->CommitBatch();
    if (!st.ok() && pager->in_batch()) {
      Status undo = pager->AbortBatch();
      if (!undo.ok()) {
        return Status::Corruption("checkpoint failed (" + st.ToString() +
                                  ") and rollback failed too: " +
                                  undo.ToString());
      }
    }
    return st;
  }
  ZDB_RETURN_IF_ERROR(index_->Checkpoint().status());
  ZDB_RETURN_IF_ERROR(pool_->FlushAll());
  return pager->Sync();
}

}  // namespace shard
}  // namespace zdb
