// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Scatter-gather queries over a set of shard engines. Free functions so
// both the ShardRouter (serial queries through zdb::DB) and the
// QueryExecutor (cross-shard batch parallelism) run the exact same
// gather semantics:
//
//   * window/containment scatter only to the shards whose prefix region
//     intersects the query rect, gather the per-shard sorted id lists
//     and dedup by oid (a straddling object answers from every owning
//     shard with the same global oid);
//   * point queries route to exactly one shard (a grid cell has one
//     owner and any object containing the point is replicated there);
//   * enclosure needs only one overlapping shard (an object enclosing
//     the window covers the window's whole grid rect, so every
//     overlapping shard holds it);
//   * kNN runs a best-first frontier over the shards ordered by mindist
//     to their prefix regions — shards provably farther than the k-th
//     candidate are never opened.
//
// Each per-shard query is individually consistent (latched or
// epoch-pinned inside that engine); the gathered answer spans one
// consistent state per shard, not one global state. See DESIGN.md
// "Sharded partitions" for the cross-shard consistency contract.

#ifndef ZDB_SHARD_SCATTER_H_
#define ZDB_SHARD_SCATTER_H_

#include <utility>
#include <vector>

#include "core/spatial_index.h"
#include "shard/routing.h"

namespace zdb {
namespace shard {

Result<std::vector<ObjectId>> ScatterWindow(
    const std::vector<SpatialIndex*>& indexes, const ShardRouting& routing,
    const Rect& window, QueryStats* stats = nullptr);

Result<std::vector<ObjectId>> ScatterPoint(
    const std::vector<SpatialIndex*>& indexes, const ShardRouting& routing,
    const Point& p, QueryStats* stats = nullptr);

Result<std::vector<ObjectId>> ScatterContainment(
    const std::vector<SpatialIndex*>& indexes, const ShardRouting& routing,
    const Rect& window, QueryStats* stats = nullptr);

Result<std::vector<ObjectId>> ScatterEnclosure(
    const std::vector<SpatialIndex*>& indexes, const ShardRouting& routing,
    const Rect& window, QueryStats* stats = nullptr);

Result<std::vector<std::pair<ObjectId, double>>> ScatterNearest(
    const std::vector<SpatialIndex*>& indexes, const ShardRouting& routing,
    const Point& p, size_t k, QueryStats* stats = nullptr);

/// Merges per-shard sorted-by-oid result lists into one sorted,
/// oid-deduplicated list (the gather half of window/containment).
std::vector<ObjectId> MergeIdLists(std::vector<std::vector<ObjectId>> lists);

}  // namespace shard
}  // namespace zdb

#endif  // ZDB_SHARD_SCATTER_H_
