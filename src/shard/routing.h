// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Z-prefix shard routing: the pure-math half of the sharding subsystem.
// The z-order keyspace is split on its top `prefix_bits` Morton bits
// into 2^prefix_bits contiguous z-intervals ("prefix regions" — each a
// rectangle of grid cells, exactly like a level-prefix_bits ZElement),
// and prefixes are dealt round-robin onto N shards. Because the paper's
// redundant decomposition already splits an object's z-elements on
// prefix boundaries, a boundary-straddling object simply belongs to
// every shard whose prefix region its MBR's grid rectangle intersects;
// the router replicates the whole object into each of those engines
// under its global oid and queries dedup by oid at gather time.
//
// Everything here is immutable after construction and safe to share
// across threads without locks.

#ifndef ZDB_SHARD_ROUTING_H_
#define ZDB_SHARD_ROUTING_H_

#include <cstdint>
#include <vector>

#include "geom/grid.h"
#include "geom/point.h"
#include "geom/rect.h"

namespace zdb {
namespace shard {

/// Shard masks are uint64_t bitmaps, which caps the fan-out.
inline constexpr uint32_t kMaxShards = 64;

class ShardRouting {
 public:
  /// `shards` in [1, kMaxShards]. The world/grid pair must match the
  /// engines' SpatialIndexOptions — routing and decomposition have to
  /// agree on the grid for "straddles a prefix boundary" to mean the
  /// same thing on both sides.
  ShardRouting(uint32_t shards, const Rect& world, uint32_t grid_bits);

  uint32_t shards() const { return shards_; }
  uint32_t prefix_bits() const { return prefix_bits_; }
  uint32_t prefixes() const { return 1u << prefix_bits_; }
  const SpaceMapper& mapper() const { return mapper_; }

  uint32_t ShardForPrefix(uint32_t prefix) const { return prefix % shards_; }

  /// The shard owning one full-resolution grid cell (point queries hit
  /// exactly this shard).
  uint32_t ShardForCell(GridCoord gx, GridCoord gy) const;

  /// Bitmap of shards whose prefix region intersects `g`. Never zero:
  /// the prefix regions partition the grid.
  uint64_t MaskForGridRect(const GridRect& g) const;

  /// As above for a world-space rect (clamped onto the grid like every
  /// other geometry in the engine).
  uint64_t MaskForRect(const Rect& r) const {
    return MaskForGridRect(mapper_.ToGrid(r));
  }

  uint64_t AllShardsMask() const {
    return shards_ == 64 ? ~0ULL : (1ULL << shards_) - 1;
  }

  /// The world-space rectangles of `shard`'s prefix regions (one per
  /// owned prefix). Used by the kNN frontier for mindist ordering.
  const std::vector<Rect>& WorldRegionsOf(uint32_t shard) const {
    return shard_world_[shard];
  }

  /// Minimum world-space distance from `p` to any region of `shard` —
  /// a lower bound on the distance to any object routed to the shard,
  /// provided `p` lies inside the world rect (an object overhanging the
  /// world border is clamped to border cells, so for an outside query
  /// point the bound does not hold; see ScatterNearest).
  double MinDistance(uint32_t shard, const Point& p) const;

 private:
  uint32_t shards_;
  uint32_t prefix_bits_;
  SpaceMapper mapper_;
  std::vector<GridRect> prefix_regions_;      ///< per prefix
  std::vector<std::vector<Rect>> shard_world_;  ///< per shard
};

}  // namespace shard
}  // namespace zdb

#endif  // ZDB_SHARD_ROUTING_H_
