// Copyright (c) zdb authors. Licensed under the MIT license.
//
// ShardEngine: one complete, self-contained engine stack — file,
// rollback journal, Pager, BufferPool, SpatialIndex, group-commit
// pipeline, epoch manager. zdb::DB always runs on ShardEngines: a
// single-shard DB owns exactly one (today's one-file layout, unchanged),
// a sharded DB owns N of them behind a ShardRouter, each with its own
// file pair, fsync pipeline and epoch domain. Every shard file is a
// standalone database file: the catalog-page format is byte-identical
// to a single-shard DB's, so a shard can be opened and inspected as an
// ordinary DB.

#ifndef ZDB_SHARD_ENGINE_H_
#define ZDB_SHARD_ENGINE_H_

#include <memory>
#include <string>

#include "core/spatial_index.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"

namespace zdb {
namespace shard {

/// Per-engine configuration (the engine-level subset of zdb::DBOptions;
/// DB::Open maps one onto the other).
struct ShardEngineOptions {
  SpatialIndexOptions index;
  uint32_t page_size = kDefaultPageSize;
  size_t cache_pages = 256;
  bool memory_journal = false;
  bool group_commit = true;
  bool snapshot_reads = true;
};

class ShardEngine {
 public:
  /// Opens (or creates) one engine stack. An empty path or ":memory:"
  /// is an in-memory engine (journaled only with memory_journal);
  /// anything else is a file whose rollback journal lives at
  /// `path + "-journal"` — crash recovery for this shard runs here,
  /// independent of every other shard.
  static Result<std::unique_ptr<ShardEngine>> Open(
      const std::string& path, const ShardEngineOptions& options);

  /// Stops the group-commit pipeline before the storage stack goes.
  ~ShardEngine();

  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  SpatialIndex* index() const { return index_.get(); }
  Pager* pager() const { return pager_.get(); }
  BufferPool* pool() const { return pool_.get(); }
  bool journaled() const { return journaled_; }

  /// Makes everything written to this engine durable: waits out the
  /// pipeline in group mode, or checkpoints + flushes + commits
  /// synchronously otherwise.
  Status Checkpoint();

 private:
  ShardEngine() = default;

  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<SpatialIndex> index_;
  bool journaled_ = false;
};

}  // namespace shard
}  // namespace zdb

#endif  // ZDB_SHARD_ENGINE_H_
