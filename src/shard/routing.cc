// Copyright (c) zdb authors. Licensed under the MIT license.

#include "shard/routing.h"

#include <cassert>

#include "zorder/morton.h"
#include "zorder/zelement.h"

namespace zdb {
namespace shard {

namespace {

/// Smallest b with 2^b >= n (prefix regions must be at least as
/// numerous as shards so round-robin dealing reaches every shard).
uint32_t PrefixBitsFor(uint32_t n) {
  uint32_t b = 0;
  while ((1u << b) < n) ++b;
  return b;
}

}  // namespace

ShardRouting::ShardRouting(uint32_t shards, const Rect& world,
                           uint32_t grid_bits)
    : shards_(shards),
      prefix_bits_(PrefixBitsFor(shards)),
      mapper_(world, grid_bits) {
  assert(shards_ >= 1 && shards_ <= kMaxShards);
  const uint32_t zbits = 2 * grid_bits;
  assert(prefix_bits_ <= zbits);
  const uint32_t nprefix = prefixes();
  prefix_regions_.reserve(nprefix);
  shard_world_.resize(shards_);
  for (uint32_t p = 0; p < nprefix; ++p) {
    const ZElement elem(static_cast<uint64_t>(p) << (zbits - prefix_bits_),
                        static_cast<uint8_t>(prefix_bits_),
                        static_cast<uint8_t>(grid_bits));
    prefix_regions_.push_back(elem.ToGridRect());
    shard_world_[ShardForPrefix(p)].push_back(
        mapper_.ToWorld(prefix_regions_.back()));
  }
}

uint32_t ShardRouting::ShardForCell(GridCoord gx, GridCoord gy) const {
  if (prefix_bits_ == 0) return 0;
  const uint64_t z = MortonEncode(gx, gy, mapper_.bits());
  const uint32_t prefix =
      static_cast<uint32_t>(z >> (2 * mapper_.bits() - prefix_bits_));
  return ShardForPrefix(prefix);
}

uint64_t ShardRouting::MaskForGridRect(const GridRect& g) const {
  if (shards_ == 1) return 1;
  uint64_t mask = 0;
  for (uint32_t p = 0; p < prefixes(); ++p) {
    if (prefix_regions_[p].Intersects(g)) {
      mask |= 1ULL << ShardForPrefix(p);
    }
  }
  return mask;
}

double ShardRouting::MinDistance(uint32_t shard, const Point& p) const {
  double best = -1.0;
  for (const Rect& r : shard_world_[shard]) {
    const double d = r.DistanceTo(p);
    if (best < 0.0 || d < best) best = d;
  }
  return best;
}

}  // namespace shard
}  // namespace zdb
