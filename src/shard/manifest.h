// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Multi-shard manifest. When a DB is opened with DBOptions::shards > 1
// on a file path, the main path holds only this 16-byte manifest —
//
//   bytes 0..3   magic "zshm"
//   bytes 4..7   format version (little-endian u32, currently 1)
//   bytes 8..11  shard count (little-endian u32, 2..kMaxShards)
//   bytes 12..15 reserved, zero
//
// — and shard i's standalone engine file lives at `path + ".shard<i>"`
// (with its rollback journal at the usual `<shard path>-journal`).
// DB::Open sniffs the magic before handing a file to the pager, so a
// sharded DB reopens as sharded regardless of the options passed (the
// stored layout wins, exactly like stored index options). A single-shard
// DB keeps today's one-file layout: its first page is pager-owned and
// never begins with the manifest magic.

#ifndef ZDB_SHARD_MANIFEST_H_
#define ZDB_SHARD_MANIFEST_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "storage/file.h"

namespace zdb {
namespace shard {

struct ShardManifest {
  uint32_t shard_count = 0;
};

/// True if `file` starts with the manifest magic.
bool IsManifest(const File* file);

/// Decodes and validates the manifest (magic, version, count bounds).
Result<ShardManifest> ReadManifest(const File* file);

/// Writes the manifest and syncs the file.
Status WriteManifest(File* file, const ShardManifest& m);

/// Engine file path of one shard of a sharded DB at `path`.
std::string ShardFilePath(const std::string& path, uint32_t shard);

}  // namespace shard
}  // namespace zdb

#endif  // ZDB_SHARD_MANIFEST_H_
