// Copyright (c) zdb authors. Licensed under the MIT license.

#include "shard/router.h"

#include <unordered_set>
#include <utility>

#include "shard/scatter.h"

namespace zdb {
namespace shard {

namespace {

/// Iterates the set bits of a shard mask.
template <typename Fn>
Status ForEachShard(uint64_t mask, Fn fn) {
  while (mask != 0) {
    const uint32_t s = static_cast<uint32_t>(__builtin_ctzll(mask));
    mask &= mask - 1;
    ZDB_RETURN_IF_ERROR(fn(s));
  }
  return Status::OK();
}

}  // namespace

ShardRouter::ShardRouter(std::vector<std::unique_ptr<ShardEngine>> engines,
                         ShardRouting routing)
    : engines_(std::move(engines)), routing_(std::move(routing)) {
  indexes_.reserve(engines_.size());
  for (const auto& e : engines_) indexes_.push_back(e->index());
  MutexLock el(epoch_mu_);
  shard_epochs_.assign(engines_.size(), 0);
  shard_batches_.assign(engines_.size(), 0);
}

Status ShardRouter::RecoverState() {
  MutexLock lock(router_mu_);
  uint32_t max_size = 0;
  for (SpatialIndex* ix : indexes_) {
    max_size = std::max(max_size, ix->objects()->size());
  }
  masks_.assign(max_size, 0);
  for (uint32_t s = 0; s < shards(); ++s) {
    ObjectStore* store = indexes_[s]->objects();
    for (ObjectId oid = 0; oid < store->size(); ++oid) {
      auto r = store->Fetch(oid);
      if (r.ok()) {
        if (r.value().live) masks_[oid] |= 1ULL << s;
      } else if (!r.status().IsNotFound()) {
        // Holes (pages this shard never saw) read as NotFound; anything
        // else is a real I/O problem.
        return r.status();
      }
    }
  }
  next_oid_ = max_size;
  uint64_t live = 0;
  for (uint64_t m : masks_) live += m != 0 ? 1 : 0;
  live_count_.store(live, std::memory_order_relaxed);
  return Status::OK();
}

// ----------------------------------------------------------------- writes

Status ShardRouter::PlanBatchLocked(const WriteBatch& batch, RoutePlan* plan) {
  plan->sub.resize(shards());
  plan->next_oid = next_oid_;
  std::unordered_set<ObjectId> erased;
  for (const WriteOp& op : batch.ops) {
    if (op.kind == WriteOp::Kind::kInsert) {
      if (op.preassigned != kNoPreassignedOid) {
        return Status::InvalidArgument(
            "preassigned oids are router-assigned in a sharded DB");
      }
      if (!op.mbr.valid()) return Status::InvalidArgument("invalid MBR");
      const ObjectId oid = plan->next_oid++;
      const uint64_t mask = routing_.MaskForRect(op.mbr);
      ZDB_RETURN_IF_ERROR(ForEachShard(mask, [&](uint32_t s) -> Status {
        plan->sub[s].InsertWithOid(op.mbr, oid, op.payload);
        return Status::OK();
      }));
      plan->insert_masks.emplace_back(oid, mask);
      plan->inserted.push_back(oid);
      plan->touched |= mask;
    } else {
      // Mirrors the single-engine validation (including its error
      // texts): erases must name live pre-batch objects, once each.
      if (op.oid >= next_oid_) return Status::NotFound("oid out of range");
      const uint64_t mask = masks_[op.oid];
      if (mask == 0) return Status::NotFound("object already erased");
      if (!erased.insert(op.oid).second) {
        return Status::NotFound("object erased twice in batch");
      }
      ZDB_RETURN_IF_ERROR(ForEachShard(mask, [&](uint32_t s) -> Status {
        plan->sub[s].Erase(op.oid);
        return Status::OK();
      }));
      plan->erase_oids.push_back(op.oid);
      plan->touched |= mask;
    }
  }
  return Status::OK();
}

Status ShardRouter::PlanReplicatedLocked(const WriteBatch& batch,
                                         RoutePlan* plan) {
  plan->sub.resize(shards());
  plan->next_oid = next_oid_;
  std::unordered_set<ObjectId> erased;
  for (const WriteOp& op : batch.ops) {
    if (op.kind == WriteOp::Kind::kInsert) {
      if (op.preassigned == kNoPreassignedOid) {
        return Status::InvalidArgument(
            "replicated insert lacks a leader-assigned oid");
      }
      if (!op.mbr.valid()) return Status::InvalidArgument("invalid MBR");
      const ObjectId oid = op.preassigned;
      if (oid < masks_.size() && masks_[oid] != 0) {
        return Status::InvalidArgument("replicated oid already live");
      }
      plan->next_oid = std::max(plan->next_oid, oid + 1);
      const uint64_t mask = routing_.MaskForRect(op.mbr);
      ZDB_RETURN_IF_ERROR(ForEachShard(mask, [&](uint32_t s) -> Status {
        plan->sub[s].InsertWithOid(op.mbr, oid, op.payload);
        return Status::OK();
      }));
      plan->insert_masks.emplace_back(oid, mask);
      plan->inserted.push_back(oid);
      plan->touched |= mask;
    } else {
      if (op.oid >= next_oid_) return Status::NotFound("oid out of range");
      const uint64_t mask = masks_[op.oid];
      if (mask == 0) return Status::NotFound("object already erased");
      if (!erased.insert(op.oid).second) {
        return Status::NotFound("object erased twice in batch");
      }
      ZDB_RETURN_IF_ERROR(ForEachShard(mask, [&](uint32_t s) -> Status {
        plan->sub[s].Erase(op.oid);
        return Status::OK();
      }));
      plan->erase_oids.push_back(op.oid);
      plan->touched |= mask;
    }
  }
  return Status::OK();
}

Status ShardRouter::FanOutLocked(RoutePlan* plan,
                                 std::vector<uint64_t>* wait_epochs) {
  // Publish per shard, in shard order. kPublished keeps the fan-out
  // I/O-free in group-commit mode; the caller waits durability outside
  // the router lock so concurrent batches overlap their fsyncs.
  for (uint32_t s = 0; s < shards(); ++s) {
    if (plan->sub[s].empty()) continue;
    auto r = indexes_[s]->ApplyBatch(plan->sub[s], Durability::kPublished);
    if (!r.ok()) {
      // Earlier shards already published their sub-batches; the
      // bookkeeping below is deliberately NOT committed, so the failed
      // batch's oids stay unknown to the router. See the header's
      // atomicity contract.
      return r.status();
    }
    // Monotonic and >= the sub-batch's publish epoch — a conservative
    // but always-correct durability wait target.
    (*wait_epochs)[s] = indexes_[s]->write_epoch();
  }

  next_oid_ = plan->next_oid;
  if (masks_.size() < next_oid_) masks_.resize(next_oid_, 0);
  for (const auto& [oid, mask] : plan->insert_masks) masks_[oid] = mask;
  for (const ObjectId oid : plan->erase_oids) masks_[oid] = 0;
  live_count_.fetch_add(plan->insert_masks.size(),
                        std::memory_order_relaxed);
  live_count_.fetch_sub(plan->erase_oids.size(), std::memory_order_relaxed);
  {
    MutexLock el(epoch_mu_);
    Status st = ForEachShard(plan->touched, [&](uint32_t s) -> Status {
      shard_epochs_[s] = (*wait_epochs)[s];
      ++shard_batches_[s];
      return Status::OK();
    });
    (void)st;  // the lambda never fails
  }
  epoch_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

Status ShardRouter::WaitShardsDurable(uint64_t touched,
                                      const std::vector<uint64_t>& wait_epochs,
                                      uint64_t timeout_ms) {
  return ForEachShard(touched, [&](uint32_t s) -> Status {
    if (!indexes_[s]->group_commit_active()) return Status::OK();
    return indexes_[s]->WaitDurable(wait_epochs[s], timeout_ms);
  });
}

Result<std::vector<ObjectId>> ShardRouter::Apply(const WriteBatch& batch,
                                                 Durability durability) {
  RoutePlan plan;
  std::vector<uint64_t> wait_epochs(shards(), 0);
  {
    MutexLock lock(router_mu_);
    ZDB_RETURN_IF_ERROR(PlanBatchLocked(batch, &plan));
    // A batch that validates empty is a no-op: nothing published, no
    // epoch bump — same as the single-engine contract.
    if (batch.empty()) return plan.inserted;
    ZDB_RETURN_IF_ERROR(FanOutLocked(&plan, &wait_epochs));
  }
  if (durability == Durability::kDurable) {
    ZDB_RETURN_IF_ERROR(WaitShardsDurable(plan.touched, wait_epochs, 0));
  }
  return plan.inserted;
}

Result<std::vector<ObjectId>> ShardRouter::ApplyReplicated(
    const WriteBatch& batch) {
  RoutePlan plan;
  std::vector<uint64_t> wait_epochs(shards(), 0);
  MutexLock lock(router_mu_);
  ZDB_RETURN_IF_ERROR(PlanReplicatedLocked(batch, &plan));
  if (batch.empty()) return plan.inserted;
  ZDB_RETURN_IF_ERROR(FanOutLocked(&plan, &wait_epochs));
  return plan.inserted;
}

Result<ObjectId> ShardRouter::Insert(const Rect& mbr, uint32_t payload) {
  WriteBatch batch;
  batch.Insert(mbr, payload);
  // Publish-time ack, like a single-op mutation on a group-commit
  // engine; use Apply(…, kDurable) to block on the fsync.
  std::vector<ObjectId> ids;
  ZDB_ASSIGN_OR_RETURN(ids, Apply(batch, Durability::kPublished));
  return ids[0];
}

Result<ObjectId> ShardRouter::InsertPolygon(const Polygon& poly) {
  // Polygons have no batch op; replicate through the engines' polygon
  // path under the router lock. Reject the predictable failures before
  // touching any shard so they cannot partially apply.
  if (poly.size() < 3) {
    return Status::InvalidArgument("polygon needs at least 3 vertices");
  }
  MutexLock lock(router_mu_);
  const ObjectId oid = next_oid_;
  const uint64_t mask = routing_.MaskForRect(poly.Bounds());
  std::vector<uint64_t> wait_epochs(shards(), 0);
  ZDB_RETURN_IF_ERROR(ForEachShard(mask, [&](uint32_t s) -> Status {
    auto r = indexes_[s]->InsertPolygon(poly, oid);
    if (!r.ok()) return r.status();
    wait_epochs[s] = indexes_[s]->write_epoch();
    return Status::OK();
  }));
  next_oid_ = oid + 1;
  masks_.resize(next_oid_, 0);
  masks_[oid] = mask;
  live_count_.fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock el(epoch_mu_);
    Status st = ForEachShard(mask, [&](uint32_t s) -> Status {
      shard_epochs_[s] = wait_epochs[s];
      ++shard_batches_[s];
      return Status::OK();
    });
    (void)st;
  }
  epoch_.fetch_add(1, std::memory_order_release);
  return oid;
}

Status ShardRouter::Erase(ObjectId oid) {
  WriteBatch batch;
  batch.Erase(oid);
  return Apply(batch, Durability::kPublished).status();
}

Status ShardRouter::BulkLoad(const std::vector<Rect>& data, double fill) {
  MutexLock lock(router_mu_);
  if (next_oid_ != 0) {
    return Status::InvalidArgument("bulk load into non-empty index");
  }
  for (const Rect& mbr : data) {
    if (!mbr.valid()) return Status::InvalidArgument("invalid MBR");
  }
  std::vector<std::vector<Rect>> shard_data(shards());
  std::vector<std::vector<ObjectId>> shard_oids(shards());
  std::vector<uint64_t> new_masks(data.size(), 0);
  for (size_t i = 0; i < data.size(); ++i) {
    const uint64_t mask = routing_.MaskForRect(data[i]);
    new_masks[i] = mask;
    ZDB_RETURN_IF_ERROR(ForEachShard(mask, [&](uint32_t s) -> Status {
      shard_data[s].push_back(data[i]);
      shard_oids[s].push_back(static_cast<ObjectId>(i));
      return Status::OK();
    }));
  }
  for (uint32_t s = 0; s < shards(); ++s) {
    if (shard_data[s].empty()) continue;
    ZDB_RETURN_IF_ERROR(
        indexes_[s]->BulkLoad(shard_data[s], fill, &shard_oids[s]));
  }
  next_oid_ = static_cast<ObjectId>(data.size());
  masks_ = std::move(new_masks);
  live_count_.store(data.size(), std::memory_order_relaxed);
  {
    MutexLock el(epoch_mu_);
    for (uint32_t s = 0; s < shards(); ++s) {
      if (shard_data[s].empty()) continue;
      shard_epochs_[s] = indexes_[s]->write_epoch();
      ++shard_batches_[s];
    }
  }
  epoch_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

// ---------------------------------------------------------------- queries

Result<std::vector<ObjectId>> ShardRouter::Window(const Rect& window,
                                                  QueryStats* stats) {
  return ScatterWindow(indexes_, routing_, window, stats);
}

Result<std::vector<ObjectId>> ShardRouter::Point(const zdb::Point& p,
                                                 QueryStats* stats) {
  return ScatterPoint(indexes_, routing_, p, stats);
}

Result<std::vector<ObjectId>> ShardRouter::Containment(const Rect& window,
                                                       QueryStats* stats) {
  return ScatterContainment(indexes_, routing_, window, stats);
}

Result<std::vector<std::pair<ObjectId, double>>> ShardRouter::Nearest(
    const zdb::Point& p, size_t k, QueryStats* stats) {
  return ScatterNearest(indexes_, routing_, p, k, stats);
}

// ------------------------------------------------------------- durability

Status ShardRouter::WaitDurable(uint64_t epoch, uint64_t timeout_ms) {
  // Conservative: `epoch` <= the current router epoch is satisfied by
  // waiting out everything published as of this call (the per-shard
  // epoch vector snapshot).
  (void)epoch;
  std::vector<uint64_t> targets;
  {
    MutexLock el(epoch_mu_);
    targets = shard_epochs_;
  }
  for (uint32_t s = 0; s < shards(); ++s) {
    if (targets[s] == 0 || !indexes_[s]->group_commit_active()) continue;
    ZDB_RETURN_IF_ERROR(indexes_[s]->WaitDurable(targets[s], timeout_ms));
  }
  return Status::OK();
}

Status ShardRouter::Checkpoint() {
  for (const auto& e : engines_) {
    ZDB_RETURN_IF_ERROR(e->Checkpoint());
  }
  return Status::OK();
}

// --------------------------------------------------------------- plumbing

ShardCounters ShardRouter::CountersOf(uint32_t s) const {
  ShardCounters c;
  SpatialIndex* ix = indexes_[s];
  c.objects = ix->object_count();
  c.index_entries = ix->build_stats().index_entries;
  c.write_epoch = ix->write_epoch();
  c.durable_epoch = ix->durable_epoch();
  c.journal_commits = engines_[s]->pager()->commit_count();
  c.pages = engines_[s]->pager()->page_count();
  if (ix->snapshots_enabled()) {
    c.pins_taken = ix->epoch_stats().pins_taken;
    c.page_versions = ix->version_stats().live;
  }
  {
    MutexLock el(epoch_mu_);
    c.batches = shard_batches_[s];
  }
  return c;
}

}  // namespace shard
}  // namespace zdb
