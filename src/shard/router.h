// Copyright (c) zdb authors. Licensed under the MIT license.
//
// ShardRouter: owns the N shard engines of a sharded DB and routes the
// write path. Global object ids are router-assigned (dense, in op
// order — byte-identical to the single-engine store's append cursor, so
// an N-shard DB answers queries with exactly the ids a 1-shard DB
// would). Each insert is replicated into every shard whose prefix
// region its MBR overlaps, under the same global oid; the owner set is
// kept in an in-memory per-oid shard mask, rebuilt from the shard
// object stores on reopen, which is what lets erases fan out to exactly
// the owning shards.
//
// Lock order: router_mu_ -> epoch_mu_ (declared via ACQUIRED_AFTER).
// router_mu_ serializes the routing state (oid cursor + masks) and the
// publish fan-out; epoch_mu_ guards the per-shard published-epoch
// vector and per-shard batch counters. Durability waits happen OUTSIDE
// both locks — concurrent kDurable writers overlap their fsyncs across
// the independent per-shard group-commit pipelines, which is where the
// multi-shard ApplyBatch scaling comes from.
//
// Atomicity contract: one batch publishes per shard atomically, but
// NOT atomically across shards — a reader racing the fan-out can
// observe the batch applied on one shard and not yet on another.
// Quiescent states (every router Apply returned) are exact. A shard
// I/O failure mid-fan-out leaves the batch partially applied across
// shards and the router bookkeeping unchanged; see DESIGN.md "Sharded
// partitions" for the recovery story.

#ifndef ZDB_SHARD_ROUTER_H_
#define ZDB_SHARD_ROUTER_H_

#include <atomic>
#include <memory>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "shard/engine.h"
#include "shard/routing.h"

namespace zdb {
namespace shard {

/// Per-shard counters reported through DB::ShardStats()/server STATS.
struct ShardCounters {
  uint64_t objects = 0;        ///< live objects replicated to this shard
  uint64_t index_entries = 0;  ///< z-elements in this shard's B+-tree
  uint64_t write_epoch = 0;    ///< this shard's published epoch
  uint64_t durable_epoch = 0;  ///< this shard's fsynced epoch
  uint64_t journal_commits = 0;  ///< coalesced journal commits
  uint64_t batches = 0;        ///< sub-batches routed to this shard
  uint32_t pages = 0;          ///< pages in this shard's file
  uint64_t pins_taken = 0;     ///< snapshot pins ever taken
  uint64_t page_versions = 0;  ///< before-image versions retained
};

class ShardRouter {
 public:
  /// Takes ownership of the engines; `routing.shards()` must equal
  /// `engines.size()`.
  ShardRouter(std::vector<std::unique_ptr<ShardEngine>> engines,
              ShardRouting routing);

  /// Rebuilds the routing state (oid cursor + per-oid shard masks) by
  /// scanning the shard object stores. Call once after opening existing
  /// shard files, before any operation.
  Status RecoverState();

  uint32_t shards() const { return routing_.shards(); }
  const ShardRouting& routing() const { return routing_; }
  ShardEngine* engine(uint32_t s) const { return engines_[s].get(); }
  SpatialIndex* index(uint32_t s) const { return engines_[s]->index(); }
  const std::vector<SpatialIndex*>& indexes() const { return indexes_; }

  // ------------------------------------------------------------- writes

  /// Splits `batch` by routing prefix, fans the sub-batches out to the
  /// per-shard pipelines (published under router_mu_, in shard order)
  /// and, for kDurable, waits on each involved shard's durable epoch
  /// outside the locks. Returns router-assigned oids in op order.
  Result<std::vector<ObjectId>> Apply(const WriteBatch& batch,
                                      Durability durability);

  /// Replays a leader-resolved batch on a follower: every insert must
  /// carry its leader-assigned oid in WriteOp::preassigned (routed and
  /// replicated under that id, so the replica's ids stay byte-identical
  /// to the leader's), erases fan out by the stored owner masks.
  /// Publish-time semantics (kPublished); durability follows via the
  /// per-shard pipelines as usual.
  Result<std::vector<ObjectId>> ApplyReplicated(const WriteBatch& batch);

  Result<ObjectId> Insert(const Rect& mbr, uint32_t payload);
  Result<ObjectId> InsertPolygon(const Polygon& poly);
  Status Erase(ObjectId oid);

  /// Bulk loads into empty shards: assigns global oids 0..n-1, routes
  /// each rectangle to its owner shards and runs one per-shard bulk
  /// load with preassigned oids.
  Status BulkLoad(const std::vector<Rect>& data, double fill);

  // ------------------------------------------------------------- queries

  Result<std::vector<ObjectId>> Window(const Rect& window, QueryStats* stats);
  Result<std::vector<ObjectId>> Point(const zdb::Point& p, QueryStats* stats);
  Result<std::vector<ObjectId>> Containment(const Rect& window,
                                            QueryStats* stats);
  Result<std::vector<std::pair<ObjectId, double>>> Nearest(const zdb::Point& p,
                                                           size_t k,
                                                           QueryStats* stats);

  // ---------------------------------------------------------- durability

  /// Router-level published-batch counter (the sharded DB's write
  /// epoch). Bumped once per successful Apply/Insert/Erase fan-out.
  uint64_t write_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Waits until everything published on every shard as of this call is
  /// durable (the per-shard epoch vector snapshot — conservative for
  /// older `epoch` values). No-op for non-group-commit engines.
  Status WaitDurable(uint64_t epoch, uint64_t timeout_ms);

  /// Checkpoints every shard engine.
  Status Checkpoint();

  // ------------------------------------------------------------ plumbing

  /// Distinct live objects (each counted once, not per replica).
  uint64_t object_count() const {
    return live_count_.load(std::memory_order_relaxed);
  }

  ShardCounters CountersOf(uint32_t s) const;

 private:
  /// Validated routing decisions of one batch, staged before the
  /// fan-out and committed to masks_/next_oid_ only if every shard
  /// publish succeeds.
  struct RoutePlan {
    std::vector<WriteBatch> sub;              ///< per-shard sub-batches
    std::vector<std::pair<ObjectId, uint64_t>> insert_masks;
    std::vector<ObjectId> erase_oids;
    std::vector<ObjectId> inserted;           ///< result ids, op order
    ObjectId next_oid = 0;                    ///< cursor after the batch
    uint64_t touched = 0;                     ///< shards with a sub-batch
  };

  Status PlanBatchLocked(const WriteBatch& batch, RoutePlan* plan)
      REQUIRES(router_mu_);
  /// PlanBatchLocked's replicated twin: consumes preassigned oids
  /// instead of assigning from the cursor (advancing the cursor past
  /// them), so replay cannot fork the id sequence.
  Status PlanReplicatedLocked(const WriteBatch& batch, RoutePlan* plan)
      REQUIRES(router_mu_);
  Status FanOutLocked(RoutePlan* plan,
                      std::vector<uint64_t>* wait_epochs)
      REQUIRES(router_mu_) EXCLUDES(epoch_mu_);
  Status WaitShardsDurable(uint64_t touched,
                           const std::vector<uint64_t>& wait_epochs,
                           uint64_t timeout_ms);

  const std::vector<std::unique_ptr<ShardEngine>> engines_;
  const ShardRouting routing_;
  std::vector<SpatialIndex*> indexes_;  ///< borrowed from engines_

  /// Routing state: global oid cursor and per-oid owner-shard masks
  /// (mask 0 = never inserted or erased).
  mutable Mutex router_mu_;
  ObjectId next_oid_ GUARDED_BY(router_mu_) = 0;
  std::vector<uint64_t> masks_ GUARDED_BY(router_mu_);

  /// Per-shard publish bookkeeping; epoch_mu_ is a leaf below
  /// router_mu_ so CountersOf can read it without blocking writers for
  /// the whole fan-out.
  mutable Mutex epoch_mu_ ACQUIRED_AFTER(router_mu_);
  std::vector<uint64_t> shard_epochs_ GUARDED_BY(epoch_mu_);
  std::vector<uint64_t> shard_batches_ GUARDED_BY(epoch_mu_);

  std::atomic<uint64_t> epoch_{0};       ///< router publish counter
  std::atomic<uint64_t> live_count_{0};  ///< distinct live objects
};

}  // namespace shard
}  // namespace zdb

#endif  // ZDB_SHARD_ROUTER_H_
