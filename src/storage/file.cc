// Copyright (c) zdb authors. Licensed under the MIT license.

#include "storage/file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace zdb {

Status MemFile::Read(uint64_t offset, size_t n, char* buf) const {
  std::memset(buf, 0, n);
  if (offset >= data_.size()) return Status::OK();
  const size_t avail = data_.size() - offset;
  std::memcpy(buf, data_.data() + offset, avail < n ? avail : n);
  return Status::OK();
}

Status MemFile::Write(uint64_t offset, const char* data, size_t n) {
  if (offset + n > data_.size()) data_.resize(offset + n);
  std::memcpy(data_.data() + offset, data, n);
  return Status::OK();
}

Result<std::unique_ptr<PosixFile>> PosixFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  return std::unique_ptr<PosixFile>(new PosixFile(fd));
}

PosixFile::~PosixFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status PosixFile::Read(uint64_t offset, size_t n, char* buf) const {
  std::memset(buf, 0, n);
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::pread(fd_, buf + done, n - done,
                        static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("pread: ") + std::strerror(errno));
    }
    if (r == 0) break;  // EOF: remainder stays zero-filled
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status PosixFile::Write(uint64_t offset, const char* data, size_t n) {
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::pwrite(fd_, data + done, n - done,
                         static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("pwrite: ") + std::strerror(errno));
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

uint64_t PosixFile::Size() const {
  struct stat st;
  if (::fstat(fd_, &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

Status PosixFile::Truncate(uint64_t size) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Status::IOError(std::string("ftruncate: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status PosixFile::Sync() {
  if (::fdatasync(fd_) != 0) {
    return Status::IOError(std::string("fdatasync: ") + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace zdb
