// Copyright (c) zdb authors. Licensed under the MIT license.

#include "storage/buffer_pool.h"

#include <cassert>
#include <cstring>

namespace zdb {

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
  }
  return *this;
}

PageId PageRef::id() const {
  assert(valid());
  return pool_->frames_[frame_].id;
}

const char* PageRef::data() const {
  assert(valid());
  return pool_->frames_[frame_].data.data();
}

char* PageRef::mutable_data() {
  assert(valid());
  pool_->frames_[frame_].dirty = true;
  return pool_->frames_[frame_].data.data();
}

void PageRef::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(Pager* pager, size_t capacity) : pager_(pager) {
  assert(capacity >= 1);
  frames_.resize(capacity);
  for (auto& f : frames_) f.data.resize(pager_->page_size());
  free_frames_.reserve(capacity);
  for (size_t i = capacity; i > 0; --i) free_frames_.push_back(i - 1);
}

BufferPool::~BufferPool() {
  // Best effort write-back; errors here have nowhere to go.
  (void)FlushAll();
}

void BufferPool::Unpin(size_t frame) {
  Frame& f = frames_[frame];
  assert(f.pins > 0);
  --f.pins;
}

Status BufferPool::WriteBack(Frame* f) {
  if (!f->dirty) return Status::OK();
  ZDB_RETURN_IF_ERROR(pager_->WritePage(f->id, f->data.data()));
  f->dirty = false;
  return Status::OK();
}

Result<size_t> BufferPool::AcquireFrame() {
  if (!free_frames_.empty()) {
    size_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  // Evict the least-recently-used unpinned frame.
  size_t victim = frames_.size();
  uint64_t best = UINT64_MAX;
  for (size_t i = 0; i < frames_.size(); ++i) {
    const Frame& f = frames_[i];
    if (f.pins == 0 && f.last_used < best) {
      best = f.last_used;
      victim = i;
    }
  }
  if (victim == frames_.size()) {
    return Status::NoSpace("buffer pool exhausted: all pages pinned");
  }
  Frame& f = frames_[victim];
  ZDB_RETURN_IF_ERROR(WriteBack(&f));
  ++pager_->mutable_io_stats()->pool_evictions;
  table_.erase(f.id);
  f.id = kInvalidPageId;
  return victim;
}

Result<PageRef> BufferPool::Fetch(PageId id) {
  auto it = table_.find(id);
  if (it != table_.end()) {
    ++pager_->mutable_io_stats()->pool_hits;
    Frame& f = frames_[it->second];
    ++f.pins;
    Touch(it->second);
    return PageRef(this, it->second);
  }
  ++pager_->mutable_io_stats()->pool_misses;
  size_t idx;
  ZDB_ASSIGN_OR_RETURN(idx, AcquireFrame());
  Frame& f = frames_[idx];
  Status s = pager_->ReadPage(id, f.data.data());
  if (!s.ok()) {
    free_frames_.push_back(idx);
    return s;
  }
  f.id = id;
  f.pins = 1;
  f.dirty = false;
  table_[id] = idx;
  Touch(idx);
  return PageRef(this, idx);
}

Result<PageRef> BufferPool::New() {
  PageId id;
  ZDB_ASSIGN_OR_RETURN(id, pager_->Allocate());
  size_t idx;
  ZDB_ASSIGN_OR_RETURN(idx, AcquireFrame());
  Frame& f = frames_[idx];
  std::memset(f.data.data(), 0, f.data.size());
  f.id = id;
  f.pins = 1;
  f.dirty = true;
  table_[id] = idx;
  Touch(idx);
  return PageRef(this, idx);
}

Status BufferPool::Delete(PageId id) {
  auto it = table_.find(id);
  if (it != table_.end()) {
    Frame& f = frames_[it->second];
    if (f.pins > 0) {
      return Status::InvalidArgument("deleting a pinned page");
    }
    f.dirty = false;  // contents are garbage now; never write back
    f.id = kInvalidPageId;
    free_frames_.push_back(it->second);
    table_.erase(it);
  }
  return pager_->Free(id);
}

Status BufferPool::FlushAll() {
  for (auto& f : frames_) {
    if (f.id != kInvalidPageId && f.dirty) {
      if (f.pins > 0) {
        return Status::InvalidArgument("flushing with pinned dirty page");
      }
      ZDB_RETURN_IF_ERROR(WriteBack(&f));
    }
  }
  return Status::OK();
}

Status BufferPool::Clear() {
  ZDB_RETURN_IF_ERROR(FlushAll());
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (f.id != kInvalidPageId) {
      if (f.pins > 0) return Status::InvalidArgument("clearing pinned page");
      f.id = kInvalidPageId;
      free_frames_.push_back(i);
    }
  }
  table_.clear();
  return Status::OK();
}

}  // namespace zdb
