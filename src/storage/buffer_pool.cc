// Copyright (c) zdb authors. Licensed under the MIT license.

#include "storage/buffer_pool.h"

#include <cassert>
#include <cstring>
#include <string>

namespace zdb {

namespace {

/// Shards are only worth their capacity fragmentation for pools large
/// enough that per-shard LRU behaves like global LRU. Below 2 * 16 frames
/// a single shard keeps the exact historical semantics.
constexpr size_t kMinFramesPerShard = 16;
constexpr size_t kMaxShards = 16;

size_t PickShardCount(size_t capacity) {
  size_t n = 1;
  while (n * 2 <= kMaxShards && capacity / (n * 2) >= kMinFramesPerShard) {
    n *= 2;
  }
  return n;
}

}  // namespace

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    shard_ = other.shard_;
    frame_ = other.frame_;
    snap_ = std::move(other.snap_);
    snap_id_ = other.snap_id_;
    other.pool_ = nullptr;
    other.snap_.reset();
  }
  return *this;
}

PageId PageRef::id() const {
  assert(valid());
  if (snap_ != nullptr) return snap_id_;
  return pool_->shards_[shard_].frames[frame_].id;
}

const char* PageRef::data() const {
  assert(valid());
  if (snap_ != nullptr) return snap_->data();
  return pool_->shards_[shard_].frames[frame_].data.data();
}

char* PageRef::mutable_data() {
  assert(valid());
  if (snap_ != nullptr) {
    internal::LockAssertFail("mutable_data() on a snapshot-backed page");
  }
  pool_->PrepareWrite(shard_, frame_);
  BufferPool::Frame& f = pool_->shards_[shard_].frames[frame_];
  f.dirty.store(true, std::memory_order_relaxed);
  return f.data.data();
}

void PageRef::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(shard_, frame_);
    pool_ = nullptr;
  }
  snap_.reset();
}

BufferPool::BufferPool(Pager* pager, size_t capacity)
    : pager_(pager),
      capacity_(capacity),
      shards_(PickShardCount(capacity)),
      versions_(pager->page_size()) {
  assert(capacity >= 1);
  shard_mask_ = shards_.size() - 1;
  // Distribute frames round-robin so every shard gets within one frame of
  // capacity / shards.
  for (size_t s = 0; s < shards_.size(); ++s) {
    const size_t n =
        capacity / shards_.size() + (s < capacity % shards_.size() ? 1 : 0);
    Shard& sh = shards_[s];
    sh.frames = std::vector<Frame>(n);
    for (auto& f : sh.frames) f.data.resize(pager_->page_size());
    sh.free_frames.reserve(n);
    for (size_t i = n; i > 0; --i) {
      sh.free_frames.push_back(static_cast<uint32_t>(i - 1));
    }
  }
}

BufferPool::~BufferPool() {
  // Best effort write-back; errors here have nowhere to go.
  (void)FlushAll();
}

void BufferPool::Unpin(uint32_t shard, uint32_t frame) {
  Frame& f = shards_[shard].frames[frame];
  // Release order: pairs with the acquire load in AcquireFrame so an
  // evictor that observes pins == 0 also observes this pin's page writes.
  const uint32_t prev = f.pins.fetch_sub(1, std::memory_order_release);
  assert(prev > 0);
  (void)prev;
}

Status BufferPool::WriteBack(Shard& s, Frame* f) {
  (void)s;  // capability token: proves the frame's shard lock is held
  if (!f->dirty.load(std::memory_order_relaxed)) return Status::OK();
  ZDB_RETURN_IF_ERROR(pager_->WritePage(f->id, f->data.data()));
  f->dirty.store(false, std::memory_order_relaxed);
  return Status::OK();
}

Result<uint32_t> BufferPool::AcquireFrame(Shard& s) {
  if (!s.free_frames.empty()) {
    uint32_t idx = s.free_frames.back();
    s.free_frames.pop_back();
    return idx;
  }
  // Evict the least-recently-used unpinned frame of this shard.
  uint32_t victim = static_cast<uint32_t>(s.frames.size());
  uint64_t best = UINT64_MAX;
  for (uint32_t i = 0; i < s.frames.size(); ++i) {
    const Frame& f = s.frames[i];
    if (f.pins.load(std::memory_order_acquire) == 0 && f.last_used < best) {
      best = f.last_used;
      victim = i;
    }
  }
  if (victim == s.frames.size()) {
    return Status::NoSpace("buffer pool exhausted: all pages pinned");
  }
  Frame& f = s.frames[victim];
  ZDB_RETURN_IF_ERROR(WriteBack(s, &f));
  ++pager_->mutable_io_stats()->pool_evictions;
  s.table.erase(f.id);
  f.id = kInvalidPageId;
  return victim;
}

void BufferPool::PrepareWrite(uint32_t shard, uint32_t frame) {
  // Only the single armed mutator (exclusive index latch) reaches here
  // with a nonzero stamp, so the stamp comparison cannot race another
  // writer; the frame's bytes are stable under the mutator's own pin.
  const uint64_t stamp = save_stamp_.load(std::memory_order_acquire);
  if (stamp == 0) return;
  Frame& f = shards_[shard].frames[frame];
  if (f.save_stamp.load(std::memory_order_relaxed) == stamp) return;
  versions_.SaveBeforeImage(f.id, stamp - 1, f.data.data());
  f.save_stamp.store(stamp, std::memory_order_relaxed);
}

Result<PageRef> BufferPool::SnapshotFetch(const SnapshotView& view,
                                          PageId id) {
  if (PageVersions::Buffer b = versions_.Lookup(id, view.epoch)) {
    ++pager_->mutable_io_stats()->pool_hits;
    ThreadIoStats* tls = GetThreadIoStats();
    if (tls != nullptr) ++tls->pool_hits;
    return PageRef(std::move(b), id);
  }
  // No image covers the pinned epoch: the live frame is current for it.
  // Pin it through the normal path (the pin is transient — released
  // before returning, so reload/discard barriers never wait on a
  // snapshot ref), then copy the bytes under the chain shard mutex to
  // order the copy against a concurrent first-mutation save.
  PageRef live;
  ZDB_ASSIGN_OR_RETURN(live, FetchLive(id));
  PageVersions::Buffer b = versions_.ReadAtEpoch(id, view.epoch, live.data());
  live.Release();
  return PageRef(std::move(b), id);
}

Result<PageRef> BufferPool::Fetch(PageId id) {
  if (const SnapshotView* v = SnapshotView::FindPool(this)) {
    return SnapshotFetch(*v, id);
  }
  return FetchLive(id);
}

Result<PageRef> BufferPool::FetchLive(PageId id) {
  const uint32_t sidx = static_cast<uint32_t>(id) & shard_mask_;
  Shard& s = shards_[sidx];
  MutexLock lock(s.mu);
  ThreadIoStats* tls = GetThreadIoStats();
  auto it = s.table.find(id);
  if (it != s.table.end()) {
    ++pager_->mutable_io_stats()->pool_hits;
    if (tls != nullptr) {
      ++tls->pool_hits;
      ++tls->pages_pinned;
    }
    Frame& f = s.frames[it->second];
    f.pins.fetch_add(1, std::memory_order_relaxed);
    Touch(s, it->second);
    return PageRef(this, sidx, it->second);
  }
  ++pager_->mutable_io_stats()->pool_misses;
  if (tls != nullptr) ++tls->pool_misses;
  uint32_t idx;
  ZDB_ASSIGN_OR_RETURN(idx, AcquireFrame(s));
  Frame& f = s.frames[idx];
  Status st = pager_->ReadPage(id, f.data.data());
  if (!st.ok()) {
    s.free_frames.push_back(idx);
    return st;
  }
  f.id = id;
  f.pins.store(1, std::memory_order_relaxed);
  f.dirty.store(false, std::memory_order_relaxed);
  // Freshly loaded bytes may be the pre-batch image (or a mid-batch
  // re-load after eviction): force the next mutation through the save
  // path and let keep-first dedup sort out which case it was.
  f.save_stamp.store(0, std::memory_order_relaxed);
  s.table[id] = idx;
  Touch(s, idx);
  if (tls != nullptr) ++tls->pages_pinned;
  return PageRef(this, sidx, idx);
}

Result<PageRef> BufferPool::New() {
  PageId id;
  ZDB_ASSIGN_OR_RETURN(id, pager_->Allocate());
  const uint32_t sidx = static_cast<uint32_t>(id) & shard_mask_;
  Shard& s = shards_[sidx];
  MutexLock lock(s.mu);
  uint32_t idx;
  {
    auto r = AcquireFrame(s);
    if (!r.ok()) {
      // Undo the allocation so the pager does not leak the page.
      (void)pager_->Free(id);
      return r.status();
    }
    idx = r.value();
  }
  Frame& f = s.frames[idx];
  std::memset(f.data.data(), 0, f.data.size());
  f.id = id;
  f.pins.store(1, std::memory_order_relaxed);
  f.dirty.store(true, std::memory_order_relaxed);
  // A fresh page has no pre-batch content to preserve (if the id was
  // freed earlier in this batch, the Delete hook already saved it).
  f.save_stamp.store(save_stamp_.load(std::memory_order_acquire),
                     std::memory_order_relaxed);
  s.table[id] = idx;
  Touch(s, idx);
  ThreadIoStats* tls = GetThreadIoStats();
  if (tls != nullptr) ++tls->pages_pinned;
  return PageRef(this, sidx, idx);
}

Status BufferPool::Delete(PageId id) {
  const uint64_t stamp = save_stamp_.load(std::memory_order_acquire);
  Shard& s = shard_for(id);
  {
    MutexLock lock(s.mu);
    auto it = s.table.find(id);
    if (it != s.table.end()) {
      Frame& f = s.frames[it->second];
      if (f.pins.load(std::memory_order_acquire) > 0) {
        return Status::InvalidArgument("deleting a pinned page");
      }
      // A pinned reader may still need this page at an older epoch:
      // preserve its pre-batch image before the id is recycled. If this
      // batch already mutated the page, the true pre-batch bytes are in
      // the chain and keep-first makes this a no-op.
      if (stamp != 0 && f.save_stamp.load(std::memory_order_relaxed) !=
                            stamp) {
        versions_.SaveBeforeImage(id, stamp - 1, f.data.data());
      }
      // Contents are garbage now; never write back.
      f.dirty.store(false, std::memory_order_relaxed);
      f.id = kInvalidPageId;
      s.free_frames.push_back(it->second);
      s.table.erase(it);
    } else if (stamp != 0) {
      // Uncached: the disk image is the pre-batch image unless this
      // batch mutated the page and it was evicted — in which case the
      // chain already holds the true one and keep-first skips the save.
      std::vector<char> buf(pager_->page_size());
      ZDB_RETURN_IF_ERROR(pager_->ReadPage(id, buf.data()));
      versions_.SaveBeforeImage(id, stamp - 1, buf.data());
    }
  }
  return pager_->Free(id);
}

Status BufferPool::FlushAll() { return FlushInternal(false); }

Status BufferPool::FlushForCommit() { return FlushInternal(true); }

Status BufferPool::FlushInternal(bool include_pinned) {
  // First pass: write back everything writable. Collect what is blocked
  // instead of failing midway, so the caller never gets a silent partial
  // flush — all flushable pages are durable and the error says exactly
  // what remains. With include_pinned (group-commit mode, writers
  // excluded by the caller) reader pins don't block: the bytes are
  // stable, so a pinned frame is written in place and stays cached.
  size_t blocked = 0;
  PageId first_blocked = kInvalidPageId;
  for (auto& s : shards_) {
    MutexLock lock(s.mu);
    for (auto& f : s.frames) {
      if (f.id == kInvalidPageId ||
          !f.dirty.load(std::memory_order_relaxed)) {
        continue;
      }
      if (!include_pinned && f.pins.load(std::memory_order_acquire) > 0) {
        ++blocked;
        if (first_blocked == kInvalidPageId) first_blocked = f.id;
        continue;
      }
      ZDB_RETURN_IF_ERROR(WriteBack(s, &f));
    }
  }
  if (blocked > 0) {
    return Status::InvalidArgument(
        "cannot flush " + std::to_string(blocked) +
        " dirty page(s) still pinned (e.g. page " +
        std::to_string(first_blocked) +
        "); release all PageRefs/cursors and retry");
  }
  return Status::OK();
}

Status BufferPool::Clear() {
  ZDB_RETURN_IF_ERROR(FlushAll());
  for (auto& s : shards_) {
    MutexLock lock(s.mu);
    for (uint32_t i = 0; i < s.frames.size(); ++i) {
      Frame& f = s.frames[i];
      if (f.id != kInvalidPageId) {
        if (f.pins.load(std::memory_order_acquire) > 0) {
          return Status::InvalidArgument("clearing pinned page");
        }
        f.id = kInvalidPageId;
        s.free_frames.push_back(i);
      }
    }
    s.table.clear();
  }
  return Status::OK();
}

Status BufferPool::Discard() {
  // Two passes so a pinned frame fails the whole call before anything
  // is dropped (a half-discarded cache would be worse than either
  // outcome).
  for (auto& s : shards_) {
    MutexLock lock(s.mu);
    for (const auto& f : s.frames) {
      if (f.id != kInvalidPageId &&
          f.pins.load(std::memory_order_acquire) > 0) {
        return Status::InvalidArgument("discarding pinned page " +
                                       std::to_string(f.id));
      }
    }
  }
  for (auto& s : shards_) {
    MutexLock lock(s.mu);
    for (uint32_t i = 0; i < s.frames.size(); ++i) {
      Frame& f = s.frames[i];
      if (f.id != kInvalidPageId) {
        f.dirty.store(false, std::memory_order_relaxed);
        f.id = kInvalidPageId;
        s.free_frames.push_back(i);
      }
    }
    s.table.clear();
  }
  return Status::OK();
}

size_t BufferPool::cached_pages() const {
  size_t n = 0;
  for (const auto& s : shards_) {
    MutexLock lock(s.mu);
    n += s.table.size();
  }
  return n;
}

size_t BufferPool::pinned_pages() const {
  size_t n = 0;
  for (const auto& s : shards_) {
    MutexLock lock(s.mu);
    for (const auto& f : s.frames) {
      if (f.id != kInvalidPageId &&
          f.pins.load(std::memory_order_acquire) > 0) {
        ++n;
      }
    }
  }
  return n;
}

}  // namespace zdb
