// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Byte-addressable file abstraction under the pager. Two implementations:
// PosixFile (pread/pwrite on a real file) and MemFile (an in-memory vector,
// used by tests and by benches that measure logical rather than physical
// I/O — the page-access counters in the pager are identical either way).

#ifndef ZDB_STORAGE_FILE_H_
#define ZDB_STORAGE_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace zdb {

/// Random-access file of bytes. Reads of unwritten ranges return zeros so
/// the pager can treat the file as a sparse array of pages.
class File {
 public:
  virtual ~File() = default;

  /// Reads exactly n bytes at offset into buf (zero-filling past EOF).
  virtual Status Read(uint64_t offset, size_t n, char* buf) const = 0;

  /// Writes n bytes at offset, extending the file as needed.
  virtual Status Write(uint64_t offset, const char* data, size_t n) = 0;

  /// Current size in bytes.
  virtual uint64_t Size() const = 0;

  /// Shrinks or extends the file to exactly `size` bytes.
  virtual Status Truncate(uint64_t size) = 0;

  /// Forces written data to stable storage (no-op for MemFile).
  virtual Status Sync() = 0;
};

/// Heap-backed file for tests and logical-I/O benchmarking.
class MemFile : public File {
 public:
  Status Read(uint64_t offset, size_t n, char* buf) const override;
  Status Write(uint64_t offset, const char* data, size_t n) override;
  uint64_t Size() const override { return data_.size(); }
  Status Truncate(uint64_t size) override {
    data_.resize(size);
    return Status::OK();
  }
  Status Sync() override { return Status::OK(); }

  /// Deep copy for crash-simulation tests.
  std::vector<char> Snapshot() const { return data_; }
  void RestoreSnapshot(std::vector<char> snapshot) {
    data_ = std::move(snapshot);
  }

 private:
  std::vector<char> data_;
};

/// pread/pwrite-backed file.
class PosixFile : public File {
 public:
  /// Opens (creating if absent) the file at path for read/write.
  static Result<std::unique_ptr<PosixFile>> Open(const std::string& path);

  ~PosixFile() override;
  PosixFile(const PosixFile&) = delete;
  PosixFile& operator=(const PosixFile&) = delete;

  Status Read(uint64_t offset, size_t n, char* buf) const override;
  Status Write(uint64_t offset, const char* data, size_t n) override;
  uint64_t Size() const override;
  Status Truncate(uint64_t size) override;
  Status Sync() override;

 private:
  explicit PosixFile(int fd) : fd_(fd) {}
  int fd_;
};

}  // namespace zdb

#endif  // ZDB_STORAGE_FILE_H_
