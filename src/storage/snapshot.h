// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Page-level before-image version chains and the thread-local snapshot
// view — the storage half of epoch-based snapshot reads (the pin/GC
// half lives in core/epoch.h).
//
// Model: every write batch publishes one write epoch E under the
// exclusive index latch. While the batch runs, the first mutation of a
// page through PageRef::mutable_data() appends the page's *pre-batch*
// bytes to its version chain, tagged `as_of = E-1` ("content at the end
// of epoch E-1"). A reader pinned at epoch P resolves a page by taking
// the first chain entry with `as_of >= P` (the oldest image still valid
// at P); if there is none, the live frame is current for P and its
// bytes are copied out under the chain shard mutex — the same mutex the
// writer's first-mutation save takes — so the copy is ordered either
// entirely before the save (clean pre-batch bytes) or after it (the
// reader then hits the chain instead). Later mutations of the same page
// in the same batch skip the save, but by then the chain entry exists
// and pinned readers never touch the live frame again.
//
// Chains are append-only per page (epochs are monotonic), so entries
// stay sorted by as_of without re-sorting. ReclaimBefore(M) drops every
// entry with as_of < M: no pin below M exists or can be created (the
// epoch manager computes M under its pin mutex), so nothing can look
// those entries up again.

#ifndef ZDB_STORAGE_SNAPSHOT_H_
#define ZDB_STORAGE_SNAPSHOT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "storage/page.h"

namespace zdb {

/// Counters for the version-chain table. `live`/`bytes` are the current
/// footprint; `saved`/`reclaimed` are lifetime totals (their difference
/// is `live` — the GC reclamation tests assert on exactly that).
struct PageVersionStats {
  uint64_t live = 0;
  uint64_t bytes = 0;
  uint64_t saved = 0;
  uint64_t reclaimed = 0;
};

/// Sharded PageId -> before-image chain table. One instance per
/// BufferPool. Thread-safe; see the file comment for the copy protocol.
class PageVersions {
 public:
  using Buffer = std::shared_ptr<const std::vector<char>>;

  explicit PageVersions(uint32_t page_size) : page_size_(page_size) {}
  PageVersions(const PageVersions&) = delete;
  PageVersions& operator=(const PageVersions&) = delete;

  /// Appends the pre-batch image of `page` (exactly page_size bytes)
  /// tagged `as_of`, unless an entry for that as_of already exists —
  /// keep-first: only the batch's *first* save holds the true pre-batch
  /// bytes, and re-saves (checkpoint + batch sharing a stamp, a freed
  /// page re-deleted) must not overwrite it.
  void SaveBeforeImage(PageId page, uint64_t as_of, const char* data);

  /// First chain entry with as_of >= epoch, or nullptr if the live
  /// frame is current for `epoch`.
  Buffer Lookup(PageId page, uint64_t epoch) const;

  /// The pinned-reader resolution step for a chain miss: re-checks the
  /// chain and, still on a miss, copies `live_data` under the shard
  /// mutex (ordering the copy against a concurrent first-mutation
  /// save). `live_data` must stay valid across the call — the caller
  /// holds a buffer-pool pin on the frame.
  Buffer ReadAtEpoch(PageId page, uint64_t epoch, const char* live_data);

  /// Drops every entry with as_of < min_epoch. Called by the GC thread
  /// once no pin at or below those epochs can exist.
  void ReclaimBefore(uint64_t min_epoch);

  /// Drops everything (index shutdown / reload with no pins).
  void Clear();

  PageVersionStats stats() const;
  uint32_t page_size() const { return page_size_; }

 private:
  struct Entry {
    uint64_t as_of;
    Buffer data;
  };
  struct Shard {
    mutable Mutex mu;
    std::map<PageId, std::vector<Entry>> chains GUARDED_BY(mu);
  };
  static constexpr size_t kShards = 16;

  Shard& shard_for(PageId page) { return shards_[page % kShards]; }
  const Shard& shard_for(PageId page) const { return shards_[page % kShards]; }

  const uint32_t page_size_;
  std::array<Shard, kShards> shards_;
  std::atomic<uint64_t> live_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> saved_{0};
  std::atomic<uint64_t> reclaimed_{0};
};

/// The non-page index state a pinned reader needs, captured by the
/// writer under the exclusive latch at every publish. Everything here
/// is a value copy — a reader holding the meta shares nothing mutable
/// with later writers.
struct SnapshotMeta {
  PageId btree_root = kInvalidPageId;
  uint32_t btree_height = 1;
  uint32_t obj_next_oid = 0;
  std::vector<PageId> obj_pages;
  std::vector<PageId> poly_pages;
  uint64_t level_mask = 0;
  uint64_t live_objects = 0;
};

/// A thread-local redirection record: while installed (via
/// SnapshotScope), reads through the tagged components resolve at
/// `epoch` instead of the live state. BufferPool::Fetch matches `pool`,
/// BTree matches `btree`, the stores match `objects`/`polygons`, and
/// SpatialIndex matches `owner` (level mask / live-object count). Tags
/// are opaque pointers so storage/ stays ignorant of core/ types.
///
/// Views form a per-thread stack (nested queries — e.g. kNN issuing
/// window sweeps — reuse the installed view; an executor worker
/// installs its own). Lookups walk the stack and match the *innermost*
/// view for the component.
struct SnapshotView {
  uint64_t epoch = 0;
  PageVersions* versions = nullptr;
  const void* pool = nullptr;
  const void* owner = nullptr;
  const void* btree = nullptr;
  const void* objects = nullptr;
  const void* polygons = nullptr;
  std::shared_ptr<const SnapshotMeta> meta;
  const SnapshotView* prev = nullptr;

  static const SnapshotView* FindPool(const void* pool);
  static const SnapshotView* FindOwner(const void* owner);
  static const SnapshotView* FindBTree(const void* btree);
  static const SnapshotView* FindObjects(const void* objects);
  static const SnapshotView* FindPolygons(const void* polygons);
};

/// RAII installer for a SnapshotView on the current thread. The view is
/// copied in; the scope must be destroyed on the thread that created it
/// (strictly nested, like any TLS stack).
class SnapshotScope {
 public:
  explicit SnapshotScope(SnapshotView view);
  ~SnapshotScope();
  SnapshotScope(const SnapshotScope&) = delete;
  SnapshotScope& operator=(const SnapshotScope&) = delete;

 private:
  SnapshotView view_;
};

}  // namespace zdb

#endif  // ZDB_STORAGE_SNAPSHOT_H_
