// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Page identifiers and constants shared by the pager, buffer pool and the
// access methods built on them.

#ifndef ZDB_STORAGE_PAGE_H_
#define ZDB_STORAGE_PAGE_H_

#include <cstdint>

namespace zdb {

/// Identifies a fixed-size page within a database file. Page 0 is the
/// pager's own header page; access methods never see it.
using PageId = uint32_t;

/// Sentinel for "no page" (null pointers in on-disk structures).
inline constexpr PageId kInvalidPageId = 0;

/// Default page size. The 1989 comparisons used 512-byte pages to emulate
/// large files with small datasets; benches configure this explicitly.
inline constexpr uint32_t kDefaultPageSize = 4096;

inline constexpr uint32_t kMinPageSize = 256;

/// Capped at 32 KiB so in-page offsets fit in uint16_t.
inline constexpr uint32_t kMaxPageSize = 1 << 15;

}  // namespace zdb

#endif  // ZDB_STORAGE_PAGE_H_
