// Copyright (c) zdb authors. Licensed under the MIT license.

#include "storage/snapshot.h"

#include <algorithm>
#include <cstring>

namespace zdb {

namespace {

/// Innermost installed view for this thread, or nullptr.
thread_local const SnapshotView* t_view_top = nullptr;

}  // namespace

void PageVersions::SaveBeforeImage(PageId page, uint64_t as_of,
                                   const char* data) {
  Shard& s = shard_for(page);
  MutexLock lock(s.mu);
  std::vector<Entry>& chain = s.chains[page];
  // Epochs are monotonic, so an entry for this as_of — if any — is the
  // last one. Keep-first: it already holds the true pre-batch bytes.
  if (!chain.empty() && chain.back().as_of >= as_of) return;
  auto buf = std::make_shared<std::vector<char>>(data, data + page_size_);
  chain.push_back(Entry{as_of, std::move(buf)});
  live_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(page_size_, std::memory_order_relaxed);
  saved_.fetch_add(1, std::memory_order_relaxed);
}

PageVersions::Buffer PageVersions::Lookup(PageId page, uint64_t epoch) const {
  const Shard& s = shard_for(page);
  MutexLock lock(s.mu);
  auto it = s.chains.find(page);
  if (it == s.chains.end()) return nullptr;
  const std::vector<Entry>& chain = it->second;
  auto e = std::lower_bound(
      chain.begin(), chain.end(), epoch,
      [](const Entry& entry, uint64_t ep) { return entry.as_of < ep; });
  if (e == chain.end()) return nullptr;
  return e->data;
}

PageVersions::Buffer PageVersions::ReadAtEpoch(PageId page, uint64_t epoch,
                                               const char* live_data) {
  Shard& s = shard_for(page);
  MutexLock lock(s.mu);
  auto it = s.chains.find(page);
  if (it != s.chains.end()) {
    const std::vector<Entry>& chain = it->second;
    auto e = std::lower_bound(
        chain.begin(), chain.end(), epoch,
        [](const Entry& entry, uint64_t ep) { return entry.as_of < ep; });
    if (e != chain.end()) return e->data;
  }
  // No image covers `epoch`: the live frame is current for it. The copy
  // runs under the shard mutex, so a concurrent writer's first-mutation
  // SaveBeforeImage (same mutex) cannot interleave with it — and the
  // writer only stores into the frame *after* that save completes.
  return std::make_shared<std::vector<char>>(live_data,
                                             live_data + page_size_);
}

void PageVersions::ReclaimBefore(uint64_t min_epoch) {
  for (Shard& s : shards_) {
    MutexLock lock(s.mu);
    for (auto it = s.chains.begin(); it != s.chains.end();) {
      std::vector<Entry>& chain = it->second;
      auto keep = std::lower_bound(
          chain.begin(), chain.end(), min_epoch,
          [](const Entry& entry, uint64_t ep) { return entry.as_of < ep; });
      const size_t dropped = static_cast<size_t>(keep - chain.begin());
      if (dropped > 0) {
        chain.erase(chain.begin(), keep);
        live_.fetch_sub(dropped, std::memory_order_relaxed);
        bytes_.fetch_sub(dropped * page_size_, std::memory_order_relaxed);
        reclaimed_.fetch_add(dropped, std::memory_order_relaxed);
      }
      it = chain.empty() ? s.chains.erase(it) : std::next(it);
    }
  }
}

void PageVersions::Clear() {
  for (Shard& s : shards_) {
    MutexLock lock(s.mu);
    for (auto& [page, chain] : s.chains) {
      live_.fetch_sub(chain.size(), std::memory_order_relaxed);
      bytes_.fetch_sub(chain.size() * page_size_, std::memory_order_relaxed);
      reclaimed_.fetch_add(chain.size(), std::memory_order_relaxed);
    }
    s.chains.clear();
  }
}

PageVersionStats PageVersions::stats() const {
  PageVersionStats st;
  st.live = live_.load(std::memory_order_relaxed);
  st.bytes = bytes_.load(std::memory_order_relaxed);
  st.saved = saved_.load(std::memory_order_relaxed);
  st.reclaimed = reclaimed_.load(std::memory_order_relaxed);
  return st;
}

namespace {

template <const void* SnapshotView::* Tag>
const SnapshotView* FindByTag(const void* p) {
  for (const SnapshotView* v = t_view_top; v != nullptr; v = v->prev) {
    if (v->*Tag == p) return v;
  }
  return nullptr;
}

}  // namespace

const SnapshotView* SnapshotView::FindPool(const void* pool) {
  return FindByTag<&SnapshotView::pool>(pool);
}
const SnapshotView* SnapshotView::FindOwner(const void* owner) {
  return FindByTag<&SnapshotView::owner>(owner);
}
const SnapshotView* SnapshotView::FindBTree(const void* btree) {
  return FindByTag<&SnapshotView::btree>(btree);
}
const SnapshotView* SnapshotView::FindObjects(const void* objects) {
  return FindByTag<&SnapshotView::objects>(objects);
}
const SnapshotView* SnapshotView::FindPolygons(const void* polygons) {
  return FindByTag<&SnapshotView::polygons>(polygons);
}

SnapshotScope::SnapshotScope(SnapshotView view) : view_(std::move(view)) {
  view_.prev = t_view_top;
  t_view_top = &view_;
}

SnapshotScope::~SnapshotScope() { t_view_top = view_.prev; }

}  // namespace zdb
