// Copyright (c) zdb authors. Licensed under the MIT license.

#include "storage/pager.h"

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "common/coding.h"

namespace zdb {

namespace {
constexpr uint32_t kMagic = 0x7a646231;  // "zdb1"
constexpr size_t kHeaderMagicOff = 0;
constexpr size_t kHeaderPageSizeOff = 4;
constexpr size_t kHeaderPageCountOff = 8;
constexpr size_t kHeaderFreelistOff = 12;
constexpr size_t kHeaderLivePagesOff = 16;

// Rollback-journal layout: a 16-byte header followed by entries of
// [page id u32 | page image]. `entry count` is written only after the
// entry bytes it covers, so a torn final entry is never replayed.
constexpr uint32_t kJournalMagic = 0x7a6a6e31;  // "zjn1"
constexpr size_t kJournalMagicOff = 0;
constexpr size_t kJournalPageCountOff = 4;  // db pages at BeginBatch
constexpr size_t kJournalEntriesOff = 8;
constexpr size_t kJournalHeaderSize = 16;
}  // namespace

Result<std::unique_ptr<Pager>> Pager::Open(std::unique_ptr<File> file,
                                           uint32_t page_size) {
  if (page_size < kMinPageSize || page_size > kMaxPageSize ||
      (page_size & (page_size - 1)) != 0) {
    return Status::InvalidArgument("page size must be a power of two in [" +
                                   std::to_string(kMinPageSize) + ", " +
                                   std::to_string(kMaxPageSize) + "]");
  }
  std::unique_ptr<Pager> pager(new Pager(std::move(file), page_size));
  {
    // Uncontended (the pager is not published yet), but LoadHeader and
    // StoreHeader carry REQUIRES(mu_), so take it for real.
    MutexLock lock(pager->mu_);
    if (pager->file_->Size() == 0) {
      ZDB_RETURN_IF_ERROR(pager->StoreHeader());
    } else {
      ZDB_RETURN_IF_ERROR(pager->LoadHeader());
    }
  }
  return pager;
}

Result<std::unique_ptr<Pager>> Pager::Open(std::unique_ptr<File> file,
                                           std::unique_ptr<File> journal,
                                           uint32_t page_size) {
  std::unique_ptr<Pager> pager;
  // A pending rollback must run before the header is trusted: recover on
  // the raw files first, then open normally.
  {
    std::unique_ptr<Pager> probe(new Pager(std::move(file), page_size));
    probe->journal_ = std::move(journal);
    {
      MutexLock lock(probe->mu_);
      ZDB_RETURN_IF_ERROR(probe->Rollback());
    }
    file = std::move(probe->file_);
    journal = std::move(probe->journal_);
  }
  ZDB_ASSIGN_OR_RETURN(pager, Open(std::move(file), page_size));
  pager->journal_ = std::move(journal);
  return pager;
}

Status Pager::Rollback() {
  if (journal_ == nullptr || journal_->Size() < kJournalHeaderSize) {
    return Status::OK();  // no batch in flight
  }
  ZDB_RETURN_IF_ERROR(ReplayJournal());
  ZDB_RETURN_IF_ERROR(journal_->Truncate(0));
  return journal_->Sync();
}

Status Pager::ReplayJournal() {
  char header[kJournalHeaderSize];
  ZDB_RETURN_IF_ERROR(journal_->Read(0, kJournalHeaderSize, header));
  if (DecodeFixed32(header + kJournalMagicOff) != kJournalMagic) {
    return Status::Corruption("bad journal magic");
  }
  const uint32_t old_pages = DecodeFixed32(header + kJournalPageCountOff);
  const uint32_t entries = DecodeFixed32(header + kJournalEntriesOff);

  std::vector<char> buf(page_size_);
  for (uint32_t i = 0; i < entries; ++i) {
    const uint64_t off =
        kJournalHeaderSize + static_cast<uint64_t>(i) * (4 + page_size_);
    char idbuf[4];
    ZDB_RETURN_IF_ERROR(journal_->Read(off, 4, idbuf));
    const PageId id = DecodeFixed32(idbuf);
    ZDB_RETURN_IF_ERROR(journal_->Read(off + 4, page_size_, buf.data()));
    ZDB_RETURN_IF_ERROR(
        file_->Write(static_cast<uint64_t>(id) * page_size_, buf.data(),
                     page_size_));
  }
  // Drop pages allocated inside the aborted batch.
  ZDB_RETURN_IF_ERROR(
      file_->Truncate(static_cast<uint64_t>(old_pages) * page_size_));
  return file_->Sync();
}

Status Pager::AbortBatch() {
  MutexLock lock(mu_);
  if (!in_batch_) return Status::InvalidArgument("no active batch");
  // Until every step below succeeds the batch stays active and the
  // journal stays intact, so a failed abort still recovers on reopen.
  ZDB_RETURN_IF_ERROR(ReplayJournal());
  // Restore the allocation state snapshotted at BeginBatch and persist
  // it: the replayed page-0 image may predate header changes that were
  // never synced, so the snapshot is authoritative.
  page_count_ = batch_page_count_;
  freelist_head_ = batch_freelist_head_;
  live_pages_ = batch_live_pages_;
  ZDB_RETURN_IF_ERROR(StoreHeader());
  ZDB_RETURN_IF_ERROR(file_->Sync());
  // The database is back to its pre-batch state; retiring the journal
  // completes the abort.
  ZDB_RETURN_IF_ERROR(journal_->Truncate(0));
  ZDB_RETURN_IF_ERROR(journal_->Sync());
  in_batch_ = false;
  journaled_.clear();
  journal_entries_ = 0;
  return Status::OK();
}

Status Pager::BeginBatch() {
  MutexLock lock(mu_);
  if (journal_ == nullptr) {
    return Status::InvalidArgument("pager opened without a journal");
  }
  if (in_batch_) return Status::InvalidArgument("batch already active");
  ZDB_RETURN_IF_ERROR(journal_->Truncate(0));
  char header[kJournalHeaderSize] = {0};
  EncodeFixed32(header + kJournalMagicOff, kJournalMagic);
  EncodeFixed32(header + kJournalPageCountOff, page_count_);
  EncodeFixed32(header + kJournalEntriesOff, 0);
  ZDB_RETURN_IF_ERROR(journal_->Write(0, header, kJournalHeaderSize));
  ZDB_RETURN_IF_ERROR(journal_->Sync());
  in_batch_ = true;
  batch_page_count_ = page_count_;
  batch_freelist_head_ = freelist_head_;
  batch_live_pages_ = live_pages_;
  journal_entries_ = 0;
  journaled_.clear();
  // Page 0 (the header) changes through StoreHeader, not WritePage:
  // journal it up front so a rollback restores the allocation state.
  return JournalBeforeImage(0);
}

Status Pager::JournalBeforeImage(PageId id) {
  if (id >= batch_page_count_) return Status::OK();  // born in this batch
  if (!journaled_.insert(id).second) return Status::OK();
  std::vector<char> buf(page_size_);
  ZDB_RETURN_IF_ERROR(
      file_->Read(static_cast<uint64_t>(id) * page_size_, page_size_,
                  buf.data()));
  const uint64_t off = kJournalHeaderSize +
                       static_cast<uint64_t>(journal_entries_) *
                           (4 + page_size_);
  char idbuf[4];
  EncodeFixed32(idbuf, id);
  ZDB_RETURN_IF_ERROR(journal_->Write(off, idbuf, 4));
  ZDB_RETURN_IF_ERROR(journal_->Write(off + 4, buf.data(), page_size_));
  // The count is bumped only after the entry is fully on disk.
  ++journal_entries_;
  char cnt[4];
  EncodeFixed32(cnt, journal_entries_);
  ZDB_RETURN_IF_ERROR(journal_->Write(kJournalEntriesOff, cnt, 4));
  return Status::OK();
}

Status Pager::CommitBatch() {
  MutexLock lock(mu_);
  if (!in_batch_) return Status::InvalidArgument("no active batch");
  ZDB_RETURN_IF_ERROR(StoreHeader());
  ZDB_RETURN_IF_ERROR(file_->Sync());
  // The database is durable; retiring the journal commits the batch.
  ZDB_RETURN_IF_ERROR(journal_->Truncate(0));
  ZDB_RETURN_IF_ERROR(journal_->Sync());
  in_batch_ = false;
  journaled_.clear();
  journal_entries_ = 0;
  commit_count_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

std::unique_ptr<Pager> Pager::OpenInMemory(uint32_t page_size) {
  auto r = Open(std::make_unique<MemFile>(), page_size);
  // A fresh MemFile cannot fail to format unless the page size is invalid,
  // which is a programming error here.
  return std::move(r).value();
}

Status Pager::LoadHeader() {
  std::vector<char> buf(page_size_);
  // Header reads/writes are bookkeeping, not data accesses: don't count.
  ZDB_RETURN_IF_ERROR(file_->Read(0, page_size_, buf.data()));
  if (DecodeFixed32(buf.data() + kHeaderMagicOff) != kMagic) {
    return Status::Corruption("bad pager magic");
  }
  const uint32_t stored = DecodeFixed32(buf.data() + kHeaderPageSizeOff);
  if (stored != page_size_) {
    return Status::InvalidArgument("page size mismatch: file has " +
                                   std::to_string(stored));
  }
  page_count_ = DecodeFixed32(buf.data() + kHeaderPageCountOff);
  freelist_head_ = DecodeFixed32(buf.data() + kHeaderFreelistOff);
  live_pages_ = DecodeFixed32(buf.data() + kHeaderLivePagesOff);
  return Status::OK();
}

Status Pager::StoreHeader() {
  std::vector<char> buf(page_size_, 0);
  EncodeFixed32(buf.data() + kHeaderMagicOff, kMagic);
  EncodeFixed32(buf.data() + kHeaderPageSizeOff, page_size_);
  EncodeFixed32(buf.data() + kHeaderPageCountOff, page_count_);
  EncodeFixed32(buf.data() + kHeaderFreelistOff, freelist_head_);
  EncodeFixed32(buf.data() + kHeaderLivePagesOff, live_pages_);
  return file_->Write(0, buf.data(), page_size_);
}

Result<PageId> Pager::Allocate() {
  MutexLock lock(mu_);
  if (freelist_head_ != kInvalidPageId) {
    const PageId id = freelist_head_;
    std::vector<char> buf(page_size_);
    // Free-list maintenance is charged as a read: the link lives on disk.
    ZDB_RETURN_IF_ERROR(ReadPageInternal(id, buf.data()));
    freelist_head_ = DecodeFixed32(buf.data());
    ++live_pages_;
    return id;
  }
  if (page_count_ == UINT32_MAX) return Status::NoSpace("page ids exhausted");
  const PageId id = page_count_++;
  ++live_pages_;
  return id;
}

Status Pager::Free(PageId id) {
  MutexLock lock(mu_);
  if (id == kInvalidPageId || id >= page_count_) {
    return Status::InvalidArgument("free of invalid page " +
                                   std::to_string(id));
  }
  std::vector<char> buf(page_size_, 0);
  EncodeFixed32(buf.data(), freelist_head_);
  ZDB_RETURN_IF_ERROR(WritePageInternal(id, buf.data()));
  freelist_head_ = id;
  --live_pages_;
  return Status::OK();
}

Status Pager::ReadPage(PageId id, char* buf) {
  const uint32_t latency = sim_read_latency_us_.load(std::memory_order_relaxed);
  if (latency != 0) {
    // Outside mu_: concurrent misses overlap their device stalls.
    std::this_thread::sleep_for(std::chrono::microseconds(latency));
  }
  MutexLock lock(mu_);
  return ReadPageInternal(id, buf);
}

Status Pager::ReadPageInternal(PageId id, char* buf) {
  if (id == kInvalidPageId || id >= page_count_) {
    return Status::InvalidArgument("read of invalid page " +
                                   std::to_string(id));
  }
  ++io_.page_reads;
  return file_->Read(static_cast<uint64_t>(id) * page_size_, page_size_, buf);
}

Status Pager::WritePage(PageId id, const char* buf) {
  MutexLock lock(mu_);
  return WritePageInternal(id, buf);
}

Status Pager::WritePageInternal(PageId id, const char* buf) {
  if (id == kInvalidPageId || id >= page_count_) {
    return Status::InvalidArgument("write of invalid page " +
                                   std::to_string(id));
  }
  if (in_batch_) {
    ZDB_RETURN_IF_ERROR(JournalBeforeImage(id));
  }
  ++io_.page_writes;
  return file_->Write(static_cast<uint64_t>(id) * page_size_, buf,
                      page_size_);
}

Status Pager::Sync() {
  MutexLock lock(mu_);
  ZDB_RETURN_IF_ERROR(StoreHeader());
  return file_->Sync();
}

}  // namespace zdb
