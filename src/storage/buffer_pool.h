// Copyright (c) zdb authors. Licensed under the MIT license.
//
// LRU buffer pool over a Pager. Callers pin pages through RAII PageRefs;
// unpinned pages stay cached until evicted, and only pool misses and dirty
// write-backs reach the pager's I/O counters. Benches control the cache
// regime by sizing the pool (e.g. "root page only" to mirror the 1989
// experimental setups).

#ifndef ZDB_STORAGE_BUFFER_POOL_H_
#define ZDB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/pager.h"

namespace zdb {

class BufferPool;

/// RAII pin on a cached page. While a PageRef is alive the frame cannot be
/// evicted and its data pointer stays valid. Move-only.
class PageRef {
 public:
  PageRef() = default;
  PageRef(PageRef&& other) noexcept { *this = std::move(other); }
  PageRef& operator=(PageRef&& other) noexcept;
  ~PageRef() { Release(); }

  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;

  bool valid() const { return pool_ != nullptr; }
  PageId id() const;

  /// Read-only view of the page bytes.
  const char* data() const;

  /// Mutable view; automatically marks the page dirty.
  char* mutable_data();

  /// Drops the pin early (also done by the destructor).
  void Release();

 private:
  friend class BufferPool;
  PageRef(BufferPool* pool, size_t frame) : pool_(pool), frame_(frame) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
};

/// Fixed-capacity page cache with LRU replacement and pin counts.
class BufferPool {
 public:
  /// `capacity` is the number of page frames (>= 1).
  BufferPool(Pager* pager, size_t capacity);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `id`, reading it from the pager on a miss.
  Result<PageRef> Fetch(PageId id);

  /// Allocates a fresh page, pinned and zero-filled (and dirty).
  Result<PageRef> New();

  /// Removes page `id` from the pool (must be unpinned) and frees it in
  /// the pager.
  Status Delete(PageId id);

  /// Writes back all dirty unpinned pages. Pinned dirty pages are an error.
  Status FlushAll();

  /// Writes back everything and drops the cache (keeps capacity).
  Status Clear();

  Pager* pager() const { return pager_; }
  size_t capacity() const { return frames_.size(); }

  /// Pages currently cached.
  size_t cached_pages() const { return table_.size(); }

 private:
  friend class PageRef;

  struct Frame {
    PageId id = kInvalidPageId;
    std::vector<char> data;
    uint32_t pins = 0;
    bool dirty = false;
    uint64_t last_used = 0;
  };

  void Unpin(size_t frame);
  void Touch(size_t frame) { frames_[frame].last_used = ++tick_; }

  /// Finds a frame to (re)use, evicting the LRU unpinned page if needed.
  Result<size_t> AcquireFrame();

  Status WriteBack(Frame* f);

  Pager* pager_;
  std::vector<Frame> frames_;
  std::vector<size_t> free_frames_;
  std::unordered_map<PageId, size_t> table_;
  uint64_t tick_ = 0;
};

}  // namespace zdb

#endif  // ZDB_STORAGE_BUFFER_POOL_H_
