// Copyright (c) zdb authors. Licensed under the MIT license.
//
// LRU buffer pool over a Pager. Callers pin pages through RAII PageRefs;
// unpinned pages stay cached until evicted, and only pool misses and dirty
// write-backs reach the pager's I/O counters. Benches control the cache
// regime by sizing the pool (e.g. "root page only" to mirror the 1989
// experimental setups).
//
// Concurrency: the pool is safe for concurrent Fetch/New/Delete and for
// concurrent PageRef release. The page table is sharded by page id; each
// shard has its own mutex, frames, free list and LRU clock, so readers on
// different shards never contend. Pin counts are atomics released without
// a lock; eviction only considers frames whose pin count is zero *while
// holding the shard lock*, and new pins are only created under that same
// lock, so eviction can never race a pin. Small pools (< 32 frames) use a
// single shard, preserving the exact global-LRU semantics the cold-cache
// experiments rely on. FlushAll/Clear lock all shards and are intended to
// be called from one thread with no concurrent mutators.

#ifndef ZDB_STORAGE_BUFFER_POOL_H_
#define ZDB_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "storage/pager.h"
#include "storage/snapshot.h"

namespace zdb {

class BufferPool;

/// RAII pin on a cached page. While a PageRef is alive the frame cannot be
/// evicted and its data pointer stays valid. Move-only. A PageRef may be
/// released from any thread.
///
/// A PageRef can also be backed by an immutable snapshot buffer instead
/// of a pool frame (returned by Fetch under an installed SnapshotView).
/// Such a ref holds no pin — it shares ownership of a version-chain
/// buffer — and aborts on mutable_data(): snapshot pages are read-only
/// by construction.
class PageRef {
 public:
  PageRef() = default;
  PageRef(PageRef&& other) noexcept { *this = std::move(other); }
  PageRef& operator=(PageRef&& other) noexcept;
  ~PageRef() { Release(); }

  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;

  bool valid() const { return pool_ != nullptr || snap_ != nullptr; }
  PageId id() const;

  /// Read-only view of the page bytes.
  const char* data() const;

  /// Mutable view; automatically marks the page dirty and, when the
  /// pool's versioning is armed, saves the page's pre-batch image into
  /// the version chains first (copy-on-write for pinned readers).
  char* mutable_data();

  /// Drops the pin early (also done by the destructor).
  void Release();

 private:
  friend class BufferPool;
  PageRef(BufferPool* pool, uint32_t shard, uint32_t frame)
      : pool_(pool), shard_(shard), frame_(frame) {}
  PageRef(PageVersions::Buffer snap, PageId id)
      : snap_(std::move(snap)), snap_id_(id) {}

  BufferPool* pool_ = nullptr;
  uint32_t shard_ = 0;
  uint32_t frame_ = 0;
  PageVersions::Buffer snap_;
  PageId snap_id_ = kInvalidPageId;
};

/// Fixed-capacity page cache with sharded LRU replacement and pin counts.
class BufferPool {
 public:
  /// `capacity` is the total number of page frames (>= 1).
  BufferPool(Pager* pager, size_t capacity);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `id`, reading it from the pager on a miss. Thread-safe.
  [[nodiscard]] Result<PageRef> Fetch(PageId id);

  /// Allocates a fresh page, pinned and zero-filled (and dirty).
  /// Thread-safe.
  [[nodiscard]] Result<PageRef> New();

  /// Removes page `id` from the pool (must be unpinned) and frees it in
  /// the pager.
  [[nodiscard]] Status Delete(PageId id);

  /// Writes back every dirty unpinned page. If dirty pages remain pinned
  /// after that, returns InvalidArgument naming how many pins block the
  /// flush and which page — everything flushable has still been written,
  /// so retrying after releasing the pins completes the flush.
  [[nodiscard]] Status FlushAll();

  /// Writes back every dirty page, *including* pinned ones. Only safe
  /// when no mutator can race the write-back — i.e. the caller excludes
  /// all writers (the group-commit thread holds the index commit mutex)
  /// and remaining pins are read-only. Readers never mutate frame bytes,
  /// so copying a reader-pinned frame to the pager is a consistent
  /// snapshot; the frame stays cached and pinned afterwards.
  [[nodiscard]] Status FlushForCommit();

  /// Writes back everything and drops the cache (keeps capacity).
  [[nodiscard]] Status Clear();

  /// Drops every cached page WITHOUT writing dirty frames back, so the
  /// cache afterwards reflects exactly what is on disk. Fails (dropping
  /// nothing) if any frame is pinned. Pairs with Pager::AbortBatch():
  /// once the file is rolled back, discarding the partially mutated
  /// cache makes subsequent fetches reload the restored images. Like
  /// FlushAll/Clear, intended for one thread with no concurrent
  /// mutators.
  [[nodiscard]] Status Discard();

  Pager* pager() const { return pager_; }
  size_t capacity() const { return capacity_; }

  /// The before-image version chains backing snapshot reads. Always
  /// present; empty (and never written) until versioning is armed.
  PageVersions* versions() { return &versions_; }

  /// Arms copy-on-write before-images for the write batch that will
  /// publish epoch `stamp` (stamp = current epoch + 1): until re-armed,
  /// the first mutation of each page saves its current bytes tagged
  /// `stamp - 1`. Called by the index writer section under the
  /// exclusive latch; 0 (the initial value) means versioning is off and
  /// mutable_data() saves nothing.
  void ArmVersioning(uint64_t stamp) {
    save_stamp_.store(stamp, std::memory_order_release);
  }

  /// Number of table shards (1 for small pools).
  size_t shard_count() const { return shards_.size(); }

  /// Pages currently cached. Takes every shard lock; diagnostics use.
  size_t cached_pages() const;

  /// Frames currently pinned by live PageRefs. Takes every shard lock;
  /// diagnostics use (e.g. verifying no pins remain before Checkpoint).
  size_t pinned_pages() const;

 private:
  friend class PageRef;

  /// Frame fields are deliberately NOT GUARDED_BY(shard mu): id/data are
  /// read by pinned PageRefs without the shard lock (the pin count — not
  /// the mutex — is what keeps them stable), and pins/dirty are atomics.
  /// id and last_used are only *mutated* under the shard lock.
  /// save_stamp marks the versioning batch whose before-image save this
  /// frame already performed (0 = none since load); it is written under
  /// the shard lock on load and by the single armed mutator otherwise.
  struct Frame {
    PageId id = kInvalidPageId;
    std::vector<char> data;
    std::atomic<uint32_t> pins{0};
    std::atomic<bool> dirty{false};
    uint64_t last_used = 0;
    std::atomic<uint64_t> save_stamp{0};
  };

  struct Shard {
    mutable Mutex mu;
    std::vector<Frame> frames;  ///< fixed at construction; see Frame note
    std::vector<uint32_t> free_frames GUARDED_BY(mu);
    std::unordered_map<PageId, uint32_t> table GUARDED_BY(mu);
    uint64_t tick GUARDED_BY(mu) = 0;
  };

  Shard& shard_for(PageId id) {
    return shards_[static_cast<size_t>(id) & shard_mask_];
  }

  void Unpin(uint32_t shard, uint32_t frame);
  static void Touch(Shard& s, uint32_t frame) REQUIRES(s.mu) {
    s.frames[frame].last_used = ++s.tick;
  }

  /// Finds a frame to (re)use within the shard, evicting the LRU unpinned
  /// page if needed.
  Result<uint32_t> AcquireFrame(Shard& s) REQUIRES(s.mu);

  /// Writes frame `f` (which must belong to shard `s`) back to the pager
  /// if dirty. The shard reference is the capability token.
  Status WriteBack(Shard& s, Frame* f) REQUIRES(s.mu);

  /// Shared body of FlushAll/FlushForCommit.
  Status FlushInternal(bool include_pinned);

  /// The non-redirecting Fetch body (live frames only).
  Result<PageRef> FetchLive(PageId id);

  /// Resolves `id` at the view's pinned epoch: chain entry if one
  /// covers the epoch, otherwise a copy of the live frame taken under
  /// the chain shard mutex. The returned ref holds no pin.
  Result<PageRef> SnapshotFetch(const SnapshotView& view, PageId id);

  /// First-mutation hook behind PageRef::mutable_data().
  void PrepareWrite(uint32_t shard, uint32_t frame);

  Pager* pager_;
  size_t capacity_;
  size_t shard_mask_;            ///< shard count - 1 (power of two)
  std::vector<Shard> shards_;
  PageVersions versions_;
  std::atomic<uint64_t> save_stamp_{0};
};

}  // namespace zdb

#endif  // ZDB_STORAGE_BUFFER_POOL_H_
