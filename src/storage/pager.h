// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Pager: allocates and persists fixed-size pages in a File, with a free
// list for recycling and counters for every page transfer. Access methods
// never talk to the pager directly; they go through the BufferPool so that
// repeated touches of a hot page are not charged as disk accesses.
//
// On-disk layout:
//   page 0 (header): magic | page_size | page_count | freelist_head
//   freed pages: first 4 bytes link to the next free page.

#ifndef ZDB_STORAGE_PAGER_H_
#define ZDB_STORAGE_PAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_set>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "storage/file.h"
#include "storage/page.h"

namespace zdb {

/// Allocates, reads and writes fixed-size pages within a File.
/// Thread-safe: page transfers, allocation and the free list are guarded
/// by one internal mutex (misses are rare once the buffer pool is warm,
/// so the serialization is off the hot path). The I/O counters are
/// relaxed atomics and may be read concurrently.
class Pager {
 public:
  /// Opens a pager over `file`. If the file is empty it is formatted with
  /// the given page size; otherwise the stored page size must match.
  static Result<std::unique_ptr<Pager>> Open(std::unique_ptr<File> file,
                                             uint32_t page_size);

  /// Opens a pager with a rollback journal for atomic batches. If the
  /// journal holds an uncommitted batch (crash before CommitBatch), it is
  /// rolled back before the pager becomes usable.
  static Result<std::unique_ptr<Pager>> Open(std::unique_ptr<File> file,
                                             std::unique_ptr<File> journal,
                                             uint32_t page_size);

  /// Convenience: pager over a fresh in-memory file.
  static std::unique_ptr<Pager> OpenInMemory(
      uint32_t page_size = kDefaultPageSize);

  // ------------------------------------------------- atomic batches
  //
  // Between BeginBatch() and CommitBatch(), the first in-place overwrite
  // of each pre-batch page appends its before-image to the journal; a
  // crash (reopen) before CommitBatch rolls every change back, including
  // truncating pages allocated inside the batch. Protocol per batch:
  // flush the buffer pool, then CommitBatch(). Requires a journal file.

  /// Starts an atomic batch. Fails if none was configured or one is
  /// already active.
  [[nodiscard]] Status BeginBatch() EXCLUDES(mu_);

  /// Durably ends the batch: header + file sync, then journal reset.
  [[nodiscard]] Status CommitBatch() EXCLUDES(mu_);

  /// Aborts the active batch at runtime: restores every journaled
  /// before-image, truncates pages allocated inside the batch, resets
  /// the allocation state (page count, free list) to its BeginBatch
  /// snapshot, and retires the journal — after which the pager is
  /// immediately usable and the next BeginBatch journals normally.
  /// Note the restored *file* content is the on-disk image at
  /// BeginBatch; callers that cache pages above the pager (BufferPool)
  /// must drop that cache, and callers whose cache was ahead of the
  /// disk must have flushed it before BeginBatch for the abort to
  /// restore their logical state exactly. If the abort itself fails
  /// (I/O error), the batch stays active and the intact journal still
  /// rolls everything back on the next Open().
  [[nodiscard]] Status AbortBatch() EXCLUDES(mu_);

  bool in_batch() const {
    return in_batch_.load(std::memory_order_acquire);
  }

  /// True if the pager was opened with a rollback journal (i.e. atomic
  /// batches are available).
  bool journaled() const { return journal_ != nullptr; }

  /// Number of batches durably committed (CommitBatch successes) over the
  /// pager's lifetime. Group-commit coalescing is observable here: k
  /// published write batches folded into one fsync bump this by one.
  uint64_t commit_count() const {
    return commit_count_.load(std::memory_order_relaxed);
  }

  uint32_t page_size() const { return page_size_; }

  /// Total pages ever allocated (including freed ones and the header).
  /// Takes mu_: the counter is a plain field mutated by Allocate().
  uint32_t page_count() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return page_count_;
  }

  /// Pages currently allocated to callers (excludes header and free list).
  uint32_t live_page_count() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return live_pages_;
  }

  /// Allocates a page (recycling the free list first). The new page's
  /// contents are undefined until written.
  [[nodiscard]] Result<PageId> Allocate() EXCLUDES(mu_);

  /// Returns a page to the free list.
  [[nodiscard]] Status Free(PageId id) EXCLUDES(mu_);

  /// Reads page `id` into `buf` (page_size bytes). Counts one page read.
  [[nodiscard]] Status ReadPage(PageId id, char* buf) EXCLUDES(mu_);

  /// Writes page `id` from `buf`. Counts one page write.
  [[nodiscard]] Status WritePage(PageId id, const char* buf) EXCLUDES(mu_);

  /// Persists the header (page count, free list) and syncs the file.
  [[nodiscard]] Status Sync() EXCLUDES(mu_);

  const IoStats& io_stats() const { return io_; }
  IoStats* mutable_io_stats() { return &io_; }

  /// Simulated device latency added to every ReadPage, in microseconds.
  /// The stall is taken *before* the internal mutex, so concurrent
  /// readers overlap their waits exactly as they would against a real
  /// device queue. Benchmarking aid for in-memory pagers (deterministic
  /// SSD/HDD emulation); 0 (the default) disables it.
  void set_simulated_read_latency_us(uint32_t us) {
    sim_read_latency_us_.store(us, std::memory_order_relaxed);
  }
  uint32_t simulated_read_latency_us() const {
    return sim_read_latency_us_.load(std::memory_order_relaxed);
  }

 private:
  Pager(std::unique_ptr<File> file, uint32_t page_size)
      : file_(std::move(file)), page_size_(page_size) {}

  /// Unlocked bodies shared by the public entry points (which hold mu_)
  /// and by internal callers that already do.
  Status ReadPageInternal(PageId id, char* buf) REQUIRES(mu_);
  Status WritePageInternal(PageId id, const char* buf) REQUIRES(mu_);

  Status LoadHeader() REQUIRES(mu_);
  Status StoreHeader() REQUIRES(mu_);

  /// Appends page `id`'s current on-disk image to the journal if this
  /// batch has not journaled it yet.
  Status JournalBeforeImage(PageId id) REQUIRES(mu_);

  /// Restores before-images from a non-empty journal and truncates the
  /// database back to its pre-batch size.
  Status Rollback() REQUIRES(mu_);

  /// The replay half of Rollback()/AbortBatch(): writes every journaled
  /// before-image back into the database file, truncates pages born in
  /// the batch and syncs the file. Does not reset the journal.
  Status ReplayJournal() REQUIRES(mu_);

  mutable Mutex mu_;
  /// file_/journal_ are set once during Open and only dereferenced under
  /// mu_ afterwards; the pointers themselves never change post-open.
  std::unique_ptr<File> file_ PT_GUARDED_BY(mu_);
  std::unique_ptr<File> journal_ PT_GUARDED_BY(mu_);
  uint32_t page_size_;
  uint32_t page_count_ GUARDED_BY(mu_) = 1;  // page 0 is the header
  uint32_t live_pages_ GUARDED_BY(mu_) = 0;
  PageId freelist_head_ GUARDED_BY(mu_) = kInvalidPageId;
  IoStats io_;  ///< relaxed atomics; read concurrently without mu_
  std::atomic<uint32_t> sim_read_latency_us_{0};

  /// Atomic so in_batch() may be polled without the pager mutex (e.g.
  /// by SpatialIndex::ApplyBatch deciding whether to journal); mutated
  /// only inside Begin/CommitBatch under mu_.
  std::atomic<bool> in_batch_{false};
  std::atomic<uint64_t> commit_count_{0};
  // Allocation state snapshotted at BeginBatch, restored by AbortBatch
  // (the journaled page-0 image may predate un-synced header changes,
  // so the in-memory counters are the authoritative pre-batch state).
  uint32_t batch_page_count_ GUARDED_BY(mu_) = 0;
  PageId batch_freelist_head_ GUARDED_BY(mu_) = kInvalidPageId;
  uint32_t batch_live_pages_ GUARDED_BY(mu_) = 0;
  uint32_t journal_entries_ GUARDED_BY(mu_) = 0;
  std::unordered_set<PageId> journaled_ GUARDED_BY(mu_);
};

}  // namespace zdb

#endif  // ZDB_STORAGE_PAGER_H_
