// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Pager: allocates and persists fixed-size pages in a File, with a free
// list for recycling and counters for every page transfer. Access methods
// never talk to the pager directly; they go through the BufferPool so that
// repeated touches of a hot page are not charged as disk accesses.
//
// On-disk layout:
//   page 0 (header): magic | page_size | page_count | freelist_head
//   freed pages: first 4 bytes link to the next free page.

#ifndef ZDB_STORAGE_PAGER_H_
#define ZDB_STORAGE_PAGER_H_

#include <cstdint>
#include <memory>
#include <unordered_set>

#include "common/metrics.h"
#include "common/result.h"
#include "storage/file.h"
#include "storage/page.h"

namespace zdb {

/// Allocates, reads and writes fixed-size pages within a File.
/// Single-threaded by design (the reproduction measures logical I/O, not
/// concurrency).
class Pager {
 public:
  /// Opens a pager over `file`. If the file is empty it is formatted with
  /// the given page size; otherwise the stored page size must match.
  static Result<std::unique_ptr<Pager>> Open(std::unique_ptr<File> file,
                                             uint32_t page_size);

  /// Opens a pager with a rollback journal for atomic batches. If the
  /// journal holds an uncommitted batch (crash before CommitBatch), it is
  /// rolled back before the pager becomes usable.
  static Result<std::unique_ptr<Pager>> Open(std::unique_ptr<File> file,
                                             std::unique_ptr<File> journal,
                                             uint32_t page_size);

  /// Convenience: pager over a fresh in-memory file.
  static std::unique_ptr<Pager> OpenInMemory(
      uint32_t page_size = kDefaultPageSize);

  // ------------------------------------------------- atomic batches
  //
  // Between BeginBatch() and CommitBatch(), the first in-place overwrite
  // of each pre-batch page appends its before-image to the journal; a
  // crash (reopen) before CommitBatch rolls every change back, including
  // truncating pages allocated inside the batch. Protocol per batch:
  // flush the buffer pool, then CommitBatch(). Requires a journal file.

  /// Starts an atomic batch. Fails if none was configured or one is
  /// already active.
  Status BeginBatch();

  /// Durably ends the batch: header + file sync, then journal reset.
  Status CommitBatch();

  bool in_batch() const { return in_batch_; }

  uint32_t page_size() const { return page_size_; }

  /// Total pages ever allocated (including freed ones and the header).
  uint32_t page_count() const { return page_count_; }

  /// Pages currently allocated to callers (excludes header and free list).
  uint32_t live_page_count() const { return live_pages_; }

  /// Allocates a page (recycling the free list first). The new page's
  /// contents are undefined until written.
  Result<PageId> Allocate();

  /// Returns a page to the free list.
  Status Free(PageId id);

  /// Reads page `id` into `buf` (page_size bytes). Counts one page read.
  Status ReadPage(PageId id, char* buf);

  /// Writes page `id` from `buf`. Counts one page write.
  Status WritePage(PageId id, const char* buf);

  /// Persists the header (page count, free list) and syncs the file.
  Status Sync();

  const IoStats& io_stats() const { return io_; }
  IoStats* mutable_io_stats() { return &io_; }

 private:
  Pager(std::unique_ptr<File> file, uint32_t page_size)
      : file_(std::move(file)), page_size_(page_size) {}

  Status LoadHeader();
  Status StoreHeader();

  /// Appends page `id`'s current on-disk image to the journal if this
  /// batch has not journaled it yet.
  Status JournalBeforeImage(PageId id);

  /// Restores before-images from a non-empty journal and truncates the
  /// database back to its pre-batch size.
  Status Rollback();

  std::unique_ptr<File> file_;
  std::unique_ptr<File> journal_;
  uint32_t page_size_;
  uint32_t page_count_ = 1;  // page 0 is the header
  uint32_t live_pages_ = 0;
  PageId freelist_head_ = kInvalidPageId;
  IoStats io_;

  bool in_batch_ = false;
  uint32_t batch_page_count_ = 0;  ///< page_count_ at BeginBatch
  uint32_t journal_entries_ = 0;
  std::unordered_set<PageId> journaled_;
};

}  // namespace zdb

#endif  // ZDB_STORAGE_PAGER_H_
