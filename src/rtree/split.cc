// Copyright (c) zdb authors. Licensed under the MIT license.

#include "rtree/split.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace zdb {

Rect GroupBounds(const std::vector<REntry>& entries) {
  assert(!entries.empty());
  Rect r = entries[0].rect;
  for (size_t i = 1; i < entries.size(); ++i) r = r.Union(entries[i].rect);
  return r;
}

namespace {

double Enlargement(const Rect& group, const Rect& add) {
  return group.Union(add).area() - group.area();
}

/// Guttman's PickSeeds: the pair wasting the most area together.
void PickSeedsQuadratic(const std::vector<REntry>& entries, size_t* s1,
                        size_t* s2) {
  double worst = -std::numeric_limits<double>::infinity();
  *s1 = 0;
  *s2 = 1;
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      const double waste = entries[i].rect.Union(entries[j].rect).area() -
                           entries[i].rect.area() - entries[j].rect.area();
      if (waste > worst) {
        worst = waste;
        *s1 = i;
        *s2 = j;
      }
    }
  }
}

}  // namespace

void QuadraticSplit(const std::vector<REntry>& entries, uint32_t min_entries,
                    std::vector<REntry>* group_a,
                    std::vector<REntry>* group_b) {
  group_a->clear();
  group_b->clear();
  const size_t n = entries.size();
  assert(n >= 2);

  size_t s1, s2;
  PickSeedsQuadratic(entries, &s1, &s2);
  group_a->push_back(entries[s1]);
  group_b->push_back(entries[s2]);
  Rect bounds_a = entries[s1].rect;
  Rect bounds_b = entries[s2].rect;

  std::vector<bool> assigned(n, false);
  assigned[s1] = assigned[s2] = true;
  size_t remaining = n - 2;

  while (remaining > 0) {
    // Force-assign when one group must take everything left to reach the
    // minimum occupancy.
    if (group_a->size() + remaining == min_entries) {
      for (size_t i = 0; i < n; ++i) {
        if (!assigned[i]) {
          group_a->push_back(entries[i]);
          assigned[i] = true;
        }
      }
      return;
    }
    if (group_b->size() + remaining == min_entries) {
      for (size_t i = 0; i < n; ++i) {
        if (!assigned[i]) {
          group_b->push_back(entries[i]);
          assigned[i] = true;
        }
      }
      return;
    }

    // PickNext: the entry with the greatest preference for one group.
    size_t best = n;
    double best_diff = -1.0;
    for (size_t i = 0; i < n; ++i) {
      if (assigned[i]) continue;
      const double da = Enlargement(bounds_a, entries[i].rect);
      const double db = Enlargement(bounds_b, entries[i].rect);
      const double diff = std::abs(da - db);
      if (diff > best_diff) {
        best_diff = diff;
        best = i;
      }
    }
    assert(best < n);
    const double da = Enlargement(bounds_a, entries[best].rect);
    const double db = Enlargement(bounds_b, entries[best].rect);
    bool to_a;
    if (da != db) {
      to_a = da < db;
    } else if (bounds_a.area() != bounds_b.area()) {
      to_a = bounds_a.area() < bounds_b.area();
    } else {
      to_a = group_a->size() <= group_b->size();
    }
    if (to_a) {
      group_a->push_back(entries[best]);
      bounds_a = bounds_a.Union(entries[best].rect);
    } else {
      group_b->push_back(entries[best]);
      bounds_b = bounds_b.Union(entries[best].rect);
    }
    assigned[best] = true;
    --remaining;
  }
}

void LinearSplit(const std::vector<REntry>& entries, uint32_t min_entries,
                 std::vector<REntry>* group_a, std::vector<REntry>* group_b) {
  group_a->clear();
  group_b->clear();
  const size_t n = entries.size();
  assert(n >= 2);

  // LinearPickSeeds: per dimension, the pair with the greatest normalized
  // separation (highest low side vs lowest high side).
  const Rect total = GroupBounds(entries);
  size_t best_lo_x = 0, best_hi_x = 0, best_lo_y = 0, best_hi_y = 0;
  for (size_t i = 1; i < n; ++i) {
    if (entries[i].rect.xlo > entries[best_lo_x].rect.xlo) best_lo_x = i;
    if (entries[i].rect.xhi < entries[best_hi_x].rect.xhi) best_hi_x = i;
    if (entries[i].rect.ylo > entries[best_lo_y].rect.ylo) best_lo_y = i;
    if (entries[i].rect.yhi < entries[best_hi_y].rect.yhi) best_hi_y = i;
  }
  const double sep_x =
      (total.width() > 0)
          ? (entries[best_lo_x].rect.xlo - entries[best_hi_x].rect.xhi) /
                total.width()
          : 0.0;
  const double sep_y =
      (total.height() > 0)
          ? (entries[best_lo_y].rect.ylo - entries[best_hi_y].rect.yhi) /
                total.height()
          : 0.0;

  size_t s1, s2;
  if (sep_x >= sep_y) {
    s1 = best_hi_x;
    s2 = best_lo_x;
  } else {
    s1 = best_hi_y;
    s2 = best_lo_y;
  }
  if (s1 == s2) s2 = (s1 + 1) % n;  // degenerate data: any distinct pair

  group_a->push_back(entries[s1]);
  group_b->push_back(entries[s2]);
  Rect bounds_a = entries[s1].rect;
  Rect bounds_b = entries[s2].rect;

  for (size_t i = 0; i < n; ++i) {
    if (i == s1 || i == s2) continue;
    const double da = Enlargement(bounds_a, entries[i].rect);
    const double db = Enlargement(bounds_b, entries[i].rect);
    if (da < db || (da == db && group_a->size() <= group_b->size())) {
      group_a->push_back(entries[i]);
      bounds_a = bounds_a.Union(entries[i].rect);
    } else {
      group_b->push_back(entries[i]);
      bounds_b = bounds_b.Union(entries[i].rect);
    }
  }

  // Enforce minimum occupancy by moving the last-added entries if needed.
  while (group_a->size() < min_entries && group_b->size() > min_entries) {
    group_a->push_back(group_b->back());
    group_b->pop_back();
  }
  while (group_b->size() < min_entries && group_a->size() > min_entries) {
    group_b->push_back(group_a->back());
    group_a->pop_back();
  }
}

namespace {

/// Margin/overlap/area goodness of splitting sorted entries at `split`.
struct DistributionCost {
  double margin = 0.0;
  double overlap = 0.0;
  double area = 0.0;
};

DistributionCost CostAt(const std::vector<REntry>& sorted, size_t split) {
  Rect a = sorted[0].rect;
  for (size_t i = 1; i < split; ++i) a = a.Union(sorted[i].rect);
  Rect b = sorted[split].rect;
  for (size_t i = split + 1; i < sorted.size(); ++i) {
    b = b.Union(sorted[i].rect);
  }
  DistributionCost c;
  c.margin = a.margin() + b.margin();
  c.overlap = a.IntersectionArea(b);
  c.area = a.area() + b.area();
  return c;
}

}  // namespace

void RStarSplit(const std::vector<REntry>& entries, uint32_t min_entries,
                std::vector<REntry>* group_a, std::vector<REntry>* group_b) {
  group_a->clear();
  group_b->clear();
  const size_t n = entries.size();
  assert(n >= 2 * static_cast<size_t>(min_entries));

  // Candidate sort orders: low and high side per axis.
  using Order = std::vector<REntry>;
  Order by_xlo = entries, by_xhi = entries, by_ylo = entries,
        by_yhi = entries;
  auto cmp = [](auto proj) {
    return [proj](const REntry& a, const REntry& b) {
      return proj(a.rect) < proj(b.rect);
    };
  };
  std::sort(by_xlo.begin(), by_xlo.end(),
            cmp([](const Rect& r) { return r.xlo; }));
  std::sort(by_xhi.begin(), by_xhi.end(),
            cmp([](const Rect& r) { return r.xhi; }));
  std::sort(by_ylo.begin(), by_ylo.end(),
            cmp([](const Rect& r) { return r.ylo; }));
  std::sort(by_yhi.begin(), by_yhi.end(),
            cmp([](const Rect& r) { return r.yhi; }));

  // ChooseSplitAxis: minimal total margin over all distributions.
  double margin_x = 0.0, margin_y = 0.0;
  for (size_t split = min_entries; split + min_entries <= n; ++split) {
    margin_x += CostAt(by_xlo, split).margin + CostAt(by_xhi, split).margin;
    margin_y += CostAt(by_ylo, split).margin + CostAt(by_yhi, split).margin;
  }
  const Order* candidates[2];
  if (margin_x <= margin_y) {
    candidates[0] = &by_xlo;
    candidates[1] = &by_xhi;
  } else {
    candidates[0] = &by_ylo;
    candidates[1] = &by_yhi;
  }

  // ChooseSplitIndex: minimal overlap, ties by minimal area.
  const Order* best_order = candidates[0];
  size_t best_split = min_entries;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (const Order* order : candidates) {
    for (size_t split = min_entries; split + min_entries <= n; ++split) {
      const DistributionCost c = CostAt(*order, split);
      if (c.overlap < best_overlap ||
          (c.overlap == best_overlap && c.area < best_area)) {
        best_overlap = c.overlap;
        best_area = c.area;
        best_order = order;
        best_split = split;
      }
    }
  }
  group_a->assign(best_order->begin(), best_order->begin() + best_split);
  group_b->assign(best_order->begin() + best_split, best_order->end());
}

}  // namespace zdb
