// Copyright (c) zdb authors. Licensed under the MIT license.
//
// R-tree node split algorithms (Guttman, SIGMOD 1984). Operate on the
// materialized entry set of an overflowing node.

#ifndef ZDB_RTREE_SPLIT_H_
#define ZDB_RTREE_SPLIT_H_

#include <vector>

#include "rtree/rtree.h"

namespace zdb {

/// Partitions `entries` (size capacity + 1) into two groups, each with at
/// least `min_entries` members, minimizing (heuristically) the total area
/// of the two covering rectangles.
void QuadraticSplit(const std::vector<REntry>& entries, uint32_t min_entries,
                    std::vector<REntry>* group_a,
                    std::vector<REntry>* group_b);

/// Guttman's linear-cost variant: seeds by greatest normalized
/// separation, then distributes in input order by least enlargement.
void LinearSplit(const std::vector<REntry>& entries, uint32_t min_entries,
                 std::vector<REntry>* group_a, std::vector<REntry>* group_b);

/// R*-tree-style split (Beckmann et al. 1990, without forced reinsert):
/// chooses the split axis by minimal margin sum over all valid
/// distributions of sorted entries, then the distribution with minimal
/// overlap (ties: minimal total area).
void RStarSplit(const std::vector<REntry>& entries, uint32_t min_entries,
                std::vector<REntry>* group_a, std::vector<REntry>* group_b);

/// Covering rectangle of a group. Precondition: non-empty.
Rect GroupBounds(const std::vector<REntry>& entries);

}  // namespace zdb

#endif  // ZDB_RTREE_SPLIT_H_
