// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Disk-based R-tree (Guttman, SIGMOD 1984): the baseline spatial access
// method of the reproduction's comparison experiments. Minimal bounding
// rectangles live in the leaves, so the filter step is exact for
// rectangle data — the economics the 1989 comparisons granted the R-tree.
// Supports quadratic and linear node splits, deletion with tree
// condensation and reinsertion, and window/point queries.

#ifndef ZDB_RTREE_RTREE_H_
#define ZDB_RTREE_RTREE_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "geom/point.h"
#include "geom/rect.h"
#include "storage/buffer_pool.h"
#include "zorder/zkey.h"

namespace zdb {

/// One slot of an R-tree node: a rectangle plus a child page (internal)
/// or an object id (leaf).
struct REntry {
  Rect rect;
  uint32_t ref = 0;

  static constexpr size_t kEncodedSize = 40;
};

struct RTreeOptions {
  enum class Split { kQuadratic, kLinear, kRStar };

  Split split = Split::kQuadratic;

  /// Minimum node occupancy as a fraction of capacity. Guttman used 0.5;
  /// Greene (1989) found ~0.3 best for search; 0.4 is the middle ground.
  double min_fill = 0.4;
};

/// Statistics of one R-tree query.
struct RQueryStats {
  uint64_t nodes_visited = 0;
  uint64_t leaf_entries_tested = 0;
  uint64_t results = 0;
};

class RTree {
 public:
  static Result<std::unique_ptr<RTree>> Create(BufferPool* pool,
                                               const RTreeOptions& options);

  /// Re-attaches to an existing tree in the same paged file (e.g. after
  /// swapping buffer pools). `root`, `height` and `count` must be the
  /// values of the tree previously built there.
  static Result<std::unique_ptr<RTree>> Attach(BufferPool* pool,
                                               const RTreeOptions& options,
                                               PageId root, uint32_t height,
                                               uint64_t count);

  PageId root() const { return root_; }

  /// Inserts (mbr, oid). Object ids are caller-assigned.
  Status Insert(const Rect& mbr, ObjectId oid);

  /// Removes the entry with exactly this (mbr, oid); NotFound otherwise.
  Status Delete(const Rect& mbr, ObjectId oid);

  /// Object ids whose MBR intersects the window.
  Result<std::vector<ObjectId>> WindowQuery(const Rect& window,
                                            RQueryStats* stats = nullptr);

  /// Object ids whose MBR contains the point.
  Result<std::vector<ObjectId>> PointQuery(const Point& p,
                                           RQueryStats* stats = nullptr);

  /// Object ids whose MBR lies fully inside the window.
  Result<std::vector<ObjectId>> ContainmentQuery(const Rect& window,
                                                 RQueryStats* stats = nullptr);

  /// Object ids whose MBR encloses the window.
  Result<std::vector<ObjectId>> EnclosureQuery(const Rect& window,
                                               RQueryStats* stats = nullptr);

  /// The k nearest entries to `p` by MBR distance, closest first —
  /// best-first traversal over a MINDIST priority queue (Hjaltason &
  /// Samet), the classic R-tree NN baseline.
  Result<std::vector<std::pair<ObjectId, double>>> NearestNeighbors(
      const Point& p, size_t k, RQueryStats* stats = nullptr);

  uint64_t size() const { return count_; }
  uint32_t height() const { return height_; }

  /// Pages in the tree (walks it).
  Result<uint32_t> PageCount() const;

  /// Structural audit: MBR containment, occupancy, uniform leaf depth.
  Status CheckInvariants() const;

  uint32_t capacity() const { return capacity_; }
  uint32_t min_entries() const { return min_entries_; }

 private:
  RTree(BufferPool* pool, const RTreeOptions& options);

  struct SplitOut {
    bool split = false;
    Rect rect;          ///< MBR of the new right node
    PageId right = kInvalidPageId;
  };

  /// Inserts `entry` at `target_level` below the root (0 = leaf level),
  /// used both by Insert and by CondenseTree reinsertion.
  Status InsertAtLevel(const REntry& entry, uint32_t target_level);

  Status InsertRec(PageId page, uint32_t level, const REntry& entry,
                   uint32_t target_level, SplitOut* out, Rect* new_mbr);

  Status DeleteRec(PageId page, uint32_t level, const Rect& mbr,
                   ObjectId oid, bool* found, bool* removed_page,
                   Rect* new_mbr,
                   std::vector<std::pair<REntry, uint32_t>>* orphans);

  template <typename NodePred, typename LeafPred>
  Status QueryRec(PageId page, const NodePred& node_pred,
                  const LeafPred& leaf_pred, std::vector<ObjectId>* out,
                  RQueryStats* stats) const;

  Status CheckRec(PageId page, uint32_t level, const Rect* bound,
                  uint32_t* leaf_depth, uint64_t* entries) const;

  /// Runs the configured split algorithm on an overflowed entry set.
  void DispatchSplit(const std::vector<REntry>& entries,
                     std::vector<REntry>* ga, std::vector<REntry>* gb) const;

  BufferPool* pool_;
  RTreeOptions options_;
  uint32_t capacity_;
  uint32_t min_entries_;
  PageId root_ = kInvalidPageId;
  uint32_t height_ = 1;  ///< levels; 1 == root is a leaf
  uint64_t count_ = 0;
};

}  // namespace zdb

#endif  // ZDB_RTREE_RTREE_H_
