// Copyright (c) zdb authors. Licensed under the MIT license.

#include "rtree/rtree.h"

#include <cassert>
#include <cstring>
#include <functional>
#include <limits>
#include <queue>

#include "common/coding.h"
#include "rtree/split.h"

namespace zdb {

namespace {

constexpr size_t kNodeHeaderSize = 8;
constexpr size_t kLeafFlagOff = 0;
constexpr size_t kCountOff = 2;

/// Typed view over a pinned R-tree page.
class RNode {
 public:
  RNode(PageRef ref, uint32_t capacity)
      : ref_(std::move(ref)), capacity_(capacity) {}

  static void Init(PageRef* ref, bool leaf) {
    char* p = ref->mutable_data();
    std::memset(p, 0, kNodeHeaderSize);
    p[kLeafFlagOff] = leaf ? 1 : 0;
  }

  PageId id() const { return ref_.id(); }
  bool is_leaf() const { return ref_.data()[kLeafFlagOff] != 0; }
  uint16_t count() const { return DecodeFixed16(ref_.data() + kCountOff); }

  REntry Get(uint16_t i) const {
    assert(i < count());
    const char* p = ref_.data() + kNodeHeaderSize + i * REntry::kEncodedSize;
    REntry e;
    std::memcpy(&e.rect.xlo, p, 8);
    std::memcpy(&e.rect.ylo, p + 8, 8);
    std::memcpy(&e.rect.xhi, p + 16, 8);
    std::memcpy(&e.rect.yhi, p + 24, 8);
    std::memcpy(&e.ref, p + 32, 4);
    return e;
  }

  void Set(uint16_t i, const REntry& e) {
    assert(i < capacity_);
    char* p =
        ref_.mutable_data() + kNodeHeaderSize + i * REntry::kEncodedSize;
    std::memcpy(p, &e.rect.xlo, 8);
    std::memcpy(p + 8, &e.rect.ylo, 8);
    std::memcpy(p + 16, &e.rect.xhi, 8);
    std::memcpy(p + 24, &e.rect.yhi, 8);
    std::memcpy(p + 32, &e.ref, 4);
    std::memset(p + 36, 0, 4);
  }

  /// Appends; precondition count() < capacity.
  void Append(const REntry& e) {
    const uint16_t n = count();
    assert(n < capacity_);
    Set(n, e);
    set_count(static_cast<uint16_t>(n + 1));
  }

  /// Removes slot i by moving the last entry into it.
  void Remove(uint16_t i) {
    const uint16_t n = count();
    assert(i < n);
    if (i + 1 != n) Set(i, Get(static_cast<uint16_t>(n - 1)));
    set_count(static_cast<uint16_t>(n - 1));
  }

  std::vector<REntry> Drain() const {
    std::vector<REntry> out;
    out.reserve(count());
    for (uint16_t i = 0; i < count(); ++i) out.push_back(Get(i));
    return out;
  }

  void Rewrite(const std::vector<REntry>& entries) {
    assert(entries.size() <= capacity_);
    set_count(0);
    for (const REntry& e : entries) Append(e);
  }

  Rect Bounds() const {
    assert(count() > 0);
    Rect r = Get(0).rect;
    for (uint16_t i = 1; i < count(); ++i) r = r.Union(Get(i).rect);
    return r;
  }

 private:
  void set_count(uint16_t n) {
    EncodeFixed16(ref_.mutable_data() + kCountOff, n);
  }

  PageRef ref_;
  uint32_t capacity_;
};

}  // namespace

RTree::RTree(BufferPool* pool, const RTreeOptions& options)
    : pool_(pool), options_(options) {
  capacity_ = static_cast<uint32_t>(
      (pool->pager()->page_size() - kNodeHeaderSize) / REntry::kEncodedSize);
  min_entries_ = static_cast<uint32_t>(capacity_ * options.min_fill);
  if (min_entries_ < 1) min_entries_ = 1;
  if (min_entries_ > capacity_ / 2) min_entries_ = capacity_ / 2;
}

Result<std::unique_ptr<RTree>> RTree::Create(BufferPool* pool,
                                             const RTreeOptions& options) {
  if (options.min_fill <= 0.0 || options.min_fill > 0.5) {
    return Status::InvalidArgument("min_fill must be in (0, 0.5]");
  }
  std::unique_ptr<RTree> tree(new RTree(pool, options));
  if (tree->capacity_ < 4) {
    return Status::InvalidArgument("page size too small for an R-tree node");
  }
  PageRef root;
  ZDB_ASSIGN_OR_RETURN(root, pool->New());
  RNode::Init(&root, /*leaf=*/true);
  tree->root_ = root.id();
  return tree;
}

Result<std::unique_ptr<RTree>> RTree::Attach(BufferPool* pool,
                                             const RTreeOptions& options,
                                             PageId root, uint32_t height,
                                             uint64_t count) {
  std::unique_ptr<RTree> tree(new RTree(pool, options));
  tree->root_ = root;
  tree->height_ = height;
  tree->count_ = count;
  return tree;
}

// ---------------------------------------------------------------- insert

void RTree::DispatchSplit(const std::vector<REntry>& entries,
                          std::vector<REntry>* ga,
                          std::vector<REntry>* gb) const {
  switch (options_.split) {
    case RTreeOptions::Split::kQuadratic:
      QuadraticSplit(entries, min_entries_, ga, gb);
      break;
    case RTreeOptions::Split::kLinear:
      LinearSplit(entries, min_entries_, ga, gb);
      break;
    case RTreeOptions::Split::kRStar:
      RStarSplit(entries, min_entries_, ga, gb);
      break;
  }
}

Status RTree::Insert(const Rect& mbr, ObjectId oid) {
  if (!mbr.valid()) return Status::InvalidArgument("invalid MBR");
  ZDB_RETURN_IF_ERROR(InsertAtLevel(REntry{mbr, oid}, 0));
  ++count_;
  return Status::OK();
}

Status RTree::InsertAtLevel(const REntry& entry, uint32_t target_level) {
  SplitOut split;
  Rect new_mbr;
  ZDB_RETURN_IF_ERROR(
      InsertRec(root_, height_ - 1, entry, target_level, &split, &new_mbr));
  if (split.split) {
    PageRef ref;
    ZDB_ASSIGN_OR_RETURN(ref, pool_->New());
    RNode::Init(&ref, /*leaf=*/false);
    RNode new_root(std::move(ref), capacity_);
    new_root.Append(REntry{new_mbr, root_});
    new_root.Append(REntry{split.rect, split.right});
    root_ = new_root.id();
    ++height_;
  }
  return Status::OK();
}

Status RTree::InsertRec(PageId page, uint32_t level, const REntry& entry,
                        uint32_t target_level, SplitOut* out,
                        Rect* new_mbr) {
  PageRef ref;
  ZDB_ASSIGN_OR_RETURN(ref, pool_->Fetch(page));
  RNode node(std::move(ref), capacity_);

  if (level == target_level) {
    if (node.count() < capacity_) {
      node.Append(entry);
      *new_mbr = node.Bounds();
      return Status::OK();
    }
    // Overflow: split the capacity+1 entries into two groups.
    std::vector<REntry> entries = node.Drain();
    entries.push_back(entry);
    std::vector<REntry> ga, gb;
    DispatchSplit(entries, &ga, &gb);
    PageRef rref;
    ZDB_ASSIGN_OR_RETURN(rref, pool_->New());
    RNode::Init(&rref, node.is_leaf());
    RNode right(std::move(rref), capacity_);
    node.Rewrite(ga);
    right.Rewrite(gb);
    out->split = true;
    out->rect = GroupBounds(gb);
    out->right = right.id();
    *new_mbr = GroupBounds(ga);
    return Status::OK();
  }

  // ChooseSubtree: least enlargement, ties by least area.
  assert(!node.is_leaf());
  uint16_t best = 0;
  double best_enlarge = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (uint16_t i = 0; i < node.count(); ++i) {
    const Rect r = node.Get(i).rect;
    const double enlarge = r.Union(entry.rect).area() - r.area();
    const double area = r.area();
    if (enlarge < best_enlarge ||
        (enlarge == best_enlarge && area < best_area)) {
      best_enlarge = enlarge;
      best_area = area;
      best = i;
    }
  }

  REntry chosen = node.Get(best);
  SplitOut child_split;
  Rect child_mbr;
  ZDB_RETURN_IF_ERROR(InsertRec(chosen.ref, level - 1, entry, target_level,
                                &child_split, &child_mbr));
  chosen.rect = child_mbr;
  node.Set(best, chosen);

  if (child_split.split) {
    const REntry new_entry{child_split.rect, child_split.right};
    if (node.count() < capacity_) {
      node.Append(new_entry);
    } else {
      std::vector<REntry> entries = node.Drain();
      entries.push_back(new_entry);
      std::vector<REntry> ga, gb;
      DispatchSplit(entries, &ga, &gb);
      PageRef rref;
      ZDB_ASSIGN_OR_RETURN(rref, pool_->New());
      RNode::Init(&rref, /*leaf=*/false);
      RNode right(std::move(rref), capacity_);
      node.Rewrite(ga);
      right.Rewrite(gb);
      out->split = true;
      out->rect = GroupBounds(gb);
      out->right = right.id();
      *new_mbr = GroupBounds(ga);
      return Status::OK();
    }
  }
  *new_mbr = node.Bounds();
  return Status::OK();
}

// ---------------------------------------------------------------- delete

Status RTree::Delete(const Rect& mbr, ObjectId oid) {
  bool found = false;
  bool removed_page = false;
  Rect new_mbr;
  std::vector<std::pair<REntry, uint32_t>> orphans;
  ZDB_RETURN_IF_ERROR(DeleteRec(root_, height_ - 1, mbr, oid, &found,
                                &removed_page, &new_mbr, &orphans));
  if (!found) return Status::NotFound("no such (mbr, oid) entry");
  --count_;

  // Reinsert orphaned entries at their original levels.
  for (const auto& [entry, level] : orphans) {
    ZDB_RETURN_IF_ERROR(InsertAtLevel(entry, level));
  }

  // Shrink the root while it is an internal node with a single child.
  for (;;) {
    PageRef ref;
    ZDB_ASSIGN_OR_RETURN(ref, pool_->Fetch(root_));
    RNode node(std::move(ref), capacity_);
    if (node.is_leaf() || node.count() != 1) break;
    const PageId child = node.Get(0).ref;
    const PageId old_root = root_;
    node = RNode(PageRef(), capacity_);  // unpin before delete
    ZDB_RETURN_IF_ERROR(pool_->Delete(old_root));
    root_ = child;
    --height_;
  }
  return Status::OK();
}

Status RTree::DeleteRec(PageId page, uint32_t level, const Rect& mbr,
                        ObjectId oid, bool* found, bool* removed_page,
                        Rect* new_mbr,
                        std::vector<std::pair<REntry, uint32_t>>* orphans) {
  PageRef ref;
  ZDB_ASSIGN_OR_RETURN(ref, pool_->Fetch(page));
  RNode node(std::move(ref), capacity_);

  if (node.is_leaf()) {
    for (uint16_t i = 0; i < node.count(); ++i) {
      const REntry e = node.Get(i);
      if (e.ref == oid && e.rect == mbr) {
        node.Remove(i);
        *found = true;
        break;
      }
    }
    if (!*found) return Status::OK();
  } else {
    for (uint16_t i = 0; i < node.count() && !*found; ++i) {
      REntry e = node.Get(i);
      if (!e.rect.Contains(mbr)) continue;
      bool child_removed = false;
      Rect child_mbr;
      ZDB_RETURN_IF_ERROR(DeleteRec(e.ref, level - 1, mbr, oid, found,
                                    &child_removed, &child_mbr, orphans));
      if (!*found) continue;
      if (child_removed) {
        node.Remove(i);
      } else {
        e.rect = child_mbr;
        node.Set(i, e);
      }
    }
    if (!*found) return Status::OK();
  }

  // CondenseTree: a non-root node that dropped below minimum occupancy is
  // dissolved; its entries are reinserted by the caller chain.
  if (page != root_ && node.count() < min_entries_) {
    for (const REntry& e : node.Drain()) {
      orphans->emplace_back(e, level);
    }
    node = RNode(PageRef(), capacity_);  // unpin before delete
    ZDB_RETURN_IF_ERROR(pool_->Delete(page));
    *removed_page = true;
    return Status::OK();
  }
  if (node.count() > 0) *new_mbr = node.Bounds();
  *removed_page = false;
  return Status::OK();
}

// ---------------------------------------------------------------- queries

template <typename NodePred, typename LeafPred>
Status RTree::QueryRec(PageId page, const NodePred& node_pred,
                       const LeafPred& leaf_pred, std::vector<ObjectId>* out,
                       RQueryStats* stats) const {
  PageRef ref;
  ZDB_ASSIGN_OR_RETURN(ref, pool_->Fetch(page));
  RNode node(std::move(ref), capacity_);
  if (stats != nullptr) ++stats->nodes_visited;

  if (node.is_leaf()) {
    for (uint16_t i = 0; i < node.count(); ++i) {
      const REntry e = node.Get(i);
      if (stats != nullptr) ++stats->leaf_entries_tested;
      if (leaf_pred(e.rect)) out->push_back(e.ref);
    }
    return Status::OK();
  }
  for (uint16_t i = 0; i < node.count(); ++i) {
    const REntry e = node.Get(i);
    if (node_pred(e.rect)) {
      ZDB_RETURN_IF_ERROR(
          QueryRec(e.ref, node_pred, leaf_pred, out, stats));
    }
  }
  return Status::OK();
}

Result<std::vector<ObjectId>> RTree::WindowQuery(const Rect& window,
                                                 RQueryStats* stats) {
  std::vector<ObjectId> out;
  ZDB_RETURN_IF_ERROR(QueryRec(
      root_, [&](const Rect& r) { return r.Intersects(window); },
      [&](const Rect& r) { return r.Intersects(window); }, &out, stats));
  if (stats != nullptr) stats->results = out.size();
  return out;
}

Result<std::vector<ObjectId>> RTree::PointQuery(const Point& p,
                                                RQueryStats* stats) {
  std::vector<ObjectId> out;
  ZDB_RETURN_IF_ERROR(QueryRec(
      root_, [&](const Rect& r) { return r.Contains(p); },
      [&](const Rect& r) { return r.Contains(p); }, &out, stats));
  if (stats != nullptr) stats->results = out.size();
  return out;
}

Result<std::vector<ObjectId>> RTree::ContainmentQuery(const Rect& window,
                                                      RQueryStats* stats) {
  std::vector<ObjectId> out;
  ZDB_RETURN_IF_ERROR(QueryRec(
      root_, [&](const Rect& r) { return r.Intersects(window); },
      [&](const Rect& r) { return window.Contains(r); }, &out, stats));
  if (stats != nullptr) stats->results = out.size();
  return out;
}

Result<std::vector<ObjectId>> RTree::EnclosureQuery(const Rect& window,
                                                    RQueryStats* stats) {
  std::vector<ObjectId> out;
  ZDB_RETURN_IF_ERROR(QueryRec(
      root_, [&](const Rect& r) { return r.Contains(window); },
      [&](const Rect& r) { return r.Contains(window); }, &out, stats));
  if (stats != nullptr) stats->results = out.size();
  return out;
}

Result<std::vector<std::pair<ObjectId, double>>> RTree::NearestNeighbors(
    const Point& p, size_t k, RQueryStats* stats) {
  std::vector<std::pair<ObjectId, double>> results;
  if (k == 0 || count_ == 0) return results;

  struct QueueItem {
    double dist;
    bool is_object;
    uint32_t ref;  // page id or object id
    bool operator>(const QueueItem& o) const { return dist > o.dist; }
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>,
                      std::greater<QueueItem>>
      queue;
  queue.push({0.0, false, root_});

  while (!queue.empty() && results.size() < k) {
    const QueueItem item = queue.top();
    queue.pop();
    if (item.is_object) {
      // MINDIST order guarantees this is the next-nearest object.
      results.emplace_back(item.ref, item.dist);
      continue;
    }
    PageRef ref;
    ZDB_ASSIGN_OR_RETURN(ref, pool_->Fetch(item.ref));
    RNode node(std::move(ref), capacity_);
    if (stats != nullptr) ++stats->nodes_visited;
    for (uint16_t i = 0; i < node.count(); ++i) {
      const REntry e = node.Get(i);
      queue.push({e.rect.DistanceTo(p), node.is_leaf(), e.ref});
      if (stats != nullptr && node.is_leaf()) ++stats->leaf_entries_tested;
    }
  }
  if (stats != nullptr) stats->results = results.size();
  return results;
}

// ---------------------------------------------------------------- checks

Result<uint32_t> RTree::PageCount() const {
  uint32_t pages = 0;
  std::vector<PageId> frontier{root_};
  while (!frontier.empty()) {
    std::vector<PageId> next_level;
    for (PageId id : frontier) {
      PageRef ref;
      ZDB_ASSIGN_OR_RETURN(ref, pool_->Fetch(id));
      RNode node(std::move(ref), capacity_);
      ++pages;
      if (!node.is_leaf()) {
        for (uint16_t i = 0; i < node.count(); ++i) {
          next_level.push_back(node.Get(i).ref);
        }
      }
    }
    frontier = std::move(next_level);
  }
  return pages;
}

Status RTree::CheckInvariants() const {
  uint32_t leaf_depth = 0;
  uint64_t entries = 0;
  ZDB_RETURN_IF_ERROR(
      CheckRec(root_, height_ - 1, nullptr, &leaf_depth, &entries));
  if (entries != count_) {
    return Status::Corruption("entry count mismatch");
  }
  return Status::OK();
}

Status RTree::CheckRec(PageId page, uint32_t level, const Rect* bound,
                       uint32_t* leaf_depth, uint64_t* entries) const {
  PageRef ref;
  ZDB_ASSIGN_OR_RETURN(ref, pool_->Fetch(page));
  RNode node(std::move(ref), capacity_);

  if (page != root_ && node.count() < min_entries_) {
    return Status::Corruption("underfull node " + std::to_string(page));
  }
  if (node.count() > capacity_) {
    return Status::Corruption("overfull node " + std::to_string(page));
  }
  for (uint16_t i = 0; i < node.count(); ++i) {
    const REntry e = node.Get(i);
    if (bound != nullptr && !bound->Contains(e.rect)) {
      return Status::Corruption("entry escapes parent MBR in page " +
                                std::to_string(page));
    }
  }
  if (node.is_leaf()) {
    if (level != 0) return Status::Corruption("leaf at non-zero level");
    if (*leaf_depth == 0) {
      *leaf_depth = height_;
    }
    *entries += node.count();
    return Status::OK();
  }
  for (uint16_t i = 0; i < node.count(); ++i) {
    const REntry e = node.Get(i);
    const Rect r = e.rect;
    ZDB_RETURN_IF_ERROR(
        CheckRec(e.ref, level - 1, &r, leaf_depth, entries));
  }
  return Status::OK();
}

}  // namespace zdb
