// Copyright (c) zdb authors. Licensed under the MIT license.

#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace zdb {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Result<Socket> TcpListen(const std::string& host, uint16_t port,
                         int backlog) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) return Errno("socket");
  const int one = 1;
  ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address: " + host);
  }
  if (::bind(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(s.fd(), backlog) != 0) return Errno("listen");
  return s;
}

Result<uint16_t> LocalPort(const Socket& s) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Result<Socket> TcpConnect(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    // Fall back to resolution for non-numeric hosts.
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    if (::getaddrinfo(host.c_str(), nullptr, &hints, &res) != 0 ||
        res == nullptr) {
      return Status::Unavailable("cannot resolve host: " + host);
    }
    addr.sin_addr =
        reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
    ::freeaddrinfo(res);
  }

  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) return Errno("socket");
  const int one = 1;
  ::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  int rc;
  do {
    rc = ::connect(s.fd(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return Status::Unavailable("connect " + host + ":" +
                               std::to_string(port) + ": " +
                               std::strerror(errno));
  }
  return s;
}

Result<Socket> UnixListen(const std::string& path, int backlog) {
  sockaddr_un addr{};
  // Reject over-long paths outright: a truncating copy into sun_path
  // would silently bind a *different* address than the caller asked for.
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long (" +
                                   std::to_string(path.size()) + " > " +
                                   std::to_string(sizeof(addr.sun_path) - 1) +
                                   " bytes): " + path);
  }
  Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!s.valid()) return Errno("socket");
  ::unlink(path.c_str());  // stale socket file from a previous run
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());  // fits: checked above
  if (::bind(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind " + path);
  }
  if (::listen(s.fd(), backlog) != 0) return Errno("listen " + path);
  return s;
}

Result<Socket> UnixConnect(const std::string& path) {
  sockaddr_un addr{};
  // Same contract as UnixListen: never truncate-and-connect to a
  // different address than the one requested.
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long (" +
                                   std::to_string(path.size()) + " > " +
                                   std::to_string(sizeof(addr.sun_path) - 1) +
                                   " bytes): " + path);
  }
  Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!s.valid()) return Errno("socket");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());  // fits: checked above
  int rc;
  do {
    rc = ::connect(s.fd(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return Status::Unavailable("connect " + path + ": " +
                               std::strerror(errno));
  }
  return s;
}

// --------------------------------------------------------- endpoint URIs

Result<Endpoint> ParseEndpoint(const std::string& uri) {
  Endpoint ep;
  if (uri.rfind("unix://", 0) == 0) {
    ep.kind = Endpoint::Kind::kUnix;
    ep.path = uri.substr(7);
    if (ep.path.empty()) {
      return Status::InvalidArgument("empty unix socket path in endpoint: " +
                                     uri);
    }
    return ep;
  }
  if (uri.rfind("tcp://", 0) != 0) {
    return Status::InvalidArgument(
        "endpoint must be tcp://host:port or unix://path: " + uri);
  }
  const std::string rest = uri.substr(6);
  const size_t colon = rest.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == rest.size()) {
    return Status::InvalidArgument("tcp endpoint wants host:port: " + uri);
  }
  ep.kind = Endpoint::Kind::kTcp;
  ep.host = rest.substr(0, colon);
  unsigned long port = 0;
  for (size_t i = colon + 1; i < rest.size(); ++i) {
    const char c = rest[i];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("non-numeric port in endpoint: " + uri);
    }
    port = port * 10 + static_cast<unsigned long>(c - '0');
    if (port > 65535) {
      return Status::InvalidArgument("port out of range in endpoint: " + uri);
    }
  }
  ep.port = static_cast<uint16_t>(port);
  return ep;
}

Result<Socket> Connect(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    return UnixConnect(endpoint.path);
  }
  return TcpConnect(endpoint.host, endpoint.port);
}

Result<Socket> ConnectEndpoint(const std::string& uri) {
  Endpoint ep;
  ZDB_ASSIGN_OR_RETURN(ep, ParseEndpoint(uri));
  return Connect(ep);
}

Result<Socket> Accept(Socket& listener) {
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    return Status::Unavailable(std::string("accept: ") +
                               std::strerror(errno));
  }
}

Status WriteFully(const Socket& s, const char* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t rc =
        ::send(s.fd(), data + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(rc);
  }
  return Status::OK();
}

Result<size_t> ReadSome(const Socket& s, char* buf, size_t n) {
  for (;;) {
    const ssize_t rc = ::recv(s.fd(), buf, n, 0);
    if (rc >= 0) return static_cast<size_t>(rc);
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

Result<bool> WaitReadable(const Socket& s, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = s.fd();
  pfd.events = POLLIN;
  // The timeout is a monotonic deadline, not a per-poll budget: each
  // EINTR restart passes only the *remaining* time. Restarting with the
  // full timeout (the old behavior) meant a process receiving signals
  // faster than the timeout never observed it at all.
  const auto deadline = timeout_ms >= 0
                            ? std::chrono::steady_clock::now() +
                                  std::chrono::milliseconds(timeout_ms)
                            : std::chrono::steady_clock::time_point{};
  int remaining = timeout_ms;
  for (;;) {
    const int rc = ::poll(&pfd, 1, remaining);
    if (rc < 0) {
      if (errno == EINTR) {
        if (timeout_ms >= 0) {
          const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now());
          if (left.count() <= 0) return false;  // deadline passed mid-signal
          remaining = static_cast<int>(left.count());
        }
        continue;
      }
      return Errno("poll");
    }
    if (rc == 0) return false;  // timeout
    // POLLHUP/POLLERR surface as readable: the next recv reports the
    // close/err, keeping the error path single.
    return true;
  }
}

// ------------------------------------------------- nonblocking primitives

Status SetNonBlocking(const Socket& s, bool nonblocking) {
  const int flags = ::fcntl(s.fd(), F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  const int want =
      nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && ::fcntl(s.fd(), F_SETFL, want) != 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return Status::OK();
}

Result<IoEvent> TryRead(const Socket& s, char* buf, size_t cap, size_t* n) {
  *n = 0;
  for (;;) {
    const ssize_t rc = ::recv(s.fd(), buf, cap, 0);
    if (rc > 0) {
      *n = static_cast<size_t>(rc);
      return IoEvent::kData;
    }
    if (rc == 0) return IoEvent::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoEvent::kWouldBlock;
    return Errno("recv");
  }
}

Result<IoEvent> WriteSome(const Socket& s, const char* data, size_t len,
                          size_t* n) {
  *n = 0;
  for (;;) {
    const ssize_t rc = ::send(s.fd(), data, len, MSG_NOSIGNAL);
    if (rc >= 0) {
      *n = static_cast<size_t>(rc);
      return IoEvent::kData;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoEvent::kWouldBlock;
    return Errno("send");
  }
}

AcceptOutcome ClassifyAcceptError(int err) {
  switch (err) {
    case EAGAIN:
#if EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
      return AcceptOutcome::kWouldBlock;
    case EMFILE:   // per-process fd table full
    case ENFILE:   // system fd table full
    case ENOBUFS:
    case ENOMEM:
      return AcceptOutcome::kFdExhausted;
    case EBADF:
    case EINVAL:   // listener shut down (Linux) or not listening
    case ENOTSOCK:
    case EOPNOTSUPP:
      return AcceptOutcome::kShutdown;
    default:
      // EINTR, ECONNABORTED, EPROTO, EPERM (firewall), network errors a
      // half-open peer can induce, and anything unforeseen: the listener
      // itself is fine, so the only safe answer is "try again".
      return AcceptOutcome::kRetry;
  }
}

AcceptOutcome AcceptNonBlocking(const Socket& listener, Socket* out) {
  const int fd = ::accept4(listener.fd(), nullptr, nullptr, SOCK_NONBLOCK);
  if (fd >= 0) {
    *out = Socket(fd);
    return AcceptOutcome::kAccepted;
  }
  return ClassifyAcceptError(errno);
}

}  // namespace net
}  // namespace zdb
