// Copyright (c) zdb authors. Licensed under the MIT license.

#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace zdb {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Result<Socket> TcpListen(const std::string& host, uint16_t port,
                         int backlog) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) return Errno("socket");
  const int one = 1;
  ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address: " + host);
  }
  if (::bind(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(s.fd(), backlog) != 0) return Errno("listen");
  return s;
}

Result<uint16_t> LocalPort(const Socket& s) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Result<Socket> TcpConnect(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    // Fall back to resolution for non-numeric hosts.
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    if (::getaddrinfo(host.c_str(), nullptr, &hints, &res) != 0 ||
        res == nullptr) {
      return Status::Unavailable("cannot resolve host: " + host);
    }
    addr.sin_addr =
        reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
    ::freeaddrinfo(res);
  }

  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) return Errno("socket");
  const int one = 1;
  ::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  int rc;
  do {
    rc = ::connect(s.fd(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return Status::Unavailable("connect " + host + ":" +
                               std::to_string(port) + ": " +
                               std::strerror(errno));
  }
  return s;
}

Result<Socket> UnixListen(const std::string& path, int backlog) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!s.valid()) return Errno("socket");
  ::unlink(path.c_str());  // stale socket file from a previous run
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind " + path);
  }
  if (::listen(s.fd(), backlog) != 0) return Errno("listen " + path);
  return s;
}

Result<Socket> UnixConnect(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!s.valid()) return Errno("socket");
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  int rc;
  do {
    rc = ::connect(s.fd(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return Status::Unavailable("connect " + path + ": " +
                               std::strerror(errno));
  }
  return s;
}

Result<Socket> Accept(Socket& listener) {
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    return Status::Unavailable(std::string("accept: ") +
                               std::strerror(errno));
  }
}

Status WriteFully(const Socket& s, const char* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t rc =
        ::send(s.fd(), data + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(rc);
  }
  return Status::OK();
}

Result<size_t> ReadSome(const Socket& s, char* buf, size_t n) {
  for (;;) {
    const ssize_t rc = ::recv(s.fd(), buf, n, 0);
    if (rc >= 0) return static_cast<size_t>(rc);
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

Result<bool> WaitReadable(const Socket& s, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = s.fd();
  pfd.events = POLLIN;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if (rc == 0) return false;  // timeout
    // POLLHUP/POLLERR surface as readable: the next recv reports the
    // close/err, keeping the error path single.
    return true;
  }
}

}  // namespace net
}  // namespace zdb
