// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Thin POSIX socket layer shared by the server and the client: an RAII
// fd wrapper plus TCP / unix-domain listen, accept and connect helpers,
// full-buffer read/write loops for synchronous callers, and the
// nonblocking primitives (SetNonBlocking, TryRead, WriteSome,
// AcceptNonBlocking) the event-driven server front end is built on.
// Everything reports failures as Status; EINTR is retried; SIGPIPE is
// avoided via MSG_NOSIGNAL.

#ifndef ZDB_NET_SOCKET_H_
#define ZDB_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace zdb {
namespace net {

/// Owning socket file descriptor. Movable, not copyable; closes on
/// destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { Close(); }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Closes the descriptor (idempotent).
  void Close();

  /// shutdown(2) both directions — unblocks a peer or a reader thread
  /// without racing the fd number (the fd stays allocated until Close).
  void ShutdownBoth();

 private:
  int fd_ = -1;
};

/// Listening TCP socket bound to host:port (SO_REUSEADDR; port 0 picks
/// an ephemeral port — read it back with LocalPort).
Result<Socket> TcpListen(const std::string& host, uint16_t port,
                         int backlog = 64);

/// The locally bound port of a TCP socket (after TcpListen with port 0).
Result<uint16_t> LocalPort(const Socket& s);

/// Blocking TCP connect to host:port (numeric or resolvable host).
Result<Socket> TcpConnect(const std::string& host, uint16_t port);

/// Listening unix-domain socket at `path` (an existing stale socket file
/// is unlinked first).
Result<Socket> UnixListen(const std::string& path, int backlog = 64);

/// Blocking unix-domain connect.
Result<Socket> UnixConnect(const std::string& path);

// ------------------------------------------------------- endpoint URIs
//
// One string names any listener: "tcp://host:port" or "unix://path".
// The client API, the server's --leader flag and the follower applier
// all speak these, so a connection target is a single value instead of
// a (kind, host, port, path) bundle.

/// A parsed endpoint URI.
struct Endpoint {
  enum class Kind : uint8_t { kTcp, kUnix };
  Kind kind = Kind::kTcp;
  std::string host;   ///< kTcp: numeric or resolvable host
  uint16_t port = 0;  ///< kTcp
  std::string path;   ///< kUnix: socket file path
};

/// Parses "tcp://host:port" / "unix://path". Typed InvalidArgument on an
/// unknown scheme, a missing or non-numeric port, or an empty target.
[[nodiscard]] Result<Endpoint> ParseEndpoint(const std::string& uri);

/// Blocking connect to a parsed or textual endpoint.
Result<Socket> Connect(const Endpoint& endpoint);
Result<Socket> ConnectEndpoint(const std::string& uri);

/// Accepts one connection. Blocks; fails with kUnavailable once the
/// listening socket is shut down.
Result<Socket> Accept(Socket& listener);

/// Writes the whole buffer (retrying short writes / EINTR).
Status WriteFully(const Socket& s, const char* data, size_t n);

/// One read(2) of up to `n` bytes. Returns 0 on orderly peer close.
Result<size_t> ReadSome(const Socket& s, char* buf, size_t n);

/// Waits until the socket is readable. Returns false on timeout
/// (timeout_ms >= 0) and an error Status on poll failure or hangup
/// without data. timeout_ms < 0 waits forever. The timeout is a
/// monotonic deadline: EINTR restarts the wait with the *remaining*
/// time, so a signal-heavy process still observes it.
Result<bool> WaitReadable(const Socket& s, int timeout_ms);

// ------------------------------------------------- nonblocking primitives

/// Switches the descriptor's O_NONBLOCK flag.
Status SetNonBlocking(const Socket& s, bool nonblocking = true);

/// Outcome of one nonblocking read/write attempt that did not fail.
enum class IoEvent : uint8_t {
  kData,        ///< *n bytes were transferred (reads: n > 0)
  kWouldBlock,  ///< nothing transferable now; retry on readiness
  kEof,         ///< orderly peer close (reads only)
};

/// One nonblocking recv(2) of up to `cap` bytes into `buf`; *n is the
/// byte count when kData. Errors (connection reset, ...) come back as a
/// Status; EINTR is retried.
Result<IoEvent> TryRead(const Socket& s, char* buf, size_t cap, size_t* n);

/// One nonblocking send(2) of up to `len` bytes; *n is the (possibly
/// short) byte count when kData. A full socket buffer is kWouldBlock —
/// resume when the fd polls writable. Never returns kEof.
Result<IoEvent> WriteSome(const Socket& s, const char* data, size_t len,
                          size_t* n);

/// Classified outcome of a nonblocking accept attempt. The distinction
/// matters for listener longevity: transient failures must never kill
/// an accept loop (the pre-epoll server died on the first ECONNABORTED).
enum class AcceptOutcome : uint8_t {
  kAccepted,     ///< *out holds the new connection
  kWouldBlock,   ///< no pending connection; wait for readiness
  kRetry,        ///< transient (EINTR, ECONNABORTED, EPROTO, ...): retry now
  kFdExhausted,  ///< EMFILE/ENFILE/ENOBUFS/ENOMEM: back off, then retry
  kShutdown,     ///< the listener itself is shut down or invalid: stop
};

/// Maps an accept(2) errno onto the retry policy above. Unknown errnos
/// classify as kRetry — permanently abandoning a listener is the one
/// unrecoverable outcome, so only provably-dead listeners get kShutdown.
AcceptOutcome ClassifyAcceptError(int err);

/// One nonblocking accept(4) attempt on `listener`. On kAccepted, *out
/// is the new connection (already O_NONBLOCK via SOCK_NONBLOCK).
AcceptOutcome AcceptNonBlocking(const Socket& listener, Socket* out);

}  // namespace net
}  // namespace zdb

#endif  // ZDB_NET_SOCKET_H_
