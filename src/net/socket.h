// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Thin POSIX socket layer shared by the server and the client: an RAII
// fd wrapper plus TCP / unix-domain listen, accept and connect helpers
// and full-buffer read/write loops. Everything reports failures as
// Status; EINTR is retried; SIGPIPE is avoided via MSG_NOSIGNAL.

#ifndef ZDB_NET_SOCKET_H_
#define ZDB_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace zdb {
namespace net {

/// Owning socket file descriptor. Movable, not copyable; closes on
/// destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { Close(); }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Closes the descriptor (idempotent).
  void Close();

  /// shutdown(2) both directions — unblocks a peer or a reader thread
  /// without racing the fd number (the fd stays allocated until Close).
  void ShutdownBoth();

 private:
  int fd_ = -1;
};

/// Listening TCP socket bound to host:port (SO_REUSEADDR; port 0 picks
/// an ephemeral port — read it back with LocalPort).
Result<Socket> TcpListen(const std::string& host, uint16_t port,
                         int backlog = 64);

/// The locally bound port of a TCP socket (after TcpListen with port 0).
Result<uint16_t> LocalPort(const Socket& s);

/// Blocking TCP connect to host:port (numeric or resolvable host).
Result<Socket> TcpConnect(const std::string& host, uint16_t port);

/// Listening unix-domain socket at `path` (an existing stale socket file
/// is unlinked first).
Result<Socket> UnixListen(const std::string& path, int backlog = 64);

/// Blocking unix-domain connect.
Result<Socket> UnixConnect(const std::string& path);

/// Accepts one connection. Blocks; fails with kUnavailable once the
/// listening socket is shut down.
Result<Socket> Accept(Socket& listener);

/// Writes the whole buffer (retrying short writes / EINTR).
Status WriteFully(const Socket& s, const char* data, size_t n);

/// One read(2) of up to `n` bytes. Returns 0 on orderly peer close.
Result<size_t> ReadSome(const Socket& s, char* buf, size_t n);

/// Waits until the socket is readable. Returns false on timeout
/// (timeout_ms >= 0) and an error Status on poll failure or hangup
/// without data. timeout_ms < 0 waits forever.
Result<bool> WaitReadable(const Socket& s, int timeout_ms);

}  // namespace net
}  // namespace zdb

#endif  // ZDB_NET_SOCKET_H_
