// Copyright (c) zdb authors. Licensed under the MIT license.

#include "net/wire.h"

#include <cstring>

#include "common/coding.h"

namespace zdb {
namespace net {

namespace {

void PutDouble(std::string* dst, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  char buf[8];
  EncodeFixed64(buf, bits);
  dst->append(buf, 8);
}

void PutU32(std::string* dst, uint32_t v) {
  char buf[4];
  EncodeFixed32(buf, v);
  dst->append(buf, 4);
}

void PutU64(std::string* dst, uint64_t v) {
  char buf[8];
  EncodeFixed64(buf, v);
  dst->append(buf, 8);
}

}  // namespace

bool KnownOpcode(uint8_t op) {
  return op >= static_cast<uint8_t>(Opcode::kPing) &&
         op <= static_cast<uint8_t>(Opcode::kLogAck);
}

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kPing: return "ping";
    case Opcode::kWindow: return "window";
    case Opcode::kPoint: return "point";
    case Opcode::kKnn: return "knn";
    case Opcode::kApply: return "apply";
    case Opcode::kStats: return "stats";
    case Opcode::kShutdown: return "shutdown";
    case Opcode::kSubscribe: return "subscribe";
    case Opcode::kLogRecord: return "log_record";
    case Opcode::kLogAck: return "log_ack";
  }
  return "unknown";
}

const char* WireErrorName(WireError e) {
  switch (e) {
    case WireError::kOk: return "ok";
    case WireError::kMalformed: return "malformed";
    case WireError::kUnknownOpcode: return "unknown_opcode";
    case WireError::kBadVersion: return "bad_version";
    case WireError::kFrameTooLarge: return "frame_too_large";
    case WireError::kBadMagic: return "bad_magic";
    case WireError::kBusy: return "busy";
    case WireError::kShuttingDown: return "shutting_down";
    case WireError::kServerError: return "server_error";
    case WireError::kNotFound: return "not_found";
    case WireError::kCorruption: return "corruption";
    case WireError::kInvalidArgument: return "invalid_argument";
    case WireError::kIOError: return "io_error";
    case WireError::kNoSpace: return "no_space";
    case WireError::kAlreadyExists: return "already_exists";
    case WireError::kTimedOut: return "timed_out";
    case WireError::kNotLeader: return "not_leader";
    case WireError::kStaleRead: return "stale_read";
  }
  return "unknown";
}

// ------------------------------------------- Status <-> WireError table

WireError StatusCodeToWireError(Status::Code code) {
  switch (code) {
    case Status::Code::kOk: return WireError::kOk;
    case Status::Code::kNotFound: return WireError::kNotFound;
    case Status::Code::kCorruption: return WireError::kCorruption;
    case Status::Code::kInvalidArgument: return WireError::kInvalidArgument;
    case Status::Code::kIOError: return WireError::kIOError;
    case Status::Code::kNoSpace: return WireError::kNoSpace;
    case Status::Code::kAlreadyExists: return WireError::kAlreadyExists;
    case Status::Code::kInternal: return WireError::kServerError;
    case Status::Code::kBusy: return WireError::kBusy;
    case Status::Code::kUnavailable: return WireError::kShuttingDown;
    case Status::Code::kTimedOut: return WireError::kTimedOut;
    // No dedicated wire code: a rolled-back snapshot epoch is a server-
    // side condition the client retries like any transient server error.
    case Status::Code::kAborted: return WireError::kServerError;
    case Status::Code::kNotLeader: return WireError::kNotLeader;
  }
  return WireError::kServerError;
}

Status::Code WireErrorToStatusCode(WireError e) {
  switch (e) {
    case WireError::kOk: return Status::Code::kOk;
    case WireError::kBusy: return Status::Code::kBusy;
    case WireError::kShuttingDown: return Status::Code::kUnavailable;
    case WireError::kServerError: return Status::Code::kInternal;
    case WireError::kNotFound: return Status::Code::kNotFound;
    case WireError::kCorruption: return Status::Code::kCorruption;
    case WireError::kInvalidArgument: return Status::Code::kInvalidArgument;
    case WireError::kIOError: return Status::Code::kIOError;
    case WireError::kNoSpace: return Status::Code::kNoSpace;
    case WireError::kAlreadyExists: return Status::Code::kAlreadyExists;
    case WireError::kTimedOut: return Status::Code::kTimedOut;
    case WireError::kNotLeader: return Status::Code::kNotLeader;
    // A stale-read rejection is a retry-elsewhere condition, like a
    // draining server: the replica is reachable but cannot honour the
    // staleness bound right now.
    case WireError::kStaleRead: return Status::Code::kUnavailable;
    // Framing/protocol violations have no engine-side Status of their
    // own; they collapse onto the protocol catch-all.
    case WireError::kMalformed:
    case WireError::kUnknownOpcode:
    case WireError::kBadVersion:
    case WireError::kFrameTooLarge:
    case WireError::kBadMagic:
      return Status::Code::kIOError;
  }
  return Status::Code::kIOError;
}

Status WireErrorToStatus(WireError e, std::string message) {
  switch (WireErrorToStatusCode(e)) {
    case Status::Code::kOk: return Status::OK();
    case Status::Code::kNotFound: return Status::NotFound(std::move(message));
    case Status::Code::kCorruption:
      return Status::Corruption(std::move(message));
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case Status::Code::kIOError: return Status::IOError(std::move(message));
    case Status::Code::kNoSpace: return Status::NoSpace(std::move(message));
    case Status::Code::kAlreadyExists:
      return Status::AlreadyExists(std::move(message));
    case Status::Code::kInternal: return Status::Internal(std::move(message));
    case Status::Code::kBusy: return Status::Busy(std::move(message));
    case Status::Code::kUnavailable:
      return Status::Unavailable(std::move(message));
    case Status::Code::kTimedOut: return Status::TimedOut(std::move(message));
    case Status::Code::kAborted: return Status::Aborted(std::move(message));
    case Status::Code::kNotLeader:
      return Status::NotLeader(std::move(message));
  }
  return Status::IOError(std::move(message));
}

// --------------------------------------------------------------- framing

void EncodeFrameHeader(char* dst, const FrameHeader& header) {
  EncodeFixed32(dst, kMagic);
  EncodeFixed32(dst + 4, header.payload_len);
  EncodeFixed16(dst + 8, header.version);
  dst[10] = static_cast<char>(header.opcode);
  dst[11] = static_cast<char>(header.flags);
  EncodeFixed64(dst + 12, header.request_id);
}

WireError DecodeFrameHeader(const char* src, FrameHeader* out) {
  const uint32_t magic = DecodeFixed32(src);
  out->payload_len = DecodeFixed32(src + 4);
  out->version = DecodeFixed16(src + 8);
  out->opcode = static_cast<uint8_t>(src[10]);
  out->flags = static_cast<uint8_t>(src[11]);
  out->request_id = DecodeFixed64(src + 12);
  if (magic != kMagic) return WireError::kBadMagic;
  if (out->version < kMinWireVersion || out->version > kWireVersion) {
    return WireError::kBadVersion;
  }
  if (out->payload_len > kMaxPayload) return WireError::kFrameTooLarge;
  return WireError::kOk;
}

std::string BuildFrame(Opcode op, uint8_t flags, uint64_t request_id,
                       std::string_view payload, uint16_t version) {
  FrameHeader h;
  h.payload_len = static_cast<uint32_t>(payload.size());
  h.version = version;
  h.opcode = static_cast<uint8_t>(op);
  h.flags = flags;
  h.request_id = request_id;
  std::string out;
  out.resize(kHeaderSize);
  EncodeFrameHeader(out.data(), h);
  out.append(payload.data(), payload.size());
  return out;
}

void FrameAssembler::Feed(const char* data, size_t n) {
  if (poisoned_) return;  // stream is dead; don't accumulate garbage
  // Compact the consumed prefix before it dominates the buffer.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 64 * 1024)) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

FrameAssembler::Next FrameAssembler::Poll(Frame* out, WireError* err,
                                          FrameHeader* err_header) {
  if (poisoned_) {
    *err = poison_code_;
    *err_header = poison_header_;
    return Next::kError;
  }
  if (buf_.size() - pos_ < kHeaderSize) return Next::kNeedMore;
  FrameHeader h;
  const WireError he = DecodeFrameHeader(buf_.data() + pos_, &h);
  if (he != WireError::kOk) {
    poisoned_ = true;
    poison_code_ = he;
    poison_header_ = h;
    *err = he;
    *err_header = h;
    return Next::kError;
  }
  if (buf_.size() - pos_ < kHeaderSize + h.payload_len) {
    return Next::kNeedMore;
  }
  out->header = h;
  out->payload.assign(buf_, pos_ + kHeaderSize, h.payload_len);
  pos_ += kHeaderSize + h.payload_len;
  return Next::kFrame;
}

// --------------------------------------------------------- PayloadReader

bool PayloadReader::GetU8(uint8_t* v) {
  if (remaining() < 1) return false;
  *v = static_cast<uint8_t>(*p_++);
  return true;
}

bool PayloadReader::GetU32(uint32_t* v) {
  if (remaining() < 4) return false;
  *v = DecodeFixed32(p_);
  p_ += 4;
  return true;
}

bool PayloadReader::GetU64(uint64_t* v) {
  if (remaining() < 8) return false;
  *v = DecodeFixed64(p_);
  p_ += 8;
  return true;
}

bool PayloadReader::GetDouble(double* v) {
  uint64_t bits;
  if (!GetU64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

bool PayloadReader::GetLengthPrefixedString(std::string* v) {
  uint32_t len;
  if (!GetU32(&len)) return false;
  if (remaining() < len) return false;
  v->assign(p_, len);
  p_ += len;
  return true;
}

// ------------------------------------------------------ request payloads

namespace {

/// Appends the optional v3 staleness-bound trailer; kNoStalenessBound
/// (the default) keeps the payload byte-identical to v1.
void PutStalenessBound(std::string* dst, uint64_t max_lag) {
  if (max_lag != kNoStalenessBound) PutU64(dst, max_lag);
}

/// Consumes the optional trailing bound when the caller asked for it
/// (max_lag non-null); strict v1 parsing otherwise. Returns false only
/// on a malformed trailer (wrong length is caught by the caller's
/// AtEnd()).
bool GetStalenessBound(PayloadReader* r, uint64_t* max_lag) {
  if (max_lag == nullptr) return true;
  *max_lag = kNoStalenessBound;
  if (r->remaining() == 8) return r->GetU64(max_lag);
  return true;
}

}  // namespace

std::string EncodeWindowRequest(const Rect& w, uint64_t max_lag) {
  std::string out;
  out.reserve(40);
  PutDouble(&out, w.xlo);
  PutDouble(&out, w.ylo);
  PutDouble(&out, w.xhi);
  PutDouble(&out, w.yhi);
  PutStalenessBound(&out, max_lag);
  return out;
}

bool DecodeWindowRequest(std::string_view payload, Rect* w,
                         uint64_t* max_lag) {
  PayloadReader r(payload);
  return r.GetDouble(&w->xlo) && r.GetDouble(&w->ylo) &&
         r.GetDouble(&w->xhi) && r.GetDouble(&w->yhi) &&
         GetStalenessBound(&r, max_lag) && r.AtEnd();
}

std::string EncodePointRequest(const Point& p, uint64_t max_lag) {
  std::string out;
  out.reserve(24);
  PutDouble(&out, p.x);
  PutDouble(&out, p.y);
  PutStalenessBound(&out, max_lag);
  return out;
}

bool DecodePointRequest(std::string_view payload, Point* p,
                        uint64_t* max_lag) {
  PayloadReader r(payload);
  return r.GetDouble(&p->x) && r.GetDouble(&p->y) &&
         GetStalenessBound(&r, max_lag) && r.AtEnd();
}

std::string EncodeKnnRequest(const Point& p, uint32_t k, uint64_t max_lag) {
  std::string out;
  out.reserve(28);
  PutDouble(&out, p.x);
  PutDouble(&out, p.y);
  PutU32(&out, k);
  PutStalenessBound(&out, max_lag);
  return out;
}

bool DecodeKnnRequest(std::string_view payload, Point* p, uint32_t* k,
                      uint64_t* max_lag) {
  PayloadReader r(payload);
  return r.GetDouble(&p->x) && r.GetDouble(&p->y) && r.GetU32(k) &&
         GetStalenessBound(&r, max_lag) && r.AtEnd();
}

std::string EncodeApplyRequest(const WriteBatch& batch,
                               Durability durability) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(batch.ops.size()));
  for (const WriteOp& op : batch.ops) {
    if (op.kind == WriteOp::Kind::kInsert) {
      out.push_back(0);
      PutDouble(&out, op.mbr.xlo);
      PutDouble(&out, op.mbr.ylo);
      PutDouble(&out, op.mbr.xhi);
      PutDouble(&out, op.mbr.yhi);
      PutU32(&out, op.payload);
    } else {
      out.push_back(1);
      PutU32(&out, op.oid);
    }
  }
  // kDurable is the implicit default — omitting the byte keeps the
  // payload byte-identical to wire v1.
  if (durability != Durability::kDurable) {
    out.push_back(static_cast<char>(durability));
  }
  return out;
}

bool DecodeApplyRequest(std::string_view payload, WriteBatch* batch,
                        Durability* durability) {
  if (durability != nullptr) *durability = Durability::kDurable;
  PayloadReader r(payload);
  uint32_t count;
  if (!r.GetU32(&count)) return false;
  // Each op is at least 5 bytes (kind + oid); a count claiming more ops
  // than the remaining bytes could hold is rejected before any loop (a
  // hostile count can't drive allocation).
  if (count > r.remaining() / 5) return false;
  batch->ops.clear();
  batch->ops.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t kind;
    if (!r.GetU8(&kind)) return false;
    if (kind == 0) {
      WriteOp op;
      op.kind = WriteOp::Kind::kInsert;
      if (!r.GetDouble(&op.mbr.xlo) || !r.GetDouble(&op.mbr.ylo) ||
          !r.GetDouble(&op.mbr.xhi) || !r.GetDouble(&op.mbr.yhi) ||
          !r.GetU32(&op.payload)) {
        return false;
      }
      batch->ops.push_back(op);
    } else if (kind == 1) {
      WriteOp op;
      op.kind = WriteOp::Kind::kErase;
      if (!r.GetU32(&op.oid)) return false;
      batch->ops.push_back(op);
    } else {
      return false;
    }
  }
  // Optional v2 trailing durability byte. A caller not asking for it
  // (durability == nullptr) parses strictly — the trailing byte fails
  // AtEnd() exactly as it does on a pre-v2 server.
  if (durability != nullptr && r.remaining() == 1) {
    uint8_t flag;
    if (!r.GetU8(&flag)) return false;
    if (flag != static_cast<uint8_t>(Durability::kDurable) &&
        flag != static_cast<uint8_t>(Durability::kPublished)) {
      return false;
    }
    *durability = static_cast<Durability>(flag);
  }
  return r.AtEnd();
}

// -------------------------------------------------------- reply payloads

std::string EncodeErrorReply(WireError code, std::string_view message) {
  std::string out;
  out.push_back(static_cast<char>(code));
  PutU32(&out, static_cast<uint32_t>(message.size()));
  out.append(message.data(), message.size());
  return out;
}

std::string EncodeIdListReply(uint64_t epoch_before, uint64_t epoch_after,
                              const std::vector<ObjectId>& ids) {
  std::string out;
  out.reserve(1 + 16 + 4 + 4 * ids.size());
  out.push_back(static_cast<char>(WireError::kOk));
  PutU64(&out, epoch_before);
  PutU64(&out, epoch_after);
  PutU32(&out, static_cast<uint32_t>(ids.size()));
  for (ObjectId oid : ids) PutU32(&out, oid);
  return out;
}

std::string EncodeKnnReply(
    uint64_t epoch_before, uint64_t epoch_after,
    const std::vector<std::pair<ObjectId, double>>& hits) {
  std::string out;
  out.reserve(1 + 16 + 4 + 12 * hits.size());
  out.push_back(static_cast<char>(WireError::kOk));
  PutU64(&out, epoch_before);
  PutU64(&out, epoch_after);
  PutU32(&out, static_cast<uint32_t>(hits.size()));
  for (const auto& [oid, dist] : hits) {
    PutU32(&out, oid);
    PutDouble(&out, dist);
  }
  return out;
}

std::string EncodeApplyReply(uint64_t epoch_after,
                             const std::vector<ObjectId>& inserted) {
  std::string out;
  out.reserve(1 + 8 + 4 + 4 * inserted.size());
  out.push_back(static_cast<char>(WireError::kOk));
  PutU64(&out, epoch_after);
  PutU32(&out, static_cast<uint32_t>(inserted.size()));
  for (ObjectId oid : inserted) PutU32(&out, oid);
  return out;
}

std::string EncodeStatsReply(std::string_view json) {
  std::string out;
  out.reserve(1 + 4 + json.size());
  out.push_back(static_cast<char>(WireError::kOk));
  PutU32(&out, static_cast<uint32_t>(json.size()));
  out.append(json.data(), json.size());
  return out;
}

std::string EncodeEmptyReply() {
  return std::string(1, static_cast<char>(WireError::kOk));
}

WireError ParseReplyStatus(std::string_view payload, std::string_view* body,
                           std::string* error_message) {
  if (payload.empty()) return WireError::kMalformed;
  const auto code = static_cast<WireError>(payload[0]);
  if (code == WireError::kOk) {
    *body = payload.substr(1);
    return WireError::kOk;
  }
  PayloadReader r(payload.substr(1));
  if (!r.GetLengthPrefixedString(error_message) || !r.AtEnd()) {
    error_message->clear();
    return WireError::kMalformed;
  }
  return code;
}

bool DecodeIdListReplyBody(std::string_view body, uint64_t* epoch_before,
                           uint64_t* epoch_after,
                           std::vector<ObjectId>* ids) {
  PayloadReader r(body);
  uint32_t count;
  if (!r.GetU64(epoch_before) || !r.GetU64(epoch_after) ||
      !r.GetU32(&count)) {
    return false;
  }
  if (count > r.remaining() / 4) return false;
  ids->clear();
  ids->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t oid;
    if (!r.GetU32(&oid)) return false;
    ids->push_back(oid);
  }
  return r.AtEnd();
}

bool DecodeKnnReplyBody(std::string_view body, uint64_t* epoch_before,
                        uint64_t* epoch_after,
                        std::vector<std::pair<ObjectId, double>>* hits) {
  PayloadReader r(body);
  uint32_t count;
  if (!r.GetU64(epoch_before) || !r.GetU64(epoch_after) ||
      !r.GetU32(&count)) {
    return false;
  }
  if (count > r.remaining() / 12) return false;
  hits->clear();
  hits->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t oid;
    double dist;
    if (!r.GetU32(&oid) || !r.GetDouble(&dist)) return false;
    hits->emplace_back(oid, dist);
  }
  return r.AtEnd();
}

bool DecodeApplyReplyBody(std::string_view body, uint64_t* epoch_after,
                          std::vector<ObjectId>* inserted) {
  PayloadReader r(body);
  uint32_t count;
  if (!r.GetU64(epoch_after) || !r.GetU32(&count)) return false;
  if (count > r.remaining() / 4) return false;
  inserted->clear();
  inserted->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t oid;
    if (!r.GetU32(&oid)) return false;
    inserted->push_back(oid);
  }
  return r.AtEnd();
}

bool DecodeStatsReplyBody(std::string_view body, std::string* json) {
  PayloadReader r(body);
  return r.GetLengthPrefixedString(json) && r.AtEnd();
}

}  // namespace net
}  // namespace zdb
