// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Thin RAII wrappers over the two Linux event-loop primitives the
// server's net threads are built on:
//
//   * Epoll — an epoll(7) instance. Readiness interest is registered
//     per fd with a caller-chosen u64 tag (the server uses the fd
//     number itself) that comes back in every event.
//   * EventFd — an eventfd(2) wakeup channel. Any thread may Signal();
//     the owning net thread registers it in its Epoll and Drain()s it
//     on wakeup. This is how worker threads hand completed replies
//     back to the net thread that owns the connection.
//
// Both are movable-only fd owners, reusing Socket for close-on-destroy.
// Epoll::Wait retries EINTR against a monotonic deadline, so a timeout
// passed by the caller is honored even under signal load (the same
// contract WaitReadable has).

#ifndef ZDB_NET_EPOLL_H_
#define ZDB_NET_EPOLL_H_

#include <cstdint>

#include "common/result.h"
#include "net/socket.h"

struct epoll_event;  // <sys/epoll.h>; kept out of this header

namespace zdb {
namespace net {

class Epoll {
 public:
  /// An invalid instance; assign from Create() before use.
  Epoll() = default;

  static Result<Epoll> Create();

  bool valid() const { return fd_.valid(); }
  int fd() const { return fd_.fd(); }

  /// Registers `fd` for the EPOLL* event mask in `events`; `tag` rides
  /// back in each event's data.u64.
  Status Add(int fd, uint32_t events, uint64_t tag);

  /// Replaces the interest mask (and tag) of an already-registered fd.
  Status Mod(int fd, uint32_t events, uint64_t tag);

  /// Deregisters the fd. Removing an fd that is gone already (closed
  /// descriptors auto-deregister) reports the error; callers that race
  /// close-vs-del may ignore it.
  Status Del(int fd);

  /// Waits for up to `cap` events into `out`; returns the event count
  /// (possibly 0 on timeout). timeout_ms < 0 waits forever. EINTR
  /// restarts the wait with the remaining time, never the full timeout.
  Result<int> Wait(struct epoll_event* out, int cap, int timeout_ms);

 private:
  explicit Epoll(int fd) : fd_(fd) {}
  Socket fd_;
};

class EventFd {
 public:
  /// An invalid instance; assign from Create() before use.
  EventFd() = default;

  static Result<EventFd> Create();

  bool valid() const { return fd_.valid(); }
  int fd() const { return fd_.fd(); }

  /// Adds 1 to the counter, waking any epoll watching the fd. Safe from
  /// any thread; best-effort (a full counter still leaves it readable).
  void Signal() const;

  /// Reads the counter down to zero so the next Signal() re-arms the
  /// level-triggered readability. Only the owning thread calls this.
  void Drain() const;

 private:
  explicit EventFd(int fd) : fd_(fd) {}
  Socket fd_;
};

}  // namespace net
}  // namespace zdb

#endif  // ZDB_NET_EPOLL_H_
