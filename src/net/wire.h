// Copyright (c) zdb authors. Licensed under the MIT license.
//
// The zdb binary wire protocol: length-prefixed frames with a versioned
// fixed-size header, carried over TCP or a unix-domain socket.
//
// Frame layout (all integers little-endian, via common/coding.h):
//
//   offset  size  field
//        0     4  magic        kMagic — rejects non-zdb peers
//        4     4  payload_len  bytes following the header (<= kMaxPayload)
//        8     2  version      kWireVersion
//       10     1  opcode       Opcode
//       11     1  flags        bit 0 = reply
//       12     8  request_id   echoed verbatim in the reply
//       20        payload
//
// Every reply payload begins with one status byte (WireError): 0 means
// success and the opcode-specific body follows; anything else is a typed
// error whose body is a length-prefixed message. Parsing is strictly
// bounds-checked: truncated, oversized or malformed input yields a typed
// decode failure (never a crash or over-read), which the server turns
// into an error reply instead of dying.
//
// Framing errors (bad magic, wrong version, oversized length) poison the
// byte stream — the receiver cannot know where the next frame starts —
// so after reporting one the connection must be closed. Payload-level
// errors (unknown opcode, malformed body) leave the stream framed and
// the connection usable.

#ifndef ZDB_NET_WIRE_H_
#define ZDB_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/spatial_index.h"
#include "geom/point.h"
#include "geom/rect.h"

namespace zdb {
namespace net {

constexpr uint32_t kMagic = 0x315A4442u;  // "BDZ1" on the wire
constexpr uint16_t kWireVersion = 1;
/// Upper bound on payload_len; larger headers are rejected with
/// kFrameTooLarge before any allocation happens.
constexpr uint32_t kMaxPayload = 16u << 20;
constexpr size_t kHeaderSize = 20;
constexpr uint8_t kFlagReply = 0x1;

/// Request opcodes. Values are wire contract — append only.
enum class Opcode : uint8_t {
  kPing = 1,      ///< liveness probe; empty payload both ways
  kWindow = 2,    ///< window (intersection) query
  kPoint = 3,     ///< point containment query
  kKnn = 4,       ///< k nearest neighbors
  kApply = 5,     ///< atomic insert/erase batch (ApplyBatch)
  kStats = 6,     ///< server + engine counters as JSON
  kShutdown = 7,  ///< request graceful server shutdown
};

/// One past the largest opcode value; sizes per-opcode counter arrays.
constexpr size_t kOpcodeLimit = 8;

bool KnownOpcode(uint8_t op);
const char* OpcodeName(Opcode op);

/// Typed wire-level error codes carried in the reply status byte.
enum class WireError : uint8_t {
  kOk = 0,
  kMalformed = 1,      ///< payload failed bounds-checked decoding
  kUnknownOpcode = 2,  ///< opcode outside the known set
  kBadVersion = 3,     ///< header version != kWireVersion
  kFrameTooLarge = 4,  ///< payload_len > kMaxPayload
  kBadMagic = 5,       ///< header magic mismatch (not a zdb peer)
  kBusy = 6,           ///< admission queue full — backpressure, retry
  kShuttingDown = 7,   ///< server draining; no new work accepted
  kServerError = 8,    ///< engine-side failure; message carries detail
};

const char* WireErrorName(WireError e);

struct FrameHeader {
  uint32_t payload_len = 0;
  uint8_t opcode = 0;
  uint8_t flags = 0;
  uint64_t request_id = 0;
};

struct Frame {
  FrameHeader header;
  std::string payload;
};

/// Writes the 20-byte header for a frame with `header`'s fields.
void EncodeFrameHeader(char* dst, const FrameHeader& header);

/// Strict header decode from kHeaderSize bytes. On kOk, *out is filled.
/// On kBadMagic/kBadVersion/kFrameTooLarge, *out still carries whatever
/// fields were readable (opcode, request_id) so an error reply can echo
/// them.
WireError DecodeFrameHeader(const char* src, FrameHeader* out);

/// A complete frame: header + payload, ready to write to a socket.
std::string BuildFrame(Opcode op, uint8_t flags, uint64_t request_id,
                       std::string_view payload);

/// Incremental frame reassembly over an arbitrary chunking of the byte
/// stream (a frame may arrive split across many reads, or many frames in
/// one read). Feed() appends bytes; Poll() extracts the next complete
/// frame. A framing error (bad magic/version/length) poisons the
/// assembler: Poll() keeps returning kError and the connection must be
/// closed after sending the error reply.
class FrameAssembler {
 public:
  enum class Next : uint8_t {
    kNeedMore,  ///< no complete frame buffered yet
    kFrame,     ///< *out holds the next frame
    kError,     ///< framing error; *err/*err_header describe it
  };

  void Feed(const char* data, size_t n);

  /// Extracts the next complete frame into *out, or reports a framing
  /// error (err_header carries the offending header's opcode/request_id
  /// as far as they were parseable).
  Next Poll(Frame* out, WireError* err, FrameHeader* err_header);

  size_t buffered_bytes() const { return buf_.size() - pos_; }
  bool poisoned() const { return poisoned_; }

 private:
  std::string buf_;
  size_t pos_ = 0;  ///< consumed prefix of buf_
  bool poisoned_ = false;
  WireError poison_code_ = WireError::kOk;
  FrameHeader poison_header_;
};

/// Bounds-checked cursor over a payload. Every Get* returns false (and
/// consumes nothing) when fewer bytes remain than requested.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view buf)
      : p_(buf.data()), end_(buf.data() + buf.size()) {}

  bool GetU8(uint8_t* v);
  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetDouble(double* v);
  /// u32 length prefix + that many bytes.
  bool GetLengthPrefixedString(std::string* v);

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  bool AtEnd() const { return p_ == end_; }

 private:
  const char* p_;
  const char* end_;
};

// ------------------------------------------------------ request payloads

std::string EncodeWindowRequest(const Rect& w);
bool DecodeWindowRequest(std::string_view payload, Rect* w);

std::string EncodePointRequest(const Point& p);
bool DecodePointRequest(std::string_view payload, Point* p);

std::string EncodeKnnRequest(const Point& p, uint32_t k);
bool DecodeKnnRequest(std::string_view payload, Point* p, uint32_t* k);

/// Batch of inserts (kind 0: mbr + payload word) and erases (kind 1:
/// oid), applied atomically server-side via SpatialIndex::ApplyBatch.
std::string EncodeApplyRequest(const WriteBatch& batch);
bool DecodeApplyRequest(std::string_view payload, WriteBatch* batch);

// -------------------------------------------------------- reply payloads
//
// Query replies carry the index write epochs loaded immediately before
// and after execution — the hook remote callers use to cross-check a
// concurrent answer against per-epoch oracles (see stress_mixed_test).

std::string EncodeErrorReply(WireError code, std::string_view message);

/// Window/point replies: epochs + sorted object ids.
std::string EncodeIdListReply(uint64_t epoch_before, uint64_t epoch_after,
                              const std::vector<ObjectId>& ids);
/// kNN replies: epochs + (oid, distance) pairs, closest first.
std::string EncodeKnnReply(
    uint64_t epoch_before, uint64_t epoch_after,
    const std::vector<std::pair<ObjectId, double>>& hits);
/// Apply replies: the write epoch after the batch committed + the
/// inserted oids in op order.
std::string EncodeApplyReply(uint64_t epoch_after,
                             const std::vector<ObjectId>& inserted);
std::string EncodeStatsReply(std::string_view json);
/// Success reply with no body (PING, SHUTDOWN).
std::string EncodeEmptyReply();

/// Splits a reply payload into its status and body: on kOk, *body is the
/// opcode-specific remainder; on error, *error_message is filled from the
/// length-prefixed message. A reply too short to carry a status byte (or
/// an error reply with a malformed message) reports kMalformed.
WireError ParseReplyStatus(std::string_view payload, std::string_view* body,
                           std::string* error_message);

bool DecodeIdListReplyBody(std::string_view body, uint64_t* epoch_before,
                           uint64_t* epoch_after, std::vector<ObjectId>* ids);
bool DecodeKnnReplyBody(std::string_view body, uint64_t* epoch_before,
                        uint64_t* epoch_after,
                        std::vector<std::pair<ObjectId, double>>* hits);
bool DecodeApplyReplyBody(std::string_view body, uint64_t* epoch_after,
                          std::vector<ObjectId>* inserted);
bool DecodeStatsReplyBody(std::string_view body, std::string* json);

}  // namespace net
}  // namespace zdb

#endif  // ZDB_NET_WIRE_H_
