// Copyright (c) zdb authors. Licensed under the MIT license.
//
// The zdb binary wire protocol: length-prefixed frames with a versioned
// fixed-size header, carried over TCP or a unix-domain socket.
//
// Frame layout (all integers little-endian, via common/coding.h):
//
//   offset  size  field
//        0     4  magic        kMagic — rejects non-zdb peers
//        4     4  payload_len  bytes following the header (<= kMaxPayload)
//        8     2  version      kWireVersion
//       10     1  opcode       Opcode
//       11     1  flags        bit 0 = reply
//       12     8  request_id   echoed verbatim in the reply
//       20        payload
//
// Every reply payload begins with one status byte (WireError): 0 means
// success and the opcode-specific body follows; anything else is a typed
// error whose body is a length-prefixed message. Parsing is strictly
// bounds-checked: truncated, oversized or malformed input yields a typed
// decode failure (never a crash or over-read), which the server turns
// into an error reply instead of dying.
//
// Framing errors (bad magic, wrong version, oversized length) poison the
// byte stream — the receiver cannot know where the next frame starts —
// so after reporting one the connection must be closed. Payload-level
// errors (unknown opcode, malformed body) leave the stream framed and
// the connection usable.

#ifndef ZDB_NET_WIRE_H_
#define ZDB_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/spatial_index.h"
#include "geom/point.h"
#include "geom/rect.h"

namespace zdb {
namespace net {

constexpr uint32_t kMagic = 0x315A4442u;  // "BDZ1" on the wire
/// Current protocol version. History:
///   1 — initial protocol.
///   2 — APPLY payload may carry a trailing durability byte (Durability);
///       absent means kDurable, so v2 APPLY without the byte is
///       byte-identical to v1.
///   3 — replication: SUBSCRIBE / LOG_RECORD / LOG_ACK opcodes, the
///       NOT_LEADER and STALE_READ error codes, and an optional trailing
///       u64 staleness bound (max lag in epochs) on WINDOW/POINT/KNN
///       request payloads; absent means unbounded, so v3 queries without
///       the bound stay byte-identical to v1.
/// Receivers accept any version in [kMinWireVersion, kWireVersion];
/// senders mark a frame with the lowest version whose feature set it
/// uses, so new clients interoperate with old servers until they
/// actually exercise a new feature (which an old server then rejects
/// with a typed kBadVersion reply).
constexpr uint16_t kWireVersion = 3;
constexpr uint16_t kMinWireVersion = 1;
/// Upper bound on payload_len; larger headers are rejected with
/// kFrameTooLarge before any allocation happens.
constexpr uint32_t kMaxPayload = 16u << 20;
constexpr size_t kHeaderSize = 20;
constexpr uint8_t kFlagReply = 0x1;

/// Request opcodes. Values are wire contract — append only.
enum class Opcode : uint8_t {
  kPing = 1,      ///< liveness probe; empty payload both ways
  kWindow = 2,    ///< window (intersection) query
  kPoint = 3,     ///< point containment query
  kKnn = 4,       ///< k nearest neighbors
  kApply = 5,     ///< atomic insert/erase batch (ApplyBatch)
  kStats = 6,     ///< server + engine counters as JSON
  kShutdown = 7,  ///< request graceful server shutdown
  /// Replication (wire v3). A follower SUBSCRIBEs on a leader carrying
  /// its last applied epoch; the leader replies, then pushes LOG_RECORD
  /// frames (flags 0, request_id 0 — the one server-initiated frame in
  /// the protocol) on the same connection; the follower acknowledges
  /// applied records with fire-and-forget LOG_ACK frames (no reply).
  kSubscribe = 8,   ///< follower handshake: u64 last applied epoch
  kLogRecord = 9,   ///< leader push: u64 leader epoch + one log record
  kLogAck = 10,     ///< follower ack: u64 applied epoch (no reply)
};

/// One past the largest opcode value; sizes per-opcode counter arrays.
constexpr size_t kOpcodeLimit = 11;

[[nodiscard]] bool KnownOpcode(uint8_t op);
const char* OpcodeName(Opcode op);

/// Typed wire-level error codes carried in the reply status byte.
/// Values are wire contract — append only. Codes 9+ mirror engine
/// Status codes one-for-one so a server-side Status crosses the wire
/// losslessly (see StatusCodeToWireError / WireErrorToStatus).
enum class WireError : uint8_t {
  kOk = 0,
  kMalformed = 1,      ///< payload failed bounds-checked decoding
  kUnknownOpcode = 2,  ///< opcode outside the known set
  kBadVersion = 3,     ///< header version outside [kMin, kWireVersion]
  kFrameTooLarge = 4,  ///< payload_len > kMaxPayload
  kBadMagic = 5,       ///< header magic mismatch (not a zdb peer)
  kBusy = 6,           ///< admission queue full — backpressure, retry
  kShuttingDown = 7,   ///< server draining; no new work accepted
  kServerError = 8,    ///< internal engine failure (Status::kInternal)
  kNotFound = 9,       ///< Status::kNotFound (e.g. erase of a dead oid)
  kCorruption = 10,    ///< Status::kCorruption
  kInvalidArgument = 11,  ///< Status::kInvalidArgument
  kIOError = 12,       ///< Status::kIOError
  kNoSpace = 13,       ///< Status::kNoSpace
  kAlreadyExists = 14, ///< Status::kAlreadyExists
  kTimedOut = 15,      ///< Status::kTimedOut (durability wait deadline)
  /// Write sent to a follower. The message is the leader's endpoint URI
  /// when known — clients reconnect there and retry (Status::kNotLeader).
  kNotLeader = 16,
  /// Bounded-staleness query rejected: the follower's replication lag
  /// exceeds the request's bound (or its applier is disconnected).
  /// Clients fall back to the leader; maps onto Status::kUnavailable.
  kStaleRead = 17,
};

const char* WireErrorName(WireError e);

// ------------------------------------------- Status <-> WireError table
//
// The single bidirectional mapping between engine Status codes and wire
// error codes. Status -> wire -> Status is the identity for every
// Status::Code, so a typed engine error reaches the remote caller with
// its code and message intact. The wire -> Status direction is total:
// framing/protocol codes (which no Status produces) collapse onto
// kIOError, the catch-all for protocol violations.

WireError StatusCodeToWireError(Status::Code code);
Status::Code WireErrorToStatusCode(WireError e);
/// Rebuilds the Status a server-side error reply encodes.
Status WireErrorToStatus(WireError e, std::string message);

struct FrameHeader {
  uint32_t payload_len = 0;
  uint16_t version = kWireVersion;
  uint8_t opcode = 0;
  uint8_t flags = 0;
  uint64_t request_id = 0;
};

struct Frame {
  FrameHeader header;
  std::string payload;
};

/// Writes the 20-byte header for a frame with `header`'s fields.
void EncodeFrameHeader(char* dst, const FrameHeader& header);

/// Strict header decode from kHeaderSize bytes. On kOk, *out is filled.
/// On kBadMagic/kBadVersion/kFrameTooLarge, *out still carries whatever
/// fields were readable (opcode, request_id) so an error reply can echo
/// them. Versions kMinWireVersion..kWireVersion are all accepted.
[[nodiscard]] WireError DecodeFrameHeader(const char* src, FrameHeader* out);

/// A complete frame: header + payload, ready to write to a socket.
/// `version` is the protocol revision the payload encoding requires;
/// senders should pass kMinWireVersion unless the payload uses a newer
/// feature (see kWireVersion history).
std::string BuildFrame(Opcode op, uint8_t flags, uint64_t request_id,
                       std::string_view payload,
                       uint16_t version = kWireVersion);

/// Incremental frame reassembly over an arbitrary chunking of the byte
/// stream (a frame may arrive split across many reads, or many frames in
/// one read). Feed() appends bytes; Poll() extracts the next complete
/// frame. A framing error (bad magic/version/length) poisons the
/// assembler: Poll() keeps returning kError and the connection must be
/// closed after sending the error reply.
class FrameAssembler {
 public:
  enum class Next : uint8_t {
    kNeedMore,  ///< no complete frame buffered yet
    kFrame,     ///< *out holds the next frame
    kError,     ///< framing error; *err/*err_header describe it
  };

  void Feed(const char* data, size_t n);

  /// Extracts the next complete frame into *out, or reports a framing
  /// error (err_header carries the offending header's opcode/request_id
  /// as far as they were parseable).
  Next Poll(Frame* out, WireError* err, FrameHeader* err_header);

  size_t buffered_bytes() const { return buf_.size() - pos_; }
  bool poisoned() const { return poisoned_; }

 private:
  std::string buf_;
  size_t pos_ = 0;  ///< consumed prefix of buf_
  bool poisoned_ = false;
  WireError poison_code_ = WireError::kOk;
  FrameHeader poison_header_;
};

/// Bounds-checked cursor over a payload. Every Get* returns false (and
/// consumes nothing) when fewer bytes remain than requested.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view buf)
      : p_(buf.data()), end_(buf.data() + buf.size()) {}

  [[nodiscard]] bool GetU8(uint8_t* v);
  [[nodiscard]] bool GetU32(uint32_t* v);
  [[nodiscard]] bool GetU64(uint64_t* v);
  [[nodiscard]] bool GetDouble(double* v);
  /// u32 length prefix + that many bytes.
  [[nodiscard]] bool GetLengthPrefixedString(std::string* v);

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  bool AtEnd() const { return p_ == end_; }

 private:
  const char* p_;
  const char* end_;
};

// ------------------------------------------------------ request payloads
//
// Query requests (WINDOW/POINT/KNN) may carry an optional trailing u64
// staleness bound — the maximum replication lag, in epochs, the caller
// tolerates from a follower (wire v3). kNoStalenessBound (the encode
// default) omits the trailer, keeping the payload byte-identical to v1;
// frames carrying the bound must be marked version 3. Decoders read the
// trailer only when handed a non-null `max_lag` out-param (the strict
// v1/v2 parse otherwise rejects the extra bytes as malformed, exactly
// how a pre-v3 server responds to the bound).

/// "No staleness bound": any replica state answers the query.
constexpr uint64_t kNoStalenessBound = ~uint64_t{0};

std::string EncodeWindowRequest(const Rect& w,
                                uint64_t max_lag = kNoStalenessBound);
[[nodiscard]] bool DecodeWindowRequest(std::string_view payload, Rect* w,
                                       uint64_t* max_lag = nullptr);

std::string EncodePointRequest(const Point& p,
                               uint64_t max_lag = kNoStalenessBound);
[[nodiscard]] bool DecodePointRequest(std::string_view payload, Point* p,
                                      uint64_t* max_lag = nullptr);

std::string EncodeKnnRequest(const Point& p, uint32_t k,
                             uint64_t max_lag = kNoStalenessBound);
[[nodiscard]] bool DecodeKnnRequest(std::string_view payload, Point* p,
                                    uint32_t* k,
                                    uint64_t* max_lag = nullptr);

/// Batch of inserts (kind 0: mbr + payload word) and erases (kind 1:
/// oid), applied atomically server-side via SpatialIndex::ApplyBatch.
///
/// Wire v2 appends an optional trailing durability byte: absent means
/// Durability::kDurable (the v1 semantics — ack after fsync), so the
/// default encoding stays byte-identical to v1 and works against old
/// servers. kPublished adds the byte; frames carrying it must be marked
/// version 2 (old servers reject them with kBadVersion).
std::string EncodeApplyRequest(const WriteBatch& batch,
                               Durability durability = Durability::kDurable);
/// Decodes the batch and the durability flag (absent byte -> kDurable).
/// Passing durability == nullptr restores strict v1 parsing: a trailing
/// byte is rejected as malformed — exactly how pre-v2 servers respond
/// to the flag.
[[nodiscard]] bool DecodeApplyRequest(std::string_view payload,
                                      WriteBatch* batch,
                                      Durability* durability = nullptr);

// -------------------------------------------------------- reply payloads
//
// Query replies carry the index write epochs loaded immediately before
// and after execution — the hook remote callers use to cross-check a
// concurrent answer against per-epoch oracles (see stress_mixed_test).

std::string EncodeErrorReply(WireError code, std::string_view message);

/// Window/point replies: epochs + sorted object ids.
std::string EncodeIdListReply(uint64_t epoch_before, uint64_t epoch_after,
                              const std::vector<ObjectId>& ids);
/// kNN replies: epochs + (oid, distance) pairs, closest first.
std::string EncodeKnnReply(
    uint64_t epoch_before, uint64_t epoch_after,
    const std::vector<std::pair<ObjectId, double>>& hits);
/// Apply replies: the write epoch after the batch committed + the
/// inserted oids in op order.
std::string EncodeApplyReply(uint64_t epoch_after,
                             const std::vector<ObjectId>& inserted);
std::string EncodeStatsReply(std::string_view json);
/// Success reply with no body (PING, SHUTDOWN).
std::string EncodeEmptyReply();

/// Splits a reply payload into its status and body: on kOk, *body is the
/// opcode-specific remainder; on error, *error_message is filled from the
/// length-prefixed message. A reply too short to carry a status byte (or
/// an error reply with a malformed message) reports kMalformed.
[[nodiscard]] WireError ParseReplyStatus(std::string_view payload,
                                         std::string_view* body,
                                         std::string* error_message);

[[nodiscard]] bool DecodeIdListReplyBody(std::string_view body,
                                         uint64_t* epoch_before,
                                         uint64_t* epoch_after,
                                         std::vector<ObjectId>* ids);
[[nodiscard]] bool DecodeKnnReplyBody(
    std::string_view body, uint64_t* epoch_before, uint64_t* epoch_after,
    std::vector<std::pair<ObjectId, double>>* hits);
[[nodiscard]] bool DecodeApplyReplyBody(std::string_view body,
                                        uint64_t* epoch_after,
                                        std::vector<ObjectId>* inserted);
[[nodiscard]] bool DecodeStatsReplyBody(std::string_view body,
                                        std::string* json);

}  // namespace net
}  // namespace zdb

#endif  // ZDB_NET_WIRE_H_
