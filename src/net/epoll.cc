// Copyright (c) zdb authors. Licensed under the MIT license.

#include "net/epoll.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

namespace zdb {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

Result<Epoll> Epoll::Create() {
  const int fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (fd < 0) return Errno("epoll_create1");
  return Epoll(fd);
}

Status Epoll::Add(int fd, uint32_t events, uint64_t tag) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = tag;
  if (::epoll_ctl(fd_.fd(), EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Errno("epoll_ctl(ADD)");
  }
  return Status::OK();
}

Status Epoll::Mod(int fd, uint32_t events, uint64_t tag) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = tag;
  if (::epoll_ctl(fd_.fd(), EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Errno("epoll_ctl(MOD)");
  }
  return Status::OK();
}

Status Epoll::Del(int fd) {
  if (::epoll_ctl(fd_.fd(), EPOLL_CTL_DEL, fd, nullptr) != 0) {
    return Errno("epoll_ctl(DEL)");
  }
  return Status::OK();
}

Result<int> Epoll::Wait(epoll_event* out, int cap, int timeout_ms) {
  const auto deadline = timeout_ms >= 0
                            ? std::chrono::steady_clock::now() +
                                  std::chrono::milliseconds(timeout_ms)
                            : std::chrono::steady_clock::time_point{};
  int remaining = timeout_ms;
  for (;;) {
    const int n = ::epoll_wait(fd_.fd(), out, cap, remaining);
    if (n >= 0) return n;
    if (errno != EINTR) return Errno("epoll_wait");
    if (timeout_ms >= 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) return 0;  // deadline passed mid-signal
      remaining = static_cast<int>(left.count());
    }
  }
}

Result<EventFd> EventFd::Create() {
  const int fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (fd < 0) return Errno("eventfd");
  return EventFd(fd);
}

void EventFd::Signal() const {
  const uint64_t one = 1;
  // A full counter (EAGAIN) still leaves the fd readable, which is all
  // a wakeup needs; EINTR on an 8-byte eventfd write cannot split it.
  ssize_t rc;
  do {
    rc = ::write(fd_.fd(), &one, sizeof(one));
  } while (rc < 0 && errno == EINTR);
}

void EventFd::Drain() const {
  uint64_t count = 0;
  ssize_t rc;
  do {
    rc = ::read(fd_.fd(), &count, sizeof(count));
  } while (rc < 0 && errno == EINTR);
}

}  // namespace net
}  // namespace zdb
