// Copyright (c) zdb authors. Licensed under the MIT license.

#include "common/coding.h"

namespace zdb {

size_t EncodeVarint32(char* dst, uint32_t v) {
  unsigned char* p = reinterpret_cast<unsigned char*>(dst);
  size_t n = 0;
  while (v >= 0x80) {
    p[n++] = static_cast<unsigned char>(v) | 0x80;
    v >>= 7;
  }
  p[n++] = static_cast<unsigned char>(v);
  return n;
}

void PutVarint32(std::string* dst, uint32_t v) {
  char buf[5];
  dst->append(buf, EncodeVarint32(buf, v));
}

bool GetVarint32(const char** p, const char* limit, uint32_t* value) {
  uint32_t result = 0;
  int shift = 0;
  const unsigned char* q = reinterpret_cast<const unsigned char*>(*p);
  const unsigned char* end = reinterpret_cast<const unsigned char*>(limit);
  while (q < end && shift <= 28) {
    uint32_t byte = *q++;
    result |= (byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *p = reinterpret_cast<const char*>(q);
      *value = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

size_t VarintLength32(uint32_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

std::string ToHex(const Slice& s) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(s.size() * 2);
  for (size_t i = 0; i < s.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(s[i]);
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xf]);
  }
  return out;
}

}  // namespace zdb
