// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Logical I/O accounting. All experiment results in this repository are
// reported in page accesses (the 1989 literature's unit), so the counters
// here are the measurement substrate for every bench.
//
// Concurrency: the shared IoStats counters are lock-free atomics so the
// storage layer can be exercised from many threads without racing the
// accounting. Copies/snapshots (Since, assignment) are relaxed loads —
// they are statistically consistent, which is all the benches need.
// ThreadIoStats is a per-thread shadow registered via SetThreadIoStats();
// each worker owns its own instance, so those counters are plain integers
// aggregated racelessly after the worker quiesces.
//
// Thread-safety contracts: this header deliberately has no lockable
// members and therefore no GUARDED_BY annotations (see DESIGN.md,
// "Concurrency contracts"). Everything shared is a lone relaxed atomic
// — no multi-field invariant to guard — and everything non-atomic is
// owned by exactly one thread (TLS registration) for its whole lifetime.
// If a future counter couples two fields under one invariant, promote
// this to a zdb::Mutex + GUARDED_BY rather than widening the atomics.

#ifndef ZDB_COMMON_METRICS_H_
#define ZDB_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace zdb {

/// Counters for page-level I/O. Pager increments reads/writes; BufferPool
/// increments hits/misses/evictions. "Accesses" in benches means
/// reads + writes (i.e. buffer-pool misses that reached the pager).
/// Increments are relaxed atomics: safe under concurrent queries.
struct IoStats {
  std::atomic<uint64_t> page_reads{0};     ///< pages fetched from the file
  std::atomic<uint64_t> page_writes{0};    ///< pages written back to the file
  std::atomic<uint64_t> pool_hits{0};      ///< buffer-pool hits (no file access)
  std::atomic<uint64_t> pool_misses{0};    ///< buffer-pool misses
  std::atomic<uint64_t> pool_evictions{0}; ///< pages evicted to make room

  IoStats() = default;
  IoStats(const IoStats& o) { *this = o; }
  IoStats& operator=(const IoStats& o) {
    page_reads.store(o.page_reads.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    page_writes.store(o.page_writes.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    pool_hits.store(o.pool_hits.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    pool_misses.store(o.pool_misses.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    pool_evictions.store(o.pool_evictions.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    return *this;
  }

  uint64_t accesses() const {
    return page_reads.load(std::memory_order_relaxed) +
           page_writes.load(std::memory_order_relaxed);
  }

  void Reset() { *this = IoStats{}; }

  /// Difference since a snapshot; used to attribute I/O to one operation.
  IoStats Since(const IoStats& snap) const {
    IoStats d;
    d.page_reads = page_reads.load(std::memory_order_relaxed) -
                   snap.page_reads.load(std::memory_order_relaxed);
    d.page_writes = page_writes.load(std::memory_order_relaxed) -
                    snap.page_writes.load(std::memory_order_relaxed);
    d.pool_hits = pool_hits.load(std::memory_order_relaxed) -
                  snap.pool_hits.load(std::memory_order_relaxed);
    d.pool_misses = pool_misses.load(std::memory_order_relaxed) -
                    snap.pool_misses.load(std::memory_order_relaxed);
    d.pool_evictions = pool_evictions.load(std::memory_order_relaxed) -
                       snap.pool_evictions.load(std::memory_order_relaxed);
    return d;
  }
};

/// Per-thread I/O shadow counters. A query worker registers its own
/// instance with SetThreadIoStats(); the buffer pool then additionally
/// charges that thread's pins/hits/misses here. Plain (non-atomic)
/// fields: only the owning thread writes them, and the aggregator reads
/// them only after joining/quiescing the worker — raceless by ownership.
struct ThreadIoStats {
  uint64_t pages_pinned = 0;  ///< successful Fetch/New pins by this thread
  uint64_t pool_hits = 0;     ///< this thread's pool hits
  uint64_t pool_misses = 0;   ///< this thread's pool misses

  double hit_rate() const {
    const uint64_t total = pool_hits + pool_misses;
    return total ? static_cast<double>(pool_hits) / total : 0.0;
  }

  void Add(const ThreadIoStats& o) {
    pages_pinned += o.pages_pinned;
    pool_hits += o.pool_hits;
    pool_misses += o.pool_misses;
  }
};

/// Registers `stats` as the calling thread's I/O shadow (nullptr to
/// unregister). The pointer must stay valid until unregistered.
void SetThreadIoStats(ThreadIoStats* stats);

/// The calling thread's registered shadow, or nullptr.
ThreadIoStats* GetThreadIoStats();

// ----------------------------- structured counter dumps (JSON) ---------
//
// Counters cross process boundaries in two places — the server's STATS
// opcode and the benches' machine-readable output — so the dump format is
// centralized here instead of hand-formatted at every call site.

/// Minimal streaming JSON writer: objects, arrays, string escaping,
/// integer/double/bool values. Keys and values are emitted in call
/// order; the caller is responsible for well-formed nesting (an
/// unbalanced Begin/End pair produces invalid JSON, not UB).
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits `"key":` — must be followed by a value or Begin*().
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(double v);  ///< non-finite values are emitted as null
  JsonWriter& Value(bool v);
  JsonWriter& Value(std::string_view v);
  // Disambiguating forwards (int literals would otherwise be ambiguous,
  // and a const char* would standard-convert to bool before string_view).
  JsonWriter& Value(int v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Value(unsigned v) { return Value(static_cast<uint64_t>(v)); }
  JsonWriter& Value(const char* v) { return Value(std::string_view(v)); }

  /// Key + value in one call.
  template <typename T>
  JsonWriter& Field(std::string_view key, T v) {
    Key(key);
    return Value(v);
  }

  const std::string& str() const { return out_; }

 private:
  void MaybeComma();
  void AppendEscaped(std::string_view s);

  std::string out_;
  bool need_comma_ = false;
};

/// Appends `stats` as a JSON object under `key` to an already-open
/// object: {"page_reads":N,...,"accesses":N}.
void AppendJson(JsonWriter* w, std::string_view key, const IoStats& stats);
void AppendJson(JsonWriter* w, std::string_view key,
                const ThreadIoStats& stats);

/// One-shot structured dump: the whole IoStats as a standalone JSON
/// object string.
std::string SnapshotJson(const IoStats& stats);

}  // namespace zdb

#endif  // ZDB_COMMON_METRICS_H_
