// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Logical I/O accounting. All experiment results in this repository are
// reported in page accesses (the 1989 literature's unit), so the counters
// here are the measurement substrate for every bench.

#ifndef ZDB_COMMON_METRICS_H_
#define ZDB_COMMON_METRICS_H_

#include <cstdint>

namespace zdb {

/// Counters for page-level I/O. Pager increments reads/writes; BufferPool
/// increments hits/misses/evictions. "Accesses" in benches means
/// reads + writes (i.e. buffer-pool misses that reached the pager).
struct IoStats {
  uint64_t page_reads = 0;     ///< pages fetched from the file
  uint64_t page_writes = 0;    ///< pages written back to the file
  uint64_t pool_hits = 0;      ///< buffer-pool hits (no file access)
  uint64_t pool_misses = 0;    ///< buffer-pool misses
  uint64_t pool_evictions = 0; ///< pages evicted to make room

  uint64_t accesses() const { return page_reads + page_writes; }

  void Reset() { *this = IoStats{}; }

  /// Difference since a snapshot; used to attribute I/O to one operation.
  IoStats Since(const IoStats& snap) const {
    IoStats d;
    d.page_reads = page_reads - snap.page_reads;
    d.page_writes = page_writes - snap.page_writes;
    d.pool_hits = pool_hits - snap.pool_hits;
    d.pool_misses = pool_misses - snap.pool_misses;
    d.pool_evictions = pool_evictions - snap.pool_evictions;
    return d;
  }
};

}  // namespace zdb

#endif  // ZDB_COMMON_METRICS_H_
