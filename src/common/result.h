// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Result<T>: a Status plus a value, for fallible functions that produce
// something. Mirrors arrow::Result / absl::StatusOr in miniature.

#ifndef ZDB_COMMON_RESULT_H_
#define ZDB_COMMON_RESULT_H_

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "common/status.h"

namespace zdb {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value could not be produced. [[nodiscard]] like Status: dropping a
/// Result discards both the value and the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value: `return 42;`
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status: `return Status::NotFound();`
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). Accessing the value of an error Result aborts
  /// with the status message (in every build mode — silent UB here turns
  /// I/O errors into crashes far from the cause).
  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

/// Evaluates `expr` (a Result<T>), propagating errors; otherwise assigns the
/// value to `lhs`. Use only in functions returning Status or Result.
#define ZDB_ASSIGN_OR_RETURN(lhs, expr)               \
  do {                                                \
    auto _zdb_result = (expr);                        \
    if (!_zdb_result.ok()) return _zdb_result.status(); \
    lhs = std::move(_zdb_result).value();             \
  } while (0)

}  // namespace zdb

#endif  // ZDB_COMMON_RESULT_H_
