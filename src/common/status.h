// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Status: lightweight error propagation without exceptions, in the style
// used by LevelDB/RocksDB. Functions that can fail return a Status (or a
// Result<T>, see result.h); callers must check ok() before using outputs.

#ifndef ZDB_COMMON_STATUS_H_
#define ZDB_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace zdb {

/// Outcome of a fallible operation. Cheap to copy when OK (no allocation).
/// [[nodiscard]] at class level: any call that returns a Status and drops
/// it on the floor is a compile warning (-Werror=unused-result in the
/// build), because a silently ignored error is a latent bug. Use a
/// `(void)` cast for the rare genuinely best-effort call sites.
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound,
    kCorruption,
    kInvalidArgument,
    kIOError,
    kNoSpace,
    kAlreadyExists,
    kInternal,
    kBusy,         ///< server admission queue full; retry later
    kUnavailable,  ///< server shutting down / endpoint unreachable
    kTimedOut,     ///< deadline expired before the operation completed
    kAborted,      ///< snapshot epoch rolled back; re-pin and retry
    kNotLeader,    ///< write sent to a follower; message names the leader
  };

  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status NoSpace(std::string msg = "") {
    return Status(Code::kNoSpace, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status Busy(std::string msg = "") {
    return Status(Code::kBusy, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status TimedOut(std::string msg = "") {
    return Status(Code::kTimedOut, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(Code::kAborted, std::move(msg));
  }
  /// The message is the leader's endpoint URI (e.g. "tcp://host:port")
  /// when the rejecting follower knows it — clients redirect on it.
  static Status NotLeader(std::string msg = "") {
    return Status(Code::kNotLeader, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsNoSpace() const { return code_ == Code::kNoSpace; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsTimedOut() const { return code_ == Code::kTimedOut; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsNotLeader() const { return code_ == Code::kNotLeader; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable rendering, e.g. "IOError: short read".
  std::string ToString() const {
    if (ok()) return "OK";
    std::string name;
    switch (code_) {
      case Code::kOk: name = "OK"; break;
      case Code::kNotFound: name = "NotFound"; break;
      case Code::kCorruption: name = "Corruption"; break;
      case Code::kInvalidArgument: name = "InvalidArgument"; break;
      case Code::kIOError: name = "IOError"; break;
      case Code::kNoSpace: name = "NoSpace"; break;
      case Code::kAlreadyExists: name = "AlreadyExists"; break;
      case Code::kInternal: name = "Internal"; break;
      case Code::kBusy: name = "Busy"; break;
      case Code::kUnavailable: name = "Unavailable"; break;
      case Code::kTimedOut: name = "TimedOut"; break;
      case Code::kAborted: name = "Aborted"; break;
      case Code::kNotLeader: name = "NotLeader"; break;
    }
    if (msg_.empty()) return name;
    return name + ": " + msg_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

/// Propagates a non-OK status to the caller. Use only in functions that
/// themselves return Status.
#define ZDB_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::zdb::Status _zdb_status = (expr);        \
    if (!_zdb_status.ok()) return _zdb_status; \
  } while (0)

}  // namespace zdb

#endif  // ZDB_COMMON_STATUS_H_
