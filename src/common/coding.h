// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Order-preserving and fixed-width integer encodings used for page layouts
// and index keys. Big-endian ("Fixed..BE") encodings sort correctly under
// the unsigned lexicographic comparison of Slice; little-endian encodings
// are used inside page layouts where order does not matter.

#ifndef ZDB_COMMON_CODING_H_
#define ZDB_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/slice.h"

namespace zdb {

// -------- little-endian fixed-width (page layouts) --------

inline void EncodeFixed16(char* dst, uint16_t v) { std::memcpy(dst, &v, 2); }
inline void EncodeFixed32(char* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
inline void EncodeFixed64(char* dst, uint64_t v) { std::memcpy(dst, &v, 8); }

inline uint16_t DecodeFixed16(const char* src) {
  uint16_t v;
  std::memcpy(&v, src, 2);
  return v;
}
inline uint32_t DecodeFixed32(const char* src) {
  uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
inline uint64_t DecodeFixed64(const char* src) {
  uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}

// -------- big-endian fixed-width (order-preserving keys) --------

inline void EncodeFixed32BE(char* dst, uint32_t v) {
  dst[0] = static_cast<char>(v >> 24);
  dst[1] = static_cast<char>(v >> 16);
  dst[2] = static_cast<char>(v >> 8);
  dst[3] = static_cast<char>(v);
}
inline void EncodeFixed64BE(char* dst, uint64_t v) {
  EncodeFixed32BE(dst, static_cast<uint32_t>(v >> 32));
  EncodeFixed32BE(dst + 4, static_cast<uint32_t>(v));
}
inline uint32_t DecodeFixed32BE(const char* src) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(src);
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}
inline uint64_t DecodeFixed64BE(const char* src) {
  return (static_cast<uint64_t>(DecodeFixed32BE(src)) << 32) |
         DecodeFixed32BE(src + 4);
}

// -------- append helpers --------

inline void PutFixed32BE(std::string* dst, uint32_t v) {
  char buf[4];
  EncodeFixed32BE(buf, v);
  dst->append(buf, 4);
}
inline void PutFixed64BE(std::string* dst, uint64_t v) {
  char buf[8];
  EncodeFixed64BE(buf, v);
  dst->append(buf, 8);
}

// -------- varint (compact lengths in page cells) --------

/// Appends v as a LEB128 varint (1-5 bytes for 32-bit values).
void PutVarint32(std::string* dst, uint32_t v);

/// Writes v into dst (which must have >=5 bytes available); returns the
/// number of bytes written.
size_t EncodeVarint32(char* dst, uint32_t v);

/// Parses a varint from [p, limit); advances *p past it. Returns false on
/// truncated or overlong input.
bool GetVarint32(const char** p, const char* limit, uint32_t* value);

/// Bytes EncodeVarint32 would produce for v.
size_t VarintLength32(uint32_t v);

// -------- hex rendering (debugging) --------

/// Lowercase hex dump of a byte slice, e.g. "0a1b2c".
std::string ToHex(const Slice& s);

}  // namespace zdb

#endif  // ZDB_COMMON_CODING_H_
