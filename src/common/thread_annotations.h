// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Clang Thread Safety Analysis annotations, in the style shipped by
// LevelDB/RocksDB/Abseil. On Clang these expand to the attributes that
// -Wthread-safety checks at compile time; on every other compiler they
// vanish, so the annotated code stays portable.
//
// The build enables -Wthread-safety -Werror=thread-safety-analysis on
// Clang (see the top-level CMakeLists.txt), and the negative-compile
// harness in tests/static_analysis/ proves the analysis rejects lock
// discipline violations. Use these macros together with the annotated
// lock wrappers in common/mutex.h — never with raw std::mutex, which the
// analysis cannot see.
//
// Conventions (see DESIGN.md "Concurrency contracts"):
//   * every shared field names its lock with GUARDED_BY;
//   * internal "*Locked" methods name their precondition with
//     REQUIRES / REQUIRES_SHARED;
//   * functions that take and release a lock internally use
//     ACQUIRE/RELEASE (or a SCOPED_CAPABILITY RAII type);
//   * deliberate escape hatches (type-erased latch handles, racy
//     diagnostic reads) are marked NO_THREAD_SAFETY_ANALYSIS with a
//     comment saying why.

#ifndef ZDB_COMMON_THREAD_ANNOTATIONS_H_
#define ZDB_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define ZDB_TSA_HAS_ATTRIBUTE(x) __has_attribute(x)
#else
#define ZDB_TSA_HAS_ATTRIBUTE(x) 0
#endif

#if ZDB_TSA_HAS_ATTRIBUTE(guarded_by)
#define ZDB_TSA_ATTRIBUTE(x) __attribute__((x))
#else
#define ZDB_TSA_ATTRIBUTE(x)  // no-op on non-Clang compilers
#endif

/// Marks a lock-like type (a "capability" in analysis terms).
#define CAPABILITY(x) ZDB_TSA_ATTRIBUTE(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases
/// a capability.
#define SCOPED_CAPABILITY ZDB_TSA_ATTRIBUTE(scoped_lockable)

/// Field may only be accessed while holding the named capability
/// (exclusively for writes, at least shared for reads).
#define GUARDED_BY(x) ZDB_TSA_ATTRIBUTE(guarded_by(x))

/// Pointer field whose *pointee* is protected by the named capability.
#define PT_GUARDED_BY(x) ZDB_TSA_ATTRIBUTE(pt_guarded_by(x))

/// Lock-order declarations: this capability must be acquired before /
/// after the named ones. (Checked under -Wthread-safety-beta; kept as
/// machine-readable documentation of the canonical order regardless.)
#define ACQUIRED_BEFORE(...) ZDB_TSA_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) ZDB_TSA_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Function requires the capability held exclusively / shared on entry,
/// and does not release it.
#define REQUIRES(...) \
  ZDB_TSA_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  ZDB_TSA_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (exclusively / shared) and holds it
/// on return.
#define ACQUIRE(...) ZDB_TSA_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  ZDB_TSA_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (which must be held on entry).
#define RELEASE(...) ZDB_TSA_ATTRIBUTE(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  ZDB_TSA_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  ZDB_TSA_ATTRIBUTE(release_generic_capability(__VA_ARGS__))

/// Function attempts to acquire the capability; the first argument is
/// the return value meaning success.
#define TRY_ACQUIRE(...) \
  ZDB_TSA_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  ZDB_TSA_ATTRIBUTE(try_acquire_shared_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (it acquires it
/// itself; catches self-deadlock at call sites the analysis can see).
#define EXCLUDES(...) ZDB_TSA_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held; tells the analysis to
/// assume it from here on. The zdb wrappers back these with real checks
/// that abort with a message (see Mutex::AssertHeld).
#define ASSERT_CAPABILITY(x) ZDB_TSA_ATTRIBUTE(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  ZDB_TSA_ATTRIBUTE(assert_shared_capability(x))

/// Function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) ZDB_TSA_ATTRIBUTE(lock_returned(x))

/// Opts a function out of the analysis. Use only for deliberate,
/// documented boundaries (type-erased lock handles, construction-time
/// initialization, racy diagnostic accessors).
#define NO_THREAD_SAFETY_ANALYSIS \
  ZDB_TSA_ATTRIBUTE(no_thread_safety_analysis)

#endif  // ZDB_COMMON_THREAD_ANNOTATIONS_H_
