// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Annotated lock wrappers: zdb::Mutex, zdb::SharedMutex, zdb::CondVar and
// the RAII guards MutexLock / ReaderLock / WriterLock. These are thin
// shims over the std primitives that carry the Clang thread-safety
// attributes from common/thread_annotations.h, so -Wthread-safety can
// check lock discipline at compile time. All lockable members in src/
// must use these types; a raw std::mutex member is invisible to the
// analysis and is rejected in review (and by grep in CI).
//
// The wrappers also track the current holder with relaxed atomics —
// negligible cost next to the lock operation itself — so AssertHeld()
// and AssertReaderHeld() are real runtime checks in every build mode,
// not just debug. A failed assertion prints the violated contract and
// aborts, which turns "mutated without the latch" from silent memory
// corruption into an immediate, attributable crash.

#ifndef ZDB_COMMON_MUTEX_H_
#define ZDB_COMMON_MUTEX_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <shared_mutex>
#include <thread>

#include "common/thread_annotations.h"

namespace zdb {

namespace internal {

[[noreturn]] inline void LockAssertFail(const char* what) {
  std::fprintf(stderr, "zdb lock assertion failed: %s\n", what);
  std::abort();
}

}  // namespace internal

class CondVar;

/// Exclusive mutex. Identical semantics to std::mutex, plus capability
/// annotations and a holder check backing AssertHeld().
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
    mu_.lock();
    holder_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  }

  void Unlock() RELEASE() {
    holder_.store(std::thread::id(), std::memory_order_relaxed);
    mu_.unlock();
  }

  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    holder_.store(std::this_thread::get_id(), std::memory_order_relaxed);
    return true;
  }

  /// Aborts unless the calling thread holds this mutex. Safe to call in
  /// any build mode; the holder is tracked with relaxed atomics.
  void AssertHeld() const ASSERT_CAPABILITY(this) {
    if (holder_.load(std::memory_order_relaxed) !=
        std::this_thread::get_id()) {
      internal::LockAssertFail("Mutex not held by this thread");
    }
  }

 private:
  friend class CondVar;
  std::mutex mu_;
  std::atomic<std::thread::id> holder_{};
};

/// Reader/writer mutex over std::shared_mutex. Tracks the exclusive
/// holder and a shared-reader count so both assertion flavors are real
/// runtime checks.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() {
    mu_.lock();
    writer_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  }

  void Unlock() RELEASE() {
    writer_.store(std::thread::id(), std::memory_order_relaxed);
    mu_.unlock();
  }

  void LockShared() ACQUIRE_SHARED() {
    mu_.lock_shared();
    readers_.fetch_add(1, std::memory_order_relaxed);
  }

  void UnlockShared() RELEASE_SHARED() {
    readers_.fetch_sub(1, std::memory_order_relaxed);
    mu_.unlock_shared();
  }

  /// Aborts unless the calling thread holds this mutex exclusively.
  void AssertHeld() const ASSERT_CAPABILITY(this) {
    if (writer_.load(std::memory_order_relaxed) !=
        std::this_thread::get_id()) {
      internal::LockAssertFail("SharedMutex not held exclusively by this thread");
    }
  }

  /// Aborts unless some reader holds the mutex shared, or the calling
  /// thread holds it exclusively. (The reader count is global, not
  /// per-thread — a cheap contract check, not a proof of ownership.)
  void AssertReaderHeld() const ASSERT_SHARED_CAPABILITY(this) {
    if (readers_.load(std::memory_order_relaxed) == 0 &&
        writer_.load(std::memory_order_relaxed) !=
            std::this_thread::get_id()) {
      internal::LockAssertFail("SharedMutex not held (shared or exclusive)");
    }
  }

 private:
  std::shared_mutex mu_;
  std::atomic<std::thread::id> writer_{};
  std::atomic<uint32_t> readers_{0};
};

/// Condition variable bound to zdb::Mutex. The REQUIRES annotation makes
/// "wait without holding the mutex" a compile error on Clang. Prefer
/// explicit `while (!cond) cv.Wait(mu);` loops over predicate lambdas:
/// the analysis does not propagate lock state into lambda bodies, so a
/// predicate reading GUARDED_BY fields would defeat the check.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    mu.holder_.store(std::thread::id(), std::memory_order_relaxed);
    cv_.wait(lk);
    mu.holder_.store(std::this_thread::get_id(), std::memory_order_relaxed);
    lk.release();  // ownership stays with the caller's scope
  }

  /// Returns false iff the deadline passed without a notification.
  bool WaitUntil(Mutex& mu, std::chrono::steady_clock::time_point deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    mu.holder_.store(std::thread::id(), std::memory_order_relaxed);
    const std::cv_status st = cv_.wait_until(lk, deadline);
    mu.holder_.store(std::this_thread::get_id(), std::memory_order_relaxed);
    lk.release();
    return st == std::cv_status::no_timeout;
  }

  /// Returns false iff the timeout elapsed without a notification.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout)
      REQUIRES(mu) {
    return WaitUntil(mu, std::chrono::steady_clock::now() + timeout);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// RAII exclusive lock over zdb::Mutex, with optional early release for
/// publish-then-wait patterns (see SpatialIndex::ApplyBatch).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(&mu) { mu_->Lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  ~MutexLock() RELEASE() {
    if (held_) mu_->Unlock();
  }

  /// Releases before end of scope. Calling twice is a compile error on
  /// Clang and an abort at runtime elsewhere.
  void Unlock() RELEASE() {
    mu_->AssertHeld();
    mu_->Unlock();
    held_ = false;
  }

 private:
  Mutex* mu_;
  bool held_ = true;
};

/// RAII shared (reader) lock over zdb::SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(&mu) {
    mu_->LockShared();
  }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

  ~ReaderLock() RELEASE() { mu_->UnlockShared(); }

 private:
  SharedMutex* mu_;
};

/// RAII exclusive (writer) lock over zdb::SharedMutex, with optional
/// early release.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(&mu) {
    mu_->Lock();
  }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

  ~WriterLock() RELEASE() {
    if (held_) mu_->Unlock();
  }

  void Unlock() RELEASE() {
    mu_->AssertHeld();
    mu_->Unlock();
    held_ = false;
  }

 private:
  SharedMutex* mu_;
  bool held_ = true;
};

}  // namespace zdb

#endif  // ZDB_COMMON_MUTEX_H_
