// Copyright (c) zdb authors. Licensed under the MIT license.

#include "common/metrics.h"

#include <cmath>
#include <cstdio>

namespace zdb {

namespace {
thread_local ThreadIoStats* tls_io_stats = nullptr;
}  // namespace

void SetThreadIoStats(ThreadIoStats* stats) { tls_io_stats = stats; }

ThreadIoStats* GetThreadIoStats() { return tls_io_stats; }

// ------------------------------------------------------------ JsonWriter

void JsonWriter::MaybeComma() {
  if (need_comma_) out_.push_back(',');
  need_comma_ = false;
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_.push_back('{');
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_.push_back('}');
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_.push_back('[');
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_.push_back(']');
  need_comma_ = true;
  return *this;
}

void JsonWriter::AppendEscaped(std::string_view s) {
  out_.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_.push_back(static_cast<char>(c));
        }
    }
  }
  out_.push_back('"');
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  MaybeComma();
  AppendEscaped(key);
  out_.push_back(':');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  MaybeComma();
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  MaybeComma();
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  MaybeComma();
  if (!std::isfinite(v)) {
    out_ += "null";
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out_ += buf;
  }
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  MaybeComma();
  out_ += v ? "true" : "false";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view v) {
  MaybeComma();
  AppendEscaped(v);
  need_comma_ = true;
  return *this;
}

// ----------------------------------------------------- counter snapshots

void AppendJson(JsonWriter* w, std::string_view key, const IoStats& stats) {
  w->Key(key).BeginObject();
  w->Field("page_reads", stats.page_reads.load(std::memory_order_relaxed));
  w->Field("page_writes", stats.page_writes.load(std::memory_order_relaxed));
  w->Field("pool_hits", stats.pool_hits.load(std::memory_order_relaxed));
  w->Field("pool_misses", stats.pool_misses.load(std::memory_order_relaxed));
  w->Field("pool_evictions",
           stats.pool_evictions.load(std::memory_order_relaxed));
  w->Field("accesses", stats.accesses());
  w->EndObject();
}

void AppendJson(JsonWriter* w, std::string_view key,
                const ThreadIoStats& stats) {
  w->Key(key).BeginObject();
  w->Field("pages_pinned", stats.pages_pinned);
  w->Field("pool_hits", stats.pool_hits);
  w->Field("pool_misses", stats.pool_misses);
  w->Field("hit_rate", stats.hit_rate());
  w->EndObject();
}

std::string SnapshotJson(const IoStats& stats) {
  JsonWriter w;
  w.BeginObject();
  w.Field("page_reads", stats.page_reads.load(std::memory_order_relaxed));
  w.Field("page_writes", stats.page_writes.load(std::memory_order_relaxed));
  w.Field("pool_hits", stats.pool_hits.load(std::memory_order_relaxed));
  w.Field("pool_misses", stats.pool_misses.load(std::memory_order_relaxed));
  w.Field("pool_evictions",
          stats.pool_evictions.load(std::memory_order_relaxed));
  w.Field("accesses", stats.accesses());
  w.EndObject();
  return w.str();
}

}  // namespace zdb
