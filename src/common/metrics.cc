// Copyright (c) zdb authors. Licensed under the MIT license.

#include "common/metrics.h"

namespace zdb {

namespace {
thread_local ThreadIoStats* tls_io_stats = nullptr;
}  // namespace

void SetThreadIoStats(ThreadIoStats* stats) { tls_io_stats = stats; }

ThreadIoStats* GetThreadIoStats() { return tls_io_stats; }

}  // namespace zdb
