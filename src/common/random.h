// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Deterministic pseudo-random generator for workload generation and tests.
// xoshiro256** — fast, high quality, and identical output across platforms,
// which keeps benchmark workloads reproducible.

#ifndef ZDB_COMMON_RANDOM_H_
#define ZDB_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace zdb {

/// Deterministic RNG; same seed → same sequence on every platform.
class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 seeding so nearby seeds give unrelated streams.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal via Box-Muller (one value per call, cached pair).
  double NextGaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1, u2;
    do {
      u1 = NextDouble();
    } while (u1 <= 1e-300);
    u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
  bool has_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace zdb

#endif  // ZDB_COMMON_RANDOM_H_
