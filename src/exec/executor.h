// Copyright (c) zdb authors. Licensed under the MIT license.
//
// Parallel query execution over a SpatialIndex. A QueryExecutor owns a
// fixed pool of worker threads and offers two modes:
//
//   * batch execution — a vector of independent window/point/kNN queries
//     is spread over the workers, results in input order;
//   * intra-query parallelism — ParallelWindowQuery() splits one large
//     window query's z-interval work list (ancestor probes + interval
//     scans) across the workers, each worker deduplicating its own
//     candidate slice, then merges, globally deduplicates, and refines
//     the candidate chunks in parallel.
//
//   * mixed workload — MixedWorkload() runs rounds of write batches on a
//     dedicated writer thread (each batch applied atomically through
//     SpatialIndex::ApplyBatch) while the rounds' window/point/kNN query
//     batches run on the worker pool. Every query's result is recorded
//     together with the index write epoch observed before and after it,
//     so a harness can cross-check each concurrent answer against a
//     brute-force oracle at some single write-batch boundary.
//
// Queries and mutations synchronize through the index's internal
// reader/writer latch, so batches may run while a writer is active; a
// query observes either all or none of any write batch.
//
// Snapshot migration boundary: when the index has snapshot reads
// enabled (SpatialIndex::EnableSnapshots), the executor stops latching.
// Batch queries delegate to the public index queries, which auto-pin
// per query; ParallelWindowQuery pins ONE epoch up front and every
// worker installs its own SnapshotReadScope under that shared pin, so
// all plan hooks (PlanWindow/ExecuteWindowPlanSlice/
// RefineWindowCandidates) observe the same committed epoch — the
// latch-era contract "one ReaderSection across all hook calls" maps to
// "one EpochPin across all hook calls, one scope per worker thread".
// The hooks themselves stay NO_THREAD_SAFETY_ANALYSIS: what protects
// them is the pinned epoch's immutability, which tests/snapshot_test.cc
// (SnapshotStress.PlanHooksCannotObserveTornEpoch) verifies cannot
// observe a torn epoch under writer churn.
//
// Per-worker counters (pages pinned, pool hit rate, candidates,
// refinements) are collected racelessly: each worker owns its WorkerStats
// slot and registers its ThreadIoStats shadow with the buffer pool (the
// mixed-mode writer thread owns the separate `writer` slot); the
// aggregate is read only after the batch completes (completion is a
// synchronizing event, so no locks are needed on the counters).
//
// Sharded mode: the multi-index constructor drives the N shard engines
// of a sharded zdb::DB (DB::NewExecutor wires it). Batch queries
// scatter-gather each query across its overlapping shards (queries
// parallelize across the pool as before); ParallelWindowQuery
// parallelizes ACROSS shards before slicing WITHIN them — the
// overlapping shards' plans are built under one pin (or reader latch)
// per shard, every (shard, slice) work item goes into a single pool
// job, candidates are deduplicated globally by oid (an object
// replicated into several shards is refined only in the shard that
// surfaced it first — replicas carry identical exact geometry), and
// refinement chunks again mix all shards in one job. MixedWorkload
// requires a single-shard executor (writes go through the router, which
// the executor deliberately does not own).
//
// Example:
//   QueryExecutor exec(index.get(), 4);
//   auto results = exec.WindowBatch(windows).value();   // one per window
//   auto hits = exec.ParallelWindowQuery(big_window).value();
//   ExecStats stats = exec.stats();  // per-worker + aggregate counters

#ifndef ZDB_EXEC_EXECUTOR_H_
#define ZDB_EXEC_EXECUTOR_H_

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/spatial_index.h"
#include "shard/routing.h"

namespace zdb {

/// Counters owned by one worker thread. `io` is the worker's buffer-pool
/// shadow (pages pinned, hits, misses); `query` sums the QueryStats of
/// every query/slice the worker executed.
struct WorkerStats {
  uint64_t tasks = 0;          ///< work items executed by this worker
  uint64_t refinements = 0;    ///< candidates this worker refined
  ThreadIoStats io;            ///< pages pinned / pool hits / pool misses
  QueryStats query;            ///< summed filter-and-refine counters

  void Add(const WorkerStats& o) {
    tasks += o.tasks;
    refinements += o.refinements;
    io.Add(o.io);
    query.Add(o.query);
  }
};

/// Per-worker counters plus their aggregate.
struct ExecStats {
  std::vector<WorkerStats> workers;  ///< one slot per worker thread
  WorkerStats writer;  ///< mixed-workload writer thread (tasks = batches)

  WorkerStats Totals() const {
    WorkerStats t;
    for (const auto& w : workers) t.Add(w);
    t.Add(writer);
    return t;
  }
};

/// One round of a mixed read/write workload: `writes` is applied as one
/// atomic batch on the writer thread while the query batches of the same
/// round run on the worker pool. Rounds are issued in order but writer
/// and readers deliberately drift — queries of round r may observe the
/// index anywhere between the already-applied batches.
struct MixedRound {
  WriteBatch writes;
  std::vector<Rect> windows;
  std::vector<Point> points;
  std::vector<Point> knn_points;
  size_t knn_k = 0;  ///< k for the kNN queries (0 = none even if points)
};

/// Results of one mixed round. Each query's result comes with the write
/// epochs loaded immediately before and after it ran: the answer is
/// guaranteed to equal the single-state answer at exactly one epoch in
/// that window (atomic batch visibility).
struct MixedRoundResult {
  std::vector<ObjectId> inserted;  ///< oids of the round's inserts
  std::vector<std::vector<ObjectId>> window_results;
  std::vector<std::pair<uint64_t, uint64_t>> window_epochs;
  std::vector<std::vector<ObjectId>> point_results;
  std::vector<std::pair<uint64_t, uint64_t>> point_epochs;
  std::vector<std::vector<std::pair<ObjectId, double>>> knn_results;
  std::vector<std::pair<uint64_t, uint64_t>> knn_epochs;
};

/// Fixed worker pool running queries against one SpatialIndex.
/// Thread-compatible: one thread drives the executor; the workers run
/// the queries. Mutating the index while a batch is in flight is safe —
/// the index latch serializes writers against in-flight queries — but
/// stats()/ResetStats() must only be called while no batch is running.
class QueryExecutor {
 public:
  /// `threads` >= 1 worker threads are started immediately.
  QueryExecutor(SpatialIndex* index, size_t threads);

  /// Sharded mode: drives `indexes` (one per shard engine, borrowed)
  /// with scatter-gather routing through `routing`. `indexes.size()`
  /// must equal `routing.shards()`.
  QueryExecutor(std::vector<SpatialIndex*> indexes,
                shard::ShardRouting routing, size_t threads);

  ~QueryExecutor();

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  size_t threads() const { return workers_.size(); }
  SpatialIndex* index() const { return index_; }

  /// True when this executor scatter-gathers over several shard engines.
  bool sharded() const { return indexes_.size() > 1; }
  size_t shards() const { return indexes_.size(); }

  /// Runs every window query concurrently; results in input order.
  Result<std::vector<std::vector<ObjectId>>> WindowBatch(
      const std::vector<Rect>& windows);

  /// Runs every point query concurrently; results in input order.
  Result<std::vector<std::vector<ObjectId>>> PointBatch(
      const std::vector<Point>& points);

  /// Runs every k-NN query concurrently; results in input order.
  Result<std::vector<std::vector<std::pair<ObjectId, double>>>> NearestBatch(
      const std::vector<Point>& points, size_t k);

  /// One window query parallelized internally: the plan's probe/scan work
  /// items are split across the workers (per-worker dedup), candidates
  /// are merged and globally deduplicated, and refinement runs in
  /// parallel over candidate chunks. Returns exactly what
  /// SpatialIndex::WindowQuery would (sorted by object id).
  Result<std::vector<ObjectId>> ParallelWindowQuery(const Rect& window,
                                                    QueryStats* stats =
                                                        nullptr);

  /// Mixed read/write mode: applies each round's write batch atomically
  /// on a dedicated writer thread while the rounds' query batches run on
  /// the worker pool. Results are per round, each query annotated with
  /// its pre/post write epochs (see MixedRoundResult). Returns the first
  /// writer or query error, after all threads quiesce. Single-shard
  /// executors only (InvalidArgument otherwise — sharded writes go
  /// through the ShardRouter, not the executor).
  Result<std::vector<MixedRoundResult>> MixedWorkload(
      const std::vector<MixedRound>& rounds);

  /// Per-worker counters. Only meaningful while no batch is in flight.
  ExecStats stats() const { return stats_; }

  /// Zeroes all per-worker counters. Only call while no batch is in
  /// flight.
  void ResetStats();

 private:
  /// One parallel region: items [0, count) are claimed dynamically by the
  /// workers via an atomic cursor and run through `fn(item, worker)`.
  /// Blocks until all items completed; returns the first item error.
  struct Job {
    std::function<Status(size_t item, size_t worker)> fn;
    size_t count = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    Mutex mu;
    CondVar cv;
    bool failed GUARDED_BY(mu) = false;
    Status first_error GUARDED_BY(mu);
  };

  /// Shared plan/slice/refine pipeline of ParallelWindowQuery. With
  /// `pin` non-null the driver and every worker install per-thread
  /// snapshot views under that pin; with null the caller must hold the
  /// index's shared latch for the duration.
  Result<std::vector<ObjectId>> ParallelWindowBody(const Rect& window,
                                                   QueryStats* stats,
                                                   const EpochPin* pin);

  /// Sharded ParallelWindowQuery: pins (or latches) every overlapping
  /// shard, then runs all shards' slice and refinement work items
  /// through the shared pool. Retries the whole query on a group-commit
  /// rollback (Aborted) like the single-shard path.
  Result<std::vector<ObjectId>> ShardedParallelWindow(const Rect& window,
                                                      QueryStats* stats);
  Result<std::vector<ObjectId>> ShardedParallelWindowBody(
      const Rect& window, QueryStats* stats,
      const std::vector<uint32_t>& shards, bool snapshots);

  Status RunJob(size_t count,
                std::function<Status(size_t item, size_t worker)> fn);
  void WorkerLoop(size_t worker_idx);
  void ProcessJob(Job* job, size_t worker_idx);

  SpatialIndex* index_;                 ///< shard 0 (the index of a
                                        ///< single-shard executor)
  std::vector<SpatialIndex*> indexes_;  ///< all shards, borrowed
  std::unique_ptr<shard::ShardRouting> routing_;  ///< null if unsharded
  /// Per-worker slots: each worker owns stats_.workers[i] (raceless by
  /// ownership, not by lock — see the header comment).
  ExecStats stats_;

  Mutex mu_;
  CondVar cv_;
  std::deque<std::shared_ptr<Job>> jobs_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace zdb

#endif  // ZDB_EXEC_EXECUTOR_H_
